package datasets

import (
	"math"
	"math/rand"

	"repro/internal/ops"
)

// Web builds the information-retrieval workload (§6.3): term posting
// lists over a document-ID domain modeled after ClueWeb12 (41M docs,
// scaled), with list sizes following a zipf law over term ranks — the
// classic shape of a web-scale vocabulary — and a query log of
// multi-term conjunctive/disjunctive queries standing in for the 1000
// TREC queries.
//
// nTerms controls vocabulary size and nQueries the log length; queries
// draw 2-4 terms biased toward frequent terms, as real logs do.
func Web(scale float64, nTerms, nQueries int) Workload {
	domain := uint32(scaled(41_000_000, scale))
	w := Workload{Name: "Web", Domain: domain}
	rng := rand.New(rand.NewSource(8000))
	// Term list sizes: size(rank) = maxSize / rank^0.7, capped below at
	// a handful of postings.
	maxSize := float64(domain) / 5
	for t := 0; t < nTerms; t++ {
		size := int(maxSize / math.Pow(float64(t+1), 0.7))
		if size < 8 {
			size = 8
		}
		w.Lists = append(w.Lists, listFor(size, domain, int64(8100+t)))
	}
	for q := 0; q < nQueries; q++ {
		k := 2 + rng.Intn(3)
		leaves := make([]ops.Expr, 0, k)
		seen := map[int]bool{}
		for len(leaves) < k {
			// Bias toward frequent terms: square the unit sample.
			f := rng.Float64()
			t := int(f * f * float64(nTerms))
			if t >= nTerms {
				t = nTerms - 1
			}
			if seen[t] {
				continue
			}
			seen[t] = true
			leaves = append(leaves, ops.Leaf(t))
		}
		w.Queries = append(w.Queries, Query{
			Name: "and",
			Plan: ops.And(leaves...),
		})
		w.Queries = append(w.Queries, Query{
			Name: "or",
			Plan: ops.Or(leaves...),
		})
	}
	return w
}
