// Package datasets synthesizes the paper's eight real workloads (§6,
// Appendix C). The originals (SSB, TPCH, ClueWeb12, Twitter, KDDCup,
// Berkeleyearth, Higgs, Kegg) are not redistributable; following the
// substitution rule in DESIGN.md §2 we generate lists that preserve the
// published row counts, list sizes, selectivities, and clustering
// character — the quantities the paper's own analysis says drive every
// result — optionally scaled down by a constant factor.
package datasets

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/ops"
)

// Query names a plan over a workload's lists.
type Query struct {
	Name string
	Plan ops.Expr
}

// Workload is a set of lists plus the queries the paper runs on them.
type Workload struct {
	Name    string
	Domain  uint32
	Lists   [][]uint32
	Queries []Query
}

// listFor synthesizes one list of the given size over [0, domain).
// Database-column lists at non-trivial selectivity are clustered (rows
// with equal attribute values arrive in bursts), modeled with the
// markov generator at clustering factor 8; very sparse lists are
// uniform.
func listFor(size int, domain uint32, seed int64) []uint32 {
	if size <= 0 {
		return nil
	}
	if size > int(domain) {
		size = int(domain)
	}
	density := float64(size) / float64(domain)
	if density >= 0.02 {
		return gen.MarkovN(size, domain, 8, seed)
	}
	return gen.Uniform(size, domain, seed)
}

// scaled applies the workload scale factor with a floor of 1.
func scaled(n float64, scale float64) int {
	v := int(n * scale)
	if v < 1 {
		v = 1
	}
	return v
}

// SSB builds the star schema benchmark workload (§6.1) at the given
// scale factor (1, 10, 100) further scaled by scale (rows = 6M*sf*scale).
//
// Queries (selectivities from §6.1):
//
//	Q1.1 = L0 ∩ L1 ∩ L2                 (1/7, 1/2, 3/11)
//	Q2.1 = L3 ∩ L4                      (1/25, 1/5)
//	Q3.4 = (L5 ∪ L6) ∩ (L7 ∪ L8) ∩ L9   (4 x 1/250, 1/364)
//	Q4.1 = L10 ∩ L11 ∩ (L12 ∪ L13)      (4 x 1/5)
func SSB(sf int, scale float64) Workload {
	rows := scaled(6_000_000*float64(sf), scale)
	domain := uint32(rows)
	sels := []float64{
		1.0 / 7, 1.0 / 2, 3.0 / 11, // Q1.1
		1.0 / 25, 1.0 / 5, // Q2.1
		1.0 / 250, 1.0 / 250, 1.0 / 250, 1.0 / 250, 1.0 / 364, // Q3.4
		1.0 / 5, 1.0 / 5, 1.0 / 5, 1.0 / 5, // Q4.1
	}
	w := Workload{Name: fmt.Sprintf("SSB(SF=%d)", sf), Domain: domain}
	for i, s := range sels {
		w.Lists = append(w.Lists, listFor(int(float64(rows)*s), domain, int64(1000*sf+i)))
	}
	w.Queries = []Query{
		{"Q1.1", ops.And(ops.Leaf(0), ops.Leaf(1), ops.Leaf(2))},
		{"Q2.1", ops.And(ops.Leaf(3), ops.Leaf(4))},
		{"Q3.4", ops.And(ops.Or(ops.Leaf(5), ops.Leaf(6)), ops.Or(ops.Leaf(7), ops.Leaf(8)), ops.Leaf(9))},
		{"Q4.1", ops.And(ops.Leaf(10), ops.Leaf(11), ops.Or(ops.Leaf(12), ops.Leaf(13)))},
	}
	return w
}

// TPCH builds the TPC-H workload (§6.2): rows = 6M*sf*scale.
//
//	Q6  = L0 ∩ L1 ∩ L2   (1/7, 3/11, 1/50)
//	Q12 = (L3 ∪ L4) ∩ L5 (1/10, 1/10, 1/364)
func TPCH(sf int, scale float64) Workload {
	rows := scaled(6_000_000*float64(sf), scale)
	domain := uint32(rows)
	sels := []float64{1.0 / 7, 3.0 / 11, 1.0 / 50, 1.0 / 10, 1.0 / 10, 1.0 / 364}
	w := Workload{Name: fmt.Sprintf("TPCH(SF=%d)", sf), Domain: domain}
	for i, s := range sels {
		w.Lists = append(w.Lists, listFor(int(float64(rows)*s), domain, int64(2000*sf+i)))
	}
	w.Queries = []Query{
		{"Q6", ops.And(ops.Leaf(0), ops.Leaf(1), ops.Leaf(2))},
		{"Q12", ops.And(ops.Or(ops.Leaf(3), ops.Leaf(4)), ops.Leaf(5))},
	}
	return w
}

// pairQueries builds the two-list intersection workloads shared by the
// Appendix C datasets.
func pairQueries(name string, domain uint32, sizes [2][2]int, seed int64) Workload {
	w := Workload{Name: name, Domain: domain}
	for qi, pair := range sizes {
		for li, size := range pair {
			w.Lists = append(w.Lists, listFor(size, domain, seed+int64(10*qi+li)))
		}
	}
	w.Queries = []Query{
		{"Q1", ops.And(ops.Leaf(0), ops.Leaf(1))},
		{"Q2", ops.And(ops.Leaf(2), ops.Leaf(3))},
	}
	return w
}

// Graph builds the Twitter-adjacency workload (Appendix C.3): two
// 3-list intersection queries with the paper's exact list sizes over a
// 52.6M-vertex domain (scaled).
func Graph(scale float64) Workload {
	domain := uint32(scaled(52_579_682, scale))
	sizes := []int{
		scaled(960, scale), scaled(50_913, scale), scaled(507_777, scale),
		scaled(507_777, scale), scaled(526_292, scale), scaled(779_957, scale),
	}
	w := Workload{Name: "Graph", Domain: domain}
	for i, s := range sizes {
		w.Lists = append(w.Lists, listFor(s, domain, int64(3000+i)))
	}
	w.Queries = []Query{
		{"Q1", ops.And(ops.Leaf(0), ops.Leaf(1), ops.Leaf(2))},
		{"Q2", ops.And(ops.Leaf(3), ops.Leaf(4), ops.Leaf(5))},
	}
	return w
}

// KDDCup builds the network-connection workload (Appendix C.4):
// 4,898,431 rows; Q1 is dense (0.58 ∩ 0.86), Q2 ultra-skewed
// (1051 ∩ 3744328).
func KDDCup(scale float64) Workload {
	domain := uint32(scaled(4_898_431, scale))
	return pairQueries("KDDCup", domain, [2][2]int{
		{scaled(2_833_545, scale), scaled(4_195_364, scale)},
		{scaled(1_051, scale), scaled(3_744_328, scale)},
	}, 4000)
}

// Berkeleyearth builds the temperature-report workload (Appendix C.5):
// 61,174,591 rows; Q1 dense pair, Q2 tiny ∩ huge.
func Berkeleyearth(scale float64) Workload {
	domain := uint32(scaled(61_174_591, scale))
	return pairQueries("Berkeleyearth", domain, [2][2]int{
		{scaled(7_730_307, scale), scaled(9_254_744, scale)},
		{scaled(5_395, scale), scaled(8_174_163, scale)},
	}, 5000)
}

// Higgs builds the signal-process workload (Appendix C.6): 11,000,000
// rows.
func Higgs(scale float64) Workload {
	domain := uint32(scaled(11_000_000, scale))
	return pairQueries("Higgs", domain, [2][2]int{
		{scaled(172_380, scale), scaled(4_446_476, scale)},
		{scaled(49_170, scale), scaled(102_607, scale)},
	}, 6000)
}

// Kegg builds the metabolic-pathway workload (Appendix C.7): 53,414
// rows — small enough to run unscaled, so scale only shrinks it further
// if below 1.
func Kegg(scale float64) Workload {
	if scale > 1 {
		scale = 1
	}
	domain := uint32(scaled(53_414, scale))
	return pairQueries("Kegg", domain, [2][2]int{
		{scaled(16_965, scale), scaled(47_783, scale)},
		{scaled(1_082, scale), scaled(1_438, scale)},
	}, 7000)
}
