package datasets

import (
	"testing"

	"repro/internal/core"
	"repro/internal/intlist"
	"repro/internal/ops"
)

const testScale = 1.0 / 512

func checkWorkload(t *testing.T, w Workload, wantLists, wantQueries int) {
	t.Helper()
	if len(w.Lists) != wantLists {
		t.Fatalf("%s: %d lists, want %d", w.Name, len(w.Lists), wantLists)
	}
	if len(w.Queries) != wantQueries {
		t.Fatalf("%s: %d queries, want %d", w.Name, len(w.Queries), wantQueries)
	}
	for i, l := range w.Lists {
		if len(l) == 0 {
			t.Errorf("%s: list %d empty", w.Name, i)
			continue
		}
		if err := core.ValidateSorted(l); err != nil {
			t.Errorf("%s: list %d: %v", w.Name, i, err)
		}
		if l[len(l)-1] >= w.Domain {
			t.Errorf("%s: list %d exceeds domain", w.Name, i)
		}
	}
	// Every query must evaluate (reference path: raw lists).
	for _, q := range w.Queries {
		ps := make([]core.Posting, len(w.Lists))
		for i, l := range w.Lists {
			p, err := rawCodec.Compress(l)
			if err != nil {
				t.Fatal(err)
			}
			ps[i] = p
		}
		if _, err := ops.Eval(q.Plan, ps); err != nil {
			t.Errorf("%s/%s: %v", w.Name, q.Name, err)
		}
	}
}

func TestSSBShape(t *testing.T) {
	w := SSB(1, testScale)
	checkWorkload(t, w, 14, 4)
	// Selectivities: list 1 has selectivity 1/2 of the fact table.
	rows := float64(w.Domain)
	got := float64(len(w.Lists[1])) / rows
	if got < 0.4 || got > 0.6 {
		t.Errorf("Q1.1 L2 selectivity = %.3f, want ~0.5", got)
	}
	// Q3.4 lists are sparse (1/250).
	got = float64(len(w.Lists[5])) / rows
	if got > 0.01 {
		t.Errorf("Q3.4 list selectivity = %.4f, want ~1/250", got)
	}
}

func TestSSBScaleFactor(t *testing.T) {
	w1 := SSB(1, testScale)
	w10 := SSB(10, testScale)
	if w10.Domain < 9*w1.Domain {
		t.Errorf("SF=10 domain %d should be ~10x SF=1 %d", w10.Domain, w1.Domain)
	}
}

func TestTPCHShape(t *testing.T) {
	checkWorkload(t, TPCH(1, testScale), 6, 2)
}

func TestGraphShape(t *testing.T) {
	w := Graph(1.0 / 64)
	checkWorkload(t, w, 6, 2)
	// Paper's exact proportions: |L3|=507777 scaled.
	want := 507_777 / 64
	if got := len(w.Lists[2]); got < want*9/10 || got > want*11/10 {
		t.Errorf("graph L3 size %d, want ~%d", got, want)
	}
}

func TestPairDatasets(t *testing.T) {
	checkWorkload(t, KDDCup(testScale), 4, 2)
	checkWorkload(t, Berkeleyearth(testScale), 4, 2)
	checkWorkload(t, Higgs(testScale), 4, 2)
	checkWorkload(t, Kegg(1), 4, 2)
}

func TestKDDCupDensities(t *testing.T) {
	w := KDDCup(testScale)
	// Q1 lists are dense (0.58, 0.86 of the domain).
	d0 := float64(len(w.Lists[0])) / float64(w.Domain)
	d1 := float64(len(w.Lists[1])) / float64(w.Domain)
	if d0 < 0.4 || d1 < 0.7 {
		t.Errorf("KDDCup Q1 densities %.2f/%.2f, want ~0.58/0.86", d0, d1)
	}
}

func TestKeggCapsScale(t *testing.T) {
	big := Kegg(4) // should clamp to 1
	if big.Domain != Kegg(1).Domain {
		t.Error("Kegg scale should cap at 1")
	}
}

func TestWebShape(t *testing.T) {
	w := Web(testScale, 40, 12)
	if len(w.Lists) != 40 {
		t.Fatalf("%d term lists, want 40", len(w.Lists))
	}
	if len(w.Queries) != 24 { // an AND and an OR per log entry
		t.Fatalf("%d queries, want 24", len(w.Queries))
	}
	// Zipf vocabulary: the most frequent term is much longer than the
	// median term.
	if len(w.Lists[0]) < 5*len(w.Lists[20]) {
		t.Errorf("term sizes not zipf-ish: %d vs %d", len(w.Lists[0]), len(w.Lists[20]))
	}
	for i, l := range w.Lists {
		if err := core.ValidateSorted(l); err != nil {
			t.Fatalf("list %d: %v", i, err)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := SSB(1, testScale)
	b := SSB(1, testScale)
	for i := range a.Lists {
		if len(a.Lists[i]) != len(b.Lists[i]) {
			t.Fatal("dataset generation must be deterministic")
		}
		for j := range a.Lists[i] {
			if a.Lists[i][j] != b.Lists[i][j] {
				t.Fatal("dataset generation must be deterministic")
			}
		}
	}
}

// rawCodec is the uncompressed-list codec, used as the reference
// evaluation path.
var rawCodec = intlist.NewRawList()
