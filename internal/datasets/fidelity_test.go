package datasets

import (
	"math"
	"testing"
)

// These tests pin the simulated datasets to the paper's published
// numbers: each generated list must sit within tolerance of the scaled
// size the paper reports (Appendix C), since list size/selectivity is
// the property the substitution promises to preserve (DESIGN.md §2).

func within(t *testing.T, name string, got, want int, tol float64) {
	t.Helper()
	if want == 0 {
		return
	}
	ratio := float64(got) / float64(want)
	if math.Abs(ratio-1) > tol {
		t.Errorf("%s: size %d, want ~%d (ratio %.2f)", name, got, want, ratio)
	}
}

func TestSSBSelectivityFidelity(t *testing.T) {
	const scale = 1.0 / 128
	w := SSB(1, scale)
	rows := float64(w.Domain)
	wantSel := []float64{
		1.0 / 7, 1.0 / 2, 3.0 / 11,
		1.0 / 25, 1.0 / 5,
		1.0 / 250, 1.0 / 250, 1.0 / 250, 1.0 / 250, 1.0 / 364,
		1.0 / 5, 1.0 / 5, 1.0 / 5, 1.0 / 5,
	}
	for i, sel := range wantSel {
		within(t, w.Name, len(w.Lists[i]), int(rows*sel), 0.12)
	}
}

func TestTPCHSelectivityFidelity(t *testing.T) {
	const scale = 1.0 / 128
	w := TPCH(1, scale)
	rows := float64(w.Domain)
	for i, sel := range []float64{1.0 / 7, 3.0 / 11, 1.0 / 50, 1.0 / 10, 1.0 / 10, 1.0 / 364} {
		within(t, w.Name, len(w.Lists[i]), int(rows*sel), 0.12)
	}
}

func TestAppendixCListSizeFidelity(t *testing.T) {
	const scale = 1.0 / 128
	cases := []struct {
		w     Workload
		sizes []int // paper's exact sizes, unscaled
	}{
		{Graph(scale), []int{960, 50_913, 507_777, 507_777, 526_292, 779_957}},
		{KDDCup(scale), []int{2_833_545, 4_195_364, 1_051, 3_744_328}},
		{Berkeleyearth(scale), []int{7_730_307, 9_254_744, 5_395, 8_174_163}},
		{Higgs(scale), []int{172_380, 4_446_476, 49_170, 102_607}},
	}
	for _, c := range cases {
		for i, paperSize := range c.sizes {
			want := int(float64(paperSize) * scale)
			if want < 50 {
				continue // too small for a tolerance check after scaling
			}
			within(t, c.w.Name, len(c.w.Lists[i]), want, 0.12)
		}
	}
	// Kegg runs unscaled: exact paper sizes.
	kegg := Kegg(1)
	for i, paperSize := range []int{16_965, 47_783, 1_082, 1_438} {
		within(t, kegg.Name, len(kegg.Lists[i]), paperSize, 0.12)
	}
}

// TestDatasetClusteringCharacter: dense DB-column lists are clustered
// (markov-generated), seen as mean run length well above uniform's.
func TestDatasetClusteringCharacter(t *testing.T) {
	w := KDDCup(1.0 / 128)
	dense := w.Lists[0] // selectivity 0.58: clustered path
	runs, runLen := 0, 0
	for i := range dense {
		runLen++
		if i+1 == len(dense) || dense[i+1] != dense[i]+1 {
			runs++
		}
	}
	meanRun := float64(runLen) / float64(runs)
	if meanRun < 2 {
		t.Errorf("dense column mean run %.2f, want clustered (>= 2)", meanRun)
	}
}
