package kernels

import (
	"math/bits"
	"math/rand"
	"testing"
)

func randWords(rng *rand.Rand, n int) []uint64 {
	w := make([]uint64, n)
	for i := range w {
		switch rng.Intn(4) {
		case 0:
			w[i] = 0
		case 1:
			w[i] = ^uint64(0)
		default:
			w[i] = rng.Uint64()
		}
	}
	return w
}

func TestWordOps(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 63, 64, 65, 200} {
		a := randWords(rng, n)
		b := randWords(rng, n)
		and := make([]uint64, n)
		or := make([]uint64, n)
		andnot := make([]uint64, n)
		AndWords(and, a, b)
		OrWords(or, a, b)
		AndNotWords(andnot, a, b)
		pc := 0
		for i := 0; i < n; i++ {
			if and[i] != a[i]&b[i] {
				t.Fatalf("n=%d: AndWords[%d] = %x, want %x", n, i, and[i], a[i]&b[i])
			}
			if or[i] != a[i]|b[i] {
				t.Fatalf("n=%d: OrWords[%d] = %x, want %x", n, i, or[i], a[i]|b[i])
			}
			if andnot[i] != a[i]&^b[i] {
				t.Fatalf("n=%d: AndNotWords[%d] = %x, want %x", n, i, andnot[i], a[i]&^b[i])
			}
			pc += bits.OnesCount64(a[i])
		}
		if got := PopcountWords(a); got != pc {
			t.Fatalf("n=%d: PopcountWords = %d, want %d", n, got, pc)
		}
	}
}

// naiveExtract is the single-word loop the codecs used before kernels.
func naiveExtract(out []uint32, words []uint64, base uint32) []uint32 {
	for i, w := range words {
		p := base + uint32(i)*64
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			out = append(out, p+uint32(tz))
			w &= w - 1
		}
	}
	return out
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestExtractWords(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 3, 64, 129, 300} {
		words := randWords(rng, n)
		base := rng.Uint32() &^ 0x3f // word-aligned base as all callers use
		want := naiveExtract(nil, words, base)
		got := ExtractWords(nil, words, base)
		if !equalU32(got, want) {
			t.Fatalf("n=%d: ExtractWords mismatch (%d vs %d values)", n, len(got), len(want))
		}
		var single []uint32
		for i, w := range words {
			single = ExtractWord(single, w, base+uint32(i)*64)
		}
		if !equalU32(single, want) {
			t.Fatalf("n=%d: ExtractWord mismatch", n)
		}
	}
}

func TestCombineExtract(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, na := range []int{0, 1, 5, 127, 128, 129, 400} {
		for _, nb := range []int{0, 3, 128, 260} {
			a := randWords(rng, na)
			b := randWords(rng, nb)
			n := min(na, nb)
			andBuf := make([]uint64, n)
			AndWords(andBuf, a, b)
			wantAnd := naiveExtract(nil, andBuf, 0)
			if got := AndWordsExtract(nil, a, b, 0); !equalU32(got, wantAnd) {
				t.Fatalf("na=%d nb=%d: AndWordsExtract mismatch", na, nb)
			}
			long, short := a, b
			if len(b) > len(a) {
				long, short = b, a
			}
			orBuf := make([]uint64, len(long))
			copy(orBuf, long)
			for i := range short {
				orBuf[i] |= short[i]
			}
			wantOr := naiveExtract(nil, orBuf, 0)
			if got := OrWordsExtract(nil, a, b, 0); !equalU32(got, wantOr) {
				t.Fatalf("na=%d nb=%d: OrWordsExtract mismatch", na, nb)
			}
		}
	}
}
