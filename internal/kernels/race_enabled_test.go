//go:build race

package kernels

// raceEnabled reports whether the race detector is compiled in; timing
// assertions skip themselves when it is.
const raceEnabled = true
