package kernels

import (
	"fmt"
	"math/rand"
	"testing"
)

// Microbenchmarks per width, specialized vs reference, reported as
// decoded MB/s (SetBytes counts the 512 output bytes of one 128-value
// block). `make bench` writes them to results/BENCH_kernels.json.

func benchInputs(b uint) (horiz, vert []byte) {
	rng := rand.New(rand.NewSource(int64(b) + 100))
	mask := uint32(uint64(1)<<b - 1)
	var vals [128]uint32
	for i := range vals {
		vals[i] = rng.Uint32() & mask
	}
	return Pack(nil, vals[:], b), VPack128(nil, &vals, b)
}

func eachWidth(b *testing.B, run func(b *testing.B, width uint)) {
	for w := uint(0); w <= 32; w++ {
		b.Run(fmt.Sprintf("b=%d", w), func(b *testing.B) {
			b.SetBytes(128 * 4)
			run(b, w)
		})
	}
}

func BenchmarkUnpack(b *testing.B) {
	eachWidth(b, func(b *testing.B, w uint) {
		src, _ := benchInputs(w)
		var out [128]uint32
		for i := 0; i < b.N; i++ {
			Unpack(src, out[:], w)
		}
	})
}

func BenchmarkUnpackRef(b *testing.B) {
	eachWidth(b, func(b *testing.B, w uint) {
		src, _ := benchInputs(w)
		var out [128]uint32
		for i := 0; i < b.N; i++ {
			UnpackRef(src, out[:], w)
		}
	})
}

func BenchmarkVUnpack(b *testing.B) {
	eachWidth(b, func(b *testing.B, w uint) {
		_, src := benchInputs(w)
		var out [128]uint32
		for i := 0; i < b.N; i++ {
			VUnpack(src, &out, w)
		}
	})
}

func BenchmarkVUnpackRef(b *testing.B) {
	eachWidth(b, func(b *testing.B, w uint) {
		_, src := benchInputs(w)
		var out [128]uint32
		for i := 0; i < b.N; i++ {
			VUnpackRef(src, &out, w)
		}
	})
}

func BenchmarkVUnpackDelta(b *testing.B) {
	eachWidth(b, func(b *testing.B, w uint) {
		_, src := benchInputs(w)
		var out [127]uint32
		for i := 0; i < b.N; i++ {
			VUnpackDelta(src, &out, 1, w)
		}
	})
}

// BenchmarkVUnpackDeltaRef is the pre-kernel SIMDBP128 decode shape:
// generic vertical unpack into a scratch block, then a prefix-sum scan.
func BenchmarkVUnpackDeltaRef(b *testing.B) {
	eachWidth(b, func(b *testing.B, w uint) {
		_, src := benchInputs(w)
		var out [127]uint32
		for i := 0; i < b.N; i++ {
			var tmp [128]uint32
			VUnpackRef(src, &tmp, w)
			prev := uint32(1)
			for k := range out {
				prev += tmp[k]
				out[k] = prev
			}
		}
	})
}

func BenchmarkVUnpackBase(b *testing.B) {
	eachWidth(b, func(b *testing.B, w uint) {
		_, src := benchInputs(w)
		var out [127]uint32
		for i := 0; i < b.N; i++ {
			VUnpackBase(src, &out, 1, w)
		}
	})
}

func BenchmarkBitops(b *testing.B) {
	const n = 1 << 12
	rng := rand.New(rand.NewSource(7))
	a := make([]uint64, n)
	c := make([]uint64, n)
	dst := make([]uint64, n)
	for i := range a {
		a[i] = rng.Uint64()
		c[i] = rng.Uint64() & rng.Uint64() // sparser operand
	}
	b.Run("AndWords", func(b *testing.B) {
		b.SetBytes(n * 8)
		for i := 0; i < b.N; i++ {
			AndWords(dst, a, c)
		}
	})
	b.Run("OrWords", func(b *testing.B) {
		b.SetBytes(n * 8)
		for i := 0; i < b.N; i++ {
			OrWords(dst, a, c)
		}
	})
	b.Run("AndNotWords", func(b *testing.B) {
		b.SetBytes(n * 8)
		for i := 0; i < b.N; i++ {
			AndNotWords(dst, a, c)
		}
	})
	b.Run("PopcountWords", func(b *testing.B) {
		b.SetBytes(n * 8)
		for i := 0; i < b.N; i++ {
			PopcountWords(a)
		}
	})
	out := make([]uint32, 0, 64*n)
	b.Run("ExtractWords", func(b *testing.B) {
		b.SetBytes(n * 8)
		for i := 0; i < b.N; i++ {
			out = ExtractWords(out[:0], c, 0)
		}
	})
	b.Run("AndWordsExtract", func(b *testing.B) {
		b.SetBytes(n * 8)
		for i := 0; i < b.N; i++ {
			out = AndWordsExtract(out[:0], a, c, 0)
		}
	})
}
