// Package kernels holds the width-specialized, branch-free decode
// kernels behind every bit-unpacking hot path, plus word-batch kernels
// for the bitmap codecs.
//
// The paper's fastest codecs (SIMDBP128*, SIMDPforDelta*) owe their
// decode speed to per-bit-width unpack routines: one fully unrolled,
// branch-free function per width, with all shifts and masks folded to
// constants. Go (stdlib only, no assembly) cannot issue SIMD, so the
// generated kernels here process the same data layouts with unrolled
// 32-bit scalar code — constant word offsets, a leading `_ = src[...]`
// bounds hint, and fixed-size output arrays eliminate per-value bounds
// checks and loop overhead (see DESIGN.md §2).
//
// Two bit-packed layouts are served, byte-identical to the formats the
// codecs have always written:
//
//   - Horizontal (Pack/Unpack): fields packed LSB-first into a byte
//     stream — equivalently, a little-endian uint32 word stream. Used
//     by the PforDelta family's slot arrays.
//   - Vertical 4-lane (VPack128/VUnpack): 128 values as 32 rows x 4
//     lanes; value i sits at (row i/4, lane i%4); each lane packs its
//     32 values into b words and the lanes interleave word-wise — byte
//     for byte the layout a 128-bit SIMD register file would process.
//     Used by the SIMDBP128/SIMDPforDelta codecs.
//
// The generic accumulator loops that used to live in internal/intlist
// remain here as the reference implementations (UnpackRef, VUnpackRef):
// property tests, the fuzz roundtrip, and cmd/genkernels's self-check
// all compare the generated kernels against them. The generated files
// (*_gen.go) are committed; `go generate ./internal/kernels` rebuilds
// them and CI fails if they drift from the generator.
package kernels

// BlockLen is the vertical layout's block size (the paper's 128).
const BlockLen = 128

// Pack appends len(vals) fixed-width b-bit fields to dst, LSB-first.
// It is the reference packer (encode is not a hot path).
func Pack(dst []byte, vals []uint32, b uint) []byte {
	var acc uint64
	var nbits uint
	for _, v := range vals {
		acc |= uint64(v&(1<<b-1)) << nbits
		nbits += b
		for nbits >= 8 {
			dst = append(dst, byte(acc))
			acc >>= 8
			nbits -= 8
		}
	}
	if nbits > 0 {
		dst = append(dst, byte(acc))
	}
	return dst
}

// UnpackRef reads len(out) b-bit fields from src with the generic
// accumulator loop, returning bytes used. It is the reference the
// specialized kernels are tested against, and the tail fallback of
// Unpack when src has no slack to over-read.
func UnpackRef(src []byte, out []uint32, b uint) int {
	var acc uint64
	var nbits uint
	i := 0
	mask := uint64(1)<<b - 1
	for k := range out {
		for nbits < b {
			acc |= uint64(src[i]) << nbits
			i++
			nbits += 8
		}
		out[k] = uint32(acc & mask)
		acc >>= b
		nbits -= b
	}
	return i
}

// Unpack reads len(out) b-bit fields from src, returning bytes used.
// Full groups of 32 values decode through the width-specialized
// unrolled kernel (32 values at width b always end on a byte boundary,
// so groups chunk cleanly). The tail decodes through the kernel into a
// scratch block when src is long enough to over-read safely, and
// through UnpackRef otherwise.
func Unpack(src []byte, out []uint32, b uint) int {
	n := len(out)
	used := (n*int(b) + 7) / 8
	off := 0
	i := 0
	for ; n-i >= 32; i += 32 {
		unpackDispatch(src[off:], (*[32]uint32)(out[i:i+32]), b)
		off += 4 * int(b)
	}
	if i < n {
		if len(src)-off >= 4*int(b) {
			var tmp [32]uint32
			unpackDispatch(src[off:], &tmp, b)
			copy(out[i:], tmp[:n-i])
		} else {
			UnpackRef(src[off:], out[i:], b)
		}
	}
	return used
}

// VPack128 packs in (128 values, each < 2^b) into 4*b little-endian
// uint32 words appended to dst, in the vertical 4-lane layout. It is
// the reference packer for that layout.
func VPack128(dst []byte, in *[128]uint32, b uint) []byte {
	if b == 0 {
		return dst
	}
	mask := uint32(1)<<b - 1
	if b == 32 {
		mask = ^uint32(0)
	}
	start := len(dst)
	dst = append(dst, make([]byte, 16*b)...)
	out := dst[start:]
	for lane := 0; lane < 4; lane++ {
		var acc uint64
		var nbits uint
		w := lane
		for row := 0; row < 32; row++ {
			acc |= uint64(in[4*row+lane]&mask) << nbits
			nbits += b
			for nbits >= 32 {
				out[4*w] = byte(acc)
				out[4*w+1] = byte(acc >> 8)
				out[4*w+2] = byte(acc >> 16)
				out[4*w+3] = byte(acc >> 24)
				acc >>= 32
				nbits -= 32
				w += 4
			}
		}
	}
	return dst
}

// VUnpackRef reverses VPack128 with the generic accumulator loop,
// filling out from src (16*b bytes) and returning bytes used. It is
// the reference the vertical kernels are tested against.
func VUnpackRef(src []byte, out *[128]uint32, b uint) int {
	if b == 0 {
		for i := range out {
			out[i] = 0
		}
		return 0
	}
	mask := uint64(1)<<b - 1
	if b == 32 {
		mask = 0xffffffff
	}
	for lane := 0; lane < 4; lane++ {
		var acc uint64
		var nbits uint
		w := lane
		for row := 0; row < 32; row++ {
			for nbits < b {
				word := uint64(src[4*w]) | uint64(src[4*w+1])<<8 |
					uint64(src[4*w+2])<<16 | uint64(src[4*w+3])<<24
				acc |= word << nbits
				nbits += 32
				w += 4
			}
			out[4*row+lane] = uint32(acc & mask)
			acc >>= b
			nbits -= b
		}
	}
	return int(16 * b)
}

// VUnpack reverses VPack128 through the width-specialized unrolled
// kernel, returning bytes used (16*b).
func VUnpack(src []byte, out *[128]uint32, b uint) int {
	vunpackDispatch(src, out, b)
	return int(16 * b)
}

// VUnpackDelta decodes the first 127 b-bit d-gaps of a vertical block
// and prefix-sums them onto prev in the same pass: out[i] holds the
// absolute value prev + gap[0] + ... + gap[i]. One full block of the
// standard frame carries exactly 127 gaps (the first value travels in
// the skip pointer), so full-block decodes need no scratch buffer and
// no separate prefix-sum scan. Returns bytes used (16*b).
func VUnpackDelta(src []byte, out *[127]uint32, prev uint32, b uint) int {
	vunpackDeltaDispatch(src, out, prev, b)
	return int(16 * b)
}

// VUnpackBase decodes the first 127 b-bit offsets of a vertical block
// and adds base in the same pass: out[i] = base + offset[i]. This is
// SIMDBP128*'s offset-from-first layout, which needs no prefix sum at
// all. Returns bytes used (16*b).
func VUnpackBase(src []byte, out *[127]uint32, base uint32, b uint) int {
	vunpackBaseDispatch(src, out, base, b)
	return int(16 * b)
}
