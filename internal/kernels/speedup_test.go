package kernels

import (
	"math/rand"
	"testing"
)

// TestKernelSpeedup is the CI throughput gate: the width-specialized
// kernels must stay measurably faster than the generic reference loops
// they replaced. The bound (1.2x) is far below the typical speedup
// (3-6x, see results/BENCH_kernels.json) so scheduler noise cannot
// flake it, but a regression to generic-loop speed — e.g. a dispatch
// bug routing everything through the reference — fails loudly. Skipped
// under the race detector, which distorts relative timings.
func TestKernelSpeedup(t *testing.T) {
	if raceEnabled {
		t.Skip("timing comparison is meaningless under -race")
	}
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	const b = 8
	rng := rand.New(rand.NewSource(20))
	var vals [128]uint32
	for i := range vals {
		vals[i] = rng.Uint32() & 0xff
	}
	horiz := Pack(nil, vals[:], b)
	vert := VPack128(nil, &vals, b)

	ratio := func(fast, slow func()) float64 {
		best := 0.0
		for try := 0; try < 3; try++ {
			fr := testing.Benchmark(func(bb *testing.B) {
				for i := 0; i < bb.N; i++ {
					fast()
				}
			})
			sr := testing.Benchmark(func(bb *testing.B) {
				for i := 0; i < bb.N; i++ {
					slow()
				}
			})
			if r := float64(sr.NsPerOp()) / float64(fr.NsPerOp()); r > best {
				best = r
			}
		}
		return best
	}

	var out [128]uint32
	if r := ratio(
		func() { Unpack(horiz, out[:], b) },
		func() { UnpackRef(horiz, out[:], b) },
	); r < 1.2 {
		t.Errorf("horizontal Unpack speedup %.2fx over reference, want >= 1.2x", r)
	}
	var dec [127]uint32
	if r := ratio(
		func() { VUnpackDelta(vert, &dec, 1, b) },
		func() {
			var tmp [128]uint32
			VUnpackRef(vert, &tmp, b)
			prev := uint32(1)
			for i := range dec {
				prev += tmp[i]
				dec[i] = prev
			}
		},
	); r < 1.2 {
		t.Errorf("fused VUnpackDelta speedup %.2fx over reference, want >= 1.2x", r)
	}
}
