package kernels

// The *_gen.go kernels in this package are emitted by cmd/genkernels
// and committed. Regenerate after changing the generator; CI's drift
// gate (go generate ./... && git diff --exit-code) keeps them in sync.

//go:generate go run repro/cmd/genkernels -out .
