package kernels

import (
	"encoding/binary"
	"testing"
)

// FuzzVpackRoundtrip drives pack -> unpack roundtrips across every
// width through both layouts, cross-checking the specialized kernels
// against the generic references on arbitrary inputs. Run in CI as a
// fuzz smoke alongside FuzzIndexRead.
func FuzzVpackRoundtrip(f *testing.F) {
	// Seed the corner widths explicitly: 0 (no payload), 1 (densest
	// word reuse), 31 (every value straddles words), 32 (mask-free).
	f.Add(uint8(0), []byte{})
	f.Add(uint8(1), []byte{0xff, 0x00, 0xaa, 0x55})
	f.Add(uint8(31), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add(uint8(32), []byte{0xde, 0xad, 0xbe, 0xef, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, widthByte uint8, data []byte) {
		b := uint(widthByte) % 33
		mask := uint32(uint64(1)<<b - 1)
		var vals [128]uint32
		for i := range vals {
			if 4*i+4 <= len(data) {
				vals[i] = binary.LittleEndian.Uint32(data[4*i:]) & mask
			} else if len(data) > 0 {
				vals[i] = uint32(data[i%len(data)]) & mask
			}
		}

		// Vertical layout.
		packed := VPack128(nil, &vals, b)
		var ref, got [128]uint32
		VUnpackRef(packed, &ref, b)
		if ref != vals {
			t.Fatalf("b=%d: vertical reference roundtrip broken", b)
		}
		if VUnpack(packed, &got, b); got != ref {
			t.Fatalf("b=%d: VUnpack != VUnpackRef", b)
		}
		prev := uint32(0)
		if len(data) > 3 {
			prev = binary.LittleEndian.Uint32(data)
		}
		var delta, base [127]uint32
		VUnpackDelta(packed, &delta, prev, b)
		VUnpackBase(packed, &base, prev, b)
		p := prev
		for i := 0; i < 127; i++ {
			p += vals[i]
			if delta[i] != p {
				t.Fatalf("b=%d: fused delta diverges at %d: %d != %d", b, i, delta[i], p)
			}
			if base[i] != prev+vals[i] {
				t.Fatalf("b=%d: fused base diverges at %d", b, i)
			}
		}

		// Horizontal layout, at a data-derived length to hit the
		// kernel/reference tail split.
		n := 1
		if len(data) > 0 {
			n += int(data[0]) % 128
		}
		hp := Pack(nil, vals[:n], b)
		want := make([]uint32, n)
		wantUsed := UnpackRef(hp, want, b)
		out := make([]uint32, n)
		if used := Unpack(hp, out, b); used != wantUsed {
			t.Fatalf("b=%d n=%d: used %d, want %d", b, n, used, wantUsed)
		}
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("b=%d n=%d: Unpack[%d] = %d, want %d", b, n, i, out[i], want[i])
			}
			if want[i] != vals[i] {
				t.Fatalf("b=%d n=%d: horizontal roundtrip broken at %d", b, n, i)
			}
		}
	})
}
