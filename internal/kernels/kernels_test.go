package kernels

import (
	"fmt"
	"math/rand"
	"testing"
)

// patterns returns the adversarial inputs every width is checked with:
// random, all-zero, all-max, and single-bit walks (bit i set in value
// i%128 only) — the cases where shift/mask bugs surface.
func patterns(b uint, rng *rand.Rand) [][128]uint32 {
	mask := uint32(uint64(1)<<b - 1)
	var random, zero, maxv, walk [128]uint32
	for i := range random {
		random[i] = rng.Uint32() & mask
		maxv[i] = mask
		if b > 0 {
			walk[i] = 1 << (uint(i) % b) & mask
		}
	}
	return [][128]uint32{random, zero, maxv, walk}
}

func TestUnpackMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	lengths := []int{1, 5, 31, 32, 33, 63, 64, 96, 100, 127, 128}
	for b := uint(0); b <= 32; b++ {
		for pi, vals := range patterns(b, rng) {
			for _, n := range lengths {
				packed := Pack(nil, vals[:n], b)
				want := make([]uint32, n)
				wantUsed := UnpackRef(packed, want, b)

				// Exact-length src: the tail must take the reference path.
				got := make([]uint32, n)
				if used := Unpack(packed, got, b); used != wantUsed {
					t.Fatalf("b=%d pat=%d n=%d: used %d, want %d", b, pi, n, used, wantUsed)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("b=%d pat=%d n=%d (exact): out[%d] = %d, want %d", b, pi, n, i, got[i], want[i])
					}
				}

				// Slack after the payload: the tail may over-read through
				// the kernel; results must be identical.
				slack := append(append([]byte{}, packed...), make([]byte, 4*b)...)
				got2 := make([]uint32, n)
				if used := Unpack(slack, got2, b); used != wantUsed {
					t.Fatalf("b=%d pat=%d n=%d (slack): used %d, want %d", b, pi, n, used, wantUsed)
				}
				for i := range want {
					if got2[i] != want[i] {
						t.Fatalf("b=%d pat=%d n=%d (slack): out[%d] = %d, want %d", b, pi, n, i, got2[i], want[i])
					}
				}
			}
		}
	}
}

func TestVUnpackMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for b := uint(0); b <= 32; b++ {
		for pi, vals := range patterns(b, rng) {
			packed := VPack128(nil, &vals, b)
			if len(packed) != int(16*b) {
				t.Fatalf("b=%d: packed %d bytes, want %d", b, len(packed), 16*b)
			}
			var ref, got [128]uint32
			refUsed := VUnpackRef(packed, &ref, b)
			if ref != vals {
				t.Fatalf("b=%d pat=%d: reference does not roundtrip", b, pi)
			}
			if used := VUnpack(packed, &got, b); used != refUsed {
				t.Fatalf("b=%d pat=%d: used %d, want %d", b, pi, used, refUsed)
			}
			if got != ref {
				t.Fatalf("b=%d pat=%d: VUnpack != VUnpackRef\n got %v\nwant %v", b, pi, got, ref)
			}
		}
	}
}

func TestVUnpackDeltaMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for b := uint(0); b <= 32; b++ {
		for pi, vals := range patterns(b, rng) {
			packed := VPack128(nil, &vals, b)
			prev := rng.Uint32()
			var want [127]uint32
			p := prev
			for i := range want {
				p += vals[i]
				want[i] = p
			}
			var got [127]uint32
			if used := VUnpackDelta(packed, &got, prev, b); used != int(16*b) {
				t.Fatalf("b=%d pat=%d: used %d, want %d", b, pi, used, 16*b)
			}
			if got != want {
				t.Fatalf("b=%d pat=%d: fused delta mismatch\n got %v\nwant %v", b, pi, got, want)
			}
		}
	}
}

func TestVUnpackBaseMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for b := uint(0); b <= 32; b++ {
		for pi, vals := range patterns(b, rng) {
			packed := VPack128(nil, &vals, b)
			base := rng.Uint32()
			var want [127]uint32
			for i := range want {
				want[i] = base + vals[i]
			}
			var got [127]uint32
			if used := VUnpackBase(packed, &got, base, b); used != int(16*b) {
				t.Fatalf("b=%d pat=%d: used %d, want %d", b, pi, used, 16*b)
			}
			if got != want {
				t.Fatalf("b=%d pat=%d: fused base mismatch\n got %v\nwant %v", b, pi, got, want)
			}
		}
	}
}

// TestUnpackConcurrent exercises the kernels from parallel goroutines
// so `go test -race ./internal/kernels` proves they are state-free.
func TestUnpackConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var vals [128]uint32
	for i := range vals {
		vals[i] = rng.Uint32() & 0x1fff
	}
	horiz := Pack(nil, vals[:], 13)
	vert := VPack128(nil, &vals, 13)
	t.Run("group", func(t *testing.T) {
		for g := 0; g < 8; g++ {
			t.Run(fmt.Sprintf("reader-%d", g), func(t *testing.T) {
				t.Parallel()
				for iter := 0; iter < 100; iter++ {
					out := make([]uint32, 128)
					Unpack(horiz, out, 13)
					var v [128]uint32
					VUnpack(vert, &v, 13)
					var d, bse [127]uint32
					VUnpackDelta(vert, &d, 7, 13)
					VUnpackBase(vert, &bse, 7, 13)
					for i := range v {
						if v[i] != vals[i] || out[i] != vals[i] {
							t.Fatalf("corrupted decode at %d", i)
						}
					}
				}
			})
		}
	})
}
