package kernels

import "math/bits"

// Word-batch bitmap kernels: 4-way-unrolled bulk operations over
// []uint64 bit-vector words, and the shared set-bit extraction loop
// that every bitmap codec's materialization path funnels through.
// The unroll keeps four independent word operations in flight per
// iteration, which hides load latency the single-word loops in the
// codecs used to serialize on.

// AndWords sets dst[i] = a[i] & b[i] for i < len(dst). a and b must be
// at least len(dst) long.
func AndWords(dst, a, b []uint64) {
	n := len(dst)
	a = a[:n]
	b = b[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] = a[i] & b[i]
		dst[i+1] = a[i+1] & b[i+1]
		dst[i+2] = a[i+2] & b[i+2]
		dst[i+3] = a[i+3] & b[i+3]
	}
	for ; i < n; i++ {
		dst[i] = a[i] & b[i]
	}
}

// OrWords sets dst[i] = a[i] | b[i] for i < len(dst). a and b must be
// at least len(dst) long.
func OrWords(dst, a, b []uint64) {
	n := len(dst)
	a = a[:n]
	b = b[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] = a[i] | b[i]
		dst[i+1] = a[i+1] | b[i+1]
		dst[i+2] = a[i+2] | b[i+2]
		dst[i+3] = a[i+3] | b[i+3]
	}
	for ; i < n; i++ {
		dst[i] = a[i] | b[i]
	}
}

// AndNotWords sets dst[i] = a[i] &^ b[i] for i < len(dst). a and b must
// be at least len(dst) long.
func AndNotWords(dst, a, b []uint64) {
	n := len(dst)
	a = a[:n]
	b = b[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] = a[i] &^ b[i]
		dst[i+1] = a[i+1] &^ b[i+1]
		dst[i+2] = a[i+2] &^ b[i+2]
		dst[i+3] = a[i+3] &^ b[i+3]
	}
	for ; i < n; i++ {
		dst[i] = a[i] &^ b[i]
	}
}

// PopcountWords returns the total number of set bits in words, with
// four independent accumulators.
func PopcountWords(words []uint64) int {
	var c0, c1, c2, c3 int
	i := 0
	for ; i+4 <= len(words); i += 4 {
		c0 += bits.OnesCount64(words[i])
		c1 += bits.OnesCount64(words[i+1])
		c2 += bits.OnesCount64(words[i+2])
		c3 += bits.OnesCount64(words[i+3])
	}
	for ; i < len(words); i++ {
		c0 += bits.OnesCount64(words[i])
	}
	return c0 + c1 + c2 + c3
}

// ExtractWord appends the positions of the set bits of w, offset by
// base, to dst in increasing order.
func ExtractWord(dst []uint32, w uint64, base uint32) []uint32 {
	for w != 0 {
		dst = append(dst, base+uint32(bits.TrailingZeros64(w)))
		w &= w - 1
	}
	return dst
}

// ExtractWords appends the positions of all set bits of words — word i
// contributing base + 64*i + TrailingZeros — to dst in increasing
// order. This is the one shared word -> sorted-uint32s loop behind
// Bitset, the Roaring bitmap containers, and the RLE span streams.
func ExtractWords(dst []uint32, words []uint64, base uint32) []uint32 {
	for i, w := range words {
		p := base + uint32(i)<<6
		for w != 0 {
			dst = append(dst, p+uint32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}

// batchWords is the chunk size of the fused combine+extract helpers:
// 1 KiB of stack per call, large enough to amortize the per-chunk
// call overhead, small enough to stay resident in L1.
const batchWords = 128

// AndWordsExtract appends the positions of the set bits of a&b (over
// their common prefix) to dst, combining and extracting in cache-sized
// word batches.
func AndWordsExtract(dst []uint32, a, b []uint64, base uint32) []uint32 {
	n := min(len(a), len(b))
	var buf [batchWords]uint64
	for i := 0; i < n; i += batchWords {
		k := min(batchWords, n-i)
		AndWords(buf[:k], a[i:i+k], b[i:i+k])
		dst = ExtractWords(dst, buf[:k], base+uint32(i)<<6)
	}
	return dst
}

// OrWordsExtract appends the positions of the set bits of a|b to dst.
// Words past the shorter operand's end are taken from the longer one.
func OrWordsExtract(dst []uint32, a, b []uint64, base uint32) []uint32 {
	if len(b) > len(a) {
		a, b = b, a
	}
	n := len(b)
	var buf [batchWords]uint64
	for i := 0; i < n; i += batchWords {
		k := min(batchWords, n-i)
		OrWords(buf[:k], a[i:i+k], b[i:i+k])
		dst = ExtractWords(dst, buf[:k], base+uint32(i)<<6)
	}
	return ExtractWords(dst, a[n:], base+uint32(n)<<6)
}
