package bitmap

import (
	"math/rand"
	"testing"
)

// TestRoaringThresholdVariants: all thresholds produce correct
// postings; the container mix shifts with the threshold.
func TestRoaringThresholdVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := randomSet(rng, 3000, 1<<17) // two buckets, ~1500 each
	for _, threshold := range []int{64, 512, 1024, 4096, 16384} {
		c := NewRoaringThreshold(threshold)
		p, err := c.Compress(vals)
		if err != nil {
			t.Fatalf("threshold %d: %v", threshold, err)
		}
		if !equalU32(p.Decompress(), vals) {
			t.Errorf("threshold %d: round trip failed", threshold)
		}
		rp := p.(*roaringPosting)
		for i, cc := range rp.cs {
			if a, ok := cc.(arrayContainer); ok && len(a) > threshold {
				t.Errorf("threshold %d: container %d is an array of %d", threshold, i, len(a))
			}
		}
	}
	// Low threshold forces bitmap containers even for small buckets.
	p, _ := NewRoaringThreshold(64).Compress(vals)
	sawBitmap := false
	for _, cc := range p.(*roaringPosting).cs {
		if _, ok := cc.(*bitmapContainer); ok {
			sawBitmap = true
		}
	}
	if !sawBitmap {
		t.Error("threshold 64 should force bitmap containers")
	}
	// Default threshold keeps these buckets as arrays.
	p, _ = NewRoaring().Compress(vals)
	for i, cc := range p.(*roaringPosting).cs {
		if _, ok := cc.(*bitmapContainer); ok {
			t.Errorf("default threshold: container %d should be an array", i)
		}
	}
}

// TestRoaringThresholdCrossOps: postings built with different
// thresholds still intersect/union correctly with each other (they are
// the same codec type).
func TestRoaringThresholdCrossOps(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomSet(rng, 2000, 1<<17)
	b := randomSet(rng, 5000, 1<<17)
	pa, _ := NewRoaringThreshold(128).Compress(a)
	pb, _ := NewRoaringThreshold(8192).Compress(b)
	got, err := pa.(*roaringPosting).IntersectWith(pb)
	if err != nil {
		t.Fatal(err)
	}
	if !equalU32(normalize(got), refIntersect(a, b)) {
		t.Fatal("cross-threshold intersect mismatch")
	}
	or, err := pa.(*roaringPosting).UnionWith(pb)
	if err != nil {
		t.Fatal(err)
	}
	if !equalU32(normalize(or), refUnion(a, b)) {
		t.Fatal("cross-threshold union mismatch")
	}
}
