package bitmap

import (
	"sort"

	"repro/internal/core"
)

// core.BucketProber implementations for the bucketed codecs (Roaring
// and Roaring+Run). The interface exposes the 2^16-wide container
// structure so the query engine's mixed kernel can intersect a dense
// bitmap with a compressed sparse list without decompressing either
// side: bucket keys line up with the list's skip blocks, matching
// buckets are probed element-wise in whichever direction is cheaper.

var (
	_ core.BucketProber = (*roaringPosting)(nil)
	_ core.BucketProber = (*roaringRunPosting)(nil)
)

// containerContains is the one-shot membership test across all three
// container kinds (arrays binary-search, bitmaps index a word, run
// containers binary-search intervals).
func containerContains(c container, low uint16) bool {
	switch cc := c.(type) {
	case arrayContainer:
		k := sort.Search(len(cc), func(i int) bool { return cc[i] >= low })
		return k < len(cc) && cc[k] == low
	case *bitmapContainer:
		return cc.contains(low)
	case *runContainer:
		return cc.contains(low)
	}
	return false
}

func (p *roaringPosting) NumBuckets() int        { return len(p.keys) }
func (p *roaringPosting) BucketKey(i int) uint16 { return p.keys[i] }
func (p *roaringPosting) BucketLen(i int) int    { return p.cs[i].card() }
func (p *roaringPosting) BucketContains(i int, lo uint16) bool {
	return containerContains(p.cs[i], lo)
}
func (p *roaringPosting) AppendBucket(i int, dst []uint32) []uint32 {
	return p.cs[i].appendAll(dst, uint32(p.keys[i])<<16)
}

func (p *roaringRunPosting) NumBuckets() int        { return len(p.keys) }
func (p *roaringRunPosting) BucketKey(i int) uint16 { return p.keys[i] }
func (p *roaringRunPosting) BucketLen(i int) int    { return p.cs[i].card() }
func (p *roaringRunPosting) BucketContains(i int, lo uint16) bool {
	return containerContains(p.cs[i], lo)
}
func (p *roaringRunPosting) AppendBucket(i int, dst []uint32) []uint32 {
	return p.cs[i].appendAll(dst, uint32(p.keys[i])<<16)
}
