package bitmap

import "testing"

// sliceReader replays a fixed span list (for direct engine tests).
type sliceReader struct {
	spans []span
	i     int
}

func (r *sliceReader) next() (span, bool) {
	if r.i >= len(r.spans) {
		return span{}, false
	}
	s := r.spans[r.i]
	r.i++
	return s, true
}

func reader(spans ...span) spanReader { return &sliceReader{spans: spans} }

func TestDecompressSpansKinds(t *testing.T) {
	r := reader(
		span{n: 10, kind: zeroFill},
		span{n: 3, kind: oneFill},
		span{n: 8, word: 0b10000001, kind: literalSpan},
	)
	got := decompressSpans(r, 0)
	want := []uint32{10, 11, 12, 13, 20}
	if !equalU32(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestIntersectSpanReadersAlignment(t *testing.T) {
	// a: ones over [0,100); b: zero fill [0,50) then ones [50,100).
	a := reader(span{n: 100, kind: oneFill})
	b := reader(span{n: 50, kind: zeroFill}, span{n: 50, kind: oneFill})
	got := intersectSpanReaders(a, b)
	if len(got) != 50 || got[0] != 50 || got[49] != 99 {
		t.Fatalf("got %d values, first %d last %d", len(got), got[0], got[len(got)-1])
	}
}

func TestIntersectSpanReadersLiteralOverlap(t *testing.T) {
	// Misaligned literals: a covers [0,31), b covers [0,7)+[7,14)... with
	// different widths, forcing sub-word extraction.
	a := reader(span{n: 31, word: 0x7fffffff, kind: literalSpan})
	b := reader(
		span{n: 7, word: 0b1010101, kind: literalSpan},
		span{n: 7, word: 0b0000001, kind: literalSpan},
		span{n: 17, kind: zeroFill},
	)
	got := intersectSpanReaders(a, b)
	want := []uint32{0, 2, 4, 6, 7}
	if !equalU32(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestIntersectStopsAtShorterStream(t *testing.T) {
	a := reader(span{n: 10, kind: oneFill})
	b := reader(span{n: 100, kind: oneFill})
	got := intersectSpanReaders(a, b)
	if len(got) != 10 {
		t.Fatalf("got %d values, want 10", len(got))
	}
}

func TestUnionSpanReadersDrain(t *testing.T) {
	a := reader(span{n: 5, kind: oneFill})
	b := reader(
		span{n: 10, kind: zeroFill},
		span{n: 8, word: 0b11, kind: literalSpan},
	)
	got := unionSpanReaders(a, b)
	want := []uint32{0, 1, 2, 3, 4, 10, 11}
	if !equalU32(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	// Symmetric drain (a longer).
	got = unionSpanReaders(
		reader(span{n: 10, kind: zeroFill}, span{n: 8, word: 0b11, kind: literalSpan}),
		reader(span{n: 5, kind: oneFill}),
	)
	if !equalU32(got, want) {
		t.Fatalf("sym: got %v want %v", got, want)
	}
}

func TestUnionOneFillDominatesLiterals(t *testing.T) {
	// b's literal content inside a's one fill must not matter.
	a := reader(span{n: 64, kind: oneFill})
	b := reader(
		span{n: 31, word: 0x55555555, kind: literalSpan},
		span{n: 31, word: 0, kind: literalSpan},
		span{n: 31, word: 0x3, kind: literalSpan},
	)
	got := unionSpanReaders(a, b)
	// [0,64) all set, then bits 62+2..63+... b's third literal covers
	// [62,93): bits 62,63 set -> already inside; nothing beyond.
	if len(got) != 64 || got[63] != 63 {
		t.Fatalf("got %d values, last %v", len(got), got[len(got)-1])
	}
}

func TestSpanCursorAdvanceAcrossSpans(t *testing.T) {
	c := newSpanCursor(reader(
		span{n: 10, kind: zeroFill},
		span{n: 20, kind: oneFill},
		span{n: 31, word: 1, kind: literalSpan},
	))
	c.advance(15) // into the one fill
	if c.pos != 15 || c.cur.kind != oneFill || c.remaining() != 15 {
		t.Fatalf("cursor state: pos %d kind %d rem %d", c.pos, c.cur.kind, c.remaining())
	}
	c.advance(15) // exactly at the literal boundary
	if c.cur.kind != literalSpan || c.off != 0 {
		t.Fatalf("cursor should sit at literal start, kind %d off %d", c.cur.kind, c.off)
	}
	c.advance(40) // past the end
	if c.ok {
		t.Fatal("cursor should be exhausted")
	}
}

func TestForEachGroupAggregatesZeroRuns(t *testing.T) {
	var calls []struct {
		word  uint64
		count uint64
	}
	forEachGroup([]uint32{3, 100}, 31, func(word, count uint64) {
		calls = append(calls, struct{ word, count uint64 }{word, count})
	})
	// group 0 has bit 3; groups 1-2 empty (aggregated into one call);
	// group 3 has bit 100-93=7 — three calls total.
	if len(calls) != 3 {
		t.Fatalf("calls = %v", calls)
	}
	if calls[0].word != 1<<3 || calls[0].count != 1 {
		t.Errorf("call 0 = %+v", calls[0])
	}
	if calls[1].word != 0 || calls[1].count != 2 {
		t.Errorf("call 1 = %+v", calls[1])
	}
	if calls[2].word != 1<<7 || calls[2].count != 1 {
		t.Errorf("call 2 = %+v", calls[2])
	}
}
