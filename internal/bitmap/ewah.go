package bitmap

import "repro/internal/core"

// EWAH (Enhanced Word-Aligned Hybrid, §2.2) divides the bitmap into
// 32-bit groups and encodes a run of p fill groups followed by q literal
// groups as one marker word followed by the q literal words. Marker
// layout (from bit 0): 1 fill-bit, 16-bit fill count p (<= 65535),
// 15-bit literal count q (<= 32767).
type EWAH struct{}

// NewEWAH returns the EWAH codec.
func NewEWAH() core.Codec { return EWAH{} }

func (EWAH) Name() string    { return "EWAH" }
func (EWAH) Kind() core.Kind { return core.KindBitmap }

const (
	ewahWidth    = 32
	ewahMaxFill  = 65535
	ewahMaxLit   = 32767
	ewahGroupAll = ^uint32(0)
)

func ewahMarker(fillBit bool, p, q uint32) uint32 {
	m := p<<1 | q<<17
	if fillBit {
		m |= 1
	}
	return m
}

func (EWAH) Compress(values []uint32) (core.Posting, error) {
	if err := core.ValidateSorted(values); err != nil {
		return nil, err
	}
	p := &ewahPosting{n: len(values)}
	var fillBit bool
	var fillCount uint32
	var literals []uint32
	emitMarker := func() {
		p.words = append(p.words, ewahMarker(fillBit, fillCount, uint32(len(literals))))
		p.words = append(p.words, literals...)
		fillCount = 0
		literals = literals[:0]
	}
	addFill := func(bit bool, count uint64) {
		if len(literals) > 0 {
			emitMarker()
		}
		if fillCount > 0 && fillBit != bit {
			emitMarker()
		}
		fillBit = bit
		for count > 0 {
			room := uint64(ewahMaxFill - fillCount)
			add := count
			if add > room {
				add = room
			}
			fillCount += uint32(add)
			count -= add
			if count > 0 {
				emitMarker()
				fillBit = bit
			}
		}
	}
	forEachGroup(values, ewahWidth, func(word uint64, count uint64) {
		switch {
		case word == 0:
			addFill(false, count)
		case word == uint64(ewahGroupAll):
			addFill(true, 1)
		default:
			literals = append(literals, uint32(word))
			if len(literals) == ewahMaxLit {
				emitMarker()
			}
		}
	})
	if fillCount > 0 || len(literals) > 0 {
		emitMarker()
	}
	return p, nil
}

type ewahPosting struct {
	words []uint32
	n     int
}

func (p *ewahPosting) Len() int       { return p.n }
func (p *ewahPosting) SizeBytes() int { return len(p.words) * 4 }

func (p *ewahPosting) spans() spanReader { return &ewahReader{words: p.words} }

func (p *ewahPosting) Decompress() []uint32 { return decompressSpans(p.spans(), p.n) }

// DecompressAppend implements core.DecompressAppender on the span stream.
func (p *ewahPosting) DecompressAppend(dst []uint32) []uint32 {
	return decompressSpansAppend(p.spans(), dst)
}

func (p *ewahPosting) IntersectWith(other core.Posting) ([]uint32, error) {
	q, ok := other.(*ewahPosting)
	if !ok {
		return nil, core.ErrIncompatible
	}
	return intersectSpanReaders(p.spans(), q.spans()), nil
}

func (p *ewahPosting) UnionWith(other core.Posting) ([]uint32, error) {
	q, ok := other.(*ewahPosting)
	if !ok {
		return nil, core.ErrIncompatible
	}
	return unionSpanReaders(p.spans(), q.spans()), nil
}

type ewahReader struct {
	words []uint32
	i     int
	lit   uint32 // literal words still owed by the current marker
}

func (r *ewahReader) next() (span, bool) {
	for {
		if r.lit > 0 {
			r.lit--
			w := r.words[r.i]
			r.i++
			return span{n: ewahWidth, word: uint64(w), kind: literalSpan}, true
		}
		if r.i >= len(r.words) {
			return span{}, false
		}
		m := r.words[r.i]
		r.i++
		fill := uint64(m >> 1 & ewahMaxFill)
		r.lit = m >> 17
		if fill > 0 {
			kind := zeroFill
			if m&1 != 0 {
				kind = oneFill
			}
			return span{n: fill * ewahWidth, kind: kind}, true
		}
		// Marker with no fills: loop to emit its literals (or the next
		// marker if it has none either).
	}
}
