package bitmap

import (
	"repro/internal/core"
	"repro/internal/kernels"
)

// Bitset is the uncompressed bitmap baseline ("Bitset" in the paper's
// legends). Its size and performance depend on the maximum element in
// the list, regardless of the list length (§5.1 observation 5).
type Bitset struct{}

// NewBitset returns the uncompressed-bitmap codec.
func NewBitset() core.Codec { return Bitset{} }

func (Bitset) Name() string    { return "Bitset" }
func (Bitset) Kind() core.Kind { return core.KindBitmap }

// Compress materializes a plain bit vector sized to the maximum value.
func (Bitset) Compress(values []uint32) (core.Posting, error) {
	if err := core.ValidateSorted(values); err != nil {
		return nil, err
	}
	p := &bitsetPosting{n: len(values)}
	if len(values) == 0 {
		return p, nil
	}
	maxV := values[len(values)-1]
	p.words = make([]uint64, uint64(maxV)/64+1)
	for _, v := range values {
		p.words[v>>6] |= 1 << (v & 63)
	}
	return p, nil
}

type bitsetPosting struct {
	words []uint64
	n     int
}

func (p *bitsetPosting) Len() int       { return p.n }
func (p *bitsetPosting) SizeBytes() int { return len(p.words) * 8 }

func (p *bitsetPosting) Decompress() []uint32 {
	return p.DecompressAppend(make([]uint32, 0, p.n))
}

// DecompressAppend implements core.DecompressAppender.
func (p *bitsetPosting) DecompressAppend(dst []uint32) []uint32 {
	return kernels.ExtractWords(dst, p.words, 0)
}

// IntersectWith ANDs two bit vectors in 4-way-unrolled word batches and
// extracts the result through the shared kernel.
func (p *bitsetPosting) IntersectWith(other core.Posting) ([]uint32, error) {
	q, ok := other.(*bitsetPosting)
	if !ok {
		return nil, core.ErrIncompatible
	}
	return kernels.AndWordsExtract(nil, p.words, q.words, 0), nil
}

// UnionWith ORs two bit vectors in 4-way-unrolled word batches and
// extracts the result through the shared kernel.
func (p *bitsetPosting) UnionWith(other core.Posting) ([]uint32, error) {
	q, ok := other.(*bitsetPosting)
	if !ok {
		return nil, core.ErrIncompatible
	}
	out := make([]uint32, 0, p.n+q.n)
	return kernels.OrWordsExtract(out, p.words, q.words, 0), nil
}

// Contains reports whether v is set; used by list-vs-bitmap probing in
// multi-way intersections (§B.1).
func (p *bitsetPosting) Contains(v uint32) bool {
	i := int(v >> 6)
	return i < len(p.words) && p.words[i]&(1<<(v&63)) != 0
}
