package bitmap

import "repro/internal/core"

// SBH (Super Byte-aligned Hybrid, §2.6) divides the bitmap into 7-bit
// groups encoded one per byte. A literal byte has bit 7 clear and its
// low 7 bits copied from the group. Fill runs of k groups are encoded
// in one byte (bit 7 set, bit 6 the fill bit, low 6 bits k) when k <= 63,
// or in two such bytes (low 6 bits of k, then high 6 bits of k) when
// 63 < k <= 4093. The decoder distinguishes the forms by peeking at the
// next byte — the extra flag inspection per iteration is what makes SBH
// slower than BBC in the paper's measurements (§5.1 observation 7).
type SBH struct{}

// NewSBH returns the SBH codec.
func NewSBH() core.Codec { return SBH{} }

func (SBH) Name() string    { return "SBH" }
func (SBH) Kind() core.Kind { return core.KindBitmap }

const (
	sbhWidth   = 7
	sbhFill    = byte(0x80)
	sbhFillBit = byte(0x40)
	sbhMaxOne  = uint64(63)
	sbhMaxTwo  = uint64(4093)
)

func (SBH) Compress(values []uint32) (core.Posting, error) {
	if err := core.ValidateSorted(values); err != nil {
		return nil, err
	}
	p := &sbhPosting{n: len(values)}
	emitFill := func(bit bool, count uint64) {
		fb := byte(0)
		if bit {
			fb = sbhFillBit
		}
		if count <= sbhMaxOne {
			p.data = append(p.data, sbhFill|fb|byte(count))
			return
		}
		// Two-byte chunks only: a trailing one-byte form would be
		// misparsed as the high half of the preceding pair.
		for count > 0 {
			c := count
			if c > sbhMaxTwo {
				c = sbhMaxTwo
			}
			p.data = append(p.data,
				sbhFill|fb|byte(c&63),
				sbhFill|fb|byte(c>>6))
			count -= c
		}
	}
	var run uint64
	var runBit bool
	forEachGroup(values, sbhWidth, func(word uint64, count uint64) {
		switch {
		case word == 0:
			if run > 0 && runBit {
				emitFill(true, run)
				run = 0
			}
			runBit = false
			run += count
		case word == uint64(groupMask(sbhWidth)):
			if run > 0 && !runBit {
				emitFill(false, run)
				run = 0
			}
			runBit = true
			run++
		default:
			if run > 0 {
				emitFill(runBit, run)
				run = 0
			}
			p.data = append(p.data, byte(word))
		}
	})
	if run > 0 {
		emitFill(runBit, run)
	}
	return p, nil
}

type sbhPosting struct {
	data []byte
	n    int
}

func (p *sbhPosting) Len() int       { return p.n }
func (p *sbhPosting) SizeBytes() int { return len(p.data) }

func (p *sbhPosting) spans() spanReader { return &sbhReader{data: p.data} }

func (p *sbhPosting) Decompress() []uint32 { return decompressSpans(p.spans(), p.n) }

// DecompressAppend implements core.DecompressAppender on the span stream.
func (p *sbhPosting) DecompressAppend(dst []uint32) []uint32 {
	return decompressSpansAppend(p.spans(), dst)
}

func (p *sbhPosting) IntersectWith(other core.Posting) ([]uint32, error) {
	q, ok := other.(*sbhPosting)
	if !ok {
		return nil, core.ErrIncompatible
	}
	return intersectSpanReaders(p.spans(), q.spans()), nil
}

func (p *sbhPosting) UnionWith(other core.Posting) ([]uint32, error) {
	q, ok := other.(*sbhPosting)
	if !ok {
		return nil, core.ErrIncompatible
	}
	return unionSpanReaders(p.spans(), q.spans()), nil
}

type sbhReader struct {
	data []byte
	i    int
}

func (r *sbhReader) next() (span, bool) {
	if r.i >= len(r.data) {
		return span{}, false
	}
	b := r.data[r.i]
	r.i++
	if b&sbhFill == 0 {
		return span{n: sbhWidth, word: uint64(b), kind: literalSpan}, true
	}
	count := uint64(b & 63)
	// Two-byte form: the next byte is a fill byte with the same fill bit.
	if r.i < len(r.data) {
		nb := r.data[r.i]
		if nb&sbhFill != 0 && nb&sbhFillBit == b&sbhFillBit {
			count |= uint64(nb&63) << 6
			r.i++
		}
	}
	kind := zeroFill
	if b&sbhFillBit != 0 {
		kind = oneFill
	}
	return span{n: count * sbhWidth, kind: kind}, true
}
