package bitmap

import "repro/internal/core"

// BBC (Byte-aligned Bitmap Code, §2.8) partitions the bitmap into bytes
// and encodes runs of fill bytes plus trailing literal bytes using four
// header patterns (Figure 2):
//
//	P1 1 f cc llll            : cc (<=3) fill bytes, llll (<=15) literal bytes follow
//	P2 01 f cc ppp            : cc (<=3) fill bytes + one odd byte (bit ppp flipped)
//	P3 001 f llll  + VB count : >=4 fill bytes (VB counter), llll literals follow
//	P4 0001 f ppp  + VB count : >=4 fill bytes + one odd byte
//
// Multi-byte counters use the paper's VB layout (§3.1). BBC achieves
// nearly the smallest space among bitmap codecs at the cost of decoding
// many cases (§5.1 observation 6).
type BBC struct{}

// NewBBC returns the BBC codec.
func NewBBC() core.Codec { return BBC{} }

func (BBC) Name() string    { return "BBC" }
func (BBC) Kind() core.Kind { return core.KindBitmap }

// bbcPutVB appends the paper-layout VB encoding of v: big-endian 7-bit
// digits, MSB set on all but the last byte.
func bbcPutVB(dst []byte, v uint64) []byte {
	var tmp [10]byte
	i := len(tmp)
	i--
	tmp[i] = byte(v & 0x7f)
	v >>= 7
	for v > 0 {
		i--
		tmp[i] = byte(v&0x7f) | 0x80
		v >>= 7
	}
	return append(dst, tmp[i:]...)
}

// bbcReadVB decodes a paper-layout VB value starting at data[i].
func bbcReadVB(data []byte, i int) (v uint64, next int) {
	for i < len(data) {
		b := data[i]
		i++
		v = v<<7 | uint64(b&0x7f)
		if b&0x80 == 0 {
			break
		}
	}
	// A continuation byte at end-of-data (possible only on corrupt or
	// truncated input) terminates with the bits read so far; the
	// verify pass rejects the stream on its cardinality mismatch.
	return v, i
}

func (BBC) Compress(values []uint32) (core.Posting, error) {
	if err := core.ValidateSorted(values); err != nil {
		return nil, err
	}
	p := &bbcPosting{n: len(values)}
	items := collectGroups(values, 8)
	i := 0
	for i < len(items) {
		var fillCount uint64
		var fillBit bool
		if items[i].count > 0 {
			fillCount = items[i].count
			fillBit = items[i].bit
			i++
		}
		// Gather the literal run that follows.
		j := i
		for j < len(items) && items[j].count == 0 {
			j++
		}
		lits := items[i:j]
		i = j
		// Odd-byte fusion: exactly one literal, one bit away from the fill.
		if len(lits) == 1 {
			if pos, ok := oddBitOf(lits[0].word, fillBit, 8); ok {
				if fillCount <= 3 {
					p.data = append(p.data, 0x40|boolBit(fillBit)<<5|byte(fillCount)<<3|byte(pos))
				} else {
					p.data = append(p.data, 0x10|boolBit(fillBit)<<3|byte(pos))
					p.data = bbcPutVB(p.data, fillCount)
				}
				continue
			}
		}
		// General form: one header carries the fills plus up to 15
		// literals; remaining literals use P1 headers with zero fills.
		for first := true; first || len(lits) > 0; first = false {
			take := len(lits)
			if take > 15 {
				take = 15
			}
			fc := fillCount
			if !first {
				fc = 0
			}
			if fc <= 3 {
				p.data = append(p.data, 0x80|boolBit(fillBit)<<6|byte(fc)<<4|byte(take))
			} else {
				p.data = append(p.data, 0x20|boolBit(fillBit)<<4|byte(take))
				p.data = bbcPutVB(p.data, fc)
			}
			for _, l := range lits[:take] {
				p.data = append(p.data, byte(l.word))
			}
			lits = lits[take:]
			if len(lits) == 0 {
				break
			}
		}
	}
	return p, nil
}

func boolBit(b bool) byte {
	if b {
		return 1
	}
	return 0
}

type bbcPosting struct {
	data []byte
	n    int
}

func (p *bbcPosting) Len() int       { return p.n }
func (p *bbcPosting) SizeBytes() int { return len(p.data) }

func (p *bbcPosting) spans() spanReader { return &bbcReader{data: p.data} }

func (p *bbcPosting) Decompress() []uint32 { return decompressSpans(p.spans(), p.n) }

// DecompressAppend implements core.DecompressAppender on the span stream.
func (p *bbcPosting) DecompressAppend(dst []uint32) []uint32 {
	return decompressSpansAppend(p.spans(), dst)
}

func (p *bbcPosting) IntersectWith(other core.Posting) ([]uint32, error) {
	q, ok := other.(*bbcPosting)
	if !ok {
		return nil, core.ErrIncompatible
	}
	return intersectSpanReaders(p.spans(), q.spans()), nil
}

func (p *bbcPosting) UnionWith(other core.Posting) ([]uint32, error) {
	q, ok := other.(*bbcPosting)
	if !ok {
		return nil, core.ErrIncompatible
	}
	return unionSpanReaders(p.spans(), q.spans()), nil
}

type bbcReader struct {
	data []byte
	i    int
	lit  int    // literal bytes owed by the current header
	odd  uint64 // pending odd byte (+flag)
	has  bool
}

func (r *bbcReader) next() (span, bool) {
	if r.has {
		r.has = false
		return span{n: 8, word: r.odd, kind: literalSpan}, true
	}
	if r.lit > 0 {
		if r.i >= len(r.data) {
			// Corrupt input: the header promised more literal bytes
			// than the blob holds. End the stream; the verify pass
			// fails it on cardinality.
			r.lit = 0
			return span{}, false
		}
		r.lit--
		b := r.data[r.i]
		r.i++
		return span{n: 8, word: uint64(b), kind: literalSpan}, true
	}
	if r.i >= len(r.data) {
		return span{}, false
	}
	h := r.data[r.i]
	r.i++
	var fillBit bool
	var fillCount uint64
	switch {
	case h&0x80 != 0: // P1
		fillBit = h&0x40 != 0
		fillCount = uint64(h >> 4 & 3)
		r.lit = int(h & 15)
	case h&0x40 != 0: // P2
		fillBit = h&0x20 != 0
		fillCount = uint64(h >> 3 & 3)
		r.odd = oddByte(fillBit, h&7)
		r.has = true
	case h&0x20 != 0: // P3
		fillBit = h&0x10 != 0
		r.lit = int(h & 15)
		fillCount, r.i = bbcReadVB(r.data, r.i)
	default: // P4
		fillBit = h&0x08 != 0
		pos := h & 7
		fillCount, r.i = bbcReadVB(r.data, r.i)
		r.odd = oddByte(fillBit, pos)
		r.has = true
	}
	if fillCount > 0 {
		kind := zeroFill
		if fillBit {
			kind = oneFill
		}
		return span{n: fillCount * 8, kind: kind}, true
	}
	return r.next()
}

func oddByte(fillBit bool, pos byte) uint64 {
	if fillBit {
		return 0xff ^ (1 << pos)
	}
	return 1 << pos
}
