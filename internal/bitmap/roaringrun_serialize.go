package bitmap

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/kernels"
)

// Roaring+Run serialization mirrors Roaring's layout with a third
// container kind: key u16, kind u8 (0 array / 1 bitmap / 2 runs),
// cardinality u32, payload (u16 values / 1024 u64 words / run count u32
// + [start u16, last u16] pairs).

// MarshalBinary implements encoding.BinaryMarshaler.
func (p *roaringRunPosting) MarshalBinary() ([]byte, error) {
	dst := core.PutHeader(nil, core.TagRoaringRun, p.n)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(p.cs)))
	for i, c := range p.cs {
		dst = binary.LittleEndian.AppendUint16(dst, p.keys[i])
		switch cc := c.(type) {
		case arrayContainer:
			dst = append(dst, 0)
			dst = binary.LittleEndian.AppendUint32(dst, uint32(len(cc)))
			for _, v := range cc {
				dst = binary.LittleEndian.AppendUint16(dst, v)
			}
		case *bitmapContainer:
			dst = append(dst, 1)
			dst = binary.LittleEndian.AppendUint32(dst, uint32(cc.n))
			for _, w := range cc.words {
				dst = binary.LittleEndian.AppendUint64(dst, w)
			}
		case *runContainer:
			dst = append(dst, 2)
			dst = binary.LittleEndian.AppendUint32(dst, uint32(cc.n))
			dst = binary.LittleEndian.AppendUint32(dst, uint32(len(cc.runs)))
			for _, r := range cc.runs {
				dst = binary.LittleEndian.AppendUint16(dst, r.start)
				dst = binary.LittleEndian.AppendUint16(dst, r.last)
			}
		}
	}
	return dst, nil
}

// Decode implements core.Decoder.
func (RoaringRun) Decode(data []byte) (core.Posting, error) {
	n, rest, err := core.GetHeader(data, core.TagRoaringRun)
	if err != nil {
		return nil, err
	}
	if len(rest) < 4 {
		return nil, core.ErrBadFormat
	}
	nc := int(binary.LittleEndian.Uint32(rest))
	rest = rest[4:]
	p := &roaringRunPosting{n: n}
	for i := 0; i < nc; i++ {
		if len(rest) < 7 {
			return nil, fmt.Errorf("%w: truncated Roaring+Run container", core.ErrBadFormat)
		}
		key := binary.LittleEndian.Uint16(rest)
		kind := rest[2]
		card := int(binary.LittleEndian.Uint32(rest[3:]))
		rest = rest[7:]
		switch kind {
		case 0:
			if len(rest) < 2*card {
				return nil, fmt.Errorf("%w: truncated array container", core.ErrBadFormat)
			}
			c := make(arrayContainer, card)
			for k := range c {
				c[k] = binary.LittleEndian.Uint16(rest[2*k:])
			}
			rest = rest[2*card:]
			p.cs = append(p.cs, c)
		case 1:
			if len(rest) < 8192 {
				return nil, fmt.Errorf("%w: truncated bitmap container", core.ErrBadFormat)
			}
			c := &bitmapContainer{n: card}
			for k := range c.words {
				c.words[k] = binary.LittleEndian.Uint64(rest[8*k:])
			}
			// card drives container-level size/merge decisions, so it must
			// match the payload even when the grand total happens to add up.
			if kernels.PopcountWords(c.words[:]) != card {
				return nil, fmt.Errorf("%w: bitmap container cardinality mismatch", core.ErrBadFormat)
			}
			rest = rest[8192:]
			p.cs = append(p.cs, c)
		case 2:
			if len(rest) < 4 {
				return nil, fmt.Errorf("%w: truncated run container", core.ErrBadFormat)
			}
			nr := int(binary.LittleEndian.Uint32(rest))
			rest = rest[4:]
			if len(rest) < 4*nr {
				return nil, fmt.Errorf("%w: truncated run list", core.ErrBadFormat)
			}
			c := &runContainer{n: card, runs: make([]interval, nr)}
			covered := 0
			for k := range c.runs {
				c.runs[k].start = binary.LittleEndian.Uint16(rest[4*k:])
				c.runs[k].last = binary.LittleEndian.Uint16(rest[4*k+2:])
				if c.runs[k].last < c.runs[k].start {
					return nil, fmt.Errorf("%w: inverted run interval", core.ErrBadFormat)
				}
				covered += int(c.runs[k].last-c.runs[k].start) + 1
			}
			// Like the bitmap popcount check: the declared cardinality
			// must match the bytes, not be taken on faith.
			if covered != card {
				return nil, fmt.Errorf("%w: run container cardinality mismatch", core.ErrBadFormat)
			}
			rest = rest[4*nr:]
			p.cs = append(p.cs, c)
		default:
			return nil, fmt.Errorf("%w: container kind %d", core.ErrBadFormat, kind)
		}
		p.keys = append(p.keys, key)
	}
	// As in Roaring.Decode: the header count must match the
	// byte-bounded container total before it sizes any buffer.
	total := 0
	for _, c := range p.cs {
		total += c.card()
	}
	if total != n {
		return nil, fmt.Errorf("%w: Roaring+Run header declares %d values, containers hold %d", core.ErrBadFormat, n, total)
	}
	if err := core.VerifyDecompress(p); err != nil {
		return nil, err
	}
	return p, nil
}
