package bitmap

import (
	"math/rand"
	"testing"
)

// denseBucket fills most of one 65536-value bucket (forces a bitmap
// container); sparseBucket puts a few values in a bucket (array
// container).
func denseBucket(bucket uint32, rng *rand.Rand) []uint32 {
	base := bucket << 16
	out := make([]uint32, 0, 30000)
	for low := uint32(0); low < 65536; low++ {
		if rng.Intn(2) == 0 {
			out = append(out, base|low)
		}
	}
	return out
}

func sparseBucket(bucket uint32, rng *rand.Rand, n int) []uint32 {
	base := bucket << 16
	seen := map[uint32]bool{}
	for len(seen) < n {
		seen[base|uint32(rng.Intn(65536))] = true
	}
	out := make([]uint32, 0, n)
	for v := range seen {
		out = append(out, v)
	}
	sortU32(out)
	return out
}

// TestRoaringContainerCombinations exercises all four AND/OR container
// cases: array-array, array-bitmap, bitmap-array, bitmap-bitmap, plus
// mismatched bucket keys.
func TestRoaringContainerCombinations(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	// a: bucket 0 dense (bitmap), bucket 1 sparse (array), bucket 3
	// sparse, bucket 6 dense.
	a := append(denseBucket(0, rng), sparseBucket(1, rng, 500)...)
	a = append(a, sparseBucket(3, rng, 100)...)
	a = append(a, denseBucket(6, rng)...)
	// b: bucket 0 sparse (array), bucket 1 dense (bitmap), bucket 2
	// dense, bucket 6 dense (bitmap x bitmap with a), bucket 7 sparse
	// x sparse overlap with... bucket 3 sparse too (array x array).
	b := append(sparseBucket(0, rng, 700), denseBucket(1, rng)...)
	b = append(b, denseBucket(2, rng)...)
	b = append(b, sparseBucket(3, rng, 200)...)
	b = append(b, denseBucket(6, rng)...)

	pa, err := NewRoaring().Compress(a)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := NewRoaring().Compress(b)
	if err != nil {
		t.Fatal(err)
	}
	// Confirm the container mix is as intended.
	ra, rb := pa.(*roaringPosting), pb.(*roaringPosting)
	if _, ok := ra.cs[0].(*bitmapContainer); !ok {
		t.Fatal("a bucket 0 should be a bitmap container")
	}
	if _, ok := rb.cs[0].(arrayContainer); !ok {
		t.Fatal("b bucket 0 should be an array container")
	}

	and, err := ra.IntersectWith(rb)
	if err != nil {
		t.Fatal(err)
	}
	if !equalU32(normalize(and), refIntersect(a, b)) {
		t.Errorf("AND mismatch: got %d want %d", len(and), len(refIntersect(a, b)))
	}
	or, err := ra.UnionWith(rb)
	if err != nil {
		t.Fatal(err)
	}
	if !equalU32(normalize(or), refUnion(a, b)) {
		t.Errorf("OR mismatch: got %d want %d", len(or), len(refUnion(a, b)))
	}
	// Reverse operand order covers the symmetric type-switch arms.
	and2, err := rb.IntersectWith(ra)
	if err != nil {
		t.Fatal(err)
	}
	if !equalU32(normalize(and2), refIntersect(a, b)) {
		t.Error("reversed AND mismatch")
	}
	or2, err := rb.UnionWith(ra)
	if err != nil {
		t.Fatal(err)
	}
	if !equalU32(normalize(or2), refUnion(a, b)) {
		t.Error("reversed OR mismatch")
	}
}

// TestRoaringListProbeContainers exercises IntersectList over both
// container kinds and key gaps.
func TestRoaringListProbeContainers(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	bm := append(denseBucket(1, rng), sparseBucket(4, rng, 300)...)
	p, _ := NewRoaring().Compress(bm)
	// Probes spanning buckets 0 (absent), 1 (bitmap), 2-3 (absent),
	// 4 (array), 5 (absent).
	var probes []uint32
	for _, bucket := range []uint32{0, 1, 2, 4, 5} {
		probes = append(probes, sparseBucket(bucket, rng, 200)...)
	}
	sortU32(probes)
	probes = dedupe(probes)
	want := refIntersect(probes, bm)
	got := p.(*roaringPosting).IntersectList(probes)
	if !equalU32(normalize(got), want) {
		t.Fatalf("probe mismatch: got %d want %d", len(got), len(want))
	}
}

func dedupe(sorted []uint32) []uint32 {
	out := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != sorted[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// TestRoaringGallopingIntersect: heavily skewed array-array pairs take
// the binary-search path.
func TestRoaringGallopingIntersect(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	small := sparseBucket(0, rng, 10)
	big := sparseBucket(0, rng, 4000)
	pa, _ := NewRoaring().Compress(small)
	pb, _ := NewRoaring().Compress(big)
	got, err := pa.(*roaringPosting).IntersectWith(pb.(*roaringPosting))
	if err != nil {
		t.Fatal(err)
	}
	if !equalU32(normalize(got), refIntersect(small, big)) {
		t.Fatal("galloping intersect mismatch")
	}
}
