package bitmap

import (
	"math/rand"
	"testing"
)

// TestVALWAHLambdaTradeoff: larger lambda must never pick a shorter
// segment than smaller lambda (fewer decode units = longer segments),
// and every lambda round-trips.
func TestVALWAHLambdaTradeoff(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	vals := randomSet(rng, 4000, 1<<22)
	prevSeg := uint32(0)
	for _, lambda := range []float64{0, 2, 8, 64} {
		p, err := NewVALWAHLambda(lambda).Compress(vals)
		if err != nil {
			t.Fatal(err)
		}
		if !equalU32(p.Decompress(), vals) {
			t.Fatalf("lambda %.0f: round trip failed", lambda)
		}
		seg := p.(*valwahPosting).seg
		if seg < prevSeg {
			t.Errorf("lambda %.0f chose segment %d, shorter than previous %d",
				lambda, seg, prevSeg)
		}
		prevSeg = seg
	}
}

// TestVALWAHLambdaSegmentsShift: moderate-density data whose gaps fit a
// 7-bit segment's fill counter is space-optimal at s=7; an extreme
// lambda shifts the choice to s=28 (fewest decode units).
func TestVALWAHLambdaSegmentsShift(t *testing.T) {
	// Gaps of ~300 bits favor s=7 on space (one 8-bit fill unit + one
	// literal per value vs 58 bits at s=28); a long one-run adds many
	// chunked fill units at s=7 but almost none at s=28, so a large
	// lambda flips the segment choice toward fewer decode units.
	vals := stride(0, 300, 5000)
	vals = append(vals, seq(vals[len(vals)-1]+1000, 200000)...)
	p0, _ := NewVALWAHLambda(0).Compress(vals)
	pBig, _ := NewVALWAHLambda(1000).Compress(vals)
	s0 := p0.(*valwahPosting).seg
	sBig := pBig.(*valwahPosting).seg
	if s0 != 7 {
		t.Fatalf("space-optimal segment = %d, want 7", s0)
	}
	if sBig <= s0 {
		t.Errorf("lambda 1000 picked segment %d, want longer than the space-optimal %d", sBig, s0)
	}
	if pBig.SizeBytes() < p0.SizeBytes() {
		t.Error("time-biased lambda should not shrink space below the space-optimal choice")
	}
}

// TestVALWAHMixedSegmentsIntersect: postings built with different
// lambdas (hence segment lengths) still intersect via the bit-space
// realignment.
func TestVALWAHMixedSegmentsIntersect(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	a := randomSet(rng, 2000, 1<<20)
	b := clusteredSet(rng, 50, 1<<20)
	pa, _ := NewVALWAHLambda(0).Compress(a)
	pb, _ := NewVALWAHLambda(1000).Compress(b)
	if pa.(*valwahPosting).seg == pb.(*valwahPosting).seg {
		t.Logf("segments coincide (%d); realignment path not exercised", pa.(*valwahPosting).seg)
	}
	got, err := pa.(*valwahPosting).IntersectWith(pb)
	if err != nil {
		t.Fatal(err)
	}
	if !equalU32(normalize(got), refIntersect(a, b)) {
		t.Fatal("mixed-segment intersect mismatch")
	}
	or, err := pa.(*valwahPosting).UnionWith(pb)
	if err != nil {
		t.Fatal(err)
	}
	if !equalU32(normalize(or), refUnion(a, b)) {
		t.Fatal("mixed-segment union mismatch")
	}
}
