package bitmap

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

// TestIntersectListAgainstReference: every bitmap codec's
// bitmap-vs-list operator (§B.1) matches reference set intersection.
func TestIntersectListAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		var bm, list []uint32
		if trial%2 == 0 {
			bm = randomSet(rng, 3000, 1<<18)
			list = randomSet(rng, 400, 1<<18)
		} else {
			bm = clusteredSet(rng, 40, 1<<18)
			list = clusteredSet(rng, 15, 1<<18)
		}
		want := refIntersect(list, bm)
		for _, c := range allCodecs() {
			p, err := c.Compress(bm)
			if err != nil {
				t.Fatal(err)
			}
			lp, ok := p.(core.ListProber)
			if !ok {
				t.Fatalf("%s: posting does not implement ListProber", c.Name())
			}
			got := lp.IntersectList(list)
			if !equalU32(normalize(got), want) {
				t.Errorf("%s trial %d: IntersectList mismatch (got %d want %d)",
					c.Name(), trial, len(got), len(want))
			}
		}
	}
}

// TestIntersectListEdgeCases covers empty inputs and boundary values.
func TestIntersectListEdgeCases(t *testing.T) {
	bm := []uint32{0, 31, 32, 63, 64, 1000, 65535, 65536}
	for _, c := range allCodecs() {
		p, _ := c.Compress(bm)
		lp := p.(core.ListProber)
		if got := lp.IntersectList(nil); len(got) != 0 {
			t.Errorf("%s: empty probe returned %v", c.Name(), got)
		}
		if got := lp.IntersectList([]uint32{31, 64, 70000}); !equalU32(normalize(got), []uint32{31, 64}) {
			t.Errorf("%s: probe = %v", c.Name(), got)
		}
		// Probes entirely past the bitmap's end.
		if got := lp.IntersectList([]uint32{1 << 25}); len(got) != 0 {
			t.Errorf("%s: past-end probe returned %v", c.Name(), got)
		}
		// Empty bitmap.
		pe, _ := c.Compress(nil)
		if got := pe.(core.ListProber).IntersectList([]uint32{1, 2}); len(got) != 0 {
			t.Errorf("%s: empty bitmap probe returned %v", c.Name(), got)
		}
	}
}

// TestIntersectListInsideFills: probes landing inside one-fill and
// zero-fill runs resolve by range, not bit tests.
func TestIntersectListInsideFills(t *testing.T) {
	bm := seq(1000, 31*64) // a long run of ones
	list := []uint32{0, 999, 1000, 1500, 1000 + 31*64 - 1, 1000 + 31*64, 1 << 20}
	want := []uint32{1000, 1500, 1000 + 31*64 - 1}
	for _, c := range allCodecs() {
		p, _ := c.Compress(bm)
		got := p.(core.ListProber).IntersectList(list)
		if !equalU32(normalize(got), want) {
			t.Errorf("%s: fill probe = %v, want %v", c.Name(), got, want)
		}
	}
}
