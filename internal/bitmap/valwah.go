package bitmap

import (
	"repro/internal/bitio"
	"repro/internal/core"
)

// VALWAH (Variable-Aligned Length WAH, §2.5) generalizes WAH's 31-bit
// groups to per-bitmap segment lengths s = 2^i * (b-1) with alignment
// factor b. With the paper's w=32, b=8 this yields s in {7, 14, 28}.
// Each bitmap is encoded with the segment length that minimizes its
// size (the paper's space-optimal lambda setting). Segments are packed
// in a bitstream: a flag bit, then either s literal bits or a fill bit
// plus an (s-1)-bit run counter. The bit-granular (rather than
// word-aligned) layout is exactly the "segment alignment issue" the
// paper blames for VALWAH's slow queries (§5.2 observation 3).
type VALWAH struct {
	// Lambda is the paper's space/time tradeoff knob (§2.5): segment
	// selection minimizes bits + Lambda*units, where a unit is one
	// encoded segment (the per-segment decode step). Lambda = 0 is
	// space-optimal; large Lambda prefers longer segments (fewer decode
	// steps, approaching WAH's behavior).
	Lambda float64
}

// NewVALWAH returns the space-optimal VALWAH codec (lambda = 0).
func NewVALWAH() core.Codec { return VALWAH{} }

// NewVALWAHLambda returns VALWAH with the given tradeoff factor.
func NewVALWAHLambda(lambda float64) core.Codec { return VALWAH{Lambda: lambda} }

func (VALWAH) Name() string    { return "VALWAH" }
func (VALWAH) Kind() core.Kind { return core.KindBitmap }

var valwahSegments = []uint32{7, 14, 28}

// valwahCost computes the encoded bit count and unit (segment) count at
// segment size s without materializing the encoding.
func valwahCost(values []uint32, s uint32) (bits, units uint64) {
	unit := uint64(s) + 1
	maxRun := uint64(1)<<(s-1) - 1
	addFillRun := func(count uint64) {
		if count == 0 {
			return
		}
		words := (count + maxRun - 1) / maxRun
		bits += words * unit
		units += words
	}
	var run uint64
	var runBit bool
	mask := groupMask(s)
	forEachGroup(values, s, func(word uint64, count uint64) {
		switch {
		case word == 0:
			if run > 0 && runBit {
				addFillRun(run)
				run = 0
			}
			runBit = false
			run += count
		case word == mask:
			if run > 0 && !runBit {
				addFillRun(run)
				run = 0
			}
			runBit = true
			run++
		default:
			addFillRun(run)
			run = 0
			bits += unit
			units++
		}
	})
	addFillRun(run)
	return bits, units
}

// Compress picks the segment length minimizing bits + Lambda*units and
// encodes the bitmap as a packed segment stream.
func (v VALWAH) Compress(values []uint32) (core.Posting, error) {
	if err := core.ValidateSorted(values); err != nil {
		return nil, err
	}
	score := func(s uint32) float64 {
		bits, units := valwahCost(values, s)
		return float64(bits) + v.Lambda*float64(units)
	}
	best := valwahSegments[0]
	bestCost := score(best)
	for _, s := range valwahSegments[1:] {
		if c := score(s); c < bestCost {
			best, bestCost = s, c
		}
	}
	p := &valwahPosting{n: len(values), seg: best}
	var bw bitio.Writer
	s := best
	maxRun := uint64(1)<<(s-1) - 1
	emitFill := func(bit bool, count uint64) {
		for count > 0 {
			c := count
			if c > maxRun {
				c = maxRun
			}
			bw.WriteBool(true) // fill flag
			bw.WriteBool(bit)
			bw.Write(c, uint(s-1))
			count -= c
		}
	}
	var run uint64
	var runBit bool
	mask := groupMask(s)
	forEachGroup(values, s, func(word uint64, count uint64) {
		switch {
		case word == 0:
			if run > 0 && runBit {
				emitFill(true, run)
				run = 0
			}
			runBit = false
			run += count
		case word == mask:
			if run > 0 && !runBit {
				emitFill(false, run)
				run = 0
			}
			runBit = true
			run++
		default:
			if run > 0 {
				emitFill(runBit, run)
				run = 0
			}
			bw.WriteBool(false) // literal flag
			bw.Write(word, uint(s))
		}
	})
	if run > 0 {
		emitFill(runBit, run)
	}
	p.bits = bw.Words
	p.nbits = bw.NBits
	return p, nil
}

type valwahPosting struct {
	bits  []uint64
	nbits uint64
	n     int
	seg   uint32
}

func (p *valwahPosting) Len() int { return p.n }

// SizeBytes counts the packed bitstream plus a 1-byte segment header.
func (p *valwahPosting) SizeBytes() int { return int((p.nbits+7)/8) + 1 }

func (p *valwahPosting) spans() spanReader {
	return &valwahReader{r: bitio.Reader{Words: p.bits}, nbits: p.nbits, seg: p.seg}
}

func (p *valwahPosting) Decompress() []uint32 { return decompressSpans(p.spans(), p.n) }

// DecompressAppend implements core.DecompressAppender on the span stream.
func (p *valwahPosting) DecompressAppend(dst []uint32) []uint32 {
	return decompressSpansAppend(p.spans(), dst)
}

func (p *valwahPosting) IntersectWith(other core.Posting) ([]uint32, error) {
	q, ok := other.(*valwahPosting)
	if !ok {
		return nil, core.ErrIncompatible
	}
	// Different segment lengths are realigned bit-by-bit by the span
	// engine — the alignment penalty the paper describes.
	return intersectSpanReaders(p.spans(), q.spans()), nil
}

func (p *valwahPosting) UnionWith(other core.Posting) ([]uint32, error) {
	q, ok := other.(*valwahPosting)
	if !ok {
		return nil, core.ErrIncompatible
	}
	return unionSpanReaders(p.spans(), q.spans()), nil
}

type valwahReader struct {
	r     bitio.Reader
	nbits uint64
	seg   uint32
}

func (r *valwahReader) next() (span, bool) {
	if r.r.Pos >= r.nbits {
		return span{}, false
	}
	if r.r.ReadBool() { // fill unit
		bit := r.r.ReadBool()
		count := r.r.Read(uint(r.seg - 1))
		kind := zeroFill
		if bit {
			kind = oneFill
		}
		return span{n: count * uint64(r.seg), kind: kind}, true
	}
	return span{n: uint64(r.seg), word: r.r.Read(uint(r.seg)), kind: literalSpan}, true
}
