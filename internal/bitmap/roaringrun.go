package bitmap

import (
	"sort"

	"repro/internal/core"
)

// RoaringRun is the unified-compression extension the paper's lesson 1
// calls for ("both techniques can learn from each other to develop a
// better unified compression method", §7.2): Roaring's bucket scheme
// with a third, run-length container. Each 2^16 bucket picks the
// cheapest of three representations — sorted 16-bit array (inverted
// list), 65536-bit bitmap, or a list of [start, last] runs (RLE) — so
// the codec degenerates to whichever of the paper's two families suits
// each region of the data.
type RoaringRun struct{}

// NewRoaringRun returns the hybrid codec.
func NewRoaringRun() core.Codec { return RoaringRun{} }

func (RoaringRun) Name() string    { return "Roaring+Run" }
func (RoaringRun) Kind() core.Kind { return core.KindBitmap }

// interval is an inclusive run of low 16-bit values.
type interval struct {
	start, last uint16
}

// runContainer stores a bucket as sorted disjoint runs.
type runContainer struct {
	runs []interval
	n    int
}

func (c *runContainer) card() int      { return c.n }
func (c *runContainer) sizeBytes() int { return 4 * len(c.runs) }
func (c *runContainer) appendAll(out []uint32, high uint32) []uint32 {
	for _, r := range c.runs {
		for v := uint32(r.start); v <= uint32(r.last); v++ {
			out = append(out, high|v)
		}
	}
	return out
}

// contains reports membership via binary search over the runs.
func (c *runContainer) contains(low uint16) bool {
	i := sort.Search(len(c.runs), func(i int) bool { return c.runs[i].last >= low })
	return i < len(c.runs) && c.runs[i].start <= low
}

func (RoaringRun) Compress(values []uint32) (core.Posting, error) {
	if err := core.ValidateSorted(values); err != nil {
		return nil, err
	}
	p := &roaringRunPosting{n: len(values)}
	i := 0
	for i < len(values) {
		key := uint16(values[i] >> 16)
		j := i
		for j < len(values) && uint16(values[j]>>16) == key {
			j++
		}
		bucket := values[i:j]
		p.keys = append(p.keys, key)
		p.cs = append(p.cs, bestContainer(bucket))
		i = j
	}
	return p, nil
}

// bestContainer picks the smallest of run / array / bitmap for one
// bucket (Roaring's standard heuristic generalized to three ways).
func bestContainer(bucket []uint32) container {
	// Count runs in one pass.
	runs := 1
	for k := 1; k < len(bucket); k++ {
		if bucket[k] != bucket[k-1]+1 {
			runs++
		}
	}
	runCost := 4 * runs
	arrayCost := 2 * len(bucket)
	bitmapCost := 8192
	switch {
	case runCost <= arrayCost && runCost <= bitmapCost:
		c := &runContainer{n: len(bucket), runs: make([]interval, 0, runs)}
		start := uint16(bucket[0])
		prev := start
		for _, v := range bucket[1:] {
			lv := uint16(v)
			if lv != prev+1 {
				c.runs = append(c.runs, interval{start, prev})
				start = lv
			}
			prev = lv
		}
		c.runs = append(c.runs, interval{start, prev})
		return c
	case arrayCost <= bitmapCost:
		c := make(arrayContainer, len(bucket))
		for k, v := range bucket {
			c[k] = uint16(v)
		}
		return c
	default:
		c := &bitmapContainer{n: len(bucket)}
		for _, v := range bucket {
			low := v & 0xffff
			c.words[low>>6] |= 1 << (low & 63)
		}
		return c
	}
}

type roaringRunPosting struct {
	keys []uint16
	cs   []container
	n    int
}

func (p *roaringRunPosting) Len() int { return p.n }

// SizeBytes counts payloads plus 4 bytes of per-container metadata.
func (p *roaringRunPosting) SizeBytes() int {
	s := 4 * len(p.cs)
	for _, c := range p.cs {
		s += c.sizeBytes()
	}
	return s
}

func (p *roaringRunPosting) Decompress() []uint32 {
	return p.DecompressAppend(make([]uint32, 0, p.n))
}

// DecompressAppend implements core.DecompressAppender.
func (p *roaringRunPosting) DecompressAppend(dst []uint32) []uint32 {
	for i, c := range p.cs {
		dst = c.appendAll(dst, uint32(p.keys[i])<<16)
	}
	return dst
}

// IntersectWith merges bucket keys and intersects matching containers
// across all nine container-type combinations.
func (p *roaringRunPosting) IntersectWith(other core.Posting) ([]uint32, error) {
	q, ok := other.(*roaringRunPosting)
	if !ok {
		return nil, core.ErrIncompatible
	}
	var out []uint32
	i, j := 0, 0
	for i < len(p.keys) && j < len(q.keys) {
		switch {
		case p.keys[i] < q.keys[j]:
			i++
		case p.keys[i] > q.keys[j]:
			j++
		default:
			out = andRunAware(p.cs[i], q.cs[j], out, uint32(p.keys[i])<<16)
			i++
			j++
		}
	}
	return out, nil
}

// UnionWith merges bucket keys and unions matching containers.
func (p *roaringRunPosting) UnionWith(other core.Posting) ([]uint32, error) {
	q, ok := other.(*roaringRunPosting)
	if !ok {
		return nil, core.ErrIncompatible
	}
	out := make([]uint32, 0, p.n+q.n)
	i, j := 0, 0
	for i < len(p.keys) || j < len(q.keys) {
		switch {
		case j >= len(q.keys) || (i < len(p.keys) && p.keys[i] < q.keys[j]):
			out = p.cs[i].appendAll(out, uint32(p.keys[i])<<16)
			i++
		case i >= len(p.keys) || p.keys[i] > q.keys[j]:
			out = q.cs[j].appendAll(out, uint32(q.keys[j])<<16)
			j++
		default:
			out = orRunAware(p.cs[i], q.cs[j], out, uint32(p.keys[i])<<16)
			i++
			j++
		}
	}
	return out, nil
}

// andRunAware dispatches the 3x3 container matrix, reducing the six
// run-involving cases to three kernels.
func andRunAware(a, b container, out []uint32, high uint32) []uint32 {
	ra, aIsRun := a.(*runContainer)
	rb, bIsRun := b.(*runContainer)
	switch {
	case aIsRun && bIsRun:
		return andRunRun(ra, rb, out, high)
	case aIsRun:
		return andRunOther(ra, b, out, high)
	case bIsRun:
		return andRunOther(rb, a, out, high)
	default:
		return andContainers(a, b, out, high)
	}
}

// andRunRun intersects two sorted interval lists.
func andRunRun(a, b *runContainer, out []uint32, high uint32) []uint32 {
	i, j := 0, 0
	for i < len(a.runs) && j < len(b.runs) {
		ra, rb := a.runs[i], b.runs[j]
		lo, hi := max(ra.start, rb.start), min(ra.last, rb.last)
		if lo <= hi {
			for v := uint32(lo); v <= uint32(hi); v++ {
				out = append(out, high|v)
			}
		}
		if ra.last < rb.last {
			i++
		} else {
			j++
		}
	}
	return out
}

// andRunOther intersects a run container with an array or bitmap one.
func andRunOther(r *runContainer, other container, out []uint32, high uint32) []uint32 {
	switch c := other.(type) {
	case arrayContainer:
		i := 0
		for _, v := range c {
			for i < len(r.runs) && r.runs[i].last < v {
				i++
			}
			if i == len(r.runs) {
				break
			}
			if r.runs[i].start <= v {
				out = append(out, high|uint32(v))
			}
		}
	case *bitmapContainer:
		for _, run := range r.runs {
			for v := uint32(run.start); v <= uint32(run.last); v++ {
				if c.contains(uint16(v)) {
					out = append(out, high|v)
				}
			}
		}
	}
	return out
}

// orRunAware unions a container pair, materializing runs through a
// scratch bitmap when a run container is involved.
func orRunAware(a, b container, out []uint32, high uint32) []uint32 {
	_, aIsRun := a.(*runContainer)
	_, bIsRun := b.(*runContainer)
	if !aIsRun && !bIsRun {
		return orContainers(a, b, out, high)
	}
	var merged bitmapContainer
	fillScratch(&merged, a)
	fillScratch(&merged, b)
	return merged.appendAll(out, high)
}

// fillScratch ORs a container of any kind into a scratch bitmap.
func fillScratch(dst *bitmapContainer, c container) {
	switch cc := c.(type) {
	case arrayContainer:
		for _, v := range cc {
			dst.words[v>>6] |= 1 << (v & 63)
		}
	case *bitmapContainer:
		for i, w := range cc.words {
			dst.words[i] |= w
		}
	case *runContainer:
		for _, r := range cc.runs {
			setRange(&dst.words, uint32(r.start), uint32(r.last))
		}
	}
}

// setRange sets bits [lo, hi] (inclusive) word-wise.
func setRange(words *[1024]uint64, lo, hi uint32) {
	loW, hiW := lo>>6, hi>>6
	loMask := ^uint64(0) << (lo & 63)
	hiMask := ^uint64(0) >> (63 - hi&63)
	if loW == hiW {
		words[loW] |= loMask & hiMask
		return
	}
	words[loW] |= loMask
	for w := loW + 1; w < hiW; w++ {
		words[w] = ^uint64(0)
	}
	words[hiW] |= hiMask
}

// IntersectList implements core.ListProber over all three container
// kinds.
func (p *roaringRunPosting) IntersectList(sorted []uint32) []uint32 {
	var out []uint32
	ci := 0
	i := 0
	for i < len(sorted) && ci < len(p.keys) {
		key := uint16(sorted[i] >> 16)
		switch {
		case p.keys[ci] < key:
			ci++
		case p.keys[ci] > key:
			next := uint64(key+1) << 16
			i += sort.Search(len(sorted)-i, func(k int) bool {
				return uint64(sorted[i+k]) >= next
			})
		default:
			next := uint64(key+1) << 16
			probe := containerProbe(p.cs[ci])
			for i < len(sorted) && uint64(sorted[i]) < next {
				if probe(uint16(sorted[i])) {
					out = append(out, sorted[i])
				}
				i++
			}
			ci++
		}
	}
	return out
}

// containerProbe returns a membership test for any container kind.
func containerProbe(c container) func(uint16) bool {
	switch cc := c.(type) {
	case arrayContainer:
		return func(low uint16) bool {
			k := sort.Search(len(cc), func(i int) bool { return cc[i] >= low })
			return k < len(cc) && cc[k] == low
		}
	case *bitmapContainer:
		return cc.contains
	case *runContainer:
		return cc.contains
	default:
		return func(uint16) bool { return false }
	}
}

// RunStats reports how many buckets chose each representation — used by
// the hybrid ablation to show the codec adapting to the data.
func (p *roaringRunPosting) RunStats() (runs, arrays, bitmaps int) {
	for _, c := range p.cs {
		switch c.(type) {
		case *runContainer:
			runs++
		case arrayContainer:
			arrays++
		case *bitmapContainer:
			bitmaps++
		}
	}
	return
}
