package bitmap

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
)

// allCodecs lists every bitmap codec for table-driven tests.
func allCodecs() []core.Codec {
	return []core.Codec{
		NewBitset(), NewBBC(), NewWAH(), NewEWAH(), NewPLWAH(),
		NewCONCISE(), NewVALWAH(), NewSBH(), NewRoaring(),
	}
}

// edgeCases are sorted lists that exercise group boundaries, fill runs,
// odd bits, and counter limits across all group widths (7, 8, 31, 32).
func edgeCases() map[string][]uint32 {
	cases := map[string][]uint32{
		"empty":          {},
		"zero":           {0},
		"one":            {1},
		"single-large":   {1 << 30},
		"pair-far":       {3, 1 << 29},
		"first-group":    {0, 1, 2, 3, 4, 5, 6},
		"group-boundary": {6, 7, 8, 30, 31, 32, 61, 62, 63, 64},
		"dense-run":      seq(0, 200),
		"run-after-gap":  seq(1000, 200),
		"alternating":    stride(0, 2, 300),
		"stride-7":       stride(3, 7, 100),
		"word-edges":     {31, 62, 93, 124, 155},
		"byte-edges":     {7, 15, 23, 8 * 4093, 8*4093 + 1},
		"odd-bit-mix":    {5, 31 * 4, 31*4 + 1}, // literal, long 0-fill, then odd bits
		"bucket-span":    {65535, 65536, 131071, 131072},
		"long-one-fill":  seq(0, 31*40),
		"sparse-wide":    stride(100, 99991, 50),
	}
	// A run long enough to need SBH two-byte counters and chunking.
	cases["sbh-chunk"] = []uint32{0, 7 * 5000, 7*5000 + 1}
	// Mixed-fill candidates for CONCISE/PLWAH: one bit then a long fill.
	cases["mixed-fill-0"] = []uint32{40, 31 * 200}
	cases["mixed-fill-1"] = append(seq(31, 31*5), 31*6+1)
	// Dense bucket forcing a Roaring bitmap container.
	cases["roaring-bitmap"] = stride(0, 3, 5000)
	return cases
}

func seq(start, n uint32) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = start + uint32(i)
	}
	return out
}

func stride(start, step, n uint32) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = start + step*uint32(i)
	}
	return out
}

func TestRoundTripEdgeCases(t *testing.T) {
	for _, c := range allCodecs() {
		for name, vals := range edgeCases() {
			p, err := c.Compress(vals)
			if err != nil {
				t.Fatalf("%s/%s: Compress: %v", c.Name(), name, err)
			}
			if p.Len() != len(vals) {
				t.Errorf("%s/%s: Len=%d want %d", c.Name(), name, p.Len(), len(vals))
			}
			got := p.Decompress()
			if !equalU32(got, vals) {
				t.Errorf("%s/%s: round trip mismatch: got %d values, want %d",
					c.Name(), name, len(got), len(vals))
			}
		}
	}
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCompressRejectsUnsorted(t *testing.T) {
	for _, c := range allCodecs() {
		if _, err := c.Compress([]uint32{5, 4}); err == nil {
			t.Errorf("%s: expected error on unsorted input", c.Name())
		}
		if _, err := c.Compress([]uint32{4, 4}); err == nil {
			t.Errorf("%s: expected error on duplicate input", c.Name())
		}
	}
}

// randomSet draws n distinct sorted values below domain.
func randomSet(rng *rand.Rand, n int, domain uint32) []uint32 {
	seen := make(map[uint32]bool, n)
	for len(seen) < n {
		seen[rng.Uint32()%domain] = true
	}
	out := make([]uint32, 0, n)
	for v := range seen {
		out = append(out, v)
	}
	sortU32(out)
	return out
}

func sortU32(a []uint32) {
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
}

// clusteredSet draws runs of consecutive values — adversarial for RLE.
func clusteredSet(rng *rand.Rand, runs int, domain uint32) []uint32 {
	var out []uint32
	pos := uint32(0)
	for i := 0; i < runs && pos < domain; i++ {
		pos += rng.Uint32() % 500
		runLen := 1 + rng.Uint32()%100
		for j := uint32(0); j < runLen && pos < domain; j++ {
			out = append(out, pos)
			pos++
		}
		pos++
	}
	return out
}

func refIntersect(a, b []uint32) []uint32 {
	out := []uint32{}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func refUnion(a, b []uint32) []uint32 {
	out := []uint32{}
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i >= len(a) || a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func TestIntersectUnionRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		var a, b []uint32
		if trial%2 == 0 {
			a = randomSet(rng, 200+trial*30, 1<<18)
			b = randomSet(rng, 100+trial*50, 1<<18)
		} else {
			a = clusteredSet(rng, 30, 1<<18)
			b = clusteredSet(rng, 30, 1<<18)
		}
		wantAnd := refIntersect(a, b)
		wantOr := refUnion(a, b)
		for _, c := range allCodecs() {
			pa, err := c.Compress(a)
			if err != nil {
				t.Fatalf("%s: %v", c.Name(), err)
			}
			pb, err := c.Compress(b)
			if err != nil {
				t.Fatalf("%s: %v", c.Name(), err)
			}
			gotAnd, err := pa.(core.Intersecter).IntersectWith(pb)
			if err != nil {
				t.Fatalf("%s: intersect: %v", c.Name(), err)
			}
			if !equalU32(normalize(gotAnd), wantAnd) {
				t.Errorf("%s trial %d: intersect mismatch (got %d want %d)",
					c.Name(), trial, len(gotAnd), len(wantAnd))
			}
			gotOr, err := pa.(core.Unioner).UnionWith(pb)
			if err != nil {
				t.Fatalf("%s: union: %v", c.Name(), err)
			}
			if !equalU32(normalize(gotOr), wantOr) {
				t.Errorf("%s trial %d: union mismatch (got %d want %d)",
					c.Name(), trial, len(gotOr), len(wantOr))
			}
		}
	}
}

func normalize(a []uint32) []uint32 {
	if a == nil {
		return []uint32{}
	}
	return a
}

func TestIncompatiblePostings(t *testing.T) {
	wah, _ := NewWAH().Compress([]uint32{1, 2, 3})
	ewah, _ := NewEWAH().Compress([]uint32{1, 2, 3})
	if _, err := wah.(core.Intersecter).IntersectWith(ewah); err == nil {
		t.Fatal("expected ErrIncompatible for WAH x EWAH")
	}
}

// TestWAHPaperExample checks the §2.1 example: the 160-bit bitmap
// 1 0^20 1^3 0^111 1^25 partitions into 6 groups and compresses to 4
// WAH words — literal G1, one fill word for G2-G4, literals G5 and G6.
func TestWAHPaperExample(t *testing.T) {
	vals := paperExampleBitmap()
	p, err := NewWAH().Compress(vals)
	if err != nil {
		t.Fatal(err)
	}
	words := p.(*wahPosting).words
	if len(words) != 4 {
		t.Fatalf("got %d words, want 4 (literal, fill x3, 2 literals): %x", len(words), words)
	}
	if words[0]&wahFillFlag != 0 {
		t.Error("word 0 should be a literal")
	}
	if words[1]&wahFillFlag == 0 || words[1]&wahFillBit != 0 || words[1]&wahMaxCount != 3 {
		t.Errorf("word 1 should be a 0-fill of 3 groups, got %x", words[1])
	}
	for i := 2; i < 4; i++ {
		if words[i]&wahFillFlag != 0 {
			t.Errorf("word %d should be a literal", i)
		}
	}
	if !equalU32(p.Decompress(), vals) {
		t.Error("round trip failed")
	}
}

// paperExampleBitmap returns the positions of 1s in 1 0^20 1^3 0^111 1^25
// (bit 0 first).
func paperExampleBitmap() []uint32 {
	var vals []uint32
	vals = append(vals, 0)
	vals = append(vals, 21, 22, 23)
	for i := uint32(135); i < 160; i++ {
		vals = append(vals, i)
	}
	return vals
}

// TestEWAHPaperExample checks §2.2: the same bitmap becomes 5 EWAH
// groups encoded as marker(p=0,q=1), literal, marker(p=3,q=1), literal.
func TestEWAHPaperExample(t *testing.T) {
	vals := paperExampleBitmap()
	p, err := NewEWAH().Compress(vals)
	if err != nil {
		t.Fatal(err)
	}
	words := p.(*ewahPosting).words
	if len(words) != 4 {
		t.Fatalf("got %d words, want 4: %x", len(words), words)
	}
	m0 := words[0]
	if m0>>1&ewahMaxFill != 0 || m0>>17 != 1 {
		t.Errorf("marker 0: want p=0 q=1, got p=%d q=%d", m0>>1&ewahMaxFill, m0>>17)
	}
	m1 := words[2]
	if m1&1 != 0 || m1>>1&ewahMaxFill != 3 || m1>>17 != 1 {
		t.Errorf("marker 1: want 0-fill p=3 q=1, got %x", m1)
	}
}

// TestSBHTwoByteCounter checks that fill runs above 63 groups use the
// two-byte form and round trip.
func TestSBHTwoByteCounter(t *testing.T) {
	vals := []uint32{0, 7 * 72, 7*72 + 1} // 71 empty groups between literals
	p, err := NewSBH().Compress(vals)
	if err != nil {
		t.Fatal(err)
	}
	data := p.(*sbhPosting).data
	// literal, fill pair (2 bytes), literal
	if len(data) != 4 {
		t.Fatalf("got %d bytes, want 4: %x", len(data), data)
	}
	if data[1]&sbhFill == 0 || data[2]&sbhFill == 0 {
		t.Error("bytes 1-2 should be a two-byte fill")
	}
	k := uint64(data[1]&63) | uint64(data[2]&63)<<6
	if k != 71 {
		t.Errorf("fill count = %d, want 71", k)
	}
}

// TestBBCPatterns verifies the four header patterns of Figure 2 are all
// produced and decoded.
func TestBBCPatterns(t *testing.T) {
	cases := map[string][]uint32{
		// P1: two fill bytes then two literal bytes (Fig. 2a-like).
		"p1": {18, 19, 21, 28, 30},
		// P2: two 0-fill bytes then an odd byte (Fig. 2b: bit 1 of byte 2).
		"p2": {17},
		// P3: four 0-fill bytes then a literal with several bits.
		"p3": {33, 35, 38},
		// P4: four 0-fill bytes then an odd byte (Fig. 2d).
		"p4": {39},
	}
	codec := NewBBC()
	for name, vals := range cases {
		p, err := codec.Compress(vals)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := p.Decompress(); !equalU32(got, vals) {
			t.Errorf("%s: round trip failed: %v != %v", name, got, vals)
		}
	}
	// Structural checks on the P2 and P4 encodings.
	p2, _ := codec.Compress(cases["p2"])
	d := p2.(*bbcPosting).data
	if len(d) != 1 || d[0]>>6 != 1 {
		t.Errorf("p2: want single 01-prefixed header byte, got %x", d)
	}
	p4, _ := codec.Compress(cases["p4"])
	d = p4.(*bbcPosting).data
	if len(d) != 2 || d[0]>>4 != 1 {
		t.Errorf("p4: want 0001-prefixed header + VB counter, got %x", d)
	}
	if d[1] != 4 {
		t.Errorf("p4: VB counter should be 4 fill bytes, got %d", d[1])
	}
}

// TestRoaringContainers checks the 4096 array/bitmap threshold.
func TestRoaringContainers(t *testing.T) {
	small := seq(0, 4096)
	p, _ := NewRoaring().Compress(small)
	if _, ok := p.(*roaringPosting).cs[0].(arrayContainer); !ok {
		t.Error("4096 values should stay an array container")
	}
	big := seq(0, 4097)
	p, _ = NewRoaring().Compress(big)
	if _, ok := p.(*roaringPosting).cs[0].(*bitmapContainer); !ok {
		t.Error("4097 values should become a bitmap container")
	}
	// Max 16 bits per element for the array container (paper's guarantee).
	p, _ = NewRoaring().Compress(seq(0, 4096))
	perElem := float64(p.SizeBytes()) / 4096 * 8
	if perElem > 16.1 {
		t.Errorf("array bucket costs %.1f bits/int, want <= ~16", perElem)
	}
}

// TestVALWAHSmallerThanWAH checks the paper's space claim (§5.2 obs. 3):
// VALWAH compresses sparse bitmaps tighter than WAH thanks to shorter
// segments.
func TestVALWAHSmallerThanWAH(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := randomSet(rng, 2000, 1<<22)
	w, _ := NewWAH().Compress(vals)
	v, _ := NewVALWAH().Compress(vals)
	if v.SizeBytes() >= w.SizeBytes() {
		t.Errorf("VALWAH (%d B) should be smaller than WAH (%d B) on sparse data",
			v.SizeBytes(), w.SizeBytes())
	}
}

// TestBitsetSizeTracksDomain checks §5.1 obs. 5: Bitset size depends on
// the max element, not the list size.
func TestBitsetSizeTracksDomain(t *testing.T) {
	a, _ := NewBitset().Compress([]uint32{1 << 20})
	b, _ := NewBitset().Compress(seq(0, 1000))
	if a.SizeBytes() <= b.SizeBytes() {
		t.Errorf("a single huge value (%d B) should dominate 1000 small ones (%d B)",
			a.SizeBytes(), b.SizeBytes())
	}
}
