package bitmap

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"repro/internal/core"
	"repro/internal/kernels"
)

// Binary serialization for the nine bitmap codecs. Layouts (after the
// standard tag+cardinality header, everything little-endian):
//
//	Bitset                word count u32, then u64 words
//	WAH/EWAH/CONCISE/PLWAH word count u32, then u32 words
//	SBH/BBC               byte count u32, then raw bytes
//	VALWAH                segment u8, bit length u64, word count u32, u64 words
//	Roaring               container count u32, then per container:
//	                      key u16, kind u8 (0 array / 1 bitmap),
//	                      cardinality u32, payload (u16s or 1024 u64s)

func appendU32s(dst []byte, words []uint32) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(words)))
	for _, w := range words {
		dst = binary.LittleEndian.AppendUint32(dst, w)
	}
	return dst
}

func readU32s(data []byte) ([]uint32, []byte, error) {
	if len(data) < 4 {
		return nil, nil, core.ErrBadFormat
	}
	n := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	if len(data) < 4*n {
		return nil, nil, fmt.Errorf("%w: truncated u32 array", core.ErrBadFormat)
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(data[4*i:])
	}
	return out, data[4*n:], nil
}

func appendU64s(dst []byte, words []uint64) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(words)))
	for _, w := range words {
		dst = binary.LittleEndian.AppendUint64(dst, w)
	}
	return dst
}

func readU64s(data []byte) ([]uint64, []byte, error) {
	if len(data) < 4 {
		return nil, nil, core.ErrBadFormat
	}
	n := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	if len(data) < 8*n {
		return nil, nil, fmt.Errorf("%w: truncated u64 array", core.ErrBadFormat)
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(data[8*i:])
	}
	return out, data[8*n:], nil
}

func appendBytes(dst, b []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b)))
	return append(dst, b...)
}

func readBytes(data []byte) ([]byte, []byte, error) {
	if len(data) < 4 {
		return nil, nil, core.ErrBadFormat
	}
	n := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	if len(data) < n {
		return nil, nil, fmt.Errorf("%w: truncated byte array", core.ErrBadFormat)
	}
	out := make([]byte, n)
	copy(out, data)
	return out, data[n:], nil
}

// verifySpans validates a decoded RLE bitmap without materializing it:
// the span stream must contain exactly n one-bits and stay inside the
// 2^32 position space. Spans are emitted in increasing position order
// by construction, so this implies a valid sorted set.
func verifySpans(r spanReader, n int) error {
	var pos, ones uint64
	const maxPos = uint64(1) << 32
	for {
		s, ok := r.next()
		if !ok {
			break
		}
		switch s.kind {
		case oneFill:
			ones += s.n
		case literalSpan:
			ones += uint64(bits.OnesCount64(s.word))
		}
		pos += s.n
		if pos > maxPos || ones > uint64(n) {
			return fmt.Errorf("%w: bitmap payload inconsistent with cardinality %d", core.ErrBadFormat, n)
		}
	}
	if ones != uint64(n) {
		return fmt.Errorf("%w: bitmap has %d bits set, header says %d", core.ErrBadFormat, ones, n)
	}
	return nil
}

// --- Bitset ---

// MarshalBinary implements encoding.BinaryMarshaler.
func (p *bitsetPosting) MarshalBinary() ([]byte, error) {
	return appendU64s(core.PutHeader(nil, core.TagBitset, p.n), p.words), nil
}

// Decode implements core.Decoder.
func (Bitset) Decode(data []byte) (core.Posting, error) {
	n, rest, err := core.GetHeader(data, core.TagBitset)
	if err != nil {
		return nil, err
	}
	words, _, err := readU64s(rest)
	if err != nil {
		return nil, err
	}
	// A popcount over the words validates the payload against the header
	// without materializing the list the way core.VerifyDecompress would:
	// set bits are sorted by construction, so cardinality is the only
	// degree of freedom left. The length bound keeps every position
	// inside the 32-bit value space (2^32 bits = 2^26 words).
	if len(words) > 1<<26 {
		return nil, fmt.Errorf("%w: bitset payload overruns 32-bit position space", core.ErrBadFormat)
	}
	if got := kernels.PopcountWords(words); got != n {
		return nil, fmt.Errorf("%w: bitset has %d bits set, header says %d", core.ErrBadFormat, got, n)
	}
	return &bitsetPosting{words: words, n: n}, nil
}

// --- word-aligned RLE codecs ---

func (p *wahPosting) MarshalBinary() ([]byte, error) {
	return appendU32s(core.PutHeader(nil, core.TagWAH, p.n), p.words), nil
}

// Decode implements core.Decoder.
func (WAH) Decode(data []byte) (core.Posting, error) {
	n, rest, err := core.GetHeader(data, core.TagWAH)
	if err != nil {
		return nil, err
	}
	words, _, err := readU32s(rest)
	if err != nil {
		return nil, err
	}
	p := &wahPosting{words: words, n: n}
	if err := verifySpans(p.spans(), n); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *ewahPosting) MarshalBinary() ([]byte, error) {
	return appendU32s(core.PutHeader(nil, core.TagEWAH, p.n), p.words), nil
}

// Decode implements core.Decoder.
func (EWAH) Decode(data []byte) (core.Posting, error) {
	n, rest, err := core.GetHeader(data, core.TagEWAH)
	if err != nil {
		return nil, err
	}
	words, _, err := readU32s(rest)
	if err != nil {
		return nil, err
	}
	p := &ewahPosting{words: words, n: n}
	if err := verifySpans(p.spans(), n); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *concisePosting) MarshalBinary() ([]byte, error) {
	return appendU32s(core.PutHeader(nil, core.TagCONCISE, p.n), p.words), nil
}

// Decode implements core.Decoder.
func (CONCISE) Decode(data []byte) (core.Posting, error) {
	n, rest, err := core.GetHeader(data, core.TagCONCISE)
	if err != nil {
		return nil, err
	}
	words, _, err := readU32s(rest)
	if err != nil {
		return nil, err
	}
	p := &concisePosting{words: words, n: n}
	if err := verifySpans(p.spans(), n); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *plwahPosting) MarshalBinary() ([]byte, error) {
	return appendU32s(core.PutHeader(nil, core.TagPLWAH, p.n), p.words), nil
}

// Decode implements core.Decoder.
func (PLWAH) Decode(data []byte) (core.Posting, error) {
	n, rest, err := core.GetHeader(data, core.TagPLWAH)
	if err != nil {
		return nil, err
	}
	words, _, err := readU32s(rest)
	if err != nil {
		return nil, err
	}
	p := &plwahPosting{words: words, n: n}
	if err := verifySpans(p.spans(), n); err != nil {
		return nil, err
	}
	return p, nil
}

// --- byte-aligned codecs ---

func (p *sbhPosting) MarshalBinary() ([]byte, error) {
	return appendBytes(core.PutHeader(nil, core.TagSBH, p.n), p.data), nil
}

// Decode implements core.Decoder.
func (SBH) Decode(data []byte) (core.Posting, error) {
	n, rest, err := core.GetHeader(data, core.TagSBH)
	if err != nil {
		return nil, err
	}
	b, _, err := readBytes(rest)
	if err != nil {
		return nil, err
	}
	p := &sbhPosting{data: b, n: n}
	if err := verifySpans(p.spans(), n); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *bbcPosting) MarshalBinary() ([]byte, error) {
	return appendBytes(core.PutHeader(nil, core.TagBBC, p.n), p.data), nil
}

// Decode implements core.Decoder.
func (BBC) Decode(data []byte) (core.Posting, error) {
	n, rest, err := core.GetHeader(data, core.TagBBC)
	if err != nil {
		return nil, err
	}
	b, _, err := readBytes(rest)
	if err != nil {
		return nil, err
	}
	p := &bbcPosting{data: b, n: n}
	if err := verifySpans(p.spans(), n); err != nil {
		return nil, err
	}
	return p, nil
}

// --- VALWAH ---

func (p *valwahPosting) MarshalBinary() ([]byte, error) {
	dst := core.PutHeader(nil, core.TagVALWAH, p.n)
	dst = append(dst, byte(p.seg))
	dst = binary.LittleEndian.AppendUint64(dst, p.nbits)
	return appendU64s(dst, p.bits), nil
}

// Decode implements core.Decoder.
func (VALWAH) Decode(data []byte) (core.Posting, error) {
	n, rest, err := core.GetHeader(data, core.TagVALWAH)
	if err != nil {
		return nil, err
	}
	if len(rest) < 9 {
		return nil, core.ErrBadFormat
	}
	seg := uint32(rest[0])
	nbits := binary.LittleEndian.Uint64(rest[1:])
	words, _, err := readU64s(rest[9:])
	if err != nil {
		return nil, err
	}
	if seg != 7 && seg != 14 && seg != 28 {
		return nil, fmt.Errorf("%w: VALWAH segment %d", core.ErrBadFormat, seg)
	}
	if nbits > uint64(len(words))*64 {
		return nil, fmt.Errorf("%w: VALWAH bit length overruns payload", core.ErrBadFormat)
	}
	p := &valwahPosting{bits: words, nbits: nbits, n: n, seg: seg}
	if err := verifySpans(p.spans(), n); err != nil {
		return nil, err
	}
	return p, nil
}

// --- Roaring ---

func (p *roaringPosting) MarshalBinary() ([]byte, error) {
	dst := core.PutHeader(nil, core.TagRoaring, p.n)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(p.cs)))
	for i, c := range p.cs {
		dst = binary.LittleEndian.AppendUint16(dst, p.keys[i])
		switch cc := c.(type) {
		case arrayContainer:
			dst = append(dst, 0)
			dst = binary.LittleEndian.AppendUint32(dst, uint32(len(cc)))
			for _, v := range cc {
				dst = binary.LittleEndian.AppendUint16(dst, v)
			}
		case *bitmapContainer:
			dst = append(dst, 1)
			dst = binary.LittleEndian.AppendUint32(dst, uint32(cc.n))
			for _, w := range cc.words {
				dst = binary.LittleEndian.AppendUint64(dst, w)
			}
		}
	}
	return dst, nil
}

// Decode implements core.Decoder.
func (Roaring) Decode(data []byte) (core.Posting, error) {
	n, rest, err := core.GetHeader(data, core.TagRoaring)
	if err != nil {
		return nil, err
	}
	if len(rest) < 4 {
		return nil, core.ErrBadFormat
	}
	nc := int(binary.LittleEndian.Uint32(rest))
	rest = rest[4:]
	p := &roaringPosting{n: n}
	for i := 0; i < nc; i++ {
		if len(rest) < 7 {
			return nil, fmt.Errorf("%w: truncated Roaring container", core.ErrBadFormat)
		}
		key := binary.LittleEndian.Uint16(rest)
		kind := rest[2]
		card := int(binary.LittleEndian.Uint32(rest[3:]))
		rest = rest[7:]
		switch kind {
		case 0:
			if len(rest) < 2*card {
				return nil, fmt.Errorf("%w: truncated array container", core.ErrBadFormat)
			}
			c := make(arrayContainer, card)
			for k := range c {
				c[k] = binary.LittleEndian.Uint16(rest[2*k:])
			}
			rest = rest[2*card:]
			p.cs = append(p.cs, c)
		case 1:
			if len(rest) < 8192 {
				return nil, fmt.Errorf("%w: truncated bitmap container", core.ErrBadFormat)
			}
			c := &bitmapContainer{n: card}
			for k := range c.words {
				c.words[k] = binary.LittleEndian.Uint64(rest[8*k:])
			}
			// card drives container-level size/merge decisions, so it must
			// match the payload even when the grand total happens to add up.
			if kernels.PopcountWords(c.words[:]) != card {
				return nil, fmt.Errorf("%w: bitmap container cardinality mismatch", core.ErrBadFormat)
			}
			rest = rest[8192:]
			p.cs = append(p.cs, c)
		default:
			return nil, fmt.Errorf("%w: container kind %d", core.ErrBadFormat, kind)
		}
		p.keys = append(p.keys, key)
	}
	// The header count must equal the byte-bounded container total
	// before VerifyDecompress trusts it to size the decode buffer: a
	// lying header otherwise forces an allocation the payload's actual
	// contents never justify.
	total := 0
	for _, c := range p.cs {
		total += c.card()
	}
	if total != n {
		return nil, fmt.Errorf("%w: Roaring header declares %d values, containers hold %d", core.ErrBadFormat, n, total)
	}
	if err := core.VerifyDecompress(p); err != nil {
		return nil, err
	}
	return p, nil
}
