package bitmap

import (
	"sort"

	"repro/internal/core"
)

// The paper's second intersection operator (§B.1): an uncompressed
// sorted list against a compressed bitmap. For span codecs the list and
// the span stream advance in tandem — zero fills skip list ranges with
// one binary search, one fills accept ranges wholesale, literals test
// individual bits — so nothing is decompressed.

// intersectSpansWithList walks spans and the sorted list together.
func intersectSpansWithList(r spanReader, list []uint32) []uint32 {
	var out []uint32
	pos := uint64(0)
	i := 0
	for i < len(list) {
		s, ok := r.next()
		if !ok {
			break
		}
		end := pos + s.n
		switch s.kind {
		case zeroFill:
			// Skip list values inside the empty range.
			i += sort.Search(len(list)-i, func(k int) bool {
				return uint64(list[i+k]) >= end
			})
		case oneFill:
			// Everything in [pos, end) matches.
			for i < len(list) && uint64(list[i]) < end {
				out = append(out, list[i])
				i++
			}
		default:
			for i < len(list) && uint64(list[i]) < end {
				if s.word&(1<<(uint64(list[i])-pos)) != 0 {
					out = append(out, list[i])
				}
				i++
			}
		}
		pos = end
	}
	return out
}

// IntersectList implements core.ListProber.
func (p *wahPosting) IntersectList(sorted []uint32) []uint32 {
	return intersectSpansWithList(p.spans(), sorted)
}

// IntersectList implements core.ListProber.
func (p *ewahPosting) IntersectList(sorted []uint32) []uint32 {
	return intersectSpansWithList(p.spans(), sorted)
}

// IntersectList implements core.ListProber.
func (p *concisePosting) IntersectList(sorted []uint32) []uint32 {
	return intersectSpansWithList(p.spans(), sorted)
}

// IntersectList implements core.ListProber.
func (p *plwahPosting) IntersectList(sorted []uint32) []uint32 {
	return intersectSpansWithList(p.spans(), sorted)
}

// IntersectList implements core.ListProber.
func (p *valwahPosting) IntersectList(sorted []uint32) []uint32 {
	return intersectSpansWithList(p.spans(), sorted)
}

// IntersectList implements core.ListProber.
func (p *sbhPosting) IntersectList(sorted []uint32) []uint32 {
	return intersectSpansWithList(p.spans(), sorted)
}

// IntersectList implements core.ListProber.
func (p *bbcPosting) IntersectList(sorted []uint32) []uint32 {
	return intersectSpansWithList(p.spans(), sorted)
}

// IntersectList implements core.ListProber via direct bit probes.
func (p *bitsetPosting) IntersectList(sorted []uint32) []uint32 {
	var out []uint32
	for _, v := range sorted {
		if p.Contains(v) {
			out = append(out, v)
		}
	}
	return out
}

// IntersectList implements core.ListProber: values are grouped by high
// 16 bits, matched to containers by a merged key walk, and probed with
// binary search (array) or bit tests (bitmap).
func (p *roaringPosting) IntersectList(sorted []uint32) []uint32 {
	var out []uint32
	ci := 0
	i := 0
	for i < len(sorted) && ci < len(p.keys) {
		key := uint16(sorted[i] >> 16)
		switch {
		case p.keys[ci] < key:
			ci++
		case p.keys[ci] > key:
			// Skip the whole bucket of list values.
			next := uint64(key+1) << 16
			i += sort.Search(len(sorted)-i, func(k int) bool {
				return uint64(sorted[i+k]) >= next
			})
		default:
			next := uint64(key+1) << 16
			switch c := p.cs[ci].(type) {
			case arrayContainer:
				lo := 0
				for i < len(sorted) && uint64(sorted[i]) < next {
					low := uint16(sorted[i])
					k := lo + sort.Search(len(c)-lo, func(j int) bool { return c[lo+j] >= low })
					if k < len(c) && c[k] == low {
						out = append(out, sorted[i])
					}
					lo = k
					i++
				}
			case *bitmapContainer:
				for i < len(sorted) && uint64(sorted[i]) < next {
					if c.contains(uint16(sorted[i])) {
						out = append(out, sorted[i])
					}
					i++
				}
			}
			ci++
		}
	}
	return out
}

// Interface conformance checks for every bitmap posting type.
var (
	_ core.ListProber = (*wahPosting)(nil)
	_ core.ListProber = (*ewahPosting)(nil)
	_ core.ListProber = (*concisePosting)(nil)
	_ core.ListProber = (*plwahPosting)(nil)
	_ core.ListProber = (*valwahPosting)(nil)
	_ core.ListProber = (*sbhPosting)(nil)
	_ core.ListProber = (*bbcPosting)(nil)
	_ core.ListProber = (*bitsetPosting)(nil)
	_ core.ListProber = (*roaringPosting)(nil)
)
