package bitmap

import (
	"sort"

	"repro/internal/core"
	"repro/internal/kernels"
)

// Roaring (§2.7) partitions the domain into 2^16-value buckets sharing
// the same high 16 bits. A bucket with more than Threshold elements
// (4096 by default) is stored as a 65536-bit uncompressed bitmap;
// otherwise as a sorted array of 16-bit low parts. At the default
// threshold no element ever costs more than 16 bits — 4096 is exactly
// the break-even point between 2-byte array entries and the 8 KiB
// bitmap container, which the threshold ablation benchmark
// demonstrates. Intersection and union work bucket-at-a-time with four
// cases (bitmap/bitmap, bitmap/array, array/bitmap, array/array),
// skipping buckets whose keys do not match.
type Roaring struct {
	// Threshold overrides the array/bitmap container switch point;
	// 0 means the paper's 4096.
	Threshold int
}

// NewRoaring returns the Roaring codec with the paper's 4096 threshold.
func NewRoaring() core.Codec { return Roaring{} }

// NewRoaringThreshold returns Roaring with a custom container
// threshold (for the ablation study).
func NewRoaringThreshold(t int) core.Codec { return Roaring{Threshold: t} }

func (Roaring) Name() string    { return "Roaring" }
func (Roaring) Kind() core.Kind { return core.KindBitmap }

// roaringArrayMax is the paper's array-container cardinality threshold.
const roaringArrayMax = 4096

// Compress buckets values by their high 16 bits and stores each bucket
// as an array or bitmap container per the threshold.
func (r Roaring) Compress(values []uint32) (core.Posting, error) {
	if err := core.ValidateSorted(values); err != nil {
		return nil, err
	}
	threshold := r.Threshold
	if threshold <= 0 {
		threshold = roaringArrayMax
	}
	p := &roaringPosting{n: len(values)}
	i := 0
	for i < len(values) {
		key := uint16(values[i] >> 16)
		j := i
		for j < len(values) && uint16(values[j]>>16) == key {
			j++
		}
		bucket := values[i:j]
		p.keys = append(p.keys, key)
		if len(bucket) > threshold {
			c := &bitmapContainer{n: len(bucket)}
			for _, v := range bucket {
				low := v & 0xffff
				c.words[low>>6] |= 1 << (low & 63)
			}
			p.cs = append(p.cs, c)
		} else {
			c := make(arrayContainer, len(bucket))
			for k, v := range bucket {
				c[k] = uint16(v)
			}
			p.cs = append(p.cs, c)
		}
		i = j
	}
	return p, nil
}

type roaringPosting struct {
	keys []uint16
	cs   []container
	n    int
}

type container interface {
	card() int
	sizeBytes() int
	appendAll(out []uint32, high uint32) []uint32
}

type arrayContainer []uint16

func (c arrayContainer) card() int      { return len(c) }
func (c arrayContainer) sizeBytes() int { return len(c) * 2 }
func (c arrayContainer) appendAll(out []uint32, high uint32) []uint32 {
	for _, v := range c {
		out = append(out, high|uint32(v))
	}
	return out
}

type bitmapContainer struct {
	words [1024]uint64
	n     int
}

func (c *bitmapContainer) card() int      { return c.n }
func (c *bitmapContainer) sizeBytes() int { return 8192 }
func (c *bitmapContainer) appendAll(out []uint32, high uint32) []uint32 {
	return kernels.ExtractWords(out, c.words[:], high)
}

func (c *bitmapContainer) contains(low uint16) bool {
	return c.words[low>>6]&(1<<(low&63)) != 0
}

func (p *roaringPosting) Len() int { return p.n }

// SizeBytes counts container payloads plus 4 bytes of per-container
// metadata (16-bit key and cardinality).
func (p *roaringPosting) SizeBytes() int {
	s := 4 * len(p.cs)
	for _, c := range p.cs {
		s += c.sizeBytes()
	}
	return s
}

func (p *roaringPosting) Decompress() []uint32 {
	return p.DecompressAppend(make([]uint32, 0, p.n))
}

// DecompressAppend implements core.DecompressAppender.
func (p *roaringPosting) DecompressAppend(dst []uint32) []uint32 {
	for i, c := range p.cs {
		dst = c.appendAll(dst, uint32(p.keys[i])<<16)
	}
	return dst
}

// IntersectWith merges bucket keys and intersects matching containers.
func (p *roaringPosting) IntersectWith(other core.Posting) ([]uint32, error) {
	q, ok := other.(*roaringPosting)
	if !ok {
		return nil, core.ErrIncompatible
	}
	var out []uint32
	i, j := 0, 0
	for i < len(p.keys) && j < len(q.keys) {
		switch {
		case p.keys[i] < q.keys[j]:
			i++
		case p.keys[i] > q.keys[j]:
			j++
		default:
			out = andContainers(p.cs[i], q.cs[j], out, uint32(p.keys[i])<<16)
			i++
			j++
		}
	}
	return out, nil
}

// UnionWith merges bucket keys and unions matching containers.
func (p *roaringPosting) UnionWith(other core.Posting) ([]uint32, error) {
	q, ok := other.(*roaringPosting)
	if !ok {
		return nil, core.ErrIncompatible
	}
	out := make([]uint32, 0, p.n+q.n)
	i, j := 0, 0
	for i < len(p.keys) || j < len(q.keys) {
		switch {
		case j >= len(q.keys) || (i < len(p.keys) && p.keys[i] < q.keys[j]):
			out = p.cs[i].appendAll(out, uint32(p.keys[i])<<16)
			i++
		case i >= len(p.keys) || p.keys[i] > q.keys[j]:
			out = q.cs[j].appendAll(out, uint32(q.keys[j])<<16)
			j++
		default:
			out = orContainers(p.cs[i], q.cs[j], out, uint32(p.keys[i])<<16)
			i++
			j++
		}
	}
	return out, nil
}

func andContainers(a, b container, out []uint32, high uint32) []uint32 {
	switch ca := a.(type) {
	case arrayContainer:
		switch cb := b.(type) {
		case arrayContainer:
			return andArrayArray(ca, cb, out, high)
		case *bitmapContainer:
			return andArrayBitmap(ca, cb, out, high)
		}
	case *bitmapContainer:
		switch cb := b.(type) {
		case arrayContainer:
			return andArrayBitmap(cb, ca, out, high)
		case *bitmapContainer:
			return kernels.AndWordsExtract(out, ca.words[:], cb.words[:], high)
		}
	}
	return out
}

// andArrayArray intersects two sorted uint16 arrays: merge when sizes
// are comparable, per-element binary search (the paper's "in-bucket
// binary search") when they differ greatly.
func andArrayArray(a, b arrayContainer, out []uint32, high uint32) []uint32 {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(b) > 32*len(a) {
		lo := 0
		for _, v := range a {
			k := lo + sort.Search(len(b)-lo, func(i int) bool { return b[lo+i] >= v })
			if k < len(b) && b[k] == v {
				out = append(out, high|uint32(v))
			}
			lo = k
		}
		return out
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, high|uint32(a[i]))
			i++
			j++
		}
	}
	return out
}

func andArrayBitmap(a arrayContainer, b *bitmapContainer, out []uint32, high uint32) []uint32 {
	for _, v := range a {
		if b.contains(v) {
			out = append(out, high|uint32(v))
		}
	}
	return out
}

func orContainers(a, b container, out []uint32, high uint32) []uint32 {
	switch ca := a.(type) {
	case arrayContainer:
		switch cb := b.(type) {
		case arrayContainer:
			i, j := 0, 0
			for i < len(ca) || j < len(cb) {
				switch {
				case j >= len(cb) || (i < len(ca) && ca[i] < cb[j]):
					out = append(out, high|uint32(ca[i]))
					i++
				case i >= len(ca) || ca[i] > cb[j]:
					out = append(out, high|uint32(cb[j]))
					j++
				default:
					out = append(out, high|uint32(ca[i]))
					i++
					j++
				}
			}
			return out
		case *bitmapContainer:
			return orArrayBitmap(ca, cb, out, high)
		}
	case *bitmapContainer:
		switch cb := b.(type) {
		case arrayContainer:
			return orArrayBitmap(cb, ca, out, high)
		case *bitmapContainer:
			return kernels.OrWordsExtract(out, ca.words[:], cb.words[:], high)
		}
	}
	return out
}

func orArrayBitmap(a arrayContainer, b *bitmapContainer, out []uint32, high uint32) []uint32 {
	var merged bitmapContainer
	merged.words = b.words
	for _, v := range a {
		merged.words[v>>6] |= 1 << (v & 63)
	}
	return merged.appendAll(out, high)
}
