package bitmap

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

// sortedSet generates random strictly-increasing uint32 slices for
// testing/quick, mixing sparse points and dense runs so both literal
// and fill paths are exercised.
type sortedSet []uint32

// Generate implements quick.Generator.
func (sortedSet) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(size*40 + 1)
	seen := make(map[uint32]struct{}, n)
	for len(seen) < n {
		var v uint32
		if r.Intn(2) == 0 {
			v = uint32(r.Intn(1 << 16)) // dense region
		} else {
			v = uint32(r.Intn(1 << 22)) // sparse region
		}
		seen[v] = struct{}{}
		// Half the time grow a run from v.
		if r.Intn(2) == 0 {
			runLen := r.Intn(40)
			for j := 1; j <= runLen && len(seen) < n; j++ {
				seen[v+uint32(j)] = struct{}{}
			}
		}
	}
	out := make(sortedSet, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return reflect.ValueOf(out)
}

var quickCfg = &quick.Config{MaxCount: 25}

// TestQuickRoundTrip: Decompress(Compress(x)) == x for every bitmap
// codec on arbitrary sorted sets.
func TestQuickRoundTrip(t *testing.T) {
	for _, c := range allCodecs() {
		c := c
		prop := func(s sortedSet) bool {
			p, err := c.Compress(s)
			if err != nil {
				return false
			}
			return equalU32(p.Decompress(), s)
		}
		if err := quick.Check(prop, quickCfg); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

// TestQuickIntersectEquivalence: codec AND == reference set
// intersection for arbitrary pairs.
func TestQuickIntersectEquivalence(t *testing.T) {
	for _, c := range allCodecs() {
		c := c
		prop := func(a, b sortedSet) bool {
			pa, err1 := c.Compress(a)
			pb, err2 := c.Compress(b)
			if err1 != nil || err2 != nil {
				return false
			}
			got, err := pa.(core.Intersecter).IntersectWith(pb)
			if err != nil {
				return false
			}
			return equalU32(normalize(got), refIntersect(a, b))
		}
		if err := quick.Check(prop, quickCfg); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

// TestQuickUnionEquivalence: codec OR == reference set union.
func TestQuickUnionEquivalence(t *testing.T) {
	for _, c := range allCodecs() {
		c := c
		prop := func(a, b sortedSet) bool {
			pa, err1 := c.Compress(a)
			pb, err2 := c.Compress(b)
			if err1 != nil || err2 != nil {
				return false
			}
			got, err := pa.(core.Unioner).UnionWith(pb)
			if err != nil {
				return false
			}
			return equalU32(normalize(got), refUnion(a, b))
		}
		if err := quick.Check(prop, quickCfg); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

// TestQuickSizeInvariants: Len matches, size is non-negative, and the
// posting is independent of its input slice.
func TestQuickSizeInvariants(t *testing.T) {
	for _, c := range allCodecs() {
		c := c
		prop := func(s sortedSet) bool {
			in := append(sortedSet(nil), s...)
			p, err := c.Compress(in)
			if err != nil {
				return false
			}
			// Clobber the input; the posting must not notice.
			for i := range in {
				in[i] = 0xdeadbeef
			}
			return p.Len() == len(s) && p.SizeBytes() >= 0 && equalU32(p.Decompress(), s)
		}
		if err := quick.Check(prop, quickCfg); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

// TestQuickIdempotentOps: A ∩ A == A and A ∪ A == A.
func TestQuickIdempotentOps(t *testing.T) {
	for _, c := range allCodecs() {
		c := c
		prop := func(s sortedSet) bool {
			p, err := c.Compress(s)
			if err != nil {
				return false
			}
			q, err := c.Compress(s)
			if err != nil {
				return false
			}
			and, err := p.(core.Intersecter).IntersectWith(q)
			if err != nil || !equalU32(normalize(and), s) {
				return false
			}
			or, err := p.(core.Unioner).UnionWith(q)
			return err == nil && equalU32(normalize(or), s)
		}
		if err := quick.Check(prop, quickCfg); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}
