package bitmap

import (
	"math/bits"

	"repro/internal/core"
)

// CONCISE (§2.3) uses 31-bit groups. A literal word has bit 31 set and
// carries the group bits. A fill word has bit 31 clear, bit 30 holding
// the fill bit, bits 29..25 a 5-bit odd-bit position (0 = none), and the
// low 25 bits the number of fill groups minus one. When the odd position
// is non-zero the word encodes a "mixed fill" literal group — the fill
// pattern with one bit flipped at the (1-based) odd position — followed
// by the fill groups, per the paper's "stores the mixed fill group with
// the next fill group".
type CONCISE struct{}

// NewCONCISE returns the CONCISE codec.
func NewCONCISE() core.Codec { return CONCISE{} }

func (CONCISE) Name() string    { return "CONCISE" }
func (CONCISE) Kind() core.Kind { return core.KindBitmap }

const (
	cncLiteralFlag = uint32(1) << 31
	cncFillBit     = uint32(1) << 30
	cncOddShift    = 25
	cncOddMask     = uint32(31)
	cncCountMask   = (uint32(1) << 25) - 1
	cncMaxFills    = uint64(1) << 25 // stored as count-1 in 25 bits
)

// groupItem is the intermediate run-merged form shared by the
// lookahead-style encoders (CONCISE fuses a literal with the fills that
// follow it).
type groupItem struct {
	count uint64 // fill groups (fill items) — 0 marks a literal item
	word  uint32 // literal payload
	bit   bool   // fill bit
}

// collectGroups run-merges the group stream of values at width w.
func collectGroups(values []uint32, w uint32) []groupItem {
	var items []groupItem
	mask := groupMask(w)
	forEachGroup(values, w, func(word uint64, count uint64) {
		switch {
		case word == 0:
			if k := len(items) - 1; k >= 0 && items[k].count > 0 && !items[k].bit {
				items[k].count += count
			} else {
				items = append(items, groupItem{count: count})
			}
		case word == mask:
			if k := len(items) - 1; k >= 0 && items[k].count > 0 && items[k].bit {
				items[k].count++
			} else {
				items = append(items, groupItem{count: 1, bit: true})
			}
		default:
			items = append(items, groupItem{word: uint32(word)})
		}
	})
	return items
}

// oddBitOf reports whether literal differs from a w-bit fill of bit b in
// exactly one position; pos is that position (0-based).
func oddBitOf(literal uint32, b bool, w uint32) (pos uint32, ok bool) {
	pattern := uint32(0)
	if b {
		pattern = uint32(groupMask(w))
	}
	diff := literal ^ pattern
	if diff == 0 || diff&(diff-1) != 0 {
		return 0, false
	}
	return uint32(bits.TrailingZeros32(diff)), true
}

func (CONCISE) Compress(values []uint32) (core.Posting, error) {
	if err := core.ValidateSorted(values); err != nil {
		return nil, err
	}
	p := &concisePosting{n: len(values)}
	items := collectGroups(values, wahWidth)
	emitFill := func(bit bool, odd uint32, count uint64) {
		// odd applies to the first emitted word only.
		for count > 0 {
			c := count
			if c > cncMaxFills {
				c = cncMaxFills
			}
			w := uint32(c-1) & cncCountMask
			if bit {
				w |= cncFillBit
			}
			w |= odd << cncOddShift
			odd = 0
			p.words = append(p.words, w)
			count -= c
		}
	}
	for i := 0; i < len(items); i++ {
		it := items[i]
		if it.count > 0 {
			emitFill(it.bit, 0, it.count)
			continue
		}
		// Literal: fuse with the following fill run when it is a mixed
		// fill group (exactly one odd bit w.r.t. the next fill's bit).
		if i+1 < len(items) && items[i+1].count > 0 {
			nxt := items[i+1]
			if pos, ok := oddBitOf(it.word, nxt.bit, wahWidth); ok {
				emitFill(nxt.bit, pos+1, nxt.count)
				i++
				continue
			}
		}
		p.words = append(p.words, cncLiteralFlag|it.word)
	}
	return p, nil
}

type concisePosting struct {
	words []uint32
	n     int
}

func (p *concisePosting) Len() int       { return p.n }
func (p *concisePosting) SizeBytes() int { return len(p.words) * 4 }

func (p *concisePosting) spans() spanReader { return &conciseReader{words: p.words} }

func (p *concisePosting) Decompress() []uint32 { return decompressSpans(p.spans(), p.n) }

// DecompressAppend implements core.DecompressAppender on the span stream.
func (p *concisePosting) DecompressAppend(dst []uint32) []uint32 {
	return decompressSpansAppend(p.spans(), dst)
}

func (p *concisePosting) IntersectWith(other core.Posting) ([]uint32, error) {
	q, ok := other.(*concisePosting)
	if !ok {
		return nil, core.ErrIncompatible
	}
	return intersectSpanReaders(p.spans(), q.spans()), nil
}

func (p *concisePosting) UnionWith(other core.Posting) ([]uint32, error) {
	q, ok := other.(*concisePosting)
	if !ok {
		return nil, core.ErrIncompatible
	}
	return unionSpanReaders(p.spans(), q.spans()), nil
}

type conciseReader struct {
	words []uint32
	i     int
	// pending fill issued after a mixed literal
	pending     uint64
	pendingKind spanKind
}

func (r *conciseReader) next() (span, bool) {
	if r.pending > 0 {
		s := span{n: r.pending * wahWidth, kind: r.pendingKind}
		r.pending = 0
		return s, true
	}
	if r.i >= len(r.words) {
		return span{}, false
	}
	w := r.words[r.i]
	r.i++
	if w&cncLiteralFlag != 0 {
		return span{n: wahWidth, word: uint64(w &^ cncLiteralFlag), kind: literalSpan}, true
	}
	count := uint64(w&cncCountMask) + 1
	kind := zeroFill
	pattern := uint64(0)
	if w&cncFillBit != 0 {
		kind = oneFill
		pattern = uint64(wahGroupMask)
	}
	odd := w >> cncOddShift & cncOddMask
	if odd == 0 {
		return span{n: count * wahWidth, kind: kind}, true
	}
	// Mixed literal first, then the fills.
	r.pending = count
	r.pendingKind = kind
	return span{n: wahWidth, word: pattern ^ (1 << (odd - 1)), kind: literalSpan}, true
}
