package bitmap

import "repro/internal/core"

// WAH (Word-Aligned Hybrid, §2.1) partitions the bitmap into 31-bit
// groups. A literal word has bit 31 clear and carries the 31 group bits;
// a fill word has bit 31 set, bit 30 holding the fill bit, and the low
// 30 bits holding the number of consecutive fill groups.
type WAH struct{}

// NewWAH returns the WAH codec.
func NewWAH() core.Codec { return WAH{} }

func (WAH) Name() string    { return "WAH" }
func (WAH) Kind() core.Kind { return core.KindBitmap }

const (
	wahWidth     = 31
	wahFillFlag  = uint32(1) << 31
	wahFillBit   = uint32(1) << 30
	wahMaxCount  = (uint32(1) << 30) - 1
	wahGroupMask = (uint32(1) << 31) - 1
)

func (WAH) Compress(values []uint32) (core.Posting, error) {
	if err := core.ValidateSorted(values); err != nil {
		return nil, err
	}
	p := &wahPosting{n: len(values)}
	var pendingFill uint32 // pending 0-fill or 1-fill group count
	var pendingOne bool
	flush := func() {
		for pendingFill > 0 {
			c := pendingFill
			if c > wahMaxCount {
				c = wahMaxCount
			}
			w := wahFillFlag | c
			if pendingOne {
				w |= wahFillBit
			}
			p.words = append(p.words, w)
			pendingFill -= c
		}
	}
	forEachGroup(values, wahWidth, func(word uint64, count uint64) {
		switch {
		case word == 0:
			if pendingFill > 0 && pendingOne {
				flush()
			}
			pendingOne = false
			for count > 0 {
				room := uint64(wahMaxCount - pendingFill)
				add := count
				if add > room {
					add = room
				}
				pendingFill += uint32(add)
				count -= add
				if count > 0 {
					flush()
				}
			}
		case word == uint64(wahGroupMask):
			if pendingFill > 0 && !pendingOne {
				flush()
			}
			pendingOne = true
			pendingFill++
			if pendingFill == wahMaxCount {
				flush()
			}
		default:
			flush()
			p.words = append(p.words, uint32(word))
		}
	})
	flush()
	return p, nil
}

type wahPosting struct {
	words []uint32
	n     int
}

func (p *wahPosting) Len() int       { return p.n }
func (p *wahPosting) SizeBytes() int { return len(p.words) * 4 }

func (p *wahPosting) spans() spanReader { return &wahReader{words: p.words} }

func (p *wahPosting) Decompress() []uint32 { return decompressSpans(p.spans(), p.n) }

// DecompressAppend implements core.DecompressAppender on the span stream.
func (p *wahPosting) DecompressAppend(dst []uint32) []uint32 {
	return decompressSpansAppend(p.spans(), dst)
}

func (p *wahPosting) IntersectWith(other core.Posting) ([]uint32, error) {
	q, ok := other.(*wahPosting)
	if !ok {
		return nil, core.ErrIncompatible
	}
	return intersectSpanReaders(p.spans(), q.spans()), nil
}

func (p *wahPosting) UnionWith(other core.Posting) ([]uint32, error) {
	q, ok := other.(*wahPosting)
	if !ok {
		return nil, core.ErrIncompatible
	}
	return unionSpanReaders(p.spans(), q.spans()), nil
}

type wahReader struct {
	words []uint32
	i     int
}

func (r *wahReader) next() (span, bool) {
	if r.i >= len(r.words) {
		return span{}, false
	}
	w := r.words[r.i]
	r.i++
	if w&wahFillFlag == 0 {
		return span{n: wahWidth, word: uint64(w), kind: literalSpan}, true
	}
	count := uint64(w & wahMaxCount)
	kind := zeroFill
	if w&wahFillBit != 0 {
		kind = oneFill
	}
	return span{n: count * wahWidth, kind: kind}, true
}
