package bitmap

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

// runHeavy builds data with long consecutive runs — the case run
// containers exist for.
func runHeavy(rng *rand.Rand, domain uint32) []uint32 {
	var out []uint32
	pos := uint32(0)
	for pos < domain {
		pos += rng.Uint32() % 2000
		runLen := 200 + rng.Uint32()%3000
		for j := uint32(0); j < runLen && pos < domain; j++ {
			out = append(out, pos)
			pos++
		}
		pos += 2
	}
	return out
}

func TestRoaringRunRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	cases := map[string][]uint32{
		"empty":     {},
		"single":    {12345},
		"runs":      runHeavy(rng, 1<<19),
		"sparse":    randomSet(rng, 2000, 1<<20),
		"dense":     randomSet(rng, 40000, 1<<17),
		"bucketmix": append(runHeavy(rng, 1<<17), randomSet(rng, 500, 1<<17)...),
	}
	for name, raw := range cases {
		vals := append([]uint32(nil), raw...)
		sortU32(vals)
		vals = dedupe(vals)
		p, err := NewRoaringRun().Compress(vals)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !equalU32(p.Decompress(), vals) {
			t.Errorf("%s: round trip failed", name)
		}
	}
}

// TestRoaringRunPicksContainersAdaptively: run-heavy buckets pick run
// containers, random dense buckets pick bitmaps, sparse buckets arrays.
func TestRoaringRunPicksContainersAdaptively(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	runsData := runHeavy(rng, 1<<16) // one bucket of runs
	p, _ := NewRoaringRun().Compress(runsData)
	r, a, b := p.(*roaringRunPosting).RunStats()
	if r == 0 {
		t.Errorf("run-heavy data picked no run containers (r=%d a=%d b=%d)", r, a, b)
	}

	sparse := randomSet(rng, 100, 1<<16)
	p, _ = NewRoaringRun().Compress(sparse)
	if _, a, _ := p.(*roaringRunPosting).RunStats(); a == 0 {
		t.Error("sparse data picked no array containers")
	}

	dense := randomSet(rng, 30000, 1<<16)
	p, _ = NewRoaringRun().Compress(dense)
	if _, _, bm := p.(*roaringRunPosting).RunStats(); bm == 0 {
		t.Error("random dense data picked no bitmap containers")
	}
	_ = b
}

// TestRoaringRunSpaceBeatsRoaringOnRuns: on run-heavy data the hybrid
// is much smaller than plain Roaring — the lesson-1 payoff.
func TestRoaringRunSpaceBeatsRoaringOnRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	vals := runHeavy(rng, 1<<20)
	hybrid, _ := NewRoaringRun().Compress(vals)
	plain, _ := NewRoaring().Compress(vals)
	if hybrid.SizeBytes()*4 > plain.SizeBytes() {
		t.Errorf("hybrid %d B should be well under plain Roaring %d B on runs",
			hybrid.SizeBytes(), plain.SizeBytes())
	}
}

// TestRoaringRunOpsAgainstReference covers the container combination
// matrix for AND/OR plus the list probe.
func TestRoaringRunOpsAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	shapes := map[string][]uint32{
		"runs-a":    runHeavy(rng, 1<<18),
		"runs-b":    runHeavy(rng, 1<<18),
		"sparse":    randomSet(rng, 3000, 1<<18),
		"dense":     randomSet(rng, 50000, 1<<17),
		"verydense": randomSet(rng, 30000, 1<<16),
	}
	names := []string{"runs-a", "runs-b", "sparse", "dense", "verydense"}
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			a, b := shapes[names[i]], shapes[names[j]]
			pa, _ := NewRoaringRun().Compress(a)
			pb, _ := NewRoaringRun().Compress(b)
			and, err := pa.(core.Intersecter).IntersectWith(pb)
			if err != nil {
				t.Fatal(err)
			}
			if !equalU32(normalize(and), refIntersect(a, b)) {
				t.Errorf("%s x %s: AND mismatch", names[i], names[j])
			}
			or, err := pa.(core.Unioner).UnionWith(pb)
			if err != nil {
				t.Fatal(err)
			}
			if !equalU32(normalize(or), refUnion(a, b)) {
				t.Errorf("%s x %s: OR mismatch", names[i], names[j])
			}
			probe := pa.(core.ListProber).IntersectList(b)
			if !equalU32(normalize(probe), refIntersect(b, a)) {
				t.Errorf("%s x %s: IntersectList mismatch", names[i], names[j])
			}
		}
	}
}

// TestRoaringRunIncompatible: mixing with plain Roaring signals
// ErrIncompatible and flows through the generic ops path.
func TestRoaringRunIncompatible(t *testing.T) {
	a, _ := NewRoaringRun().Compress([]uint32{1, 2, 3})
	b, _ := NewRoaring().Compress([]uint32{2, 3, 4})
	if _, err := a.(core.Intersecter).IntersectWith(b); err == nil {
		t.Fatal("expected ErrIncompatible")
	}
}

// TestHybridNeverLargerThanRoaring: the hybrid considers the same
// array/bitmap options per bucket plus runs, so it can never exceed
// plain Roaring's size — the lesson-1 dominance invariant.
func TestHybridNeverLargerThanRoaring(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	cases := [][]uint32{
		runHeavy(rng, 1<<19),
		randomSet(rng, 5000, 1<<20),
		randomSet(rng, 60000, 1<<17),
		clusteredSet(rng, 80, 1<<19),
	}
	for i, vals := range cases {
		hybrid, err := NewRoaringRun().Compress(vals)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := NewRoaring().Compress(vals)
		if err != nil {
			t.Fatal(err)
		}
		if hybrid.SizeBytes() > plain.SizeBytes() {
			t.Errorf("case %d: hybrid %d B exceeds plain Roaring %d B",
				i, hybrid.SizeBytes(), plain.SizeBytes())
		}
	}
}
