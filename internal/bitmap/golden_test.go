package bitmap

import "testing"

// Golden tests for the paper's worked encoding examples (§2). Bit-order
// inside groups is LSB-first in this implementation, so assertions are
// structural (word counts, flags, fill lengths, odd positions) rather
// than literal bit strings.

// TestCONCISEPaperExample: §2.3's bitmap 0^23 1 0^111 1^25 partitions
// into 6 groups; G1 is a mixed fill group (single odd bit), fused with
// the zero fills G2-G4 into ONE word, followed by two literals.
func TestCONCISEPaperExample(t *testing.T) {
	var vals []uint32
	vals = append(vals, 23)
	for i := uint32(135); i < 160; i++ {
		vals = append(vals, i)
	}
	p, err := NewCONCISE().Compress(vals)
	if err != nil {
		t.Fatal(err)
	}
	words := p.(*concisePosting).words
	if len(words) != 3 {
		t.Fatalf("got %d words, want 3 (mixed fill + 2 literals): %x", len(words), words)
	}
	w := words[0]
	if w&cncLiteralFlag != 0 {
		t.Fatal("word 0 should be a fill word")
	}
	if w&cncFillBit != 0 {
		t.Fatal("word 0 should be a 0-fill")
	}
	if odd := w >> cncOddShift & cncOddMask; odd != 24 {
		t.Errorf("odd position = %d, want 24 (bit 23, 1-based)", odd)
	}
	if count := w&cncCountMask + 1; count != 3 {
		t.Errorf("fill count = %d, want 3 (G2-G4)", count)
	}
	if !equalU32(p.Decompress(), vals) {
		t.Fatal("round trip failed")
	}
}

// TestPLWAHPaperExample: §2.4's bitmap 1 0^20 1^3 0^111 1^25 — G1 is a
// true literal (not mixed), G2-G4 fuse into one pure fill word, G5 and
// G6 stay literal. PLWAH's odd-bit fusion applies when a literal with
// one bit FOLLOWS a fill; here G5 has 20 bits so no fusion happens.
func TestPLWAHPaperExample(t *testing.T) {
	var vals []uint32
	vals = append(vals, 0, 21, 22, 23)
	for i := uint32(135); i < 160; i++ {
		vals = append(vals, i)
	}
	p, err := NewPLWAH().Compress(vals)
	if err != nil {
		t.Fatal(err)
	}
	words := p.(*plwahPosting).words
	if len(words) != 4 {
		t.Fatalf("got %d words, want 4: %x", len(words), words)
	}
	if words[0]&plwFillFlag != 0 {
		t.Fatal("word 0 should be a literal")
	}
	w := words[1]
	if w&plwFillFlag == 0 || w&plwFillBit != 0 {
		t.Fatalf("word 1 should be a 0-fill, got %x", w)
	}
	if odd := w >> plwOddShift & plwOddMask; odd != 0 {
		t.Errorf("odd position = %d, want 0 (pure fill)", odd)
	}
	if count := w & plwCountMask; count != 3 {
		t.Errorf("fill count = %d, want 3", count)
	}
}

// TestPLWAHOddBitFusion: a fill followed by a single-bit literal fuses
// into one word carrying the odd position.
func TestPLWAHOddBitFusion(t *testing.T) {
	// Bit 0 set (literal G0), bits 31..92 empty (2 fill groups), then
	// bit 95 = group 3 bit 2 — a single-bit literal after the fill.
	vals := []uint32{0, 95}
	p, err := NewPLWAH().Compress(vals)
	if err != nil {
		t.Fatal(err)
	}
	words := p.(*plwahPosting).words
	if len(words) != 2 {
		t.Fatalf("got %d words, want 2 (literal + fused fill): %x", len(words), words)
	}
	w := words[1]
	if w&plwFillFlag == 0 {
		t.Fatal("word 1 should be a fill word")
	}
	if odd := w >> plwOddShift & plwOddMask; odd != 3 {
		t.Errorf("odd position = %d, want 3 (bit 2 of the group, 1-based)", odd)
	}
	if !equalU32(p.Decompress(), vals) {
		t.Fatal("round trip failed")
	}
}

// TestSBHPaperStructure: §2.6's example uses 7-bit groups; a run of 72
// empty groups takes the two-byte form with k split low/high 6 bits.
func TestSBHPaperStructure(t *testing.T) {
	// 1 0^20 1^3 0^511 1^25 over 560 bits (the paper's SBH example is
	// 560 bits; we check the 72-group fill in the middle).
	var vals []uint32
	vals = append(vals, 0, 21, 22, 23)
	for i := uint32(535); i < 560; i++ {
		vals = append(vals, i)
	}
	p, err := NewSBH().Compress(vals)
	if err != nil {
		t.Fatal(err)
	}
	if !equalU32(p.Decompress(), vals) {
		t.Fatal("round trip failed")
	}
	// Find a two-byte fill pair covering the long run.
	data := p.(*sbhPosting).data
	found := false
	for i := 0; i+1 < len(data); i++ {
		if data[i]&sbhFill != 0 && data[i+1]&sbhFill != 0 &&
			data[i]&sbhFillBit == data[i+1]&sbhFillBit {
			k := uint64(data[i]&63) | uint64(data[i+1]&63)<<6
			if k > 63 {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("expected a two-byte fill counter in %x", data)
	}
}

// TestEWAHLongLiteralRun: markers cap at 32767 literals and re-issue.
func TestEWAHLongLiteralRun(t *testing.T) {
	// Alternating bits defeat fills entirely: every group is literal.
	n := 40000 * 32 // > 32767 literal groups
	vals := make([]uint32, 0, n/2)
	for i := 0; i < n; i += 2 {
		vals = append(vals, uint32(i))
	}
	p, err := NewEWAH().Compress(vals)
	if err != nil {
		t.Fatal(err)
	}
	if !equalU32(p.Decompress(), vals) {
		t.Fatal("round trip failed")
	}
	words := p.(*ewahPosting).words
	if len(words) < 40002 {
		t.Errorf("expected >= 40002 words (40000 literals + 2 markers), got %d", len(words))
	}
}

// TestWAHLongFillChunking: fills beyond 2^30-1 groups split across
// words. (2^30 groups of 31 bits is a 4-gigabit bitmap — we synthesize
// the encoder state instead of a real list by checking the chunk loop
// boundary at a smaller scale via the max counter constant.)
func TestWAHLongFillChunking(t *testing.T) {
	// Two values separated by ~2^26 groups of zeros: single fill word.
	vals := []uint32{0, 31 * (1 << 26)}
	p, err := NewWAH().Compress(vals)
	if err != nil {
		t.Fatal(err)
	}
	words := p.(*wahPosting).words
	if len(words) != 3 {
		t.Fatalf("got %d words, want 3: %x", len(words), words)
	}
	if words[1]&wahFillFlag == 0 || words[1]&wahMaxCount != 1<<26-1 {
		t.Errorf("fill word = %x, want count %d", words[1], 1<<26-1)
	}
	if !equalU32(p.Decompress(), vals) {
		t.Fatal("round trip failed")
	}
}
