package bitmap

import "repro/internal/core"

// PLWAH (Position List WAH, §2.4) uses 31-bit groups like WAH. Literal
// words have bit 31 clear. Fill words have bit 31 set, bit 30 the fill
// bit, bits 29..25 a 5-bit odd-bit position, and the low 25 bits the
// fill-group count. A non-zero odd position means the fill groups are
// followed by a literal group that differs from the fill pattern in
// exactly that (1-based) bit — the "literal group preceded by a fill
// group" fusion.
type PLWAH struct{}

// NewPLWAH returns the PLWAH codec.
func NewPLWAH() core.Codec { return PLWAH{} }

func (PLWAH) Name() string    { return "PLWAH" }
func (PLWAH) Kind() core.Kind { return core.KindBitmap }

const (
	plwFillFlag  = uint32(1) << 31
	plwFillBit   = uint32(1) << 30
	plwOddShift  = 25
	plwOddMask   = uint32(31)
	plwCountMask = (uint32(1) << 25) - 1
	plwMaxFills  = uint64(1)<<25 - 1
)

func (PLWAH) Compress(values []uint32) (core.Posting, error) {
	if err := core.ValidateSorted(values); err != nil {
		return nil, err
	}
	p := &plwahPosting{n: len(values)}
	items := collectGroups(values, wahWidth)
	emitFill := func(bit bool, count uint64, odd uint32) {
		// odd attaches to the last emitted word of a chunked run.
		for count > 0 {
			c := count
			if c > plwMaxFills {
				c = plwMaxFills
			}
			count -= c
			w := plwFillFlag | uint32(c)
			if bit {
				w |= plwFillBit
			}
			if count == 0 {
				w |= odd << plwOddShift
			}
			p.words = append(p.words, w)
		}
	}
	for i := 0; i < len(items); i++ {
		it := items[i]
		if it.count == 0 {
			p.words = append(p.words, it.word) // literal, flag bit already 0
			continue
		}
		// Fill run: fuse the following literal when it is one odd bit
		// away from this fill's pattern.
		if i+1 < len(items) && items[i+1].count == 0 {
			if pos, ok := oddBitOf(items[i+1].word, it.bit, wahWidth); ok {
				emitFill(it.bit, it.count, pos+1)
				i++
				continue
			}
		}
		emitFill(it.bit, it.count, 0)
	}
	return p, nil
}

type plwahPosting struct {
	words []uint32
	n     int
}

func (p *plwahPosting) Len() int       { return p.n }
func (p *plwahPosting) SizeBytes() int { return len(p.words) * 4 }

func (p *plwahPosting) spans() spanReader { return &plwahReader{words: p.words} }

func (p *plwahPosting) Decompress() []uint32 { return decompressSpans(p.spans(), p.n) }

// DecompressAppend implements core.DecompressAppender on the span stream.
func (p *plwahPosting) DecompressAppend(dst []uint32) []uint32 {
	return decompressSpansAppend(p.spans(), dst)
}

func (p *plwahPosting) IntersectWith(other core.Posting) ([]uint32, error) {
	q, ok := other.(*plwahPosting)
	if !ok {
		return nil, core.ErrIncompatible
	}
	return intersectSpanReaders(p.spans(), q.spans()), nil
}

func (p *plwahPosting) UnionWith(other core.Posting) ([]uint32, error) {
	q, ok := other.(*plwahPosting)
	if !ok {
		return nil, core.ErrIncompatible
	}
	return unionSpanReaders(p.spans(), q.spans()), nil
}

type plwahReader struct {
	words      []uint32
	i          int
	pendingLit uint64 // mixed literal owed after a fill span (+1 flag)
	hasPending bool
}

func (r *plwahReader) next() (span, bool) {
	if r.hasPending {
		r.hasPending = false
		return span{n: wahWidth, word: r.pendingLit, kind: literalSpan}, true
	}
	if r.i >= len(r.words) {
		return span{}, false
	}
	w := r.words[r.i]
	r.i++
	if w&plwFillFlag == 0 {
		return span{n: wahWidth, word: uint64(w), kind: literalSpan}, true
	}
	count := uint64(w & plwCountMask)
	kind := zeroFill
	pattern := uint64(0)
	if w&plwFillBit != 0 {
		kind = oneFill
		pattern = uint64(wahGroupMask)
	}
	if odd := w >> plwOddShift & plwOddMask; odd != 0 {
		r.pendingLit = pattern ^ (1 << (odd - 1))
		r.hasPending = true
	}
	return span{n: count * wahWidth, kind: kind}, true
}
