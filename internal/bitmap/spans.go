// Package bitmap implements the nine bitmap compression methods compared
// in the paper (§2): Bitset, WAH, EWAH, CONCISE, PLWAH, VALWAH, SBH, BBC,
// and Roaring.
//
// All RLE-style codecs (everything except Bitset and Roaring) share a
// common execution engine: each codec exposes its compressed form as a
// stream of spans — zero fills, one fills, and literal words of the
// codec's native group width — and generic merge loops implement
// decompression, intersection, and union directly on those streams
// without materializing the uncompressed bitmap, exactly as the paper
// describes for WAH's active-word algorithm (§2.1). Working in bit space
// (rather than fixed word space) also handles VALWAH's variable segment
// lengths and the byte-aligned codecs uniformly.
package bitmap

import "repro/internal/kernels"

type spanKind uint8

const (
	zeroFill spanKind = iota
	oneFill
	literalSpan
)

// span is a contiguous range of bitmap bits. Fill spans may cover
// arbitrarily many bits; literal spans cover at most 64 bits carried in
// word (bit i of word = bitmap bit start+i).
type span struct {
	n    uint64 // length in bits
	word uint64 // literal payload (literalSpan only)
	kind spanKind
}

// spanReader streams the spans of a compressed bitmap from bit 0 upward,
// contiguously.
type spanReader interface {
	next() (span, bool)
}

// spanCursor tracks a position inside the current span of a reader.
type spanCursor struct {
	r   spanReader
	cur span
	off uint64 // bits consumed within cur
	pos uint64 // absolute bit position of cur start + off
	ok  bool
}

func newSpanCursor(r spanReader) *spanCursor {
	c := &spanCursor{r: r}
	c.cur, c.ok = r.next()
	return c
}

func (c *spanCursor) remaining() uint64 { return c.cur.n - c.off }

// bits extracts the next n bits (n <= 64, n <= remaining) without
// consuming them.
func (c *spanCursor) bits(n uint64) uint64 {
	switch c.cur.kind {
	case zeroFill:
		return 0
	case oneFill:
		if n == 64 {
			return ^uint64(0)
		}
		return (uint64(1) << n) - 1
	default:
		w := c.cur.word >> c.off
		if n < 64 {
			w &= (uint64(1) << n) - 1
		}
		return w
	}
}

func (c *spanCursor) advance(n uint64) {
	c.off += n
	c.pos += n
	for c.ok && c.off >= c.cur.n {
		c.off -= c.cur.n
		c.cur, c.ok = c.r.next()
	}
}

// appendRun appends pos, pos+1, ..., pos+n-1 to out.
func appendRun(out []uint32, pos, n uint64) []uint32 {
	for i := uint64(0); i < n; i++ {
		out = append(out, uint32(pos+i))
	}
	return out
}

// appendWordBits appends the positions of set bits of w, offset by base.
func appendWordBits(out []uint32, base uint64, w uint64) []uint32 {
	return kernels.ExtractWord(out, w, uint32(base))
}

// decompressSpans extracts all set-bit positions from a span stream.
// sizeHint preallocates the output.
func decompressSpans(r spanReader, sizeHint int) []uint32 {
	return decompressSpansAppend(r, make([]uint32, 0, sizeHint))
}

// decompressSpansAppend appends all set-bit positions of a span stream
// to dst — the core.DecompressAppender body shared by every RLE-style
// codec in this package.
func decompressSpansAppend(r spanReader, dst []uint32) []uint32 {
	pos := uint64(0)
	for {
		s, ok := r.next()
		if !ok {
			return dst
		}
		switch s.kind {
		case oneFill:
			dst = appendRun(dst, pos, s.n)
		case literalSpan:
			dst = appendWordBits(dst, pos, s.word)
		}
		pos += s.n
	}
}

// intersectSpanReaders computes AND over two span streams, emitting the
// result as an uncompressed sorted list (§B.1). Fill runs are skipped in
// O(1) per span; literal overlaps are combined 64 bits at a time.
func intersectSpanReaders(a, b spanReader) []uint32 {
	var out []uint32
	ca, cb := newSpanCursor(a), newSpanCursor(b)
	for ca.ok && cb.ok {
		if ca.cur.kind == zeroFill || cb.cur.kind == zeroFill {
			// Nothing can match inside a zero fill: skip its full extent
			// on both sides (the longest one if both are zero fills).
			var skip uint64
			if ca.cur.kind == zeroFill {
				skip = ca.remaining()
			}
			if cb.cur.kind == zeroFill && cb.remaining() > skip {
				skip = cb.remaining()
			}
			ca.advance(skip)
			cb.advance(skip)
			continue
		}
		if ca.cur.kind == oneFill && cb.cur.kind == oneFill {
			run := min(ca.remaining(), cb.remaining())
			out = appendRun(out, ca.pos, run)
			ca.advance(run)
			cb.advance(run)
			continue
		}
		// At least one literal: combine up to 64 bits.
		n := min(min(ca.remaining(), cb.remaining()), 64)
		w := ca.bits(n) & cb.bits(n)
		if w != 0 {
			out = appendWordBits(out, ca.pos, w)
		}
		ca.advance(n)
		cb.advance(n)
	}
	return out
}

// unionSpanReaders computes OR over two span streams as an uncompressed
// sorted list. When one stream ends the other is drained.
func unionSpanReaders(a, b spanReader) []uint32 {
	var out []uint32
	ca, cb := newSpanCursor(a), newSpanCursor(b)
	for ca.ok && cb.ok {
		if ca.cur.kind == zeroFill && cb.cur.kind == zeroFill {
			skip := min(ca.remaining(), cb.remaining())
			ca.advance(skip)
			cb.advance(skip)
			continue
		}
		if ca.cur.kind == oneFill || cb.cur.kind == oneFill {
			// Everything inside a one fill is set regardless of the other
			// side: emit its full extent (the longest if both are fills).
			var run uint64
			if ca.cur.kind == oneFill {
				run = ca.remaining()
			}
			if cb.cur.kind == oneFill && cb.remaining() > run {
				run = cb.remaining()
			}
			out = appendRun(out, ca.pos, run)
			ca.advance(run)
			cb.advance(run)
			continue
		}
		n := min(min(ca.remaining(), cb.remaining()), 64)
		w := ca.bits(n) | cb.bits(n)
		if w != 0 {
			out = appendWordBits(out, ca.pos, w)
		}
		ca.advance(n)
		cb.advance(n)
	}
	out = drainCursor(out, ca)
	out = drainCursor(out, cb)
	return out
}

func drainCursor(out []uint32, c *spanCursor) []uint32 {
	for c.ok {
		rem := c.remaining()
		switch c.cur.kind {
		case oneFill:
			out = appendRun(out, c.pos, rem)
		case literalSpan:
			out = appendWordBits(out, c.pos, c.bits(rem))
		}
		c.advance(rem)
	}
	return out
}

// forEachGroup partitions the bitmap defined by sorted values into
// width-w groups and invokes emit for each: runs of empty groups are
// aggregated as emit(0, count); populated groups arrive as
// emit(word, 1) with bit i of word = bitmap bit group*w+i.
func forEachGroup(values []uint32, w uint32, emit func(word uint64, count uint64)) {
	i := 0
	g := uint64(0)
	ww := uint64(w)
	for i < len(values) {
		vg := uint64(values[i]) / ww
		if vg > g {
			emit(0, vg-g)
			g = vg
		}
		var word uint64
		base := g * ww
		for i < len(values) && uint64(values[i]) < base+ww {
			word |= 1 << (uint64(values[i]) - base)
			i++
		}
		emit(word, 1)
		g++
	}
}

// groupMask returns the all-ones pattern for a w-bit group.
func groupMask(w uint32) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << w) - 1
}
