package bitio

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	var w Writer
	fields := []struct {
		v uint64
		n uint
	}{
		{1, 1}, {0, 1}, {5, 3}, {255, 8}, {1023, 10}, {0xdeadbeef, 32},
		{0xffffffffffffffff, 64}, {0, 64}, {7, 64}, {1, 7}, {0x155, 9},
	}
	for _, f := range fields {
		w.Write(f.v, f.n)
	}
	r := Reader{Words: w.Words}
	for i, f := range fields {
		want := f.v
		if f.n < 64 {
			want &= (uint64(1) << f.n) - 1
		}
		if got := r.Read(f.n); got != want {
			t.Fatalf("field %d: got %x want %x", i, got, want)
		}
	}
}

func TestWriteZeroBits(t *testing.T) {
	var w Writer
	w.Write(99, 0)
	if w.NBits != 0 {
		t.Fatal("0-bit write should be a no-op")
	}
	r := Reader{Words: []uint64{0xff}}
	if r.Read(0) != 0 || r.Pos != 0 {
		t.Fatal("0-bit read should be a no-op")
	}
}

func TestBools(t *testing.T) {
	var w Writer
	pattern := []bool{true, false, true, true, false, false, true}
	for _, b := range pattern {
		w.WriteBool(b)
	}
	r := Reader{Words: w.Words}
	for i, want := range pattern {
		if got := r.ReadBool(); got != want {
			t.Fatalf("bit %d: got %v want %v", i, got, want)
		}
	}
}

func TestReadAt(t *testing.T) {
	var w Writer
	w.Write(0xabc, 12)
	w.Write(0x5, 3)
	w.Write(0x1ffff, 17)
	r := Reader{Words: w.Words}
	if got := r.ReadAt(12, 3); got != 0x5 {
		t.Fatalf("ReadAt(12,3) = %x", got)
	}
	if r.Pos != 0 {
		t.Fatal("ReadAt must not move Pos")
	}
	if got := r.ReadAt(15, 17); got != 0x1ffff {
		t.Fatalf("ReadAt(15,17) = %x", got)
	}
}

func TestSizeBytes(t *testing.T) {
	var w Writer
	if w.SizeBytes() != 0 {
		t.Fatal("empty writer size")
	}
	w.Write(1, 1)
	if w.SizeBytes() != 1 {
		t.Fatalf("1 bit = %d bytes, want 1", w.SizeBytes())
	}
	w.Write(0, 8)
	if w.SizeBytes() != 2 {
		t.Fatalf("9 bits = %d bytes, want 2", w.SizeBytes())
	}
}

// TestQuickRoundTrip: arbitrary (value, width) sequences survive.
func TestQuickRoundTrip(t *testing.T) {
	prop := func(seed int64, count uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(count)%200 + 1
		vs := make([]uint64, n)
		ws := make([]uint, n)
		var w Writer
		for i := 0; i < n; i++ {
			ws[i] = uint(rng.Intn(64) + 1)
			vs[i] = rng.Uint64() & ((uint64(1) << ws[i]) - 1)
			if ws[i] == 64 {
				vs[i] = rng.Uint64()
			}
			w.Write(vs[i], ws[i])
		}
		r := Reader{Words: w.Words}
		for i := 0; i < n; i++ {
			if r.Read(ws[i]) != vs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
