// Package bitio provides little-endian bit-packed readers and writers
// used by the bit-granular codecs (VALWAH segments, Elias-Fano arrays,
// PforDelta slots).
package bitio

// Writer appends bit fields to a growing []uint64 buffer. Bits are
// stored LSB-first within each word.
type Writer struct {
	Words []uint64
	NBits uint64
}

// Write appends the low n bits of v (n <= 64).
func (w *Writer) Write(v uint64, n uint) {
	if n == 0 {
		return
	}
	if n < 64 {
		v &= (uint64(1) << n) - 1
	}
	off := uint(w.NBits & 63)
	idx := int(w.NBits >> 6)
	for idx+2 > len(w.Words) {
		w.Words = append(w.Words, 0)
	}
	w.Words[idx] |= v << off
	if off+n > 64 {
		w.Words[idx+1] |= v >> (64 - off)
	}
	w.NBits += uint64(n)
}

// WriteBool appends a single bit.
func (w *Writer) WriteBool(b bool) {
	if b {
		w.Write(1, 1)
	} else {
		w.Write(0, 1)
	}
}

// SizeBytes reports the packed size rounded up to whole bytes.
func (w *Writer) SizeBytes() int { return int((w.NBits + 7) / 8) }

// Reader extracts bit fields from a []uint64 buffer written by Writer.
type Reader struct {
	Words []uint64
	Pos   uint64
}

// Read extracts the next n bits (n <= 64).
func (r *Reader) Read(n uint) uint64 {
	if n == 0 {
		return 0
	}
	off := uint(r.Pos & 63)
	idx := int(r.Pos >> 6)
	v := r.Words[idx] >> off
	if off+n > 64 && idx+1 < len(r.Words) {
		v |= r.Words[idx+1] << (64 - off)
	}
	if n < 64 {
		v &= (uint64(1) << n) - 1
	}
	r.Pos += uint64(n)
	return v
}

// ReadBool extracts a single bit.
func (r *Reader) ReadBool() bool { return r.Read(1) == 1 }

// ReadAt extracts n bits at an absolute bit position without moving Pos.
func (r *Reader) ReadAt(pos uint64, n uint) uint64 {
	saved := r.Pos
	r.Pos = pos
	v := r.Read(n)
	r.Pos = saved
	return v
}
