// Package iosim simulates a storage device with deterministic cost
// accounting — the controlled version of the disk experiment the paper
// defers to future work (§4.1) and faults [8] for running with an
// uncontrolled OS buffer cache. A Disk counts every read and byte
// fetched and converts them to a simulated cost; nothing sleeps, so
// results are exact and reproducible.
//
// Lists store their block payloads on the Disk via intlist's Fetcher
// hook: SvS intersection fetches only probed blocks. Bitmap postings
// (and any other codec without sub-structure access) must fetch their
// entire payload before operating — StoredWhole models that.
package iosim

import (
	"encoding"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/intlist"
)

// Disk is a simulated block device with per-read latency and throughput
// cost accounting. The zero value is unusable; use NewDisk.
type Disk struct {
	mu        sync.Mutex
	seekUS    float64 // fixed cost per read request
	usPerKB   float64 // transfer cost
	reads     int
	bytesRead int64
	store     [][]byte
}

// NewDisk returns a disk with the given per-read latency (microseconds)
// and per-KiB transfer cost. NVMe-flash-like defaults: NewDisk(80, 0.25);
// spinning-disk-like: NewDisk(5000, 10).
func NewDisk(seekUS, usPerKB float64) *Disk {
	return &Disk{seekUS: seekUS, usPerKB: usPerKB}
}

// Stats reports the accumulated read count, bytes, and simulated cost
// in microseconds.
func (d *Disk) Stats() (reads int, bytes int64, costUS float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.reads, d.bytesRead, float64(d.reads)*d.seekUS +
		float64(d.bytesRead)/1024*d.usPerKB
}

// Reset zeroes the counters (stored payloads remain).
func (d *Disk) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.reads, d.bytesRead = 0, 0
}

// account records one read of n bytes.
func (d *Disk) account(n int) {
	d.mu.Lock()
	d.reads++
	d.bytesRead += int64(n)
	d.mu.Unlock()
}

// put stores a payload and returns its handle.
func (d *Disk) put(data []byte) int {
	cp := make([]byte, len(data))
	copy(cp, data)
	d.mu.Lock()
	defer d.mu.Unlock()
	d.store = append(d.store, cp)
	return len(d.store) - 1
}

// fetcher reads ranges of one stored payload with accounting.
type fetcher struct {
	d      *Disk
	handle int
}

// Fetch implements intlist.Fetcher.
func (f fetcher) Fetch(offset, length int) []byte {
	f.d.account(length)
	return f.d.store[f.handle][offset : offset+length]
}

// StoreList compresses values with the given block-framed codec and
// places the payload on the disk; operations fetch only the blocks they
// touch (skip pointers stay in memory).
func StoreList(d *Disk, b intlist.Blocked, values []uint32) (core.Posting, error) {
	return b.CompressStored(values, func(payload []byte) intlist.Fetcher {
		return fetcher{d: d, handle: d.put(payload)}
	})
}

// StoredWhole wraps any posting whose compressed form lives on disk in
// full: RLE bitmaps have no random access, so every operation first
// fetches the entire payload (its serialized size). The wrapped posting
// itself stays resident only as the decode target.
type StoredWhole struct {
	d     *Disk
	inner core.Posting
	size  int
}

// StoreWhole serializes p's footprint accounting onto the disk.
func StoreWhole(d *Disk, p core.Posting) (*StoredWhole, error) {
	m, ok := p.(encoding.BinaryMarshaler)
	if !ok {
		return nil, fmt.Errorf("iosim: posting %T is not serializable", p)
	}
	blob, err := m.MarshalBinary()
	if err != nil {
		return nil, err
	}
	d.put(blob) // occupy space; fetches are modeled as full-size reads
	return &StoredWhole{d: d, inner: p, size: len(blob)}, nil
}

// Len implements core.Posting.
func (s *StoredWhole) Len() int { return s.inner.Len() }

// SizeBytes implements core.Posting.
func (s *StoredWhole) SizeBytes() int { return s.size }

// Decompress fetches the whole payload, then decodes.
func (s *StoredWhole) Decompress() []uint32 {
	s.d.account(s.size)
	return s.inner.Decompress()
}

// DecompressAppend fetches the whole payload, then decodes into dst.
func (s *StoredWhole) DecompressAppend(dst []uint32) []uint32 {
	s.d.account(s.size)
	return core.DecompressAppend(s.inner, dst)
}

// IntersectWith fetches both whole payloads, then runs the native AND.
func (s *StoredWhole) IntersectWith(other core.Posting) ([]uint32, error) {
	o, ok := other.(*StoredWhole)
	if !ok {
		return nil, core.ErrIncompatible
	}
	inner, ok := s.inner.(core.Intersecter)
	if !ok {
		return nil, core.ErrIncompatible
	}
	s.d.account(s.size)
	o.d.account(o.size)
	return inner.IntersectWith(o.inner)
}

// UnionWith fetches both whole payloads, then runs the native OR.
func (s *StoredWhole) UnionWith(other core.Posting) ([]uint32, error) {
	o, ok := other.(*StoredWhole)
	if !ok {
		return nil, core.ErrIncompatible
	}
	inner, ok := s.inner.(core.Unioner)
	if !ok {
		return nil, core.ErrIncompatible
	}
	s.d.account(s.size)
	o.d.account(o.size)
	return inner.UnionWith(o.inner)
}
