package iosim

import (
	"testing"

	"repro/internal/bitmap"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/intlist"
	"repro/internal/ops"
)

func TestStoredListRoundTrip(t *testing.T) {
	d := NewDisk(80, 0.25)
	vals := gen.Uniform(5000, 1<<20, 1)
	p, err := StoreList(d, intlist.Blocked{BC: intlist.VBBlock()}, vals)
	if err != nil {
		t.Fatal(err)
	}
	got := p.Decompress()
	if len(got) != len(vals) {
		t.Fatalf("decompress lost values: %d != %d", len(got), len(vals))
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("value %d mismatch", i)
		}
	}
	reads, bytes, cost := d.Stats()
	if reads == 0 || bytes == 0 || cost <= 0 {
		t.Fatalf("full decompress should hit the disk: %d reads %d bytes %.1f us",
			reads, bytes, cost)
	}
}

// TestSkipPointersSaveIO is the point of the whole simulation: a skewed
// SvS intersection over stored lists fetches far fewer bytes than the
// full payload, while the no-skip configuration reads everything up to
// the last probe.
func TestSkipPointersSaveIO(t *testing.T) {
	short := gen.Uniform(20, 1<<22, 2)
	long := gen.Uniform(200000, 1<<22, 3)

	d1 := NewDisk(80, 0.25)
	ps, err := StoreList(d1, intlist.Blocked{BC: intlist.VBBlock()}, short)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := StoreList(d1, intlist.Blocked{BC: intlist.VBBlock()}, long)
	if err != nil {
		t.Fatal(err)
	}
	payload := pl.SizeBytes()
	d1.Reset()
	want := ops.IntersectSorted(short, long)
	got, err := ops.Intersect([]core.Posting{ps, pl})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("intersection wrong: %d != %d", len(got), len(want))
	}
	_, bytesSkip, _ := d1.Stats()
	if bytesSkip >= int64(payload)/2 {
		t.Errorf("skip probes fetched %d of %d payload bytes; expected a small fraction",
			bytesSkip, payload)
	}

	// Without skips, the sequential walk reads essentially everything.
	d2 := NewDisk(80, 0.25)
	ps2, _ := StoreList(d2, intlist.Blocked{BC: intlist.VBBlock(), NoSkips: true}, short)
	pl2, _ := StoreList(d2, intlist.Blocked{BC: intlist.VBBlock(), NoSkips: true}, long)
	d2.Reset()
	if _, err := ops.Intersect([]core.Posting{ps2, pl2}); err != nil {
		t.Fatal(err)
	}
	_, bytesNoSkip, _ := d2.Stats()
	if bytesNoSkip <= 2*bytesSkip {
		t.Errorf("no-skip I/O (%d B) should far exceed skip I/O (%d B)",
			bytesNoSkip, bytesSkip)
	}
}

// TestStoredWholeBitmapIO: bitmap AND must fetch both full payloads.
func TestStoredWholeBitmapIO(t *testing.T) {
	d := NewDisk(80, 0.25)
	a := gen.Uniform(2000, 1<<18, 4)
	b := gen.Uniform(30000, 1<<18, 5)
	pa, err := bitmap.NewWAH().Compress(a)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := bitmap.NewWAH().Compress(b)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := StoreWhole(d, pa)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := StoreWhole(d, pb)
	if err != nil {
		t.Fatal(err)
	}
	d.Reset()
	got, err := ops.Intersect([]core.Posting{sa, sb})
	if err != nil {
		t.Fatal(err)
	}
	want := ops.IntersectSorted(a, b)
	if len(got) != len(want) {
		t.Fatalf("intersection wrong: %d != %d", len(got), len(want))
	}
	_, bytes, _ := d.Stats()
	if bytes != int64(sa.SizeBytes()+sb.SizeBytes()) {
		t.Errorf("bitmap AND fetched %d bytes, want the full %d",
			bytes, sa.SizeBytes()+sb.SizeBytes())
	}
	// Union accounting too.
	d.Reset()
	if _, err := ops.Union([]core.Posting{sa, sb}); err != nil {
		t.Fatal(err)
	}
	if _, bytes, _ := d.Stats(); bytes == 0 {
		t.Error("union should hit the disk")
	}
}

func TestDiskCostModel(t *testing.T) {
	d := NewDisk(100, 10)
	d.account(1024)
	d.account(2048)
	reads, bytes, cost := d.Stats()
	if reads != 2 || bytes != 3072 {
		t.Fatalf("stats = %d reads %d bytes", reads, bytes)
	}
	want := 2*100.0 + 3.0*10
	if cost != want {
		t.Fatalf("cost = %.2f, want %.2f", cost, want)
	}
	d.Reset()
	if r, b, c := d.Stats(); r != 0 || b != 0 || c != 0 {
		t.Fatal("Reset did not clear counters")
	}
}

func TestStoreWholeRejectsUnserializable(t *testing.T) {
	d := NewDisk(1, 1)
	if _, err := StoreWhole(d, fakePosting{}); err == nil {
		t.Fatal("expected error for unserializable posting")
	}
}

type fakePosting struct{}

func (fakePosting) Len() int             { return 0 }
func (fakePosting) SizeBytes() int       { return 0 }
func (fakePosting) Decompress() []uint32 { return nil }
