package shard

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// castagnoli is the CRC32-C table every checksum in this module uses
// (the BVIX formats use the same polynomial).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// MapVersion is the shard-map manifest format version this package
// writes and reads.
const MapVersion = 1

// Entry describes one shard file in a Map: its name (relative to the
// manifest), its document/term counts, and the size and CRC32-C of its
// exact bytes, so a router or operator can verify a shard file before
// serving it.
type Entry struct {
	File  string `json:"file"`
	Docs  int    `json:"docs"`
	Terms int    `json:"terms"`
	Bytes int64  `json:"bytes"`
	CRC   uint32 `json:"crc32c"`
}

// Map is the shard-map manifest `bvindex -partition N` writes next to
// the shard files: the partition function, total document count, and a
// verifiable entry per shard. The manifest itself is checksummed
// (CRC32-C over its canonical JSON with Checksum zeroed), so a torn or
// hand-edited map is detected at load, before any shard is opened.
type Map struct {
	Version   int     `json:"version"`
	Partition string  `json:"partition"` // "mod": global g -> shard g % Shards, local g / Shards
	Shards    int     `json:"shards"`
	Docs      int     `json:"docs"`
	Entries   []Entry `json:"entries"`
	Checksum  uint32  `json:"checksum"`
}

// checksum computes the manifest self-checksum: CRC32-C over the
// canonical JSON encoding with the Checksum field zeroed.
func (m *Map) checksum() (uint32, error) {
	c := *m
	c.Checksum = 0
	c.Entries = append([]Entry(nil), m.Entries...)
	blob, err := json.Marshal(&c)
	if err != nil {
		return 0, err
	}
	return crc32.Checksum(blob, castagnoli), nil
}

// validate applies the structural invariants shared by writers and
// loaders; it does not touch the file system.
func (m *Map) validate() error {
	switch {
	case m.Version != MapVersion:
		return fmt.Errorf("shard: map version %d, want %d", m.Version, MapVersion)
	case m.Partition != "mod":
		return fmt.Errorf("shard: unknown partition scheme %q (want \"mod\")", m.Partition)
	case m.Shards < 1 || m.Shards > MaxShards:
		return fmt.Errorf("shard: map declares %d shards, want 1..%d", m.Shards, MaxShards)
	case len(m.Entries) != m.Shards:
		return fmt.Errorf("shard: map declares %d shards but lists %d entries", m.Shards, len(m.Entries))
	}
	total := 0
	seen := make(map[string]bool, len(m.Entries))
	for i, e := range m.Entries {
		if e.File == "" || e.File != filepath.Base(e.File) {
			return fmt.Errorf("shard: entry %d: file %q must be a bare name next to the manifest", i, e.File)
		}
		if seen[e.File] {
			return fmt.Errorf("shard: entry %d: duplicate shard file %q", i, e.File)
		}
		seen[e.File] = true
		if e.Docs < 1 {
			return fmt.Errorf("shard: entry %d (%s): empty shard (%d docs)", i, e.File, e.Docs)
		}
		total += e.Docs
	}
	if total != m.Docs {
		return fmt.Errorf("shard: map declares %d docs but entries sum to %d", m.Docs, total)
	}
	return nil
}

// WriteMap seals and atomically publishes the manifest at path
// (temp + rename, the same publish discipline as index.WriteFile —
// a crash leaves the old manifest or the new one, never a torn mix).
// The Checksum field is computed here; any value already set is
// overwritten.
func WriteMap(path string, m *Map) error {
	if err := m.validate(); err != nil {
		return err
	}
	sum, err := m.checksum()
	if err != nil {
		return err
	}
	m.Checksum = sum
	blob, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := fmt.Sprintf("%s.tmp.%d", path, os.Getpid())
	if err := os.WriteFile(tmp, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	f, err := os.Open(tmp)
	if err == nil {
		if serr := f.Sync(); serr == nil {
			err = f.Close()
		} else {
			f.Close()
			err = serr
		}
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("shard: syncing manifest: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// LoadMap reads and verifies a manifest: JSON shape, self-checksum,
// and structural invariants. It does not open or verify the shard
// files themselves; VerifyFiles does that.
func LoadMap(path string) (*Map, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Map
	if err := json.Unmarshal(blob, &m); err != nil {
		return nil, fmt.Errorf("shard: %s: not a shard map: %w", path, err)
	}
	want, err := m.checksum()
	if err != nil {
		return nil, err
	}
	if m.Checksum != want {
		return nil, fmt.Errorf("shard: %s: manifest checksum mismatch (stored %08x, computed %08x)", path, m.Checksum, want)
	}
	if err := m.validate(); err != nil {
		return nil, fmt.Errorf("shard: %s: %w", path, err)
	}
	return &m, nil
}

// EntryFor builds the manifest entry for a just-written shard file:
// its bare name plus measured size and CRC32-C. docs and terms come
// from the builder that produced the shard.
func EntryFor(path string, docs, terms int) (Entry, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return Entry{}, err
	}
	return Entry{
		File:  filepath.Base(path),
		Docs:  docs,
		Terms: terms,
		Bytes: int64(len(blob)),
		CRC:   crc32.Checksum(blob, castagnoli),
	}, nil
}

// VerifyFiles checks every shard file listed in the map against its
// recorded size and CRC32-C. dir is the manifest's directory. The
// first damaged or missing shard is reported by name.
func (m *Map) VerifyFiles(dir string) error {
	for i, e := range m.Entries {
		path := filepath.Join(dir, e.File)
		blob, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("shard: entry %d: %w", i, err)
		}
		if int64(len(blob)) != e.Bytes {
			return fmt.Errorf("shard: %s: %d bytes on disk, manifest says %d", path, len(blob), e.Bytes)
		}
		if got := crc32.Checksum(blob, castagnoli); got != e.CRC {
			return fmt.Errorf("shard: %s: crc32c %08x, manifest says %08x", path, got, e.CRC)
		}
	}
	return nil
}
