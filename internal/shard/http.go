package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/index"
)

// ServerConfig tunes the router's HTTP front. Zero values pick the
// same serving-safe defaults the bvserve stack uses.
type ServerConfig struct {
	ReadTimeout   time.Duration // default 5s
	WriteTimeout  time.Duration // default 10s
	IdleTimeout   time.Duration // default 2m
	DrainDeadline time.Duration // default 10s
	MaxQueryTerms int           // default 16
	MaxK          int           // default 100000 (merge input is N*k; the router can afford deep k)
	Logger        *log.Logger   // default log.Default()
}

func (c ServerConfig) withDefaults() ServerConfig {
	def := func(d *time.Duration, v time.Duration) {
		if *d <= 0 {
			*d = v
		}
	}
	def(&c.ReadTimeout, 5*time.Second)
	def(&c.WriteTimeout, 10*time.Second)
	def(&c.IdleTimeout, 2*time.Minute)
	def(&c.DrainDeadline, 10*time.Second)
	if c.MaxQueryTerms <= 0 {
		c.MaxQueryTerms = 16
	}
	if c.MaxK <= 0 {
		c.MaxK = 100000
	}
	if c.Logger == nil {
		c.Logger = log.Default()
	}
	return c
}

// Server is the HTTP front cmd/bvrouter serves: /search scatter-gathers
// through the Router, /stats exposes the per-shard hedge/latency/
// degraded counters, /healthz live-probes the fleet and reports partial
// coverage, /readyz gates load-balancer traffic.
type Server struct {
	cfg     ServerConfig
	router  *Router
	log     *log.Logger
	ready   atomic.Bool
	queries atomic.Int64
	partial atomic.Int64
}

// NewServer fronts router with the HTTP API.
func NewServer(router *Router, cfg ServerConfig) *Server {
	cfg = cfg.withDefaults()
	return &Server{cfg: cfg, router: router, log: cfg.Logger}
}

// Router returns the underlying scatter-gather router (tests and
// embedders).
func (s *Server) Router() *Router { return s.router }

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// Handler builds the route set.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/search", s.handleSearch)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	return mux
}

// routerResponse is the /search JSON shape. It is a superset of
// bvserve's searchResponse (same docs/ranked/matches keys, so every
// existing client parses it) plus the partial-coverage fields.
type routerResponse struct {
	Query          []string       `json:"query"`
	Mode           string         `json:"mode"`
	Docs           []uint32       `json:"docs,omitempty"`
	Ranked         []index.Result `json:"ranked,omitempty"`
	Matches        int            `json:"matches"`
	Partial        bool           `json:"partial"`
	DegradedShards []int          `json:"degradedShards,omitempty"`
	Shards         int            `json:"shards"`
}

// handleSearch validates like bvserve, scatters, merges, and always
// answers 200 when at least one shard responded — a dead shard is a
// documented partial answer ("shard 3 of 8 degraded, results partial"),
// not a failed query.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	terms := index.Tokenize(r.URL.Query().Get("q"))
	if len(terms) == 0 {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "missing or empty q parameter"})
		return
	}
	if len(terms) > s.cfg.MaxQueryTerms {
		writeJSON(w, http.StatusBadRequest, map[string]string{
			"error": fmt.Sprintf("query has %d terms, limit is %d", len(terms), s.cfg.MaxQueryTerms),
		})
		return
	}
	mode := r.URL.Query().Get("mode")
	if mode == "" {
		mode = "and"
	}
	req := Request{Mode: mode, Terms: terms}
	switch mode {
	case "and", "or":
	case "topk":
		req.K = 10
		if ks := r.URL.Query().Get("k"); ks != "" {
			k, err := strconv.Atoi(ks)
			if err != nil || k < 1 {
				writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad k parameter"})
				return
			}
			req.K = k
		}
		if req.K > s.cfg.MaxK {
			writeJSON(w, http.StatusBadRequest, map[string]string{
				"error": fmt.Sprintf("k=%d exceeds limit %d", req.K, s.cfg.MaxK),
			})
			return
		}
		req.Algo = r.URL.Query().Get("algo")
		switch req.Algo {
		case "", "auto", "exhaustive", "maxscore", "bmw":
		default:
			writeJSON(w, http.StatusBadRequest, map[string]string{
				"error": "algo must be auto | exhaustive | maxscore | bmw",
			})
			return
		}
	default:
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "mode must be and | or | topk"})
		return
	}
	s.queries.Add(1)
	m, err := s.router.Search(r.Context(), req)
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
		return
	}
	if m.Partial {
		s.partial.Add(1)
		s.log.Printf("shard: query %v: %d of %d shards degraded %v, results partial",
			terms, len(m.Degraded), s.router.Shards(), m.Degraded)
	}
	resp := routerResponse{
		Query:          terms,
		Mode:           mode,
		Docs:           m.Docs,
		Ranked:         m.Ranked,
		Partial:        m.Partial,
		DegradedShards: m.Degraded,
		Shards:         s.router.Shards(),
	}
	if mode == "topk" {
		resp.Matches = len(m.Ranked)
	} else {
		resp.Matches = len(m.Docs)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleStats reports router-level gauges plus the per-shard counter
// rows (latency percentiles, hedges fired/won, degraded queries,
// per-replica in-flight).
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"shards":         s.router.Shards(),
		"queries":        s.queries.Load(),
		"partialAnswers": s.partial.Load(),
		"perShard":       s.router.Stats(),
	})
}

// handleHealthz live-probes every replica. Full coverage is "ok";
// shards with no healthy replica make the fleet "partial" (still 200 —
// the router is alive and serving what it can); zero healthy shards is
// "down" with 503.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
	defer cancel()
	down := s.router.Health(ctx)
	switch {
	case len(down) == 0:
		writeJSON(w, http.StatusOK, map[string]interface{}{"status": "ok", "shards": s.router.Shards()})
	case len(down) < s.router.Shards():
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"status":     "partial",
			"shards":     s.router.Shards(),
			"shardsDown": down,
		})
	default:
		writeJSON(w, http.StatusServiceUnavailable, map[string]interface{}{
			"status":     "down",
			"shards":     s.router.Shards(),
			"shardsDown": down,
		})
	}
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "starting"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// Run listens on addr and serves until ctx is cancelled, then drains.
func (s *Server) Run(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("shard: listen %s: %w", addr, err)
	}
	return s.Serve(ctx, ln)
}

// Serve serves on ln until ctx is cancelled, then drains in-flight
// requests for up to DrainDeadline.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{
		Handler:      s.Handler(),
		ReadTimeout:  s.cfg.ReadTimeout,
		WriteTimeout: s.cfg.WriteTimeout,
		IdleTimeout:  s.cfg.IdleTimeout,
		ErrorLog:     s.log,
	}
	s.ready.Store(true)
	s.log.Printf("shard: router listening on %s (%d shards)", ln.Addr(), s.router.Shards())
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		s.ready.Store(false)
		return fmt.Errorf("shard: serve: %w", err)
	case <-ctx.Done():
	}
	s.ready.Store(false)
	sctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainDeadline)
	defer cancel()
	err := srv.Shutdown(sctx)
	<-errc
	if err != nil {
		return fmt.Errorf("shard: drain deadline exceeded: %w", err)
	}
	return nil
}
