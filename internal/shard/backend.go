package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/index"
)

// Request is one query as the router scatters it: boolean ("and"/"or")
// or ranked ("topk" with K and an algorithm). Terms are already
// tokenized. The same Request goes to every shard verbatim — doc
// partitioning means shards differ in data, not in query.
type Request struct {
	Mode  string
	Terms []string
	K     int
	Algo  string // topk only; "" means the server-side default
}

// Result is one shard replica's answer, in SHARD-LOCAL document ids.
// The router maps ids back to the global space with GlobalID before
// merging. Boolean answers fill Docs (sorted ascending); ranked
// answers fill Ranked (score desc, local doc asc — the strict-beat
// order every top-k algorithm in this repo emits).
type Result struct {
	Docs   []uint32
	Ranked []index.Result
}

// Backend is one replica of one shard: something that can answer a
// Request over that shard's documents. The two implementations are
// IndexBackend (in-process, used by tests, the oracle, and `bvrouter
// -local`) and HTTPBackend (a remote bvserve process, the deployment
// topology). Search must honor ctx cancellation — hedging cancels the
// losing attempt through it.
type Backend interface {
	Search(ctx context.Context, req Request) (Result, error)
	Health(ctx context.Context) error
	Name() string
}

// IndexBackend answers queries directly from an in-process index.
type IndexBackend struct {
	Idx   *index.Index
	Label string
	// Delay, when set, sleeps before answering — the straggler injection
	// knob the hedging benchmark and tests use. Sleeps burn no CPU, so
	// an injected straggler distorts latency without distorting the
	// compute the measurement is about.
	Delay time.Duration
}

func (b *IndexBackend) Name() string {
	if b.Label != "" {
		return b.Label
	}
	return "local"
}

func (b *IndexBackend) Health(ctx context.Context) error { return nil }

func (b *IndexBackend) Search(ctx context.Context, req Request) (Result, error) {
	if b.Delay > 0 {
		t := time.NewTimer(b.Delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return Result{}, ctx.Err()
		}
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	switch req.Mode {
	case "and":
		docs, err := b.Idx.Conjunctive(req.Terms...)
		return Result{Docs: docs}, err
	case "or":
		docs, err := b.Idx.Disjunctive(req.Terms...)
		return Result{Docs: docs}, err
	case "topk":
		algo := req.Algo
		if algo == "" {
			algo = "auto"
		}
		ranked, err := b.Idx.TopKWith(algo, req.K, nil, req.Terms...)
		return Result{Ranked: ranked}, err
	default:
		return Result{}, fmt.Errorf("shard: unknown mode %q", req.Mode)
	}
}

// HTTPBackend answers queries by calling a bvserve replica's /search
// endpoint. It reuses the server's JSON response shape, so any bvserve
// — local process or remote machine — can stand behind the router
// unchanged.
type HTTPBackend struct {
	// Base is the replica's root URL, e.g. "http://10.0.0.7:8080".
	Base   string
	Client *http.Client
}

func (b *HTTPBackend) Name() string { return b.Base }

func (b *HTTPBackend) client() *http.Client {
	if b.Client != nil {
		return b.Client
	}
	return http.DefaultClient
}

func (b *HTTPBackend) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.Base+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := b.client().Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("shard: %s/readyz: %s", b.Base, resp.Status)
	}
	return nil
}

// searchWire mirrors server.searchResponse — the subset the router
// consumes.
type searchWire struct {
	Docs   []uint32       `json:"docs"`
	Ranked []index.Result `json:"ranked"`
	Error  string         `json:"error"`
}

func (b *HTTPBackend) Search(ctx context.Context, req Request) (Result, error) {
	q := url.Values{}
	q.Set("q", strings.Join(req.Terms, " "))
	q.Set("mode", req.Mode)
	if req.Mode == "topk" {
		q.Set("k", strconv.Itoa(req.K))
		if req.Algo != "" {
			q.Set("algo", req.Algo)
		}
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, b.Base+"/search?"+q.Encode(), nil)
	if err != nil {
		return Result{}, err
	}
	resp, err := b.client().Do(hreq)
	if err != nil {
		return Result{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return Result{}, err
	}
	var wire searchWire
	if jerr := json.Unmarshal(body, &wire); jerr != nil {
		return Result{}, fmt.Errorf("shard: %s: bad /search response (%s): %w", b.Base, resp.Status, jerr)
	}
	if resp.StatusCode != http.StatusOK {
		msg := wire.Error
		if msg == "" {
			msg = resp.Status
		}
		return Result{}, fmt.Errorf("shard: %s: /search: %s", b.Base, msg)
	}
	return Result{Docs: wire.Docs, Ranked: wire.Ranked}, nil
}
