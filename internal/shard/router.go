package shard

import (
	"container/heap"
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hist"
	"repro/internal/index"
)

// RouterConfig tunes scatter-gather behavior. Zero values pick
// serving-safe defaults.
type RouterConfig struct {
	// Hedge enables hedged requests: after an adaptive delay (the
	// shard's observed p99 completion latency, clamped to
	// [HedgeMin, HedgeMax]), a backup attempt fires on a different
	// replica and the first success cancels the loser. Off by default;
	// only effective on shards with >1 replica.
	Hedge    bool
	HedgeMin time.Duration // lower clamp on the hedge delay (default 1ms)
	HedgeMax time.Duration // upper clamp, also the cold-start delay (default 50ms)

	// ShardTimeout bounds one shard's whole scatter leg — all attempts
	// included (default 2s). A shard that exhausts it is degraded for
	// that query, not an error for the query.
	ShardTimeout time.Duration
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.HedgeMin <= 0 {
		c.HedgeMin = time.Millisecond
	}
	if c.HedgeMax <= 0 {
		c.HedgeMax = 50 * time.Millisecond
	}
	if c.HedgeMax < c.HedgeMin {
		c.HedgeMax = c.HedgeMin
	}
	if c.ShardTimeout <= 0 {
		c.ShardTimeout = 2 * time.Second
	}
	return c
}

// replica is one Backend plus the load gauge pick-of-two reads.
type replica struct {
	backend  Backend
	inflight atomic.Int64
}

// shardState is the router's view of one shard: its replicas, the
// completion-latency histogram that drives the adaptive hedge delay,
// and the counters /stats exposes.
type shardState struct {
	id        int
	replicas  []*replica
	lat       hist.Histogram // per-query completion latency (first success)
	hedged    atomic.Int64   // backup attempts fired
	hedgeWins atomic.Int64   // queries where the backup finished first
	degraded  atomic.Int64   // queries this shard failed entirely
}

// pick selects a replica by load-based pick-of-two: two random distinct
// candidates, the one with fewer in-flight requests wins, ties go to
// the first random pick. Deliberately load-only, never latency-based: a
// slow-but-alive replica keeps receiving traffic (hedging is what
// rescues its tail), while a replica drowning in requests is avoided.
// not (when non-nil) excludes the replica already attempted.
func (s *shardState) pick(not *replica) *replica {
	cands := s.replicas
	if not != nil {
		cands = make([]*replica, 0, len(s.replicas)-1)
		for _, r := range s.replicas {
			if r != not {
				cands = append(cands, r)
			}
		}
	}
	switch len(cands) {
	case 0:
		return nil
	case 1:
		return cands[0]
	}
	a := cands[rand.Intn(len(cands))]
	b := cands[rand.Intn(len(cands))]
	for b == a {
		b = cands[rand.Intn(len(cands))]
	}
	if b.inflight.Load() < a.inflight.Load() {
		return b
	}
	return a
}

// hedgeDelay is the adaptive backup-fire delay: the shard's observed
// p99 completion latency, clamped. Cold start (no observations) waits
// the full HedgeMax so an idle router never opens with a hedging storm.
func (s *shardState) hedgeDelay(cfg RouterConfig) time.Duration {
	d := s.lat.Percentile(0.99)
	if d <= 0 {
		return cfg.HedgeMax
	}
	if d < cfg.HedgeMin {
		return cfg.HedgeMin
	}
	if d > cfg.HedgeMax {
		return cfg.HedgeMax
	}
	return d
}

// search runs one shard's scatter leg: primary attempt on the
// pick-of-two replica, hedged backup after the adaptive delay (or
// immediate failover if the primary fails fast), first success wins
// and cancels the loser through ctx.
func (s *shardState) search(ctx context.Context, req Request, cfg RouterConfig) (Result, error) {
	ctx, cancel := context.WithTimeout(ctx, cfg.ShardTimeout)
	defer cancel()
	start := time.Now()

	type attempt struct {
		res    Result
		err    error
		backup bool
	}
	// Buffered to the attempt cap so a losing goroutine can always
	// deliver and exit after the winner returns.
	ch := make(chan attempt, 2)
	launch := func(r *replica, backup bool) {
		r.inflight.Add(1)
		go func() {
			defer r.inflight.Add(-1)
			res, err := r.backend.Search(ctx, req)
			ch <- attempt{res: res, err: err, backup: backup}
		}()
	}
	primary := s.pick(nil)
	if primary == nil {
		return Result{}, fmt.Errorf("shard %d: no replicas", s.id)
	}
	launch(primary, false)

	var hedgeC <-chan time.Time
	if cfg.Hedge && len(s.replicas) > 1 {
		t := time.NewTimer(s.hedgeDelay(cfg))
		defer t.Stop()
		hedgeC = t.C
	}

	pending, launched := 1, 1
	var firstErr error
	for {
		select {
		case <-hedgeC:
			hedgeC = nil
			if backup := s.pick(primary); backup != nil {
				s.hedged.Add(1)
				launch(backup, true)
				pending++
				launched++
			}
		case a := <-ch:
			pending--
			if a.err == nil {
				cancel() // the loser, if any, is abandoned
				s.lat.Record(time.Since(start))
				if a.backup {
					s.hedgeWins.Add(1)
				}
				return a.res, nil
			}
			if firstErr == nil {
				firstErr = a.err
			}
			if pending > 0 {
				continue
			}
			// Every launched attempt failed. Fail over to an untried
			// replica if one exists (a dead primary should not cost the
			// query its hedge delay); with at most 2 attempts total the
			// failover target is simply "not the primary".
			if launched < 2 && len(s.replicas) > 1 {
				hedgeC = nil
				if next := s.pick(primary); next != nil {
					launch(next, true)
					pending++
					launched++
					continue
				}
			}
			s.degraded.Add(1)
			return Result{}, fmt.Errorf("shard %d: %w", s.id, firstErr)
		case <-ctx.Done():
			// The shard budget is gone with attempts still in flight;
			// their goroutines deliver into the buffered channel and exit
			// on their own.
			s.degraded.Add(1)
			return Result{}, fmt.Errorf("shard %d: %w", s.id, ctx.Err())
		}
	}
}

// Merged is a scatter-gather answer in global document ids. Partial
// marks that one or more shards failed: Docs/Ranked are then an exact
// answer over the shards that responded — a documented subset of the
// truth, never a wrong result.
type Merged struct {
	Docs     []uint32
	Ranked   []index.Result
	Partial  bool
	Degraded []int // ids of shards that failed this query
}

// Router fans queries out to every shard in parallel and merges the
// per-shard answers exactly. One Router is safe for concurrent use.
type Router struct {
	cfg    RouterConfig
	shards []*shardState
}

// NewRouter builds a router over replicas[shard][replica]. Every shard
// needs at least one replica.
func NewRouter(cfg RouterConfig, replicas [][]Backend) (*Router, error) {
	if len(replicas) < 1 || len(replicas) > MaxShards {
		return nil, fmt.Errorf("shard: router needs 1..%d shards, got %d", MaxShards, len(replicas))
	}
	r := &Router{cfg: cfg.withDefaults()}
	for i, reps := range replicas {
		if len(reps) == 0 {
			return nil, fmt.Errorf("shard: shard %d has no replicas", i)
		}
		st := &shardState{id: i}
		for _, b := range reps {
			st.replicas = append(st.replicas, &replica{backend: b})
		}
		r.shards = append(r.shards, st)
	}
	return r, nil
}

// Shards reports the shard count N of the partition this router serves.
func (r *Router) Shards() int { return len(r.shards) }

// Search scatters req to every shard, gathers, and merges. It fails
// only when every shard fails; any partial set of responses yields a
// Merged with Partial set and the dead shards listed.
func (r *Router) Search(ctx context.Context, req Request) (Merged, error) {
	n := len(r.shards)
	results := make([]Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i, st := range r.shards {
		wg.Add(1)
		go func(i int, st *shardState) {
			defer wg.Done()
			results[i], errs[i] = st.search(ctx, req, r.cfg)
		}(i, st)
	}
	wg.Wait()

	var m Merged
	live := make([]int, 0, n)
	for i := range errs {
		if errs[i] != nil {
			m.Partial = true
			m.Degraded = append(m.Degraded, i)
		} else {
			live = append(live, i)
		}
	}
	if len(live) == 0 {
		return Merged{}, fmt.Errorf("shard: all %d shards failed: %w", n, errs[0])
	}
	switch req.Mode {
	case "topk":
		m.Ranked = mergeRanked(results, live, n, req.K)
	default:
		m.Docs = mergeDocs(results, live, n)
	}
	return m, nil
}

// docHeap merges per-shard sorted posting lists (already mapped to
// global ids) by ascending doc. Entries index into lists.
type docHead struct {
	doc   uint32
	shard int // index into the lists slice, for advancing
}
type docHeap []docHead

func (h docHeap) Len() int            { return len(h) }
func (h docHeap) Less(i, j int) bool  { return h[i].doc < h[j].doc }
func (h docHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *docHeap) Push(x interface{}) { *h = append(*h, x.(docHead)) }
func (h *docHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// mergeDocs N-way-merges the live shards' sorted local posting lists
// into one global sorted list. Shards partition the doc space, so the
// merged list is exactly the single-index answer restricted to the
// live shards — no duplicates to resolve.
func mergeDocs(results []Result, live []int, n int) []uint32 {
	total := 0
	for _, s := range live {
		total += len(results[s].Docs)
	}
	out := make([]uint32, 0, total)
	h := make(docHeap, 0, len(live))
	pos := make([]int, len(results))
	for _, s := range live {
		if len(results[s].Docs) > 0 {
			h = append(h, docHead{doc: GlobalID(results[s].Docs[0], s, n), shard: s})
			pos[s] = 1
		}
	}
	heap.Init(&h)
	for len(h) > 0 {
		head := h[0]
		out = append(out, head.doc)
		s := head.shard
		if pos[s] < len(results[s].Docs) {
			h[0] = docHead{doc: GlobalID(results[s].Docs[pos[s]], s, n), shard: s}
			pos[s]++
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	return out
}

// rankHead is one shard's current best ranked result during the top-k
// merge, ordered strict-beat: higher score first, global doc id as the
// deterministic tiebreak — the exact order every top-k algorithm in
// this repo emits, so the merged stream is the single-index ranking.
type rankHead struct {
	res   index.Result
	shard int
}
type rankHeap []rankHead

func (h rankHeap) Len() int { return len(h) }
func (h rankHeap) Less(i, j int) bool {
	if h[i].res.Score != h[j].res.Score {
		return h[i].res.Score > h[j].res.Score
	}
	return h[i].res.Doc < h[j].res.Doc
}
func (h rankHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *rankHeap) Push(x interface{}) { *h = append(*h, x.(rankHead)) }
func (h *rankHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// mergeRanked merges the live shards' top-k lists (k pushed down, so
// each holds at most k entries) under strict-beat order and keeps the
// global best k. Each shard list arrives sorted (score desc, local doc
// asc) and GlobalID preserves per-shard doc order, so this is an exact
// N-way sorted merge: the result is bit-identical to the single-index
// top-k restricted to live shards.
func mergeRanked(results []Result, live []int, n, k int) []index.Result {
	h := make(rankHeap, 0, len(live))
	pos := make([]int, len(results))
	for _, s := range live {
		if len(results[s].Ranked) > 0 {
			r := results[s].Ranked[0]
			r.Doc = GlobalID(r.Doc, s, n)
			h = append(h, rankHead{res: r, shard: s})
			pos[s] = 1
		}
	}
	heap.Init(&h)
	out := make([]index.Result, 0, k)
	for len(h) > 0 && len(out) < k {
		head := h[0]
		out = append(out, head.res)
		s := head.shard
		if pos[s] < len(results[s].Ranked) {
			r := results[s].Ranked[pos[s]]
			r.Doc = GlobalID(r.Doc, s, n)
			pos[s]++
			h[0] = rankHead{res: r, shard: s}
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	return out
}

// ReplicaStats is one replica's load gauge, for /stats.
type ReplicaStats struct {
	Name     string `json:"name"`
	InFlight int64  `json:"inFlight"`
}

// ShardStats is one shard's /stats row: completion-latency percentiles,
// hedge counters, degraded count, and the hedge delay the next query
// would use.
type ShardStats struct {
	Shard        int            `json:"shard"`
	Replicas     []ReplicaStats `json:"replicas"`
	Latency      hist.Summary   `json:"latency"`
	Hedged       int64          `json:"hedged"`
	HedgeWins    int64          `json:"hedgeWins"`
	Degraded     int64          `json:"degraded"`
	HedgeDelayMS float64        `json:"hedgeDelayMs"`
}

// Stats snapshots every shard's counters.
func (r *Router) Stats() []ShardStats {
	out := make([]ShardStats, 0, len(r.shards))
	for _, st := range r.shards {
		ss := ShardStats{
			Shard:        st.id,
			Latency:      st.lat.Summarize(),
			Hedged:       st.hedged.Load(),
			HedgeWins:    st.hedgeWins.Load(),
			Degraded:     st.degraded.Load(),
			HedgeDelayMS: float64(st.hedgeDelay(r.cfg)) / float64(time.Millisecond),
		}
		for _, rep := range st.replicas {
			ss.Replicas = append(ss.Replicas, ReplicaStats{Name: rep.backend.Name(), InFlight: rep.inflight.Load()})
		}
		out = append(out, ss)
	}
	return out
}

// Health probes every replica of every shard in parallel and returns
// the ids of shards with no healthy replica. An empty slice means the
// full partition is answerable.
func (r *Router) Health(ctx context.Context) []int {
	downCh := make(chan int, len(r.shards))
	var wg sync.WaitGroup
	for _, st := range r.shards {
		wg.Add(1)
		go func(st *shardState) {
			defer wg.Done()
			for _, rep := range st.replicas {
				if rep.backend.Health(ctx) == nil {
					return
				}
			}
			downCh <- st.id
		}(st)
	}
	wg.Wait()
	close(downCh)
	down := []int{}
	for id := range downCh {
		down = append(down, id)
	}
	sortInts(down)
	return down
}

// sortInts is a tiny insertion sort for the short shard-id slices
// Health returns (avoids pulling in sort for one call site).
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
