package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/codecs"
	"repro/internal/index"
)

// testCorpus generates a deterministic corpus with long, short, and
// tied-score lists so booleans and rankings are all non-trivial.
func testCorpus(docs int) []string {
	out := make([]string, docs)
	for i := 0; i < docs; i++ {
		var sb strings.Builder
		sb.WriteString("common ")
		if i%2 == 0 {
			for r := 0; r <= i%4; r++ {
				sb.WriteString("even ")
			}
		}
		if i%3 == 0 {
			sb.WriteString("third ")
		}
		if i%5 == 0 {
			sb.WriteString("five five ")
		}
		if i%37 == 0 {
			sb.WriteString("rare rare rare ")
		}
		out[i] = sb.String()
	}
	return out
}

func buildIndex(t *testing.T, docs []string) *index.Index {
	t.Helper()
	codec, err := codecs.ByName("VB")
	if err != nil {
		t.Fatal(err)
	}
	b := index.NewBuilder(codec)
	for _, d := range docs {
		b.AddDocument(d)
	}
	idx, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

// newTestRouter partitions docs over n shards of in-process backends
// (replicasPerShard each, all over the same shard index).
func newTestRouter(t *testing.T, docs []string, n, replicasPerShard int, cfg RouterConfig) *Router {
	t.Helper()
	parts, err := Partition(docs, n)
	if err != nil {
		t.Fatal(err)
	}
	backends := make([][]Backend, n)
	for s, part := range parts {
		idx := buildIndex(t, part)
		for rep := 0; rep < replicasPerShard; rep++ {
			backends[s] = append(backends[s], &IndexBackend{Idx: idx, Label: fmt.Sprintf("s%d-r%d", s, rep)})
		}
	}
	r, err := NewRouter(cfg, backends)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestPartitionMath(t *testing.T) {
	n := 7
	for g := uint32(0); g < 1000; g++ {
		s := ShardOf(g, n)
		l := LocalID(g, n)
		if back := GlobalID(l, s, n); back != g {
			t.Fatalf("roundtrip %d -> (shard %d, local %d) -> %d", g, s, l, back)
		}
	}
	docs := testCorpus(100)
	parts, err := Partition(docs, 7)
	if err != nil {
		t.Fatal(err)
	}
	for s, part := range parts {
		for l, d := range part {
			if want := docs[GlobalID(uint32(l), s, 7)]; d != want {
				t.Fatalf("shard %d local %d holds wrong document", s, l)
			}
		}
	}
}

func TestPartitionRefusals(t *testing.T) {
	docs := testCorpus(5)
	if _, err := Partition(docs, 6); err == nil {
		t.Fatal("6 shards over 5 docs must refuse (empty shard)")
	}
	if _, err := Partition(docs, 0); err == nil {
		t.Fatal("0 shards must refuse")
	}
	if _, err := Partition(docs, MaxShards+1); err == nil {
		t.Fatal("over MaxShards must refuse")
	}
	if _, err := Partition(docs, 5); err != nil {
		t.Fatalf("5 shards over 5 docs is legal: %v", err)
	}
}

// TestRouterIdentity is the merge-exactness proof at unit scale: every
// mode and algorithm through the router across shard counts must equal
// the single-index reference bit for bit.
func TestRouterIdentity(t *testing.T) {
	docs := testCorpus(211) // prime, so shard sizes differ
	ref := buildIndex(t, docs)
	queries := [][]string{
		{"common"}, {"even"}, {"rare"},
		{"even", "third"}, {"common", "five", "rare"},
		{"even", "five"}, {"missing"}, {"rare", "missing"},
	}
	ctx := context.Background()
	for _, n := range []int{1, 2, 3, 4, 8} {
		r := newTestRouter(t, docs, n, 1, RouterConfig{})
		for _, q := range queries {
			for _, mode := range []string{"and", "or"} {
				var want []uint32
				var err error
				if mode == "and" {
					want, err = ref.Conjunctive(q...)
				} else {
					want, err = ref.Disjunctive(q...)
				}
				if err != nil {
					t.Fatal(err)
				}
				got, err := r.Search(ctx, Request{Mode: mode, Terms: q})
				if err != nil {
					t.Fatalf("n=%d %s %v: %v", n, mode, q, err)
				}
				if got.Partial {
					t.Fatalf("n=%d %s %v: unexpected partial", n, mode, q)
				}
				if len(got.Docs) != len(want) {
					t.Fatalf("n=%d %s %v: %d docs, want %d", n, mode, q, len(got.Docs), len(want))
				}
				for i := range want {
					if got.Docs[i] != want[i] {
						t.Fatalf("n=%d %s %v: doc[%d]=%d, want %d", n, mode, q, i, got.Docs[i], want[i])
					}
				}
			}
			for _, k := range []int{1, 5, 20, 100000} {
				want, err := ref.TopKWith("exhaustive", k, nil, q...)
				if err != nil {
					t.Fatal(err)
				}
				for _, algo := range []string{"", "exhaustive", "maxscore", "bmw"} {
					got, err := r.Search(ctx, Request{Mode: "topk", Terms: q, K: k, Algo: algo})
					if err != nil {
						t.Fatalf("n=%d topk %v k=%d algo=%q: %v", n, q, k, algo, err)
					}
					if len(got.Ranked) != len(want) {
						t.Fatalf("n=%d topk %v k=%d algo=%q: %d results, want %d", n, q, k, algo, len(got.Ranked), len(want))
					}
					for i := range want {
						if got.Ranked[i] != want[i] {
							t.Fatalf("n=%d topk %v k=%d algo=%q: rank %d = %+v, want %+v",
								n, q, k, algo, i, got.Ranked[i], want[i])
						}
					}
				}
			}
		}
	}
}

// errBackend fails every call; it stands in for a dead replica.
type errBackend struct{}

func (errBackend) Search(ctx context.Context, req Request) (Result, error) {
	return Result{}, errors.New("replica down")
}
func (errBackend) Health(ctx context.Context) error { return errors.New("replica down") }
func (errBackend) Name() string                     { return "dead" }

// TestRouterDegradedPartial proves the failure model: a dead shard
// yields a partial answer that is exactly the merge of the live
// shards — a subset of truth, never wrong rows.
func TestRouterDegradedPartial(t *testing.T) {
	docs := testCorpus(120)
	ref := buildIndex(t, docs)
	n := 3
	parts, err := Partition(docs, n)
	if err != nil {
		t.Fatal(err)
	}
	backends := make([][]Backend, n)
	for s, part := range parts {
		if s == 1 {
			backends[s] = []Backend{errBackend{}}
			continue
		}
		backends[s] = []Backend{&IndexBackend{Idx: buildIndex(t, part)}}
	}
	r, err := NewRouter(RouterConfig{ShardTimeout: time.Second}, backends)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Search(context.Background(), Request{Mode: "or", Terms: []string{"even", "third"}})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Partial || len(got.Degraded) != 1 || got.Degraded[0] != 1 {
		t.Fatalf("want partial with shard 1 degraded, got partial=%v degraded=%v", got.Partial, got.Degraded)
	}
	full, err := ref.Disjunctive("even", "third")
	if err != nil {
		t.Fatal(err)
	}
	inFull := make(map[uint32]bool, len(full))
	for _, d := range full {
		inFull[d] = true
	}
	for i, d := range got.Docs {
		if !inFull[d] {
			t.Fatalf("partial answer contains doc %d not in the truth", d)
		}
		if ShardOf(d, n) == 1 {
			t.Fatalf("partial answer contains doc %d from the dead shard", d)
		}
		if i > 0 && got.Docs[i-1] >= d {
			t.Fatalf("partial answer not sorted at %d", i)
		}
	}
	// Exactly the truth minus the dead shard's documents.
	wantLive := 0
	for _, d := range full {
		if ShardOf(d, n) != 1 {
			wantLive++
		}
	}
	if len(got.Docs) != wantLive {
		t.Fatalf("partial answer has %d docs, want %d (truth minus dead shard)", len(got.Docs), wantLive)
	}
	if st := r.Stats(); st[1].Degraded == 0 {
		t.Fatal("shard 1 degraded counter did not move")
	}
}

// TestRouterAllShardsDown: when no shard answers, Search errors rather
// than fabricating an empty result.
func TestRouterAllShardsDown(t *testing.T) {
	r, err := NewRouter(RouterConfig{ShardTimeout: 200 * time.Millisecond}, [][]Backend{{errBackend{}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Search(context.Background(), Request{Mode: "and", Terms: []string{"x"}}); err == nil {
		t.Fatal("all shards down must error")
	}
}

// TestRouterFailover: a dead primary replica fails over to the live
// one without waiting out the hedge delay, hedging disabled.
func TestRouterFailover(t *testing.T) {
	docs := testCorpus(60)
	idx := buildIndex(t, docs)
	backends := [][]Backend{{errBackend{}, &IndexBackend{Idx: idx, Label: "live"}}}
	r, err := NewRouter(RouterConfig{ShardTimeout: time.Second}, backends)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		got, err := r.Search(context.Background(), Request{Mode: "and", Terms: []string{"common"}})
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if got.Partial || len(got.Docs) != 60 {
			t.Fatalf("query %d: partial=%v docs=%d, want full 60", i, got.Partial, len(got.Docs))
		}
	}
}

// TestRouterHedging injects a straggler replica and checks the backup
// path: hedges fire after the adaptive delay and the fast replica's
// answer wins, with results still exact.
func TestRouterHedging(t *testing.T) {
	docs := testCorpus(60)
	idx := buildIndex(t, docs)
	backends := [][]Backend{{
		&IndexBackend{Idx: idx, Label: "slow", Delay: 60 * time.Millisecond},
		&IndexBackend{Idx: idx, Label: "fast"},
	}}
	cfg := RouterConfig{Hedge: true, HedgeMin: time.Millisecond, HedgeMax: 5 * time.Millisecond, ShardTimeout: 2 * time.Second}
	r, err := NewRouter(cfg, backends)
	if err != nil {
		t.Fatal(err)
	}
	want, err := idx.Conjunctive("even")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		got, err := r.Search(context.Background(), Request{Mode: "and", Terms: []string{"even"}})
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if len(got.Docs) != len(want) {
			t.Fatalf("query %d: %d docs, want %d", i, len(got.Docs), len(want))
		}
	}
	st := r.Stats()[0]
	if st.Hedged == 0 {
		t.Fatal("no hedges fired against a 60ms straggler with a 5ms max delay")
	}
	if st.HedgeWins == 0 {
		t.Fatal("no hedge ever won against a 60ms straggler")
	}
	if st.Latency.Count == 0 {
		t.Fatal("completion latency histogram empty")
	}
}

// TestRouterHTTP drives the full HTTP front: all query modes, stats,
// health, and the degraded-partial response shape.
func TestRouterHTTP(t *testing.T) {
	docs := testCorpus(90)
	ref := buildIndex(t, docs)
	r := newTestRouter(t, docs, 2, 1, RouterConfig{})
	srv := NewServer(r, ServerConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()
	defer func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	}()

	getJSON := func(path string, wantStatus int) map[string]interface{} {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != wantStatus {
			t.Fatalf("GET %s: %s (%s)", path, resp.Status, body)
		}
		var m map[string]interface{}
		if err := json.Unmarshal(body, &m); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", path, err)
		}
		return m
	}

	// Wait for readiness.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("router never became ready")
		}
		time.Sleep(10 * time.Millisecond)
	}

	m := getJSON("/search?q=even+third&mode=and", http.StatusOK)
	want, _ := ref.Conjunctive("even", "third")
	if int(m["matches"].(float64)) != len(want) {
		t.Fatalf("and matches = %v, want %d", m["matches"], len(want))
	}
	if m["partial"].(bool) {
		t.Fatal("unexpected partial")
	}
	m = getJSON("/search?q=even&mode=topk&k=5&algo=bmw", http.StatusOK)
	if int(m["matches"].(float64)) != 5 {
		t.Fatalf("topk matches = %v, want 5", m["matches"])
	}
	wantTop, _ := ref.TopKWith("exhaustive", 5, nil, "even")
	ranked := m["ranked"].([]interface{})
	for i, raw := range ranked {
		row := raw.(map[string]interface{})
		if uint32(row["Doc"].(float64)) != wantTop[i].Doc || int(row["Score"].(float64)) != wantTop[i].Score {
			t.Fatalf("rank %d = %v, want %+v", i, row, wantTop[i])
		}
	}
	getJSON("/search?q=&mode=and", http.StatusBadRequest)
	getJSON("/search?q=x&mode=bogus", http.StatusBadRequest)
	getJSON("/search?q=x&mode=topk&k=0", http.StatusBadRequest)

	m = getJSON("/stats", http.StatusOK)
	if int(m["shards"].(float64)) != 2 {
		t.Fatalf("stats shards = %v", m["shards"])
	}
	if len(m["perShard"].([]interface{})) != 2 {
		t.Fatal("stats missing per-shard rows")
	}
	m = getJSON("/healthz", http.StatusOK)
	if m["status"] != "ok" {
		t.Fatalf("healthz = %v, want ok", m["status"])
	}
}

// TestRouterHTTPPartial: a dead shard shows up as healthz "partial"
// and /search answers 200 with partial=true and the shard listed.
func TestRouterHTTPPartial(t *testing.T) {
	docs := testCorpus(60)
	parts, err := Partition(docs, 2)
	if err != nil {
		t.Fatal(err)
	}
	backends := [][]Backend{
		{&IndexBackend{Idx: buildIndex(t, parts[0])}},
		{errBackend{}},
	}
	r, err := NewRouter(RouterConfig{ShardTimeout: 500 * time.Millisecond}, backends)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(r, ServerConfig{})
	h := srv.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, mustReq(t, "/search?q=common&mode=and"))
	if rec.Code != http.StatusOK {
		t.Fatalf("search with dead shard: status %d", rec.Code)
	}
	var sr routerResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Partial || len(sr.DegradedShards) != 1 || sr.DegradedShards[0] != 1 {
		t.Fatalf("want partial with shard 1 degraded, got %+v", sr)
	}
	for _, d := range sr.Docs {
		if ShardOf(d, 2) == 1 {
			t.Fatalf("doc %d from dead shard in partial answer", d)
		}
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, mustReq(t, "/healthz"))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: status %d", rec.Code)
	}
	var hz map[string]interface{}
	if err := json.Unmarshal(rec.Body.Bytes(), &hz); err != nil {
		t.Fatal(err)
	}
	if hz["status"] != "partial" {
		t.Fatalf("healthz status = %v, want partial", hz["status"])
	}
}

func mustReq(t *testing.T, path string) *http.Request {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, "http://router"+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	return req
}
