package shard

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/index"
)

// writeTestShards partitions a corpus, writes one BVIX3 file per shard
// plus the manifest, and returns the directory and map.
func writeTestShards(t *testing.T, docs []string, n int) (string, *Map) {
	t.Helper()
	dir := t.TempDir()
	parts, err := Partition(docs, n)
	if err != nil {
		t.Fatal(err)
	}
	m := &Map{Version: MapVersion, Partition: "mod", Shards: n, Docs: len(docs)}
	for s, part := range parts {
		idx := buildIndex(t, part)
		path := filepath.Join(dir, FileName(s))
		if err := idx.WriteFile(path, index.FormatBVIX3Impacts); err != nil {
			t.Fatal(err)
		}
		e, err := EntryFor(path, idx.Docs(), idx.Terms())
		if err != nil {
			t.Fatal(err)
		}
		m.Entries = append(m.Entries, e)
	}
	if err := WriteMap(filepath.Join(dir, "shards.json"), m); err != nil {
		t.Fatal(err)
	}
	return dir, m
}

func TestShardMapRoundtrip(t *testing.T) {
	docs := testCorpus(100)
	dir, wrote := writeTestShards(t, docs, 4)
	m, err := LoadMap(filepath.Join(dir, "shards.json"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Shards != 4 || m.Docs != 100 || len(m.Entries) != 4 {
		t.Fatalf("loaded map shape wrong: %+v", m)
	}
	if m.Checksum != wrote.Checksum {
		t.Fatalf("checksum drifted on load")
	}
	if err := m.VerifyFiles(dir); err != nil {
		t.Fatalf("pristine shard files failed verification: %v", err)
	}
	// Every shard file must reopen as a servable index.
	for s, e := range m.Entries {
		idx, err := index.OpenFile(filepath.Join(dir, e.File))
		if err != nil {
			t.Fatalf("shard %d: %v", s, err)
		}
		if idx.Docs() != e.Docs {
			t.Fatalf("shard %d: %d docs, manifest says %d", s, idx.Docs(), e.Docs)
		}
		idx.Close()
	}
}

func TestShardMapDetectsTamperedManifest(t *testing.T) {
	docs := testCorpus(50)
	dir, _ := writeTestShards(t, docs, 2)
	path := filepath.Join(dir, "shards.json")
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a digit inside the docs count — structurally valid JSON, wrong
	// content; only the self-checksum can catch it.
	tampered := strings.Replace(string(blob), `"docs": 50`, `"docs": 51`, 1)
	if tampered == string(blob) {
		t.Fatal("test setup: docs field not found")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadMap(path); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("tampered manifest must fail the checksum, got %v", err)
	}
}

func TestShardMapDetectsDamagedShardFile(t *testing.T) {
	docs := testCorpus(50)
	dir, m := writeTestShards(t, docs, 2)
	path := filepath.Join(dir, m.Entries[1].File)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0xff
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := m.VerifyFiles(dir); err == nil || !strings.Contains(err.Error(), "crc32c") {
		t.Fatalf("damaged shard file must fail crc verification, got %v", err)
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if err := m.VerifyFiles(dir); err == nil {
		t.Fatal("missing shard file must fail verification")
	}
}

func TestShardMapValidation(t *testing.T) {
	good := func() *Map {
		return &Map{
			Version: MapVersion, Partition: "mod", Shards: 2, Docs: 10,
			Entries: []Entry{
				{File: "shard-0000.bvix", Docs: 5, Bytes: 1, CRC: 1},
				{File: "shard-0001.bvix", Docs: 5, Bytes: 1, CRC: 1},
			},
		}
	}
	cases := []struct {
		name   string
		mutate func(*Map)
	}{
		{"bad version", func(m *Map) { m.Version = 99 }},
		{"bad partition", func(m *Map) { m.Partition = "range" }},
		{"zero shards", func(m *Map) { m.Shards = 0 }},
		{"entry count mismatch", func(m *Map) { m.Shards = 3 }},
		{"empty shard", func(m *Map) { m.Entries[0].Docs = 0 }},
		{"docs sum mismatch", func(m *Map) { m.Docs = 11 }},
		{"duplicate file", func(m *Map) { m.Entries[1].File = m.Entries[0].File }},
		{"path traversal", func(m *Map) { m.Entries[0].File = "../shard-0000.bvix" }},
	}
	for _, tc := range cases {
		m := good()
		tc.mutate(m)
		if err := m.validate(); err == nil {
			t.Errorf("%s: validate accepted a broken map", tc.name)
		}
	}
	if err := good().validate(); err != nil {
		t.Fatalf("good map rejected: %v", err)
	}
}
