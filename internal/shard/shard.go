// Package shard is the scale-out serving layer: doc-partitioned index
// shards behind a scatter-gather router. A corpus of D documents is
// partitioned round-robin across N shards — global document g lives on
// shard g mod N with local id g div N — so every shard holds an
// ordinary, self-contained index over a contiguous local id space and
// the router can map results back with one multiply-add. Round-robin
// (rather than contiguous ranges) keeps shard sizes within one
// document of each other regardless of corpus ordering, which is what
// makes the per-shard work of a scattered query ~1/N of the
// single-index work.
//
// The pieces:
//
//   - Partition/ShardOf/GlobalID: the partitioning function and its
//     inverse (shard.go);
//   - Map: the checksummed shard-map manifest written next to the
//     shard files by `bvindex -partition N` (shardmap.go);
//   - Backend: one shard replica — in-process over an index.Index or
//     remote over a bvserve /search endpoint (backend.go);
//   - Router: parallel scatter-gather with load-based pick-of-two
//     replica selection, adaptive hedged requests, exact merge
//     (sorted N-way for postings, strict-beat heap order for top-k),
//     and per-shard degradation — a dead shard yields a documented
//     partial answer, never a failed query (router.go);
//   - Server: the hardened HTTP front the bvrouter command serves
//     (http.go).
//
// Merge exactness rests on the partition being a disjoint cover with
// an order-preserving local→global map per shard: boolean results
// concatenate under an N-way sorted merge into exactly the single-index
// list, and per-shard top-k with local-docid tie-breaks restricts the
// global (score desc, doc asc) order shard by shard, so merging the
// per-shard top-k lists and keeping the best k reproduces the global
// top-k bit for bit. The oracle pairing CheckSharded proves this
// against the single-index reference for every shard count × query
// mode × algorithm.
package shard

import "fmt"

// MaxShards bounds partition counts everywhere (flag validation, map
// loading): wide enough for any realistic deployment, small enough
// that a corrupt manifest cannot demand absurd fan-out.
const MaxShards = 4096

// ShardOf returns the shard a global document id lives on under the
// round-robin partition into n shards.
func ShardOf(global uint32, n int) int { return int(global % uint32(n)) }

// LocalID returns a global document id's local id on its shard.
func LocalID(global uint32, n int) uint32 { return global / uint32(n) }

// GlobalID maps a shard-local document id back to the global id space.
// It is strictly increasing in local for a fixed shard, which is what
// keeps per-shard sorted results sorted after mapping.
func GlobalID(local uint32, shard, n int) uint32 { return local*uint32(n) + uint32(shard) }

// Partition splits documents round-robin into n per-shard slices,
// preserving relative order inside each shard (shard s gets global
// docs s, s+n, s+2n, ... as its local docs 0, 1, 2, ...). It refuses
// partitions that would create an empty shard: every shard must hold
// at least one document, so n must not exceed len(docs).
func Partition(docs []string, n int) ([][]string, error) {
	if n < 1 || n > MaxShards {
		return nil, fmt.Errorf("shard: partition count %d out of range [1,%d]", n, MaxShards)
	}
	if n > len(docs) {
		return nil, fmt.Errorf("shard: %d shards over %d documents would create empty shards", n, len(docs))
	}
	out := make([][]string, n)
	for s := range out {
		out[s] = make([]string, 0, (len(docs)+n-1-s)/n)
	}
	for g, d := range docs {
		out[g%n] = append(out[g%n], d)
	}
	return out, nil
}

// FileName is the canonical shard file name for shard i
// ("shard-0007.bvix"), written next to the shard-map manifest.
func FileName(i int) string { return fmt.Sprintf("shard-%04d.bvix", i) }
