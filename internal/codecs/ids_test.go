package codecs

import (
	"encoding"
	"testing"
)

func TestIDRoundtrip(t *testing.T) {
	registry := append(All(), Extensions()...)
	names := make([]string, len(registry))
	for i, c := range registry {
		names[i] = c.Name()
	}
	if int(MaxID()) != len(names) {
		t.Fatalf("MaxID() = %d, want registry size %d", MaxID(), len(names))
	}
	seen := map[byte]string{}
	for _, name := range names {
		id, ok := IDByName(name)
		if !ok {
			t.Fatalf("IDByName(%q): not found", name)
		}
		if id == 0 || id > MaxID() {
			t.Fatalf("IDByName(%q) = %d, out of [1, %d]", name, id, MaxID())
		}
		if prev, dup := seen[id]; dup {
			t.Fatalf("ID %d assigned to both %q and %q", id, prev, name)
		}
		seen[id] = name
		back, ok := NameByID(id)
		if !ok || back != name {
			t.Fatalf("NameByID(%d) = %q, %v; want %q", id, back, ok, name)
		}
	}
	if _, ok := IDByName("no-such-codec"); ok {
		t.Error("IDByName accepted an unknown name")
	}
	if _, ok := NameByID(0); ok {
		t.Error("NameByID(0) should be unspecified, not a codec")
	}
	if _, ok := NameByID(MaxID() + 1); ok {
		t.Error("NameByID past MaxID should fail")
	}
}

// TestIdentifyBlob checks exactness: every registry codec's marshaled
// blob identifies back to that codec's own name.
func TestIdentifyBlob(t *testing.T) {
	// Small gaps keep GapLimited codecs (Simple9/16) in range; a dense
	// prefix exercises bitmap formats too.
	list := make([]uint32, 600)
	for i := range list {
		list[i] = uint32(i * 3)
	}
	for _, c := range append(All(), Extensions()...) {
		p, err := c.Compress(list)
		if err != nil {
			t.Fatalf("%s: Compress: %v", c.Name(), err)
		}
		blob, err := p.(encoding.BinaryMarshaler).MarshalBinary()
		if err != nil {
			t.Fatalf("%s: MarshalBinary: %v", c.Name(), err)
		}
		got, ok := IdentifyBlob(blob)
		if !ok || got != c.Name() {
			t.Errorf("IdentifyBlob(%s blob) = %q, %v; want %q", c.Name(), got, ok, c.Name())
		}
	}
	if _, ok := IdentifyBlob(nil); ok {
		t.Error("IdentifyBlob(nil) should fail")
	}
	if _, ok := IdentifyBlob([]byte{0xFE, 1, 2, 3}); ok {
		t.Error("IdentifyBlob(unknown tag) should fail")
	}
}
