package codecs

import (
	"testing"

	"repro/internal/core"
)

func TestAllHas24Methods(t *testing.T) {
	all := All()
	if len(all) != 24 {
		t.Fatalf("got %d codecs, want 24 (9 bitmap + 15 list)", len(all))
	}
	if len(Bitmaps()) != 9 {
		t.Errorf("got %d bitmap codecs, want 9", len(Bitmaps()))
	}
	if len(Lists()) != 15 {
		t.Errorf("got %d list codecs, want 15", len(Lists()))
	}
	for _, c := range Bitmaps() {
		if c.Kind() != core.KindBitmap {
			t.Errorf("%s: kind = %v, want bitmap", c.Name(), c.Kind())
		}
	}
	for _, c := range Lists() {
		if c.Kind() != core.KindList {
			t.Errorf("%s: kind = %v, want list", c.Name(), c.Kind())
		}
	}
}

func TestTableOrderMatchesPaper(t *testing.T) {
	// Table 1's row order.
	want := []string{
		"Bitset", "BBC", "WAH", "EWAH", "PLWAH", "CONCISE", "VALWAH", "SBH",
		"Roaring", "List", "VB", "Simple9", "PforDelta", "NewPforDelta",
		"OptPforDelta", "Simple16", "GroupVB", "Simple8b", "PEF",
		"SIMDPforDelta", "SIMDBP128", "PforDelta*", "SIMDPforDelta*",
		"SIMDBP128*",
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("got %d names", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d: %s, want %s", i, got[i], want[i])
		}
	}
}

func TestExtensions(t *testing.T) {
	exts := Extensions()
	if len(exts) == 0 {
		t.Fatal("no extension codecs")
	}
	for _, c := range exts {
		// Extensions resolve by name but stay out of the paper's table.
		got, err := ByName(c.Name())
		if err != nil || got.Name() != c.Name() {
			t.Errorf("ByName(%s): %v", c.Name(), err)
		}
		for _, n := range Names() {
			if n == c.Name() {
				t.Errorf("extension %s leaked into the 24-method table", n)
			}
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		c, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		if c.Name() != name {
			t.Errorf("ByName(%s).Name() = %s", name, c.Name())
		}
	}
	if _, err := ByName("LZ77"); err == nil {
		t.Error("ByName should reject unknown names")
	}
}

// TestEveryCodecIsUsable compresses one list through all 24 methods.
func TestEveryCodecIsUsable(t *testing.T) {
	vals := []uint32{0, 1, 2, 100, 10_000, 65_536, 1 << 20}
	for _, c := range All() {
		p, err := c.Compress(vals)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		got := p.Decompress()
		if len(got) != len(vals) {
			t.Errorf("%s: round trip lost values", c.Name())
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Errorf("%s: value %d mismatch", c.Name(), i)
				break
			}
		}
	}
}
