package codecs

import (
	"encoding"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

// TestDecodeSurvivesBitFlips corrupts serialized postings one byte at a
// time: Decode must either reject the blob or return a posting whose
// decompressed form is a valid sorted set (VerifyDecompress guarantees
// this). It must never panic.
func TestDecodeSurvivesBitFlips(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	vals := gen.Uniform(300, 1<<18, 1)
	for _, c := range All() {
		p, err := c.Compress(vals)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := p.(encoding.BinaryMarshaler).MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 200; trial++ {
			mut := make([]byte, len(blob))
			copy(mut, blob)
			mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s: Decode panicked on corrupted input: %v", c.Name(), r)
					}
				}()
				q, err := Decode(mut)
				if err != nil {
					return // rejected: fine
				}
				// Accepted: the posting must be internally consistent.
				if err := core.VerifyDecompress(q); err != nil {
					t.Errorf("%s: Decode accepted corrupt blob yielding inconsistent posting", c.Name())
				}
			}()
		}
	}
}

// FuzzDecode is the native fuzz target: arbitrary bytes through the
// dispatching decoder. Seeds cover every codec's valid encoding.
func FuzzDecode(f *testing.F) {
	vals := gen.Uniform(64, 1<<14, 2)
	for _, c := range All() {
		p, err := c.Compress(vals)
		if err != nil {
			f.Fatal(err)
		}
		blob, err := p.(encoding.BinaryMarshaler).MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
	}
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := Decode(data)
		if err != nil {
			return
		}
		if err := core.VerifyDecompress(q); err != nil {
			t.Fatalf("accepted blob fails verification: %v", err)
		}
	})
}
