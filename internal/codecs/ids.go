package codecs

import (
	"repro/internal/core"
)

// Stable one-byte codec IDs, used as the per-term codec byte in the
// BVIX3 dictionary (DESIGN §8). An ID is the codec's 1-based position
// in the registry — All() followed by Extensions() — so the mapping is
// stable as long as the registry stays append-only, which is the same
// contract the paper's table order already imposes. ID 0 means
// "unspecified" and is legal in a dict record (pre-adaptive writers).

// idTable maps name→ID and ID→name; built once at init from the
// registry so it can never drift from the codec list.
var (
	idByName = map[string]byte{}
	nameByID []string // nameByID[id-1]
)

func init() {
	for _, c := range append(All(), Extensions()...) {
		nameByID = append(nameByID, c.Name())
		idByName[c.Name()] = byte(len(nameByID))
	}
}

// IDByName returns the codec byte for a registry codec name; ok is
// false for unknown names.
func IDByName(name string) (id byte, ok bool) {
	id, ok = idByName[name]
	return id, ok
}

// NameByID is the inverse of IDByName; ok is false for 0 (unspecified)
// and out-of-range IDs.
func NameByID(id byte) (name string, ok bool) {
	if id == 0 || int(id) > len(nameByID) {
		return "", false
	}
	return nameByID[id-1], true
}

// MaxID reports the largest valid codec ID; bytes above it (or equal to
// 0 where a codec is required) are malformed.
func MaxID() byte {
	return byte(len(nameByID))
}

// IdentifyBlob reports the registry name of the codec that produced a
// marshaled posting blob, from the format tag alone — and, for the
// Blocked frame, the inner codec name embedded in its header — without
// decoding the payload. ok is false for malformed or unknown blobs.
// It is exact: every MarshalBinary output identifies its codec.
func IdentifyBlob(blob []byte) (name string, ok bool) {
	if len(blob) == 0 {
		return "", false
	}
	switch blob[0] {
	case core.TagBitset:
		return "Bitset", true
	case core.TagBBC:
		return "BBC", true
	case core.TagWAH:
		return "WAH", true
	case core.TagEWAH:
		return "EWAH", true
	case core.TagPLWAH:
		return "PLWAH", true
	case core.TagCONCISE:
		return "CONCISE", true
	case core.TagVALWAH:
		return "VALWAH", true
	case core.TagSBH:
		return "SBH", true
	case core.TagRoaring:
		return "Roaring", true
	case core.TagRawList:
		return "List", true
	case core.TagPEF:
		return "PEF", true
	case core.TagRoaringRun:
		return "Roaring+Run", true
	case core.TagBlocked:
		// Header: tag, u32 cardinality, u8 name length, name bytes.
		if len(blob) < 6 {
			return "", false
		}
		nameLen := int(blob[5])
		if len(blob) < 6+nameLen {
			return "", false
		}
		inner := string(blob[6 : 6+nameLen])
		if _, known := idByName[inner]; !known {
			return "", false
		}
		return inner, true
	}
	return "", false
}
