package codecs

import (
	"encoding"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/ops"
)

func serializeCases() map[string][]uint32 {
	return map[string][]uint32{
		"empty":     {},
		"single":    {42},
		"dense":     gen.MarkovN(5000, 1<<16, 8, 1),
		"sparse":    gen.Uniform(700, 1<<22, 2),
		"zipf":      gen.Zipf(3000, 1<<22, 1.0, 3),
		"boundary":  {0, 127, 128, 129, 255, 256, 65535, 65536, 1 << 20},
		"runs":      runList(2000),
		"max-value": {1, 1<<24 - 1},
	}
}

func runList(n int) []uint32 {
	out := make([]uint32, 0, n)
	v := uint32(0)
	for len(out) < n {
		v += 500
		for j := 0; j < 70 && len(out) < n; j++ {
			out = append(out, v)
			v++
		}
	}
	return out
}

// TestSerializeRoundTripAllCodecs: marshal + Decode preserve every
// posting for all 24 methods plus the extensions.
func TestSerializeRoundTripAllCodecs(t *testing.T) {
	for _, c := range append(All(), Extensions()...) {
		for name, vals := range serializeCases() {
			p, err := c.Compress(vals)
			if err != nil {
				t.Fatalf("%s/%s: %v", c.Name(), name, err)
			}
			m, ok := p.(encoding.BinaryMarshaler)
			if !ok {
				t.Fatalf("%s: posting does not implement BinaryMarshaler", c.Name())
			}
			blob, err := m.MarshalBinary()
			if err != nil {
				t.Fatalf("%s/%s: marshal: %v", c.Name(), name, err)
			}
			q, err := Decode(blob)
			if err != nil {
				t.Fatalf("%s/%s: decode: %v", c.Name(), name, err)
			}
			if q.Len() != p.Len() {
				t.Errorf("%s/%s: Len %d != %d", c.Name(), name, q.Len(), p.Len())
			}
			if q.SizeBytes() != p.SizeBytes() {
				t.Errorf("%s/%s: SizeBytes %d != %d", c.Name(), name, q.SizeBytes(), p.SizeBytes())
			}
			got, want := q.Decompress(), p.Decompress()
			if len(got) != len(want) {
				t.Fatalf("%s/%s: decompress %d != %d values", c.Name(), name, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s/%s: value %d mismatch", c.Name(), name, i)
				}
			}
		}
	}
}

// TestSerializedPostingsStillOperate: deserialized postings intersect
// and union like the originals.
func TestSerializedPostingsStillOperate(t *testing.T) {
	a := gen.Uniform(2000, 1<<18, 4)
	b := gen.Uniform(30000, 1<<18, 5)
	want := ops.IntersectSorted(a, b)
	for _, name := range []string{"Roaring", "WAH", "PEF", "SIMDBP128*", "VB", "List"} {
		c, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		pa, _ := c.Compress(a)
		pb, _ := c.Compress(b)
		blobA, _ := pa.(encoding.BinaryMarshaler).MarshalBinary()
		blobB, _ := pb.(encoding.BinaryMarshaler).MarshalBinary()
		qa, err := Decode(blobA)
		if err != nil {
			t.Fatal(err)
		}
		qb, err := Decode(blobB)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ops.Intersect([]core.Posting{qa, qb})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: intersect after decode = %d values, want %d", name, len(got), len(want))
		}
	}
}

// TestDecodeRejectsGarbage: corrupt inputs produce errors, not panics
// or silent misreads.
func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0xFF},                        // unknown tag
		{0xFF, 1, 2, 3, 4, 5},         // unknown tag, plausible length
		{core.TagWAH},                 // truncated header
		{core.TagWAH, 1, 0, 0, 0},     // missing word count
		{core.TagRoaring, 1, 0, 0, 0}, // missing container count
		{core.TagPEF, 1, 0, 0, 0},
		{core.TagBlocked, 1, 0, 0, 0},
	}
	for i, blob := range cases {
		if _, err := Decode(blob); err == nil {
			t.Errorf("case %d: Decode accepted garbage", i)
		}
	}
	// Truncation of every valid blob must be detected or at minimum not
	// panic.
	vals := gen.Uniform(500, 1<<16, 6)
	for _, c := range All() {
		p, _ := c.Compress(vals)
		blob, _ := p.(encoding.BinaryMarshaler).MarshalBinary()
		for _, cut := range []int{1, len(blob) / 2, len(blob) - 1} {
			if cut >= len(blob) {
				continue
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Errorf("%s: Decode panicked on truncation at %d: %v", c.Name(), cut, r)
					}
				}()
				if _, err := Decode(blob[:cut]); err == nil {
					t.Errorf("%s: Decode accepted truncation at %d", c.Name(), cut)
				}
			}()
		}
	}
}

// TestDecodeWrongTagPerCodec: a codec's Decode rejects another codec's
// bytes.
func TestDecodeWrongTagPerCodec(t *testing.T) {
	wah, _ := ByName("WAH")
	p, _ := wah.Compress([]uint32{1, 2, 3})
	blob, _ := p.(encoding.BinaryMarshaler).MarshalBinary()
	ewah, _ := ByName("EWAH")
	if _, err := ewah.(core.Decoder).Decode(blob); err == nil {
		t.Fatal("EWAH decoded WAH bytes")
	}
}
