package codecs

import (
	"fmt"

	"repro/internal/bitmap"
	"repro/internal/core"
	"repro/internal/intlist"
)

// Decode reconstructs a posting from MarshalBinary output, dispatching
// on the format tag so callers need not know which codec produced it.
func Decode(data []byte) (core.Posting, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("%w: empty input", core.ErrBadFormat)
	}
	var d core.Decoder
	switch data[0] {
	case core.TagBitset:
		d = bitmap.Bitset{}
	case core.TagBBC:
		d = bitmap.BBC{}
	case core.TagWAH:
		d = bitmap.WAH{}
	case core.TagEWAH:
		d = bitmap.EWAH{}
	case core.TagPLWAH:
		d = bitmap.PLWAH{}
	case core.TagCONCISE:
		d = bitmap.CONCISE{}
	case core.TagVALWAH:
		d = bitmap.VALWAH{}
	case core.TagSBH:
		d = bitmap.SBH{}
	case core.TagRoaring:
		d = bitmap.Roaring{}
	case core.TagRawList:
		d = intlist.RawList{}
	case core.TagBlocked:
		d = intlist.Blocked{} // inner codec comes from the header
	case core.TagPEF:
		d = intlist.PEF{}
	case core.TagRoaringRun:
		d = bitmap.RoaringRun{}
	default:
		return nil, fmt.Errorf("%w: unknown format tag 0x%02x", core.ErrBadFormat, data[0])
	}
	return d.Decode(data)
}
