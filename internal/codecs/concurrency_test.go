package codecs

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/ops"
)

// TestConcurrentReads: postings are immutable after Compress, so any
// number of goroutines may decompress, iterate, and intersect the same
// posting concurrently. Run under -race this asserts the absence of
// shared mutable state in every codec's read paths.
func TestConcurrentReads(t *testing.T) {
	a := gen.Uniform(5000, 1<<18, 1)
	b := gen.MarkovN(20000, 1<<18, 8, 2)
	want := ops.IntersectSorted(a, b)
	for _, c := range All() {
		pa, err := c.Compress(a)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := c.Compress(b)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make(chan error, 16)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for iter := 0; iter < 5; iter++ {
					switch (g + iter) % 3 {
					case 0:
						if got := pa.Decompress(); len(got) != len(a) {
							errs <- errMismatchf(c.Name(), "decompress")
							return
						}
					case 1:
						got, err := ops.Intersect([]core.Posting{pa, pb})
						if err != nil || len(got) != len(want) {
							errs <- errMismatchf(c.Name(), "intersect")
							return
						}
					default:
						if s, ok := pb.(core.Seeker); ok {
							it := s.Iterator()
							n := 0
							for _, okN := it.Next(); okN; _, okN = it.Next() {
								n++
							}
							if n != len(b) {
								errs <- errMismatchf(c.Name(), "iterate")
								return
							}
						} else if got := pb.Decompress(); len(got) != len(b) {
							errs <- errMismatchf(c.Name(), "decompress-b")
							return
						}
					}
				}
			}(g)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
	}
}

type errMismatch string

func (e errMismatch) Error() string { return string(e) }

func errMismatchf(codec, op string) error { return errMismatch(codec + ": " + op + " mismatch") }
