// Package codecs aggregates the 24 compression methods of the study —
// the 9 bitmap methods of §2 and the 15 inverted-list representations
// of §3 — in the row order of the paper's tables (Table 1/2).
package codecs

import (
	"fmt"

	"repro/internal/bitmap"
	"repro/internal/core"
	"repro/internal/intlist"
)

// All returns every codec in the paper's table order: bitmap methods
// first, then list methods.
func All() []core.Codec {
	return append(Bitmaps(), Lists()...)
}

// Bitmaps returns the 9 bitmap compression methods (§2).
func Bitmaps() []core.Codec {
	return []core.Codec{
		bitmap.NewBitset(),
		bitmap.NewBBC(),
		bitmap.NewWAH(),
		bitmap.NewEWAH(),
		bitmap.NewPLWAH(),
		bitmap.NewCONCISE(),
		bitmap.NewVALWAH(),
		bitmap.NewSBH(),
		bitmap.NewRoaring(),
	}
}

// Lists returns the 15 inverted-list representations (§3), including
// the uncompressed baseline and the * variants.
func Lists() []core.Codec {
	return []core.Codec{
		intlist.NewRawList(),
		intlist.NewVB(),
		intlist.NewSimple9(),
		intlist.NewPforDeltaCodec(),
		intlist.NewNewPforDelta(),
		intlist.NewOptPforDelta(),
		intlist.NewSimple16(),
		intlist.NewGroupVB(),
		intlist.NewSimple8b(),
		intlist.NewPEF(),
		intlist.NewSIMDPforDelta(),
		intlist.NewSIMDBP128(),
		intlist.NewPforDeltaStar(),
		intlist.NewSIMDPforDeltaStar(),
		intlist.NewSIMDBP128Star(),
	}
}

// Extensions returns codecs beyond the paper's 24 methods: currently
// the Roaring+Run hybrid motivated by the paper's lesson 1 (§7.2).
func Extensions() []core.Codec {
	return []core.Codec{bitmap.NewRoaringRun()}
}

// ByName returns the codec with the given table name (e.g. "Roaring",
// "SIMDBP128*"), searching the paper's 24 methods and the extensions.
func ByName(name string) (core.Codec, error) {
	for _, c := range append(All(), Extensions()...) {
		if c.Name() == name {
			return c, nil
		}
	}
	return nil, fmt.Errorf("codecs: unknown codec %q", name)
}

// Names returns all codec names in table order.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, c := range all {
		out[i] = c.Name()
	}
	return out
}
