package codecs_test

import (
	"encoding"
	"fmt"
	"log"

	"repro/internal/codecs"
	"repro/internal/core"
	"repro/internal/ops"
)

// Example compresses the paper's motivating "iPhone" bitmap with two
// codecs from opposite families and intersects them.
func Example() {
	roaring, err := codecs.ByName("Roaring")
	if err != nil {
		log.Fatal(err)
	}
	simd, err := codecs.ByName("SIMDBP128*")
	if err != nil {
		log.Fatal(err)
	}

	iphone, _ := roaring.Compress([]uint32{2, 5, 10})   // bitmap family
	california, _ := simd.Compress([]uint32{5, 10, 99}) // list family

	both, err := ops.Intersect([]core.Posting{iphone, california})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(both)
	// Output: [5 10]
}

// ExampleDecode round-trips a posting through its binary form.
func ExampleDecode() {
	codec, _ := codecs.ByName("WAH")
	p, _ := codec.Compress([]uint32{1, 2, 3, 1000})
	blob, _ := p.(encoding.BinaryMarshaler).MarshalBinary()

	q, err := codecs.Decode(blob)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(q.Decompress())
	// Output: [1 2 3 1000]
}

// ExampleByName lists the two families' sizes for one dataset.
func ExampleByName() {
	values := make([]uint32, 1000)
	for i := range values {
		values[i] = uint32(i * 37)
	}
	for _, name := range []string{"WAH", "SIMDPforDelta*"} {
		c, _ := codecs.ByName(name)
		p, _ := c.Compress(values)
		fmt.Printf("%s is a %s codec\n", c.Name(), c.Kind())
		_ = p
	}
	// Output:
	// WAH is a bitmap codec
	// SIMDPforDelta* is a list codec
}
