package table

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/codecs"
)

// makeTable builds a 3-column table with known value distributions.
func makeTable(t *testing.T, rows int) *Table {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	region := make([]uint32, rows)
	age := make([]uint32, rows)
	status := make([]uint32, rows)
	for i := 0; i < rows; i++ {
		region[i] = uint32(rng.Intn(6))
		age[i] = uint32(18 + rng.Intn(73))
		status[i] = uint32(rng.Intn(2))
	}
	tbl := New()
	for name, col := range map[string][]uint32{"region": region, "age": age, "status": status} {
		if err := tbl.AddColumn(name, col); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

// refSelect filters rows by direct column scans (the oracle).
func refSelect(tbl *Table, match func(row int) bool) []uint32 {
	var out []uint32
	for i := 0; i < tbl.Rows(); i++ {
		if match(i) {
			out = append(out, uint32(i))
		}
	}
	return out
}

func TestTableBasics(t *testing.T) {
	tbl := New()
	if err := tbl.AddColumn("a", []uint32{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddColumn("b", []uint32{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := tbl.AddColumn("a", []uint32{4, 5, 6}); err == nil {
		t.Error("duplicate column accepted")
	}
	if tbl.Rows() != 3 {
		t.Errorf("Rows = %d", tbl.Rows())
	}
}

func TestSelectMatchesScan(t *testing.T) {
	tbl := makeTable(t, 20000)
	region := tbl.cols["region"]
	age := tbl.cols["age"]
	status := tbl.cols["status"]
	for _, codec := range []string{"Roaring", "WAH", "SIMDBP128*", "BBC"} {
		c, _ := codecs.ByName(codec)
		ix, err := BuildIndex(tbl, c, "region", "age", "status")
		if err != nil {
			t.Fatal(err)
		}
		// Conjunctive: region=2 AND age=30.
		got, err := ix.Select(Eq("region", 2), Eq("age", 30))
		if err != nil {
			t.Fatal(err)
		}
		want := refSelect(tbl, func(r int) bool { return region[r] == 2 && age[r] == 30 })
		if !equalU32(got, want) {
			t.Errorf("%s: Select = %d rows, want %d", codec, len(got), len(want))
		}
		// Range: age BETWEEN 25 AND 27 AND status=1.
		got, err = ix.Select(Range("age", 25, 27), Eq("status", 1))
		if err != nil {
			t.Fatal(err)
		}
		want = refSelect(tbl, func(r int) bool { return age[r] >= 25 && age[r] <= 27 && status[r] == 1 })
		if !equalU32(got, want) {
			t.Errorf("%s: Range Select = %d rows, want %d", codec, len(got), len(want))
		}
		// In-list predicate.
		got, err = ix.Select(In("region", 0, 5))
		if err != nil {
			t.Fatal(err)
		}
		want = refSelect(tbl, func(r int) bool { return region[r] == 0 || region[r] == 5 })
		if !equalU32(got, want) {
			t.Errorf("%s: In Select = %d rows, want %d", codec, len(got), len(want))
		}
		// Disjunctive.
		got, err = ix.SelectAny(Eq("region", 1), Eq("age", 40))
		if err != nil {
			t.Fatal(err)
		}
		want = refSelect(tbl, func(r int) bool { return region[r] == 1 || age[r] == 40 })
		if !equalU32(got, want) {
			t.Errorf("%s: SelectAny = %d rows, want %d", codec, len(got), len(want))
		}
		// Count.
		n, err := ix.Count(Eq("status", 0))
		if err != nil {
			t.Fatal(err)
		}
		if n != len(refSelect(tbl, func(r int) bool { return status[r] == 0 })) {
			t.Errorf("%s: Count mismatch", codec)
		}
	}
}

func TestSelectEdgeCases(t *testing.T) {
	tbl := makeTable(t, 1000)
	c, _ := codecs.ByName("Roaring")
	ix, _ := BuildIndex(tbl, c, "region")
	// Unmatched value empties the conjunction.
	if rows, err := ix.Select(Eq("region", 99)); err != nil || len(rows) != 0 {
		t.Errorf("Select(miss) = %v, %v", rows, err)
	}
	// Unindexed column errors.
	if _, err := ix.Select(Eq("age", 30)); err == nil {
		t.Error("unindexed column accepted")
	}
	// Empty predicate list errors.
	if _, err := ix.Select(); err == nil {
		t.Error("empty Select accepted")
	}
	// Empty range.
	if rows, err := ix.Select(Range("region", 50, 60)); err != nil || len(rows) != 0 {
		t.Errorf("empty Range = %v, %v", rows, err)
	}
	// BuildIndex with unknown column.
	if _, err := BuildIndex(tbl, c, "nope"); err == nil {
		t.Error("BuildIndex accepted unknown column")
	}
}

func TestIndexStats(t *testing.T) {
	tbl := makeTable(t, 5000)
	c, _ := codecs.ByName("Roaring")
	ix, err := BuildIndex(tbl, c, "region", "age")
	if err != nil {
		t.Fatal(err)
	}
	if ix.Cardinality("region") != 6 {
		t.Errorf("region cardinality = %d", ix.Cardinality("region"))
	}
	if ix.Cardinality("age") != 73 {
		t.Errorf("age cardinality = %d", ix.Cardinality("age"))
	}
	if ix.SizeBytes() <= 0 {
		t.Error("SizeBytes not positive")
	}
}

func equalU32(a, b []uint32) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}
