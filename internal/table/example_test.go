package table_test

import (
	"fmt"
	"log"

	"repro/internal/codecs"
	"repro/internal/table"
)

// Example runs the §A.2 query shapes against a bitmap-indexed table.
func Example() {
	tbl := table.New()
	if err := tbl.AddColumn("region", []uint32{0, 1, 0, 2, 1, 0}); err != nil {
		log.Fatal(err)
	}
	if err := tbl.AddColumn("age", []uint32{25, 26, 30, 25, 25, 26}); err != nil {
		log.Fatal(err)
	}
	codec, _ := codecs.ByName("Roaring")
	ix, err := table.BuildIndex(tbl, codec, "region", "age")
	if err != nil {
		log.Fatal(err)
	}

	// Conjunctive predicate (bitmap AND).
	rows, _ := ix.Select(table.Eq("region", 0), table.Eq("age", 25))
	fmt.Println("region=0 AND age=25:", rows)

	// Range predicate = union of per-value bitmaps (the paper's
	// age-25-to-26 example).
	rows, _ = ix.Select(table.Range("age", 25, 26))
	fmt.Println("age in [25,26]:", rows)
	// Output:
	// region=0 AND age=25: [0]
	// age in [25,26]: [0 1 3 4 5]
}
