// Package table is the database substrate of §A.2: a columnar fact
// table with a compressed bitmap index — one posting per distinct
// column value — answering the query shapes the paper maps onto
// intersection and union: conjunctive predicates and star joins (AND),
// disjunctive predicates and range predicates (OR).
package table

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/ops"
)

// Table is a columnar table of low-cardinality uint32 columns (the
// dictionary encoding is the caller's concern; bitmap indexes are
// value-granular either way).
type Table struct {
	cols map[string][]uint32
	rows int
}

// New returns an empty table.
func New() *Table { return &Table{cols: map[string][]uint32{}} }

// AddColumn installs a column; all columns must have equal length.
func (t *Table) AddColumn(name string, values []uint32) error {
	if t.rows == 0 && len(t.cols) == 0 {
		t.rows = len(values)
	}
	if len(values) != t.rows {
		return fmt.Errorf("table: column %q has %d rows, table has %d", name, len(values), t.rows)
	}
	if _, dup := t.cols[name]; dup {
		return fmt.Errorf("table: duplicate column %q", name)
	}
	c := make([]uint32, len(values))
	copy(c, values)
	t.cols[name] = c
	return nil
}

// Rows reports the table length.
func (t *Table) Rows() int { return t.rows }

// Index is a bitmap index: per indexed column, one compressed posting
// per distinct value, listing the rows holding that value.
type Index struct {
	codec    core.Codec
	columns  map[string]map[uint32]core.Posting
	domains  map[string][]uint32 // sorted distinct values per column
	rowCount int
}

// BuildIndex indexes the named columns of t with codec.
func BuildIndex(t *Table, codec core.Codec, columns ...string) (*Index, error) {
	ix := &Index{
		codec:    codec,
		columns:  map[string]map[uint32]core.Posting{},
		domains:  map[string][]uint32{},
		rowCount: t.rows,
	}
	for _, name := range columns {
		col, ok := t.cols[name]
		if !ok {
			return nil, fmt.Errorf("table: no column %q", name)
		}
		lists := map[uint32][]uint32{}
		for row, v := range col {
			lists[v] = append(lists[v], uint32(row))
		}
		ix.columns[name] = make(map[uint32]core.Posting, len(lists))
		for v, rows := range lists {
			p, err := codec.Compress(rows)
			if err != nil {
				return nil, fmt.Errorf("table: column %q value %d: %w", name, v, err)
			}
			ix.columns[name][v] = p
			ix.domains[name] = append(ix.domains[name], v)
		}
		sort.Slice(ix.domains[name], func(i, j int) bool {
			return ix.domains[name][i] < ix.domains[name][j]
		})
	}
	return ix, nil
}

// SizeBytes reports the compressed footprint of the whole index.
func (ix *Index) SizeBytes() int {
	s := 0
	for _, col := range ix.columns {
		for _, p := range col {
			s += p.SizeBytes()
		}
	}
	return s
}

// Cardinality reports the number of distinct values indexed for col.
func (ix *Index) Cardinality(col string) int { return len(ix.domains[col]) }

// Pred is a column predicate; build with Eq, In, or Range.
type Pred struct {
	col    string
	values []uint32 // matching values (resolved at evaluation)
	lo, hi uint32
	ranged bool
}

// Eq matches col = v.
func Eq(col string, v uint32) Pred { return Pred{col: col, values: []uint32{v}} }

// In matches col ∈ vs.
func In(col string, vs ...uint32) Pred { return Pred{col: col, values: vs} }

// Range matches lo <= col <= hi — evaluated as the union of the
// per-value bitmaps, exactly the paper's range-to-union mapping (§A.2).
func Range(col string, lo, hi uint32) Pred { return Pred{col: col, lo: lo, hi: hi, ranged: true} }

// postings collects the predicate's per-value postings.
func (ix *Index) postings(p Pred) ([]core.Posting, error) {
	col, ok := ix.columns[p.col]
	if !ok {
		return nil, fmt.Errorf("table: column %q not indexed", p.col)
	}
	var out []core.Posting
	if p.ranged {
		dom := ix.domains[p.col]
		i := sort.Search(len(dom), func(i int) bool { return dom[i] >= p.lo })
		for ; i < len(dom) && dom[i] <= p.hi; i++ {
			out = append(out, col[dom[i]])
		}
		return out, nil
	}
	for _, v := range p.values {
		if posting, ok := col[v]; ok {
			out = append(out, posting)
		}
	}
	return out, nil
}

// rowsFor evaluates one predicate to a sorted row-ID list.
func (ix *Index) rowsFor(p Pred) ([]uint32, error) {
	ps, err := ix.postings(p)
	if err != nil {
		return nil, err
	}
	return ops.Union(ps)
}

// Select returns the rows satisfying the conjunction of preds
// (conjunctive query / star join, §A.2). Multi-value predicates are
// resolved by union first, then the per-predicate row sets intersect.
func (ix *Index) Select(preds ...Pred) ([]uint32, error) {
	if len(preds) == 0 {
		return nil, fmt.Errorf("table: Select needs at least one predicate")
	}
	// Single-posting predicates can flow into the intersection natively.
	var single []core.Posting
	var resolved [][]uint32
	for _, p := range preds {
		ps, err := ix.postings(p)
		if err != nil {
			return nil, err
		}
		switch len(ps) {
		case 0:
			return nil, nil // unmatched value: empty result
		case 1:
			single = append(single, ps[0])
		default:
			rows, err := ops.Union(ps)
			if err != nil {
				return nil, err
			}
			resolved = append(resolved, rows)
		}
	}
	var cur []uint32
	if len(single) > 0 {
		var err error
		cur, err = ops.Intersect(single)
		if err != nil {
			return nil, err
		}
	}
	for _, rows := range resolved {
		if cur == nil {
			cur = rows
			continue
		}
		cur = ops.IntersectSorted(cur, rows)
	}
	return cur, nil
}

// SelectAny returns the rows satisfying the disjunction of preds
// (disjunctive query, §A.2).
func (ix *Index) SelectAny(preds ...Pred) ([]uint32, error) {
	var lists [][]uint32
	for _, p := range preds {
		rows, err := ix.rowsFor(p)
		if err != nil {
			return nil, err
		}
		lists = append(lists, rows)
	}
	return ops.UnionMany(lists), nil
}

// Count returns the cardinality of Select without materializing row
// values for the caller.
func (ix *Index) Count(preds ...Pred) (int, error) {
	rows, err := ix.Select(preds...)
	if err != nil {
		return 0, err
	}
	return len(rows), nil
}
