package faultio

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// writeWorkload is the canonical protocol the injector tests drive:
// create, two writes, sync, close, rename, syncdir — the same op
// sequence as an atomic index publish.
func writeWorkload(fs FS, dir string) error {
	tmp := filepath.Join(dir, "f.tmp")
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("hello ")); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Write([]byte("world")); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fs.Rename(tmp, filepath.Join(dir, "f")); err != nil {
		return err
	}
	return fs.SyncDir(dir)
}

func TestRecordCountsOps(t *testing.T) {
	dir := t.TempDir()
	trace, err := Record(OS, func(fs FS) error { return writeWorkload(fs, dir) })
	if err != nil {
		t.Fatalf("clean workload: %v", err)
	}
	want := []Op{OpCreate, OpWrite, OpWrite, OpSync, OpClose, OpRename, OpSyncDir}
	if len(trace) != len(want) {
		t.Fatalf("trace has %d ops, want %d: %v", len(trace), len(want), trace)
	}
	for i, rec := range trace {
		if rec.Op != want[i] {
			t.Fatalf("op %d is %v, want %v", i, rec.Op, want[i])
		}
	}
	if trace[1].Bytes != 6 || trace[2].Bytes != 5 {
		t.Fatalf("write sizes %d,%d want 6,5", trace[1].Bytes, trace[2].Bytes)
	}
}

func TestInjectErrOnNthOp(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("boom")
	for n := 1; n <= 7; n++ {
		in := NewInjector(OS, Fault{Op: OpAny, N: n, Mode: ModeErr, Err: boom, Kill: true})
		err := writeWorkload(in, dir)
		if !errors.Is(err, boom) {
			t.Fatalf("kill point %d: err = %v, want boom", n, err)
		}
		if in.Fired() != 1 {
			t.Fatalf("kill point %d: %d faults fired, want 1", n, in.Fired())
		}
	}
}

func TestKillFailsEverythingAfter(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS, Fault{Op: OpSync, N: 1, Mode: ModeErr, Kill: true})
	if err := writeWorkload(in, dir); !errors.Is(err, ErrInjected) {
		t.Fatalf("workload err = %v, want ErrInjected", err)
	}
	if err := in.Rename("a", "b"); !errors.Is(err, ErrKilled) {
		t.Fatalf("post-kill op err = %v, want ErrKilled", err)
	}
	if _, err := in.ReadFile("a"); !errors.Is(err, ErrKilled) {
		t.Fatalf("post-kill read err = %v, want ErrKilled", err)
	}
}

func TestTornWritePersistsPrefix(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS, Fault{Op: OpWrite, N: 1, Mode: ModeTorn, TornBytes: 3, Kill: true})
	err := writeWorkload(in, dir)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("workload err = %v, want ErrInjected", err)
	}
	got, rerr := os.ReadFile(filepath.Join(dir, "f.tmp"))
	if rerr != nil {
		t.Fatalf("reading torn file: %v", rerr)
	}
	if string(got) != "hel" {
		t.Fatalf("torn file holds %q, want %q", got, "hel")
	}
}

func TestFlipCorruptsInFlight(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS, Fault{Op: OpWrite, N: 2, Mode: ModeFlip, FlipBit: 0})
	if err := writeWorkload(in, dir); err != nil {
		t.Fatalf("flip workload should succeed, got %v", err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte("hello "), "world"...)
	want[6] ^= 1 // bit 0 of the second write's payload
	if string(got) != string(want) {
		t.Fatalf("file holds %q, want %q", got, want)
	}
}

func TestDelayAddsLatencyOnly(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS, Fault{Op: OpSync, N: 1, Mode: ModeDelay, Delay: 30 * time.Millisecond})
	start := time.Now()
	if err := writeWorkload(in, dir); err != nil {
		t.Fatalf("delay workload should succeed, got %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("workload took %s, want >= 30ms of injected latency", d)
	}
}

func TestPlanFromSeedDeterministic(t *testing.T) {
	for seed := int64(1); seed < 50; seed++ {
		a := PlanFromSeed(seed, 20)
		b := PlanFromSeed(seed, 20)
		if len(a) != 1 || a[0] != b[0] {
			t.Fatalf("seed %d: plans differ: %+v vs %+v", seed, a, b)
		}
		if a[0].N < 1 || a[0].N > 20 {
			t.Fatalf("seed %d: op index %d out of range", seed, a[0].N)
		}
	}
}

func TestMutateDeterministicAndBounded(t *testing.T) {
	base := make([]byte, 4096)
	for i := range base {
		base[i] = byte(i)
	}
	for seed := int64(0); seed < 100; seed++ {
		a := Mutate(append([]byte(nil), base...), seed)
		b := Mutate(append([]byte(nil), base...), seed)
		if string(a) != string(b) {
			t.Fatalf("seed %d: mutation not deterministic", seed)
		}
		if len(a) > len(base) {
			t.Fatalf("seed %d: mutation grew data", seed)
		}
		if seed == 0 && string(a) != string(base) {
			t.Fatal("seed 0 must be the identity mutation")
		}
	}
}

func TestCorruptFileDeterministicTailOnly(t *testing.T) {
	dir := t.TempDir()
	base := make([]byte, 4096)
	for i := range base {
		base[i] = byte(i * 7)
	}
	write := func(name string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, append([]byte(nil), base...), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	pa, pb := write("a"), write("b")
	if err := CorruptFile(OS, pa, 42); err != nil {
		t.Fatal(err)
	}
	if err := CorruptFile(OS, pb, 42); err != nil {
		t.Fatal(err)
	}
	ca, _ := os.ReadFile(pa)
	cb, _ := os.ReadFile(pb)
	if string(ca) != string(cb) {
		t.Fatal("same seed corrupted two identical files differently")
	}
	if string(ca) == string(base) {
		t.Fatal("corruption changed nothing")
	}
	if len(ca) != len(base) {
		t.Fatalf("corruption changed length: %d -> %d", len(base), len(ca))
	}
	lo := len(base) * 3 / 4
	if string(ca[:lo]) != string(base[:lo]) {
		t.Fatal("corruption touched bytes outside the tail quarter")
	}
	// The temp file must not linger.
	if _, err := os.Stat(pa + ".corrupt"); !os.IsNotExist(err) {
		t.Fatalf("temp corruption file left behind: %v", err)
	}
}

func TestCorruptFilePreservesOpenMapping(t *testing.T) {
	// The publish-by-rename contract: a reader holding the old file
	// (here just an open fd standing in for an mmap) keeps reading the
	// pristine bytes after corruption lands at the path.
	dir := t.TempDir()
	p := filepath.Join(dir, "idx")
	base := bytes.Repeat([]byte("pristine"), 512)
	if err := os.WriteFile(p, base, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(p)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := CorruptFile(OS, p, 7); err != nil {
		t.Fatal(err)
	}
	old, err := io.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if string(old) != string(base) {
		t.Fatal("pre-corruption handle observed corrupted bytes")
	}
	now, _ := os.ReadFile(p)
	if string(now) == string(base) {
		t.Fatal("path does not serve the corrupted image")
	}
}

func TestCorruptFileRejectsTinyAndMissing(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "tiny")
	if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := CorruptFile(OS, p, 1); err == nil {
		t.Fatal("expected error for tiny file")
	}
	if err := CorruptFile(OS, filepath.Join(dir, "absent"), 1); err == nil {
		t.Fatal("expected error for missing file")
	}
}
