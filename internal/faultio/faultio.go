// Package faultio is a deterministic fault-injection layer over the
// handful of file-system operations the index persistence stack
// performs. Production code takes a faultio.FS (normally faultio.OS,
// which forwards to the os package); robustness tests substitute an
// Injector that fails the Nth operation, tears a write after k bytes,
// flips a bit in flight, or adds latency — all from an explicit fault
// plan or a seed, so every failure a test provokes is replayable.
//
// The package has two halves:
//
//   - FS / File / OS / Injector / Recorder: the operation-level layer.
//     A Recorder counts and sizes the operations a workload performs;
//     a crash matrix then iterates kill points 1..N with Injectors
//     whose faults have Kill set, simulating a process that dies
//     mid-protocol (every op after the fault fails with ErrKilled).
//   - Mutate: the storage-corruption layer. Given a byte image and a
//     seed it applies a deterministic plan of bit flips, zeroed runs,
//     and truncations — the at-rest damage a torn or bit-rotted file
//     exhibits — for fuzzing open paths.
package faultio

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"time"
)

// Op identifies one file-system operation kind.
type Op uint8

const (
	// OpAny matches every operation in a Fault; Injector counts it as
	// the global operation index.
	OpAny Op = iota
	OpCreate
	OpOpen
	OpRead
	OpWrite
	OpSync
	OpClose
	OpRename
	OpRemove
	OpSyncDir
	OpReadFile
)

var opNames = map[Op]string{
	OpAny: "any", OpCreate: "create", OpOpen: "open", OpRead: "read",
	OpWrite: "write", OpSync: "sync", OpClose: "close", OpRename: "rename",
	OpRemove: "remove", OpSyncDir: "syncdir", OpReadFile: "readfile",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// ErrInjected is the default error returned by a triggered fault.
var ErrInjected = errors.New("faultio: injected fault")

// ErrKilled is returned by every operation after a Kill fault fires:
// the simulated process is dead and performs no further I/O.
var ErrKilled = errors.New("faultio: process killed by fault plan")

// File is the writable-file surface the persistence code needs.
type File interface {
	io.Writer
	io.Closer
	// Sync flushes the file's data and metadata to stable storage.
	Sync() error
	// Name reports the path the file was created or opened with.
	Name() string
}

// FS is the file-system surface the persistence code needs. All paths
// are interpreted exactly as the os package would.
type FS interface {
	// Create truncates-or-creates path for writing.
	Create(path string) (File, error)
	// OpenAppend opens-or-creates path for appending: every Write lands
	// at the current end of file. The write-ahead log's open path.
	OpenAppend(path string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes path.
	Remove(path string) error
	// SyncDir fsyncs the directory at dir, making directory entries
	// (renames, creates) durable.
	SyncDir(dir string) error
	// ReadFile reads the whole file at path.
	ReadFile(path string) ([]byte, error)
}

// OS is the pass-through FS backed by the real os package.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Create(path string) (File, error) { return os.Create(path) }

func (osFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(path string) error { return os.Remove(path) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	// Directory fsync is advisory on some platforms; a sync error still
	// matters more than a close error here.
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// Mode selects what a triggered Fault does to its operation.
type Mode uint8

const (
	// ModeErr fails the operation outright with Fault.Err (or
	// ErrInjected) without performing it.
	ModeErr Mode = iota
	// ModeTorn performs only the first TornBytes bytes of a write, then
	// fails. Meaningful for OpWrite only; other ops treat it as ModeErr.
	ModeTorn
	// ModeFlip flips bit FlipBit of the write payload and lets the
	// operation succeed — silent in-flight corruption. Meaningful for
	// OpWrite only; other ops perform normally.
	ModeFlip
	// ModeDelay sleeps Delay, then performs the operation normally.
	ModeDelay
)

// Fault is one rule in an injection plan: when the N-th operation
// matching Op runs, apply Mode.
type Fault struct {
	Op   Op  // operation kind to match (OpAny = every op)
	N    int // 1-based index among matching operations
	Mode Mode

	Err       error         // ModeErr/ModeTorn failure (default ErrInjected)
	TornBytes int           // ModeTorn: bytes of the write that persist
	FlipBit   int           // ModeFlip: bit index within the write payload
	Delay     time.Duration // ModeDelay: added latency

	// Kill marks the fault as fatal: after it triggers, every further
	// operation on the injector fails with ErrKilled, modeling a process
	// crash rather than one flaky syscall.
	Kill bool
}

func (f Fault) err() error {
	if f.Err != nil {
		return f.Err
	}
	return ErrInjected
}

// OpRecord is one operation observed by a Recorder or Injector trace.
type OpRecord struct {
	Op    Op
	Bytes int // payload size for OpWrite/OpRead; 0 otherwise
}

// Injector wraps a base FS and applies a fault plan. It is safe for
// concurrent use; operation counting is serialized internally.
type Injector struct {
	base   FS
	mu     sync.Mutex
	counts map[Op]int
	total  int
	faults []Fault
	killed bool
	trace  []OpRecord
	fired  int
}

// NewInjector wraps base with the given fault plan.
func NewInjector(base FS, faults ...Fault) *Injector {
	return &Injector{base: base, counts: make(map[Op]int), faults: faults}
}

// PlanFromSeed derives a deterministic single-fault plan from seed,
// aimed at a workload of roughly opCount operations: the fault lands on
// a pseudo-random op index with a pseudo-random mode. Fuzzers iterate
// seeds to sweep the space of (kill point × mode) without encoding it.
func PlanFromSeed(seed int64, opCount int) []Fault {
	if opCount < 1 {
		opCount = 1
	}
	rng := rand.New(rand.NewSource(seed))
	f := Fault{
		Op:   OpAny,
		N:    1 + rng.Intn(opCount),
		Kill: rng.Intn(2) == 0,
	}
	switch rng.Intn(3) {
	case 0:
		f.Mode = ModeErr
	case 1:
		f.Mode = ModeTorn
		f.TornBytes = rng.Intn(1 << 12)
	case 2:
		f.Mode = ModeFlip
		f.FlipBit = rng.Intn(1 << 15)
	}
	return []Fault{f}
}

// Fired reports how many faults have triggered so far.
func (in *Injector) Fired() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired
}

// Trace returns the operations observed so far, in order.
func (in *Injector) Trace() []OpRecord {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]OpRecord, len(in.trace))
	copy(out, in.trace)
	return out
}

// before records one operation and resolves the fault, if any, that
// applies to it. The returned fault has already been counted as fired.
func (in *Injector) before(op Op, bytes int) (Fault, bool, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.killed {
		return Fault{}, false, ErrKilled
	}
	in.counts[op]++
	in.total++
	in.trace = append(in.trace, OpRecord{Op: op, Bytes: bytes})
	for _, f := range in.faults {
		n := in.counts[op]
		if f.Op == OpAny {
			n = in.total
		} else if f.Op != op {
			continue
		}
		if n != f.N {
			continue
		}
		in.fired++
		if f.Kill {
			in.killed = true
		}
		return f, true, nil
	}
	return Fault{}, false, nil
}

// Create implements FS.
func (in *Injector) Create(path string) (File, error) {
	f, ok, err := in.before(OpCreate, 0)
	if err != nil {
		return nil, err
	}
	if ok {
		switch f.Mode {
		case ModeDelay:
			time.Sleep(f.Delay)
		default:
			return nil, fmt.Errorf("create %s: %w", path, f.err())
		}
	}
	file, err := in.base.Create(path)
	if err != nil {
		return nil, err
	}
	return &injectFile{in: in, f: file}, nil
}

// OpenAppend implements FS. It counts under OpOpen, so kill matrices
// cover the WAL's append-open distinctly from Create.
func (in *Injector) OpenAppend(path string) (File, error) {
	f, ok, err := in.before(OpOpen, 0)
	if err != nil {
		return nil, err
	}
	if ok {
		switch f.Mode {
		case ModeDelay:
			time.Sleep(f.Delay)
		default:
			return nil, fmt.Errorf("open append %s: %w", path, f.err())
		}
	}
	file, err := in.base.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &injectFile{in: in, f: file}, nil
}

// Rename implements FS.
func (in *Injector) Rename(oldpath, newpath string) error {
	return in.plainOp(OpRename, func() error { return in.base.Rename(oldpath, newpath) })
}

// Remove implements FS.
func (in *Injector) Remove(path string) error {
	return in.plainOp(OpRemove, func() error { return in.base.Remove(path) })
}

// SyncDir implements FS.
func (in *Injector) SyncDir(dir string) error {
	return in.plainOp(OpSyncDir, func() error { return in.base.SyncDir(dir) })
}

// ReadFile implements FS.
func (in *Injector) ReadFile(path string) ([]byte, error) {
	f, ok, err := in.before(OpReadFile, 0)
	if err != nil {
		return nil, err
	}
	if ok {
		switch f.Mode {
		case ModeDelay:
			time.Sleep(f.Delay)
		default:
			return nil, fmt.Errorf("readfile %s: %w", path, f.err())
		}
	}
	return in.base.ReadFile(path)
}

// plainOp runs a no-payload operation under the plan.
func (in *Injector) plainOp(op Op, run func() error) error {
	f, ok, err := in.before(op, 0)
	if err != nil {
		return err
	}
	if ok {
		switch f.Mode {
		case ModeDelay:
			time.Sleep(f.Delay)
		default:
			return fmt.Errorf("%s: %w", op, f.err())
		}
	}
	return run()
}

// injectFile threads a File's operations back through its Injector.
type injectFile struct {
	in *Injector
	f  File
}

func (w *injectFile) Name() string { return w.f.Name() }

func (w *injectFile) Write(p []byte) (int, error) {
	f, ok, err := w.in.before(OpWrite, len(p))
	if err != nil {
		return 0, err
	}
	if !ok {
		return w.f.Write(p)
	}
	switch f.Mode {
	case ModeDelay:
		time.Sleep(f.Delay)
		return w.f.Write(p)
	case ModeTorn:
		k := f.TornBytes
		if k > len(p) {
			k = len(p)
		}
		n, werr := w.f.Write(p[:k])
		if werr != nil {
			return n, werr
		}
		return n, fmt.Errorf("torn write after %d of %d bytes: %w", n, len(p), f.err())
	case ModeFlip:
		if len(p) == 0 {
			return w.f.Write(p)
		}
		flipped := append([]byte(nil), p...)
		bit := f.FlipBit % (len(p) * 8)
		flipped[bit/8] ^= 1 << (bit % 8)
		return w.f.Write(flipped)
	default:
		return 0, fmt.Errorf("write %s: %w", w.f.Name(), f.err())
	}
}

func (w *injectFile) Sync() error {
	return w.in.plainOp(OpSync, w.f.Sync)
}

func (w *injectFile) Close() error {
	return w.in.plainOp(OpClose, w.f.Close)
}

// Record runs workload against base through a fault-free Injector and
// returns the operation trace — the preparation step for a crash
// matrix, which then replays the workload once per kill point.
func Record(base FS, workload func(FS) error) ([]OpRecord, error) {
	in := NewInjector(base)
	err := workload(in)
	return in.Trace(), err
}

// CorruptFile deterministically corrupts the file at path in place —
// the live-corruption step of a chaos run. It flips between one and
// three seed-derived bits, all within the final quarter of the file
// (for a BVIX3 index that is inside the checksummed payload section,
// so a strict open fails with core.ErrChecksum and a degraded open
// salvages everything the damage misses). The corrupted image is
// published like WriteFile publishes an index: written to a sibling
// temp file and renamed over path. A process still serving the old
// bytes through an mmap keeps its intact mapping — the superseded
// inode lives until unmapped — while every subsequent open observes
// the corruption; in-place rewriting would instead scribble over the
// serving process's memory mid-query.
func CorruptFile(fsys FS, path string, seed int64) error {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return fmt.Errorf("faultio: corrupt %s: %w", path, err)
	}
	if len(data) < 16 {
		return fmt.Errorf("faultio: corrupt %s: file too small (%d bytes)", path, len(data))
	}
	rng := rand.New(rand.NewSource(seed))
	lo := len(data) * 3 / 4
	for n := 1 + rng.Intn(3); n > 0; n-- {
		i := lo + rng.Intn(len(data)-lo)
		data[i] ^= 1 << rng.Intn(8)
	}
	tmp := path + ".corrupt"
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("faultio: corrupt %s: %w", path, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("faultio: corrupt %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("faultio: corrupt %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("faultio: corrupt %s: %w", path, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("faultio: corrupt %s: %w", path, err)
	}
	return nil
}

// Mutate applies a deterministic corruption plan derived from seed to
// data, in place, returning the (possibly shorter) result: between one
// and four mutations drawn from bit flips, zeroed runs, and tail
// truncation. Seed 0 returns data unchanged, so fuzzers keep one
// known-clean input. Mutate never grows data.
func Mutate(data []byte, seed int64) []byte {
	if seed == 0 || len(data) == 0 {
		return data
	}
	rng := rand.New(rand.NewSource(seed))
	for n := 1 + rng.Intn(4); n > 0 && len(data) > 0; n-- {
		switch rng.Intn(4) {
		case 0, 1: // bit flip (weighted: the classic single-event upset)
			i := rng.Intn(len(data))
			data[i] ^= 1 << rng.Intn(8)
		case 2: // zeroed run: a lost sector / hole
			i := rng.Intn(len(data))
			run := 1 + rng.Intn(512)
			for j := i; j < len(data) && j < i+run; j++ {
				data[j] = 0
			}
		case 3: // truncation: a torn tail
			data = data[:rng.Intn(len(data)+1)]
		}
	}
	return data
}
