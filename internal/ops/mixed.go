package ops

import (
	"repro/internal/core"
)

// Mixed-representation intersection: a bucketed bitmap (core.BucketProber,
// i.e. Roaring or Roaring+Run) against a skip-pointered compressed list
// (core.Seeker) with neither side decompressed up front. The kernel
// walks the bitmap's 2^16-wide buckets against the list's iterator:
// non-overlapping regions are skipped with one SeekGEQ (whole list
// blocks) or one bucket advance (whole containers), and a matching
// bucket is evaluated in whichever direction is cheaper.

// bucketEnumMax is the bucket cardinality below which a matching bucket
// is enumerated and located in the list by seeking, rather than
// iterating the list's values through BucketContains. 128 is one list
// block: enumerating at most one block's worth of values keeps the
// seek path ahead of block-by-block iteration.
const bucketEnumMax = 128

// mixedIntersect intersects p and q via the bucket×seeker kernel when
// one side is a BucketProber and the other a Seeker, returning
// ok=false when the pairing does not apply. The result is arena-owned.
func mixedIntersect(a *arena, p, q core.Posting) ([]uint32, bool) {
	if bm, ok := p.(core.BucketProber); ok {
		if s, ok2 := q.(core.Seeker); ok2 {
			return intersectBucketSeeker(a, bm, s, q.Len()), true
		}
	}
	if bm, ok := q.(core.BucketProber); ok {
		if s, ok2 := p.(core.Seeker); ok2 {
			return intersectBucketSeeker(a, bm, s, p.Len()), true
		}
	}
	return nil, false
}

// intersectBucketSeeker walks bucket keys and the list iterator in
// tandem. Inside a matching bucket: a small bucket (<= bucketEnumMax)
// enumerates its values into arena scratch and seeks the list for each
// — cost |bucket|·log on the skip array; a large bucket (dense bitmap
// or long run container) iterates the list's values for the bucket's
// key range and probes membership — cost (list values in range) with
// O(1) word/interval probes and no decompression of the bitmap side.
func intersectBucketSeeker(a *arena, bm core.BucketProber, s core.Seeker, listLen int) []uint32 {
	it := s.Iterator()
	out := a.get(min(bm.Len(), listLen))
	v, ok := it.Next()
	nb := bm.NumBuckets()
	for bi := 0; ok && bi < nb; {
		key := bm.BucketKey(bi)
		vh := uint16(v >> 16)
		switch {
		case vh > key:
			// List is past this container: skip whole buckets.
			bi++
		case vh < key:
			// Container is past the list position: one seek skips all
			// list blocks below the bucket's key range.
			v, ok = it.SeekGEQ(uint32(key) << 16)
		default:
			if bn := bm.BucketLen(bi); bn <= bucketEnumMax {
				scratch := bm.AppendBucket(bi, a.get(bn))
				for _, bv := range scratch {
					if v < bv {
						v, ok = it.SeekGEQ(bv)
						if !ok {
							break
						}
					}
					if v == bv {
						out = append(out, bv)
					}
				}
				a.put(scratch)
				if !ok {
					break
				}
			} else {
				for ok && uint16(v>>16) == key {
					if bm.BucketContains(bi, uint16(v)) {
						out = append(out, v)
					}
					v, ok = it.Next()
				}
			}
			bi++
		}
	}
	return out
}
