package ops

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/codecs"
	"repro/internal/core"
)

// boundaryDense builds a list whose Roaring representation exercises
// every container kind and bucket-walk edge:
//
//	bucket 0: small array (enum path), ending exactly at 0xFFFF
//	bucket 1: bitmap container (>4096 values), starting exactly at 0x10000
//	bucket 2: absent (gap the kernel must skip)
//	bucket 3: 4096 consecutive values — run container under Roaring+Run,
//	          max-size array under plain Roaring (probe path either way)
//	bucket 4: array >bucketEnumMax (array probe path)
//	bucket 5: singleton at the bucket's last slot (last-container bound)
func boundaryDense() []uint32 {
	var out []uint32
	for i := uint32(0); i < 100; i++ { // bucket 0 array
		out = append(out, i*3)
	}
	out = append(out, 0xFFFF)           // last value of bucket 0
	for i := uint32(0); i < 5000; i++ { // bucket 1 bitmap
		out = append(out, 0x10000+i*13)
	}
	for i := uint32(0); i < 4096; i++ { // bucket 3 run
		out = append(out, 0x30000+i)
	}
	for i := uint32(0); i < 200; i++ { // bucket 4 array > bucketEnumMax
		out = append(out, 0x40000+i*11)
	}
	out = append(out, 0x5FFFF) // bucket 5 singleton at bucket end
	return out
}

// boundarySparse overlaps every region of boundaryDense partially and
// adds values the kernel must reject: inside the gap bucket, between
// containers, and past the last container.
func boundarySparse() []uint32 {
	var out []uint32
	out = append(out, 0, 5, 6, 0xFFFE, 0xFFFF) // bucket 0: hits 0 and 6 and 0xFFFF
	out = append(out, 0x10000, 0x10001, 0x1000D, 0x1FFFF)
	out = append(out, 0x20000, 0x2ABCD)          // gap bucket: no matches possible
	out = append(out, 0x30000, 0x30FFF, 0x31000) // run start, run end, just past
	out = append(out, 0x40000, 0x40005, 0x4000B)
	out = append(out, 0x5FFFE, 0x5FFFF)
	out = append(out, 0x70000, 0x7FFFF) // beyond the last container
	return out
}

func compressAs(t *testing.T, name string, list []uint32) core.Posting {
	t.Helper()
	c, err := codecs.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.Compress(list)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return p
}

func runMixed(t *testing.T, p, q core.Posting) ([]uint32, bool) {
	t.Helper()
	a := getArena()
	defer putArena(a)
	got, ok := mixedIntersect(a, p, q)
	if !ok {
		return nil, false
	}
	return append([]uint32(nil), got...), true
}

func TestMixedKernelContainerBoundaries(t *testing.T) {
	dense := boundaryDense()
	sparse := boundarySparse()
	want := IntersectSorted(dense, sparse)
	if len(want) == 0 {
		t.Fatal("degenerate fixture: empty expected intersection")
	}
	for _, bmName := range []string{"Roaring", "Roaring+Run"} {
		for _, listName := range []string{"SIMDBP128*", "VB", "SIMDPforDelta*"} {
			bp := compressAs(t, bmName, dense)
			lp := compressAs(t, listName, sparse)
			if _, isBucket := bp.(core.BucketProber); !isBucket {
				t.Fatalf("%s posting does not implement BucketProber", bmName)
			}
			if _, isSeeker := lp.(core.Seeker); !isSeeker {
				t.Fatalf("%s posting does not implement Seeker", listName)
			}
			got, ok := runMixed(t, bp, lp)
			if !ok {
				t.Fatalf("%s×%s: kernel did not apply", bmName, listName)
			}
			if !equalU32(got, want) {
				t.Fatalf("%s×%s: got %v\nwant %v", bmName, listName, got, want)
			}
			// Operand order must not matter.
			got, ok = runMixed(t, lp, bp)
			if !ok || !equalU32(got, want) {
				t.Fatalf("%s×%s reversed: got %v (ok=%v)\nwant %v", listName, bmName, got, ok, want)
			}
		}
	}
}

// TestMixedKernelEdgeCases: empty intersections, containment, and the
// 0xFFFF/0x10000 bucket seam in isolation.
func TestMixedKernelEdgeCases(t *testing.T) {
	cases := []struct {
		name          string
		dense, sparse []uint32
	}{
		{"disjoint-buckets",
			[]uint32{1, 2, 3, 0x10000, 0x10001},
			[]uint32{0x20000, 0x20001, 0x30000}},
		{"interleaved-no-hits",
			[]uint32{0, 2, 4, 6, 8},
			[]uint32{1, 3, 5, 7, 9}},
		{"sparse-inside-run",
			seq(0x10000, 0x18000),
			[]uint32{0x10000, 0x14000, 0x17FFF}},
		{"bucket-seam",
			[]uint32{0xFFFE, 0xFFFF, 0x10000, 0x10001},
			[]uint32{0xFFFF, 0x10000}},
		{"list-ends-mid-bitmap",
			seq(0, 0x3000),
			[]uint32{5, 10, 0x100}},
		{"bitmap-ends-before-list",
			[]uint32{5, 10, 0x100},
			append(seq(0, 0x300), 0x90000, 0x90001)},
	}
	for _, tc := range cases {
		want := IntersectSorted(tc.dense, tc.sparse)
		bp := compressAs(t, "Roaring", tc.dense)
		lp := compressAs(t, "SIMDBP128*", tc.sparse)
		got, ok := runMixed(t, bp, lp)
		if !ok {
			t.Fatalf("%s: kernel did not apply", tc.name)
		}
		if !equalU32(normalizeQ(got), normalizeQ(want)) {
			t.Fatalf("%s: got %v want %v", tc.name, got, want)
		}
	}
}

func seq(lo, hi uint32) []uint32 {
	out := make([]uint32, 0, hi-lo)
	for v := lo; v < hi; v++ {
		out = append(out, v)
	}
	return out
}

// TestMixedKernelRandomized cross-checks the kernel against the slice
// reference over random bucket layouts, both dense codecs, and skewed
// list sizes.
func TestMixedKernelRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for iter := 0; iter < 40; iter++ {
		nBuckets := 1 + r.Intn(5)
		var dense []uint32
		for b := 0; b < nBuckets; b++ {
			base := uint32(r.Intn(8)) << 16
			switch r.Intn(3) {
			case 0: // small array
				for i := 0; i < 1+r.Intn(100); i++ {
					dense = append(dense, base+uint32(r.Intn(1<<16)))
				}
			case 1: // bitmap-sized
				for i := 0; i < 5000; i++ {
					dense = append(dense, base+uint32(r.Intn(1<<16)))
				}
			case 2: // run
				start := uint32(r.Intn(1 << 15))
				for i := uint32(0); i < 2000; i++ {
					dense = append(dense, base+start+i)
				}
			}
		}
		sort.Slice(dense, func(i, j int) bool { return dense[i] < dense[j] })
		dense = dedupU32(dense)
		sparse := sampleFrom(r, dense, 1+r.Intn(200))
		want := IntersectSorted(dense, sparse)

		bmName := "Roaring"
		if iter%2 == 1 {
			bmName = "Roaring+Run"
		}
		bp := compressAs(t, bmName, dense)
		lp := compressAs(t, "SIMDBP128*", sparse)
		got, ok := runMixed(t, bp, lp)
		if !ok {
			t.Fatalf("iter %d: kernel did not apply", iter)
		}
		if !equalU32(normalizeQ(got), normalizeQ(want)) {
			t.Fatalf("iter %d (%s): got %d values, want %d\ngot  %v\nwant %v",
				iter, bmName, len(got), len(want), got, want)
		}
	}
}

func dedupU32(a []uint32) []uint32 {
	out := a[:0]
	for i, v := range a {
		if i == 0 || v != a[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// TestEngineUsesMixedKernel pins the wiring: a dense Roaring × sparse
// blocked-list AND through the engine returns the reference result (the
// mixed kernel path, since the pair shares no native Intersecter).
func TestEngineUsesMixedKernel(t *testing.T) {
	dense := boundaryDense()
	sparse := boundarySparse()
	want := IntersectSorted(dense, sparse)
	ps := []core.Posting{
		compressAs(t, "Roaring", dense),
		compressAs(t, "SIMDBP128*", sparse),
	}
	for name, eng := range map[string]*Engine{
		"default": NewEngine(EngineConfig{}),
		"serial":  NewEngine(EngineConfig{Parallelism: 1}),
	} {
		got, err := eng.Eval(Expr{Op: OpAnd, Args: []Expr{Leaf(0), Leaf(1)}}, ps)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !equalU32(normalizeQ(got), normalizeQ(want)) {
			t.Fatalf("%s: got %v want %v", name, got, want)
		}
	}
}
