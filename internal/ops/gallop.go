package ops

// Galloping (exponential-probe) SvS intersection of uncompressed sorted
// lists, per Lemire/Boytsov/Kurz ("SIMD Compression and the
// Intersection of Sorted Integers"): iterate the small side and locate
// each value in the large side by doubling probes from the previous
// position plus a binary search over the bracketed range. Work is
// |small|·log(gap) instead of |small|+|large|, which dominates for
// highly skewed pairs but loses to the linear merge when sizes are
// comparable (the probes are branchy and cache-hostile).

// gallopRatio is the size ratio at which the engine switches from
// linear merge to galloping. The crossover solves
// |small|·log2|large| < |small|+|large|: with list lengths up to ~2^24
// the log factor is ≤ 24, so any ratio comfortably above that pays;
// 32 adds margin for galloping's worse constant factor (documented in
// DESIGN §8).
const gallopRatio = 32

// gallopGEQ returns the smallest index k >= lo with a[k] >= target
// (len(a) when none), probing exponentially from lo and then binary
// searching the bracketed window. Resuming from the previous match's
// position makes a full intersection adaptive: sequential locality
// costs O(1) per step, wide jumps cost the log of the jump only.
func gallopGEQ(a []uint32, lo int, target uint32) int {
	n := len(a)
	if lo >= n || a[lo] >= target {
		return lo
	}
	bound := 1
	for lo+bound < n && a[lo+bound] < target {
		bound <<= 1
	}
	// a[lo+bound/2] < target; the answer is in (lo+bound/2, lo+bound].
	i, j := lo+bound/2+1, min(lo+bound+1, n)
	for i < j {
		m := int(uint(i+j) >> 1)
		if a[m] < target {
			i = m + 1
		} else {
			j = m
		}
	}
	return i
}

// intersectAdaptiveInPlace intersects cur with b under the same
// aliasing contract as intersectSortedInPlace (result written into
// cur's prefix, cur consumed): skewed pairs gallop, similar sizes take
// the linear merge. Both directions are safe in place — the write
// index never passes the scan position in cur.
func intersectAdaptiveInPlace(cur, b []uint32) []uint32 {
	switch {
	case len(b) > gallopRatio*len(cur):
		return gallopFilter(cur, b)
	case len(cur) > gallopRatio*len(b):
		return gallopFilterRev(cur, b)
	default:
		return intersectSortedInPlace(cur, b)
	}
}

// gallopFilter keeps the elements of cur present in the much larger b.
func gallopFilter(cur, b []uint32) []uint32 {
	out := cur[:0]
	j := 0
	for _, v := range cur {
		j = gallopGEQ(b, j, v)
		if j == len(b) {
			break
		}
		if b[j] == v {
			out = append(out, v)
			j++
		}
	}
	return out
}

// gallopFilterRev keeps the elements of the much smaller b present in
// cur, still writing into cur's prefix: after k matches the write index
// is k while the gallop position in cur is at least k, so reads stay
// ahead of writes.
func gallopFilterRev(cur, b []uint32) []uint32 {
	out := cur[:0]
	i := 0
	for _, v := range b {
		i = gallopGEQ(cur, i, v)
		if i == len(cur) {
			break
		}
		if cur[i] == v {
			out = append(out, v)
			i++
		}
	}
	return out
}
