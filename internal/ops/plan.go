package ops

import (
	"sort"

	"repro/internal/core"
)

// Expr is a query plan over a set of postings: the benchmark queries
// combine intersection and union, e.g. SSB Q3.4 is
// (L1 ∪ L2) ∩ (L3 ∪ L4) ∩ L5 (§6.1).
type Expr struct {
	Op   OpKind
	Leaf int // postings index when Op == OpLeaf
	Args []Expr
}

// OpKind enumerates plan node types.
type OpKind int

const (
	// OpLeaf references a posting by index.
	OpLeaf OpKind = iota
	// OpAnd intersects its children.
	OpAnd
	// OpOr unions its children.
	OpOr
)

// Leaf builds a leaf node.
func Leaf(i int) Expr { return Expr{Op: OpLeaf, Leaf: i} }

// And builds an intersection node.
func And(args ...Expr) Expr { return Expr{Op: OpAnd, Args: args} }

// Or builds a union node.
func Or(args ...Expr) Expr { return Expr{Op: OpOr, Args: args} }

// Eval evaluates the plan. Nodes whose children are all leaves run on
// the compressed representations (native bitmap AND/OR, SvS for lists);
// inner results are uncompressed lists combined by merging, matching
// the paper's implementation (§B.1: results are uncompressed so they
// can feed further operations).
func Eval(e Expr, postings []core.Posting) ([]uint32, error) {
	switch e.Op {
	case OpLeaf:
		return postings[e.Leaf].Decompress(), nil
	case OpAnd:
		if leaves, ok := allLeaves(e.Args); ok {
			return Intersect(pick(postings, leaves))
		}
		// Mixed node: evaluate the sub-expressions to lists, then probe
		// the remaining compressed leaves against the running result
		// (skip pointers for lists, decompress-and-merge for bitmaps).
		var lists [][]uint32
		var leafPs []core.Posting
		for _, a := range e.Args {
			if a.Op == OpLeaf {
				leafPs = append(leafPs, postings[a.Leaf])
				continue
			}
			r, err := Eval(a, postings)
			if err != nil {
				return nil, err
			}
			lists = append(lists, r)
		}
		sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
		cur := lists[0]
		for _, l := range lists[1:] {
			cur = IntersectSorted(cur, l)
		}
		sort.SliceStable(leafPs, func(i, j int) bool { return leafPs[i].Len() < leafPs[j].Len() })
		for _, p := range leafPs {
			if len(cur) == 0 {
				return cur, nil
			}
			if s, ok := p.(core.Seeker); ok {
				if p.Len() < mergeRatio*len(cur) {
					cur = mergeProbe(cur, s.Iterator())
				} else {
					cur = skipProbe(cur, s.Iterator())
				}
				continue
			}
			if lp, ok := p.(core.ListProber); ok {
				cur = lp.IntersectList(cur)
				continue
			}
			cur = IntersectSorted(cur, p.Decompress())
		}
		return cur, nil
	default: // OpOr
		if leaves, ok := allLeaves(e.Args); ok {
			return Union(pick(postings, leaves))
		}
		parts, err := evalArgs(e.Args, postings)
		if err != nil {
			return nil, err
		}
		return UnionMany(parts), nil
	}
}

func allLeaves(args []Expr) ([]int, bool) {
	idx := make([]int, len(args))
	for i, a := range args {
		if a.Op != OpLeaf {
			return nil, false
		}
		idx[i] = a.Leaf
	}
	return idx, true
}

func pick(postings []core.Posting, idx []int) []core.Posting {
	out := make([]core.Posting, len(idx))
	for i, k := range idx {
		out[i] = postings[k]
	}
	return out
}

func evalArgs(args []Expr, postings []core.Posting) ([][]uint32, error) {
	out := make([][]uint32, len(args))
	for i, a := range args {
		r, err := Eval(a, postings)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}
