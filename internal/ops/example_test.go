package ops_test

import (
	"fmt"
	"log"

	"repro/internal/codecs"
	"repro/internal/core"
	"repro/internal/ops"
)

func mustCompress(name string, values []uint32) core.Posting {
	c, err := codecs.ByName(name)
	if err != nil {
		log.Fatal(err)
	}
	p, err := c.Compress(values)
	if err != nil {
		log.Fatal(err)
	}
	return p
}

// ExampleIntersect runs SvS over three compressed lists.
func ExampleIntersect() {
	a := mustCompress("VB", []uint32{1, 5, 9, 12})
	b := mustCompress("VB", []uint32{5, 9, 11, 12})
	c := mustCompress("VB", []uint32{2, 5, 12})
	r, err := ops.Intersect([]core.Posting{a, b, c})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(r)
	// Output: [5 12]
}

// ExampleEval evaluates SSB Q3.4's plan shape (L1 ∪ L2) ∩ L3.
func ExampleEval() {
	ps := []core.Posting{
		mustCompress("Roaring", []uint32{1, 2}),
		mustCompress("Roaring", []uint32{3, 4}),
		mustCompress("Roaring", []uint32{2, 3, 9}),
	}
	plan := ops.And(ops.Or(ops.Leaf(0), ops.Leaf(1)), ops.Leaf(2))
	r, err := ops.Eval(plan, ps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(r)
	// Output: [2 3]
}

// ExampleUnionMany merges several plain sorted lists.
func ExampleUnionMany() {
	fmt.Println(ops.UnionMany([][]uint32{{1, 4}, {2, 4}, {3}}))
	// Output: [1 2 3 4]
}
