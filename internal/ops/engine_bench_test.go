package ops

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/codecs"
	"repro/internal/core"
)

// benchPlans are the query shapes from the paper's query workloads: a
// 2-term conjunction (Fig.8), a multi-term disjunction (Fig.9), and an
// SSB-style mixed plan (AND of dimension-filter ORs, Fig.11/12).
var benchPlans = []struct {
	name  string
	terms int
	plan  Expr
}{
	{"AND2", 2, And(Leaf(0), Leaf(1))},
	{"OR4", 4, Or(Leaf(0), Leaf(1), Leaf(2), Leaf(3))},
	{"SSBMixed", 5, And(Or(Leaf(0), Leaf(1)), Or(Leaf(2), Leaf(3)), Leaf(4))},
}

// benchPostings builds deterministic posting lists for one codec: one
// selective list (the "dimension filter") and several larger ones, the
// size skew that makes cost ordering matter.
func benchPostings(b *testing.B, codec string, terms int) []core.Posting {
	b.Helper()
	c, err := codecs.ByName(codec)
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(42))
	ps := make([]core.Posting, terms)
	for i := range ps {
		n := 20000
		if i == terms-1 {
			n = 500 // selective last term
		}
		ps[i], err = c.Compress(randomSorted(r, n))
		if err != nil {
			b.Fatal(err)
		}
	}
	return ps
}

// BenchmarkEngineVsSerial compares the serial reference evaluator with
// the pooled engine across codec families and plan shapes. Run with
// -benchmem; the headline claim is allocs/op on SSBMixed.
func BenchmarkEngineVsSerial(b *testing.B) {
	ev := NewEngine(EngineConfig{Parallelism: 1}) // isolate pooling from parallelism
	for _, codec := range []string{"Roaring", "SIMDBP128*", "WAH"} {
		for _, pl := range benchPlans {
			ps := benchPostings(b, codec, pl.terms)
			for _, impl := range []struct {
				name string
				eval func(Expr, []core.Posting) ([]uint32, error)
			}{
				{"Serial", Eval},
				{"Engine", ev.Eval},
			} {
				b.Run(fmt.Sprintf("%s/%s/%s", codec, pl.name, impl.name), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						out, err := impl.eval(pl.plan, ps)
						if err != nil {
							b.Fatal(err)
						}
						sinkU32 = out
					}
				})
			}
		}
	}
}

// BenchmarkEngineParallel measures the parallel fan-out against the
// same engine running serially, on a wide SSB-style plan.
func BenchmarkEngineParallel(b *testing.B) {
	plan := And(Or(Leaf(0), Leaf(1), Leaf(2)), Or(Leaf(3), Leaf(4), Leaf(5)), Or(Leaf(6), Leaf(7)))
	ps := benchPostings(b, "Roaring", 8)
	for _, cfg := range []struct {
		name string
		ev   *Engine
	}{
		{"Serial", NewEngine(EngineConfig{Parallelism: 1})},
		{"Parallel", NewEngine(EngineConfig{ParallelMinWork: 1})},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, err := cfg.ev.Eval(plan, ps)
				if err != nil {
					b.Fatal(err)
				}
				sinkU32 = out
			}
		})
	}
}

var sinkU32 []uint32

// TestEngineAllocRegression pins the steady-state allocation count of
// engine evaluation: after warm-up, an Eval of the SSB-style plan must
// stay within a small constant budget (result copy + a bounded number
// of codec-internal allocations), and at most half the serial
// evaluator's count — the ISSUE's ≥2x reduction criterion.
func TestEngineAllocRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc counting is timing-insensitive but slow")
	}
	plan := And(Or(Leaf(0), Leaf(1)), Or(Leaf(2), Leaf(3)), Leaf(4))
	for _, codec := range []string{"SIMDBP128*", "Roaring", "WAH"} {
		c, err := codecs.ByName(codec)
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(9))
		ps := make([]core.Posting, 5)
		for i := range ps {
			n := 8000
			if i == 4 {
				n = 300
			}
			ps[i], err = c.Compress(randomSorted(r, n))
			if err != nil {
				t.Fatal(err)
			}
		}
		ev := NewEngine(EngineConfig{Parallelism: 1})
		run := func(eval func(Expr, []core.Posting) ([]uint32, error)) float64 {
			// Warm the pools before counting.
			for i := 0; i < 3; i++ {
				if _, err := eval(plan, ps); err != nil {
					t.Fatal(err)
				}
			}
			return testing.AllocsPerRun(50, func() {
				out, err := eval(plan, ps)
				if err != nil {
					t.Fatal(err)
				}
				sinkU32 = out
			})
		}
		engine, serial := run(ev.Eval), run(Eval)
		t.Logf("%s: engine %.1f allocs/op, serial %.1f allocs/op", codec, engine, serial)
		// Budget: 1 result copy + arena churn + codec-internal scratch.
		// WAH's native span algebra allocates its output words internally
		// on every AND/OR in both evaluators, so its floor is higher and
		// the ≥2x criterion applies to the families where the evaluator —
		// not the codec — owns the decode buffers.
		budget := map[string]float64{"SIMDBP128*": 8, "Roaring": 16, "WAH": 48}[codec]
		if engine > budget {
			t.Errorf("%s: engine allocates %.1f/op, budget %.1f", codec, engine, budget)
		}
		if codec == "WAH" {
			if engine > serial {
				t.Errorf("WAH: engine %.1f allocs/op regressed over serial %.1f", engine, serial)
			}
		} else if engine > serial/2 {
			t.Errorf("%s: engine %.1f allocs/op is not ≥2x below serial %.1f", codec, engine, serial)
		}
	}
}
