package ops

import (
	"sync"

	"repro/internal/core"
)

// Scratch retention caps for pooled arenas: a single huge query must not
// pin an unbounded amount of decode scratch in the pool forever.
const (
	arenaMaxRetainElems = 1 << 21 // 8 MiB of uint32 scratch per pooled arena
	arenaMaxRetainBufs  = 64
)

// arena is the per-query scratch allocator behind Engine and Intersect.
// Decode and merge targets are drawn from a free list that put refills,
// so steady-state query evaluation performs no heap allocation. The
// postings/lists/children fields are stack-disciplined collection
// scratch for plan nodes: a node records the current length, appends its
// entries, and truncates back on the way out, which keeps reuse safe
// under recursion.
//
// An arena is NOT safe for concurrent use; the engine hands each
// parallel worker its own arena and copies results across the boundary.
type arena struct {
	free     [][]uint32 // reusable buffers, length reset by get
	retained int        // sum of caps across free

	postings []core.Posting // operand scratch (stack-disciplined)
	lists    [][]uint32     // list-collection scratch (stack-disciplined)
	children []childRef     // plan-child ordering scratch (stack-disciplined)
	heads    []heapHead     // k-way merge heap scratch (leaf-level use only)
}

// childRef orders a plan node's children by estimated cost without
// mutating the shared Expr tree.
type childRef struct {
	cost int
	idx  int
}

var arenaPool = sync.Pool{New: func() any { return new(arena) }}

func getArena() *arena { return arenaPool.Get().(*arena) }

// putArena trims retained scratch to the caps above and returns a to the
// pool. Collection scratch is truncated but keeps its capacity.
func putArena(a *arena) {
	for len(a.free) > 0 && (len(a.free) > arenaMaxRetainBufs || a.retained > arenaMaxRetainElems) {
		last := a.free[len(a.free)-1]
		a.retained -= cap(last)
		a.free[len(a.free)-1] = nil
		a.free = a.free[:len(a.free)-1]
	}
	a.postings = a.postings[:0]
	a.lists = a.lists[:0]
	a.children = a.children[:0]
	arenaPool.Put(a)
}

// get returns a zero-length buffer with capacity >= hint, preferring the
// smallest free buffer that fits. The caller owns the buffer until it
// either puts it back or hands ownership up the plan tree.
func (a *arena) get(hint int) []uint32 {
	best := -1
	for i, b := range a.free {
		if cap(b) >= hint && (best < 0 || cap(b) < cap(a.free[best])) {
			best = i
		}
	}
	if best >= 0 {
		buf := a.free[best]
		a.retained -= cap(buf)
		a.free[best] = a.free[len(a.free)-1]
		a.free[len(a.free)-1] = nil
		a.free = a.free[:len(a.free)-1]
		return buf[:0]
	}
	if hint < 64 {
		hint = 64
	}
	return make([]uint32, 0, hint)
}

// put returns buf's backing array to the free list. buf must not be
// touched afterwards — that includes slices aliasing it, such as the
// in-place results of skipProbe/mergeProbe/intersectSortedInPlace, so a
// buffer and its shrunk alias count as ONE ownership, never two.
// Adopting fresh heap slices (native codec op results) is allowed and
// grows the free list.
func (a *arena) put(buf []uint32) {
	if cap(buf) == 0 {
		return
	}
	a.retained += cap(buf)
	a.free = append(a.free, buf)
}
