package ops

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/codecs"
	"repro/internal/core"
)

// opsInput generates a random pair of sorted sets plus a codec choice
// per operand, so quick exercises same-codec, mixed-codec, and
// mixed-family operator paths together.
type opsInput struct {
	A, B           []uint32
	CodecA, CodecB string
}

// Generate implements quick.Generator.
func (opsInput) Generate(r *rand.Rand, size int) reflect.Value {
	names := codecs.Names()
	in := opsInput{
		A:      randomSorted(r, r.Intn(size*20+1)),
		B:      randomSorted(r, r.Intn(size*20+1)),
		CodecA: names[r.Intn(len(names))],
		CodecB: names[r.Intn(len(names))],
	}
	return reflect.ValueOf(in)
}

func randomSorted(r *rand.Rand, n int) []uint32 {
	seen := map[uint32]struct{}{}
	for len(seen) < n {
		seen[uint32(r.Intn(1<<18))] = struct{}{}
	}
	out := make([]uint32, 0, n)
	for v := range seen {
		out = append(out, v)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// TestQuickOpsMatchReference: Intersect and Union over arbitrary codec
// pairings equal the reference set algebra.
func TestQuickOpsMatchReference(t *testing.T) {
	prop := func(in opsInput) bool {
		ca, err := codecs.ByName(in.CodecA)
		if err != nil {
			return false
		}
		cb, err := codecs.ByName(in.CodecB)
		if err != nil {
			return false
		}
		pa, err := ca.Compress(in.A)
		if err != nil {
			return false
		}
		pb, err := cb.Compress(in.B)
		if err != nil {
			return false
		}
		and, err := Intersect([]core.Posting{pa, pb})
		if err != nil {
			return false
		}
		if !equalU32(normalizeQ(and), IntersectSorted(in.A, in.B)) {
			return false
		}
		or, err := Union([]core.Posting{pa, pb})
		if err != nil {
			return false
		}
		return equalU32(normalizeQ(or), UnionSorted(in.A, in.B))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func normalizeQ(a []uint32) []uint32 {
	if a == nil {
		return []uint32{}
	}
	return a
}

// planInput generates a random plan over a random mixed-codec posting
// set, seeding the engine-vs-serial property below.
type planInput struct {
	Seed int64
}

// Generate implements quick.Generator.
func (planInput) Generate(r *rand.Rand, size int) reflect.Value {
	return reflect.ValueOf(planInput{Seed: r.Int63()})
}

// TestQuickEngineMatchesSerial: for random Expr trees over mixed codec
// families, the pooled parallel engine and the serial reference are
// extensionally equal. Parallelism is forced (ParallelMinWork=1) so the
// fan-out path is the one under test; with -race this doubles as the
// data-race check on the worker pool.
func TestQuickEngineMatchesSerial(t *testing.T) {
	ev := NewEngine(EngineConfig{Parallelism: 4, ParallelMinWork: 1})
	prop := func(in planInput) bool {
		r := rand.New(rand.NewSource(in.Seed))
		ps := randomPostings(t, r, 2+r.Intn(5), 300)
		plan := randomExpr(r, len(ps), 3)
		want, err := Eval(plan, ps)
		if err != nil {
			return false
		}
		got, err := ev.Eval(plan, ps)
		if err != nil {
			return false
		}
		return equalU32(normalizeQ(got), normalizeQ(want))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
