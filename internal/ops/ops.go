// Package ops implements the query operators the paper measures on top
// of compressed postings: SvS intersection with skip pointers (§4.3,
// Appendix B), merge-based intersection, k-way union, and the
// combined intersection/union query plans of the SSB and TPCH workloads
// (e.g. (L1 ∪ L2) ∩ (L3 ∪ L4) ∩ L5).
package ops

import (
	"errors"
	"sort"

	"repro/internal/core"
)

// IntersectSorted is the reference merge intersection of plain lists.
func IntersectSorted(a, b []uint32) []uint32 {
	out := make([]uint32, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// UnionSorted is the reference merge union of plain lists.
func UnionSorted(a, b []uint32) []uint32 {
	out := make([]uint32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i >= len(a) || a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// mergeRatio is the size ratio below which SvS switches to merge-based
// intersection (paper footnote 8: "if two lists are of similar size, we
// switch to merge-based intersection").
const mergeRatio = 16

// Intersect computes the intersection of k compressed postings,
// covering the paper's two native cases plus their mixture (§B.1):
//
//   - same-codec bitmaps AND natively on the compressed form, then the
//     running (uncompressed) result merges with each remaining operand;
//   - list postings use SvS: decompress the shortest list and probe the
//     longer ones via skip pointers, switching to a merge when sizes
//     are similar (footnote 8);
//   - mixed families fall back to decompress-and-merge for the
//     non-seekable side ("bitmap vs list", §B.1).
func Intersect(postings []core.Posting) ([]uint32, error) {
	switch len(postings) {
	case 0:
		return nil, nil
	case 1:
		return postings[0].Decompress(), nil
	}
	// The heavy lifting shares the engine's pooled arena: the operand
	// sort and the initial decompression of the smallest operand reuse
	// pooled scratch instead of allocating per call (the probe loop
	// itself lives in intersectInto / probeAnd, shared with Engine).
	// The result is copied out so callers own an exact-size slice and
	// the scratch can return to the pool.
	a := getArena()
	cur, err := intersectInto(a, postings)
	if err != nil {
		putArena(a)
		return nil, err
	}
	out := make([]uint32, len(cur))
	copy(out, cur)
	a.put(cur)
	putArena(a)
	return out, nil
}

// skipProbe keeps the elements of cur present in it, probing via SeekGEQ.
//
// Aliasing contract: the result is written into cur's own prefix
// (out := cur[:0]); the write index never passes the read index, so the
// filter is safe in place, and the returned slice shares cur's backing
// array. Callers must treat cur as consumed — in arena terms, cur and
// the result are ONE buffer, returned to the pool at most once.
func skipProbe(cur []uint32, it core.Iterator) []uint32 {
	out := cur[:0]
	for _, v := range cur {
		got, ok := it.SeekGEQ(v)
		if !ok {
			break
		}
		if got == v {
			out = append(out, v)
		}
	}
	return out
}

// mergeProbe advances both sides in lockstep (merge-based intersection
// for similar-size lists). It filters cur in place under the same
// aliasing contract as skipProbe: the returned slice is a prefix of
// cur's backing array and cur is consumed.
func mergeProbe(cur []uint32, it core.Iterator) []uint32 {
	out := cur[:0]
	w, ok := it.Next()
	for _, v := range cur {
		for ok && w < v {
			w, ok = it.Next()
		}
		if !ok {
			break
		}
		if w == v {
			out = append(out, v)
		}
	}
	return out
}

// Union computes the union of k compressed postings. Same-codec bitmap
// pairs OR natively on the compressed form; everything else is
// decompressed and merged linearly (§4.3), which also covers mixed
// families.
func Union(postings []core.Posting) ([]uint32, error) {
	switch len(postings) {
	case 0:
		return nil, nil
	case 1:
		return postings[0].Decompress(), nil
	}
	var cur []uint32
	haveCur := false
	rest := postings[1:]
	if u, ok := postings[0].(core.Unioner); ok {
		r, err := u.UnionWith(postings[1])
		switch {
		case err == nil:
			cur = r
			haveCur = true
			rest = postings[2:]
		case errors.Is(err, core.ErrIncompatible):
			// Mixed operands: generic path below.
		default:
			return nil, err
		}
	}
	lists := make([][]uint32, 0, len(rest)+1)
	if haveCur {
		if len(rest) == 0 {
			return cur, nil
		}
		lists = append(lists, cur)
	} else {
		lists = append(lists, postings[0].Decompress())
	}
	for _, p := range rest {
		lists = append(lists, p.Decompress())
	}
	return UnionMany(lists), nil
}

// heapWidth is the operand count above which UnionMany switches from
// pairwise merging (O(N·k) worst case) to a k-way heap merge
// (O(N log k)).
const heapWidth = 8

// UnionMany merges k sorted lists: pairwise smallest-first for few
// lists, a k-way heap merge for many (wide disjunctive queries).
func UnionMany(lists [][]uint32) []uint32 {
	switch len(lists) {
	case 0:
		return nil
	case 1:
		out := make([]uint32, len(lists[0]))
		copy(out, lists[0])
		return out
	}
	if len(lists) >= heapWidth {
		return unionHeapMerge(lists)
	}
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	cur := UnionSorted(lists[0], lists[1])
	for _, l := range lists[2:] {
		cur = UnionSorted(cur, l)
	}
	return cur
}

// heapHead is one cursor in the k-way merge heap.
type heapHead struct {
	value uint32
	list  int
	pos   int
}

// unionHeapMerge runs an N log k k-way merge with duplicate collapsing.
func unionHeapMerge(lists [][]uint32) []uint32 {
	h := make([]heapHead, 0, len(lists))
	total := 0
	for i, l := range lists {
		total += len(l)
		if len(l) > 0 {
			h = append(h, heapHead{value: l[0], list: i})
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(h, i)
	}
	out := make([]uint32, 0, total)
	for len(h) > 0 {
		top := h[0]
		if n := len(out); n == 0 || out[n-1] != top.value {
			out = append(out, top.value)
		}
		l := lists[top.list]
		if top.pos+1 < len(l) {
			h[0] = heapHead{value: l[top.pos+1], list: top.list, pos: top.pos + 1}
		} else {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		siftDown(h, 0)
	}
	return out
}

func siftDown(h []heapHead, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && h[l].value < h[small].value {
			small = l
		}
		if r < len(h) && h[r].value < h[small].value {
			small = r
		}
		if small == i {
			return
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
}
