package ops

import (
	"math/rand"
	"testing"

	"repro/internal/codecs"
	"repro/internal/core"
	"repro/internal/gen"
)

func compressAll(t *testing.T, c core.Codec, lists [][]uint32) []core.Posting {
	t.Helper()
	out := make([]core.Posting, len(lists))
	for i, l := range lists {
		p, err := c.Compress(l)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		out[i] = p
	}
	return out
}

func refIntersectMany(lists [][]uint32) []uint32 {
	cur := append([]uint32(nil), lists[0]...)
	for _, l := range lists[1:] {
		cur = IntersectSorted(cur, l)
	}
	return cur
}

// TestAllCodecsAgreeOnIntersection is the cross-codec differential
// test: every one of the 24 methods must produce the same AND result.
func TestAllCodecsAgreeOnIntersection(t *testing.T) {
	lists := [][]uint32{
		gen.Uniform(500, 1<<14, 1),
		gen.Uniform(5000, 1<<14, 2),
		gen.MarkovN(3000, 1<<14, 8, 3),
	}
	want := refIntersectMany(lists)
	if len(want) == 0 {
		t.Fatal("test workload should have a non-empty intersection")
	}
	for _, c := range codecs.All() {
		ps := compressAll(t, c, lists)
		got, err := Intersect(ps)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if !equalU32(got, want) {
			t.Errorf("%s: intersection mismatch: got %d values, want %d",
				c.Name(), len(got), len(want))
		}
	}
}

// TestAllCodecsAgreeOnUnion is the OR differential test.
func TestAllCodecsAgreeOnUnion(t *testing.T) {
	lists := [][]uint32{
		gen.Uniform(400, 1<<17, 4),
		gen.MarkovN(2000, 1<<17, 8, 5),
		gen.Uniform(3000, 1<<17, 6),
	}
	want := UnionMany(lists)
	for _, c := range codecs.All() {
		ps := compressAll(t, c, lists)
		got, err := Union(ps)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if !equalU32(got, want) {
			t.Errorf("%s: union mismatch: got %d values, want %d",
				c.Name(), len(got), len(want))
		}
	}
}

// TestSvSSkewedRatio exercises the skip-probe path (|L2|/|L1| large).
func TestSvSSkewedRatio(t *testing.T) {
	short := gen.Uniform(50, 1<<20, 7)
	long := gen.Uniform(200000, 1<<20, 8)
	want := IntersectSorted(short, long)
	for _, c := range codecs.Lists() {
		ps := compressAll(t, c, [][]uint32{short, long})
		got, err := Intersect(ps)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if !equalU32(got, want) {
			t.Errorf("%s: skewed intersect mismatch", c.Name())
		}
	}
}

// TestEmptyIntersection: disjoint lists intersect to nothing.
func TestEmptyIntersection(t *testing.T) {
	a := []uint32{1, 3, 5, 7}
	b := []uint32{0, 2, 4, 6, 8}
	for _, c := range codecs.All() {
		ps := compressAll(t, c, [][]uint32{a, b})
		got, err := Intersect(ps)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if len(got) != 0 {
			t.Errorf("%s: want empty, got %v", c.Name(), got)
		}
	}
}

// TestPlanEval checks the combined query shape of SSB Q3.4:
// (L0 ∪ L1) ∩ (L2 ∪ L3) ∩ L4.
func TestPlanEval(t *testing.T) {
	lists := [][]uint32{
		gen.Uniform(800, 1<<16, 10),
		gen.Uniform(800, 1<<16, 11),
		gen.Uniform(900, 1<<16, 12),
		gen.Uniform(900, 1<<16, 13),
		gen.Uniform(20000, 1<<16, 14),
	}
	want := refIntersectMany([][]uint32{
		UnionMany(lists[0:2]),
		UnionMany(lists[2:4]),
		lists[4],
	})
	plan := And(Or(Leaf(0), Leaf(1)), Or(Leaf(2), Leaf(3)), Leaf(4))
	for _, c := range codecs.All() {
		ps := compressAll(t, c, lists)
		got, err := Eval(plan, ps)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if !equalU32(got, want) {
			t.Errorf("%s: plan result mismatch: got %d want %d", c.Name(), len(got), len(want))
		}
	}
}

// TestPlanSingleLeaf and nested plans.
func TestPlanShapes(t *testing.T) {
	lists := [][]uint32{
		{1, 5, 9},
		{5, 9, 11},
		{9, 11, 13},
	}
	c, _ := codecs.ByName("Roaring")
	ps := compressAll(t, c, lists)
	got, err := Eval(Leaf(1), ps)
	if err != nil || !equalU32(got, lists[1]) {
		t.Fatalf("leaf eval: %v %v", got, err)
	}
	got, err = Eval(And(Leaf(0), Leaf(1), Leaf(2)), ps)
	if err != nil || !equalU32(got, []uint32{9}) {
		t.Fatalf("and eval: %v %v", got, err)
	}
	got, err = Eval(Or(And(Leaf(0), Leaf(1)), Leaf(2)), ps)
	if err != nil || !equalU32(got, []uint32{5, 9, 11, 13}) {
		t.Fatalf("nested eval: %v %v", got, err)
	}
}

func TestReferenceOps(t *testing.T) {
	a := []uint32{1, 2, 3, 10}
	b := []uint32{2, 3, 4}
	if got := IntersectSorted(a, b); !equalU32(got, []uint32{2, 3}) {
		t.Errorf("IntersectSorted = %v", got)
	}
	if got := UnionSorted(a, b); !equalU32(got, []uint32{1, 2, 3, 4, 10}) {
		t.Errorf("UnionSorted = %v", got)
	}
	if got := UnionMany([][]uint32{{1}, {2}, {1, 3}}); !equalU32(got, []uint32{1, 2, 3}) {
		t.Errorf("UnionMany = %v", got)
	}
	if got := UnionMany(nil); got != nil {
		t.Errorf("UnionMany(nil) = %v", got)
	}
}

// TestIntersectRandomizedAgainstReference fuzzes k-way intersection.
func TestIntersectRandomizedAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 8; trial++ {
		k := 2 + rng.Intn(3)
		lists := make([][]uint32, k)
		for i := range lists {
			lists[i] = gen.Uniform(100+rng.Intn(5000), 1<<15, int64(trial*10+i))
		}
		want := refIntersectMany(lists)
		for _, name := range []string{"Roaring", "WAH", "PEF", "SIMDBP128*", "VB"} {
			c, err := codecs.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			ps := compressAll(t, c, lists)
			got, err := Intersect(ps)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !equalU32(got, want) {
				t.Errorf("%s trial %d: mismatch", name, trial)
			}
		}
	}
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
