package ops

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// memImpactList is a reference ImpactList over in-memory (doc, impact)
// pairs, cut into blocks of blockLen.
type memImpactList struct {
	docs     []uint32
	imps     []uint32
	blockLen int
}

func newMemImpactList(docs, imps []uint32, blockLen int) *memImpactList {
	return &memImpactList{docs: docs, imps: imps, blockLen: blockLen}
}

func (m *memImpactList) Len() int { return len(m.docs) }

func (m *memImpactList) TermMax() uint32 {
	var mx uint32
	for _, v := range m.imps {
		if v > mx {
			mx = v
		}
	}
	return mx
}

func (m *memImpactList) NumBlocks() int {
	return (len(m.docs) + m.blockLen - 1) / m.blockLen
}

func (m *memImpactList) BlockLast(i int) uint32 {
	end := (i+1)*m.blockLen - 1
	if end >= len(m.docs) {
		end = len(m.docs) - 1
	}
	return m.docs[end]
}

func (m *memImpactList) BlockMax(i int) uint32 {
	lo, hi := i*m.blockLen, (i+1)*m.blockLen
	if hi > len(m.imps) {
		hi = len(m.imps)
	}
	var mx uint32
	for _, v := range m.imps[lo:hi] {
		if v > mx {
			mx = v
		}
	}
	return mx
}

func (m *memImpactList) Cursor() ImpactCursor { return &memImpactCursor{l: m, pos: -1} }

type memImpactCursor struct {
	l   *memImpactList
	pos int
}

func (c *memImpactCursor) Next() (uint32, bool) {
	c.pos++
	if c.pos >= len(c.l.docs) {
		return 0, false
	}
	return c.l.docs[c.pos], true
}

func (c *memImpactCursor) SeekGEQ(target uint32) (uint32, bool) {
	start := c.pos
	if start < 0 {
		start = 0
	}
	i := start + sort.Search(len(c.l.docs)-start, func(i int) bool { return c.l.docs[start+i] >= target })
	c.pos = i
	if i >= len(c.l.docs) {
		return 0, false
	}
	return c.l.docs[i], true
}

func (c *memImpactCursor) Impact() uint32     { return c.l.imps[c.pos] }
func (c *memImpactCursor) BlocksDecoded() int { return 0 }

// bruteTopK recomputes the expected result with a full score map.
func bruteTopK(k int, lists []*memImpactList) []ScoredDoc {
	scores := map[uint32]uint32{}
	for _, l := range lists {
		for i, d := range l.docs {
			scores[d] += l.imps[i]
		}
	}
	all := make([]ScoredDoc, 0, len(scores))
	for d, s := range scores {
		all = append(all, ScoredDoc{Doc: d, Score: s})
	}
	sort.Slice(all, func(i, j int) bool { return worse(all[j], all[i]) })
	if len(all) > k {
		all = all[:k]
	}
	if len(all) == 0 {
		return nil
	}
	return all
}

func asImpactLists(ls []*memImpactList) []ImpactList {
	out := make([]ImpactList, len(ls))
	for i, l := range ls {
		out[i] = l
	}
	return out
}

var topkModes = []TopKMode{TopKExhaustive, TopKMaxScore, TopKBlockMax}

func checkAllModes(t *testing.T, k int, lists []*memImpactList) {
	t.Helper()
	want := bruteTopK(k, lists)
	ev := NewEngine(EngineConfig{Parallelism: 1})
	for _, mode := range topkModes {
		var stats TopKStats
		got := ev.TopK(mode, k, asImpactLists(lists), &stats)
		if len(got) == 0 {
			got = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: k=%d got %v want %v", mode, k, got, want)
		}
	}
}

func TestTopKModesHandCases(t *testing.T) {
	// Ties everywhere: equal scores must resolve by ascending docid.
	a := newMemImpactList([]uint32{1, 5, 9, 13}, []uint32{2, 2, 2, 2}, 2)
	b := newMemImpactList([]uint32{5, 9, 20}, []uint32{1, 1, 3}, 2)
	c := newMemImpactList([]uint32{2, 13, 40}, []uint32{4, 1, 4}, 2)
	for _, k := range []int{1, 2, 3, 5, 100} {
		checkAllModes(t, k, []*memImpactList{a, b, c})
	}
	// Single list, k larger than the list.
	checkAllModes(t, 50, []*memImpactList{a})
	// Empty input.
	ev := Default()
	if got := ev.TopK(TopKBlockMax, 3, nil, nil); got != nil {
		t.Fatalf("empty lists: got %v", got)
	}
	if got := ev.TopK(TopKMaxScore, 0, asImpactLists([]*memImpactList{a}), nil); got != nil {
		t.Fatalf("k=0: got %v", got)
	}
}

// TestTopKModesRandomized cross-checks all three algorithms against the
// brute-force map scorer on randomized corpora with heavy ties (small
// impact alphabet) and varied block widths.
func TestTopKModesRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		nLists := 1 + rng.Intn(5)
		lists := make([]*memImpactList, nLists)
		for i := range lists {
			n := 1 + rng.Intn(300)
			set := map[uint32]bool{}
			for len(set) < n {
				set[uint32(rng.Intn(2000))] = true
			}
			docs := make([]uint32, 0, n)
			for d := range set {
				docs = append(docs, d)
			}
			sort.Slice(docs, func(a, b int) bool { return docs[a] < docs[b] })
			imps := make([]uint32, n)
			for j := range imps {
				imps[j] = 1 + uint32(rng.Intn(4)) // tiny alphabet → many ties
			}
			lists[i] = newMemImpactList(docs, imps, 1+rng.Intn(64))
		}
		k := 1 + rng.Intn(30)
		if trial%10 == 0 {
			k = 5000 // larger than any possible result set
		}
		checkAllModes(t, k, lists)
	}
}

// TestTopKStatsCounters sanity-checks the work accounting.
func TestTopKStatsCounters(t *testing.T) {
	a := newMemImpactList([]uint32{1, 2, 3, 4, 5}, []uint32{1, 1, 1, 1, 1}, 2)
	var stats TopKStats
	Default().TopK(TopKExhaustive, 2, asImpactLists([]*memImpactList{a}), &stats)
	if stats.Lists != 1 || stats.Postings != 5 || stats.BlocksTotal != 3 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.DocsScored != 5 {
		t.Fatalf("exhaustive must score every doc: %+v", stats)
	}
	if stats.Mode != "exhaustive" {
		t.Fatalf("mode = %q", stats.Mode)
	}
}
