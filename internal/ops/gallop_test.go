package ops

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/codecs"
	"repro/internal/core"
)

func TestGallopGEQ(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		a := randomSorted(r, r.Intn(500))
		lo := 0
		if len(a) > 0 {
			lo = r.Intn(len(a) + 1)
		}
		var target uint32
		switch r.Intn(3) {
		case 0:
			target = uint32(r.Intn(1 << 14)) // arbitrary, maybe absent
		case 1:
			if len(a) > 0 {
				target = a[r.Intn(len(a))] // guaranteed present
			}
		case 2:
			target = 1<<32 - 1 // past the end
		}
		got := gallopGEQ(a, lo, target)
		want := lo + sort.Search(len(a)-lo, func(i int) bool { return a[lo+i] >= target })
		if got != want {
			t.Fatalf("gallopGEQ(len=%d, lo=%d, target=%d) = %d, want %d", len(a), lo, target, got, want)
		}
	}
}

// gapSorted generates n strictly increasing values with random gaps in
// [1, maxGap] — O(n), unlike the quickcheck helper's map-based
// generator, so skewed pairs up to 10^4:1 stay cheap.
func gapSorted(r *rand.Rand, n, maxGap int) []uint32 {
	out := make([]uint32, n)
	v := uint32(0)
	for i := range out {
		v += uint32(1 + r.Intn(maxGap))
		out[i] = v
	}
	return out
}

// sampleFrom picks ~1/3 of src (guaranteed intersection hits) plus a
// few values off-grid, sorted and deduplicated.
func sampleFrom(r *rand.Rand, src []uint32, n int) []uint32 {
	seen := map[uint32]struct{}{}
	for len(seen) < n {
		if r.Intn(3) > 0 && len(src) > 0 {
			seen[src[r.Intn(len(src))]] = struct{}{}
		} else {
			seen[uint32(r.Intn(len(src)*4+4096))] = struct{}{}
		}
	}
	out := make([]uint32, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// skewRatios spans the issue's 1:1 → 1:10^4 range, straddling the
// gallopRatio crossover in both directions.
var skewRatios = []int{1, 8, gallopRatio, gallopRatio + 1, 100, 1000, 10000}

// TestIntersectAdaptiveSkewProperty: the adaptive in-place kernel is
// bit-identical to the linear reference across skews, both argument
// orders, regardless of which side gallops.
func TestIntersectAdaptiveSkewProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, ratio := range skewRatios {
		for iter := 0; iter < 8; iter++ {
			large := gapSorted(r, 30*ratio, 3)
			small := sampleFrom(r, large, 20+r.Intn(11))
			want := IntersectSorted(small, large)

			got := intersectAdaptiveInPlace(append([]uint32(nil), small...), large)
			if !equalU32(got, want) {
				t.Fatalf("ratio 1:%d small-first: got %v want %v", ratio, got, want)
			}
			got = intersectAdaptiveInPlace(append([]uint32(nil), large...), small)
			if !equalU32(got, want) {
				t.Fatalf("ratio 1:%d large-first: got %v want %v", ratio, got, want)
			}
		}
	}
}

// TestGallopingSvSMatchesIntersect: end to end through compressed
// postings — the engine's galloping SvS must stay bit-identical to the
// ops.Intersect reference across skew ratios up to 1:10^4.
func TestGallopingSvSMatchesIntersect(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	eng := NewEngine(EngineConfig{})
	for _, ratio := range skewRatios {
		for _, names := range [][2]string{
			{"SIMDBP128*", "SIMDBP128*"},
			{"VB", "SIMDPforDelta*"},
			{"List", "SIMDBP128*"},
		} {
			large := gapSorted(r, 30*ratio, 3)
			small := sampleFrom(r, large, 30)
			want := IntersectSorted(small, large)

			ps := make([]core.Posting, 2)
			for i, list := range [][]uint32{small, large} {
				c, err := codecs.ByName(names[i])
				if err != nil {
					t.Fatal(err)
				}
				ps[i], err = c.Compress(list)
				if err != nil {
					t.Fatalf("%s: %v", names[i], err)
				}
			}
			ref, err := Intersect(ps)
			if err != nil {
				t.Fatal(err)
			}
			if !equalU32(normalizeQ(ref), want) {
				t.Fatalf("ratio 1:%d %v: ops.Intersect diverged: got %v want %v", ratio, names, ref, want)
			}
			got, err := eng.Eval(Expr{Op: OpAnd, Args: []Expr{Leaf(0), Leaf(1)}}, ps)
			if err != nil {
				t.Fatal(err)
			}
			if !equalU32(normalizeQ(got), want) {
				t.Fatalf("ratio 1:%d %v: engine diverged from reference\ngot  %v\nwant %v",
					ratio, names, got, want)
			}
		}
	}
}
