package ops

import (
	"math/rand"
	"testing"

	"repro/internal/codecs"
	"repro/internal/core"
)

// engineCodecs are the families exercised by the engine tests: a
// Roaring-style bitmap, an RLE bitmap, a SIMD-layout list, and PEF
// (partition-native, no block frame) — the mix covers the native-AND,
// span, skip-probe, and iterator paths.
var engineCodecs = []string{"Roaring", "WAH", "SIMDBP128*", "VB", "PEF", "List"}

// randomPostings compresses n random sorted sets under random codec
// choices from engineCodecs.
func randomPostings(t testing.TB, r *rand.Rand, n, maxLen int) []core.Posting {
	t.Helper()
	ps := make([]core.Posting, n)
	for i := range ps {
		c, err := codecs.ByName(engineCodecs[r.Intn(len(engineCodecs))])
		if err != nil {
			t.Fatal(err)
		}
		ps[i], err = c.Compress(randomSorted(r, r.Intn(maxLen)))
		if err != nil {
			t.Fatal(err)
		}
	}
	return ps
}

// randomExpr builds a random plan over nPostings leaves: interior nodes
// alternate AND/OR randomly with 2..4 children down to a depth limit.
func randomExpr(r *rand.Rand, nPostings, depth int) Expr {
	if depth == 0 || r.Intn(3) == 0 {
		return Leaf(r.Intn(nPostings))
	}
	n := 2 + r.Intn(3)
	args := make([]Expr, n)
	for i := range args {
		args[i] = randomExpr(r, nPostings, depth-1)
	}
	op := OpAnd
	if r.Intn(2) == 0 {
		op = OpOr
	}
	return Expr{Op: op, Args: args}
}

// TestEngineMatchesSerialEval: randomized plans over mixed codec
// families must produce results identical to the serial reference, for
// a serial engine, the default engine, and an engine with parallelism
// forced on every interior node. Run with -race this also exercises the
// worker-pool fan-out for data races.
func TestEngineMatchesSerialEval(t *testing.T) {
	engines := map[string]*Engine{
		"serial":         NewEngine(EngineConfig{Parallelism: 1}),
		"default":        NewEngine(EngineConfig{}),
		"forcedParallel": NewEngine(EngineConfig{Parallelism: 8, ParallelMinWork: 1}),
	}
	r := rand.New(rand.NewSource(7))
	for iter := 0; iter < 60; iter++ {
		ps := randomPostings(t, r, 2+r.Intn(6), 400)
		plan := randomExpr(r, len(ps), 3)
		want, err := Eval(plan, ps)
		if err != nil {
			t.Fatalf("iter %d: serial: %v", iter, err)
		}
		for name, ev := range engines {
			got, err := ev.Eval(plan, ps)
			if err != nil {
				t.Fatalf("iter %d: %s: %v", iter, name, err)
			}
			if !equalU32(normalizeQ(got), normalizeQ(want)) {
				t.Fatalf("iter %d: %s diverged from serial\nplan: %+v\ngot  %v\nwant %v",
					iter, name, plan, got, want)
			}
		}
	}
}

// TestEngineMatchesSerialEvalParallelRace exercises concurrent Eval
// calls on one shared engine (the production shape: one engine, many
// request goroutines) with parallelism forced.
func TestEngineMatchesSerialEvalParallelRace(t *testing.T) {
	ev := NewEngine(EngineConfig{Parallelism: 4, ParallelMinWork: 1})
	r := rand.New(rand.NewSource(11))
	ps := randomPostings(t, r, 8, 600)
	type cse struct {
		plan Expr
		want []uint32
	}
	cases := make([]cse, 16)
	for i := range cases {
		plan := randomExpr(r, len(ps), 3)
		want, err := Eval(plan, ps)
		if err != nil {
			t.Fatal(err)
		}
		cases[i] = cse{plan, want}
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for iter := 0; iter < 20; iter++ {
				c := cases[(g+iter)%len(cases)]
				got, err := ev.Eval(c.plan, ps)
				if err != nil {
					done <- err
					return
				}
				if !equalU32(normalizeQ(got), normalizeQ(c.want)) {
					t.Errorf("goroutine %d iter %d: wrong result", g, iter)
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestEngineIntersectUnionMatchOps: the engine's flat-intersection and
// flat-union wrappers agree with the package-level operators.
func TestEngineIntersectUnionMatchOps(t *testing.T) {
	ev := NewEngine(EngineConfig{})
	r := rand.New(rand.NewSource(3))
	for iter := 0; iter < 30; iter++ {
		ps := randomPostings(t, r, 2+r.Intn(4), 500)
		wantAnd, err := Intersect(ps)
		if err != nil {
			t.Fatal(err)
		}
		gotAnd, err := ev.Intersect(ps)
		if err != nil {
			t.Fatal(err)
		}
		if !equalU32(normalizeQ(gotAnd), normalizeQ(wantAnd)) {
			t.Fatalf("iter %d: Intersect diverged", iter)
		}
		wantOr, err := Union(ps)
		if err != nil {
			t.Fatal(err)
		}
		gotOr, err := ev.Union(ps)
		if err != nil {
			t.Fatal(err)
		}
		if !equalU32(normalizeQ(gotOr), normalizeQ(wantOr)) {
			t.Fatalf("iter %d: Union diverged", iter)
		}
	}
}

// TestProbeAliasing documents and enforces the in-place contract of
// skipProbe/mergeProbe: the result is a prefix of cur's backing array.
func TestProbeAliasing(t *testing.T) {
	c, err := codecs.ByName("List")
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.Compress([]uint32{2, 4, 6, 8, 10})
	if err != nil {
		t.Fatal(err)
	}
	s := p.(core.Seeker)
	for _, probe := range []struct {
		name string
		f    func([]uint32, core.Iterator) []uint32
	}{
		{"skipProbe", skipProbe},
		{"mergeProbe", mergeProbe},
	} {
		cur := []uint32{1, 2, 3, 4, 9, 10, 11}
		out := probe.f(cur, s.Iterator())
		if want := []uint32{2, 4, 10}; !equalU32(out, want) {
			t.Fatalf("%s: got %v, want %v", probe.name, out, want)
		}
		if &out[0] != &cur[0] {
			t.Fatalf("%s: result does not alias cur's backing array", probe.name)
		}
		// The input prefix now holds the result: cur is consumed.
		if cur[0] != 2 || cur[1] != 4 || cur[2] != 10 {
			t.Fatalf("%s: cur prefix not overwritten in place: %v", probe.name, cur[:3])
		}
	}
}

// TestArenaReuse: buffers put back into an arena are handed out again.
// A fresh arena (not from the pool) keeps the free list deterministic.
func TestArenaReuse(t *testing.T) {
	a := &arena{}
	b1 := a.get(100)
	b1 = append(b1, 1, 2, 3)
	a.put(b1)
	b2 := a.get(50)
	if cap(b2) < 100 {
		t.Fatalf("expected reuse of the 100-cap buffer, got cap %d", cap(b2))
	}
	if len(b2) != 0 {
		t.Fatalf("reused buffer should have length 0, got %d", len(b2))
	}
	// A buffer that is too small is not returned for a larger request.
	a.put(b2)
	b3 := a.get(1 << 12)
	if cap(b3) < 1<<12 {
		t.Fatalf("got undersized buffer cap %d", cap(b3))
	}
}

// TestArenaRetentionBounds: putArena trims scratch beyond the caps so a
// pathological query cannot pin unbounded memory in the pool.
func TestArenaRetentionBounds(t *testing.T) {
	a := &arena{}
	for i := 0; i < 2*arenaMaxRetainBufs; i++ {
		a.put(make([]uint32, 0, 8))
	}
	a.put(make([]uint32, 0, 2*arenaMaxRetainElems))
	putArena(a)
	if len(a.free) > arenaMaxRetainBufs {
		t.Fatalf("free list not trimmed: %d buffers", len(a.free))
	}
	if a.retained > arenaMaxRetainElems {
		t.Fatalf("retained %d elems exceeds cap %d", a.retained, arenaMaxRetainElems)
	}
}

// TestEngineEmptyAndErrorPlans covers degenerate shapes.
func TestEngineEmptyAndErrorPlans(t *testing.T) {
	ev := NewEngine(EngineConfig{})
	c, err := codecs.ByName("Roaring")
	if err != nil {
		t.Fatal(err)
	}
	full, err := c.Compress([]uint32{1, 5, 9})
	if err != nil {
		t.Fatal(err)
	}
	empty, err := c.Compress(nil)
	if err != nil {
		t.Fatal(err)
	}
	ps := []core.Posting{full, empty}

	got, err := ev.Eval(And(Leaf(0), Leaf(1), Leaf(0)), ps)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("AND with empty operand: got %v", got)
	}
	got, err = ev.Eval(Or(And(Leaf(0), Leaf(1)), Leaf(0)), ps)
	if err != nil {
		t.Fatal(err)
	}
	if want := []uint32{1, 5, 9}; !equalU32(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}
