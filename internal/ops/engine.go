// Engine: a pooled, cost-ordered, optionally parallel evaluator for
// Expr plans. It produces results bit-identical to the serial reference
// (Eval), but draws every decode and merge buffer from a sync.Pool-backed
// per-query arena, evaluates AND/OR children cheapest-first with an
// early exit on empty intersections, and fans independent sub-plans of
// wide nodes out to a bounded worker pool. Small plans stay on the
// serial path — the goroutine and copy overhead only pays for itself
// when there is real decode work to overlap.
package ops

import (
	"errors"
	"runtime"
	"sync"

	"repro/internal/core"
)

// EngineConfig tunes an Engine. Zero values pick serving defaults.
type EngineConfig struct {
	// Parallelism caps the number of plan sub-trees evaluated
	// concurrently, including the calling goroutine (default
	// GOMAXPROCS; 1 disables parallel evaluation).
	Parallelism int
	// ParallelMinWork is the minimum estimated node work — the sum of
	// leaf posting lengths under the node — before its sub-expressions
	// fan out to workers. Below it the node evaluates serially
	// (default 1 << 14).
	ParallelMinWork int
}

// Engine evaluates query plans with pooled scratch buffers. The zero
// value is not usable; construct with NewEngine. Engines are safe for
// concurrent use by multiple goroutines and are meant to be shared: one
// engine per process is the expected deployment.
type Engine struct {
	par     int
	minWork int
	sem     chan struct{}
}

// NewEngine returns an engine with the given configuration.
func NewEngine(cfg EngineConfig) *Engine {
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = runtime.GOMAXPROCS(0)
	}
	if cfg.ParallelMinWork <= 0 {
		cfg.ParallelMinWork = 1 << 14
	}
	return &Engine{
		par:     cfg.Parallelism,
		minWork: cfg.ParallelMinWork,
		// The caller counts as one worker, so par-1 extra goroutines.
		sem: make(chan struct{}, cfg.Parallelism-1),
	}
}

var (
	defaultEngineOnce sync.Once
	defaultEngine     *Engine
)

// Default returns the shared process-wide engine with default
// configuration, creating it on first use.
func Default() *Engine {
	defaultEngineOnce.Do(func() { defaultEngine = NewEngine(EngineConfig{}) })
	return defaultEngine
}

// Eval evaluates the plan like the serial Eval, returning an identical
// result set. The returned slice is freshly allocated and owned by the
// caller; all intermediate buffers return to the engine's pool.
func (ev *Engine) Eval(e Expr, postings []core.Posting) ([]uint32, error) {
	a := getArena()
	res, err := ev.eval(a, e, postings)
	if err != nil {
		putArena(a)
		return nil, err
	}
	out := make([]uint32, len(res))
	copy(out, res)
	a.put(res)
	putArena(a)
	return out, nil
}

// Intersect is Engine-pooled k-way intersection of compressed postings,
// equivalent to the package-level Intersect.
func (ev *Engine) Intersect(postings []core.Posting) ([]uint32, error) {
	return ev.Eval(flatPlan(OpAnd, len(postings)), postings)
}

// Union is Engine-pooled k-way union of compressed postings, equivalent
// to the package-level Union.
func (ev *Engine) Union(postings []core.Posting) ([]uint32, error) {
	return ev.Eval(flatPlan(OpOr, len(postings)), postings)
}

func flatPlan(op OpKind, n int) Expr {
	args := make([]Expr, n)
	for i := range args {
		args[i] = Leaf(i)
	}
	return Expr{Op: op, Args: args}
}

// costOf estimates a node's result size: a leaf's length, the minimum
// over AND children (an intersection is no bigger than its smallest
// operand), the sum over OR children. It orders siblings so the most
// selective work happens first.
func costOf(e Expr, ps []core.Posting) int {
	switch e.Op {
	case OpLeaf:
		return ps[e.Leaf].Len()
	case OpAnd:
		c := -1
		for _, ch := range e.Args {
			if cc := costOf(ch, ps); c < 0 || cc < c {
				c = cc
			}
		}
		if c < 0 {
			c = 0
		}
		return c
	default:
		c := 0
		for _, ch := range e.Args {
			c += costOf(ch, ps)
		}
		return c
	}
}

// workOf estimates the total decode work under a node: the sum of leaf
// posting lengths. It gates parallel fan-out.
func workOf(e Expr, ps []core.Posting) int {
	if e.Op == OpLeaf {
		return ps[e.Leaf].Len()
	}
	w := 0
	for _, ch := range e.Args {
		w += workOf(ch, ps)
	}
	return w
}

func (ev *Engine) eval(a *arena, e Expr, ps []core.Posting) ([]uint32, error) {
	switch e.Op {
	case OpLeaf:
		p := ps[e.Leaf]
		return core.DecompressAppend(p, a.get(p.Len())), nil
	case OpAnd:
		return ev.evalAnd(a, e, ps)
	default:
		return ev.evalOr(a, e, ps)
	}
}

// evalAnd evaluates an intersection node: sub-expressions first (cost
// ordered, optionally in parallel), then the compressed leaf operands
// probed against the running result, cheapest first, with an early exit
// as soon as the result goes empty.
func (ev *Engine) evalAnd(a *arena, e Expr, ps []core.Posting) ([]uint32, error) {
	leafBase := len(a.postings)
	for _, ch := range e.Args {
		if ch.Op == OpLeaf {
			a.postings = append(a.postings, ps[ch.Leaf])
		}
	}
	nleaf := len(a.postings) - leafBase
	if nleaf == len(e.Args) {
		cur, err := intersectInto(a, a.postings[leafBase:])
		a.postings = a.postings[:leafBase]
		return cur, err
	}

	subBase := len(a.children)
	for i, ch := range e.Args {
		if ch.Op != OpLeaf {
			a.children = append(a.children, childRef{cost: costOf(ch, ps), idx: i})
		}
	}
	nsub := len(a.children) - subBase
	sortChildrenByCost(a.children[subBase : subBase+nsub])

	var cur []uint32
	var err error
	if nsub >= 2 && ev.par > 1 && workOf(e, ps) >= ev.minWork {
		cur, err = ev.fanOut(a, e, ps, subBase, nsub, true)
	} else {
		// Serial: cheapest sub-plan first; an empty running result
		// short-circuits the remaining sub-plans entirely.
		for k := 0; k < nsub; k++ {
			if k > 0 && len(cur) == 0 {
				break
			}
			var r []uint32
			r, err = ev.eval(a, e.Args[a.children[subBase+k].idx], ps)
			if err != nil {
				break
			}
			if k == 0 {
				cur = r
			} else {
				cur = intersectAdaptiveInPlace(cur, r)
				a.put(r)
			}
		}
	}
	if err == nil {
		// Probe the compressed leaves against the running result,
		// cheapest first (the reference loop from Eval).
		sortPostingsByLen(a.postings[leafBase : leafBase+nleaf])
		for k := leafBase; k < leafBase+nleaf && len(cur) > 0; k++ {
			cur = probeAnd(a, cur, a.postings[k])
		}
	}
	a.children = a.children[:subBase]
	a.postings = a.postings[:leafBase]
	if err != nil {
		a.put(cur)
		return nil, err
	}
	return cur, nil
}

// evalOr evaluates a union node: sub-expressions (optionally parallel)
// and decoded leaves all collect into the arena's list scratch, then
// merge smallest-first pairwise, or by k-way heap when wide.
func (ev *Engine) evalOr(a *arena, e Expr, ps []core.Posting) ([]uint32, error) {
	leafBase := len(a.postings)
	nsub := 0
	for _, ch := range e.Args {
		if ch.Op == OpLeaf {
			a.postings = append(a.postings, ps[ch.Leaf])
		} else {
			nsub++
		}
	}
	nleaf := len(a.postings) - leafBase
	if nsub == 0 {
		cur, err := unionInto(a, a.postings[leafBase:])
		a.postings = a.postings[:leafBase]
		return cur, err
	}

	subBase := len(a.children)
	for i, ch := range e.Args {
		if ch.Op != OpLeaf {
			a.children = append(a.children, childRef{cost: costOf(ch, ps), idx: i})
		}
	}
	sortChildrenByCost(a.children[subBase : subBase+nsub])

	listBase := len(a.lists)
	var err error
	if nsub >= 2 && ev.par > 1 && workOf(e, ps) >= ev.minWork {
		var merged []uint32
		merged, err = ev.fanOut(a, e, ps, subBase, nsub, false)
		if err == nil {
			a.lists = append(a.lists, merged)
		}
	} else {
		for k := 0; k < nsub && err == nil; k++ {
			var r []uint32
			r, err = ev.eval(a, e.Args[a.children[subBase+k].idx], ps)
			if err == nil {
				a.lists = append(a.lists, r)
			}
		}
	}
	if err == nil {
		for k := leafBase; k < leafBase+nleaf; k++ {
			p := a.postings[k]
			a.lists = append(a.lists, core.DecompressAppend(p, a.get(p.Len())))
		}
	}
	var cur []uint32
	if err == nil {
		cur = unionManyInto(a, a.lists[listBase:])
	} else {
		for _, l := range a.lists[listBase:] {
			a.put(l)
		}
	}
	a.lists = a.lists[:listBase]
	a.children = a.children[:subBase]
	a.postings = a.postings[:leafBase]
	return cur, err
}

// fanOut evaluates the nsub sub-expressions recorded in
// a.children[subBase:] concurrently on the bounded worker pool. Workers
// that cannot take a pool slot run inline on the caller's arena, so fan
// out never blocks on itself (no nested-parallelism deadlock). Spawned
// workers use private arenas and copy their result across the arena
// boundary — that copy is the price of parallelism, which is why small
// nodes stay serial. For AND nodes (and_ true) the results combine
// smallest-first by in-place intersection with an early exit; for OR
// nodes they merge into one list for the caller to union further.
func (ev *Engine) fanOut(a *arena, e Expr, ps []core.Posting, subBase, nsub int, and bool) ([]uint32, error) {
	results := make([][]uint32, nsub)
	errs := make([]error, nsub)
	var wg sync.WaitGroup
	for k := 0; k < nsub; k++ {
		child := e.Args[a.children[subBase+k].idx]
		if ev.tryAcquire() {
			wg.Add(1)
			go func(k int, child Expr) {
				defer wg.Done()
				defer ev.release()
				ca := getArena()
				r, err := ev.eval(ca, child, ps)
				if err != nil {
					errs[k] = err
				} else {
					cp := make([]uint32, len(r))
					copy(cp, r)
					ca.put(r)
					results[k] = cp
				}
				putArena(ca)
			}(k, child)
		} else {
			results[k], errs[k] = ev.eval(a, child, ps)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			for _, r := range results {
				a.put(r)
			}
			return nil, err
		}
	}
	sortListsByLen(results)
	if and {
		cur := results[0]
		for _, r := range results[1:] {
			if len(cur) > 0 {
				cur = intersectAdaptiveInPlace(cur, r)
			}
			a.put(r)
		}
		return cur, nil
	}
	listBase := len(a.lists)
	a.lists = append(a.lists, results...)
	cur := unionManyInto(a, a.lists[listBase:])
	a.lists = a.lists[:listBase]
	return cur, nil
}

func (ev *Engine) tryAcquire() bool {
	select {
	case ev.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

func (ev *Engine) release() { <-ev.sem }

// intersectInto is Intersect with arena-backed scratch: the operand
// sort uses the arena's posting stack and the initial decompression of
// the smallest operand lands in a pooled buffer instead of the heap.
// The returned slice is arena-owned (or a freshly allocated native-op
// result, which the caller may adopt with put).
func intersectInto(a *arena, postings []core.Posting) ([]uint32, error) {
	switch len(postings) {
	case 0:
		return nil, nil
	case 1:
		return core.DecompressAppend(postings[0], a.get(postings[0].Len())), nil
	}
	base := len(a.postings)
	a.postings = append(a.postings, postings...)
	sorted := a.postings[base:]
	sortPostingsByLen(sorted)
	defer func() { a.postings = a.postings[:base] }()

	var cur []uint32
	haveCur := false
	rest := sorted[1:]
	// Native compressed-form AND for the first same-codec pair.
	if inter, ok := sorted[0].(core.Intersecter); ok {
		r, err := inter.IntersectWith(sorted[1])
		switch {
		case err == nil:
			cur = r
			haveCur = true
			rest = sorted[2:]
		case errors.Is(err, core.ErrIncompatible):
			// Mixed operands: the bucket×seeker kernel below, or the
			// generic path.
		default:
			return nil, err
		}
	}
	if !haveCur {
		// Mixed-representation fast path: a bucketed bitmap against a
		// skip-pointered list intersects with neither side decompressed.
		if r, ok := mixedIntersect(a, sorted[0], sorted[1]); ok {
			cur = r
			haveCur = true
			rest = sorted[2:]
		}
	}
	if !haveCur {
		cur = core.DecompressAppend(sorted[0], a.get(sorted[0].Len()))
	}
	for _, p := range rest {
		if len(cur) == 0 {
			return cur, nil
		}
		cur = probeAnd(a, cur, p)
	}
	return cur, nil
}

// probeAnd intersects the running uncompressed result with one
// compressed operand: skip/merge probes for Seekers (in place on cur),
// the native bitmap-vs-list operator for ListProbers (adopting the
// fresh result and recycling cur), and arena-buffered
// decompress-and-merge otherwise.
func probeAnd(a *arena, cur []uint32, p core.Posting) []uint32 {
	if s, ok := p.(core.Seeker); ok {
		if p.Len() < mergeRatio*len(cur) {
			return mergeProbe(cur, s.Iterator())
		}
		return skipProbe(cur, s.Iterator())
	}
	if lp, ok := p.(core.ListProber); ok {
		out := lp.IntersectList(cur)
		a.put(cur)
		return out
	}
	tmp := core.DecompressAppend(p, a.get(p.Len()))
	cur = intersectAdaptiveInPlace(cur, tmp)
	a.put(tmp)
	return cur
}

// unionInto is Union with arena-backed scratch: decode targets and the
// merge output come from the pool. The returned slice is arena-owned.
func unionInto(a *arena, postings []core.Posting) ([]uint32, error) {
	switch len(postings) {
	case 0:
		return nil, nil
	case 1:
		return core.DecompressAppend(postings[0], a.get(postings[0].Len())), nil
	}
	listBase := len(a.lists)
	rest := postings[1:]
	if u, ok := postings[0].(core.Unioner); ok {
		r, err := u.UnionWith(postings[1])
		switch {
		case err == nil:
			if len(postings) == 2 {
				return r, nil
			}
			a.lists = append(a.lists, r)
			rest = postings[2:]
		case errors.Is(err, core.ErrIncompatible):
			// Mixed operands: generic path below.
		default:
			return nil, err
		}
	}
	if len(a.lists) == listBase {
		a.lists = append(a.lists, core.DecompressAppend(postings[0], a.get(postings[0].Len())))
	}
	for _, p := range rest {
		a.lists = append(a.lists, core.DecompressAppend(p, a.get(p.Len())))
	}
	cur := unionManyInto(a, a.lists[listBase:])
	a.lists = a.lists[:listBase]
	return cur, nil
}

// unionManyInto merges k sorted lists with UnionMany's strategy
// (smallest-first pairwise, k-way heap when wide), drawing outputs from
// the arena and recycling every consumed input. The lists segment and
// its buffers are consumed; the result is arena-owned.
func unionManyInto(a *arena, lists [][]uint32) []uint32 {
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return lists[0]
	}
	if len(lists) >= heapWidth {
		return unionHeapMergeInto(a, lists)
	}
	sortListsByLen(lists)
	cur := lists[0]
	for _, l := range lists[1:] {
		out := unionSortedAppend(a.get(len(cur)+len(l)), cur, l)
		a.put(cur)
		a.put(l)
		cur = out
	}
	return cur
}

// unionHeapMergeInto is unionHeapMerge with pooled heap scratch and an
// arena-backed output buffer.
func unionHeapMergeInto(a *arena, lists [][]uint32) []uint32 {
	h := a.heads[:0]
	total := 0
	for i, l := range lists {
		total += len(l)
		if len(l) > 0 {
			h = append(h, heapHead{value: l[0], list: i})
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(h, i)
	}
	out := a.get(total)
	for len(h) > 0 {
		top := h[0]
		if n := len(out); n == 0 || out[n-1] != top.value {
			out = append(out, top.value)
		}
		l := lists[top.list]
		if top.pos+1 < len(l) {
			h[0] = heapHead{value: l[top.pos+1], list: top.list, pos: top.pos + 1}
		} else {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		siftDown(h, 0)
	}
	a.heads = h[:0]
	for _, l := range lists {
		a.put(l)
	}
	return out
}

// intersectSortedInPlace intersects cur with b, writing the result into
// cur's prefix — the same aliasing contract as skipProbe/mergeProbe:
// the write index never passes the read index, so cur's backing array
// doubles as the output and the input slice must be considered consumed.
func intersectSortedInPlace(cur, b []uint32) []uint32 {
	out := cur[:0]
	i, j := 0, 0
	for i < len(cur) && j < len(b) {
		switch {
		case cur[i] < b[j]:
			i++
		case cur[i] > b[j]:
			j++
		default:
			out = append(out, cur[i])
			i++
			j++
		}
	}
	return out
}

// unionSortedAppend merges a and b into dst (which must not alias
// either input) and returns the extended slice.
func unionSortedAppend(dst, a, b []uint32) []uint32 {
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			dst = append(dst, a[i])
			i++
		case i >= len(a) || a[i] > b[j]:
			dst = append(dst, b[j])
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// The engine sorts tiny operand sets on every evaluation; these
// insertion sorts are stable like sort.SliceStable but closure-free, so
// steady-state plan evaluation does not allocate for ordering.

func sortPostingsByLen(ps []core.Posting) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].Len() < ps[j-1].Len(); j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

func sortListsByLen(ls [][]uint32) {
	for i := 1; i < len(ls); i++ {
		for j := i; j > 0 && len(ls[j]) < len(ls[j-1]); j-- {
			ls[j], ls[j-1] = ls[j-1], ls[j]
		}
	}
}

func sortChildrenByCost(cs []childRef) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].cost < cs[j-1].cost; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}
