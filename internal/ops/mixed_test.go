package ops

import (
	"testing"

	"repro/internal/codecs"
	"repro/internal/core"
	"repro/internal/gen"
)

// TestMixedFamilyIntersection covers the paper's "bitmap vs list" case
// (§B.1): operands compressed with different codecs — even across
// families — must still intersect correctly.
func TestMixedFamilyIntersection(t *testing.T) {
	a := gen.Uniform(300, 1<<15, 1)
	b := gen.Uniform(4000, 1<<15, 2)
	c := gen.Uniform(8000, 1<<15, 3)
	want := IntersectSorted(IntersectSorted(a, b), c)

	combos := [][]string{
		{"Roaring", "SIMDBP128*", "VB"},
		{"WAH", "PEF", "Bitset"},
		{"List", "BBC", "Roaring"},
		{"EWAH", "WAH", "CONCISE"}, // all bitmaps, but different codecs
	}
	for _, names := range combos {
		ps := make([]core.Posting, 3)
		for i, name := range names {
			codec, err := codecs.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			p, err := codec.Compress([][]uint32{a, b, c}[i])
			if err != nil {
				t.Fatal(err)
			}
			ps[i] = p
		}
		got, err := Intersect(ps)
		if err != nil {
			t.Fatalf("%v: %v", names, err)
		}
		if !equalU32(got, want) {
			t.Errorf("%v: mixed intersect mismatch (got %d want %d)",
				names, len(got), len(want))
		}
	}
}

// TestMixedFamilyUnion: same for OR.
func TestMixedFamilyUnion(t *testing.T) {
	a := gen.Uniform(300, 1<<15, 4)
	b := gen.Uniform(4000, 1<<15, 5)
	want := UnionSorted(a, b)

	for _, names := range [][]string{
		{"Roaring", "VB"},
		{"WAH", "EWAH"},
		{"PEF", "Bitset"},
	} {
		var ps []core.Posting
		for i, name := range names {
			codec, err := codecs.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			p, err := codec.Compress([][]uint32{a, b}[i])
			if err != nil {
				t.Fatal(err)
			}
			ps = append(ps, p)
		}
		got, err := Union(ps)
		if err != nil {
			t.Fatalf("%v: %v", names, err)
		}
		if !equalU32(got, want) {
			t.Errorf("%v: mixed union mismatch", names)
		}
	}
}

// TestIntersectUnionEmptyOperand: an empty posting annihilates AND and
// is a no-op for OR.
func TestIntersectUnionEmptyOperand(t *testing.T) {
	vals := gen.Uniform(1000, 1<<15, 6)
	for _, name := range []string{"Roaring", "WAH", "SIMDBP128*", "PEF"} {
		codec, _ := codecs.ByName(name)
		full, err := codec.Compress(vals)
		if err != nil {
			t.Fatal(err)
		}
		empty, err := codec.Compress(nil)
		if err != nil {
			t.Fatal(err)
		}
		and, err := Intersect([]core.Posting{full, empty})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(and) != 0 {
			t.Errorf("%s: AND with empty = %d values", name, len(and))
		}
		or, err := Union([]core.Posting{empty, full})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !equalU32(or, vals) {
			t.Errorf("%s: OR with empty lost values", name)
		}
	}
}

// TestIntersectZeroAndOne: degenerate arities.
func TestIntersectZeroAndOne(t *testing.T) {
	if r, err := Intersect(nil); err != nil || r != nil {
		t.Errorf("Intersect(nil) = %v, %v", r, err)
	}
	if r, err := Union(nil); err != nil || r != nil {
		t.Errorf("Union(nil) = %v, %v", r, err)
	}
	codec, _ := codecs.ByName("Roaring")
	p, _ := codec.Compress([]uint32{4, 8})
	if r, _ := Intersect([]core.Posting{p}); !equalU32(r, []uint32{4, 8}) {
		t.Errorf("Intersect(single) = %v", r)
	}
	if r, _ := Union([]core.Posting{p}); !equalU32(r, []uint32{4, 8}) {
		t.Errorf("Union(single) = %v", r)
	}
}
