package ops

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
)

// refUnionMany folds UnionSorted pairwise as the oracle.
func refUnionMany(lists [][]uint32) []uint32 {
	var cur []uint32
	for _, l := range lists {
		cur = UnionSorted(cur, l)
	}
	return cur
}

// TestUnionManyHeapPath: wide unions (>= heapWidth lists) take the heap
// merge and must match the pairwise oracle, duplicates collapsed.
func TestUnionManyHeapPath(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for trial := 0; trial < 6; trial++ {
		k := heapWidth + rng.Intn(12)
		lists := make([][]uint32, k)
		for i := range lists {
			lists[i] = gen.Uniform(rng.Intn(3000), 1<<16, int64(600+trial*50+i))
		}
		want := refUnionMany(lists)
		got := UnionMany(lists)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d values, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: value %d mismatch", trial, i)
			}
		}
	}
}

// TestUnionManyHeapEdgeCases: empty operands, identical lists, single
// survivors.
func TestUnionManyHeapEdgeCases(t *testing.T) {
	same := []uint32{5, 10, 15}
	lists := make([][]uint32, heapWidth+2)
	for i := range lists {
		if i%2 == 0 {
			lists[i] = same
		} // odd entries stay nil
	}
	got := UnionMany(lists)
	if len(got) != 3 || got[0] != 5 || got[2] != 15 {
		t.Fatalf("got %v", got)
	}
	// All empty.
	empty := make([][]uint32, heapWidth)
	if got := UnionMany(empty); len(got) != 0 {
		t.Fatalf("all-empty union = %v", got)
	}
}

// BenchmarkUnionManyWide compares realistic wide unions (k=16) through
// the public entry point.
func BenchmarkUnionManyWide(b *testing.B) {
	lists := make([][]uint32, 16)
	for i := range lists {
		lists[i] = gen.Uniform(20000, 1<<20, int64(700+i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = UnionMany(lists)
	}
}

var benchSink []uint32
