// Ranked top-k retrieval: document-at-a-time scorers over
// impact-annotated posting lists. Three algorithms share one heap and
// one cursor interface — an exhaustive multiway merge (the differential
// reference), MaxScore term partitioning, and Block-Max-WAND — and all
// three return the identical result list: the k highest-scoring
// documents ordered by (score desc, doc asc), where a document's score
// is the sum of its quantized per-term impacts across every query term
// that contains it (disjunctive semantics).
//
// Correctness of the pruning rules rests on one invariant: every
// algorithm scores candidate documents in strictly increasing docid
// order. A candidate therefore displaces the heap minimum only when its
// score is STRICTLY greater — on a tie the incumbent has the smaller
// docid and wins — which makes "upper bound <= threshold" an exact
// prune, not an approximation: a pruned document could at best tie, and
// a tie always loses.
package ops

import "sort"

// TopKMode selects the ranked-retrieval algorithm.
type TopKMode int

const (
	// TopKExhaustive scores every document in the union of the query's
	// posting lists with a document-at-a-time multiway merge. It decodes
	// every block and is the reference the pruned algorithms are
	// differentially tested against.
	TopKExhaustive TopKMode = iota
	// TopKMaxScore orders terms by ascending maximum impact and splits
	// them into a non-essential prefix (whose summed maxima cannot beat
	// the heap threshold) and an essential tail: candidates are drawn
	// only from essential lists, and non-essential lists are probed
	// highest-max first with an early exit as soon as the remaining
	// upper bound cannot lift the partial score past the threshold.
	TopKMaxScore
	// TopKBlockMax is Block-Max-WAND: WAND pivot selection on term
	// maxima, refined by per-block maxima — when the sum of the pivot
	// blocks' maxima cannot beat the threshold, the cursors skip
	// directly past the shallowest block boundary without decoding
	// anything.
	TopKBlockMax
)

// String returns the report name of the mode.
func (m TopKMode) String() string {
	switch m {
	case TopKExhaustive:
		return "exhaustive"
	case TopKMaxScore:
		return "maxscore"
	case TopKBlockMax:
		return "bmw"
	default:
		return "TopKMode(?)"
	}
}

// ImpactList is a posting list annotated with quantized impacts and
// per-block maxima. Impact blocks are positional: block i covers
// postings [i*blockLen, (i+1)*blockLen) of the docid-sorted list, the
// same cut the physical block frame uses, so "skip this block" maps
// directly onto "never decode these compressed bytes".
type ImpactList interface {
	// Len reports the number of postings.
	Len() int
	// TermMax reports the maximum quantized impact over the whole list
	// (the term's score upper bound).
	TermMax() uint32
	// NumBlocks reports the number of impact blocks.
	NumBlocks() int
	// BlockLast returns the last (largest) docid of block i; strictly
	// increasing in i.
	BlockLast(i int) uint32
	// BlockMax returns the maximum quantized impact within block i.
	BlockMax(i int) uint32
	// Cursor returns a fresh forward cursor positioned before the first
	// posting.
	Cursor() ImpactCursor
}

// ImpactCursor walks an ImpactList in increasing docid order. Cursors
// move only forward; Impact is valid after a successful Next or
// SeekGEQ and reports the impact of the docid just returned.
type ImpactCursor interface {
	// Next advances to the next document.
	Next() (doc uint32, ok bool)
	// SeekGEQ advances to the first document >= target (never moving
	// backward). Lazy cursors decode only the landed-on block.
	SeekGEQ(target uint32) (doc uint32, ok bool)
	// Impact reports the quantized impact of the current document.
	Impact() uint32
	// BlocksDecoded reports how many physical blocks this cursor has
	// materialized so far — the skipping currency the bench gate audits.
	BlocksDecoded() int
}

// ScoredDoc is one ranked result.
type ScoredDoc struct {
	Doc   uint32
	Score uint32
}

// TopKStats reports where a top-k evaluation spent its work. The
// decoded-vs-total block counters are the proof of real skipping:
// exhaustive always decodes everything, the pruned algorithms must not.
type TopKStats struct {
	Mode          string `json:"mode"`
	Lists         int    `json:"lists"`
	Postings      int    `json:"postings"`
	BlocksTotal   int    `json:"blocksTotal"`
	BlocksDecoded int    `json:"blocksDecoded"`
	DocsScored    int    `json:"docsScored"`
}

// topkHeap keeps the current k best results with the WORST at the root
// (lower score first, then larger docid), so the root's score is the
// threshold a new candidate must strictly beat.
type topkHeap struct {
	items []ScoredDoc
	k     int
}

// worse reports whether a ranks below b under (score desc, doc asc).
func worse(a, b ScoredDoc) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Doc > b.Doc
}

// threshold is the score a candidate must strictly exceed, or -1 while
// the heap still has room.
func (h *topkHeap) threshold() int64 {
	if len(h.items) < h.k {
		return -1
	}
	return int64(h.items[0].Score)
}

// offer inserts d if it beats the threshold. Candidates arrive in
// increasing docid order, so a candidate tying the root always loses.
func (h *topkHeap) offer(d ScoredDoc) {
	if len(h.items) < h.k {
		h.items = append(h.items, d)
		// Sift up.
		i := len(h.items) - 1
		for i > 0 {
			parent := (i - 1) / 2
			if !worse(h.items[i], h.items[parent]) {
				break
			}
			h.items[i], h.items[parent] = h.items[parent], h.items[i]
			i = parent
		}
		return
	}
	if int64(d.Score) <= int64(h.items[0].Score) {
		return
	}
	h.items[0] = d
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h.items) && worse(h.items[l], h.items[m]) {
			m = l
		}
		if r < len(h.items) && worse(h.items[r], h.items[m]) {
			m = r
		}
		if m == i {
			return
		}
		h.items[i], h.items[m] = h.items[m], h.items[i]
		i = m
	}
}

// sorted returns the heap contents ordered best-first.
func (h *topkHeap) sorted() []ScoredDoc {
	out := h.items
	sort.Slice(out, func(i, j int) bool { return worse(out[j], out[i]) })
	return out
}

// TopK returns the k highest-scoring documents across lists under the
// selected algorithm. All modes return identical results; they differ
// only in how much work they skip. Empty lists are ignored; fewer than
// k results are returned when the union is smaller than k. stats, when
// non-nil, is filled with the evaluation's work counters.
func (ev *Engine) TopK(mode TopKMode, k int, lists []ImpactList, stats *TopKStats) []ScoredDoc {
	if stats != nil {
		*stats = TopKStats{Mode: mode.String()}
	}
	if k <= 0 {
		return nil
	}
	live := make([]ImpactList, 0, len(lists))
	for _, il := range lists {
		if il != nil && il.Len() > 0 {
			live = append(live, il)
		}
	}
	cursors := make([]ImpactCursor, len(live))
	for i, il := range live {
		cursors[i] = il.Cursor()
		if stats != nil {
			stats.Lists++
			stats.Postings += il.Len()
			stats.BlocksTotal += il.NumBlocks()
		}
	}
	h := &topkHeap{k: k}
	scored := 0
	switch mode {
	case TopKMaxScore:
		scored = topkMaxScore(live, cursors, h)
	case TopKBlockMax:
		scored = topkBlockMax(live, cursors, h)
	default:
		scored = topkExhaustive(cursors, h)
	}
	if stats != nil {
		stats.DocsScored = scored
		for _, c := range cursors {
			stats.BlocksDecoded += c.BlocksDecoded()
		}
	}
	return h.sorted()
}

// topkExhaustive is the reference scorer: a DAAT multiway merge that
// fully scores every document in the union.
func topkExhaustive(cursors []ImpactCursor, h *topkHeap) int {
	type state struct {
		c   ImpactCursor
		doc uint32
	}
	act := make([]state, 0, len(cursors))
	for _, c := range cursors {
		if d, ok := c.Next(); ok {
			act = append(act, state{c, d})
		}
	}
	scored := 0
	for len(act) > 0 {
		d := act[0].doc
		for _, s := range act[1:] {
			if s.doc < d {
				d = s.doc
			}
		}
		var score uint32
		for i := 0; i < len(act); {
			if act[i].doc != d {
				i++
				continue
			}
			score += act[i].c.Impact()
			if nd, ok := act[i].c.Next(); ok {
				act[i].doc = nd
				i++
			} else {
				act[i] = act[len(act)-1]
				act = act[:len(act)-1]
			}
		}
		scored++
		h.offer(ScoredDoc{Doc: d, Score: score})
	}
	return scored
}

// topkMaxScore implements the MaxScore partitioning. Lists are ordered
// by ascending term maximum; ub[i] is the summed maxima of lists
// [0, i], so lists 0..ess-1 (where ub[ess-1] <= threshold) are
// non-essential: a document appearing ONLY in them cannot beat the
// heap. Candidates come from essential lists; non-essential lists are
// probed from highest maximum downward with an early exit once the
// remaining upper bound cannot close the gap.
func topkMaxScore(lists []ImpactList, cursors []ImpactCursor, h *topkHeap) int {
	n := len(lists)
	if n == 0 {
		return 0
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return lists[order[a]].TermMax() < lists[order[b]].TermMax()
	})
	type state struct {
		c    ImpactCursor
		doc  uint32
		live bool
	}
	st := make([]state, n)
	ub := make([]int64, n) // ub[i] = sum of term maxima of lists 0..i in order
	var acc int64
	for i, oi := range order {
		acc += int64(lists[oi].TermMax())
		ub[i] = acc
		c := cursors[oi]
		d, ok := c.Next()
		st[i] = state{c: c, doc: d, live: ok}
	}
	ess := 0 // first essential index; ub[ess-1] <= threshold
	scored := 0
	for {
		thr := h.threshold()
		for ess < n && ub[ess] <= thr {
			ess++
		}
		if ess == n {
			return scored // even all terms together cannot beat the heap
		}
		// Next candidate: minimum current doc over live essential lists.
		d := uint32(0)
		found := false
		for i := ess; i < n; i++ {
			if st[i].live && (!found || st[i].doc < d) {
				d = st[i].doc
				found = true
			}
		}
		if !found {
			return scored // essential lists exhausted; the rest cannot win
		}
		var score int64
		for i := ess; i < n; i++ {
			if st[i].live && st[i].doc == d {
				score += int64(st[i].c.Impact())
				if nd, ok := st[i].c.Next(); ok {
					st[i].doc = nd
				} else {
					st[i].live = false
				}
			}
		}
		// Probe non-essential lists highest-max first; stop as soon as
		// the achievable total cannot strictly beat the threshold.
		pruned := false
		for i := ess - 1; i >= 0; i-- {
			if score+ub[i] <= thr {
				pruned = true
				break
			}
			if !st[i].live {
				continue
			}
			if st[i].doc < d {
				if v, ok := st[i].c.SeekGEQ(d); ok {
					st[i].doc = v
				} else {
					st[i].live = false
					continue
				}
			}
			if st[i].doc == d {
				score += int64(st[i].c.Impact())
			}
		}
		if !pruned && score > thr {
			scored++
			h.offer(ScoredDoc{Doc: d, Score: uint32(score)})
		}
	}
}

// topkBlockMax implements Block-Max-WAND. The WAND pivot — the first
// docid at which enough term maxima stack up to beat the threshold —
// is re-checked against per-block maxima: when even the pivot blocks'
// summed maxima cannot beat the threshold, every cursor at or before
// the pivot skips past the shallowest block boundary (min over the
// pivot blocks' last docids) without decoding a single value.
func topkBlockMax(lists []ImpactList, cursors []ImpactCursor, h *topkHeap) int {
	type state struct {
		il  ImpactList
		c   ImpactCursor
		max int64
		doc uint32
	}
	st := make([]*state, 0, len(lists))
	for i, il := range lists {
		c := cursors[i]
		if d, ok := c.Next(); ok {
			st = append(st, &state{il: il, c: c, max: int64(il.TermMax()), doc: d})
		}
	}
	scored := 0
	for len(st) > 0 {
		// Keep lists ordered by current doc (insertion sort: the order
		// is nearly stable between iterations and n is query-sized).
		for i := 1; i < len(st); i++ {
			for j := i; j > 0 && st[j].doc < st[j-1].doc; j-- {
				st[j], st[j-1] = st[j-1], st[j]
			}
		}
		thr := h.threshold()
		// WAND pivot: first position where the summed maxima of the
		// prefix can strictly beat the threshold.
		p := -1
		var acc int64
		for i, s := range st {
			acc += s.max
			if acc > thr {
				p = i
				break
			}
		}
		if p < 0 {
			break // no document anywhere can beat the heap
		}
		pivot := st[p].doc
		for p+1 < len(st) && st[p+1].doc == pivot {
			p++
		}
		// Shallow check: per-block maxima of the blocks that would
		// contain the pivot.
		var blockUB int64
		for i := 0; i <= p; i++ {
			il := st[i].il
			nb := il.NumBlocks()
			b := sort.Search(nb, func(b int) bool { return il.BlockLast(b) >= pivot })
			if b < nb {
				blockUB += int64(il.BlockMax(b))
			}
		}
		if thr >= 0 && blockUB <= thr {
			// The pivot's blocks cannot produce a winner: jump past the
			// shallowest block boundary (or to the next list's doc,
			// whichever is nearer) without decoding.
			next := uint64(1) << 33 // past any docid
			for i := 0; i <= p; i++ {
				il := st[i].il
				nb := il.NumBlocks()
				b := sort.Search(nb, func(b int) bool { return il.BlockLast(b) >= pivot })
				if b < nb {
					if bound := uint64(il.BlockLast(b)) + 1; bound < next {
						next = bound
					}
				}
			}
			if p+1 < len(st) {
				if bound := uint64(st[p+1].doc); bound < next {
					next = bound
				}
			}
			target := uint32(next)
			if next >= uint64(1)<<32 {
				target = ^uint32(0)
			}
			for i := 0; i <= p; i++ {
				if st[i].doc >= target {
					continue
				}
				if v, ok := st[i].c.SeekGEQ(target); ok {
					st[i].doc = v
				} else {
					st[i] = nil
				}
			}
			st = compactStates(st)
			continue
		}
		// Full evaluation at the pivot document.
		var score int64
		for i := 0; i <= p; i++ {
			s := st[i]
			if s.doc < pivot {
				if v, ok := s.c.SeekGEQ(pivot); ok {
					s.doc = v
				} else {
					st[i] = nil
					continue
				}
			}
			if s.doc == pivot {
				score += int64(s.c.Impact())
			}
		}
		st = compactStates(st)
		scored++
		if score > thr {
			h.offer(ScoredDoc{Doc: pivot, Score: uint32(score)})
		}
		for i, s := range st {
			if s.doc != pivot {
				continue
			}
			if v, ok := s.c.Next(); ok {
				s.doc = v
			} else {
				st[i] = nil
			}
		}
		st = compactStates(st)
	}
	return scored
}

// compactStates removes nil (exhausted) entries in place.
func compactStates[T any](st []*T) []*T {
	out := st[:0]
	for _, s := range st {
		if s != nil {
			out = append(out, s)
		}
	}
	return out
}
