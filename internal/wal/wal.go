// Package wal is the append-only write-ahead log under the live index:
// the durability primitive that lets bvserve acknowledge an ingest or a
// delete before the document ever reaches a sealed BVIX3 segment.
//
// On-disk format. A log is a flat sequence of records, each
//
//	[u32 payload length][u32 CRC-32C of payload][payload bytes]
//
// little-endian, CRC-32C (Castagnoli) — the same polynomial the BVIX3
// container uses. The payload is opaque to this package; the live index
// layers its add/delete encoding on top. There is no file header: an
// empty file is a valid empty log, which is what crash-during-create
// leaves behind.
//
// Durability contract. Append returns only after the fsync that covers
// the record has completed — an acked record survives SIGKILL and power
// loss. With SyncEvery == 0 every append syncs individually; with a
// positive group-commit window, concurrent appenders share one fsync
// per window (Enqueue/Commit.Wait splits the two phases so a caller can
// serialize record order under its own lock without serializing the
// sync). A failed write or sync permanently brickes the log: every
// subsequent operation returns the original error, because a log whose
// tail state is unknown must not accept more records.
//
// Replay contract. Replay scans records in order and stops at the first
// frame that does not parse: short header, absurd length, length past
// EOF, or CRC mismatch. Everything before the bad frame is returned;
// everything from it on is a torn tail — the residue of a crash between
// write and sync — and Open truncates it (atomically, via rewrite +
// rename + dir fsync) so the next append cannot splice a new record
// onto garbage. Replay therefore returns a prefix of what was appended:
// at least every acked record (they were fully written and synced
// before the ack) and at most a few trailing unacked ones whose frames
// happened to land intact. No record is ever half-applied: a frame
// either round-trips its CRC or is discarded whole.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/faultio"
)

const (
	headerSize = 8
	// MaxRecord bounds a single payload; a length field above it means
	// the frame is garbage, not a record we failed to buffer.
	MaxRecord = 1 << 26
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// Options tunes a Log.
type Options struct {
	// FS is the file-system seam; nil means faultio.OS.
	FS faultio.FS
	// SyncEvery is the group-commit window: appends that arrive within
	// the same window share one fsync. Zero syncs every append
	// individually (safest, slowest); the ack-after-fsync contract is
	// identical either way.
	SyncEvery time.Duration
}

// Log is an open write-ahead log. Appends are safe for concurrent use.
type Log struct {
	path string
	fsys faultio.FS
	opts Options

	mu      sync.Mutex
	f       faultio.File
	size    int64 // durable + buffered bytes written so far
	synced  int64 // bytes covered by a completed fsync
	broken  error // first write/sync error; poisons the log
	closed  bool
	pending *Commit       // open group-commit batch, nil when none
	wake    chan struct{} // signals the flusher that a batch is open
	done    chan struct{} // closed when the flusher exits
}

// Commit is one group-commit batch handle. Wait blocks until the fsync
// covering every record enqueued into the batch has completed (or
// failed) and returns its error.
type Commit struct {
	ch  chan struct{}
	err error
}

// Wait blocks for the batch's fsync.
func (c *Commit) Wait() error {
	<-c.ch
	return c.err
}

// resolvedCommit is reused for the SyncEvery==0 path where Enqueue
// already synced.
func resolvedCommit(err error) *Commit {
	c := &Commit{ch: make(chan struct{})}
	c.err = err
	close(c.ch)
	return c
}

// Open replays the log at path, truncates any torn tail, and opens it
// for appending. The replayed payloads are returned in append order.
// A missing file is an empty log — Open creates it.
func Open(path string, opts Options) (*Log, [][]byte, error) {
	if opts.FS == nil {
		opts.FS = faultio.OS
	}
	recs, valid, total, err := scan(opts.FS, path)
	if err != nil {
		return nil, nil, err
	}
	if valid < total {
		// Torn tail: rewrite the valid prefix and atomically swap it in,
		// so the appender never splices fresh records onto garbage.
		if err := truncateTo(opts.FS, path, valid); err != nil {
			return nil, nil, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
		}
	}
	f, err := opts.FS.OpenAppend(path)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	l := &Log{
		path: path, fsys: opts.FS, opts: opts, f: f,
		size: valid, synced: valid,
		wake: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	if opts.SyncEvery > 0 {
		go l.flusher()
	} else {
		close(l.done)
	}
	return l, recs, nil
}

// Replay reads the log at path without opening it for append, returning
// the payloads of every intact record in order. A missing file is an
// empty log. The torn tail, if any, is left on disk untouched.
func Replay(fsys faultio.FS, path string) ([][]byte, error) {
	if fsys == nil {
		fsys = faultio.OS
	}
	recs, _, _, err := scan(fsys, path)
	return recs, err
}

// scan reads the whole file and parses records until the first bad
// frame. It returns the intact payloads, the byte length of the valid
// prefix, and the total file length. A missing file scans as empty.
func scan(fsys faultio.FS, path string) (recs [][]byte, valid, total int64, err error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, 0, 0, nil
		}
		return nil, 0, 0, fmt.Errorf("wal: read %s: %w", path, err)
	}
	total = int64(len(data))
	off := 0
	for {
		if len(data)-off < headerSize {
			break // short header: torn tail (or clean EOF at off == len)
		}
		n := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n > MaxRecord || int(n) > len(data)-off-headerSize {
			break // absurd or past-EOF length: torn tail
		}
		payload := data[off+headerSize : off+headerSize+int(n)]
		if crc32.Checksum(payload, castagnoli) != sum {
			break // bit rot or torn mid-payload
		}
		recs = append(recs, append([]byte(nil), payload...))
		off += headerSize + int(n)
	}
	return recs, int64(off), total, nil
}

// truncateTo rewrites the first n bytes of path and renames the copy
// over the original — the faultio.FS surface has no Truncate, and the
// rewrite keeps the swap atomic on top of the same rename discipline
// WriteFile uses.
func truncateTo(fsys faultio.FS, path string, n int64) error {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return err
	}
	if int64(len(data)) < n {
		return fmt.Errorf("file shrank under truncate: %d < %d", len(data), n)
	}
	tmp := path + ".trunc"
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data[:n]); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return fsys.SyncDir(filepath.Dir(path))
}

// Append writes one record and blocks until it is durable. Equivalent
// to Enqueue(payload).Wait().
func (l *Log) Append(payload []byte) error {
	return l.Enqueue(payload).Wait()
}

// Enqueue writes one record into the current group-commit batch and
// returns the batch handle; the record is durable once Wait returns
// nil. Callers that need record order to match an externally-locked
// application order call Enqueue under their lock and Wait outside it.
func (l *Log) Enqueue(payload []byte) *Commit {
	l.mu.Lock()
	if l.broken != nil {
		l.mu.Unlock()
		return resolvedCommit(l.broken)
	}
	if l.closed {
		l.mu.Unlock()
		return resolvedCommit(ErrClosed)
	}
	frame := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, castagnoli))
	copy(frame[headerSize:], payload)
	if _, err := l.f.Write(frame); err != nil {
		l.broken = fmt.Errorf("wal: append %s: %w", l.path, err)
		err := l.broken
		l.mu.Unlock()
		return resolvedCommit(err)
	}
	l.size += int64(len(frame))
	if l.opts.SyncEvery <= 0 {
		err := l.syncLocked()
		l.mu.Unlock()
		return resolvedCommit(err)
	}
	if l.pending == nil {
		l.pending = &Commit{ch: make(chan struct{})}
		select {
		case l.wake <- struct{}{}:
		default:
		}
	}
	c := l.pending
	l.mu.Unlock()
	return c
}

// syncLocked fsyncs the file and advances the durable watermark; the
// caller holds l.mu.
func (l *Log) syncLocked() error {
	if l.broken != nil {
		return l.broken
	}
	if l.synced == l.size {
		// Nothing unsynced — also what keeps a flusher that fires after
		// Close already synced from touching the closed file.
		return nil
	}
	if err := l.f.Sync(); err != nil {
		l.broken = fmt.Errorf("wal: sync %s: %w", l.path, err)
		return l.broken
	}
	l.synced = l.size
	return nil
}

// flusher is the group-commit loop: each open batch is synced one
// window after it opened, releasing every waiter at once.
func (l *Log) flusher() {
	defer close(l.done)
	for range l.wake {
		time.Sleep(l.opts.SyncEvery)
		l.mu.Lock()
		c := l.pending
		l.pending = nil
		if c == nil {
			l.mu.Unlock()
			continue
		}
		c.err = l.syncLocked()
		l.mu.Unlock()
		close(c.ch)
	}
	// Drain: resolve any batch left behind after Close stopped the loop.
	l.mu.Lock()
	if c := l.pending; c != nil {
		l.pending = nil
		c.err = ErrClosed
		if l.broken != nil {
			c.err = l.broken
		}
		l.mu.Unlock()
		close(c.ch)
		return
	}
	l.mu.Unlock()
}

// Sync forces an fsync outside any window — the seal path calls it
// before rotating logs.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

// Size reports the log's byte length including any not-yet-synced tail.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Pending reports bytes written but not yet covered by an fsync — the
// /stats "WAL bytes pending" gauge.
func (l *Log) Pending() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size - l.synced
}

// Path reports the log's file path.
func (l *Log) Path() string { return l.path }

// Close syncs and closes the log. Safe to call once; the log is
// unusable afterward.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	serr := error(nil)
	if l.broken == nil {
		serr = l.syncLocked()
	}
	cerr := l.f.Close()
	flusherRunning := l.opts.SyncEvery > 0
	l.mu.Unlock()
	if flusherRunning {
		close(l.wake)
		<-l.done
	}
	if serr != nil {
		return serr
	}
	return cerr
}
