package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultio"
)

// frame encodes one well-formed record frame.
func frame(payload []byte) []byte {
	out := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(out, uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:], crc32.Checksum(payload, castagnoli))
	copy(out[headerSize:], payload)
	return out
}

// tornImages captures real torn-write WAL images by replaying an append
// workload through faultio with the frame write torn at assorted byte
// offsets — the exact residue a crash between write and sync leaves.
func tornImages(tb testing.TB) [][]byte {
	var images [][]byte
	for _, torn := range []int{0, 3, 7, 8, 9, 20} {
		dir := tb.(interface{ TempDir() string }).TempDir()
		path := filepath.Join(dir, "wal.log")
		inj := faultio.NewInjector(faultio.OS, faultio.Fault{
			Op: faultio.OpWrite, N: 3, Mode: faultio.ModeTorn, TornBytes: torn, Kill: true,
		})
		l, _, err := Open(path, Options{FS: inj})
		if err != nil {
			continue
		}
		for i := 0; i < 4; i++ {
			if err := l.Append([]byte(fmt.Sprintf("seed-record-%d-payload", i))); err != nil {
				break
			}
		}
		l.Close()
		if img, err := os.ReadFile(path); err == nil {
			images = append(images, img)
		}
	}
	return images
}

// FuzzWALReplay feeds arbitrary byte images to the replay path. The
// invariants: replay never panics, never returns an error for a
// readable file, never yields a record whose re-encoded frame is not a
// literal prefix-aligned slice of the image (no resurrecting bytes that
// were never appended), and Open after replay always truncates to a
// clean state that accepts new appends.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add(frame([]byte("hello")))
	f.Add(append(frame([]byte("a")), frame([]byte("bb"))...))
	// Torn tails: a valid record then a half-written frame.
	f.Add(append(frame([]byte("acked")), 0x09, 0x00, 0x00))
	// Bit-flipped CRC.
	bad := frame([]byte("flip"))
	bad[5] ^= 0x40
	f.Add(bad)
	// Garbage appended after valid records.
	f.Add(append(append(frame([]byte("x")), frame([]byte("y"))...), 0xde, 0xad, 0xbe, 0xef))
	// Absurd length prefix.
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 1, 2, 3, 4, 5})
	// faultio-captured torn-write images.
	for _, img := range tornImages(f) {
		f.Add(img)
	}
	// Deterministic at-rest corruption of a multi-record image.
	clean := bytes.Join([][]byte{frame([]byte("r0")), frame(bytes.Repeat([]byte("r1"), 60)), frame([]byte("r2"))}, nil)
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(faultio.Mutate(append([]byte(nil), clean...), seed))
	}

	f.Fuzz(func(t *testing.T, image []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "wal.log")
		if err := os.WriteFile(path, image, 0o644); err != nil {
			t.Skip()
		}
		recs, err := Replay(nil, path)
		if err != nil {
			t.Fatalf("replay errored on a readable file: %v", err)
		}
		// Every replayed record must be byte-identical to the frame at
		// its offset in the image — replay may only ever surface a
		// prefix of what was physically written.
		off := 0
		for i, r := range recs {
			fr := frame(r)
			if off+len(fr) > len(image) || !bytes.Equal(image[off:off+len(fr)], fr) {
				t.Fatalf("record %d is not the literal frame at offset %d", i, off)
			}
			off += len(fr)
		}
		// Open must truncate whatever follows the valid prefix and
		// leave an appendable log.
		l, recs2, err := Open(path, Options{})
		if err != nil {
			t.Fatalf("open after replay: %v", err)
		}
		if len(recs2) != len(recs) {
			t.Fatalf("open replayed %d records, raw replay saw %d", len(recs2), len(recs))
		}
		if err := l.Append([]byte("appended-after-recovery")); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		final, err := Replay(nil, path)
		if err != nil {
			t.Fatal(err)
		}
		if len(final) != len(recs)+1 {
			t.Fatalf("post-recovery log replays %d records, want %d", len(final), len(recs)+1)
		}
		if string(final[len(final)-1]) != "appended-after-recovery" {
			t.Fatal("post-recovery append lost")
		}
	})
}
