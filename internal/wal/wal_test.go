package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/faultio"
)

func testRecords(n int) [][]byte {
	recs := make([][]byte, n)
	for i := range recs {
		recs[i] = []byte(fmt.Sprintf("record-%04d-%s", i, bytes.Repeat([]byte{byte(i)}, i%97)))
	}
	return recs
}

func TestAppendReplayRoundtrip(t *testing.T) {
	for _, window := range []time.Duration{0, 2 * time.Millisecond} {
		t.Run(fmt.Sprintf("window=%v", window), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "wal.log")
			l, replayed, err := Open(path, Options{SyncEvery: window})
			if err != nil {
				t.Fatal(err)
			}
			if len(replayed) != 0 {
				t.Fatalf("fresh log replayed %d records", len(replayed))
			}
			want := testRecords(50)
			for _, r := range want {
				if err := l.Append(r); err != nil {
					t.Fatal(err)
				}
			}
			if l.Pending() != 0 {
				t.Fatalf("acked appends left %d pending bytes", l.Pending())
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			_, got, err := Open(path, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("replayed %d records, want %d", len(got), len(want))
			}
			for i := range want {
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("record %d mismatch", i)
				}
			}
		})
	}
}

func TestGroupCommitShares(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _, err := Open(path, Options{SyncEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := l.Append([]byte(fmt.Sprintf("c%d", i))); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	recs, err := Replay(nil, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 32 {
		t.Fatalf("replayed %d records, want 32", len(recs))
	}
}

// TestTornTailTruncated writes a clean log, appends garbage half-frames
// of several shapes, and requires Open to replay exactly the clean
// prefix and physically truncate the tail.
func TestTornTailTruncated(t *testing.T) {
	tails := map[string][]byte{
		"short-header":    {0x03, 0x00},
		"length-past-eof": {0xff, 0x00, 0x00, 0x00, 0x11, 0x22, 0x33, 0x44, 'x'},
		"absurd-length":   {0xff, 0xff, 0xff, 0xff, 0x11, 0x22, 0x33, 0x44},
		"bad-crc":         {0x01, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 'z'},
	}
	for name, tail := range tails {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "wal.log")
			l, _, err := Open(path, Options{})
			if err != nil {
				t.Fatal(err)
			}
			want := testRecords(7)
			for _, r := range want {
				if err := l.Append(r); err != nil {
					t.Fatal(err)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(tail); err != nil {
				t.Fatal(err)
			}
			f.Close()
			dirty, _ := os.ReadFile(path)
			l2, got, err := Open(path, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("replayed %d records, want %d", len(got), len(want))
			}
			clean, _ := os.ReadFile(path)
			if len(clean) != len(dirty)-len(tail) {
				t.Fatalf("torn tail not truncated: %d bytes on disk, want %d", len(clean), len(dirty)-len(tail))
			}
			// The truncated log must accept appends again.
			if err := l2.Append([]byte("after-recovery")); err != nil {
				t.Fatal(err)
			}
			l2.Close()
			recs, err := Replay(nil, path)
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != len(want)+1 || string(recs[len(recs)-1]) != "after-recovery" {
				t.Fatalf("post-recovery append not replayed (got %d records)", len(recs))
			}
		})
	}
}

// TestTornWriteMatrix tears the frame write at every interesting byte
// offset via faultio and requires replay to recover exactly the records
// acked before the tear — never a partial record.
func TestTornWriteMatrix(t *testing.T) {
	probe := testRecords(5)
	frameLen := headerSize + len(probe[3])
	for _, torn := range []int{0, 1, 4, headerSize, headerSize + 1, frameLen / 2, frameLen - 1} {
		t.Run(fmt.Sprintf("torn=%d", torn), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "wal.log")
			inj := faultio.NewInjector(faultio.OS, faultio.Fault{
				Op: faultio.OpWrite, N: 4, Mode: faultio.ModeTorn, TornBytes: torn, Kill: true,
			})
			l, _, err := Open(path, Options{FS: inj})
			if err != nil {
				t.Fatal(err)
			}
			acked := 0
			for _, r := range probe {
				if err := l.Append(r); err != nil {
					break
				}
				acked++
			}
			if acked != 3 {
				t.Fatalf("acked %d records, want 3 (fault on 4th write)", acked)
			}
			got, err := Replay(nil, path)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) < acked {
				t.Fatalf("lost acked records: replayed %d, acked %d", len(got), acked)
			}
			for i := 0; i < acked; i++ {
				if !bytes.Equal(got[i], probe[i]) {
					t.Fatalf("acked record %d corrupted on replay", i)
				}
			}
			// Anything beyond the acked prefix must still be a byte-exact
			// record that was actually submitted, never a hybrid.
			for i := acked; i < len(got); i++ {
				if !bytes.Equal(got[i], probe[i]) {
					t.Fatalf("replay resurrected a record that was never fully written: %q", got[i])
				}
			}
		})
	}
}

// TestKillAtEveryOp drives an append workload through faultio kill
// points at every operation index and asserts the acked prefix is
// always recoverable.
func TestKillAtEveryOp(t *testing.T) {
	records := testRecords(6)
	trace, err := faultio.Record(faultio.OS, func(fsys faultio.FS) error {
		dir := t.TempDir()
		l, _, err := Open(filepath.Join(dir, "wal.log"), Options{FS: fsys})
		if err != nil {
			return err
		}
		for _, r := range records {
			if err := l.Append(r); err != nil {
				return err
			}
		}
		return l.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= len(trace); n++ {
		dir := t.TempDir()
		path := filepath.Join(dir, "wal.log")
		inj := faultio.NewInjector(faultio.OS, faultio.Fault{Op: faultio.OpAny, N: n, Kill: true})
		acked := 0
		l, _, err := Open(path, Options{FS: inj})
		if err == nil {
			for _, r := range records {
				if err := l.Append(r); err != nil {
					break
				}
				acked++
			}
			l.Close()
		}
		got, err := Replay(nil, path)
		if err != nil {
			t.Fatalf("kill=%d: replay failed: %v", n, err)
		}
		if len(got) < acked {
			t.Fatalf("kill=%d: lost acked records: replayed %d, acked %d", n, len(got), acked)
		}
		for i := range got {
			if i < len(records) && !bytes.Equal(got[i], records[i]) {
				t.Fatalf("kill=%d: record %d corrupted", n, i)
			}
		}
	}
}

func TestBrokenLogStaysBroken(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	inj := faultio.NewInjector(faultio.OS, faultio.Fault{Op: faultio.OpSync, N: 2, Kill: true})
	l, _, err := Open(path, Options{FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("two")); err == nil {
		t.Fatal("append after failed sync did not error")
	}
	if err := l.Append([]byte("three")); err == nil {
		t.Fatal("broken log accepted another append")
	}
	if !errors.Is(l.Close(), faultio.ErrKilled) && l.Close() == nil {
		// Close reports the underlying close failure; it must not claim
		// durability for the unacked records either way.
		t.Log("close error tolerated")
	}
}
