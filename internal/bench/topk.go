// Ranked top-k benchmark matrix: the pruned document-at-a-time
// algorithms (MaxScore, Block-Max-WAND) against the exhaustive
// reference scorer, evaluated through the full serving path — a
// BVIX3+impacts file opened zero-copy, impact cursors decoding
// compressed blocks on demand. RunTopK both measures and gates:
//
//   - identity gate (always fatal): every algorithm must return the
//     exact ranking the exhaustive scorer returns, cell by cell. The
//     pruned paths are optimizations, never approximations.
//   - skip gate (counter-based, race-safe): in at least one cell
//     Block-Max-WAND must decode no more than MaxDecodedFrac of the
//     posting blocks the exhaustive scorer decodes. Block skipping is
//     the whole point of the impacts section; this is its proof.
//   - speedup gate (timing, informational under -race): at least one
//     cell where BMW beats exhaustive wall-clock by >= MinSpeedup.
//
// `make bench` runs the full matrix and writes results/BENCH_topk.json;
// the quick matrix runs in the ordinary test suite.
package bench

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/codecs"
	"repro/internal/index"
	"repro/internal/ops"
)

// topkAlgos are the pinned algorithms a matrix cell times, reference
// first.
var topkAlgos = []string{"exhaustive", "maxscore", "bmw"}

// TopKConfig scales the ranked-retrieval matrix.
type TopKConfig struct {
	Docs    int   // corpus size
	Commons int   // low-impact stopword-like terms (freq 1, ~70% of docs)
	Rares   int   // high-impact selective terms (freq 4..7)
	RareOdd int   // a rare term hits one doc in RareOdd
	Trials  int   // timed repetitions (best is kept)
	Ks      []int // result-set sizes
	Seed    int64

	// MinSpeedup is the wall-clock factor BMW must beat exhaustive by in
	// at least one cell; MaxDecodedFrac is the block-decode fraction BMW
	// must get under in at least one cell.
	MinSpeedup     float64
	MaxDecodedFrac float64
}

// DefaultTopK is the committed-results configuration (~seconds).
func DefaultTopK() TopKConfig {
	return TopKConfig{
		Docs:           120000,
		Commons:        6,
		Rares:          4,
		RareOdd:        2000,
		Trials:         5,
		Ks:             []int{10, 100, 1000},
		Seed:           42,
		MinSpeedup:     1.3,
		MaxDecodedFrac: 0.6,
	}
}

// QuickTopK shrinks the matrix for the ordinary test suite while
// keeping the skewed shape that makes blocks skippable.
func QuickTopK() TopKConfig {
	c := DefaultTopK()
	c.Docs = 20000
	c.RareOdd = 1200
	c.Trials = 3
	c.Ks = []int{10}
	return c
}

// TopKCell is one (query, k) row: per-algorithm wall time plus the
// block-decode counters that prove (or disprove) skipping.
type TopKCell struct {
	Terms         []string `json:"terms"`
	K             int      `json:"k"`
	Results       int      `json:"results"`
	ExhaustiveMS  float64  `json:"exhaustive_ms"`
	MaxScoreMS    float64  `json:"maxscore_ms"`
	BMWMS         float64  `json:"bmw_ms"`
	BlocksTotal   int      `json:"blocks_total"`
	BMWDecoded    int      `json:"bmw_blocks_decoded"`
	DecodedFrac   float64  `json:"bmw_decoded_frac"`
	SpeedupVsExh  float64  `json:"bmw_speedup"`
	MaxScoreSpeed float64  `json:"maxscore_speedup"`
}

// TopKReport is the gated result of a matrix run.
type TopKReport struct {
	Docs           int        `json:"docs"`
	Terms          int        `json:"terms"`
	Trials         int        `json:"trials"`
	Cells          []TopKCell `json:"cells"`
	MaxSpeedup     float64    `json:"max_speedup"`
	MinDecodedFrac float64    `json:"min_decoded_frac"`
	Pass           bool       `json:"pass"`
	Failures       []string   `json:"failures,omitempty"`
}

// buildTopKCorpus writes a skewed synthetic corpus shaped so pruning
// has something to prune: common terms appear in ~70% of documents at
// impact 1 (long lists whose block maxima are flat and low), rare
// terms hit one doc in cfg.RareOdd with 4-7 repetitions (short lists
// whose impacts set the heap threshold). With the threshold above any
// common block's maximum, BMW can skip common blocks wholesale.
//
// The corpus is built with a list codec (VB) rather than the adaptive
// advisor: block skipping is a property of the block-decoded list
// path, and this matrix exists to measure exactly that path. (Bitmap
// postings have no block frame to skip; their cursors honestly report
// every block decoded, which would mask the counter this gate audits.)
func buildTopKCorpus(cfg TopKConfig) (*index.Builder, error) {
	codec, err := codecs.ByName("VB")
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := index.NewBuilder(codec)
	var sb strings.Builder
	for d := 0; d < cfg.Docs; d++ {
		sb.Reset()
		for c := 0; c < cfg.Commons; c++ {
			if rng.Float64() < 0.7 {
				fmt.Fprintf(&sb, "common%d ", c)
			}
		}
		for r := 0; r < cfg.Rares; r++ {
			if rng.Intn(cfg.RareOdd) == 0 {
				reps := 4 + rng.Intn(4)
				for i := 0; i < reps; i++ {
					fmt.Fprintf(&sb, "rare%d ", r)
				}
			}
		}
		if sb.Len() == 0 {
			sb.WriteString("filler")
		}
		b.AddDocument(sb.String())
	}
	return b, nil
}

// topkQueries is the query matrix: selective rare terms paired with
// long common lists (the prunable shape), plus an all-common query
// where pruning has nothing to cut — the matrix should show both.
func topkQueries(cfg TopKConfig) [][]string {
	return [][]string{
		{"rare0", "common0"},
		{"rare1", "common0", "common1"},
		{"rare2", "rare3", "common2"},
		{"common0", "common1"},
	}
}

// RunTopK builds the corpus, publishes it as a BVIX3+impacts file,
// reopens it zero-copy, and runs the gated matrix against the mapping —
// the same path a production server serves from.
func RunTopK(cfg TopKConfig) (*TopKReport, error) {
	b, err := buildTopKCorpus(cfg)
	if err != nil {
		return nil, err
	}
	built, err := b.Build()
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "bench-topk-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "topk.bvix")
	if err := built.WriteFile(path, index.FormatBVIX3Impacts); err != nil {
		return nil, err
	}
	idx, err := index.OpenFile(path)
	if err != nil {
		return nil, err
	}
	defer idx.Close()

	rep := &TopKReport{Docs: idx.Docs(), Terms: idx.Terms(), Trials: cfg.Trials, Pass: true}
	rep.MinDecodedFrac = 1
	for _, terms := range topkQueries(cfg) {
		for _, k := range cfg.Ks {
			cell, err := runTopKCell(cfg, idx, terms, k, rep)
			if err != nil {
				return nil, err
			}
			rep.Cells = append(rep.Cells, cell)
			if cell.SpeedupVsExh > rep.MaxSpeedup {
				rep.MaxSpeedup = cell.SpeedupVsExh
			}
			if cell.BlocksTotal > 0 && cell.DecodedFrac < rep.MinDecodedFrac {
				rep.MinDecodedFrac = cell.DecodedFrac
			}
		}
	}
	if rep.MinDecodedFrac > cfg.MaxDecodedFrac {
		rep.Pass = false
		rep.Failures = append(rep.Failures, fmt.Sprintf(
			"no cell decoded <= %.0f%% of its blocks (best %.0f%%): block-max skipping is not engaging",
			100*cfg.MaxDecodedFrac, 100*rep.MinDecodedFrac))
	}
	if rep.MaxSpeedup < cfg.MinSpeedup {
		rep.Pass = false
		rep.Failures = append(rep.Failures, fmt.Sprintf(
			"no cell reached %.2fx BMW speedup over exhaustive (max %.2fx)",
			cfg.MinSpeedup, rep.MaxSpeedup))
	}
	return rep, nil
}

// runTopKCell measures one (query, k) cell and enforces the identity
// gate: every algorithm's full (doc, score) ranking must equal the
// exhaustive reference's. An identity failure poisons the whole run —
// it is reported through rep.Failures AND fails the cell hard, because
// a pruned algorithm returning different results is a correctness bug
// no timing can excuse.
func runTopKCell(cfg TopKConfig, idx *index.Index, terms []string, k int, rep *TopKReport) (TopKCell, error) {
	cell := TopKCell{Terms: terms, K: k}
	var ref []index.Result
	for _, algo := range topkAlgos {
		var stats ops.TopKStats
		res, err := idx.TopKWith(algo, k, &stats, terms...)
		if err != nil {
			return cell, fmt.Errorf("topk %v k=%d %s: %w", terms, k, algo, err)
		}
		switch algo {
		case "exhaustive":
			ref = res
			cell.Results = len(res)
			cell.BlocksTotal = stats.BlocksTotal
		case "bmw":
			cell.BMWDecoded = stats.BlocksDecoded
			if stats.BlocksTotal > 0 {
				cell.DecodedFrac = float64(stats.BlocksDecoded) / float64(stats.BlocksTotal)
			}
		}
		if algo != "exhaustive" && !sameRanking(ref, res) {
			return cell, fmt.Errorf("topk %v k=%d: %s ranking diverges from exhaustive", terms, k, algo)
		}
		ms := timePerOp(cfg.Trials, 2, func() {
			res, err = idx.TopKWith(algo, k, nil, terms...)
		})
		if err != nil {
			return cell, err
		}
		switch algo {
		case "exhaustive":
			cell.ExhaustiveMS = ms
		case "maxscore":
			cell.MaxScoreMS = ms
		case "bmw":
			cell.BMWMS = ms
		}
	}
	if cell.BMWMS > 0 {
		cell.SpeedupVsExh = cell.ExhaustiveMS / cell.BMWMS
	}
	if cell.MaxScoreMS > 0 {
		cell.MaxScoreSpeed = cell.ExhaustiveMS / cell.MaxScoreMS
	}
	return cell, nil
}

// sameRanking reports exact (doc, score) sequence equality.
func sameRanking(a, b []index.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
