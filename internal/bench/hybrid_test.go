package bench

import (
	"encoding/json"
	"flag"
	"os"
	"testing"
)

var (
	hybridOut  = flag.String("hybrid.out", "", "write the hybrid matrix report JSON to this path")
	hybridFull = flag.Bool("hybrid.full", false, "run the committed-results matrix instead of the quick one")
)

// TestHybridBenchGate runs the adaptive-vs-mono matrix and applies both
// gates: no cell's advisor pick may be Pareto-dominated by a candidate
// codec, and at least one mixed/galloping cell must beat the serial
// decompress-and-merge reference by MinSpeedup. `make bench` runs this
// with -hybrid.full -hybrid.out to (re)generate results/BENCH_hybrid.json.
func TestHybridBenchGate(t *testing.T) {
	cfg := QuickHybrid()
	if *hybridFull {
		cfg = DefaultHybrid()
	}
	rep, err := RunHybrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *hybridOut != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(*hybridOut, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d cells, max speedup %.1fx)", *hybridOut, len(rep.Cells), rep.MaxSpeedup)
	}
	for _, s := range rep.Speedups {
		t.Logf("%-18s %8.3fms -> %8.3fms (%6.1fx)  %s", s.Name, s.BaselineMS, s.EngineMS, s.Speedup, s.Detail)
	}
	if !rep.Pass {
		// Race instrumentation skews codec families by wildly different
		// factors (bitmap word loops vs block decoders), so the timing
		// gates only bind in uninstrumented builds.
		if raceEnabled {
			t.Logf("race detector enabled, timing gates informational: %v", rep.Failures)
		} else {
			for _, f := range rep.Failures {
				t.Error(f)
			}
		}
	}
	// Every cell's pick must come from the advisor's candidate set —
	// anything else means the decision table and the matrix diverged.
	for _, c := range rep.Cells {
		if _, ok := c.Candidates[c.Pick]; !ok {
			t.Errorf("%s/density=%g: pick %q is not a candidate codec", c.Dist, c.Density, c.Pick)
		}
	}
}
