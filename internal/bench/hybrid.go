// Hybrid-index benchmark matrix: the adaptive advisor's per-list codec
// pick against every candidate codec across the paper's density ×
// distribution grid, plus engine-vs-reference speedup cells for the
// two new intersection kernels (galloping SvS over skip frames, mixed
// bucket×seeker). RunHybrid both measures and gates:
//
//   - grid gate: no candidate codec may Pareto-dominate the advisor's
//     pick beyond noise — strictly better on space AND every op time at
//     once. The advisor trades space against speed by decision class
//     (DESIGN §8), so losing one metric to one codec is expected; losing
//     all of them means the decision table picked a strictly worse
//     codec for that cell.
//   - speedup gate: at least one cell where the engine's mixed/galloping
//     path beats the decompress-and-merge reference (every leaf fully
//     decompressed, linear merges — the paper's baseline strategy and
//     the engine's behavior before skip probes and the mixed kernel)
//     by >= MinSpeedup.
//
// `make bench` runs the full matrix and writes results/BENCH_hybrid.json;
// the quick matrix runs in the ordinary test suite.
package bench

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/codecs"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/ops"
)

// hybridCandidates are the advisor's four decision-class codecs
// (core.AdviseList): every pick lands on one of these.
var hybridCandidates = []string{"Roaring", "Roaring+Run", "SIMDBP128*", "SIMDPforDelta*"}

// HybridConfig scales the matrix.
type HybridConfig struct {
	Domain    uint32    // synthetic-data domain d
	Densities []float64 // list densities n/d (paper grid: 1e-4 .. 0.3)
	Dists     []string  // distributions (uniform, zipf, markov)
	Trials    int       // timed repetitions (best is kept)
	SizeTol   float64   // fractional space slack before "dominated"
	TimeTol   float64   // fractional time slack before "dominated"
	// Speedup-cell shape: the large side of the skewed pairs and the
	// small:large ratio (the issue's 1:10^4 end of the sweep).
	SkewLarge  int
	SkewRatio  int
	MinSpeedup float64
}

// DefaultHybrid is the committed-results configuration (~seconds).
func DefaultHybrid() HybridConfig {
	return HybridConfig{
		Domain:     1 << 20,
		Densities:  []float64{1e-4, 1e-3, 1e-2, 0.1, 0.3},
		Dists:      []string{"uniform", "zipf", "markov"},
		Trials:     5,
		SizeTol:    0.02,
		TimeTol:    0.35,
		SkewLarge:  1 << 21,
		SkewRatio:  10000,
		MinSpeedup: 1.5,
	}
}

// QuickHybrid shrinks the matrix for the ordinary test suite while
// keeping every decision class and both speedup kernels reachable.
func QuickHybrid() HybridConfig {
	c := DefaultHybrid()
	c.Domain = 1 << 17
	c.Densities = []float64{1e-3, 0.05, 0.3}
	c.Trials = 3
	c.SkewLarge = 1 << 17
	c.SkewRatio = 1000
	return c
}

// HybridMetric is one measured (codec, cell) row.
type HybridMetric struct {
	SpaceBytes   int     `json:"space_bytes"`
	DecompressMS float64 `json:"decompress_ms"`
	AndMS        float64 `json:"and_ms"`
	OrMS         float64 `json:"or_ms"`
}

// HybridCell is one grid cell: the advisor's pick vs all candidates.
type HybridCell struct {
	Dist        string                  `json:"dist"`
	Density     float64                 `json:"density"`
	N           int                     `json:"n"`
	Pick        string                  `json:"pick"`
	PickReason  string                  `json:"pick_reason"`
	Hybrid      HybridMetric            `json:"hybrid"`
	Candidates  map[string]HybridMetric `json:"candidates"`
	DominatedBy []string                `json:"dominated_by,omitempty"`
}

// SpeedupCell is one engine-vs-reference row: the decompress-and-merge
// reference against the pooled engine's kernel path on the same
// postings and plan.
type SpeedupCell struct {
	Name       string  `json:"name"`
	Detail     string  `json:"detail"`
	BaselineMS float64 `json:"baseline_ms"`
	EngineMS   float64 `json:"engine_ms"`
	Speedup    float64 `json:"speedup"`
}

// HybridReport is the gated result of a full matrix run.
type HybridReport struct {
	Domain     uint32        `json:"domain"`
	Trials     int           `json:"trials"`
	Cells      []HybridCell  `json:"cells"`
	Speedups   []SpeedupCell `json:"speedups"`
	MaxSpeedup float64       `json:"max_speedup"`
	Pass       bool          `json:"pass"`
	Failures   []string      `json:"failures,omitempty"`
}

// timePerOp reports the best-of-trials per-call wall time of f in ms,
// batching reps calls per trial so sub-microsecond ops don't drown in
// timer noise.
func timePerOp(trials, reps int, f func()) float64 {
	if reps < 1 {
		reps = 1
	}
	best := 0.0
	for t := 0; t < trials || t == 0; t++ {
		start := time.Now()
		for r := 0; r < reps; r++ {
			f()
		}
		el := float64(time.Since(start).Nanoseconds()) / 1e6 / float64(reps)
		if t == 0 || el < best {
			best = el
		}
	}
	return best
}

// hybridReps sizes the batching loop so each timed trial does on the
// order of a few hundred thousand decoded values of work.
func hybridReps(n int) int {
	if n <= 0 {
		return 256
	}
	r := 1 << 18 / n
	if r < 1 {
		return 1
	}
	return r
}

// measureHybridPair compresses (a, b) under the given codec names and
// measures decompress/AND/OR through the pooled engine.
func measureHybridPair(trials int, nameA, nameB string, a, b []uint32) (HybridMetric, error) {
	var m HybridMetric
	ca, err := codecs.ByName(nameA)
	if err != nil {
		return m, err
	}
	cb, err := codecs.ByName(nameB)
	if err != nil {
		return m, err
	}
	pa, err := ca.Compress(a)
	if err != nil {
		return m, fmt.Errorf("%s: %w", nameA, err)
	}
	pb, err := cb.Compress(b)
	if err != nil {
		return m, fmt.Errorf("%s: %w", nameB, err)
	}
	ps := []core.Posting{pa, pb}
	m.SpaceBytes = sizeOf(ps)
	eng := ops.Default()
	reps := hybridReps(len(a) + len(b))
	var sink []uint32
	var evalErr error
	m.DecompressMS = timePerOp(trials, reps, func() {
		sink = pa.Decompress()
		sink = pb.Decompress()
	})
	m.AndMS = timePerOp(trials, reps, func() {
		sink, evalErr = eng.Eval(ops.And(ops.Leaf(0), ops.Leaf(1)), ps)
	})
	if evalErr != nil {
		return m, evalErr
	}
	m.OrMS = timePerOp(trials, reps, func() {
		sink, evalErr = eng.Eval(ops.Or(ops.Leaf(0), ops.Leaf(1)), ps)
	})
	if evalErr != nil {
		return m, evalErr
	}
	runtime.KeepAlive(sink)
	return m, nil
}

// dominates reports whether candidate c beats h on space AND every op
// beyond the configured noise slack.
func dominates(cfg HybridConfig, c, h HybridMetric) bool {
	return float64(c.SpaceBytes) < float64(h.SpaceBytes)*(1-cfg.SizeTol) &&
		c.DecompressMS < h.DecompressMS*(1-cfg.TimeTol) &&
		c.AndMS < h.AndMS*(1-cfg.TimeTol) &&
		c.OrMS < h.OrMS*(1-cfg.TimeTol)
}

// refEval is the decompress-and-merge reference: every leaf fully
// materialized, inner nodes combined by linear merges. No skip
// pointers, no bucket probes, no galloping — the strategy the engine
// used for cross-representation pairs before the adaptive kernels.
func refEval(e ops.Expr, ps []core.Posting) []uint32 {
	switch e.Op {
	case ops.OpLeaf:
		return ps[e.Leaf].Decompress()
	case ops.OpAnd:
		var cur []uint32
		for i, a := range e.Args {
			r := refEval(a, ps)
			if i == 0 {
				cur = r
			} else {
				cur = ops.IntersectSorted(cur, r)
			}
		}
		return cur
	default: // OpOr
		parts := make([][]uint32, len(e.Args))
		for i, a := range e.Args {
			parts[i] = refEval(a, ps)
		}
		return ops.UnionMany(parts)
	}
}

// speedupCell times one plan under the decompress-and-merge reference
// and the pooled engine.
func speedupCell(trials int, name, detail string, plan ops.Expr, ps []core.Posting, reps int) (SpeedupCell, error) {
	var evalErr error
	var sink []uint32
	base := timePerOp(trials, reps, func() {
		sink = refEval(plan, ps)
	})
	eng := ops.Default()
	engMS := timePerOp(trials, reps, func() {
		sink, evalErr = eng.Eval(plan, ps)
	})
	if evalErr != nil {
		return SpeedupCell{}, fmt.Errorf("%s engine: %w", name, evalErr)
	}
	runtime.KeepAlive(sink)
	sp := 0.0
	if engMS > 0 {
		sp = base / engMS
	}
	return SpeedupCell{Name: name, Detail: detail, BaselineMS: base, EngineMS: engMS, Speedup: sp}, nil
}

// compressNamed compresses each list with the codec name at the same index.
func compressNamed(names []string, lists [][]uint32) ([]core.Posting, error) {
	ps := make([]core.Posting, len(lists))
	for i, l := range lists {
		c, err := codecs.ByName(names[i])
		if err != nil {
			return nil, err
		}
		if ps[i], err = c.Compress(l); err != nil {
			return nil, fmt.Errorf("%s: %w", names[i], err)
		}
	}
	return ps, nil
}

// RunHybrid runs the full matrix and applies both gates.
func RunHybrid(cfg HybridConfig) (*HybridReport, error) {
	rep := &HybridReport{Domain: cfg.Domain, Trials: cfg.Trials, Pass: true}

	for _, dist := range cfg.Dists {
		for _, d := range cfg.Densities {
			n := int(d * float64(cfg.Domain))
			if n < 4 {
				n = 4
			}
			a := synthetic(dist, n, cfg.Domain, int64(77+len(rep.Cells)))
			b := synthetic(dist, n, cfg.Domain, int64(178+len(rep.Cells)))
			recA := core.AdviseList(core.ComputeStats(a, uint64(cfg.Domain)))
			recB := core.AdviseList(core.ComputeStats(b, uint64(cfg.Domain)))
			cell := HybridCell{
				Dist: dist, Density: d, N: len(a),
				Pick: recA.Codec, PickReason: recA.Reason,
				Candidates: map[string]HybridMetric{},
			}
			var err error
			if cell.Hybrid, err = measureHybridPair(cfg.Trials, recA.Codec, recB.Codec, a, b); err != nil {
				return nil, fmt.Errorf("%s/%g hybrid: %w", dist, d, err)
			}
			for _, cand := range hybridCandidates {
				m, err := measureHybridPair(cfg.Trials, cand, cand, a, b)
				if err != nil {
					return nil, fmt.Errorf("%s/%g %s: %w", dist, d, cand, err)
				}
				cell.Candidates[cand] = m
				if dominates(cfg, m, cell.Hybrid) {
					cell.DominatedBy = append(cell.DominatedBy, cand)
				}
			}
			if len(cell.DominatedBy) > 0 {
				rep.Pass = false
				rep.Failures = append(rep.Failures, fmt.Sprintf(
					"%s/density=%g: advisor pick %s is Pareto-dominated by %v",
					dist, d, cell.Pick, cell.DominatedBy))
			}
			rep.Cells = append(rep.Cells, cell)
		}
	}

	if err := runSpeedups(cfg, rep); err != nil {
		return nil, err
	}
	for _, s := range rep.Speedups {
		if s.Speedup > rep.MaxSpeedup {
			rep.MaxSpeedup = s.Speedup
		}
	}
	if rep.MaxSpeedup < cfg.MinSpeedup {
		rep.Pass = false
		rep.Failures = append(rep.Failures, fmt.Sprintf(
			"no speedup cell reached %.2fx (max %.2fx): mixed/galloping kernels regressed",
			cfg.MinSpeedup, rep.MaxSpeedup))
	}
	return rep, nil
}

// runSpeedups appends the three engine-vs-reference cells: galloping
// SvS over skip frames (skewed list×list), the mixed bucket×seeker
// kernel (dense bitmap × sparse list), and a skewed AND-of-unions plan.
func runSpeedups(cfg HybridConfig, rep *HybridReport) error {
	domain := uint32(4 * cfg.SkewLarge)
	large := gen.Uniform(cfg.SkewLarge, domain, 301)
	nSmall := cfg.SkewLarge / cfg.SkewRatio
	if nSmall < 8 {
		nSmall = 8
	}
	small := gen.Uniform(nSmall, domain, 302)

	// Galloping SvS: the small side decodes, the large side is only
	// touched through its skip frames — the reference decodes both.
	ps, err := compressNamed([]string{"VB", "SIMDBP128*"}, [][]uint32{small, large})
	if err != nil {
		return err
	}
	cell, err := speedupCell(cfg.Trials, "galloping-svs",
		fmt.Sprintf("AND of %d×%d lists (1:%d skew), VB × SIMDBP128*", len(small), len(large), cfg.SkewRatio),
		ops.And(ops.Leaf(0), ops.Leaf(1)), ps, 4)
	if err != nil {
		return err
	}
	rep.Speedups = append(rep.Speedups, cell)

	// Mixed bucket×seeker: dense bitmap probed by a sparse list with
	// neither side decompressed.
	dense := synthetic("markov", int(0.3*float64(cfg.Domain)), cfg.Domain, 303)
	sparse := gen.Uniform(256, cfg.Domain, 304)
	ps, err = compressNamed([]string{"Roaring", "SIMDBP128*"}, [][]uint32{dense, sparse})
	if err != nil {
		return err
	}
	cell, err = speedupCell(cfg.Trials, "mixed-bitmap-list",
		fmt.Sprintf("AND of %d-value Roaring bitmap × %d-value SIMDBP128* list", len(dense), len(sparse)),
		ops.And(ops.Leaf(0), ops.Leaf(1)), ps, 4)
	if err != nil {
		return err
	}
	rep.Speedups = append(rep.Speedups, cell)

	// Skewed AND-of-unions: the engine unions each side, then the
	// galloping crossover handles the skewed intersection of the
	// materialized unions.
	lists := [][]uint32{
		gen.Uniform(nSmall, domain, 305),
		gen.Uniform(nSmall, domain, 306),
		gen.Uniform(cfg.SkewLarge/2, domain, 307),
		gen.Uniform(cfg.SkewLarge/2, domain, 308),
	}
	ps, err = compressNamed([]string{"SIMDBP128*", "SIMDBP128*", "SIMDBP128*", "SIMDBP128*"}, lists)
	if err != nil {
		return err
	}
	cell, err = speedupCell(cfg.Trials, "and-of-unions",
		fmt.Sprintf("AND(OR(%d,%d), OR(%d,%d)) — plan-level skew", len(lists[0]), len(lists[1]), len(lists[2]), len(lists[3])),
		ops.And(ops.Or(ops.Leaf(0), ops.Leaf(1)), ops.Or(ops.Leaf(2), ops.Leaf(3))), ps, 4)
	if err != nil {
		return err
	}
	rep.Speedups = append(rep.Speedups, cell)
	return nil
}
