package bench

import (
	"encoding/json"
	"flag"
	"os"
	"strings"
	"testing"
)

var (
	topkOut  = flag.String("topk.out", "", "write the top-k matrix report JSON to this path")
	topkFull = flag.Bool("topk.full", false, "run the committed-results matrix instead of the quick one")
)

// TestTopKPruningGate runs the ranked-retrieval matrix through a
// mapped BVIX3+impacts file and applies the gates: every pruned
// algorithm must reproduce the exhaustive ranking exactly (fatal,
// always), Block-Max-WAND must demonstrably skip blocks (the decode
// counter is deterministic, so this gate binds even under -race), and
// BMW must beat exhaustive wall-clock in at least one cell (timing,
// informational under -race). `make bench` runs this with -topk.full
// -topk.out to (re)generate results/BENCH_topk.json.
func TestTopKPruningGate(t *testing.T) {
	cfg := QuickTopK()
	if *topkFull {
		cfg = DefaultTopK()
	}
	rep, err := RunTopK(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *topkOut != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(*topkOut, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d cells, max speedup %.1fx, min decoded %.0f%%)",
			*topkOut, len(rep.Cells), rep.MaxSpeedup, 100*rep.MinDecodedFrac)
	}
	for _, c := range rep.Cells {
		t.Logf("%-24s k=%-4d exh %8.3fms  ms %8.3fms  bmw %8.3fms (%5.1fx)  blocks %d/%d",
			strings.Join(c.Terms, " "), c.K, c.ExhaustiveMS, c.MaxScoreMS, c.BMWMS, c.SpeedupVsExh, c.BMWDecoded, c.BlocksTotal)
	}
	if rep.Pass {
		return
	}
	for _, f := range rep.Failures {
		// The block-decode gate is counter-based and race-safe; only the
		// wall-clock gate goes informational under instrumentation.
		if raceEnabled && strings.Contains(f, "speedup") {
			t.Logf("race detector enabled, timing gate informational: %s", f)
		} else {
			t.Error(f)
		}
	}
}
