package bench

import (
	"fmt"
	"runtime"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/gen"
	"repro/internal/intlist"
	"repro/internal/ops"
)

// distributions swept by the synthetic experiments (§5).
var distributions = []string{"uniform", "zipf", "markov"}

// synthetic generates one list of the requested distribution.
func synthetic(dist string, n int, domain uint32, seed int64) []uint32 {
	switch dist {
	case "uniform":
		return gen.Uniform(n, domain, seed)
	case "zipf":
		return gen.Zipf(n, domain, 1.0, seed)
	case "markov":
		return gen.MarkovN(n, domain, 8, seed)
	default:
		panic("bench: unknown distribution " + dist)
	}
}

// fig3 reproduces Figure 3: decompression time and space across
// distributions and list densities.
func fig3() Experiment {
	return Experiment{
		ID:    "fig3",
		Title: "Figure 3: decompression time and space vs list size",
		Run: func(cfg Config) ([]Measurement, error) {
			cs, err := selected(cfg)
			if err != nil {
				return nil, err
			}
			var ms []Measurement
			for _, dist := range distributions {
				for di, d := range cfg.Densities {
					n := int(d * float64(cfg.Domain))
					list := synthetic(dist, n, cfg.Domain, int64(100+di))
					setting := fmt.Sprintf("%s/%s", dist, DensityName(d))
					for _, c := range cs {
						p, err := c.Compress(list)
						if err != nil {
							return nil, err
						}
						var sink []uint32
						t := timeIt(cfg.Trials, func() { sink = p.Decompress() })
						runtime.KeepAlive(sink)
						ms = append(ms, Measurement{
							Experiment: "fig3", Setting: setting, Method: c.Name(),
							Op: "decompress", SpaceBytes: p.SizeBytes(), TimeMS: t,
						})
					}
				}
			}
			return ms, nil
		},
	}
}

// pairSweep runs a two-list op sweep (Tables 1 and 2).
func pairSweep(id, title, op string) Experiment {
	return Experiment{
		ID:    id,
		Title: title,
		Run: func(cfg Config) ([]Measurement, error) {
			cs, err := selected(cfg)
			if err != nil {
				return nil, err
			}
			plan := ops.And(ops.Leaf(0), ops.Leaf(1))
			if op == "or" {
				plan = ops.Or(ops.Leaf(0), ops.Leaf(1))
			}
			var ms []Measurement
			for _, dist := range distributions {
				for di, d := range cfg.Densities {
					n2 := int(d * float64(cfg.Domain))
					n1 := n2 / cfg.Ratio
					if n1 < 1 {
						n1 = 1
					}
					l1 := synthetic(dist, n1, cfg.Domain, int64(200+di))
					l2 := synthetic(dist, n2, cfg.Domain, int64(300+di))
					setting := fmt.Sprintf("%s/%s", dist, DensityName(d))
					for _, c := range cs {
						ps, err := compressSet(c, [][]uint32{l1, l2})
						if err != nil {
							return nil, err
						}
						ms, err = measureQuery(ms, cfg, id, setting, c, ps, plan, op)
						if err != nil {
							return nil, err
						}
					}
				}
			}
			return ms, nil
		},
	}
}

func tab1() Experiment {
	return pairSweep("tab1", "Table 1: intersection time, |L2|/|L1|=1000, varying |L2|", "and")
}

func tab2() Experiment {
	return pairSweep("tab2", "Table 2: union time, |L2|/|L1|=1000, varying |L2|", "or")
}

// workloadExperiment measures every query of a Workload under every
// codec; space is the total of the lists the query touches.
func workloadExperiment(id, title string, build func(cfg Config) []datasets.Workload) Experiment {
	return Experiment{
		ID:    id,
		Title: title,
		Run: func(cfg Config) ([]Measurement, error) {
			cs, err := selected(cfg)
			if err != nil {
				return nil, err
			}
			var ms []Measurement
			for _, w := range build(cfg) {
				for _, c := range cs {
					ps, err := compressSet(c, w.Lists)
					if err != nil {
						return nil, err
					}
					for _, q := range w.Queries {
						leaves := planLeaves(q.Plan)
						qps := make([]core.Posting, 0, len(leaves))
						for _, li := range leaves {
							qps = append(qps, ps[li])
						}
						setting := w.Name + "/" + q.Name
						var sink []uint32
						t := timeIt(cfg.Trials, func() { sink, err = evalPlan(cfg, q.Plan, ps) })
						if err != nil {
							return nil, err
						}
						runtime.KeepAlive(sink)
						ms = append(ms, Measurement{
							Experiment: id, Setting: setting, Method: c.Name(),
							Op: "query", SpaceBytes: sizeOf(qps), TimeMS: t,
						})
					}
				}
			}
			return ms, nil
		},
	}
}

// planLeaves collects the posting indices referenced by a plan.
func planLeaves(e ops.Expr) []int {
	if e.Op == ops.OpLeaf {
		return []int{e.Leaf}
	}
	var out []int
	for _, a := range e.Args {
		out = append(out, planLeaves(a)...)
	}
	return out
}

func fig4() Experiment {
	return workloadExperiment("fig4", "Figure 4: SSB Q1.1/Q2.1/Q3.4/Q4.1",
		func(cfg Config) []datasets.Workload {
			var ws []datasets.Workload
			for _, sf := range cfg.SFs {
				ws = append(ws, datasets.SSB(sf, cfg.RealScale))
			}
			return ws
		})
}

func fig5() Experiment {
	return workloadExperiment("fig5", "Figure 5: TPCH Q6/Q12",
		func(cfg Config) []datasets.Workload {
			var ws []datasets.Workload
			for _, sf := range cfg.SFs {
				ws = append(ws, datasets.TPCH(sf, cfg.RealScale))
			}
			return ws
		})
}

// fig6 reproduces Figure 6: Web data, average intersection and union
// time over the query log.
func fig6() Experiment {
	return Experiment{
		ID:    "fig6",
		Title: "Figure 6: Web data, average AND/OR over the query log",
		Run: func(cfg Config) ([]Measurement, error) {
			cs, err := selected(cfg)
			if err != nil {
				return nil, err
			}
			w := datasets.Web(cfg.RealScale, cfg.WebTerms, cfg.WebQueries)
			var ms []Measurement
			for _, c := range cs {
				ps, err := compressSet(c, w.Lists)
				if err != nil {
					return nil, err
				}
				total := map[string]float64{}
				count := map[string]int{}
				for _, q := range w.Queries {
					var sink []uint32
					t := timeIt(1, func() { sink, err = evalPlan(cfg, q.Plan, ps) })
					if err != nil {
						return nil, err
					}
					runtime.KeepAlive(sink)
					total[q.Name] += t
					count[q.Name]++
				}
				for _, op := range []string{"and", "or"} {
					ms = append(ms, Measurement{
						Experiment: "fig6", Setting: "Web/" + op, Method: c.Name(),
						Op: op, SpaceBytes: sizeOf(ps),
						TimeMS: total[op] / float64(count[op]),
					})
				}
			}
			return ms, nil
		},
	}
}

// fig7 reproduces Figure 7: the effect of skip pointers on intersection
// for five list codecs, uniform and zipf.
func fig7() Experiment {
	return Experiment{
		ID:    "fig7",
		Title: "Figure 7: skip pointers on vs off (intersection)",
		Run: func(cfg Config) ([]Measurement, error) {
			type variant struct {
				name string
				with core.Codec
				sans core.Codec
			}
			variants := []variant{
				{"VB", intlist.NewBlocked(intlist.VBBlock()), intlist.NewBlockedNoSkips(intlist.VBBlock())},
				{"PforDelta", intlist.NewBlocked(intlist.PforDeltaBlock()), intlist.NewBlockedNoSkips(intlist.PforDeltaBlock())},
				{"SIMDPforDelta", intlist.NewBlocked(intlist.SIMDPforDeltaBlock()), intlist.NewBlockedNoSkips(intlist.SIMDPforDeltaBlock())},
				{"SIMDPforDelta*", intlist.NewBlocked(intlist.SIMDPforDeltaStarBlock()), intlist.NewBlockedNoSkips(intlist.SIMDPforDeltaStarBlock())},
				{"GroupVB", intlist.NewBlocked(intlist.GroupVBBlock()), intlist.NewBlockedNoSkips(intlist.GroupVBBlock())},
			}
			// |L2| at the paper's 10M density analogue, ratio 1000.
			d := 0.00466
			if len(cfg.Densities) > 1 {
				d = cfg.Densities[1]
			}
			n2 := int(d * float64(cfg.Domain))
			n1 := n2 / cfg.Ratio
			if n1 < 1 {
				n1 = 1
			}
			plan := ops.And(ops.Leaf(0), ops.Leaf(1))
			var ms []Measurement
			for _, dist := range []string{"uniform", "zipf"} {
				l1 := synthetic(dist, n1, cfg.Domain, 400)
				l2 := synthetic(dist, n2, cfg.Domain, 401)
				for _, v := range variants {
					for _, mode := range []struct {
						label string
						c     core.Codec
					}{{"with-skips", v.with}, {"no-skips", v.sans}} {
						ps, err := compressSet(mode.c, [][]uint32{l1, l2})
						if err != nil {
							return nil, err
						}
						var sink []uint32
						var evalErr error
						t := timeIt(cfg.Trials, func() { sink, evalErr = evalPlan(cfg, plan, ps) })
						if evalErr != nil {
							return nil, evalErr
						}
						runtime.KeepAlive(sink)
						ms = append(ms, Measurement{
							Experiment: "fig7",
							Setting:    dist + "/" + mode.label,
							Method:     v.name, Op: "and",
							SpaceBytes: sizeOf(ps), TimeMS: t,
						})
					}
				}
			}
			return ms, nil
		},
	}
}

// tab3 reproduces Table 3: intersection time at list size ratios 1 and
// 10 (merge regime), |L2| fixed at the 100M-density analogue.
func tab3() Experiment {
	return Experiment{
		ID:    "tab3",
		Title: "Table 3: intersection time at ratios 1 and 10",
		Run: func(cfg Config) ([]Measurement, error) {
			cs, err := selected(cfg)
			if err != nil {
				return nil, err
			}
			d := cfg.Densities[len(cfg.Densities)-1]
			if len(cfg.Densities) >= 2 {
				d = cfg.Densities[len(cfg.Densities)-2]
			}
			n2 := int(d * float64(cfg.Domain))
			plan := ops.And(ops.Leaf(0), ops.Leaf(1))
			var ms []Measurement
			for _, dist := range distributions {
				for _, theta := range []int{1, 10} {
					n1 := n2 / theta
					l1 := synthetic(dist, n1, cfg.Domain, 500)
					l2 := synthetic(dist, n2, cfg.Domain, 501)
					setting := fmt.Sprintf("%s/theta=%d", dist, theta)
					for _, c := range cs {
						ps, err := compressSet(c, [][]uint32{l1, l2})
						if err != nil {
							return nil, err
						}
						ms, err = measureQuery(ms, cfg, "tab3", setting, c, ps, plan, "and")
						if err != nil {
							return nil, err
						}
					}
				}
			}
			return ms, nil
		},
	}
}

func fig8() Experiment {
	return workloadExperiment("fig8", "Figure 8: Graph (Twitter adjacency) Q1/Q2",
		func(cfg Config) []datasets.Workload {
			return []datasets.Workload{datasets.Graph(cfg.RealScale)}
		})
}

func fig9() Experiment {
	return workloadExperiment("fig9", "Figure 9: KDDCup Q1/Q2",
		func(cfg Config) []datasets.Workload {
			return []datasets.Workload{datasets.KDDCup(cfg.RealScale)}
		})
}

func fig10() Experiment {
	return workloadExperiment("fig10", "Figure 10: Berkeleyearth Q1/Q2",
		func(cfg Config) []datasets.Workload {
			return []datasets.Workload{datasets.Berkeleyearth(cfg.RealScale)}
		})
}

func fig11() Experiment {
	return workloadExperiment("fig11", "Figure 11: Higgs Q1/Q2",
		func(cfg Config) []datasets.Workload {
			return []datasets.Workload{datasets.Higgs(cfg.RealScale)}
		})
}

func fig12() Experiment {
	return workloadExperiment("fig12", "Figure 12: Kegg Q1/Q2",
		func(cfg Config) []datasets.Workload {
			return []datasets.Workload{datasets.Kegg(cfg.RealScale)}
		})
}
