package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryCoversAllTablesAndFigures(t *testing.T) {
	want := []string{"fig3", "tab1", "tab2", "fig4", "fig5", "fig6",
		"fig7", "tab3", "fig8", "fig9", "fig10", "fig11", "fig12", "extio"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(reg), len(want))
	}
	for _, id := range want {
		if _, err := ByID(id); err != nil {
			t.Errorf("missing experiment %s", id)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("ByID should reject unknown ids")
	}
}

// TestAllExperimentsRunQuick executes every experiment end-to-end at the
// Quick scale and sanity-checks the output shape.
func TestAllExperimentsRunQuick(t *testing.T) {
	cfg := Quick()
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			ms, err := e.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(ms) == 0 {
				t.Fatalf("%s: no measurements", e.ID)
			}
			methods := map[string]bool{}
			for _, m := range ms {
				if m.Experiment != e.ID {
					t.Errorf("measurement tagged %q, want %q", m.Experiment, e.ID)
				}
				if m.SpaceBytes <= 0 {
					t.Errorf("%s/%s/%s: non-positive space", m.Setting, m.Method, m.Op)
				}
				if m.TimeMS < 0 {
					t.Errorf("%s/%s/%s: negative time", m.Setting, m.Method, m.Op)
				}
				methods[m.Method] = true
			}
			// fig7 and extio run fixed codec panels; everything else
			// covers the full table.
			minMethods := 24
			if e.ID == "fig7" || e.ID == "extio" {
				minMethods = 5
			}
			if len(methods) < minMethods {
				t.Errorf("%s: only %d methods measured, want >= %d",
					e.ID, len(methods), minMethods)
			}
			var buf bytes.Buffer
			PrintTable(&buf, e.Title, ms)
			out := buf.String()
			if !strings.Contains(out, "method") || !strings.Contains(out, ms[0].Method) {
				t.Errorf("%s: table output missing expected content", e.ID)
			}
			if s := Summary(ms); !strings.Contains(s, "fastest") {
				t.Errorf("%s: summary missing", e.ID)
			}
		})
	}
}

// TestCodecFilter restricts a run to two codecs.
func TestCodecFilter(t *testing.T) {
	cfg := Quick()
	cfg.Codecs = []string{"Roaring", "VB"}
	e, _ := ByID("fig3")
	ms, err := e.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		if m.Method != "Roaring" && m.Method != "VB" {
			t.Fatalf("unexpected method %s", m.Method)
		}
	}
	cfg.Codecs = []string{"NoSuchCodec"}
	if _, err := e.Run(cfg); err == nil {
		t.Error("expected error for unknown codec filter")
	}
}

func TestDensityName(t *testing.T) {
	for d, want := range map[float64]string{
		0.0004: "1M", 0.004: "10M", 0.04: "100M", 0.4: "1B",
	} {
		if got := DensityName(d); got != want {
			t.Errorf("DensityName(%g) = %s want %s", d, got, want)
		}
	}
}

func TestHumanBytes(t *testing.T) {
	for n, want := range map[int]string{
		512:     "512 B",
		2048:    "2.00 KB",
		1 << 21: "2.00 MB",
		3 << 30: "3.00 GB",
	} {
		if got := humanBytes(n); got != want {
			t.Errorf("humanBytes(%d) = %s want %s", n, got, want)
		}
	}
}
