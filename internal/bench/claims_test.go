package bench

import (
	"testing"

	"repro/internal/codecs"
	"repro/internal/core"
	"repro/internal/gen"
)

// This file asserts the paper's space-shape claims as tests. Space is
// deterministic (generators are seeded), so unlike timing these checks
// are exact and CI-stable. Each test names the claim it guards.

const claimDomain = 1 << 20

// nAt converts a density into a list size over the claim domain.
func nAt(d float64) int { return int(d * float64(claimDomain)) }

func sizes(t *testing.T, list []uint32) map[string]int {
	t.Helper()
	out := map[string]int{}
	for _, c := range codecs.All() {
		p, err := c.Compress(list)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		out[c.Name()] = p.SizeBytes()
	}
	return out
}

func minOf(s map[string]int, names ...string) int {
	best := 1 << 62
	for _, n := range names {
		if s[n] < best {
			best = s[n]
		}
	}
	return best
}

var bitmapNames = []string{"Bitset", "BBC", "WAH", "EWAH", "PLWAH", "CONCISE", "VALWAH", "SBH", "Roaring"}
var listNames = []string{"VB", "Simple9", "PforDelta", "NewPforDelta", "OptPforDelta",
	"Simple16", "GroupVB", "Simple8b", "PEF", "SIMDPforDelta", "SIMDBP128",
	"PforDelta*", "SIMDPforDelta*", "SIMDBP128*"}

// TestClaimSparseListsBeatBitmaps: Fig. 3, sparse uniform — every list
// codec beats every RLE bitmap codec on space.
func TestClaimSparseListsBeatBitmaps(t *testing.T) {
	list := gen.Uniform(nAt(0.000466), claimDomain, 100)
	s := sizes(t, list)
	worstList := 0
	for _, n := range listNames {
		if s[n] > worstList {
			worstList = s[n]
		}
	}
	bestBitmap := minOf(s, bitmapNames...)
	if worstList >= bestBitmap*3 {
		t.Errorf("sparse: worst list codec %d B vs best bitmap %d B — shape broken", worstList, bestBitmap)
	}
	if minOf(s, listNames...) >= bestBitmap {
		t.Errorf("sparse: best list codec (%d B) should beat best bitmap (%d B)",
			minOf(s, listNames...), bestBitmap)
	}
}

// TestClaimDenseBitmapsWinSpace: Fig. 3d analogue — at the 1B-uniform
// density, bitmap codecs use less space than every list codec.
func TestClaimDenseBitmapsWinSpace(t *testing.T) {
	list := gen.Uniform(nAt(0.466), claimDomain, 101)
	s := sizes(t, list)
	bestList := minOf(s, listNames...)
	for _, n := range []string{"Bitset", "Roaring", "EWAH", "WAH"} {
		if s[n] >= bestList {
			t.Errorf("dense: %s (%d B) should beat the best list codec (%d B)",
				n, s[n], bestList)
		}
	}
}

// TestClaimWAHCanExceedRawList: §5.1 observation 4 — WAH and EWAH can
// exceed the uncompressed list on sparse data; list codecs never do.
func TestClaimWAHCanExceedRawList(t *testing.T) {
	list := gen.Uniform(nAt(0.000466), claimDomain, 102)
	s := sizes(t, list)
	raw := 4 * len(list)
	if s["WAH"] <= raw {
		t.Errorf("sparse WAH (%d B) should exceed the raw list (%d B)", s["WAH"], raw)
	}
	for _, n := range listNames {
		if s[n] > raw {
			t.Errorf("%s (%d B) exceeds the raw list (%d B)", n, s[n], raw)
		}
	}
}

// TestClaimRoaringBestBitmap: §5.1 observation 2 — Roaring is at or
// near the smallest bitmap codec at every density.
func TestClaimRoaringBestBitmap(t *testing.T) {
	for i, d := range []float64{0.000466, 0.00466, 0.0466, 0.466} {
		list := gen.Uniform(nAt(d), claimDomain, int64(103+i))
		s := sizes(t, list)
		best := minOf(s, bitmapNames...)
		if s["Roaring"] > best*2 {
			t.Errorf("density %g: Roaring %d B vs best bitmap %d B", d, s["Roaring"], best)
		}
	}
}

// TestClaimBBCSmallestRLE: §5.1 observation 6 — BBC has (nearly) the
// smallest space among the RLE bitmap codecs.
func TestClaimBBCSmallestRLE(t *testing.T) {
	list := gen.Uniform(nAt(0.00466), claimDomain, 107)
	s := sizes(t, list)
	for _, n := range []string{"WAH", "EWAH", "PLWAH", "CONCISE"} {
		if s["BBC"] >= s[n] {
			t.Errorf("BBC (%d B) should undercut %s (%d B)", s["BBC"], n, s[n])
		}
	}
}

// TestClaimSBHNotSmallerThanBBC: §5.1 observation 7 — SBH consumes more
// space than BBC.
func TestClaimSBHNotSmallerThanBBC(t *testing.T) {
	for i, d := range []float64{0.00466, 0.0466, 0.466} {
		list := gen.Uniform(nAt(d), claimDomain, int64(108+i))
		s := sizes(t, list)
		if s["SBH"] < s["BBC"] {
			t.Errorf("density %g: SBH (%d B) smaller than BBC (%d B)", d, s["SBH"], s["BBC"])
		}
	}
}

// TestClaimVALWAHSmallerThanWAH: §5.2 observation 3 — VALWAH's variable
// segments undercut WAH's fixed 31-bit groups on sparse data.
func TestClaimVALWAHSmallerThanWAH(t *testing.T) {
	list := gen.Uniform(nAt(0.00466), claimDomain, 111)
	s := sizes(t, list)
	if s["VALWAH"] >= s["WAH"] {
		t.Errorf("VALWAH (%d B) should be smaller than WAH (%d B)", s["VALWAH"], s["WAH"])
	}
}

// TestClaimVBLargerThanPforDenseData: §5.1 observation 8 — on very long
// lists VB pays its one-byte-minimum per gap (the paper's 1.76x at 1B).
func TestClaimVBLargerThanPforDenseData(t *testing.T) {
	list := gen.Uniform(nAt(0.466), claimDomain, 112)
	s := sizes(t, list)
	if s["VB"] <= s["PforDelta"] {
		t.Errorf("dense VB (%d B) should exceed PforDelta (%d B)", s["VB"], s["PforDelta"])
	}
	if float64(s["VB"]) < 1.3*float64(s["PforDelta"]) {
		t.Logf("note: VB/PforDelta ratio %.2f below the paper's 1.76 (acceptable at this scale)",
			float64(s["VB"])/float64(s["PforDelta"]))
	}
}

// TestClaimSimple8bBeatsPforDeltaOnZipf: §5.1 observation 10.
func TestClaimSimple8bBeatsPforDeltaOnZipf(t *testing.T) {
	list := gen.Zipf(nAt(0.0466), claimDomain, 1.0, 113)
	s := sizes(t, list)
	if s["Simple8b"] >= s["PforDelta"] {
		t.Errorf("zipf Simple8b (%d B) should beat PforDelta (%d B)", s["Simple8b"], s["PforDelta"])
	}
}

// TestClaimGroupVBLargerThanPforDelta: §5.1 observation 11's space half.
func TestClaimGroupVBLargerThanPforDelta(t *testing.T) {
	list := gen.Uniform(nAt(0.0466), claimDomain, 114)
	s := sizes(t, list)
	if s["GroupVB"] <= s["PforDelta"] {
		t.Errorf("GroupVB (%d B) should exceed PforDelta (%d B)", s["GroupVB"], s["PforDelta"])
	}
}

// TestClaimSIMDPforSameSpaceAsPfor: §5.1 observation 13 — the SIMD
// layout costs (almost) no extra space over the scalar layout.
func TestClaimSIMDPforSameSpaceAsPfor(t *testing.T) {
	list := gen.Uniform(nAt(0.0466), claimDomain, 115)
	s := sizes(t, list)
	ratio := float64(s["SIMDPforDelta"]) / float64(s["PforDelta"])
	if ratio > 1.1 || ratio < 0.8 {
		t.Errorf("SIMDPforDelta/PforDelta space ratio = %.2f, want ~1", ratio)
	}
}

// TestClaimRoaring16BitsGuarantee: §2.7 — no element costs more than
// ~16 bits plus container metadata.
func TestClaimRoaring16BitsGuarantee(t *testing.T) {
	for i, d := range []float64{0.001, 0.05, 0.3, 0.8} {
		list := gen.Uniform(nAt(d), claimDomain, int64(116+i))
		c, _ := codecs.ByName("Roaring")
		p, err := c.Compress(list)
		if err != nil {
			t.Fatal(err)
		}
		bitsPerInt := float64(p.SizeBytes()) * 8 / float64(len(list))
		if bitsPerInt > 17 {
			t.Errorf("density %g: Roaring uses %.1f bits/int, want <= ~16", d, bitsPerInt)
		}
	}
}

// TestClaimMarkovClusteringHelpsRLE: clustered (markov) bitmaps
// compress far better under RLE codecs than uniform data of the same
// density — the clustering effect the paper's markov sweep exists to
// show.
func TestClaimMarkovClusteringHelpsRLE(t *testing.T) {
	n := nAt(0.0466)
	uniform := gen.Uniform(n, claimDomain, 120)
	markov := gen.MarkovN(n, claimDomain, 8, 121)
	var u, m core.Posting
	var err error
	c, _ := codecs.ByName("WAH")
	if u, err = c.Compress(uniform); err != nil {
		t.Fatal(err)
	}
	if m, err = c.Compress(markov); err != nil {
		t.Fatal(err)
	}
	if m.SizeBytes()*2 > u.SizeBytes() {
		t.Errorf("markov WAH (%d B) should be far below uniform WAH (%d B)",
			m.SizeBytes(), u.SizeBytes())
	}
}
