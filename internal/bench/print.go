package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// PrintTable renders measurements as paper-style tables: one table per
// setting, rows in codec order, columns space + time per op.
func PrintTable(w io.Writer, title string, ms []Measurement) {
	fmt.Fprintf(w, "== %s ==\n", title)
	// Group by setting, preserving first-seen order.
	var settings []string
	bySetting := map[string][]Measurement{}
	for _, m := range ms {
		if _, ok := bySetting[m.Setting]; !ok {
			settings = append(settings, m.Setting)
		}
		bySetting[m.Setting] = append(bySetting[m.Setting], m)
	}
	for _, s := range settings {
		group := bySetting[s]
		// Ops present, in first-seen order.
		var opsSeen []string
		seen := map[string]bool{}
		for _, m := range group {
			if !seen[m.Op] {
				seen[m.Op] = true
				opsSeen = append(opsSeen, m.Op)
			}
		}
		fmt.Fprintf(w, "\n-- %s --\n", s)
		fmt.Fprintf(w, "%-16s %12s", "method", "space")
		for _, op := range opsSeen {
			fmt.Fprintf(w, " %14s", op+" (ms)")
		}
		fmt.Fprintln(w)
		// Row per method, first-seen order.
		var methods []string
		mseen := map[string]bool{}
		for _, m := range group {
			if !mseen[m.Method] {
				mseen[m.Method] = true
				methods = append(methods, m.Method)
			}
		}
		for _, method := range methods {
			fmt.Fprintf(w, "%-16s", method)
			var space int
			times := map[string]float64{}
			for _, m := range group {
				if m.Method == method {
					space = m.SpaceBytes
					times[m.Op] = m.TimeMS
				}
			}
			fmt.Fprintf(w, " %12s", humanBytes(space))
			for _, op := range opsSeen {
				fmt.Fprintf(w, " %14.3f", times[op])
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w)
}

// humanBytes renders a byte count with a binary-ish suffix matching the
// paper's MB axes.
func humanBytes(n int) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// PrintCSV renders measurements as one CSV row per (setting, method,
// op), convenient for plotting the figures.
func PrintCSV(w io.Writer, ms []Measurement) {
	fmt.Fprintln(w, "experiment,setting,method,op,space_bytes,time_ms")
	for _, m := range ms {
		fmt.Fprintf(w, "%s,%s,%s,%s,%d,%.6f\n",
			csvEscape(m.Experiment), csvEscape(m.Setting), csvEscape(m.Method),
			csvEscape(m.Op), m.SpaceBytes, m.TimeMS)
	}
}

// csvEscape quotes a field when it contains a comma or quote.
func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// Summary condenses measurements into the headline comparisons the
// paper draws (winner per setting/op).
func Summary(ms []Measurement) string {
	type key struct{ setting, op string }
	best := map[key]Measurement{}
	var order []key
	for _, m := range ms {
		k := key{m.Setting, m.Op}
		cur, ok := best[k]
		if !ok {
			order = append(order, k)
			best[k] = m
			continue
		}
		if m.TimeMS < cur.TimeMS {
			best[k] = m
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].setting != order[j].setting {
			return order[i].setting < order[j].setting
		}
		return order[i].op < order[j].op
	})
	var b strings.Builder
	for _, k := range order {
		m := best[k]
		fmt.Fprintf(&b, "%-24s %-10s fastest: %-16s %8.3f ms\n",
			k.setting, k.op, m.Method, m.TimeMS)
	}
	return b.String()
}
