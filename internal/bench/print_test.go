package bench

import (
	"bytes"
	"strings"
	"testing"
)

func sampleMeasurements() []Measurement {
	return []Measurement{
		{Experiment: "fig3", Setting: "uniform/1M", Method: "Roaring", Op: "decompress", SpaceBytes: 2048, TimeMS: 0.5},
		{Experiment: "fig3", Setting: "uniform/1M", Method: "WAH", Op: "decompress", SpaceBytes: 4096, TimeMS: 1.5},
		{Experiment: "fig3", Setting: "zipf/1M", Method: "Roaring", Op: "decompress", SpaceBytes: 1024, TimeMS: 0.25},
	}
}

func TestPrintCSV(t *testing.T) {
	var buf bytes.Buffer
	PrintCSV(&buf, sampleMeasurements())
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want header + 3 rows:\n%s", len(lines), buf.String())
	}
	if lines[0] != "experiment,setting,method,op,space_bytes,time_ms" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "fig3,uniform/1M,Roaring,decompress,2048,0.5") {
		t.Errorf("row 1 = %q", lines[1])
	}
}

func TestCSVEscape(t *testing.T) {
	for in, want := range map[string]string{
		"plain":      "plain",
		"with,comma": `"with,comma"`,
		`q"uote`:     `"q""uote"`,
	} {
		if got := csvEscape(in); got != want {
			t.Errorf("csvEscape(%q) = %q want %q", in, got, want)
		}
	}
}

func TestPrintTableGroupsBySetting(t *testing.T) {
	var buf bytes.Buffer
	PrintTable(&buf, "demo", sampleMeasurements())
	out := buf.String()
	if strings.Count(out, "-- uniform/1M --") != 1 || strings.Count(out, "-- zipf/1M --") != 1 {
		t.Errorf("settings not grouped:\n%s", out)
	}
	if !strings.Contains(out, "2.00 KB") || !strings.Contains(out, "4.00 KB") {
		t.Errorf("sizes not humanized:\n%s", out)
	}
}

func TestSummaryPicksWinner(t *testing.T) {
	s := Summary(sampleMeasurements())
	if !strings.Contains(s, "Roaring") {
		t.Errorf("summary should name Roaring as winner:\n%s", s)
	}
	if strings.Contains(strings.Split(s, "\n")[0], "WAH") {
		t.Errorf("WAH is not the winner:\n%s", s)
	}
}
