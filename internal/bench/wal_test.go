package bench

import (
	"encoding/json"
	"flag"
	"os"
	"testing"
	"time"
)

var (
	walOut  = flag.String("wal.out", "", "write the WAL sweep report JSON to this path")
	walFull = flag.Bool("wal.full", false, "run the committed-results sweep instead of the quick one")
)

// TestWALBenchGate sweeps the WAL fsync policies and applies the
// gates: every policy's log must replay back exactly (count + digest),
// and group commit must not be slower than per-append fsync beyond
// noise. `make walbench` runs this with -wal.full -wal.out to
// (re)generate results/BENCH_wal.json.
func TestWALBenchGate(t *testing.T) {
	cfg := QuickWAL()
	if *walFull {
		cfg = DefaultWAL()
	}
	rep, err := RunWAL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *walOut != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(*walOut, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d policies, group gain %.2fx)", *walOut, len(rep.Policies), rep.GroupGain)
	}
	for _, p := range rep.Policies {
		t.Logf("window %-8s %9.0f appends/s  %6.1f MB/s  ack %8s  replay %9.0f recs/s  ok=%v",
			time.Duration(p.WindowNs), p.AppendsPerSec, p.MBPerSec,
			time.Duration(p.MeanAckNs), p.ReplayRecsSec, p.ReplayOK)
	}
	for _, p := range rep.Policies {
		// Replay correctness binds unconditionally: a log that does not
		// round-trip is broken no matter how fast it appends.
		if !p.ReplayOK {
			t.Errorf("window %s: replay mismatch", time.Duration(p.WindowNs))
		}
	}
	if !rep.Pass {
		if raceEnabled {
			t.Logf("race detector enabled, timing gates informational: %v", rep.Failures)
		} else {
			for _, f := range rep.Failures {
				t.Error(f)
			}
		}
	}
}
