package bench

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/wal"
)

// WAL fsync-policy sweep: the same append workload — W concurrent
// writers, R records of realistic addDoc-sized payloads — run once per
// group-commit window, including window 0 (fsync every append). Every
// policy offers the identical durability contract (ack after fsync);
// what the window buys is amortization: appenders that land inside one
// window share a single fsync. The sweep measures acked appends/sec
// and replay throughput, and gates on two things: (1) every policy's
// log replays back exactly — right record count, matching
// order-insensitive payload digest — and (2) group commit is not
// slower than per-append fsync beyond noise. The headline group-commit
// gain is reported for the committed results/BENCH_wal.json.

// WALConfig parameterizes the sweep.
type WALConfig struct {
	Records    int             // appends per policy
	PayloadLen int             // bytes per record payload
	Writers    int             // concurrent appenders
	Windows    []time.Duration // group-commit windows; always measured against window 0
	// MinGroupGain gates bestWindowed/perAppend throughput. Group commit
	// must never be materially slower than per-append fsync; on file
	// systems where fsync is nearly free the gain is ~1x, so the floor
	// tolerates noise rather than demanding a speedup.
	MinGroupGain float64
}

// QuickWAL is the CI-sized sweep.
func QuickWAL() WALConfig {
	return WALConfig{
		Records:      2000,
		PayloadLen:   96,
		Writers:      8,
		Windows:      []time.Duration{250 * time.Microsecond, time.Millisecond},
		MinGroupGain: 0.75,
	}
}

// DefaultWAL is the committed-results sweep.
func DefaultWAL() WALConfig {
	return WALConfig{
		Records:      20000,
		PayloadLen:   96,
		Writers:      8,
		Windows:      []time.Duration{250 * time.Microsecond, time.Millisecond, 4 * time.Millisecond},
		MinGroupGain: 0.75,
	}
}

// WALPolicy is one fsync policy's measurements.
type WALPolicy struct {
	WindowNs      int64   `json:"windowNs"` // 0 = fsync every append
	Records       int     `json:"records"`
	Writers       int     `json:"writers"`
	ElapsedNs     int64   `json:"elapsedNs"`
	AppendsPerSec float64 `json:"appendsPerSec"`
	MBPerSec      float64 `json:"mbPerSec"`
	MeanAckNs     int64   `json:"meanAckNs"` // mean per-append latency seen by a writer
	LogBytes      int64   `json:"logBytes"`

	ReplayNs      int64   `json:"replayNs"`
	ReplayRecsSec float64 `json:"replayRecsPerSec"`
	ReplayOK      bool    `json:"replayOK"` // count + digest matched
}

// WALReport is the sweep outcome written to results/BENCH_wal.json.
type WALReport struct {
	Config    WALConfig   `json:"config"`
	Policies  []WALPolicy `json:"policies"`
	GroupGain float64     `json:"groupGain"` // best windowed vs window-0 appends/sec
	Failures  []string    `json:"failures,omitempty"`
	Pass      bool        `json:"pass"`
}

// walPayload builds record i's payload: an index header so digests
// can't collide across permutations of the same byte soup, then
// deterministic filler.
func walPayload(i, n int) []byte {
	p := make([]byte, n)
	binary.LittleEndian.PutUint64(p, uint64(i))
	x := uint64(i)*2654435761 + 12345
	for j := 8; j < n; j++ {
		x = x*6364136223846793005 + 1442695040888963407
		p[j] = byte(x >> 56)
	}
	return p
}

// digestOf folds one payload into an order-insensitive digest term —
// concurrent writers interleave nondeterministically, so the sweep
// compares sums of per-record hashes, not a running hash.
func digestOf(p []byte) uint64 {
	h := fnv.New64a()
	h.Write(p)
	return h.Sum64()
}

// runWALPolicy measures one fsync window.
func runWALPolicy(dir string, cfg WALConfig, window time.Duration) (WALPolicy, error) {
	pol := WALPolicy{WindowNs: int64(window), Records: cfg.Records, Writers: cfg.Writers}
	path := filepath.Join(dir, fmt.Sprintf("bench-%d.wal", window))
	l, recs, err := wal.Open(path, wal.Options{SyncEvery: window})
	if err != nil {
		return pol, err
	}
	if len(recs) != 0 {
		l.Close()
		return pol, fmt.Errorf("fresh log %s replayed %d records", path, len(recs))
	}

	var wantDigest uint64
	for i := 0; i < cfg.Records; i++ {
		wantDigest += digestOf(walPayload(i, cfg.PayloadLen))
	}

	perWriter := cfg.Records / cfg.Writers
	var wg sync.WaitGroup
	var ackNs, appendErrs int64
	var mu sync.Mutex
	start := time.Now()
	for w := 0; w < cfg.Writers; w++ {
		lo := w * perWriter
		hi := lo + perWriter
		if w == cfg.Writers-1 {
			hi = cfg.Records
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var ns int64
			errs := int64(0)
			for i := lo; i < hi; i++ {
				t0 := time.Now()
				if err := l.Enqueue(walPayload(i, cfg.PayloadLen)).Wait(); err != nil {
					errs++
				}
				ns += time.Since(t0).Nanoseconds()
			}
			mu.Lock()
			ackNs += ns
			appendErrs += errs
			mu.Unlock()
		}(lo, hi)
	}
	wg.Wait()
	elapsed := time.Since(start)
	pol.LogBytes = l.Size()
	if err := l.Close(); err != nil {
		return pol, err
	}
	if appendErrs > 0 {
		return pol, fmt.Errorf("window %s: %d appends failed", window, appendErrs)
	}
	pol.ElapsedNs = elapsed.Nanoseconds()
	pol.AppendsPerSec = float64(cfg.Records) / elapsed.Seconds()
	pol.MBPerSec = float64(pol.LogBytes) / (1 << 20) / elapsed.Seconds()
	pol.MeanAckNs = ackNs / int64(cfg.Records)

	// Replay the log cold and verify it round-trips exactly.
	t0 := time.Now()
	got, err := wal.Replay(nil, path)
	if err != nil {
		return pol, fmt.Errorf("window %s: replay: %w", window, err)
	}
	pol.ReplayNs = time.Since(t0).Nanoseconds()
	pol.ReplayRecsSec = float64(len(got)) / time.Since(t0).Seconds()
	var gotDigest uint64
	for _, p := range got {
		gotDigest += digestOf(p)
	}
	pol.ReplayOK = len(got) == cfg.Records && gotDigest == wantDigest
	return pol, nil
}

// RunWAL runs the sweep. Replay-correctness failures always fail the
// report; the timing gate is evaluated here and the caller decides
// whether it binds (race instrumentation skews fsync-vs-CPU ratios).
func RunWAL(cfg WALConfig) (*WALReport, error) {
	if cfg.Writers < 1 || cfg.Records < cfg.Writers {
		return nil, fmt.Errorf("bench: wal sweep needs at least one record per writer")
	}
	dir, err := os.MkdirTemp("", "walbench-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	rep := &WALReport{Config: cfg}
	windows := append([]time.Duration{0}, cfg.Windows...)
	for _, w := range windows {
		pol, err := runWALPolicy(dir, cfg, w)
		if err != nil {
			return nil, err
		}
		rep.Policies = append(rep.Policies, pol)
		if !pol.ReplayOK {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("window %s: replay mismatch (%d records expected)", w, cfg.Records))
		}
	}

	base := rep.Policies[0].AppendsPerSec
	for _, pol := range rep.Policies[1:] {
		if gain := pol.AppendsPerSec / base; gain > rep.GroupGain {
			rep.GroupGain = gain
		}
	}
	if rep.GroupGain < cfg.MinGroupGain {
		rep.Failures = append(rep.Failures, fmt.Sprintf(
			"group commit gained only %.2fx over per-append fsync, floor is %.2fx",
			rep.GroupGain, cfg.MinGroupGain))
	}
	rep.Pass = len(rep.Failures) == 0
	return rep, nil
}
