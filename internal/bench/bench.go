// Package bench is the experiment harness: one registered experiment
// per table and figure in the paper's evaluation (Figures 3–12, Tables
// 1–3), each regenerating the corresponding rows — method, space, and
// per-operation time — on density-preserving scaled-down workloads
// (DESIGN.md §2–3).
package bench

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/codecs"
	"repro/internal/core"
	"repro/internal/ops"
)

// Config controls workload scale. The paper sweeps list sizes 1M..1B
// over a 2^31 domain; we keep the same densities over a smaller domain.
type Config struct {
	// Domain is the synthetic-data domain size d.
	Domain uint32
	// Densities are the list densities n/d to sweep; defaults mirror the
	// paper's 1M/10M/100M/1B over 2^31.
	Densities []float64
	// Ratio is |L2|/|L1| for the intersection/union sweeps (paper: 1000).
	Ratio int
	// RealScale shrinks the real-dataset row counts.
	RealScale float64
	// SFs are the SSB/TPCH scale factors to run.
	SFs []int
	// WebTerms and WebQueries size the Web workload.
	WebTerms, WebQueries int
	// Trials is the number of timed repetitions (minimum is reported).
	Trials int
	// Codecs restricts the methods run (nil = all 24).
	Codecs []string
	// UseEngine evaluates query plans on the pooled ops.Engine (cost
	// ordering, arena buffers, parallel sub-plans) instead of the serial
	// reference evaluator. Results are identical; timings answer "what
	// does the serving engine get out of this codec".
	UseEngine bool
}

// evalPlan dispatches plan evaluation to the configured evaluator.
func evalPlan(cfg Config, plan ops.Expr, ps []core.Posting) ([]uint32, error) {
	if cfg.UseEngine {
		return ops.Default().Eval(plan, ps)
	}
	return ops.Eval(plan, ps)
}

// Default returns a configuration sized for a laptop-scale run
// (seconds per experiment rather than the paper's hours).
func Default() Config {
	return Config{
		Domain:     1 << 22,
		Densities:  []float64{0.000466, 0.00466, 0.0466, 0.466},
		Ratio:      1000,
		RealScale:  1.0 / 64,
		SFs:        []int{1},
		WebTerms:   400,
		WebQueries: 100,
		Trials:     3,
	}
}

// Quick returns a minimal configuration for tests.
func Quick() Config {
	c := Default()
	c.Domain = 1 << 16
	c.Densities = []float64{0.005, 0.2}
	c.Ratio = 100
	c.RealScale = 1.0 / 1024
	c.WebTerms = 50
	c.WebQueries = 10
	c.Trials = 1
	return c
}

// DensityName labels a density with the paper's corresponding list size
// (the density 1M/2^31 is labeled "1M", etc.).
func DensityName(d float64) string {
	switch {
	case d < 0.001:
		return "1M"
	case d < 0.01:
		return "10M"
	case d < 0.1:
		return "100M"
	default:
		return "1B"
	}
}

// Measurement is one cell group of a result table.
type Measurement struct {
	Experiment string  // e.g. "fig3"
	Setting    string  // e.g. "uniform/10M" or "SSB(SF=1)/Q1.1"
	Method     string  // codec name
	Op         string  // "decompress", "and", "or"
	SpaceBytes int     // compressed size of the operand lists
	TimeMS     float64 // best-of-trials wall time
}

// Experiment is a registered table/figure reproduction.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) ([]Measurement, error)
}

// selected returns the codecs requested by cfg.
func selected(cfg Config) ([]core.Codec, error) {
	if len(cfg.Codecs) == 0 {
		return codecs.All(), nil
	}
	out := make([]core.Codec, 0, len(cfg.Codecs))
	for _, n := range cfg.Codecs {
		c, err := codecs.ByName(n)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// timeIt reports the best wall time of trials runs of f, in ms.
func timeIt(trials int, f func()) float64 {
	if trials < 1 {
		trials = 1
	}
	best := 0.0
	for t := 0; t < trials; t++ {
		start := time.Now()
		f()
		el := float64(time.Since(start).Nanoseconds()) / 1e6
		if t == 0 || el < best {
			best = el
		}
	}
	return best
}

// sizeOf sums posting sizes.
func sizeOf(ps []core.Posting) int {
	s := 0
	for _, p := range ps {
		s += p.SizeBytes()
	}
	return s
}

// compressSet compresses all lists under one codec.
func compressSet(c core.Codec, lists [][]uint32) ([]core.Posting, error) {
	out := make([]core.Posting, len(lists))
	for i, l := range lists {
		p, err := c.Compress(l)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.Name(), err)
		}
		out[i] = p
	}
	return out, nil
}

// measureOps runs decompress/and/or on a compressed pair (or plan) and
// appends measurements.
func measureQuery(ms []Measurement, cfg Config, exp, setting string, c core.Codec,
	ps []core.Posting, plan ops.Expr, op string) ([]Measurement, error) {
	var err error
	var sink []uint32
	t := timeIt(cfg.Trials, func() {
		sink, err = evalPlan(cfg, plan, ps)
	})
	if err != nil {
		return ms, err
	}
	runtime.KeepAlive(sink)
	return append(ms, Measurement{
		Experiment: exp, Setting: setting, Method: c.Name(), Op: op,
		SpaceBytes: sizeOf(ps), TimeMS: t,
	}), nil
}

// Registry returns all experiments sorted by ID.
func Registry() []Experiment {
	exps := []Experiment{
		fig3(), tab1(), tab2(), fig4(), fig5(), fig6(), fig7(), tab3(),
		fig8(), fig9(), fig10(), fig11(), fig12(), extIO(),
	}
	sort.Slice(exps, func(i, j int) bool { return exps[i].ID < exps[j].ID })
	return exps
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", id)
}
