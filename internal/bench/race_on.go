//go:build race

package bench

// raceEnabled reports whether the race detector is compiled in. Race
// instrumentation slows codec families by very different factors, so
// timing-based gates are informational only under -race.
const raceEnabled = true
