// Scale-out serving benchmark: doc-partitioned shards behind the
// scatter-gather router, measured on three axes. RunShard both
// measures and gates:
//
//   - identity gate (always fatal): every query answered through the
//     real router path at 4 shards must be byte-identical to the
//     unpartitioned index — and/or postings and top-k rankings alike.
//     Scatter-gather is a topology change, never an approximation.
//   - throughput scaling (modeled fleet capacity, informational under
//     -race): per-shard service times for a fixed query mix are
//     measured at 1/2/4/8 shards, and fleet capacity is derived as the
//     bottleneck shard's service rate — the throughput an N-machine
//     deployment sustains, since shards evaluate in parallel and a
//     query completes when its slowest shard answers. This models
//     horizontal scale-out honestly on a small CI box: wall-clock
//     speedup from goroutines on shared cores would measure the
//     scheduler, not the architecture.
//   - hedging matrix (real wall-clock): 4 shards x 2 replicas with one
//     replica an injected straggler (sleep-delayed, so the straggler
//     burns latency, not CPU). The same closed-loop query stream runs
//     with hedging off and on; hedged backups must actually win races
//     (counter-based, race-safe) and must cut the straggler's p99
//     (timing, informational under -race).
//
// `make shardbench` runs the full matrix and writes
// results/BENCH_shard.json; the quick matrix runs in the ordinary
// test suite.
package bench

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/codecs"
	"repro/internal/index"
	"repro/internal/load"
	"repro/internal/shard"
)

// ShardConfig scales the scale-out serving matrix.
type ShardConfig struct {
	Docs        int   // corpus size
	Vocab       int   // vocabulary size
	Seed        int64 // corpus + query seed
	Queries     int   // distinct queries in the measurement mix
	ShardCounts []int // partition sizes for the scaling sweep

	Trials       int           // timed repetitions per shard (best kept)
	HedgeQueries int           // closed-loop queries per hedging run
	Straggler    time.Duration // injected delay on one replica
	HedgeMax     time.Duration // router hedge-delay ceiling

	// MinScaling4 is the modeled capacity factor the 4-shard fleet
	// must reach over 1 shard; MaxHedgedP99Frac is the fraction of the
	// unhedged p99 the hedged run must get under.
	MinScaling4      float64
	MaxHedgedP99Frac float64
}

// DefaultShard is the committed-results configuration (~seconds).
func DefaultShard() ShardConfig {
	return ShardConfig{
		Docs:             60000,
		Vocab:            80,
		Seed:             42,
		Queries:          48,
		ShardCounts:      []int{1, 2, 4, 8},
		Trials:           5,
		HedgeQueries:     400,
		Straggler:        20 * time.Millisecond,
		HedgeMax:         5 * time.Millisecond,
		MinScaling4:      2.5,
		MaxHedgedP99Frac: 0.6,
	}
}

// QuickShard shrinks the matrix for the ordinary test suite.
func QuickShard() ShardConfig {
	c := DefaultShard()
	c.Docs = 12000
	c.Queries = 24
	c.Trials = 3
	c.HedgeQueries = 120
	c.Straggler = 10 * time.Millisecond
	c.HedgeMax = 3 * time.Millisecond
	return c
}

// ScalingRow is one shard count in the throughput sweep.
type ScalingRow struct {
	Shards int `json:"shards"`
	// BottleneckMS is the slowest shard's mean service time over the
	// query mix — the term that bounds fleet throughput.
	BottleneckMS float64 `json:"bottleneck_ms"`
	// CapacityQPS is the modeled fleet throughput: 1000/BottleneckMS,
	// each shard being an independent machine in the deployment model.
	CapacityQPS float64 `json:"capacity_qps"`
	// Scaling is CapacityQPS relative to the 1-shard row.
	Scaling float64 `json:"scaling"`
}

// HedgeRow is one arm of the hedging matrix.
type HedgeRow struct {
	Hedge     bool    `json:"hedge"`
	P50MS     float64 `json:"p50_ms"`
	P99MS     float64 `json:"p99_ms"`
	Hedged    int64   `json:"hedged"`
	HedgeWins int64   `json:"hedge_wins"`
}

// ShardReport is the gated result of a scale-out matrix run.
type ShardReport struct {
	Docs           int          `json:"docs"`
	Queries        int          `json:"queries"`
	IdentityChecks int          `json:"identity_checks"`
	Scaling        []ScalingRow `json:"scaling"`
	Scaling4       float64      `json:"scaling_4"`
	Hedge          []HedgeRow   `json:"hedge"`
	HedgedP99Frac  float64      `json:"hedged_p99_frac"`
	Pass           bool         `json:"pass"`
	Failures       []string     `json:"failures,omitempty"`
}

// shardQuery is one measurement-mix entry.
type shardQuery struct {
	mode  string
	terms []string
	k     int
}

// buildShardMix derives a deterministic and/or/topk mix from the
// corpus vocabulary (zipfian term popularity via load.BuildWorkload's
// corpus shape: low term ids are hot).
func buildShardMix(cfg ShardConfig, vocab []string) []shardQuery {
	qs := make([]shardQuery, 0, cfg.Queries)
	for i := 0; i < cfg.Queries; i++ {
		t1 := vocab[i%len(vocab)]
		t2 := vocab[(i*7+3)%len(vocab)]
		switch i % 4 {
		case 0:
			qs = append(qs, shardQuery{mode: "and", terms: []string{t1}})
		case 1:
			qs = append(qs, shardQuery{mode: "and", terms: []string{t1, t2}})
		case 2:
			qs = append(qs, shardQuery{mode: "or", terms: []string{t1, t2}})
		default:
			qs = append(qs, shardQuery{mode: "topk", terms: []string{t1, t2}, k: 10})
		}
	}
	return qs
}

// buildShardIndexes partitions docs and builds one index per shard.
func buildShardIndexes(docs []string, n int) ([]*index.Index, error) {
	parts, err := shard.Partition(docs, n)
	if err != nil {
		return nil, err
	}
	codec, err := codecs.ByName("VB")
	if err != nil {
		return nil, err
	}
	out := make([]*index.Index, n)
	for s, part := range parts {
		b := index.NewBuilder(codec)
		for _, d := range part {
			b.AddDocument(d)
		}
		if out[s], err = b.Build(); err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
	}
	return out, nil
}

// RunShard builds the corpus, runs the identity, scaling, and hedging
// phases, and applies the gates.
func RunShard(cfg ShardConfig) (*ShardReport, error) {
	docs, vocab := load.GenCorpus(cfg.Seed, cfg.Docs, cfg.Vocab)
	codec, err := codecs.ByName("VB")
	if err != nil {
		return nil, err
	}
	b := index.NewBuilder(codec)
	for _, d := range docs {
		b.AddDocument(d)
	}
	mono, err := b.Build()
	if err != nil {
		return nil, err
	}
	mix := buildShardMix(cfg, vocab)
	rep := &ShardReport{Docs: cfg.Docs, Queries: len(mix), Pass: true}
	ctx := context.Background()

	// Phase 1 — identity through the real router path at 4 shards.
	// A mismatch is a hard error: no timing result can excuse it.
	idxs4, err := buildShardIndexes(docs, 4)
	if err != nil {
		return nil, err
	}
	router4, err := routerOverIndexes(idxs4, shard.RouterConfig{})
	if err != nil {
		return nil, err
	}
	for _, q := range mix {
		if err := checkIdentity(ctx, router4, mono, q); err != nil {
			return nil, err
		}
		rep.IdentityChecks++
	}

	// Phase 2 — throughput scaling from measured per-shard service
	// times. Each shard is timed serially (so shards never contend for
	// the box's cores) and the fleet capacity is the bottleneck
	// shard's service rate.
	var base float64
	for _, n := range cfg.ShardCounts {
		idxs, err := buildShardIndexes(docs, n)
		if err != nil {
			return nil, err
		}
		row := ScalingRow{Shards: n}
		for s := range idxs {
			be := &shard.IndexBackend{Idx: idxs[s], Label: fmt.Sprintf("shard-%d", s)}
			ms := timePerOp(cfg.Trials, 1, func() {
				for _, q := range mix {
					be.Search(ctx, shard.Request{Mode: q.mode, Terms: q.terms, K: q.k})
				}
			}) / float64(len(mix))
			if ms > row.BottleneckMS {
				row.BottleneckMS = ms
			}
		}
		if row.BottleneckMS > 0 {
			row.CapacityQPS = 1000 / row.BottleneckMS
		}
		if n == cfg.ShardCounts[0] {
			base = row.CapacityQPS
		}
		if base > 0 {
			row.Scaling = row.CapacityQPS / base
		}
		rep.Scaling = append(rep.Scaling, row)
		if n == 4 {
			rep.Scaling4 = row.Scaling
		}
	}

	// Phase 3 — hedging under an injected straggler: 4 shards x 2
	// replicas, one replica sleep-delayed. Same closed-loop stream,
	// hedging off then on.
	for _, hedge := range []bool{false, true} {
		row, err := runHedgeArm(ctx, cfg, docs, mix, hedge)
		if err != nil {
			return nil, err
		}
		rep.Hedge = append(rep.Hedge, *row)
	}
	off, on := rep.Hedge[0], rep.Hedge[1]
	if off.P99MS > 0 {
		rep.HedgedP99Frac = on.P99MS / off.P99MS
	}

	if rep.Scaling4 < cfg.MinScaling4 {
		rep.Pass = false
		rep.Failures = append(rep.Failures, fmt.Sprintf(
			"4-shard fleet capacity scaled only %.2fx over 1 shard (want >= %.2fx)",
			rep.Scaling4, cfg.MinScaling4))
	}
	if on.HedgeWins == 0 {
		rep.Pass = false
		rep.Failures = append(rep.Failures, fmt.Sprintf(
			"hedging fired %d backups but won zero races against a %s straggler",
			on.Hedged, cfg.Straggler))
	}
	if rep.HedgedP99Frac > cfg.MaxHedgedP99Frac {
		rep.Pass = false
		rep.Failures = append(rep.Failures, fmt.Sprintf(
			"hedged p99 %.2fms is %.0f%% of unhedged %.2fms (want <= %.0f%%): hedging speedup not demonstrated",
			on.P99MS, 100*rep.HedgedP99Frac, off.P99MS, 100*cfg.MaxHedgedP99Frac))
	}
	return rep, nil
}

// routerOverIndexes wraps per-shard indexes as single-replica backends.
func routerOverIndexes(idxs []*index.Index, cfg shard.RouterConfig) (*shard.Router, error) {
	replicas := make([][]shard.Backend, len(idxs))
	for s, idx := range idxs {
		replicas[s] = []shard.Backend{&shard.IndexBackend{Idx: idx, Label: fmt.Sprintf("shard-%d", s)}}
	}
	return shard.NewRouter(cfg, replicas)
}

// checkIdentity compares one routed query against the unpartitioned
// reference, element by element.
func checkIdentity(ctx context.Context, r *shard.Router, mono *index.Index, q shardQuery) error {
	m, err := r.Search(ctx, shard.Request{Mode: q.mode, Terms: q.terms, K: q.k})
	if err != nil || m.Partial {
		return fmt.Errorf("router %s %v: partial=%v err=%v", q.mode, q.terms, m.Partial, err)
	}
	if q.mode == "topk" {
		want, err := mono.TopKWith("exhaustive", q.k, nil, q.terms...)
		if err != nil {
			return err
		}
		if len(m.Ranked) != len(want) {
			return fmt.Errorf("router topk %v: %d results, reference %d", q.terms, len(m.Ranked), len(want))
		}
		for i := range want {
			if m.Ranked[i] != want[i] {
				return fmt.Errorf("router topk %v rank %d: %+v, reference %+v", q.terms, i, m.Ranked[i], want[i])
			}
		}
		return nil
	}
	var want []uint32
	if q.mode == "and" {
		want, err = mono.Conjunctive(q.terms...)
	} else {
		want, err = mono.Disjunctive(q.terms...)
	}
	if err != nil {
		return err
	}
	if len(m.Docs) != len(want) {
		return fmt.Errorf("router %s %v: %d docs, reference %d", q.mode, q.terms, len(m.Docs), len(want))
	}
	for i := range want {
		if m.Docs[i] != want[i] {
			return fmt.Errorf("router %s %v doc %d: %d, reference %d", q.mode, q.terms, i, m.Docs[i], want[i])
		}
	}
	return nil
}

// runHedgeArm runs the closed-loop stream against a 4-shard x
// 2-replica router where shard 1's second replica is the straggler.
func runHedgeArm(ctx context.Context, cfg ShardConfig, docs []string, mix []shardQuery, hedge bool) (*HedgeRow, error) {
	idxs, err := buildShardIndexes(docs, 4)
	if err != nil {
		return nil, err
	}
	replicas := make([][]shard.Backend, len(idxs))
	for s, idx := range idxs {
		replicas[s] = []shard.Backend{
			&shard.IndexBackend{Idx: idx, Label: fmt.Sprintf("shard-%d-a", s)},
		}
		if s == 1 {
			replicas[s] = append(replicas[s], &shard.IndexBackend{
				Idx:   idx,
				Label: "shard-1-straggler",
				Delay: cfg.Straggler,
			})
		} else {
			replicas[s] = append(replicas[s], &shard.IndexBackend{
				Idx: idx, Label: fmt.Sprintf("shard-%d-b", s),
			})
		}
	}
	router, err := shard.NewRouter(shard.RouterConfig{
		Hedge:    hedge,
		HedgeMax: cfg.HedgeMax,
	}, replicas)
	if err != nil {
		return nil, err
	}
	lats := make([]float64, 0, cfg.HedgeQueries)
	for i := 0; i < cfg.HedgeQueries; i++ {
		q := mix[i%len(mix)]
		start := time.Now()
		if _, err := router.Search(ctx, shard.Request{Mode: q.mode, Terms: q.terms, K: q.k}); err != nil {
			return nil, fmt.Errorf("hedge arm (hedge=%v) query %d: %w", hedge, i, err)
		}
		lats = append(lats, float64(time.Since(start).Nanoseconds())/1e6)
	}
	sort.Float64s(lats)
	row := &HedgeRow{
		Hedge: hedge,
		P50MS: lats[len(lats)/2],
		P99MS: lats[len(lats)*99/100],
	}
	for _, st := range router.Stats() {
		row.Hedged += st.Hedged
		row.HedgeWins += st.HedgeWins
	}
	return row, nil
}
