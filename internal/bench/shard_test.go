package bench

import (
	"encoding/json"
	"flag"
	"os"
	"strings"
	"testing"
)

var (
	shardOut  = flag.String("shard.out", "", "write the shard matrix report JSON to this path")
	shardFull = flag.Bool("shard.full", false, "run the committed-results matrix instead of the quick one")
)

// TestShardBenchGate runs the scale-out serving matrix and applies the
// gates: every routed query must be byte-identical to the
// unpartitioned index (fatal, always — checkIdentity errors abort the
// run), hedged backups must win real races against the injected
// straggler (counter-based, so it binds even under -race), and the
// modeled fleet capacity at 4 shards plus the hedged-p99 cut are
// timing gates, informational under -race. `make shardbench` runs this
// with -shard.full -shard.out to (re)generate results/BENCH_shard.json.
func TestShardBenchGate(t *testing.T) {
	cfg := QuickShard()
	if *shardFull {
		cfg = DefaultShard()
	}
	rep, err := RunShard(cfg)
	if err != nil {
		t.Fatal(err) // identity or setup failure: always fatal
	}
	if *shardOut != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(*shardOut, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d identity checks, scaling4 %.2fx, hedged p99 %.0f%% of unhedged)",
			*shardOut, rep.IdentityChecks, rep.Scaling4, 100*rep.HedgedP99Frac)
	}
	for _, row := range rep.Scaling {
		t.Logf("shards=%d  bottleneck %7.4fms  capacity %8.0f qps  scaling %5.2fx",
			row.Shards, row.BottleneckMS, row.CapacityQPS, row.Scaling)
	}
	for _, h := range rep.Hedge {
		t.Logf("hedge=%-5v p50 %7.3fms  p99 %7.3fms  hedged %d  wins %d",
			h.Hedge, h.P50MS, h.P99MS, h.Hedged, h.HedgeWins)
	}
	if rep.Pass {
		return
	}
	for _, f := range rep.Failures {
		// The hedge-wins gate is counter-based and race-safe; the
		// scaling and p99 gates are wall-clock and go informational
		// under instrumentation.
		if raceEnabled && (strings.Contains(f, "scaled") || strings.Contains(f, "p99")) {
			t.Logf("race detector enabled, timing gate informational: %s", f)
		} else {
			t.Error(f)
		}
	}
}
