package bench

import (
	"fmt"

	"repro/internal/bitmap"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/intlist"
	"repro/internal/iosim"
	"repro/internal/ops"
)

// extIO is an extension experiment beyond the paper (its §4.1 defers
// disks to future work): the same skewed intersection run against a
// simulated storage device, reporting bytes fetched per query. List
// codecs with skip pointers touch only probed blocks; RLE bitmaps must
// fetch their whole payload; the no-skip ablation reads everything up
// to the last probe.
func extIO() Experiment {
	return Experiment{
		ID:    "extio",
		Title: "Extension: simulated-disk I/O per intersection (bytes fetched)",
		Run: func(cfg Config) ([]Measurement, error) {
			d := cfg.Densities[len(cfg.Densities)/2]
			n2 := int(d * float64(cfg.Domain))
			n1 := n2 / cfg.Ratio
			if n1 < 1 {
				n1 = 1
			}
			short := gen.Uniform(n1, cfg.Domain, 600)
			long := gen.Uniform(n2, cfg.Domain, 601)
			var ms []Measurement

			listVariants := []struct {
				name string
				b    intlist.Blocked
			}{
				{"VB", intlist.Blocked{BC: intlist.VBBlock()}},
				{"VB-noskip", intlist.Blocked{BC: intlist.VBBlock(), NoSkips: true}},
				{"PforDelta*", intlist.Blocked{BC: intlist.PforDeltaStarBlock()}},
				{"SIMDPforDelta*", intlist.Blocked{BC: intlist.SIMDPforDeltaStarBlock()}},
				{"Simple8b", intlist.Blocked{BC: intlist.Simple8bBlock()}},
			}
			for _, v := range listVariants {
				disk := iosim.NewDisk(80, 0.25)
				ps, err := iosim.StoreList(disk, v.b, short)
				if err != nil {
					return nil, err
				}
				pl, err := iosim.StoreList(disk, v.b, long)
				if err != nil {
					return nil, err
				}
				disk.Reset()
				if _, err := ops.Intersect([]core.Posting{ps, pl}); err != nil {
					return nil, err
				}
				_, bytes, costUS := disk.Stats()
				ms = append(ms, Measurement{
					Experiment: "extio",
					Setting:    fmt.Sprintf("uniform/%s", DensityName(d)),
					Method:     v.name, Op: "and-io",
					SpaceBytes: int(bytes),      // bytes fetched
					TimeMS:     costUS / 1000.0, // simulated device cost
				})
			}

			bitmapCodecs := []core.Codec{
				bitmap.NewWAH(), bitmap.NewEWAH(), bitmap.NewRoaring(),
			}
			for _, c := range bitmapCodecs {
				disk := iosim.NewDisk(80, 0.25)
				pa, err := c.Compress(short)
				if err != nil {
					return nil, err
				}
				pb, err := c.Compress(long)
				if err != nil {
					return nil, err
				}
				sa, err := iosim.StoreWhole(disk, pa)
				if err != nil {
					return nil, err
				}
				sb, err := iosim.StoreWhole(disk, pb)
				if err != nil {
					return nil, err
				}
				disk.Reset()
				if _, err := ops.Intersect([]core.Posting{sa, sb}); err != nil {
					return nil, err
				}
				_, bytes, costUS := disk.Stats()
				ms = append(ms, Measurement{
					Experiment: "extio",
					Setting:    fmt.Sprintf("uniform/%s", DensityName(d)),
					Method:     c.Name(), Op: "and-io",
					SpaceBytes: int(bytes),
					TimeMS:     costUS / 1000.0,
				})
			}
			return ms, nil
		},
	}
}
