package intlist

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

// allListCodecs lists every inverted-list representation for
// table-driven tests.
func allListCodecs() []core.Codec {
	return []core.Codec{
		NewRawList(), NewVB(), NewSimple9(), NewPforDeltaCodec(),
		NewNewPforDelta(), NewOptPforDelta(), NewSimple16(), NewGroupVB(),
		NewSimple8b(), NewPEF(), NewSIMDPforDelta(), NewSIMDBP128(),
		NewPforDeltaStar(), NewSIMDPforDeltaStar(), NewSIMDBP128Star(),
	}
}

func listEdgeCases() map[string][]uint32 {
	cases := map[string][]uint32{
		"empty":            {},
		"zero":             {0},
		"one":              {7},
		"pair":             {5, 9},
		"dense":            seqList(10, 300),
		"block-127":        seqList(0, 127),
		"block-128":        seqList(0, 128),
		"block-129":        seqList(0, 129),
		"block-255":        seqList(0, 255),
		"block-256":        seqList(0, 256),
		"stride-big":       strideList(1000, 100000, 40),
		"mixed-gaps":       {0, 1, 2, 1000, 1001, 5000000, 5000001, 5000002},
		"gap-28bit":        {0, 1<<28 - 1},
		"growing-gaps":     growingGaps(200),
		"exception-heavy":  exceptionHeavy(300),
		"ones-runs":        onesRuns(400),
		"large-first":      {1 << 30, 1<<30 + 1, 1<<30 + 2},
		"near-max":         {1<<32 - 6, 1<<32 - 4, 1<<32 - 1},
		"max-spread":       {0, 1 << 31, 1<<32 - 1},
		"block-edge-jump":  append(seqList(0, 128), 1<<27),
		"multiblock-jumps": multiBlockJumps(),
	}
	return cases
}

func seqList(start, n uint32) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = start + uint32(i)
	}
	return out
}

func strideList(start, step, n uint32) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = start + step*uint32(i)
	}
	return out
}

// growingGaps has gap i+1 at position i: stresses per-value widths.
func growingGaps(n int) []uint32 {
	out := make([]uint32, n)
	v := uint32(0)
	for i := range out {
		v += uint32(i + 1)
		out[i] = v
	}
	return out
}

// exceptionHeavy mixes tiny gaps with rare huge ones: the PforDelta
// exception path, including forced exceptions.
func exceptionHeavy(n int) []uint32 {
	out := make([]uint32, n)
	v := uint32(0)
	for i := range out {
		if i%37 == 5 {
			v += 1 << 20
		} else {
			v += 1 + uint32(i%3)
		}
		out[i] = v
	}
	return out
}

// onesRuns produces long runs of consecutive values (gap=1), hitting
// Simple8b's run selectors.
func onesRuns(n int) []uint32 {
	out := make([]uint32, 0, n)
	v := uint32(0)
	for len(out) < n {
		v += 1000
		for j := 0; j < 60 && len(out) < n; j++ {
			out = append(out, v)
			v++
		}
	}
	return out
}

func multiBlockJumps() []uint32 {
	var out []uint32
	v := uint32(0)
	for b := 0; b < 6; b++ {
		for i := 0; i < 128; i++ {
			v += 3
			out = append(out, v)
		}
		v += 1 << 24
	}
	return out
}

func TestListRoundTrip(t *testing.T) {
	for _, c := range allListCodecs() {
		for name, vals := range listEdgeCases() {
			p, err := c.Compress(vals)
			if err != nil {
				// Simple9/16 legitimately reject gaps >= 2^28 (documented
				// design limit); every other codec must accept everything.
				if isGapLimited(c) && name == "max-spread" {
					continue
				}
				t.Fatalf("%s/%s: Compress: %v", c.Name(), name, err)
			}
			if p.Len() != len(vals) {
				t.Errorf("%s/%s: Len=%d want %d", c.Name(), name, p.Len(), len(vals))
			}
			got := p.Decompress()
			if !equalU32(got, vals) {
				t.Errorf("%s/%s: round trip mismatch (got %d values want %d)",
					c.Name(), name, len(got), len(vals))
			}
		}
	}
}

// isGapLimited reports whether the codec's block format caps d-gaps.
func isGapLimited(c core.Codec) bool {
	b, ok := c.(Blocked)
	if !ok {
		return false
	}
	_, limited := b.BC.(GapLimited)
	return limited
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestListRejectsUnsorted(t *testing.T) {
	for _, c := range allListCodecs() {
		if _, err := c.Compress([]uint32{9, 3}); err == nil {
			t.Errorf("%s: expected error on unsorted input", c.Name())
		}
	}
}

func TestSimple16RejectsHugeGaps(t *testing.T) {
	for _, c := range []core.Codec{NewSimple9(), NewSimple16()} {
		if _, err := c.Compress([]uint32{1, 1 + 1<<28}); err == nil {
			t.Errorf("%s: expected gap-limit error", c.Name())
		}
	}
}

func TestIteratorNext(t *testing.T) {
	vals := multiBlockJumps()
	for _, c := range allListCodecs() {
		p, err := c.Compress(vals)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		it := p.(core.Seeker).Iterator()
		for i, want := range vals {
			v, ok := it.Next()
			if !ok || v != want {
				t.Fatalf("%s: Next[%d] = %d,%v want %d", c.Name(), i, v, ok, want)
			}
		}
		if _, ok := it.Next(); ok {
			t.Errorf("%s: Next past end should fail", c.Name())
		}
	}
}

func TestSeekGEQ(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	vals := make([]uint32, 0, 2000)
	v := uint32(0)
	for len(vals) < 2000 {
		v += 1 + rng.Uint32()%1000
		vals = append(vals, v)
	}
	maxV := vals[len(vals)-1]
	for _, c := range allListCodecs() {
		p, err := c.Compress(vals)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		it := p.(core.Seeker).Iterator()
		// Monotone increasing probes, as SvS issues them.
		target := uint32(0)
		idx := 0
		for probe := 0; probe < 300; probe++ {
			target += rng.Uint32() % (maxV / 250)
			// Reference answer.
			for idx < len(vals) && vals[idx] < target {
				idx++
			}
			got, ok := it.SeekGEQ(target)
			if idx >= len(vals) {
				if ok && got < target {
					t.Fatalf("%s: SeekGEQ(%d) = %d,%v want none", c.Name(), target, got, ok)
				}
				break
			}
			if !ok || got != vals[idx] {
				t.Fatalf("%s: SeekGEQ(%d) = %d,%v want %d", c.Name(), target, got, ok, vals[idx])
			}
		}
	}
}

// TestSeekGEQExactAndBoundaries probes block boundaries specifically.
func TestSeekGEQExactAndBoundaries(t *testing.T) {
	vals := strideList(10, 10, 1000) // 10,20,...,10000
	for _, c := range allListCodecs() {
		p, _ := c.Compress(vals)
		for _, probe := range []struct{ target, want uint32 }{
			{0, 10}, {10, 10}, {11, 20}, {1280, 1280}, {1281, 1290},
			{1289, 1290}, {9999, 10000}, {10000, 10000},
		} {
			it := p.(core.Seeker).Iterator()
			got, ok := it.SeekGEQ(probe.target)
			if !ok || got != probe.want {
				t.Errorf("%s: SeekGEQ(%d) = %d,%v want %d",
					c.Name(), probe.target, got, ok, probe.want)
			}
		}
		it := p.(core.Seeker).Iterator()
		if _, ok := it.SeekGEQ(10001); ok {
			t.Errorf("%s: SeekGEQ beyond max should fail", c.Name())
		}
	}
}

// TestVBPaperExample checks §3.1: 16385 encodes as the three bytes
// 10000001 10000000 00000001.
func TestVBPaperExample(t *testing.T) {
	got := PutVB(nil, 16385)
	want := []byte{0b10000001, 0b10000000, 0b00000001}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("PutVB(16385) = %08b, want %08b", got, want)
	}
	v, n := GetVB(got, 0)
	if v != 16385 || n != 3 {
		t.Fatalf("GetVB = %d,%d want 16385,3", v, n)
	}
}

// TestSkipPointerSpace checks the paper's claim that skip pointers cost
// only a few percent of space (§7 lesson 8) on realistic lists.
func TestSkipPointerSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := make([]uint32, 0, 100000)
	v := uint32(0)
	for len(vals) < 100000 {
		v += 1 + rng.Uint32()%200
		vals = append(vals, v)
	}
	with, _ := NewVB().Compress(vals)
	without, _ := NewBlockedNoSkips(VBBlock()).Compress(vals)
	overhead := float64(with.SizeBytes()-without.SizeBytes()) / float64(without.SizeBytes())
	if overhead <= 0 || overhead > 0.10 {
		t.Errorf("skip pointer overhead = %.1f%%, want (0, 10%%]", overhead*100)
	}
}

// TestPforDeltaStarNoExceptions: PforDelta* must be pure packing — its
// per-block payload never exceeds 1 + ceil(127*32/8) bytes.
func TestPforDeltaStarNoExceptions(t *testing.T) {
	vals := exceptionHeavy(128)
	p, _ := NewPforDeltaStar().Compress(vals)
	if !equalU32(p.Decompress(), vals) {
		t.Fatal("round trip failed")
	}
}

// TestPEFSkipsWithoutDecode: seeking across a large PEF posting must
// work and stay cheap relative to full decompression (sanity check of
// the structural property, not a timing assertion).
func TestPEFSkipsWithoutDecode(t *testing.T) {
	vals := strideList(0, 1000, 100000)
	p, _ := NewPEF().Compress(vals)
	it := p.(core.Seeker).Iterator()
	v, ok := it.SeekGEQ(50_000_000)
	if !ok || v != 50_000_000 {
		t.Fatalf("SeekGEQ = %d,%v want 50000000", v, ok)
	}
	v, ok = it.SeekGEQ(99_998_001)
	if !ok || v != 99_999_000 {
		t.Fatalf("SeekGEQ tail = %d,%v want 99999000", v, ok)
	}
	if _, ok := it.SeekGEQ(99_999_001); ok {
		t.Fatal("SeekGEQ beyond max should fail")
	}
}

// TestCompressedSmallerThanRaw: §5.1 observation 4 — list codecs never
// exceed the uncompressed list (on gap-friendly data with many values).
func TestCompressedSmallerThanRaw(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vals := make([]uint32, 0, 50000)
	v := uint32(0)
	for len(vals) < 50000 {
		v += 1 + rng.Uint32()%64
		vals = append(vals, v)
	}
	raw, _ := NewRawList().Compress(vals)
	for _, c := range allListCodecs() {
		if c.Name() == "List" || c.Name() == "PEF" {
			continue // PEF trades space for skipping on some inputs
		}
		p, err := c.Compress(vals)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if p.SizeBytes() > raw.SizeBytes() {
			t.Errorf("%s: %d bytes exceeds raw %d", c.Name(), p.SizeBytes(), raw.SizeBytes())
		}
	}
}

func TestRandomRoundTripAllCodecs(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(3000)
		vals := make([]uint32, 0, n)
		v := uint32(0)
		for len(vals) < n {
			v += 1 + uint32(rng.Intn(1<<uint(1+rng.Intn(18))))
			vals = append(vals, v)
		}
		for _, c := range allListCodecs() {
			p, err := c.Compress(vals)
			if err != nil {
				t.Fatalf("%s trial %d: %v", c.Name(), trial, err)
			}
			if !equalU32(p.Decompress(), vals) {
				t.Errorf("%s trial %d: round trip mismatch", c.Name(), trial)
			}
		}
	}
}
