package intlist

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestOptPFDNeverLargerThanNewPFD: OptPforDelta picks b by exact size
// minimization over NewPforDelta's own layout, so for any input it can
// never produce a larger posting — a deterministic dominance invariant
// of §3.5.
func TestOptPFDNeverLargerThanNewPFD(t *testing.T) {
	prop := func(s sortedSet) bool {
		opt, err1 := NewOptPforDelta().Compress(s)
		npfd, err2 := NewNewPforDelta().Compress(s)
		if err1 != nil || err2 != nil {
			return false
		}
		return opt.SizeBytes() <= npfd.SizeBytes()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPforDeltaStarVsPforDeltaTradeoff: on exception-free blocks the
// two coincide; with outliers PforDelta's 90% rule may shrink below
// PforDelta* but never by inflating — sanity-check both compress and
// agree on content.
func TestPforDeltaStarVsPforDeltaTradeoff(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	// Exception-free: identical widths chosen, sizes within the 3-byte
	// exception header difference per block.
	smooth := make([]uint32, 1000)
	v := uint32(0)
	for i := range smooth {
		v += 1 + uint32(rng.Intn(15))
		smooth[i] = v
	}
	star, _ := NewPforDeltaStar().Compress(smooth)
	pfd, _ := NewPforDeltaCodec().Compress(smooth)
	blocks := (len(smooth) + BlockSize - 1) / BlockSize
	if diff := pfd.SizeBytes() - star.SizeBytes(); diff < 0 || diff > 2*blocks {
		t.Errorf("smooth data: PforDelta %d B vs PforDelta* %d B (diff %d, want ~2/block)",
			pfd.SizeBytes(), star.SizeBytes(), diff)
	}
	// Outlier-heavy: the 90% rule must beat max-width packing.
	spiky := exceptionHeavy(1000)
	star, _ = NewPforDeltaStar().Compress(spiky)
	pfd, _ = NewPforDeltaCodec().Compress(spiky)
	if pfd.SizeBytes() >= star.SizeBytes() {
		t.Errorf("spiky data: PforDelta %d B should beat PforDelta* %d B",
			pfd.SizeBytes(), star.SizeBytes())
	}
}
