package intlist

import (
	"repro/internal/core"
)

// External storage support: the paper's evaluation is main-memory only
// and explicitly defers disks to future work (§4.1); it also criticizes
// [8] for letting the OS buffer cache confound its disk comparison. The
// stored-posting frame makes that experiment controllable: skip
// pointers stay in memory (as real systems keep them), block payloads
// live behind a Fetcher, and every payload access is explicit — so a
// simulated device (internal/iosim) can count exactly which bytes each
// operation touches.

// Fetcher supplies byte ranges of an externally stored payload.
type Fetcher interface {
	// Fetch returns payload bytes [offset, offset+length).
	Fetch(offset, length int) []byte
}

// CompressStored compresses values with the Blocked frame, hands the
// payload to store, and returns a posting whose block decodes fetch
// through the returned Fetcher.
func (b Blocked) CompressStored(values []uint32, store func(payload []byte) Fetcher) (core.Posting, error) {
	p0, err := b.Compress(values)
	if err != nil {
		return nil, err
	}
	lp := p0.(*listPosting)
	sp := &storedPosting{
		bc:      lp.bc,
		skips:   lp.skips,
		n:       lp.n,
		bs:      lp.bs,
		noSkips: lp.noSkips,
		dataLen: len(lp.data),
		fetcher: store(lp.data),
	}
	return sp, nil
}

// storedPosting mirrors listPosting with the payload behind a Fetcher.
type storedPosting struct {
	bc      BlockCodec
	fetcher Fetcher
	skips   []skipEntry
	dataLen int
	n       int
	bs      int
	noSkips bool
}

func (p *storedPosting) Len() int { return p.n }

// SizeBytes reports payload plus in-memory skip pointers, matching the
// in-memory frame's accounting.
func (p *storedPosting) SizeBytes() int {
	if p.noSkips {
		return p.dataLen
	}
	return p.dataLen + 8*len(p.skips)
}

func (p *storedPosting) numBlocks() int          { return len(p.skips) }
func (p *storedPosting) blockFirst(b int) uint32 { return p.skips[b].first }
func (p *storedPosting) noSkipMode() bool        { return p.noSkips }

func (p *storedPosting) blockLen(b int) int {
	if b == len(p.skips)-1 {
		if r := p.n % p.bs; r != 0 {
			return r
		}
	}
	return p.bs
}

// blockExtent returns the payload range of block b.
func (p *storedPosting) blockExtent(b int) (off, length int) {
	off = int(p.skips[b].offset)
	end := p.dataLen
	if b+1 < len(p.skips) {
		end = int(p.skips[b+1].offset)
	}
	return off, end - off
}

func (p *storedPosting) decodeBlock(b int, buf []uint32) []uint32 {
	n := p.blockLen(b)
	out := buf[:n]
	out[0] = p.skips[b].first
	off, length := p.blockExtent(b)
	p.bc.DecodeBlock(p.fetcher.Fetch(off, length), out)
	return out
}

func (p *storedPosting) Decompress() []uint32 {
	return p.DecompressAppend(make([]uint32, 0, p.n))
}

// DecompressAppend implements core.DecompressAppender; block fetches go
// through the Fetcher exactly as in Decompress.
func (p *storedPosting) DecompressAppend(dst []uint32) []uint32 {
	base := len(dst)
	dst = core.GrowLen(dst, p.n)
	for b := range p.skips {
		lo := base + b*p.bs
		p.decodeBlock(b, dst[lo:lo+p.blockLen(b)])
	}
	return dst
}

// Iterator returns a skipping iterator; block fetches go through the
// Fetcher, so SvS probes fetch only the blocks they touch.
func (p *storedPosting) Iterator() core.Iterator {
	return &listIterator{p: p, block: -1}
}
