package intlist

import (
	"math/bits"
	"sort"

	"repro/internal/bitio"
	"repro/internal/core"
)

// PEF (Partitioned Elias-Fano, §3.9) is not d-gap based. The list is cut
// into partitions of 128 elements; within each, values are encoded
// relative to the partition base with the classic EF split: the low l
// bits of each element go to a packed low-bit array, the remaining high
// bits become a unary-coded sequence in a high-bit array (the i-th
// element's one sits at bit high_i + i).
//
// The payoff matches the paper: SeekGEQ skips within a partition by
// counting zeros in the high-bit array word-at-a-time — no block
// decompression — so intersection is fast (§5.2 observation 2), while
// full decompression must visit every bit of the high array and is the
// slowest of all codecs (§5.1 observation 12).
type PEF struct{}

// NewPEF returns the PEF codec.
func NewPEF() core.Codec { return PEF{} }

func (PEF) Name() string    { return "PEF" }
func (PEF) Kind() core.Kind { return core.KindList }

// pefPartSize is the uniform partition size (the original paper
// optimizes partition boundaries; uniform partitions preserve the
// qualitative behavior).
const pefPartSize = 128

type pefPart struct {
	base    uint32 // first value of the partition
	lowOff  uint64 // bit offset into the low array
	highOff uint64 // bit offset into the high array
	highEnd uint64 // one past the partition's last high bit
	count   int
	l       uint8 // low-bit width
}

type pefPosting struct {
	parts    []pefPart
	low      []uint64
	high     []uint64
	lowBits  uint64
	highBits uint64
	n        int
}

func (PEF) Compress(values []uint32) (core.Posting, error) {
	if err := core.ValidateSorted(values); err != nil {
		return nil, err
	}
	p := &pefPosting{n: len(values)}
	var lw, hw bitio.Writer
	for i := 0; i < len(values); i += pefPartSize {
		j := i + pefPartSize
		if j > len(values) {
			j = len(values)
		}
		part := values[i:j]
		base := part[0]
		u := uint64(part[len(part)-1] - base)
		n := uint64(len(part))
		var l uint8
		if u/n >= 1 {
			l = uint8(bits.Len64(u/n) - 1)
		}
		pp := pefPart{base: base, lowOff: lw.NBits, highOff: hw.NBits, count: len(part), l: l}
		prevHigh := uint64(0)
		for _, v := range part {
			off := uint64(v - base)
			lw.Write(off, uint(l))
			high := off >> l
			for prevHigh < high {
				hw.WriteBool(false)
				prevHigh++
			}
			hw.WriteBool(true)
		}
		pp.highEnd = hw.NBits
		p.parts = append(p.parts, pp)
	}
	p.low = lw.Words
	p.high = hw.Words
	// Track exact bit lengths for SizeBytes.
	p.lowBits, p.highBits = lw.NBits, hw.NBits
	return p, nil
}

func (p *pefPosting) Len() int { return p.n }

// SizeBytes counts both bit arrays plus 8 bytes of per-partition
// directory (base, low width, high length).
func (p *pefPosting) SizeBytes() int {
	return int((p.lowBits+7)/8) + int((p.highBits+7)/8) + 8*len(p.parts)
}

func (p *pefPosting) Decompress() []uint32 {
	return p.DecompressAppend(make([]uint32, 0, p.n))
}

// DecompressAppend implements core.DecompressAppender via the iterator.
func (p *pefPosting) DecompressAppend(dst []uint32) []uint32 {
	it := p.Iterator()
	for {
		v, ok := it.Next()
		if !ok {
			return dst
		}
		dst = append(dst, v)
	}
}

// Iterator returns a skipping iterator over the partitions.
func (p *pefPosting) Iterator() core.Iterator {
	return &pefIterator{p: p}
}

type pefIterator struct {
	p     *pefPosting
	part  int
	i     int    // elements consumed in the current partition
	hpos  uint64 // next unread bit in the high array
	zeros uint64 // zeros consumed in the current partition
	lastV uint32
	valid bool // lastV holds the most recent value
	init  bool // cursor entered the current partition
}

func (it *pefIterator) enterPart(k int) {
	pp := &it.p.parts[k]
	it.part = k
	it.i = 0
	it.hpos = pp.highOff
	it.zeros = 0
	it.init = true
}

func (it *pefIterator) Next() (uint32, bool) {
	p := it.p
	for {
		if !it.init {
			if it.part >= len(p.parts) {
				return 0, false
			}
			it.enterPart(it.part)
		}
		pp := &p.parts[it.part]
		if it.i >= pp.count {
			it.part++
			it.init = false
			continue
		}
		// Unary-decode the next high value.
		for !readBit(p.high, it.hpos) {
			it.zeros++
			it.hpos++
		}
		it.hpos++
		low := readBits(p.low, pp.lowOff+uint64(it.i)*uint64(pp.l), uint(pp.l))
		v := pp.base + uint32(it.zeros<<pp.l|low)
		it.i++
		it.lastV, it.valid = v, true
		return v, true
	}
}

// SeekGEQ jumps to the partition containing target via the directory,
// then skips hTarget zeros in the high array word-at-a-time before a
// short linear scan — no full-partition decode.
func (it *pefIterator) SeekGEQ(target uint32) (uint32, bool) {
	p := it.p
	if len(p.parts) == 0 {
		return 0, false
	}
	if it.valid && it.lastV >= target {
		return it.lastV, true
	}
	// Partition jump: last partition whose base <= target, never behind
	// the current one.
	start := it.part
	if start >= len(p.parts) {
		return 0, false
	}
	k := start + sort.Search(len(p.parts)-start, func(i int) bool {
		return p.parts[start+i].base > target
	}) - 1
	if k < start {
		k = start
	}
	if k != it.part || !it.init {
		it.enterPart(k)
	}
	pp := &p.parts[it.part]
	if target > pp.base {
		hTarget := uint64(target-pp.base) >> pp.l
		it.skipZeros(hTarget, pp)
	}
	for {
		v, ok := it.Next()
		if !ok {
			return 0, false
		}
		if v >= target {
			return v, true
		}
	}
}

// skipZeros consumes high-array bits until zeros >= hTarget, counting
// the ones passed (they are elements with smaller high parts).
func (it *pefIterator) skipZeros(hTarget uint64, pp *pefPart) {
	p := it.p
	for it.zeros < hTarget && it.hpos < pp.highEnd {
		// Word-at-a-time when fully inside the partition and far from
		// the target.
		if pp.highEnd-it.hpos >= 64 && it.hpos&63 == 0 {
			w := p.high[it.hpos>>6]
			ones := uint64(bits.OnesCount64(w))
			zw := 64 - ones
			if it.zeros+zw < hTarget {
				it.zeros += zw
				it.i += int(ones)
				it.hpos += 64
				continue
			}
		}
		if readBit(p.high, it.hpos) {
			it.i++
		} else {
			it.zeros++
		}
		it.hpos++
	}
}

func readBit(words []uint64, pos uint64) bool {
	return words[pos>>6]&(1<<(pos&63)) != 0
}

func readBits(words []uint64, pos uint64, n uint) uint64 {
	if n == 0 {
		return 0
	}
	off := uint(pos & 63)
	idx := int(pos >> 6)
	v := words[idx] >> off
	if off+n > 64 && idx+1 < len(words) {
		v |= words[idx+1] << (64 - off)
	}
	return v & (1<<n - 1)
}
