package intlist

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
)

// Binary serialization for the list representations. Layouts (after the
// standard tag+cardinality header, little-endian):
//
//	RawList  u32 values
//	Blocked  inner codec name (u8 length + bytes), flags u8 (bit 0 =
//	         no-skips), block size u8, skip count u32, skips (offset u32
//	         + first u32), payload length u32 + bytes
//	PEF      partition count u32, partitions (base u32, l u8, count u16,
//	         lowOff u64, highOff u64, highEnd u64), low/high bit arrays
//	         (bit length u64 + u64 words each)

// --- RawList ---

// MarshalBinary implements encoding.BinaryMarshaler.
func (p *rawPosting) MarshalBinary() ([]byte, error) {
	dst := core.PutHeader(nil, core.TagRawList, len(p.values))
	for _, v := range p.values {
		dst = binary.LittleEndian.AppendUint32(dst, v)
	}
	return dst, nil
}

// Decode implements core.Decoder.
func (RawList) Decode(data []byte) (core.Posting, error) {
	n, rest, err := core.GetHeader(data, core.TagRawList)
	if err != nil {
		return nil, err
	}
	if len(rest) < 4*n {
		return nil, fmt.Errorf("%w: truncated raw list", core.ErrBadFormat)
	}
	p := &rawPosting{values: make([]uint32, n)}
	for i := range p.values {
		p.values[i] = binary.LittleEndian.Uint32(rest[4*i:])
	}
	if err := core.VerifyDecompress(p); err != nil {
		return nil, err
	}
	return p, nil
}

// --- Blocked frame (covers 12 of the codecs) ---

// blockCodecByName reconstructs the inner block codec from its name.
func blockCodecByName(name string) (BlockCodec, error) {
	for _, bc := range []BlockCodec{
		VBBlock(), GroupVBBlock(),
		simpleBlock{name: "Simple9", cases: simple9Cases},
		simpleBlock{name: "Simple16", cases: simple16Cases},
		Simple8bBlock(), PforDeltaBlock(), PforDeltaStarBlock(),
		newPFDBlock{}, optPFDBlock{}, simdBP128Block{}, simdBP128StarBlock{},
		SIMDPforDeltaBlock(), SIMDPforDeltaStarBlock(),
	} {
		if bc.Name() == name {
			return bc, nil
		}
	}
	return nil, fmt.Errorf("%w: unknown block codec %q", core.ErrBadFormat, name)
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (p *listPosting) MarshalBinary() ([]byte, error) {
	name := p.bc.Name()
	dst := core.PutHeader(nil, core.TagBlocked, p.n)
	dst = append(dst, byte(len(name)))
	dst = append(dst, name...)
	flags := byte(0)
	if p.noSkips {
		flags |= 1
	}
	dst = append(dst, flags, byte(p.bs))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(p.skips)))
	for _, s := range p.skips {
		dst = binary.LittleEndian.AppendUint32(dst, s.offset)
		dst = binary.LittleEndian.AppendUint32(dst, s.first)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(p.data)))
	return append(dst, p.data...), nil
}

// Decode implements core.Decoder. The Blocked value's own inner codec
// is ignored; the stored name wins, so any Blocked instance can decode
// any framed posting.
func (Blocked) Decode(data []byte) (core.Posting, error) {
	n, rest, err := core.GetHeader(data, core.TagBlocked)
	if err != nil {
		return nil, err
	}
	if len(rest) < 1 {
		return nil, core.ErrBadFormat
	}
	nameLen := int(rest[0])
	rest = rest[1:]
	if len(rest) < nameLen+6 {
		return nil, fmt.Errorf("%w: truncated Blocked header", core.ErrBadFormat)
	}
	bc, err := blockCodecByName(string(rest[:nameLen]))
	if err != nil {
		return nil, err
	}
	rest = rest[nameLen:]
	flags := rest[0]
	bs := int(rest[1])
	if bs < 2 || bs > BlockSize {
		return nil, fmt.Errorf("%w: block size %d", core.ErrBadFormat, bs)
	}
	skipCount := int(binary.LittleEndian.Uint32(rest[2:]))
	rest = rest[6:]
	if len(rest) < 8*skipCount+4 {
		return nil, fmt.Errorf("%w: truncated skip array", core.ErrBadFormat)
	}
	p := &listPosting{bc: bc, n: n, noSkips: flags&1 != 0, bs: bs}
	p.skips = make([]skipEntry, skipCount)
	for i := range p.skips {
		p.skips[i].offset = binary.LittleEndian.Uint32(rest[8*i:])
		p.skips[i].first = binary.LittleEndian.Uint32(rest[8*i+4:])
	}
	rest = rest[8*skipCount:]
	dataLen := int(binary.LittleEndian.Uint32(rest))
	rest = rest[4:]
	if len(rest) < dataLen {
		return nil, fmt.Errorf("%w: truncated Blocked payload", core.ErrBadFormat)
	}
	p.data = make([]byte, dataLen)
	copy(p.data, rest)
	if err := p.validate(); err != nil {
		return nil, err
	}
	if err := core.VerifyDecompress(p); err != nil {
		return nil, err
	}
	return p, nil
}

// validate checks structural consistency of a deserialized frame so
// later decoding cannot index out of bounds.
func (p *listPosting) validate() error {
	wantSkips := (p.n + p.bs - 1) / p.bs
	if len(p.skips) != wantSkips {
		return fmt.Errorf("%w: %d skip entries for %d values", core.ErrBadFormat, len(p.skips), p.n)
	}
	for i, s := range p.skips {
		if int(s.offset) > len(p.data) {
			return fmt.Errorf("%w: skip %d offset out of range", core.ErrBadFormat, i)
		}
		if i > 0 && (s.offset < p.skips[i-1].offset || s.first <= p.skips[i-1].first) {
			return fmt.Errorf("%w: skip %d not monotonic", core.ErrBadFormat, i)
		}
	}
	return nil
}

// --- PEF ---

// MarshalBinary implements encoding.BinaryMarshaler.
func (p *pefPosting) MarshalBinary() ([]byte, error) {
	dst := core.PutHeader(nil, core.TagPEF, p.n)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(p.parts)))
	for _, pp := range p.parts {
		dst = binary.LittleEndian.AppendUint32(dst, pp.base)
		dst = append(dst, pp.l)
		dst = binary.LittleEndian.AppendUint16(dst, uint16(pp.count))
		dst = binary.LittleEndian.AppendUint64(dst, pp.lowOff)
		dst = binary.LittleEndian.AppendUint64(dst, pp.highOff)
		dst = binary.LittleEndian.AppendUint64(dst, pp.highEnd)
	}
	dst = appendBitArray(dst, p.lowBits, p.low)
	dst = appendBitArray(dst, p.highBits, p.high)
	return dst, nil
}

func appendBitArray(dst []byte, nbits uint64, words []uint64) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, nbits)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(words)))
	for _, w := range words {
		dst = binary.LittleEndian.AppendUint64(dst, w)
	}
	return dst
}

// Decode implements core.Decoder.
func (PEF) Decode(data []byte) (core.Posting, error) {
	n, rest, err := core.GetHeader(data, core.TagPEF)
	if err != nil {
		return nil, err
	}
	if len(rest) < 4 {
		return nil, core.ErrBadFormat
	}
	np := int(binary.LittleEndian.Uint32(rest))
	rest = rest[4:]
	const partSize = 4 + 1 + 2 + 8 + 8 + 8
	if len(rest) < np*partSize {
		return nil, fmt.Errorf("%w: truncated PEF directory", core.ErrBadFormat)
	}
	p := &pefPosting{n: n, parts: make([]pefPart, np)}
	for i := range p.parts {
		off := i * partSize
		p.parts[i] = pefPart{
			base:    binary.LittleEndian.Uint32(rest[off:]),
			l:       rest[off+4],
			count:   int(binary.LittleEndian.Uint16(rest[off+5:])),
			lowOff:  binary.LittleEndian.Uint64(rest[off+7:]),
			highOff: binary.LittleEndian.Uint64(rest[off+15:]),
			highEnd: binary.LittleEndian.Uint64(rest[off+23:]),
		}
	}
	rest = rest[np*partSize:]
	p.lowBits, p.low, rest, err = readBitArray(rest)
	if err != nil {
		return nil, err
	}
	p.highBits, p.high, _, err = readBitArray(rest)
	if err != nil {
		return nil, err
	}
	// Bounds-check the directory against the arrays, and the header
	// count against the directory total — VerifyDecompress sizes its
	// buffer from the header count, so a lying header must be caught
	// before it can force an outsized allocation.
	total := 0
	for i, pp := range p.parts {
		if pp.highEnd > p.highBits || pp.highOff > pp.highEnd {
			return nil, fmt.Errorf("%w: PEF partition %d out of range", core.ErrBadFormat, i)
		}
		if uint64(pp.count)*uint64(pp.l)+pp.lowOff > p.lowBits {
			return nil, fmt.Errorf("%w: PEF partition %d low bits out of range", core.ErrBadFormat, i)
		}
		total += pp.count
	}
	if total != n {
		return nil, fmt.Errorf("%w: PEF header declares %d values, partitions hold %d", core.ErrBadFormat, n, total)
	}
	if err := core.VerifyDecompress(p); err != nil {
		return nil, err
	}
	return p, nil
}

func readBitArray(data []byte) (nbits uint64, words []uint64, rest []byte, err error) {
	if len(data) < 12 {
		return 0, nil, nil, core.ErrBadFormat
	}
	nbits = binary.LittleEndian.Uint64(data)
	nw := int(binary.LittleEndian.Uint32(data[8:]))
	data = data[12:]
	if len(data) < 8*nw {
		return 0, nil, nil, fmt.Errorf("%w: truncated bit array", core.ErrBadFormat)
	}
	if nbits > uint64(nw)*64 {
		return 0, nil, nil, fmt.Errorf("%w: bit length overruns words", core.ErrBadFormat)
	}
	words = make([]uint64, nw)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(data[8*i:])
	}
	return nbits, words, data[8*nw:], nil
}
