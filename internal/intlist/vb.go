package intlist

import "repro/internal/core"

// NewVB returns the VB codec (Variable Byte, §3.1) in the standard
// skip-pointered frame. VB encodes each d-gap in one or more bytes using
// the paper's layout: big-endian 7-bit digits with the most significant
// bit of a byte set when more bytes follow. The paper's example encodes
// 16385 as 10000001 10000000 00000001.
func NewVB() core.Codec { return NewBlocked(VBBlock()) }

// VBBlock exposes the bare block codec (used by the Figure 7 ablation).
func VBBlock() BlockCodec { return vbBlock{} }

type vbBlock struct{}

func (vbBlock) Name() string { return "VB" }

// PutVB appends the VB encoding of v (exported for reuse by the side
// arrays of NewPforDelta and friends).
func PutVB(dst []byte, v uint32) []byte {
	switch {
	case v < 1<<7:
		return append(dst, byte(v))
	case v < 1<<14:
		return append(dst, byte(v>>7)|0x80, byte(v&0x7f))
	case v < 1<<21:
		return append(dst, byte(v>>14)|0x80, byte(v>>7)|0x80, byte(v&0x7f))
	case v < 1<<28:
		return append(dst, byte(v>>21)|0x80, byte(v>>14)|0x80, byte(v>>7)|0x80, byte(v&0x7f))
	default:
		return append(dst, byte(v>>28)|0x80, byte(v>>21)|0x80, byte(v>>14)|0x80, byte(v>>7)|0x80, byte(v&0x7f))
	}
}

// GetVB decodes a VB value at src[i], returning the value and the next
// offset.
func GetVB(src []byte, i int) (uint32, int) {
	var v uint32
	for {
		b := src[i]
		i++
		v = v<<7 | uint32(b&0x7f)
		if b&0x80 == 0 {
			return v, i
		}
	}
}

func (vbBlock) EncodeBlock(dst []byte, block []uint32) []byte {
	prev := block[0]
	for _, v := range block[1:] {
		dst = PutVB(dst, v-prev)
		prev = v
	}
	return dst
}

func (vbBlock) DecodeBlock(src []byte, out []uint32) int {
	prev := out[0]
	i := 0
	for k := 1; k < len(out); k++ {
		var g uint32
		g, i = GetVB(src, i)
		prev += g
		out[k] = prev
	}
	return i
}
