// Package intlist implements the inverted-list compression methods
// compared in the paper (§3): VB, GroupVB, Simple9/16/8b, the PforDelta
// family, PEF, and the SIMD-layout codecs, plus the uncompressed list
// baseline.
//
// Except for PEF and the raw list, codecs plug into a shared block frame
// (§5): lists are cut into blocks of 128 elements; each block gets a
// skip pointer holding a 32-bit offset and the block's 32-bit first
// value, enabling SvS intersection to decompress only the blocks that
// may contain a probe (§B, Appendix B).
package intlist

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// BlockSize is the number of elements per block; 128 follows the paper
// (§3 overview, footnote 5).
const BlockSize = 128

// BlockCodec encodes a single block of absolute, strictly increasing
// values. The block's first value travels in the skip pointer, so
// implementations encode only the remaining len(block)-1 values
// (typically as d-gaps).
type BlockCodec interface {
	Name() string
	// EncodeBlock appends the encoding of block (1..BlockSize values) to
	// dst and returns the extended slice.
	EncodeBlock(dst []byte, block []uint32) []byte
	// DecodeBlock fills out[1:] given out[0] = first value of the block,
	// returning the number of bytes consumed from src.
	DecodeBlock(src []byte, out []uint32) int
}

// Blocked adapts a BlockCodec into a full list codec with skip pointers.
type Blocked struct {
	BC BlockCodec
	// NoSkips disables the skip-pointer array: its space is not counted
	// and SeekGEQ degrades to sequential scanning. Used by the Figure 7
	// ablation.
	NoSkips bool
	// Size overrides the elements-per-block count (0 means BlockSize).
	// Values above BlockSize are rejected: the codecs' scratch buffers
	// are sized to the paper's 128. Used by the block-size ablation.
	Size int
}

// NewBlocked wraps bc in the standard skip-pointered block frame.
func NewBlocked(bc BlockCodec) core.Codec { return Blocked{BC: bc} }

// NewBlockedNoSkips wraps bc without skip pointers (Figure 7 baseline).
func NewBlockedNoSkips(bc BlockCodec) core.Codec { return Blocked{BC: bc, NoSkips: true} }

// NewBlockedSize wraps bc with a custom block size (the ablation on the
// paper's footnote-5 choice of 128).
func NewBlockedSize(bc BlockCodec, size int) core.Codec { return Blocked{BC: bc, Size: size} }

// Name reports the inner codec's table name ("-noskip" suffixed for
// the Figure 7 ablation variant).
func (b Blocked) Name() string {
	if b.NoSkips {
		return b.BC.Name() + "-noskip"
	}
	return b.BC.Name()
}

func (Blocked) Kind() core.Kind { return core.KindList }

// GapLimited is implemented by block codecs whose format caps the d-gap
// magnitude (the 28-bit data field of Simple9/Simple16). Blocked.Compress
// rejects inputs beyond the limit with a descriptive error.
type GapLimited interface {
	MaxGap() uint32
}

// Compress cuts values into blocks, encodes each with the inner codec,
// and attaches skip pointers.
func (b Blocked) Compress(values []uint32) (core.Posting, error) {
	if err := core.ValidateSorted(values); err != nil {
		return nil, err
	}
	bs := b.Size
	if bs == 0 {
		bs = BlockSize
	}
	if bs < 2 || bs > BlockSize {
		return nil, fmt.Errorf("intlist: block size %d out of range [2, %d]", bs, BlockSize)
	}
	if gl, ok := b.BC.(GapLimited); ok {
		limit := gl.MaxGap()
		for i := 1; i < len(values); i++ {
			// First values of blocks travel in skip pointers, but
			// checking every gap keeps the rule simple and safe.
			if i%BlockSize != 0 && values[i]-values[i-1] > limit {
				return nil, fmt.Errorf("intlist: %s cannot encode gap %d (limit %d)",
					b.BC.Name(), values[i]-values[i-1], limit)
			}
		}
	}
	p := &listPosting{bc: b.BC, n: len(values), noSkips: b.NoSkips, bs: bs}
	for i := 0; i < len(values); i += bs {
		j := i + bs
		if j > len(values) {
			j = len(values)
		}
		block := values[i:j]
		p.skips = append(p.skips, skipEntry{offset: uint32(len(p.data)), first: block[0]})
		p.data = b.BC.EncodeBlock(p.data, block)
	}
	return p, nil
}

type skipEntry struct {
	offset uint32 // byte offset of the block payload in data
	first  uint32 // first value of the block
}

type listPosting struct {
	bc      BlockCodec
	data    []byte
	skips   []skipEntry
	n       int
	bs      int // elements per block
	noSkips bool
}

func (p *listPosting) Len() int { return p.n }

// SizeBytes counts the payload plus 8 bytes per skip pointer (32-bit
// offset + 32-bit start value, §5).
func (p *listPosting) SizeBytes() int {
	if p.noSkips {
		return len(p.data)
	}
	return len(p.data) + 8*len(p.skips)
}

// blockLen reports the number of values in block b.
func (p *listPosting) blockLen(b int) int {
	if b == len(p.skips)-1 {
		if r := p.n % p.bs; r != 0 {
			return r
		}
	}
	return p.bs
}

// decodeBlock fills buf with block b's values and returns buf[:len].
func (p *listPosting) decodeBlock(b int, buf []uint32) []uint32 {
	n := p.blockLen(b)
	out := buf[:n]
	out[0] = p.skips[b].first
	p.bc.DecodeBlock(p.data[p.skips[b].offset:], out)
	return out
}

// blockSource abstracts the block-frame storage so the same iterator
// serves in-memory postings and externally stored ones (internal/iosim).
type blockSource interface {
	numBlocks() int
	blockFirst(b int) uint32
	decodeBlock(b int, buf []uint32) []uint32
	noSkipMode() bool
}

func (p *listPosting) numBlocks() int          { return len(p.skips) }
func (p *listPosting) blockFirst(b int) uint32 { return p.skips[b].first }
func (p *listPosting) noSkipMode() bool        { return p.noSkips }

// BlockSpan implements core.BlockDecoder (values per full block).
func (p *listPosting) BlockSpan() int { return p.bs }

// NumBlocks implements core.BlockDecoder.
func (p *listPosting) NumBlocks() int { return len(p.skips) }

// BlockFirst implements core.BlockDecoder.
func (p *listPosting) BlockFirst(b int) uint32 { return p.skips[b].first }

// DecodeBlock implements core.BlockDecoder: ranked-retrieval cursors
// use it to materialize only the blocks that survive block-max pruning.
func (p *listPosting) DecodeBlock(b int, buf []uint32) []uint32 {
	return p.decodeBlock(b, buf)
}

func (p *listPosting) Decompress() []uint32 {
	return p.DecompressAppend(make([]uint32, 0, p.n))
}

// DecompressAppend implements core.DecompressAppender: blocks decode
// directly into positioned sub-slices of the grown destination.
func (p *listPosting) DecompressAppend(dst []uint32) []uint32 {
	base := len(dst)
	dst = core.GrowLen(dst, p.n)
	for b := range p.skips {
		lo := base + b*p.bs
		p.decodeBlock(b, dst[lo:lo+p.blockLen(b)])
	}
	return dst
}

// Iterator returns a skipping iterator (core.Seeker).
func (p *listPosting) Iterator() core.Iterator {
	return &listIterator{p: p, block: -1}
}

type listIterator struct {
	p     blockSource
	buf   [BlockSize]uint32
	cur   []uint32
	block int // decoded block index, -1 before start
	pos   int
}

func (it *listIterator) loadBlock(b int) {
	it.cur = it.p.decodeBlock(b, it.buf[:])
	it.block = b
	it.pos = 0
}

func (it *listIterator) Next() (uint32, bool) {
	for {
		if it.block >= 0 && it.pos < len(it.cur) {
			v := it.cur[it.pos]
			it.pos++
			return v, true
		}
		nb := it.block + 1
		if nb >= it.p.numBlocks() {
			return 0, false
		}
		it.loadBlock(nb)
	}
}

// SeekGEQ advances to the first value >= target. With skip pointers it
// binary-searches the skip array and decodes only the candidate block;
// without them it decodes blocks sequentially until the target's block
// is reached (Figure 7's "no skip pointers" configuration).
func (it *listIterator) SeekGEQ(target uint32) (uint32, bool) {
	p := it.p
	nb := p.numBlocks()
	if nb == 0 {
		return 0, false
	}
	// Never move backward: if the last yielded value already reached
	// the target, stay on it (SvS probes with increasing targets).
	if it.block >= 0 && it.pos > 0 && it.cur[it.pos-1] >= target {
		return it.cur[it.pos-1], true
	}
	if p.noSkipMode() {
		if it.block < 0 {
			it.loadBlock(0)
		}
		for it.cur[len(it.cur)-1] < target {
			if it.block+1 >= nb {
				return 0, false
			}
			it.loadBlock(it.block + 1)
		}
	} else {
		start := it.block
		if start < 0 {
			start = 0
		}
		// Gallop over the skip array from the current block instead of
		// binary-searching all remaining blocks: SvS probes arrive in
		// increasing order and usually land a few blocks ahead, so
		// doubling probes cost O(log jump) per seek — O(1) for
		// sequential locality — while a distant jump still degrades
		// gracefully to the full binary search.
		f := start // first block in [start, nb) whose first value > target
		if p.blockFirst(start) <= target {
			bound := 1
			for start+bound < nb && p.blockFirst(start+bound) <= target {
				bound <<= 1
			}
			// blockFirst(start+bound/2) <= target; the answer lies in
			// (start+bound/2, start+bound].
			i, j := start+bound/2+1, min(start+bound+1, nb)
			for i < j {
				m := int(uint(i+j) >> 1)
				if p.blockFirst(m) <= target {
					i = m + 1
				} else {
					j = m
				}
			}
			f = i
		}
		// Last block whose first value <= target (never before start).
		b := f - 1
		if b < start {
			b = start
		}
		if b != it.block {
			it.loadBlock(b)
		}
		if it.cur[len(it.cur)-1] < target {
			// The answer, if any, is the first element of the next block:
			// its skip first value is > target by construction.
			if b+1 >= nb {
				return 0, false
			}
			it.loadBlock(b + 1)
		}
	}
	i := sort.Search(len(it.cur), func(i int) bool { return it.cur[i] >= target })
	if i == len(it.cur) {
		return 0, false // unreachable after the block checks above
	}
	it.pos = i + 1
	return it.cur[i], true
}
