package intlist

import (
	"repro/internal/core"
	"repro/internal/kernels"
)

// The four SIMD-layout codecs (§3.10–3.11). All use the vertical 4-lane
// 128-value packing of vpack.go inside the standard block frame:
//
//   - SIMDBP128: per-block bit width over d-gaps, pure packing.
//   - SIMDBP128*: not d-gap based (§3 overview) — packs offsets from the
//     block's first value, so decoding needs no prefix sum and in-block
//     probes touch single slots. Fastest decompression and union.
//   - SIMDPforDelta: PforDelta's 90% width rule over d-gaps with
//     exceptions patched from VB side arrays.
//   - SIMDPforDelta*: exception-free width over d-gaps — least space of
//     the paper's recommended trio, at the cost of prefix summing.

// NewSIMDBP128 returns SIMDBP128 in the standard frame.
func NewSIMDBP128() core.Codec { return NewBlocked(simdBP128Block{}) }

type simdBP128Block struct{}

func (simdBP128Block) Name() string { return "SIMDBP128" }

func (simdBP128Block) EncodeBlock(dst []byte, block []uint32) []byte {
	var in [128]uint32
	gaps := blockGaps(block, &in)
	b := maxBits(gaps)
	clearTail(&in, len(gaps))
	// 4-byte header keeps the packed payload 32-bit aligned the way the
	// original's 16-byte bucket metadata does (amortized per block).
	dst = append(dst, byte(b), 0, 0, 0)
	return vpack128(dst, &in, b)
}

func (simdBP128Block) DecodeBlock(src []byte, out []uint32) int {
	if len(out) <= 1 {
		return 0
	}
	b := uint(src[0])
	if len(out) == BlockSize {
		// Full block: fused unpack + prefix-sum, one pass, no scratch.
		return 4 + kernels.VUnpackDelta(src[4:], (*[BlockSize - 1]uint32)(out[1:]), out[0], b)
	}
	var dec [128]uint32
	used := 4 + vunpack128(src[4:], &dec, b)
	prev := out[0]
	for k := 1; k < len(out); k++ {
		prev += dec[k-1]
		out[k] = prev
	}
	return used
}

// NewSIMDBP128Star returns SIMDBP128* in the standard frame.
func NewSIMDBP128Star() core.Codec { return NewBlocked(simdBP128StarBlock{}) }

type simdBP128StarBlock struct{}

func (simdBP128StarBlock) Name() string { return "SIMDBP128*" }

func (simdBP128StarBlock) EncodeBlock(dst []byte, block []uint32) []byte {
	var in [128]uint32
	first := block[0]
	for i := 1; i < len(block); i++ {
		in[i-1] = block[i] - first
	}
	b := maxBits(in[:len(block)-1])
	clearTail(&in, len(block)-1)
	dst = append(dst, byte(b))
	return vpack128(dst, &in, b)
}

func (simdBP128StarBlock) DecodeBlock(src []byte, out []uint32) int {
	if len(out) <= 1 {
		return 0
	}
	b := uint(src[0])
	if len(out) == BlockSize {
		// Full block: fused unpack + base add (offsets are absolute).
		return 1 + kernels.VUnpackBase(src[1:], (*[BlockSize - 1]uint32)(out[1:]), out[0], b)
	}
	var dec [128]uint32
	used := 1 + vunpack128(src[1:], &dec, b)
	first := out[0]
	for k := 1; k < len(out); k++ {
		out[k] = first + dec[k-1] // no prefix sum: offsets are absolute
	}
	return used
}

// NewSIMDPforDelta returns SIMDPforDelta in the standard frame.
func NewSIMDPforDelta() core.Codec { return NewBlocked(SIMDPforDeltaBlock()) }

// SIMDPforDeltaBlock exposes the bare block codec (used by the Figure 7
// ablation).
func SIMDPforDeltaBlock() BlockCodec { return simdPFDBlock{} }

type simdPFDBlock struct{}

func (simdPFDBlock) Name() string { return "SIMDPforDelta" }

func (simdPFDBlock) EncodeBlock(dst []byte, block []uint32) []byte {
	var in [128]uint32
	gaps := blockGaps(block, &in)
	b := pfdChooseB(gaps)
	if b > 32 {
		b = 32
	}
	var excPos []int
	for i, g := range gaps {
		if b < 32 && uint64(g) >= 1<<b {
			excPos = append(excPos, i)
		}
	}
	clearTail(&in, len(gaps))
	dst = append(dst, byte(b), byte(len(excPos)))
	// Slots hold the low b bits of every gap in the vertical layout.
	var slots [128]uint32
	mask := uint32(1)<<b - 1
	if b == 32 {
		mask = ^uint32(0)
	}
	for i := range slots {
		slots[i] = in[i] & mask
	}
	dst = vpack128(dst, &slots, b)
	prev := 0
	for _, pos := range excPos {
		dst = PutVB(dst, uint32(pos-prev))
		prev = pos
	}
	for _, pos := range excPos {
		dst = PutVB(dst, gaps[pos]>>b)
	}
	return dst
}

func (simdPFDBlock) DecodeBlock(src []byte, out []uint32) int {
	if len(out) <= 1 {
		return 0
	}
	b := uint(src[0])
	excCount := int(src[1])
	if excCount == 0 && len(out) == BlockSize {
		// Exception-free full block decodes exactly like SIMDPforDelta*.
		return 2 + kernels.VUnpackDelta(src[2:], (*[BlockSize - 1]uint32)(out[1:]), out[0], b)
	}
	var dec [128]uint32
	used := 2 + vunpack128(src[2:], &dec, b)
	var positions [BlockSize]int
	pos := 0
	for j := 0; j < excCount; j++ {
		var d uint32
		d, used = GetVB(src, used)
		pos += int(d)
		positions[j] = pos
	}
	for j := 0; j < excCount; j++ {
		var high uint32
		high, used = GetVB(src, used)
		dec[positions[j]] |= high << b
	}
	prev := out[0]
	for k := 1; k < len(out); k++ {
		prev += dec[k-1]
		out[k] = prev
	}
	return used
}

// NewSIMDPforDeltaStar returns SIMDPforDelta* in the standard frame.
func NewSIMDPforDeltaStar() core.Codec { return NewBlocked(SIMDPforDeltaStarBlock()) }

// SIMDPforDeltaStarBlock exposes the bare block codec.
func SIMDPforDeltaStarBlock() BlockCodec { return simdPFDStarBlock{} }

type simdPFDStarBlock struct{}

func (simdPFDStarBlock) Name() string { return "SIMDPforDelta*" }

func (simdPFDStarBlock) EncodeBlock(dst []byte, block []uint32) []byte {
	var in [128]uint32
	gaps := blockGaps(block, &in)
	b := maxBits(gaps)
	clearTail(&in, len(gaps))
	dst = append(dst, byte(b))
	return vpack128(dst, &in, b)
}

func (simdPFDStarBlock) DecodeBlock(src []byte, out []uint32) int {
	if len(out) <= 1 {
		return 0
	}
	b := uint(src[0])
	if len(out) == BlockSize {
		// Full block: fused unpack + prefix-sum, one pass, no scratch.
		return 1 + kernels.VUnpackDelta(src[1:], (*[BlockSize - 1]uint32)(out[1:]), out[0], b)
	}
	var dec [128]uint32
	used := 1 + vunpack128(src[1:], &dec, b)
	prev := out[0]
	for k := 1; k < len(out); k++ {
		prev += dec[k-1]
		out[k] = prev
	}
	return used
}

// maxBits returns the widest bit count needed by vals (0 for empty).
func maxBits(vals []uint32) uint {
	var b uint
	for _, v := range vals {
		if w := bitsFor(v); w > b {
			b = w
		}
	}
	return b
}

// clearTail zeroes the padding slots beyond n.
func clearTail(in *[128]uint32, n int) {
	for i := n; i < 128; i++ {
		in[i] = 0
	}
}
