package intlist

import (
	"sort"

	"repro/internal/core"
)

// RawList is the uncompressed inverted list baseline ("List" in the
// paper's legends): 32 bits per value. Its "decompression" cost is a
// memory copy, matching the paper's measurement methodology (§5).
type RawList struct{}

// NewRawList returns the uncompressed-list codec.
func NewRawList() core.Codec { return RawList{} }

func (RawList) Name() string    { return "List" }
func (RawList) Kind() core.Kind { return core.KindList }

func (RawList) Compress(values []uint32) (core.Posting, error) {
	if err := core.ValidateSorted(values); err != nil {
		return nil, err
	}
	p := &rawPosting{values: make([]uint32, len(values))}
	copy(p.values, values)
	return p, nil
}

type rawPosting struct {
	values []uint32
}

func (p *rawPosting) Len() int       { return len(p.values) }
func (p *rawPosting) SizeBytes() int { return 4 * len(p.values) }

func (p *rawPosting) Decompress() []uint32 {
	out := make([]uint32, len(p.values))
	copy(out, p.values)
	return out
}

// DecompressAppend implements core.DecompressAppender.
func (p *rawPosting) DecompressAppend(dst []uint32) []uint32 {
	return append(dst, p.values...)
}

func (p *rawPosting) Iterator() core.Iterator { return &rawIterator{values: p.values} }

type rawIterator struct {
	values []uint32
	pos    int
}

func (it *rawIterator) Next() (uint32, bool) {
	if it.pos >= len(it.values) {
		return 0, false
	}
	v := it.values[it.pos]
	it.pos++
	return v, true
}

func (it *rawIterator) SeekGEQ(target uint32) (uint32, bool) {
	if it.pos > 0 && it.values[it.pos-1] >= target {
		return it.values[it.pos-1], true
	}
	rest := it.values[it.pos:]
	i := sort.Search(len(rest), func(i int) bool { return rest[i] >= target })
	if i == len(rest) {
		it.pos = len(it.values)
		return 0, false
	}
	it.pos += i + 1
	return rest[i], true
}
