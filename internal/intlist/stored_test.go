package intlist

import (
	"testing"

	"repro/internal/core"
)

// countingFetcher records every fetch (offset, length) for boundary
// assertions.
type countingFetcher struct {
	data    []byte
	fetches []int // offsets, in call order
}

func (f *countingFetcher) Fetch(offset, length int) []byte {
	f.fetches = append(f.fetches, offset)
	return f.data[offset : offset+length]
}

func storedFixture(t *testing.T, vals []uint32, noSkips bool) (core.Posting, *countingFetcher) {
	t.Helper()
	var cf *countingFetcher
	b := Blocked{BC: VBBlock(), NoSkips: noSkips}
	p, err := b.CompressStored(vals, func(payload []byte) Fetcher {
		cf = &countingFetcher{data: payload}
		return cf
	})
	if err != nil {
		t.Fatal(err)
	}
	return p, cf
}

func TestStoredPostingRoundTrip(t *testing.T) {
	vals := growingGaps(1000)
	p, cf := storedFixture(t, vals, false)
	if p.Len() != len(vals) {
		t.Fatalf("Len = %d", p.Len())
	}
	if !equalU32(p.Decompress(), vals) {
		t.Fatal("round trip failed")
	}
	wantBlocks := (len(vals) + BlockSize - 1) / BlockSize
	if len(cf.fetches) != wantBlocks {
		t.Fatalf("full decompress fetched %d blocks, want %d", len(cf.fetches), wantBlocks)
	}
}

// TestStoredSeekFetchesOneBlock: a single skip-pointered probe fetches
// exactly the candidate block.
func TestStoredSeekFetchesOneBlock(t *testing.T) {
	vals := growingGaps(2000)
	p, cf := storedFixture(t, vals, false)
	it := p.(core.Seeker).Iterator()
	target := vals[700]
	got, ok := it.SeekGEQ(target)
	if !ok || got != target {
		t.Fatalf("SeekGEQ = %d, %v", got, ok)
	}
	if len(cf.fetches) != 1 {
		t.Fatalf("probe fetched %d blocks, want 1", len(cf.fetches))
	}
	// Re-probing inside the same block costs no new fetch.
	if _, ok := it.SeekGEQ(vals[701]); !ok {
		t.Fatal("second probe failed")
	}
	if len(cf.fetches) != 1 {
		t.Fatalf("in-block re-probe refetched: %d fetches", len(cf.fetches))
	}
}

// TestStoredSeekBlockBoundary: a target that is a block's first value
// (held by the skip pointer, beyond the previous block's last value)
// must land in the right block.
func TestStoredSeekBlockBoundary(t *testing.T) {
	vals := growingGaps(3 * BlockSize)
	p, _ := storedFixture(t, vals, false)
	for _, idx := range []int{0, BlockSize - 1, BlockSize, 2*BlockSize - 1, 2 * BlockSize, 3*BlockSize - 1} {
		it := p.(core.Seeker).Iterator()
		got, ok := it.SeekGEQ(vals[idx])
		if !ok || got != vals[idx] {
			t.Errorf("SeekGEQ(vals[%d]) = %d, %v", idx, got, ok)
		}
	}
	it := p.(core.Seeker).Iterator()
	if _, ok := it.SeekGEQ(vals[len(vals)-1] + 1); ok {
		t.Error("seek past end should fail")
	}
}

// TestStoredNoSkipsScansSequentially: without skips, seeking deep into
// the list fetches every block up to the target.
func TestStoredNoSkipsScansSequentially(t *testing.T) {
	vals := growingGaps(10 * BlockSize)
	p, cf := storedFixture(t, vals, true)
	it := p.(core.Seeker).Iterator()
	target := vals[7*BlockSize+5]
	got, ok := it.SeekGEQ(target)
	if !ok || got != target {
		t.Fatalf("SeekGEQ = %d, %v", got, ok)
	}
	if len(cf.fetches) < 8 {
		t.Fatalf("no-skip seek fetched only %d blocks, want >= 8", len(cf.fetches))
	}
}

// TestStoredSizeMatchesInMemory: stored and in-memory frames report the
// same footprint.
func TestStoredSizeMatchesInMemory(t *testing.T) {
	vals := growingGaps(1500)
	stored, _ := storedFixture(t, vals, false)
	mem, err := NewBlocked(VBBlock()).Compress(vals)
	if err != nil {
		t.Fatal(err)
	}
	if stored.SizeBytes() != mem.SizeBytes() {
		t.Fatalf("stored %d B != in-memory %d B", stored.SizeBytes(), mem.SizeBytes())
	}
}
