package intlist

import (
	"testing"

	"repro/internal/core"
)

// TestBlockSizeVariants: every supported block size round-trips and
// seeks correctly; out-of-range sizes are rejected.
func TestBlockSizeVariants(t *testing.T) {
	vals := growingGaps(1000)
	for _, size := range []int{2, 3, 16, 32, 64, 127, 128} {
		c := NewBlockedSize(VBBlock(), size)
		p, err := c.Compress(vals)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if !equalU32(p.Decompress(), vals) {
			t.Errorf("size %d: round trip failed", size)
		}
		it := p.(core.Seeker).Iterator()
		if v, ok := it.SeekGEQ(vals[500]); !ok || v != vals[500] {
			t.Errorf("size %d: SeekGEQ failed: %d %v", size, v, ok)
		}
	}
	for _, size := range []int{1, -4, 129, 1000} {
		if _, err := NewBlockedSize(VBBlock(), size).Compress(vals); err == nil {
			t.Errorf("size %d: expected rejection", size)
		}
	}
}

// TestBlockSizeSpaceMonotonicity: smaller blocks cost more space (more
// skip pointers and headers) — the footnote-5 tradeoff.
func TestBlockSizeSpaceMonotonicity(t *testing.T) {
	vals := growingGaps(5000)
	prev := -1
	for _, size := range []int{16, 64, 128} {
		p, err := NewBlockedSize(PforDeltaStarBlock(), size).Compress(vals)
		if err != nil {
			t.Fatal(err)
		}
		if prev > 0 && p.SizeBytes() >= prev {
			t.Errorf("size %d: %d bytes should be below the smaller-block %d",
				size, p.SizeBytes(), prev)
		}
		prev = p.SizeBytes()
	}
}

// TestPforThresholdVariants: all thresholds round-trip; 1.0 produces no
// exceptions (same as PforDelta*'s width choice).
func TestPforThresholdVariants(t *testing.T) {
	vals := exceptionHeavy(2000)
	for _, frac := range []float64{0.5, 0.7, 0.9, 0.95, 1.0} {
		p, err := NewPforDeltaThreshold(frac).Compress(vals)
		if err != nil {
			t.Fatalf("frac %.2f: %v", frac, err)
		}
		if !equalU32(p.Decompress(), vals) {
			t.Errorf("frac %.2f: round trip failed", frac)
		}
	}
}

// TestBlockSizeSerializeRoundTrip: non-default block sizes survive
// serialization.
func TestBlockSizeSerializeRoundTrip(t *testing.T) {
	vals := growingGaps(700)
	c := NewBlockedSize(VBBlock(), 32)
	p, err := c.Compress(vals)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := p.(interface{ MarshalBinary() ([]byte, error) }).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	q, err := (Blocked{}).Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !equalU32(q.Decompress(), vals) {
		t.Fatal("round trip through serialization failed")
	}
	if q.(*listPosting).bs != 32 {
		t.Fatalf("block size not preserved: %d", q.(*listPosting).bs)
	}
}
