package intlist

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

// sortedSet generates random strictly-increasing uint32 slices whose
// d-gaps stay below 2^28 (the Simple9/16 design limit) while still
// covering runs, bursts, and wide jumps.
type sortedSet []uint32

// Generate implements quick.Generator.
func (sortedSet) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(size*40 + 1)
	out := make(sortedSet, 0, n)
	v := uint32(r.Intn(1 << 20))
	for len(out) < n {
		out = append(out, v)
		var gap uint32
		switch r.Intn(4) {
		case 0:
			gap = 1 // runs
		case 1:
			gap = 1 + uint32(r.Intn(64))
		case 2:
			gap = 1 + uint32(r.Intn(1<<14))
		default:
			gap = 1 + uint32(r.Intn(1<<24)) // wide jump, still < 2^28
		}
		if v+gap < v { // would wrap around uint32
			break
		}
		v += gap
	}
	return reflect.ValueOf(out)
}

var quickCfg = &quick.Config{MaxCount: 25}

// TestQuickListRoundTrip: Decompress(Compress(x)) == x for every list
// codec.
func TestQuickListRoundTrip(t *testing.T) {
	for _, c := range allListCodecs() {
		c := c
		prop := func(s sortedSet) bool {
			p, err := c.Compress(s)
			if err != nil {
				return false
			}
			return equalU32(p.Decompress(), s)
		}
		if err := quick.Check(prop, quickCfg); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

// TestQuickIteratorMatchesDecompress: walking the iterator yields the
// decompressed sequence.
func TestQuickIteratorMatchesDecompress(t *testing.T) {
	for _, c := range allListCodecs() {
		c := c
		prop := func(s sortedSet) bool {
			p, err := c.Compress(s)
			if err != nil {
				return false
			}
			it := p.(core.Seeker).Iterator()
			for _, want := range s {
				v, ok := it.Next()
				if !ok || v != want {
					return false
				}
			}
			_, ok := it.Next()
			return !ok
		}
		if err := quick.Check(prop, quickCfg); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

// TestQuickSeekGEQConsistent: for any monotone probe sequence, SeekGEQ
// returns exactly the reference lower bound.
func TestQuickSeekGEQConsistent(t *testing.T) {
	for _, c := range allListCodecs() {
		c := c
		prop := func(s sortedSet, probesRaw []uint32) bool {
			if len(s) == 0 {
				return true
			}
			p, err := c.Compress(s)
			if err != nil {
				return false
			}
			probes := append([]uint32(nil), probesRaw...)
			for i := range probes {
				probes[i] %= s[len(s)-1] + 2
			}
			sort.Slice(probes, func(i, j int) bool { return probes[i] < probes[j] })
			it := p.(core.Seeker).Iterator()
			lastRet := uint32(0)
			hasLast := false
			for _, target := range probes {
				got, ok := it.SeekGEQ(target)
				// Iterators never move backward: the effective target is
				// max(target, last returned value).
				eff := target
				if hasLast && lastRet > eff {
					eff = lastRet
				}
				i := sort.Search(len(s), func(i int) bool { return s[i] >= eff })
				if i == len(s) {
					if ok && got < target {
						return false
					}
					continue
				}
				if !ok || got != s[i] {
					return false
				}
				lastRet, hasLast = got, true
			}
			return true
		}
		if err := quick.Check(prop, quickCfg); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

// TestQuickBitmapListDuality: positions of 1s round-trip through both
// families — compress with a list codec, decompress, recompress with a
// bitmap codec, and recover the identical set (the paper's motivating
// equivalence, §1).
func TestQuickBitmapListDuality(t *testing.T) {
	lc := NewSIMDBP128Star()
	prop := func(s sortedSet) bool {
		lp, err := lc.Compress(s)
		if err != nil {
			return false
		}
		return equalU32(lp.Decompress(), s)
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}
