package intlist

import "encoding/binary"

// Vertical 4-lane bit packing — the SIMD-BP128 data layout (§3.10-3.11).
//
// 128 values are viewed as 32 rows of 4 lanes; value i sits at
// (row i/4, lane i%4). Each lane packs its 32 values at b bits into
// exactly b 32-bit words, and the four lanes interleave word-wise, so
// word k of the output is the four lane words of "bit-slice" k — byte
// for byte the layout a 128-bit SIMD register file would process. Go
// (stdlib only) cannot issue SIMD instructions, so the kernels below
// process the same layout with branch-free 64-bit scalar code; see
// DESIGN.md §2 for the substitution rationale.

// vpack128 packs in (128 values, each < 2^b) into 4*b uint32 words
// appended to dst as little-endian bytes.
func vpack128(dst []byte, in *[128]uint32, b uint) []byte {
	if b == 0 {
		return dst
	}
	mask := uint32(1)<<b - 1
	if b == 32 {
		mask = ^uint32(0)
	}
	start := len(dst)
	dst = append(dst, make([]byte, 16*b)...)
	out := dst[start:]
	for lane := 0; lane < 4; lane++ {
		var acc uint64
		var nbits uint
		w := lane
		for row := 0; row < 32; row++ {
			acc |= uint64(in[4*row+lane]&mask) << nbits
			nbits += b
			for nbits >= 32 {
				binary.LittleEndian.PutUint32(out[4*w:], uint32(acc))
				acc >>= 32
				nbits -= 32
				w += 4
			}
		}
	}
	return dst
}

// vunpack128 reverses vpack128, filling out from src (16*b bytes).
func vunpack128(src []byte, out *[128]uint32, b uint) int {
	if b == 0 {
		for i := range out {
			out[i] = 0
		}
		return 0
	}
	mask := uint64(1)<<b - 1
	if b == 32 {
		mask = 0xffffffff
	}
	for lane := 0; lane < 4; lane++ {
		var acc uint64
		var nbits uint
		w := lane
		for row := 0; row < 32; row++ {
			for nbits < b {
				acc |= uint64(binary.LittleEndian.Uint32(src[4*w:])) << nbits
				nbits += 32
				w += 4
			}
			out[4*row+lane] = uint32(acc & mask)
			acc >>= b
			nbits -= b
		}
	}
	return int(16 * b)
}
