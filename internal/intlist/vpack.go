package intlist

import "repro/internal/kernels"

// Vertical 4-lane bit packing — the SIMD-BP128 data layout (§3.10-3.11).
//
// 128 values are viewed as 32 rows of 4 lanes; value i sits at
// (row i/4, lane i%4). Each lane packs its 32 values at b bits into
// exactly b 32-bit words, and the four lanes interleave word-wise, so
// word k of the output is the four lane words of "bit-slice" k — byte
// for byte the layout a 128-bit SIMD register file would process. Go
// (stdlib only) cannot issue SIMD instructions, so internal/kernels
// processes the same layout with generated width-specialized unrolled
// scalar code; see DESIGN.md §2 for the substitution rationale.

// vpack128 packs in (128 values, each < 2^b) into 4*b uint32 words
// appended to dst as little-endian bytes.
func vpack128(dst []byte, in *[128]uint32, b uint) []byte {
	return kernels.VPack128(dst, in, b)
}

// vunpack128 reverses vpack128, filling out from src (16*b bytes). The
// SIMD codecs' full-block decodes bypass this for the fused
// kernels.VUnpackDelta / kernels.VUnpackBase one-pass variants.
func vunpack128(src []byte, out *[128]uint32, b uint) int {
	return kernels.VUnpack(src, out, b)
}
