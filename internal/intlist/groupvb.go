package intlist

import "repro/internal/core"

// NewGroupVB returns the GroupVB codec (Group Varint, §3.2). Four gaps
// are encoded together: one header byte holds four 2-bit byte-length
// tags (length-1), followed by the gaps' bytes little-endian. Factoring
// the flags out of the data bytes removes VB's per-byte branches, which
// is why GroupVB decompresses much faster than VB (§5.1 observation 11).
func NewGroupVB() core.Codec { return NewBlocked(GroupVBBlock()) }

// GroupVBBlock exposes the bare block codec.
func GroupVBBlock() BlockCodec { return groupVBBlock{} }

type groupVBBlock struct{}

func (groupVBBlock) Name() string { return "GroupVB" }

func gvbLen(v uint32) uint32 {
	switch {
	case v < 1<<8:
		return 1
	case v < 1<<16:
		return 2
	case v < 1<<24:
		return 3
	default:
		return 4
	}
}

func (groupVBBlock) EncodeBlock(dst []byte, block []uint32) []byte {
	var gapBuf [BlockSize]uint32
	gaps := gapBuf[:len(block)-1]
	for i := 1; i < len(block); i++ {
		gaps[i-1] = block[i] - block[i-1]
	}
	for i := 0; i < len(gaps); i += 4 {
		j := i + 4
		if j > len(gaps) {
			j = len(gaps)
		}
		group := gaps[i:j]
		var header byte
		for k, g := range group {
			header |= byte(gvbLen(g)-1) << (2 * uint(k))
		}
		dst = append(dst, header)
		for _, g := range group {
			n := gvbLen(g)
			for b := uint32(0); b < n; b++ {
				dst = append(dst, byte(g>>(8*b)))
			}
		}
	}
	return dst
}

func (groupVBBlock) DecodeBlock(src []byte, out []uint32) int {
	prev := out[0]
	i := 0
	k := 1
	for k < len(out) {
		header := src[i]
		i++
		for s := uint(0); s < 4 && k < len(out); s++ {
			n := int(header>>(2*s)&3) + 1
			var g uint32
			for b := 0; b < n; b++ {
				g |= uint32(src[i]) << (8 * uint(b))
				i++
			}
			prev += g
			out[k] = prev
			k++
		}
	}
	return i
}
