package intlist

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
)

// This file implements the Simple family (§3.6–3.8): word-aligned codecs
// that pack as many gaps as possible into one codeword using a 4-bit
// selector. Simple9 and Simple16 use 32-bit words with 28 data bits;
// Simple8b uses 64-bit words with 60 data bits.

// blockGaps computes the d-gaps of a block into buf.
func blockGaps(block []uint32, buf *[BlockSize]uint32) []uint32 {
	gaps := buf[:len(block)-1]
	for i := 1; i < len(block); i++ {
		gaps[i-1] = block[i] - block[i-1]
	}
	return gaps
}

// simpleCase is one selector: a list of field widths (summing to at most
// the word's data bits). Uniform-width cases list one width per field.
type simpleCase []uint8

// simple9Cases are the paper's nine packings (§3.6).
var simple9Cases = []simpleCase{
	uniformCase(28, 1), uniformCase(14, 2), uniformCase(9, 3),
	uniformCase(7, 4), uniformCase(5, 5), uniformCase(4, 7),
	uniformCase(3, 9), uniformCase(2, 14), uniformCase(1, 28),
}

// simple16Cases extend Simple9 to all 16 selector values, including the
// asymmetric splits the paper highlights (3x6+2x5 and 2x5+3x6, §3.7).
var simple16Cases = []simpleCase{
	uniformCase(28, 1),
	mixedCase(7, 2, 14, 1),
	mixed3Case(7, 1, 7, 2, 7, 1),
	mixedCase(14, 1, 7, 2),
	uniformCase(14, 2),
	mixedCase(1, 4, 8, 3),
	mixed3Case(1, 3, 4, 4, 3, 3),
	uniformCase(7, 4),
	mixedCase(4, 5, 2, 4),
	mixedCase(2, 4, 4, 5),
	mixedCase(3, 6, 2, 5),
	mixedCase(2, 5, 3, 6),
	uniformCase(4, 7),
	mixedCase(1, 10, 2, 9),
	uniformCase(2, 14),
	uniformCase(1, 28),
}

func uniformCase(count int, width uint8) simpleCase {
	c := make(simpleCase, count)
	for i := range c {
		c[i] = width
	}
	return c
}

func mixedCase(n1 int, w1 uint8, n2 int, w2 uint8) simpleCase {
	return append(uniformCase(n1, w1), uniformCase(n2, w2)...)
}

func mixed3Case(n1 int, w1 uint8, n2 int, w2 uint8, n3 int, w3 uint8) simpleCase {
	return append(mixedCase(n1, w1, n2, w2), uniformCase(n3, w3)...)
}

// errGapTooLarge reports a gap that exceeds a 28-bit codec's capacity.
// The paper's codecs share this limit; realistic doc-id gaps stay far
// below it (and block-frame first values never enter the gap stream).
func errGapTooLarge(name string, g uint32) error {
	return fmt.Errorf("intlist: %s cannot encode gap %d (>= 2^28)", name, g)
}

// encodeSimple32 packs gaps into 32-bit codewords using cases, greedily
// choosing the first case whose fields all hold the upcoming gaps.
func encodeSimple32(name string, dst []byte, gaps []uint32, cases []simpleCase) ([]byte, error) {
	i := 0
	for i < len(gaps) {
		sel := -1
		for s, c := range cases {
			ok := true
			for k := 0; k < len(c) && i+k < len(gaps); k++ {
				if gaps[i+k] >= 1<<c[k] {
					ok = false
					break
				}
			}
			if ok {
				sel = s
				break
			}
		}
		if sel < 0 {
			return nil, errGapTooLarge(name, gaps[i])
		}
		c := cases[sel]
		word := uint32(sel) << 28
		shift := uint(0)
		for k := 0; k < len(c) && i < len(gaps); k++ {
			word |= gaps[i] << shift
			shift += uint(c[k])
			i++
		}
		dst = binary.LittleEndian.AppendUint32(dst, word)
	}
	return dst, nil
}

// decodeSimple32 unpacks absolute values into out given out[0].
func decodeSimple32(src []byte, out []uint32, cases []simpleCase) int {
	prev := out[0]
	i := 0
	k := 1
	for k < len(out) {
		word := binary.LittleEndian.Uint32(src[i:])
		i += 4
		c := cases[word>>28]
		shift := uint(0)
		for f := 0; f < len(c) && k < len(out); f++ {
			w := uint(c[f])
			prev += word >> shift & (1<<w - 1)
			out[k] = prev
			shift += w
			k++
		}
	}
	return i
}

// NewSimple9 returns the Simple9 codec (§3.6) in the standard frame.
func NewSimple9() core.Codec { return NewBlocked(simpleBlock{name: "Simple9", cases: simple9Cases}) }

// NewSimple16 returns the Simple16 codec (§3.7) in the standard frame.
func NewSimple16() core.Codec {
	return NewBlocked(simpleBlock{name: "Simple16", cases: simple16Cases})
}

type simpleBlock struct {
	name  string
	cases []simpleCase
}

func (b simpleBlock) Name() string { return b.name }

// MaxGap reports the 28-bit data limit; Blocked.Compress rejects inputs
// with larger d-gaps up front.
func (b simpleBlock) MaxGap() uint32 { return 1<<28 - 1 }

func (b simpleBlock) EncodeBlock(dst []byte, block []uint32) []byte {
	var buf [BlockSize]uint32
	gaps := blockGaps(block, &buf)
	out, err := encodeSimple32(b.name, dst, gaps, b.cases)
	if err != nil {
		// Unreachable: Blocked.Compress enforces MaxGap.
		panic(err)
	}
	return out
}

func (b simpleBlock) DecodeBlock(src []byte, out []uint32) int {
	return decodeSimple32(src, out, b.cases)
}

// simple8bSelectors maps each selector to (count, width). Selectors 0
// and 1 encode runs of 240/120 gaps equal to one — consecutive values —
// with no data bits (§3.8).
var simple8bSelectors = [16]struct {
	count int
	width uint
}{
	{240, 0}, {120, 0}, {60, 1}, {30, 2}, {20, 3}, {15, 4}, {12, 5},
	{10, 6}, {8, 7}, {7, 8}, {6, 10}, {5, 12}, {4, 15}, {3, 20},
	{2, 30}, {1, 60},
}

// NewSimple8b returns the Simple8b codec (§3.8) in the standard frame.
func NewSimple8b() core.Codec { return NewBlocked(Simple8bBlock()) }

// Simple8bBlock exposes the bare block codec.
func Simple8bBlock() BlockCodec { return simple8bBlock{} }

type simple8bBlock struct{}

func (simple8bBlock) Name() string { return "Simple8b" }

func (simple8bBlock) EncodeBlock(dst []byte, block []uint32) []byte {
	var buf [BlockSize]uint32
	gaps := blockGaps(block, &buf)
	i := 0
	for i < len(gaps) {
		sel := -1
		for s, sc := range simple8bSelectors {
			ok := true
			for k := 0; k < sc.count && i+k < len(gaps); k++ {
				g := uint64(gaps[i+k])
				if sc.width == 0 {
					if g != 1 {
						ok = false
						break
					}
				} else if g >= 1<<sc.width {
					ok = false
					break
				}
			}
			if ok {
				sel = s
				break
			}
		}
		sc := simple8bSelectors[sel]
		word := uint64(sel) << 60
		shift := uint(0)
		for k := 0; k < sc.count && i < len(gaps); k++ {
			if sc.width > 0 {
				word |= uint64(gaps[i]) << shift
				shift += sc.width
			}
			i++
		}
		dst = binary.LittleEndian.AppendUint64(dst, word)
	}
	return dst
}

func (simple8bBlock) DecodeBlock(src []byte, out []uint32) int {
	prev := out[0]
	i := 0
	k := 1
	for k < len(out) {
		word := binary.LittleEndian.Uint64(src[i:])
		i += 8
		sc := simple8bSelectors[word>>60]
		if sc.width == 0 {
			for f := 0; f < sc.count && k < len(out); f++ {
				prev++
				out[k] = prev
				k++
			}
			continue
		}
		shift := uint(0)
		mask := uint64(1)<<sc.width - 1
		for f := 0; f < sc.count && k < len(out); f++ {
			prev += uint32(word >> shift & mask)
			out[k] = prev
			shift += sc.width
			k++
		}
	}
	return i
}
