package intlist

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

// Codec-level decode benchmarks for the families rewired onto
// internal/kernels. These measure end-to-end DecodeBlock throughput
// (headers, skip frame, fused kernels) rather than the bare kernels —
// the number the README's before/after table and the CI bench smoke
// track. SetBytes reports decoded-output bytes, so ns/op converts
// directly to decode throughput.
func kernelBenchCodecs() []core.Codec {
	return []core.Codec{
		NewSIMDBP128(),
		NewSIMDBP128Star(),
		NewSIMDPforDelta(),
		NewSIMDPforDeltaStar(),
		NewPforDeltaCodec(),
		NewPforDeltaStar(),
	}
}

// kernelBenchList builds a sorted list whose gap distribution exercises
// mid-range bit widths (the common case on the paper's workloads).
func kernelBenchList(n int, seed int64) []uint32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]uint32, n)
	v := uint32(0)
	for i := range out {
		v += 1 + uint32(rng.Intn(200))
		out[i] = v
	}
	return out
}

func BenchmarkDecode(b *testing.B) {
	list := kernelBenchList(1<<16, 1)
	for _, c := range kernelBenchCodecs() {
		p, err := c.Compress(list)
		if err != nil {
			b.Fatalf("%s: %v", c.Name(), err)
		}
		want := p.Len()
		buf := make([]uint32, 0, want)
		b.Run(c.Name(), func(b *testing.B) {
			b.SetBytes(int64(4 * want))
			for i := 0; i < b.N; i++ {
				buf = core.DecompressAppend(p, buf[:0])
			}
			if len(buf) != want {
				b.Fatalf("decoded %d of %d", len(buf), want)
			}
		})
	}
}
