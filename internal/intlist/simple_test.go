package intlist

import (
	"encoding/binary"
	"testing"
)

// TestSimple9CaseTable validates §3.6's nine packings: field widths
// times counts never exceed 28 data bits, and the counts are exactly
// the paper's 28/14/9/7/5/4/3/2/1.
func TestSimple9CaseTable(t *testing.T) {
	wantCounts := []int{28, 14, 9, 7, 5, 4, 3, 2, 1}
	if len(simple9Cases) != 9 {
		t.Fatalf("%d cases, want 9", len(simple9Cases))
	}
	for i, c := range simple9Cases {
		if len(c) != wantCounts[i] {
			t.Errorf("case %d: %d fields, want %d", i, len(c), wantCounts[i])
		}
		bits := 0
		for _, w := range c {
			bits += int(w)
		}
		if bits > 28 {
			t.Errorf("case %d: %d bits > 28", i, bits)
		}
	}
}

// TestSimple16CaseTable validates §3.7: exactly 16 cases, all within 28
// bits, including the asymmetric 3x6+2x5 and 2x5+3x6 splits the paper
// highlights, and more total field coverage than Simple9 (the wasted
// bits Simple16 reclaims).
func TestSimple16CaseTable(t *testing.T) {
	if len(simple16Cases) != 16 {
		t.Fatalf("%d cases, want 16", len(simple16Cases))
	}
	for i, c := range simple16Cases {
		bits := 0
		for _, w := range c {
			bits += int(w)
		}
		if bits > 28 {
			t.Errorf("case %d: %d bits > 28", i, bits)
		}
		if len(c) == 0 {
			t.Errorf("case %d: empty", i)
		}
	}
	has := func(widths ...uint8) bool {
		for _, c := range simple16Cases {
			if len(c) != len(widths) {
				continue
			}
			match := true
			for k := range c {
				if c[k] != widths[k] {
					match = false
					break
				}
			}
			if match {
				return true
			}
		}
		return false
	}
	if !has(6, 6, 6, 5, 5) || !has(5, 5, 6, 6, 6) {
		t.Error("missing the paper's 3x6+2x5 / 2x5+3x6 replacement cases")
	}
}

// TestSimple9SelectorInWord: the selector occupies the top 4 bits and
// selects the advertised packing.
func TestSimple9SelectorInWord(t *testing.T) {
	// 27 gaps of 1 after the block-leading value: the greedy encoder
	// must pick the 28x1-bit case (selector 0) and fit them in one word.
	vals := seqList(0, 29)
	p, err := NewSimple9().Compress(vals)
	if err != nil {
		t.Fatal(err)
	}
	data := p.(*listPosting).data
	if len(data) != 4 {
		t.Fatalf("28 unit gaps should pack into one word, got %d bytes", len(data))
	}
	word := binary.LittleEndian.Uint32(data)
	if word>>28 != 0 {
		t.Errorf("selector = %d, want 0 (28x1-bit)", word>>28)
	}
}

// TestSimple8bRunSelectors: long runs of gap-1 use the 240/120-value
// zero-bit selectors (§3.8's 64-bit advantage).
func TestSimple8bRunSelectors(t *testing.T) {
	vals := seqList(100, 128) // one block, 127 consecutive gaps of 1
	p, err := NewSimple8b().Compress(vals)
	if err != nil {
		t.Fatal(err)
	}
	data := p.(*listPosting).data
	if len(data) != 8 {
		t.Fatalf("127 unit gaps should pack into one 64-bit word, got %d bytes", len(data))
	}
	sel := binary.LittleEndian.Uint64(data) >> 60
	if sel != 0 && sel != 1 {
		t.Errorf("selector = %d, want 0 or 1 (run-of-ones)", sel)
	}
}

// TestSimple8bTwelveFiveBit: the paper's example — twelve 5-bit
// integers in one 64-bit codeword (vs three 32-bit words for Simple9).
func TestSimple8bTwelveFiveBit(t *testing.T) {
	vals := make([]uint32, 13)
	v := uint32(0)
	for i := range vals {
		vals[i] = v
		v += 29 // 5-bit gaps
	}
	p8, _ := NewSimple8b().Compress(vals)
	p9, _ := NewSimple9().Compress(vals)
	d8 := p8.(*listPosting).data
	d9 := p9.(*listPosting).data
	if len(d8) != 8 {
		t.Errorf("Simple8b: %d bytes, want one 8-byte word", len(d8))
	}
	if len(d9) != 12 {
		t.Errorf("Simple9: %d bytes, want three 4-byte words", len(d9))
	}
}

// TestGroupVBHeaderLayout: four gaps share one header byte of 2-bit
// length tags (§3.2).
func TestGroupVBHeaderLayout(t *testing.T) {
	// Gaps: 1 (1 byte), 300 (2 bytes), 70000 (3 bytes), 2^25 (4 bytes).
	vals := []uint32{10, 11, 311, 70311, 70311 + 1<<25}
	p, err := NewGroupVB().Compress(vals)
	if err != nil {
		t.Fatal(err)
	}
	data := p.(*listPosting).data
	wantLen := 1 + 1 + 2 + 3 + 4
	if len(data) != wantLen {
		t.Fatalf("encoded %d bytes, want %d", len(data), wantLen)
	}
	header := data[0]
	wantTags := []byte{0, 1, 2, 3}
	for k, want := range wantTags {
		if got := header >> (2 * uint(k)) & 3; got != want {
			t.Errorf("tag %d = %d, want %d", k, got, want)
		}
	}
}
