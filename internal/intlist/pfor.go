package intlist

import (
	"repro/internal/core"
	"repro/internal/kernels"
)

// This file implements the PforDelta family (§3.3–3.5):
//
//   - PforDelta: b bits cover >= 90% of the block's gaps; outliers become
//     32-bit exceptions threaded through their slots as a linked list,
//     with forced exceptions when two exceptions lie more than 2^b-1
//     slots apart.
//   - PforDelta*: b covers 100% of the gaps, so no exception handling at
//     all — the paper's ultra-fast variant.
//   - NewPforDelta: exceptions keep their low b bits in the slot; the
//     overflow bits and positions move to two VB-compressed side arrays.
//   - OptPforDelta: NewPforDelta layout with b chosen per block by exact
//     size minimization rather than a fixed exception threshold.

// packSlots appends n fixed-width b-bit fields to dst (LSB-first).
func packSlots(dst []byte, vals []uint32, b uint) []byte {
	return kernels.Pack(dst, vals, b)
}

// unpackSlots reads len(out) b-bit fields from src, returning bytes
// used. Decoding runs through the width-specialized unrolled kernels
// (internal/kernels); kernels.UnpackRef is the old generic loop.
func unpackSlots(src []byte, out []uint32, b uint) int {
	return kernels.Unpack(src, out, b)
}

// bitsFor returns the minimal width that can hold v (at least 1).
func bitsFor(v uint32) uint {
	b := uint(1)
	for v >= 1<<b && b < 32 {
		b++
	}
	return b
}

// pfdChooseB returns the smallest b such that at least 90% of gaps fit
// (the paper's regular-value threshold).
func pfdChooseB(gaps []uint32) uint { return pfdChooseBFrac(gaps, 0.9) }

// pfdChooseBFrac generalizes the threshold for the ablation study.
func pfdChooseBFrac(gaps []uint32, frac float64) uint {
	if len(gaps) == 0 {
		return 1
	}
	var hist [33]int
	for _, g := range gaps {
		hist[bitsFor(g)]++
	}
	need := int(float64(len(gaps))*frac + 0.999999)
	if need > len(gaps) {
		need = len(gaps)
	}
	cum := 0
	for b := uint(1); b <= 32; b++ {
		cum += hist[b]
		if cum >= need {
			return b
		}
	}
	return 32
}

// NewPforDeltaCodec returns PforDelta (§3.3) in the standard frame.
func NewPforDeltaCodec() core.Codec { return NewBlocked(PforDeltaBlock()) }

// NewPforDeltaThreshold returns PforDelta with a custom regular-value
// fraction (the exception-threshold ablation; the paper uses 0.9 and
// notes that a fixed threshold is not optimal, which motivated
// OptPforDelta).
func NewPforDeltaThreshold(frac float64) core.Codec {
	return NewBlocked(pfdBlock{threshold: frac})
}

// PforDeltaBlock exposes the bare block codec (used by the Figure 7
// ablation).
func PforDeltaBlock() BlockCodec { return pfdBlock{} }

type pfdBlock struct {
	// threshold is the regular-value fraction; 0 means the paper's 0.9.
	threshold float64
}

func (pfdBlock) Name() string { return "PforDelta" }

func (c pfdBlock) EncodeBlock(dst []byte, block []uint32) []byte {
	var buf [BlockSize]uint32
	gaps := blockGaps(block, &buf)
	if len(gaps) == 0 {
		return dst
	}
	frac := c.threshold
	if frac == 0 {
		frac = 0.9
	}
	b := pfdChooseBFrac(gaps, frac)
	maxDelta := 1<<b - 1
	if b >= 32 {
		maxDelta = len(gaps) // chains are never forced at full width
	}
	// Collect exception positions: true outliers plus forced links.
	var excPos []int
	var excVal []uint32
	last := -1
	for i, g := range gaps {
		if b < 32 && uint64(g) >= 1<<b {
			for last >= 0 && i-last > maxDelta {
				f := last + maxDelta
				excPos = append(excPos, f)
				excVal = append(excVal, gaps[f])
				last = f
			}
			excPos = append(excPos, i)
			excVal = append(excVal, g)
			last = i
		}
	}
	// Header: b, first-exception position (0xFF none), exception count.
	first := byte(0xFF)
	if len(excPos) > 0 {
		first = byte(excPos[0])
	}
	dst = append(dst, byte(b), first, byte(len(excPos)))
	// Slots: regular gaps, exception slots hold the link to the next
	// exception (0 terminates the chain).
	var slots [BlockSize]uint32
	copy(slots[:], gaps)
	for j, pos := range excPos {
		if j+1 < len(excPos) {
			slots[pos] = uint32(excPos[j+1] - pos)
		} else {
			slots[pos] = 0
		}
	}
	dst = packSlots(dst, slots[:len(gaps)], b)
	for _, v := range excVal {
		dst = append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return dst
}

func (pfdBlock) DecodeBlock(src []byte, out []uint32) int {
	n := len(out) - 1
	if n == 0 {
		return 0
	}
	b := uint(src[0])
	first := src[1]
	excCount := int(src[2])
	var gaps [BlockSize]uint32
	used := 3 + unpackSlots(src[3:], gaps[:n], b)
	// Patch the exception chain.
	pos := int(first)
	for j := 0; j < excCount; j++ {
		next := int(gaps[pos])
		v := uint32(src[used]) | uint32(src[used+1])<<8 |
			uint32(src[used+2])<<16 | uint32(src[used+3])<<24
		used += 4
		gaps[pos] = v
		pos += next
	}
	prev := out[0]
	for k := 0; k < n; k++ {
		prev += gaps[k]
		out[k+1] = prev
	}
	return used
}

// NewPforDeltaStar returns PforDelta* (§3.3): b covers every gap, no
// exceptions, maximum decode speed.
func NewPforDeltaStar() core.Codec { return NewBlocked(PforDeltaStarBlock()) }

// PforDeltaStarBlock exposes the bare block codec.
func PforDeltaStarBlock() BlockCodec { return pfdStarBlock{} }

type pfdStarBlock struct{}

func (pfdStarBlock) Name() string { return "PforDelta*" }

func (pfdStarBlock) EncodeBlock(dst []byte, block []uint32) []byte {
	var buf [BlockSize]uint32
	gaps := blockGaps(block, &buf)
	if len(gaps) == 0 {
		return dst
	}
	b := uint(1)
	for _, g := range gaps {
		if w := bitsFor(g); w > b {
			b = w
		}
	}
	dst = append(dst, byte(b))
	return packSlots(dst, gaps, b)
}

func (pfdStarBlock) DecodeBlock(src []byte, out []uint32) int {
	n := len(out) - 1
	if n == 0 {
		return 0
	}
	b := uint(src[0])
	var gaps [BlockSize]uint32
	used := 1 + unpackSlots(src[1:], gaps[:n], b)
	prev := out[0]
	for k := 0; k < n; k++ {
		prev += gaps[k]
		out[k+1] = prev
	}
	return used
}

// newPFDEncode is the shared NewPforDelta-layout encoder: slots hold the
// low b bits of every gap; positions (delta-coded) and overflow bits of
// exceptions go to two VB side arrays.
func newPFDEncode(dst []byte, gaps []uint32, b uint) []byte {
	var excPos []int
	for i, g := range gaps {
		if b < 32 && uint64(g) >= 1<<b {
			excPos = append(excPos, i)
		}
	}
	dst = append(dst, byte(b), byte(len(excPos)))
	dst = packSlots(dst, gaps, b) // low b bits of everything
	prev := 0
	for _, pos := range excPos {
		dst = PutVB(dst, uint32(pos-prev))
		prev = pos
	}
	for _, pos := range excPos {
		dst = PutVB(dst, gaps[pos]>>b)
	}
	return dst
}

// newPFDSize computes the encoded size of newPFDEncode without building it.
func newPFDSize(gaps []uint32, b uint) int {
	size := 2 + (len(gaps)*int(b)+7)/8
	prev := 0
	for i, g := range gaps {
		if b < 32 && uint64(g) >= 1<<b {
			size += vbLen(uint32(i-prev)) + vbLen(g>>b)
			prev = i
		}
	}
	return size
}

func vbLen(v uint32) int {
	switch {
	case v < 1<<7:
		return 1
	case v < 1<<14:
		return 2
	case v < 1<<21:
		return 3
	case v < 1<<28:
		return 4
	default:
		return 5
	}
}

func newPFDDecode(src []byte, out []uint32) int {
	n := len(out) - 1
	if n == 0 {
		return 0
	}
	b := uint(src[0])
	excCount := int(src[1])
	var gaps [BlockSize]uint32
	used := 2 + unpackSlots(src[2:], gaps[:n], b)
	var positions [BlockSize]int
	pos := 0
	for j := 0; j < excCount; j++ {
		var d uint32
		d, used = GetVB(src, used)
		pos += int(d)
		positions[j] = pos
	}
	for j := 0; j < excCount; j++ {
		var high uint32
		high, used = GetVB(src, used)
		gaps[positions[j]] |= high << b
	}
	prev := out[0]
	for k := 0; k < n; k++ {
		prev += gaps[k]
		out[k+1] = prev
	}
	return used
}

// NewNewPforDelta returns NewPforDelta (§3.4) in the standard frame.
func NewNewPforDelta() core.Codec { return NewBlocked(newPFDBlock{}) }

type newPFDBlock struct{}

func (newPFDBlock) Name() string { return "NewPforDelta" }

func (newPFDBlock) EncodeBlock(dst []byte, block []uint32) []byte {
	var buf [BlockSize]uint32
	gaps := blockGaps(block, &buf)
	if len(gaps) == 0 {
		return dst
	}
	return newPFDEncode(dst, gaps, pfdChooseB(gaps))
}

func (newPFDBlock) DecodeBlock(src []byte, out []uint32) int {
	return newPFDDecode(src, out)
}

// NewOptPforDelta returns OptPforDelta (§3.5) in the standard frame.
func NewOptPforDelta() core.Codec { return NewBlocked(optPFDBlock{}) }

type optPFDBlock struct{}

func (optPFDBlock) Name() string { return "OptPforDelta" }

func (optPFDBlock) EncodeBlock(dst []byte, block []uint32) []byte {
	var buf [BlockSize]uint32
	gaps := blockGaps(block, &buf)
	if len(gaps) == 0 {
		return dst
	}
	bestB, bestSize := uint(1), 0
	for b := uint(1); b <= 32; b++ {
		size := newPFDSize(gaps, b)
		if b == 1 || size < bestSize {
			bestB, bestSize = b, size
		}
	}
	return newPFDEncode(dst, gaps, bestB)
}

func (optPFDBlock) DecodeBlock(src []byte, out []uint32) int {
	return newPFDDecode(src, out)
}
