package index

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"repro/internal/codecs"
)

// The open/build benchmarks run against a deterministic corpus with a
// 64Ki-term vocabulary: benchDocs documents of benchTermsPerDoc terms
// each, term IDs assigned arithmetically so every vocabulary slot is
// hit the same number of times and two runs produce byte-identical
// indexes. The point of the corpus is dictionary width, not posting
// depth — time-to-first-query on an eager open is dominated by
// decoding all 64Ki lists, which is exactly what the lazy mmap path
// skips.
const (
	benchVocab       = 1 << 16
	benchDocs        = 1 << 13
	benchTermsPerDoc = 32
)

var benchCorpus struct {
	once  sync.Once
	docs  []string
	bvix2 []byte // serialized eager format
	bvix3 []byte // serialized mmap format
	probe [2]string
}

func benchSetup(tb testing.TB) {
	benchCorpus.once.Do(func() {
		docs := make([]string, benchDocs)
		var sb bytes.Buffer
		for i := 0; i < benchDocs; i++ {
			sb.Reset()
			for j := 0; j < benchTermsPerDoc; j++ {
				if j > 0 {
					sb.WriteByte(' ')
				}
				// Multiplying by an odd constant permutes slot order mod
				// 2^16, spreading each document across the vocabulary while
				// covering every term exactly docs*terms/vocab times.
				id := uint16((i*benchTermsPerDoc + j) * 40503)
				fmt.Fprintf(&sb, "t%05d", id)
			}
			docs[i] = sb.String()
		}
		benchCorpus.docs = docs
		codec, err := codecs.ByName("VB")
		if err != nil {
			panic(err)
		}
		b := NewBuilder(codec)
		for _, d := range docs {
			b.AddDocument(d)
		}
		idx, err := b.Build()
		if err != nil {
			panic(err)
		}
		var v2, v3 bytes.Buffer
		if _, err := idx.WriteTo(&v2); err != nil {
			panic(err)
		}
		if _, err := idx.WriteBVIX3(&v3); err != nil {
			panic(err)
		}
		benchCorpus.bvix2 = v2.Bytes()
		benchCorpus.bvix3 = v3.Bytes()
		// Two terms guaranteed present, for the first-query probe.
		benchCorpus.probe = [2]string{"t00000", "t00001"}
	})
	if benchCorpus.docs == nil {
		tb.Fatal("bench corpus failed to build")
	}
}

func benchBuild(b *testing.B, shards int) {
	benchSetup(b)
	codec, err := codecs.ByName("VB")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bl := NewBuilder(codec)
		bl.SetShards(shards)
		for _, d := range benchCorpus.docs {
			bl.AddDocument(d)
		}
		idx, err := bl.Build()
		if err != nil {
			b.Fatal(err)
		}
		if idx.Terms() != benchVocab {
			b.Fatalf("terms = %d, want %d", idx.Terms(), benchVocab)
		}
	}
}

// BenchmarkIndexBuildSerial pins the single-shard baseline the parallel
// build is measured against.
func BenchmarkIndexBuildSerial(b *testing.B) { benchBuild(b, 1) }

// BenchmarkIndexBuildParallel shards tokenization and posting
// compression across GOMAXPROCS workers; output is byte-identical to
// the serial build (TestBVIX3ByteIdenticalAcrossShards).
func BenchmarkIndexBuildParallel(b *testing.B) {
	if runtime.GOMAXPROCS(0) == 1 {
		b.Log("GOMAXPROCS=1: parallel build degenerates to the serial path on this machine")
	}
	benchBuild(b, runtime.GOMAXPROCS(0))
}

func benchWriteFile(b *testing.B, data []byte, name string) string {
	b.Helper()
	path := filepath.Join(b.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		b.Fatal(err)
	}
	return path
}

func benchFirstQuery(b *testing.B, idx *Index) {
	b.Helper()
	docs, err := idx.Conjunctive(benchCorpus.probe[0], benchCorpus.probe[1])
	if err != nil {
		b.Fatal(err)
	}
	_ = docs
}

// BenchmarkIndexOpenEagerBVIX2 measures time-to-first-query for the
// eager format: every iteration reads the file and decodes all 64Ki
// dictionary entries before the query can run.
func BenchmarkIndexOpenEagerBVIX2(b *testing.B) {
	benchSetup(b)
	path := benchWriteFile(b, benchCorpus.bvix2, "bench.bvix2")
	b.ReportAllocs()
	b.SetBytes(int64(len(benchCorpus.bvix2)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx, err := OpenFile(path)
		if err != nil {
			b.Fatal(err)
		}
		benchFirstQuery(b, idx)
		if err := idx.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexOpenMmapBVIX3 measures time-to-first-query for the
// mmap-backed format: open maps the file and validates section
// checksums, then the query materializes only the two postings it
// touches.
func BenchmarkIndexOpenMmapBVIX3(b *testing.B) {
	benchSetup(b)
	path := benchWriteFile(b, benchCorpus.bvix3, "bench.bvix3")
	b.ReportAllocs()
	b.SetBytes(int64(len(benchCorpus.bvix3)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx, err := OpenFile(path)
		if err != nil {
			b.Fatal(err)
		}
		benchFirstQuery(b, idx)
		if err := idx.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
