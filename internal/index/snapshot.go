package index

import (
	"sync"
	"sync/atomic"
)

// Snapshot is a reference-counted handle on one served generation of
// an Index. It exists to close the gap hot reload used to leak: a
// BVIX3 index opened from an mmap cannot be Closed while any in-flight
// query may still read borrowed bytes out of the mapping, so
// superseded snapshots were deliberately kept open forever. With
// Snapshot, each query brackets its work in Acquire/Release, the
// server Retires a snapshot when it swaps in a replacement, and the
// underlying Index is Closed exactly once — by whichever call drops
// the reference count to zero after retirement. Retire-after-drain is
// verified under -race by the reload-storm tests in internal/server.
//
// Lifecycle: NewSnapshot starts the count at one (the owner's
// reference). Acquire increments iff the count is still positive —
// once it has hit zero the snapshot is dead and can never be revived,
// which is what makes "Close exactly once" a structural guarantee
// rather than a convention.
type Snapshot struct {
	idx  *Index
	refs atomic.Int64

	retireOnce sync.Once
	closeErr   error
	closedCh   chan struct{}
}

// NewSnapshot wraps idx with a reference count of one, owned by the
// caller. The caller's reference is dropped by Retire.
func NewSnapshot(idx *Index) *Snapshot {
	s := &Snapshot{idx: idx, closedCh: make(chan struct{})}
	s.refs.Store(1)
	return s
}

// Index returns the wrapped index. Callers must hold a reference
// (the owner's, or one taken with Acquire) while using it.
func (s *Snapshot) Index() *Index { return s.idx }

// Acquire takes a reference for the duration of one query. It fails
// (returns false) only when the snapshot is already dead — retired
// with all readers drained — in which case the caller must re-fetch
// the current snapshot and try again.
func (s *Snapshot) Acquire() bool {
	for {
		n := s.refs.Load()
		if n <= 0 {
			return false
		}
		if s.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// Release drops a reference taken by Acquire (or the owner's, via
// Retire). The release that drops the count to zero closes the
// underlying index; the count can never go back up, so the close runs
// exactly once.
func (s *Snapshot) Release() {
	switch n := s.refs.Add(-1); {
	case n == 0:
		s.closeErr = s.idx.Close()
		close(s.closedCh)
	case n < 0:
		panic("index: Snapshot.Release without matching Acquire")
	}
}

// Retire drops the owner's reference, marking the snapshot as
// superseded: once the last in-flight reader Releases, the index is
// Closed. Retire is idempotent; only the first call drops the
// reference.
func (s *Snapshot) Retire() {
	s.retireOnce.Do(s.Release)
}

// Refs reports the current reference count — diagnostics and tests
// only, the value may be stale by the time it is read.
func (s *Snapshot) Refs() int64 { return s.refs.Load() }

// Closed reports whether the underlying index has been closed (the
// count reached zero after retirement).
func (s *Snapshot) Closed() bool {
	select {
	case <-s.closedCh:
		return true
	default:
		return false
	}
}

// CloseErr returns the error from the underlying Close, valid once
// Closed reports true.
func (s *Snapshot) CloseErr() error {
	select {
	case <-s.closedCh:
		return s.closeErr
	default:
		return nil
	}
}
