package index

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// writeTemp3 lands file bytes on disk for OpenFileDegraded.
func writeTemp3(t *testing.T, file []byte) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "idx.bvix3")
	if err := os.WriteFile(p, file, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// sectionOffsets reads the three section (offset, length) pairs out of
// a BVIX3 header.
func sectionOffsets(file []byte) (secs [3][2]uint64) {
	for i := range secs {
		p := 24 + i*20
		secs[i] = [2]uint64{
			binary.LittleEndian.Uint64(file[p:]),
			binary.LittleEndian.Uint64(file[p+8:]),
		}
	}
	return secs
}

// dictRecordOffsets walks the dict section of a pristine file and
// returns each record's dict offset plus its parsed form.
func dictRecordOffsets(t *testing.T, file []byte) (offs []int, recs []dictRecord) {
	t.Helper()
	g, err := parseBVIX3(file)
	if err != nil {
		t.Fatal(err)
	}
	cur := 0
	for i := 0; i < g.terms; i++ {
		rec, err := parseDictRecord(g.dict, cur)
		if err != nil {
			t.Fatal(err)
		}
		offs = append(offs, cur)
		recs = append(recs, rec)
		cur = rec.next
	}
	return offs, recs
}

func TestDegradedOpenCleanFileIsNotDegraded(t *testing.T) {
	idx := buildWideIndex(t, "Roaring", 1)
	p := writeTemp3(t, serialize3(t, idx))
	got, err := OpenFileDegraded(p)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	if h := got.Health(); h.Degraded || h.QuarantinedTerms != 0 || len(h.QuarantinedSections) != 0 {
		t.Fatalf("clean file reported degraded health: %+v", h)
	}
	if got.Terms() != idx.Terms() {
		t.Fatalf("clean degraded open served %d terms, want %d", got.Terms(), idx.Terms())
	}
}

// TestDegradedOpenFramesCorrupt: the frames section is redundant, so
// its corruption costs nothing — every term still serves, health says
// degraded with the frames section quarantined.
func TestDegradedOpenFramesCorrupt(t *testing.T) {
	idx := buildWideIndex(t, "Roaring", 1)
	file := serialize3(t, idx)
	secs := sectionOffsets(file)
	file[secs[1][0]+3] ^= 0x40 // flip a bit mid-frames

	if _, err := OpenFile(writeTemp3(t, file)); err == nil {
		t.Fatal("strict open accepted a corrupt frames section")
	}
	got, err := OpenFileDegraded(writeTemp3(t, file))
	if err != nil {
		t.Fatalf("degraded open: %v", err)
	}
	defer got.Close()
	h := got.Health()
	if !h.Degraded || !reflect.DeepEqual(h.QuarantinedSections, []string{"frames"}) || h.QuarantinedTerms != 0 {
		t.Fatalf("health = %+v, want degraded with only frames quarantined", h)
	}
	if got.Terms() != idx.Terms() {
		t.Fatalf("served %d terms, want all %d", got.Terms(), idx.Terms())
	}
	names, _, err := idx.sortedEntries()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		if !reflect.DeepEqual(got.DecodedPostings(name), idx.DecodedPostings(name)) {
			t.Fatalf("term %q served wrong postings from rebuilt frames", name)
		}
	}
}

// TestDegradedOpenDictCorrupt: a violated record cuts the dictionary
// at that point; the prefix serves, the tail is quarantined.
func TestDegradedOpenDictCorrupt(t *testing.T) {
	idx := buildWideIndex(t, "Roaring", 1)
	file := serialize3(t, idx)
	offs, recs := dictRecordOffsets(t, file)
	cut := len(offs) / 2
	// Blow up record `cut`'s posting count: count > docs is a walk
	// violation, so the salvaged prefix ends exactly there.
	secs := sectionOffsets(file)
	countOff := secs[0][0] + uint64(offs[cut]) + 2 + uint64(len(recs[cut].name))
	binary.LittleEndian.PutUint32(file[countOff:], 0xFFFFFFFF)

	if _, err := OpenFile(writeTemp3(t, file)); err == nil {
		t.Fatal("strict open accepted a corrupt dict section")
	}
	got, err := OpenFileDegraded(writeTemp3(t, file))
	if err != nil {
		t.Fatalf("degraded open: %v", err)
	}
	defer got.Close()
	h := got.Health()
	if !h.Degraded || !reflect.DeepEqual(h.QuarantinedSections, []string{"dict"}) {
		t.Fatalf("health = %+v, want degraded with dict quarantined", h)
	}
	if want := len(offs) - cut; h.QuarantinedTerms != want {
		t.Fatalf("quarantined %d terms, want %d", h.QuarantinedTerms, want)
	}
	if got.Terms() != cut {
		t.Fatalf("served %d terms, want the %d-term prefix", got.Terms(), cut)
	}
	for i, rec := range recs {
		name := string(rec.name)
		postings := got.DecodedPostings(name)
		if i < cut {
			if !reflect.DeepEqual(postings, idx.DecodedPostings(name)) {
				t.Fatalf("prefix term %q served wrong postings", name)
			}
		} else if len(postings) != 0 {
			t.Fatalf("quarantined term %q served %d postings", name, len(postings))
		}
	}
}

// TestDegradedOpenPayloadCorrupt: damage inside one term's posting
// blob quarantines that term alone; every other term still serves
// verified decodes.
func TestDegradedOpenPayloadCorrupt(t *testing.T) {
	idx := buildWideIndex(t, "Roaring", 1)
	file := serialize3(t, idx)
	offs, recs := dictRecordOffsets(t, file)
	_ = offs
	victim := len(recs) / 3
	secs := sectionOffsets(file)
	// Zero the victim's whole posting blob: guaranteed to no longer
	// decode as a valid self-describing posting of the declared count.
	blobStart := secs[2][0] + recs[victim].payOff
	for i := uint64(0); i < uint64(recs[victim].postLen); i++ {
		file[blobStart+i] = 0
	}

	if _, err := OpenFile(writeTemp3(t, file)); err == nil {
		t.Fatal("strict open accepted a corrupt payload section")
	}
	got, err := OpenFileDegraded(writeTemp3(t, file))
	if err != nil {
		t.Fatalf("degraded open: %v", err)
	}
	defer got.Close()
	h := got.Health()
	if !h.Degraded || !reflect.DeepEqual(h.QuarantinedSections, []string{"payload"}) {
		t.Fatalf("health = %+v, want degraded with payload quarantined", h)
	}
	if h.QuarantinedTerms != 1 {
		t.Fatalf("quarantined %d terms, want exactly the victim", h.QuarantinedTerms)
	}
	if got.Terms() != idx.Terms()-1 {
		t.Fatalf("served %d terms, want %d", got.Terms(), idx.Terms()-1)
	}
	for i, rec := range recs {
		name := string(rec.name)
		postings := got.DecodedPostings(name)
		if i == victim {
			if len(postings) != 0 {
				t.Fatalf("quarantined term %q served %d postings", name, len(postings))
			}
			continue
		}
		if !reflect.DeepEqual(postings, idx.DecodedPostings(name)) {
			t.Fatalf("surviving term %q served wrong postings", name)
		}
	}
}

// TestDegradedOpenHeaderCorrupt: no salvage without a trustworthy
// header.
func TestDegradedOpenHeaderCorrupt(t *testing.T) {
	file := serialize3(t, buildTestIndex(t, "Roaring"))
	file[10] ^= 0x01 // doc count byte, inside the header CRC
	if _, err := OpenFileDegraded(writeTemp3(t, file)); err == nil {
		t.Fatal("degraded open accepted a corrupt header")
	}
}

// TestDegradedRebuildRunbook: WriteTo/WriteFile on a degraded index
// persists exactly the servable terms — the documented path from a
// damaged index back to a fully verified one.
func TestDegradedRebuildRunbook(t *testing.T) {
	idx := buildWideIndex(t, "Roaring", 1)
	file := serialize3(t, idx)
	_, recs := dictRecordOffsets(t, file)
	victim := 1
	secs := sectionOffsets(file)
	blobStart := secs[2][0] + recs[victim].payOff
	for i := uint64(0); i < uint64(recs[victim].postLen); i++ {
		file[blobStart+i] = 0
	}
	degraded, err := OpenFileDegraded(writeTemp3(t, file))
	if err != nil {
		t.Fatal(err)
	}
	defer degraded.Close()

	rebuilt := filepath.Join(t.TempDir(), "rebuilt.bvix3")
	if err := degraded.WriteFile(rebuilt, FormatBVIX3); err != nil {
		t.Fatalf("rebuilding from degraded index: %v", err)
	}
	clean, err := OpenFile(rebuilt)
	if err != nil {
		t.Fatalf("rebuilt index does not open strictly: %v", err)
	}
	defer clean.Close()
	if h := clean.Health(); h.Degraded {
		t.Fatalf("rebuilt index still degraded: %+v", h)
	}
	if clean.Terms() != idx.Terms()-1 {
		t.Fatalf("rebuilt index has %d terms, want %d", clean.Terms(), idx.Terms()-1)
	}
	var buf bytes.Buffer
	if _, err := degraded.WriteTo(&buf); err != nil {
		t.Fatalf("BVIX2 conversion from degraded index: %v", err)
	}
}
