// Package mapfile provides a read-only view of a file's contents that
// is memory-mapped where the platform supports it (linux, darwin) and
// falls back to a plain read elsewhere, behind one portable API. It is
// the zero-copy substrate of the BVIX3 lazy index open path: callers
// slice File.Data directly and must not write through it.
//
// Ownership: Data is valid until Close. On mapped platforms Close
// unmaps the region, after which any access to previously returned
// slices faults — callers that hand out sub-slices (the index package)
// must fence access themselves. On fallback platforms Data is ordinary
// heap memory and survives Close, but callers must not rely on that.
package mapfile

import (
	"fmt"
	"os"
)

// File is a read-only view of one file's entire contents.
type File struct {
	data   []byte
	mapped bool
	closed bool
}

// OpenPortable reads path fully into heap memory: the fallback Open
// uses on platforms without an mmap path, exported so the portable
// code path stays exercisable (and testable) on every platform. The
// contract matches Open except Mapped() always reports false.
func OpenPortable(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &File{data: data}, nil
}

// Data returns the file contents. The slice is read-only and shared;
// it is valid until Close.
func (f *File) Data() []byte { return f.data }

// Mapped reports whether the view is an actual memory mapping (true on
// linux/darwin for non-empty files) or a heap copy (the portable
// fallback, and all empty files).
func (f *File) Mapped() bool { return f.mapped }

// Close releases the view. Closing twice is safe; only the first call
// does work. After Close, slices of Data must not be touched on mapped
// platforms.
func (f *File) Close() error {
	if f.closed {
		return nil
	}
	f.closed = true
	data, mapped := f.data, f.mapped
	f.data, f.mapped = nil, false
	if !mapped || len(data) == 0 {
		return nil
	}
	if err := unmap(data); err != nil {
		return fmt.Errorf("mapfile: unmap: %w", err)
	}
	return nil
}
