//go:build !linux && !darwin

package mapfile

// Open reads path fully into memory — the portable fallback for
// platforms where the mmap path is not wired up (e.g. windows). The
// API contract is identical; only Mapped() reports false.
func Open(path string) (*File, error) { return OpenPortable(path) }

// unmap is never reached on the fallback: File.Close only calls it for
// mapped views.
func unmap([]byte) error { return nil }
