package mapfile

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestOpenReadsContents(t *testing.T) {
	p := filepath.Join(t.TempDir(), "blob")
	want := bytes.Repeat([]byte("mapfile"), 1000)
	if err := os.WriteFile(p, want, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Open(p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f.Data(), want) {
		t.Fatalf("Data mismatch: %d bytes, want %d", len(f.Data()), len(want))
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if f.Data() != nil {
		t.Fatal("Data non-nil after Close")
	}
}

func TestOpenEmptyFile(t *testing.T) {
	p := filepath.Join(t.TempDir(), "empty")
	if err := os.WriteFile(p, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Open(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Data()) != 0 {
		t.Fatalf("empty file mapped to %d bytes", len(f.Data()))
	}
	if f.Mapped() {
		t.Fatal("empty file should not report a real mapping")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenMissingFile(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestOpenPortable exercises the heap-copy fallback on every platform,
// including the ones whose Open uses mmap.
func TestOpenPortable(t *testing.T) {
	p := filepath.Join(t.TempDir(), "blob")
	want := bytes.Repeat([]byte("portable"), 500)
	if err := os.WriteFile(p, want, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := OpenPortable(p)
	if err != nil {
		t.Fatal(err)
	}
	if f.Mapped() {
		t.Fatal("portable open reported a real mapping")
	}
	if !bytes.Equal(f.Data(), want) {
		t.Fatalf("Data mismatch: %d bytes, want %d", len(f.Data()), len(want))
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := OpenPortable(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing file accepted")
	}
}
