//go:build linux || darwin

package mapfile

import (
	"fmt"
	"math"
	"os"
	"syscall"
)

// Open maps path read-only. The descriptor is closed before returning;
// the mapping keeps the underlying file alive on its own. MAP_PRIVATE
// keeps the view stable against concurrent writers on platforms where
// that matters (pages are still shared until someone writes, so a
// private read-only mapping costs nothing extra).
func Open(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return &File{}, nil // zero-length mmap is an error; empty view suffices
	}
	if size > math.MaxInt || size != int64(int(size)) {
		return nil, fmt.Errorf("mapfile: %s: %d bytes exceeds addressable size", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, fmt.Errorf("mapfile: mmap %s: %w", path, err)
	}
	return &File{data: data, mapped: true}, nil
}

func unmap(data []byte) error { return syscall.Munmap(data) }
