package index

import (
	"bufio"
	"bytes"
	"encoding"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/codecs"
	"repro/internal/core"
)

// Index persistence: the serialized form embeds each term's compressed
// posting via its self-describing binary encoding, so an index written
// with one codec loads without knowing which codec built it.
//
// Three on-disk formats exist:
//
//   - "BVIX3" (current serving format, written by WriteBVIX3): three
//     section-aligned, individually CRC-checked segments (term dict,
//     skip frames, posting payloads) laid out for zero-copy mmap open
//     with lazy posting materialization. See bvix3.go for the layout.
//     Read accepts it eagerly; OpenFile opens it lazily.
//   - Versioned "BVIX2" (streaming format, written by WriteTo): magic,
//     one version byte, the payload, then a CRC32-C (Castagnoli)
//     trailer u32 over version byte + payload. Read verifies the
//     checksum before parsing anything, so a flipped bit anywhere after
//     the magic surfaces as core.ErrChecksum rather than a confusing
//     decode error — and a version byte this build does not know yields
//     core.ErrVersion.
//   - Legacy "BVIX1" (the unversioned seed format): magic then payload,
//     no version byte, no checksum. Read still accepts it.
//
// BVIX2 payload layout (little-endian): doc count u32, term count u32,
// then per term (sorted by name for determinism): name (u16 len +
// bytes), frequencies (u32 count + u16 values), posting blob (u32 len +
// bytes).

var (
	legacyMagic = []byte("BVIX1")
	indexMagic  = []byte("BVIX2")
	// bvix3Magic lives in bvix3.go with the rest of the BVIX3 format.
)

// formatVersion is the payload version written inside BVIX2 files.
const formatVersion = 1

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// WriteTo serializes the index in the versioned, checksummed BVIX2
// streaming format. Lazily opened indexes are materialized in full
// first, so WriteTo doubles as a BVIX3 → BVIX2 converter.
func (idx *Index) WriteTo(w io.Writer) (int64, error) {
	names, entries, serr := idx.sortedEntries()
	if serr != nil {
		return 0, serr
	}
	bw := bufio.NewWriter(w)
	crc := crc32.New(castagnoli)
	var n int64
	// write appends p to the output; summed bytes also feed the CRC
	// trailer (everything between the magic and the trailer itself).
	write := func(p []byte, summed bool) error {
		k, err := bw.Write(p)
		n += int64(k)
		if err != nil {
			return err
		}
		if summed {
			crc.Write(p) // hash.Hash.Write never returns an error
		}
		return nil
	}
	if err := write(indexMagic, false); err != nil {
		return n, err
	}
	if err := write([]byte{formatVersion}, true); err != nil {
		return n, err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(idx.docs))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(names)))
	if err := write(hdr[:], true); err != nil {
		return n, err
	}
	for i, name := range names {
		e := entries[i]
		var buf []byte
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(name)))
		buf = append(buf, name...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.freqs)))
		for _, f := range e.freqs {
			buf = binary.LittleEndian.AppendUint16(buf, f)
		}
		blob, err := e.posting.(encoding.BinaryMarshaler).MarshalBinary()
		if err != nil {
			return n, fmt.Errorf("index: term %q: %w", name, err)
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(blob)))
		buf = append(buf, blob...)
		if err := write(buf, true); err != nil {
			return n, err
		}
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crc.Sum32())
	if err := write(trailer[:], false); err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// Read loads an index written by WriteTo, current or legacy format.
func Read(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(indexMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("index: reading magic: %w", err)
	}
	switch {
	case bytes.Equal(magic, bvix3Magic):
		// The BVIX3 parser works on the whole file (its section offsets
		// are absolute), so re-prefix the magic already consumed.
		rest, err := io.ReadAll(br)
		if err != nil {
			return nil, fmt.Errorf("index: reading body: %w", err)
		}
		data := make([]byte, 0, len(bvix3Magic)+len(rest))
		data = append(append(data, bvix3Magic...), rest...)
		return readBVIX3(data)
	case bytes.Equal(magic, indexMagic):
		return readVersioned(br)
	case bytes.Equal(magic, legacyMagic):
		return readLegacy(br)
	default:
		return nil, fmt.Errorf("index: bad magic %q", magic)
	}
}

// readVersioned handles BVIX2: slurp the remainder (the parsed index
// dwarfs the file in memory anyway), verify the CRC trailer over
// version byte + payload BEFORE interpreting a single field, then
// parse from the in-memory body where every declared count can be
// bounds-checked against the bytes that actually exist.
func readVersioned(r io.Reader) (*Index, error) {
	rest, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("index: reading body: %w", err)
	}
	if len(rest) < 1+4 { // version byte + trailer
		return nil, fmt.Errorf("index: %w: file truncated before checksum trailer", core.ErrChecksum)
	}
	body, trailer := rest[:len(rest)-4], rest[len(rest)-4:]
	got := crc32.Checksum(body, castagnoli)
	want := binary.LittleEndian.Uint32(trailer)
	if got != want {
		return nil, fmt.Errorf("index: %w: computed crc32c %08x, trailer %08x", core.ErrChecksum, got, want)
	}
	if v := body[0]; v != formatVersion {
		return nil, fmt.Errorf("index: %w: file declares version %d, this build reads version %d", core.ErrVersion, v, formatVersion)
	}
	return parsePayload(body[1:])
}

// payload is a bounds-checked cursor over an in-memory payload.
type payload struct {
	b   []byte
	off int
}

func (p *payload) remaining() int { return len(p.b) - p.off }

func (p *payload) take(n int) ([]byte, error) {
	if n < 0 || n > p.remaining() {
		return nil, io.ErrUnexpectedEOF
	}
	s := p.b[p.off : p.off+n]
	p.off += n
	return s, nil
}

func (p *payload) u16() (uint16, error) {
	b, err := p.take(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (p *payload) u32() (uint32, error) {
	b, err := p.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func parsePayload(b []byte) (*Index, error) {
	p := &payload{b: b}
	docsU, err := p.u32()
	if err != nil {
		return nil, fmt.Errorf("index: reading header: %w", err)
	}
	termCountU, err := p.u32()
	if err != nil {
		return nil, fmt.Errorf("index: reading header: %w", err)
	}
	docs, termCount := int(docsU), int(termCountU)
	// A term record is at least 10 bytes (empty name, no freqs, empty
	// blob): reject impossible term counts before building anything.
	if minBytes := termCount * 10; minBytes > p.remaining() {
		return nil, fmt.Errorf("index: header declares %d terms but only %d payload bytes remain", termCount, p.remaining())
	}
	idx := &Index{terms: make(map[string]termEntry, termCount), docs: docs}
	for i := 0; i < termCount; i++ {
		nameLen, err := p.u16()
		if err != nil {
			return nil, fmt.Errorf("index: term %d name: %w", i, err)
		}
		nameB, err := p.take(int(nameLen))
		if err != nil {
			return nil, fmt.Errorf("index: term %d name: %w", i, err)
		}
		name := string(nameB)
		freqCountU, err := p.u32()
		if err != nil {
			return nil, fmt.Errorf("index: term %q freqs: %w", name, err)
		}
		freqCount := int(freqCountU)
		// A term appears in at most every document; anything larger is a
		// lying count, not data.
		if freqCount > docs {
			return nil, fmt.Errorf("index: term %q declares %d postings in a %d-document index", name, freqCount, docs)
		}
		freqB, err := p.take(2 * freqCount)
		if err != nil {
			return nil, fmt.Errorf("index: term %q freqs: %w", name, err)
		}
		freqs := make([]uint16, freqCount)
		for j := range freqs {
			freqs[j] = binary.LittleEndian.Uint16(freqB[2*j:])
		}
		blobLen, err := p.u32()
		if err != nil {
			return nil, fmt.Errorf("index: term %q posting: %w", name, err)
		}
		blob, err := p.take(int(blobLen))
		if err != nil {
			return nil, fmt.Errorf("index: term %q posting: %w", name, err)
		}
		pp, err := codecs.Decode(blob)
		if err != nil {
			return nil, fmt.Errorf("index: term %q posting: %w", name, err)
		}
		if pp.Len() != len(freqs) {
			return nil, fmt.Errorf("index: term %q: %d postings but %d frequencies",
				name, pp.Len(), len(freqs))
		}
		idx.terms[name] = termEntry{posting: pp, freqs: freqs}
	}
	if p.remaining() != 0 {
		return nil, fmt.Errorf("index: %d trailing bytes after last term", p.remaining())
	}
	return idx, nil
}

// readLegacy handles the unversioned, unchecksummed BVIX1 seed format,
// streaming as the original reader did but with allocations bounded by
// the bytes actually present rather than by declared counts.
func readLegacy(r io.Reader) (*Index, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("index: reading header: %w", err)
	}
	docs := int(binary.LittleEndian.Uint32(hdr[0:]))
	idx := &Index{
		terms: map[string]termEntry{},
		docs:  docs,
	}
	termCount := int(binary.LittleEndian.Uint32(hdr[4:]))
	for i := 0; i < termCount; i++ {
		name, err := readString(r)
		if err != nil {
			return nil, fmt.Errorf("index: term %d name: %w", i, err)
		}
		freqs, err := readFreqs(r, docs)
		if err != nil {
			return nil, fmt.Errorf("index: term %q freqs: %w", name, err)
		}
		blob, err := readBlob(r)
		if err != nil {
			return nil, fmt.Errorf("index: term %q posting: %w", name, err)
		}
		p, err := codecs.Decode(blob)
		if err != nil {
			return nil, fmt.Errorf("index: term %q posting: %w", name, err)
		}
		if p.Len() != len(freqs) {
			return nil, fmt.Errorf("index: term %q: %d postings but %d frequencies",
				name, p.Len(), len(freqs))
		}
		idx.terms[name] = termEntry{posting: p, freqs: freqs}
	}
	return idx, nil
}

// readN reads exactly n bytes, growing the buffer in bounded chunks so
// a corrupt length field costs at most one chunk of allocation before
// the stream runs dry, instead of an n-sized up-front allocation.
func readN(r io.Reader, n int) ([]byte, error) {
	const chunk = 1 << 16
	buf := make([]byte, 0, min(n, chunk))
	for len(buf) < n {
		k := min(chunk, n-len(buf))
		start := len(buf)
		buf = append(buf, make([]byte, k)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

func readString(r io.Reader) (string, error) {
	var l [2]byte
	if _, err := io.ReadFull(r, l[:]); err != nil {
		return "", err
	}
	b, err := readN(r, int(binary.LittleEndian.Uint16(l[:])))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func readFreqs(r io.Reader, docs int) ([]uint16, error) {
	var l [4]byte
	if _, err := io.ReadFull(r, l[:]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(l[:]))
	if n > docs {
		return nil, fmt.Errorf("%d postings declared in a %d-document index", n, docs)
	}
	b, err := readN(r, 2*n)
	if err != nil {
		return nil, err
	}
	out := make([]uint16, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint16(b[2*i:])
	}
	return out, nil
}

func readBlob(r io.Reader) ([]byte, error) {
	var l [4]byte
	if _, err := io.ReadFull(r, l[:]); err != nil {
		return nil, err
	}
	return readN(r, int(binary.LittleEndian.Uint32(l[:])))
}
