package index

import (
	"bufio"
	"encoding"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"repro/internal/codecs"
)

// Index persistence: the serialized form embeds each term's compressed
// posting via its self-describing binary encoding, so an index written
// with one codec loads without knowing which codec built it.
//
// Layout (little-endian): magic "BVIX1", doc count u32, term count u32,
// then per term (sorted by name for determinism): name (u16 len +
// bytes), frequencies (u32 count + u16 values), posting blob (u32 len +
// bytes).

var indexMagic = []byte("BVIX1")

// WriteTo serializes the index.
func (idx *Index) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(p []byte) error {
		k, err := bw.Write(p)
		n += int64(k)
		return err
	}
	if err := write(indexMagic); err != nil {
		return n, err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(idx.docs))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(idx.terms)))
	if err := write(hdr[:]); err != nil {
		return n, err
	}
	names := make([]string, 0, len(idx.terms))
	for t := range idx.terms {
		names = append(names, t)
	}
	sort.Strings(names)
	for _, name := range names {
		e := idx.terms[name]
		var buf []byte
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(name)))
		buf = append(buf, name...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.freqs)))
		for _, f := range e.freqs {
			buf = binary.LittleEndian.AppendUint16(buf, f)
		}
		blob, err := e.posting.(encoding.BinaryMarshaler).MarshalBinary()
		if err != nil {
			return n, fmt.Errorf("index: term %q: %w", name, err)
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(blob)))
		buf = append(buf, blob...)
		if err := write(buf); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// Read loads an index written by WriteTo.
func Read(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(indexMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("index: reading magic: %w", err)
	}
	if string(magic) != string(indexMagic) {
		return nil, fmt.Errorf("index: bad magic %q", magic)
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("index: reading header: %w", err)
	}
	idx := &Index{
		terms: map[string]termEntry{},
		docs:  int(binary.LittleEndian.Uint32(hdr[0:])),
	}
	termCount := int(binary.LittleEndian.Uint32(hdr[4:]))
	for i := 0; i < termCount; i++ {
		name, err := readString(br)
		if err != nil {
			return nil, fmt.Errorf("index: term %d name: %w", i, err)
		}
		freqs, err := readFreqs(br)
		if err != nil {
			return nil, fmt.Errorf("index: term %q freqs: %w", name, err)
		}
		blob, err := readBlob(br)
		if err != nil {
			return nil, fmt.Errorf("index: term %q posting: %w", name, err)
		}
		p, err := codecs.Decode(blob)
		if err != nil {
			return nil, fmt.Errorf("index: term %q posting: %w", name, err)
		}
		if p.Len() != len(freqs) {
			return nil, fmt.Errorf("index: term %q: %d postings but %d frequencies",
				name, p.Len(), len(freqs))
		}
		idx.terms[name] = termEntry{posting: p, freqs: freqs}
	}
	return idx, nil
}

func readString(r io.Reader) (string, error) {
	var l [2]byte
	if _, err := io.ReadFull(r, l[:]); err != nil {
		return "", err
	}
	b := make([]byte, binary.LittleEndian.Uint16(l[:]))
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

func readFreqs(r io.Reader) ([]uint16, error) {
	var l [4]byte
	if _, err := io.ReadFull(r, l[:]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(l[:]))
	b := make([]byte, 2*n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	out := make([]uint16, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint16(b[2*i:])
	}
	return out, nil
}

func readBlob(r io.Reader) ([]byte, error) {
	var l [4]byte
	if _, err := io.ReadFull(r, l[:]); err != nil {
		return nil, err
	}
	b := make([]byte, binary.LittleEndian.Uint32(l[:]))
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}
