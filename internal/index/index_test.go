package index

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/codecs"
)

var docs = []string{
	"compressed bitmap indexes accelerate analytical queries",
	"inverted lists power every web search engine",
	"roaring bitmap containers mix arrays and bitmaps",
	"search engines compress inverted lists with pfordelta",
	"bitmap compression and inverted list compression solve the same problem",
	"skip pointers make intersection of compressed lists fast",
	"compressed, compressed; COMPRESSED!", // tokenizer + frequency payload
}

func buildTestIndex(t *testing.T, codecName string) *Index {
	t.Helper()
	codec, err := codecs.ByName(codecName)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(codec)
	for i, d := range docs {
		if id := b.AddDocument(d); id != uint32(i) {
			t.Fatalf("doc %d got id %d", i, id)
		}
	}
	idx, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func TestTokenize(t *testing.T) {
	got := Tokenize("Hello, World! (really)")
	want := []string{"hello", "world", "really"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
	if out := Tokenize("..."); len(out) != 0 {
		t.Fatalf("pure punctuation should tokenize to nothing, got %v", out)
	}
}

func TestConjunctiveDisjunctive(t *testing.T) {
	for _, codec := range []string{"Roaring", "SIMDBP128*", "WAH"} {
		idx := buildTestIndex(t, codec)
		and, err := idx.Conjunctive("compressed", "lists")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(and, []uint32{5}) {
			t.Errorf("%s: AND = %v, want [5]", codec, and)
		}
		or, err := idx.Disjunctive("roaring", "pfordelta")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(or, []uint32{2, 3}) {
			t.Errorf("%s: OR = %v, want [2 3]", codec, or)
		}
		// Missing term: conjunction empties, disjunction ignores.
		if r, _ := idx.Conjunctive("bitmap", "nonexistent"); len(r) != 0 {
			t.Errorf("%s: AND with missing term = %v", codec, r)
		}
		if r, _ := idx.Disjunctive("bitmap", "nonexistent"); len(r) == 0 {
			t.Errorf("%s: OR with missing term should keep matches", codec)
		}
	}
}

func TestTopKRanksByFrequency(t *testing.T) {
	idx := buildTestIndex(t, "Roaring")
	top, err := idx.TopK(2, "compressed")
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 {
		t.Fatalf("TopK returned %d results", len(top))
	}
	// Doc 6 repeats "compressed" three times: must rank first.
	if top[0].Doc != 6 || top[0].Score != 3 {
		t.Fatalf("top result = %+v, want doc 6 score 3", top[0])
	}
	if top[1].Score > top[0].Score {
		t.Fatal("results not sorted by score")
	}
	// k larger than candidate count.
	all, _ := idx.TopK(100, "compressed")
	if len(all) != 3 {
		t.Fatalf("TopK(100) = %d results, want 3", len(all))
	}
	// No candidates.
	if r, err := idx.TopK(5, "nonexistent"); err != nil || r != nil {
		t.Fatalf("TopK missing term = %v, %v", r, err)
	}
}

func TestIndexAccessors(t *testing.T) {
	idx := buildTestIndex(t, "Roaring")
	if idx.Docs() != len(docs) {
		t.Errorf("Docs = %d", idx.Docs())
	}
	if idx.Terms() == 0 || idx.SizeBytes() <= 0 {
		t.Error("Terms/SizeBytes look wrong")
	}
	if idx.Postings("bitmap") == nil || idx.Postings("bitmap") == EmptyPosting {
		t.Error("Postings(bitmap) missing")
	}
	if idx.Postings("nonexistent") != EmptyPosting {
		t.Error("Postings should return the EmptyPosting sentinel for unknown terms")
	}
}

// TestUnknownTermSentinels pins the documented sentinel contract:
// unknown terms yield EmptyPosting / EmptyPostings, never nil, so
// callers can chain Len/Decompress/len without nil checks.
func TestUnknownTermSentinels(t *testing.T) {
	idx := buildTestIndex(t, "Roaring")
	p := idx.Postings("no-such-term")
	if p == nil {
		t.Fatal("Postings returned nil for an unknown term")
	}
	if p != EmptyPosting {
		t.Fatalf("Postings returned %T, want the EmptyPosting sentinel", p)
	}
	if p.Len() != 0 || p.SizeBytes() != 0 || len(p.Decompress()) != 0 {
		t.Fatalf("EmptyPosting not empty: Len=%d SizeBytes=%d", p.Len(), p.SizeBytes())
	}
	d := idx.DecodedPostings("no-such-term")
	if d == nil {
		t.Fatal("DecodedPostings returned nil for an unknown term")
	}
	if len(d) != 0 {
		t.Fatalf("DecodedPostings for unknown term has %d values", len(d))
	}
	// The sentinel survives a round trip through a lazily opened index.
	lazy := openLazy(t, idx)
	defer lazy.Close()
	if lazy.Postings("no-such-term") != EmptyPosting {
		t.Fatal("lazy index did not return the EmptyPosting sentinel")
	}
	if got := lazy.DecodedPostings("no-such-term"); got == nil || len(got) != 0 {
		t.Fatalf("lazy DecodedPostings = %v, want empty sentinel", got)
	}
}

func TestPersistRoundTrip(t *testing.T) {
	for _, codec := range []string{"Roaring", "PEF", "VB"} {
		idx := buildTestIndex(t, codec)
		var buf bytes.Buffer
		n, err := idx.WriteTo(&buf)
		if err != nil {
			t.Fatalf("%s: WriteTo: %v", codec, err)
		}
		if n != int64(buf.Len()) {
			t.Errorf("%s: WriteTo reported %d bytes, wrote %d", codec, n, buf.Len())
		}
		loaded, err := Read(&buf)
		if err != nil {
			t.Fatalf("%s: Read: %v", codec, err)
		}
		if loaded.Docs() != idx.Docs() || loaded.Terms() != idx.Terms() {
			t.Fatalf("%s: loaded index shape mismatch", codec)
		}
		and1, _ := idx.Conjunctive("compressed", "lists")
		and2, _ := loaded.Conjunctive("compressed", "lists")
		if !reflect.DeepEqual(and1, and2) {
			t.Fatalf("%s: query results differ after reload", codec)
		}
		top1, _ := idx.TopK(3, "compressed")
		top2, _ := loaded.TopK(3, "compressed")
		if !reflect.DeepEqual(top1, top2) {
			t.Fatalf("%s: top-k differs after reload", codec)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Read(bytes.NewReader([]byte("NOTANINDEX"))); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated valid stream.
	idx := buildTestIndex(t, "Roaring")
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	if _, err := Read(bytes.NewReader(blob[:len(blob)/2])); err == nil {
		t.Error("truncated index accepted")
	}
}
