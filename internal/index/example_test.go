package index_test

import (
	"fmt"
	"log"

	"repro/internal/codecs"
	"repro/internal/index"
)

// Example builds a tiny search index and runs the three §A.1 query
// kinds.
func Example() {
	codec, err := codecs.ByName("Roaring")
	if err != nil {
		log.Fatal(err)
	}
	b := index.NewBuilder(codec)
	b.AddDocument("compressed bitmap indexes")
	b.AddDocument("compressed inverted lists")
	b.AddDocument("bitmap and inverted list compression")
	idx, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	and, _ := idx.Conjunctive("compressed", "bitmap")
	or, _ := idx.Disjunctive("lists", "indexes")
	top, _ := idx.TopK(1, "compressed")
	fmt.Println("AND:", and)
	fmt.Println("OR:", or)
	fmt.Println("top doc:", top[0].Doc)
	// Output:
	// AND: [0]
	// OR: [0 1]
	// top doc: 0
}
