package index

import (
	"bytes"
	"encoding"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"reflect"
	"sort"
	"testing"

	"repro/internal/core"
)

// writeLegacy serializes idx in the unversioned seed format ("BVIX1",
// no version byte, no checksum) so tests can prove Read still accepts
// files written before the checksummed format existed.
func writeLegacy(t testing.TB, idx *Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.Write(legacyMagic)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(idx.docs))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(idx.terms)))
	buf.Write(hdr[:])
	names := make([]string, 0, len(idx.terms))
	for t := range idx.terms {
		names = append(names, t)
	}
	sort.Strings(names)
	for _, name := range names {
		e := idx.terms[name]
		var rec []byte
		rec = binary.LittleEndian.AppendUint16(rec, uint16(len(name)))
		rec = append(rec, name...)
		rec = binary.LittleEndian.AppendUint32(rec, uint32(len(e.freqs)))
		for _, f := range e.freqs {
			rec = binary.LittleEndian.AppendUint16(rec, f)
		}
		blob, err := e.posting.(encoding.BinaryMarshaler).MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		rec = binary.LittleEndian.AppendUint32(rec, uint32(len(blob)))
		rec = append(rec, blob...)
		buf.Write(rec)
	}
	return buf.Bytes()
}

// reseal recomputes the CRC trailer of a versioned file after a test
// mutated its body, keeping the mutation visible to the parser.
func reseal(file []byte) {
	body := file[len(indexMagic) : len(file)-4]
	binary.LittleEndian.PutUint32(file[len(file)-4:], crc32.Checksum(body, castagnoli))
}

func serialize(t testing.TB, idx *Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestVersionedFormatLayout(t *testing.T) {
	file := serialize(t, buildTestIndex(t, "Roaring"))
	if !bytes.HasPrefix(file, indexMagic) {
		t.Fatalf("file starts %q, want magic %q", file[:6], indexMagic)
	}
	if file[len(indexMagic)] != formatVersion {
		t.Fatalf("version byte = %d, want %d", file[len(indexMagic)], formatVersion)
	}
	body := file[len(indexMagic) : len(file)-4]
	want := binary.LittleEndian.Uint32(file[len(file)-4:])
	if got := crc32.Checksum(body, castagnoli); got != want {
		t.Fatalf("trailer crc %08x does not cover version+payload (computed %08x)", want, got)
	}
}

// TestReadRejectsBitFlips is the acceptance check for the checksum: a
// single flipped bit at ANY offset past the magic must surface as
// core.ErrChecksum; flips inside the magic must still be rejected.
func TestReadRejectsBitFlips(t *testing.T) {
	file := serialize(t, buildTestIndex(t, "Roaring"))
	for i := range file {
		mut := make([]byte, len(file))
		copy(mut, file)
		mut[i] ^= 0x01
		_, err := Read(bytes.NewReader(mut))
		if err == nil {
			t.Fatalf("flip at byte %d accepted", i)
		}
		if i >= len(indexMagic) && !errors.Is(err, core.ErrChecksum) {
			t.Fatalf("flip at byte %d: got %v, want ErrChecksum", i, err)
		}
	}
}

func TestReadLegacyFormat(t *testing.T) {
	idx := buildTestIndex(t, "Roaring")
	legacy := writeLegacy(t, idx)
	loaded, err := Read(bytes.NewReader(legacy))
	if err != nil {
		t.Fatalf("legacy read: %v", err)
	}
	if loaded.Docs() != idx.Docs() || loaded.Terms() != idx.Terms() {
		t.Fatalf("legacy shape: %d docs %d terms, want %d/%d",
			loaded.Docs(), loaded.Terms(), idx.Docs(), idx.Terms())
	}
	a, _ := idx.Conjunctive("compressed", "lists")
	b, _ := loaded.Conjunctive("compressed", "lists")
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("legacy query results differ: %v vs %v", a, b)
	}
	// Legacy files carry no checksum, so corruption is only caught when
	// it breaks decoding — but it must never panic.
	for i := len(legacyMagic); i < len(legacy); i++ {
		mut := make([]byte, len(legacy))
		copy(mut, legacy)
		mut[i] ^= 0x01
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("legacy flip at byte %d panicked: %v", i, r)
				}
			}()
			Read(bytes.NewReader(mut))
		}()
	}
}

func TestReadUnsupportedVersion(t *testing.T) {
	file := serialize(t, buildTestIndex(t, "VB"))
	file[len(indexMagic)] = 9 // future version
	reseal(file)              // valid checksum, so the version check is what fires
	_, err := Read(bytes.NewReader(file))
	if !errors.Is(err, core.ErrVersion) {
		t.Fatalf("got %v, want ErrVersion", err)
	}
}

func TestReadRejectsLyingCounts(t *testing.T) {
	file := serialize(t, buildTestIndex(t, "Roaring"))
	magicLen := len(indexMagic)

	// Term count claiming 4 billion terms in a tiny file: must fail on
	// the cheap arithmetic bound, not by allocating per declared count.
	huge := make([]byte, len(file))
	copy(huge, file)
	binary.LittleEndian.PutUint32(huge[magicLen+1+4:], 0xFFFFFFFF)
	reseal(huge)
	if _, err := Read(bytes.NewReader(huge)); err == nil || errors.Is(err, core.ErrChecksum) {
		t.Fatalf("huge term count: got %v, want a count-bound parse error", err)
	}

	// Trailing bytes after the declared terms (checksummed, so only a
	// buggy writer produces this): rejected, not silently ignored.
	trailing := append([]byte{}, file[:len(file)-4]...)
	trailing = append(trailing, 0xAB, 0, 0, 0, 0)
	reseal(trailing)
	if _, err := Read(bytes.NewReader(trailing)); err == nil {
		t.Fatal("trailing bytes accepted")
	}

	// Legacy path with a huge declared frequency count: the docs bound
	// rejects it before any allocation.
	idx := buildTestIndex(t, "Roaring")
	legacy := writeLegacy(t, idx)
	// First term record starts after magic+header; its freq count sits
	// after the u16 name length + name bytes.
	p := len(legacyMagic) + 8
	nameLen := int(binary.LittleEndian.Uint16(legacy[p:]))
	binary.LittleEndian.PutUint32(legacy[p+2+nameLen:], 0xFFFFFFF0)
	if _, err := Read(bytes.NewReader(legacy)); err == nil {
		t.Fatal("legacy huge freq count accepted")
	}
}

func TestReadTruncatedVersioned(t *testing.T) {
	file := serialize(t, buildTestIndex(t, "PEF"))
	for _, cut := range []int{len(indexMagic), len(indexMagic) + 1, len(file) / 2, len(file) - 1} {
		_, err := Read(bytes.NewReader(file[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
		if cut > len(indexMagic)+4 && !errors.Is(err, core.ErrChecksum) {
			t.Fatalf("truncation at %d: got %v, want ErrChecksum", cut, err)
		}
	}
}
