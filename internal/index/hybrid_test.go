package index

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/codecs"
	"repro/internal/core"
)

// hybridDocs extends the wide corpus with terms that pull the adaptive
// builder into every decision class: "the" in every doc (dense, one
// run), "data" in 2 of 5 docs (dense, scattered), "zz" piled into the
// first ten docs plus a far outlier (sparse, zipf-like); the w#### tail
// terms stay sparse and spread (SIMDBP128*).
func hybridDocs(n int) []string {
	docs := wideDocs(n)
	for i := range docs {
		docs[i] = "the " + docs[i]
		if i%5 == 0 || i%5 == 2 {
			docs[i] += " data"
		}
		if i < 10 || i == n-1 {
			docs[i] += " zz"
		}
	}
	return docs
}

func buildAutoIndex(t testing.TB, shards int) *Index {
	t.Helper()
	b := NewAutoBuilder()
	b.SetShards(shards)
	for _, d := range hybridDocs(400) {
		b.AddDocument(d)
	}
	idx, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func TestAutoBuildCodecMix(t *testing.T) {
	idx := buildAutoIndex(t, 1)
	for term, want := range map[string]string{
		"the":  "Roaring+Run",
		"data": "Roaring",
		"zz":   "SIMDPforDelta*",
	} {
		if got := idx.TermCodec(term); got != want {
			t.Errorf("TermCodec(%q) = %q, want %q", term, got, want)
		}
	}
	mix := idx.CodecMix()
	for _, name := range []string{"Roaring+Run", "Roaring", "SIMDPforDelta*", "SIMDBP128*"} {
		if mix[name] == 0 {
			t.Errorf("codec mix %v missing %s", mix, name)
		}
	}
}

// TestAutoBuildShardIdentity: selection is a pure function of the
// final merged list, so the serialized index must be byte-identical
// for any shard count.
func TestAutoBuildShardIdentity(t *testing.T) {
	want := serialize3(t, buildAutoIndex(t, 1))
	for _, shards := range []int{2, 3, 8} {
		got := serialize3(t, buildAutoIndex(t, shards))
		if !bytes.Equal(got, want) {
			t.Fatalf("auto build with %d shards differs from 1-shard build (%d vs %d bytes)",
				shards, len(got), len(want))
		}
	}
}

// TestAutoBuildQueryEquivalence: the hybrid index must answer exactly
// like a mono-codec index over the same corpus — in memory, through a
// BVIX3 reopen, and through a BVIX2 reopen.
func TestAutoBuildQueryEquivalence(t *testing.T) {
	auto := buildAutoIndex(t, 1)
	codec, err := codecs.ByName("Roaring")
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(codec)
	for _, d := range hybridDocs(400) {
		b.AddDocument(d)
	}
	mono, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	lazy := openLazy(t, auto)
	defer lazy.Close()
	p2 := filepath.Join(t.TempDir(), "idx.bvix2")
	if err := auto.WriteFile(p2, FormatBVIX2); err != nil {
		t.Fatal(err)
	}
	v2, err := OpenFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()

	queries := [][]string{
		{"the", "data"}, {"the", "zz"}, {"data", "w0001"},
		{"w0001", "w0002"}, {"the", "data", "zz"},
	}
	for _, q := range queries {
		want, err := mono.Conjunctive(q...)
		if err != nil {
			t.Fatal(err)
		}
		for name, idx := range map[string]*Index{"auto": auto, "bvix3": lazy, "bvix2": v2} {
			got, err := idx.Conjunctive(q...)
			if err != nil {
				t.Fatalf("%s: AND%v: %v", name, q, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: AND%v = %v, want %v", name, q, got, want)
			}
			gotOr, err := idx.Disjunctive(q...)
			if err != nil {
				t.Fatalf("%s: OR%v: %v", name, q, err)
			}
			wantOr, err := mono.Disjunctive(q...)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotOr, wantOr) {
				t.Fatalf("%s: OR%v = %v, want %v", name, q, gotOr, wantOr)
			}
		}
	}
}

// TestHybridCodecPersistence: the per-term codec survives the BVIX3
// write/reopen cycle, readable from the dict bytes alone.
func TestHybridCodecPersistence(t *testing.T) {
	idx := buildAutoIndex(t, 1)
	lazy := openLazy(t, idx)
	defer lazy.Close()
	if got, want := lazy.CodecMix(), idx.CodecMix(); !reflect.DeepEqual(got, want) {
		t.Fatalf("reopened codec mix %v, want %v", got, want)
	}
	for _, term := range []string{"the", "data", "zz", "w0001"} {
		if got, want := lazy.TermCodec(term), idx.TermCodec(term); got != want {
			t.Errorf("reopened TermCodec(%q) = %q, want %q", term, got, want)
		}
	}
}

// resealDict recomputes the dict section CRC and the header CRC after a
// test mutated dict bytes, so the walk-level validation is reachable.
func resealDict(file []byte) {
	secs := sectionOffsets(file)
	binary.LittleEndian.PutUint32(file[24+16:],
		crc32.Checksum(file[secs[0][0]:secs[0][0]+secs[0][1]], castagnoli))
	reseal3Header(file)
}

// codecByteOffsets returns every record's codec-byte file offset,
// computed from the pristine file (parseBVIX3 validates CRCs, so
// offsets must be collected before any mutation).
func codecByteOffsets(t *testing.T, file []byte) []uint64 {
	t.Helper()
	offs, recs := dictRecordOffsets(t, file)
	secs := sectionOffsets(file)
	out := make([]uint64, len(offs))
	for k := range offs {
		out[k] = secs[0][0] + uint64(offs[k]) + 2 + uint64(len(recs[k].name)) + 20
	}
	return out
}

// TestBVIX3CodecByteOutOfRange: a codec byte above the registry is a
// walk violation. With CRCs resealed (the byte itself is the damage)
// every open path refuses with core.ErrBadFormat — a violation behind
// intact checksums is beyond what degraded mode may reason about. With
// the dict CRC left stale, degraded open cuts the dict at the bad
// record and serves the prefix.
func TestBVIX3CodecByteOutOfRange(t *testing.T) {
	idx := buildAutoIndex(t, 1)
	pristine := serialize3(t, idx)
	offs, _ := dictRecordOffsets(t, pristine)
	byteOffs := codecByteOffsets(t, pristine)
	k := len(offs) / 2

	// Resealed: the byte is the only damage, all checksums valid.
	file := append([]byte(nil), pristine...)
	file[byteOffs[k]] = codecs.MaxID() + 7
	resealDict(file)
	if _, err := OpenFile(writeTemp3(t, file)); !errors.Is(err, core.ErrBadFormat) {
		t.Fatalf("strict open: got %v, want ErrBadFormat", err)
	}
	if _, err := Read(bytes.NewReader(file)); !errors.Is(err, core.ErrBadFormat) {
		t.Fatalf("eager read: got %v, want ErrBadFormat", err)
	}
	if _, err := OpenFileDegraded(writeTemp3(t, file)); err == nil {
		t.Fatal("degraded open accepted a walk violation behind intact checksums")
	}

	// Stale dict CRC: classic corruption — degraded open salvages the
	// prefix before the bad record.
	file = append([]byte(nil), pristine...)
	file[byteOffs[k]] = codecs.MaxID() + 7
	got, err := OpenFileDegraded(writeTemp3(t, file))
	if err != nil {
		t.Fatalf("degraded open: %v", err)
	}
	defer got.Close()
	h := got.Health()
	if !h.Degraded || h.QuarantinedTerms != len(offs)-k {
		t.Fatalf("health = %+v, want %d quarantined terms", h, len(offs)-k)
	}
	if got.Terms() != k {
		t.Fatalf("served %d terms, want prefix of %d", got.Terms(), k)
	}
}

// TestBVIX3CodecByteMismatch: a codec byte that names a registry codec
// other than the blob's passes the dict walk but is caught at
// materialize time — eager reads fail with core.ErrBadFormat; a lazy
// open serves every other term and reports the poisoned one absent.
func TestBVIX3CodecByteMismatch(t *testing.T) {
	idx := buildAutoIndex(t, 1)
	file := serialize3(t, idx)
	offs, recs := dictRecordOffsets(t, file)
	k := len(offs) / 3
	name := string(recs[k].name)
	wrong := recs[k].codec%codecs.MaxID() + 1 // valid ID, != recs[k].codec
	if wrong == recs[k].codec {
		t.Fatal("fixture bug: wrong ID equals original")
	}
	file[codecByteOffsets(t, file)[k]] = wrong
	resealDict(file)

	if _, err := Read(bytes.NewReader(file)); !errors.Is(err, core.ErrBadFormat) {
		t.Fatalf("eager read: got %v, want ErrBadFormat", err)
	}
	got, err := OpenFile(writeTemp3(t, file))
	if err != nil {
		t.Fatalf("lazy open: %v", err)
	}
	defer got.Close()
	if len(idx.DecodedPostings(name)) == 0 {
		t.Fatalf("fixture bug: term %q empty before poisoning", name)
	}
	if ps := got.DecodedPostings(name); len(ps) != 0 {
		t.Fatalf("poisoned term %q served postings %v", name, ps)
	}
	other := string(recs[0].name)
	if ps := got.DecodedPostings(other); !reflect.DeepEqual(ps, idx.DecodedPostings(other)) {
		t.Fatalf("healthy term %q served wrong postings", other)
	}
}

// TestBVIX3ZeroCodecByteLegal: 0 (unspecified) is legal everywhere —
// pre-adaptive writers never recorded a codec.
func TestBVIX3ZeroCodecByteLegal(t *testing.T) {
	idx := buildAutoIndex(t, 1)
	file := serialize3(t, idx)
	offs, _ := dictRecordOffsets(t, file)
	for _, off := range codecByteOffsets(t, file) {
		file[off] = 0
	}
	resealDict(file)

	p := writeTemp3(t, file)
	got, err := OpenFile(p)
	if err != nil {
		t.Fatalf("strict open rejected zero codec bytes: %v", err)
	}
	defer got.Close()
	want, err := idx.Conjunctive("the", "data")
	if err != nil {
		t.Fatal(err)
	}
	res, err := got.Conjunctive("the", "data")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, want) {
		t.Fatalf("zero-codec-byte index answered %v, want %v", res, want)
	}
	// The codec is still identifiable from the blob at materialize time.
	if c := got.TermCodec("the"); c != "Roaring+Run" {
		t.Errorf("TermCodec with zero byte = %q, want blob-identified Roaring+Run", c)
	}
	// But the dict-bytes-only mix reports them unrecorded.
	if mix := got.CodecMix(); mix[""] != len(offs) {
		t.Errorf("codec mix %v, want all %d terms unrecorded", mix, len(offs))
	}
}
