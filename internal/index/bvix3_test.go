package index

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/codecs"
	"repro/internal/core"
)

// serialize3 captures WriteBVIX3 output.
func serialize3(t testing.TB, idx *Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	n, err := idx.WriteBVIX3(&buf)
	if err != nil {
		t.Fatalf("WriteBVIX3: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteBVIX3 reported %d bytes, wrote %d", n, buf.Len())
	}
	return buf.Bytes()
}

// openLazy writes idx as BVIX3 to a temp file and opens it through the
// mmap-backed lazy path.
func openLazy(t testing.TB, idx *Index) *Index {
	t.Helper()
	p := filepath.Join(t.TempDir(), "idx.bvix3")
	if err := os.WriteFile(p, serialize3(t, idx), 0o644); err != nil {
		t.Fatal(err)
	}
	lazy, err := OpenFile(p)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	return lazy
}

// reseal3Header recomputes the header checksum after a test mutated
// header bytes, so deeper validation layers stay reachable.
func reseal3Header(file []byte) {
	binary.LittleEndian.PutUint32(file[bvix3HeaderSize-4:],
		crc32.Checksum(file[len(bvix3Magic):bvix3HeaderSize-4], castagnoli))
}

// wideDocs builds a corpus whose vocabulary spans several skip frames
// (well over bvix3FrameLen terms) with repeated words for frequency
// payloads.
func wideDocs(n int) []string {
	rng := rand.New(rand.NewSource(7))
	docs := make([]string, n)
	for d := range docs {
		var sb strings.Builder
		for j := 0; j < 12; j++ {
			w := fmt.Sprintf("w%04d", rng.Intn(5*bvix3FrameLen))
			rep := 1 + rng.Intn(3)
			for r := 0; r < rep; r++ {
				sb.WriteString(w)
				sb.WriteByte(' ')
			}
		}
		docs[d] = sb.String()
	}
	return docs
}

func buildWideIndex(t testing.TB, codecName string, shards int) *Index {
	t.Helper()
	codec, err := codecs.ByName(codecName)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(codec)
	b.SetShards(shards)
	for _, d := range wideDocs(400) {
		b.AddDocument(d)
	}
	idx, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func TestBVIX3RoundTrip(t *testing.T) {
	for _, codecName := range []string{"Roaring", "PEF", "VB", "WAH"} {
		idx := buildTestIndex(t, codecName)
		file := serialize3(t, idx)

		eager, err := Read(bytes.NewReader(file))
		if err != nil {
			t.Fatalf("%s: eager Read: %v", codecName, err)
		}
		if eager.SizeBytes() != idx.SizeBytes() {
			t.Fatalf("%s: eager SizeBytes %d, want %d", codecName, eager.SizeBytes(), idx.SizeBytes())
		}
		lazy := openLazy(t, idx)
		if lazy.SizeBytes() < idx.SizeBytes() {
			t.Fatalf("%s: lazy SizeBytes %d below in-memory %d", codecName, lazy.SizeBytes(), idx.SizeBytes())
		}
		for _, loaded := range []*Index{eager, lazy} {
			if loaded.Docs() != idx.Docs() || loaded.Terms() != idx.Terms() {
				t.Fatalf("%s: loaded shape %d/%d, want %d/%d", codecName,
					loaded.Docs(), loaded.Terms(), idx.Docs(), idx.Terms())
			}
			and1, _ := idx.Conjunctive("compressed", "lists")
			and2, _ := loaded.Conjunctive("compressed", "lists")
			if !reflect.DeepEqual(and1, and2) {
				t.Fatalf("%s: conjunctive differs after reload: %v vs %v", codecName, and1, and2)
			}
			top1, _ := idx.TopK(3, "compressed")
			top2, _ := loaded.TopK(3, "compressed")
			if !reflect.DeepEqual(top1, top2) {
				t.Fatalf("%s: top-k differs after reload", codecName)
			}
		}
		if err := lazy.Close(); err != nil {
			t.Fatalf("%s: Close: %v", codecName, err)
		}
	}
}

// TestBVIX3ByteIdenticalAcrossShards is the determinism property the
// parallel build promises: any shard count produces the same file,
// byte for byte.
func TestBVIX3ByteIdenticalAcrossShards(t *testing.T) {
	ref := serialize3(t, buildWideIndex(t, "Roaring", 1))
	for _, shards := range []int{2, 3, 5, 8, 0} {
		got := serialize3(t, buildWideIndex(t, "Roaring", shards))
		if !bytes.Equal(ref, got) {
			t.Fatalf("shards=%d produced different bytes (%d vs %d)", shards, len(got), len(ref))
		}
	}
	// And the BVIX2 writer stays deterministic through the same builder.
	var a, b bytes.Buffer
	if _, err := buildWideIndex(t, "Roaring", 1).WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := buildWideIndex(t, "Roaring", 4).WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("BVIX2 output differs across shard counts")
	}
}

// TestBVIX3LazyEquivalence exercises the skip-frame lookup across a
// multi-frame dictionary: every indexed term materializes to the same
// postings as the in-memory index, and probes before, between, and
// after dictionary entries come back absent.
func TestBVIX3LazyEquivalence(t *testing.T) {
	idx := buildWideIndex(t, "Roaring", 3)
	if idx.Terms() <= 2*bvix3FrameLen {
		t.Fatalf("corpus too narrow for a multi-frame test: %d terms", idx.Terms())
	}
	lazy := openLazy(t, idx)
	defer lazy.Close()
	names, _, err := idx.sortedEntries()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		want := idx.DecodedPostings(name)
		got := lazy.DecodedPostings(name)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("term %q: lazy %v, want %v", name, got, want)
		}
		// Second hit serves the memoized entry.
		if again := lazy.DecodedPostings(name); !reflect.DeepEqual(want, again) {
			t.Fatalf("term %q: memoized lookup diverged", name)
		}
	}
	for _, probe := range []string{"", "a-before-everything", "w0000x", "zzzz-after-everything"} {
		if got := lazy.DecodedPostings(probe); len(got) != 0 {
			t.Fatalf("probe %q: got %d postings, want absent", probe, len(got))
		}
	}
}

func TestBVIX3LazyConcurrent(t *testing.T) {
	idx := buildWideIndex(t, "Roaring", 2)
	lazy := openLazy(t, idx)
	defer lazy.Close()
	names, _, err := idx.sortedEntries()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				name := names[rng.Intn(len(names))]
				if got := lazy.DecodedPostings(name); len(got) == 0 {
					t.Errorf("term %q: empty decode", name)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	// SizeBytes is fixed at open time; concurrent materialization must
	// not perturb it.
	if a, b := lazy.SizeBytes(), lazy.SizeBytes(); a != b || a <= 0 {
		t.Fatalf("SizeBytes unstable under concurrency: %d vs %d", a, b)
	}
}

// TestBVIX3RejectsBitFlips: every byte of the file is covered by a
// check. Flips inside the magic fail magic validation; flips in any
// padding byte fail the zeros check; flips anywhere else surface as
// core.ErrChecksum.
func TestBVIX3RejectsBitFlips(t *testing.T) {
	file := serialize3(t, buildTestIndex(t, "Roaring"))
	for i := range file {
		mut := make([]byte, len(file))
		copy(mut, file)
		mut[i] ^= 0x01
		_, err := Read(bytes.NewReader(mut))
		if err == nil {
			t.Fatalf("flip at byte %d accepted", i)
		}
		if i == len(bvix3Magic) && errors.Is(err, core.ErrVersion) {
			continue // the version byte gates the header layout, so it is checked pre-CRC
		}
		if i >= len(bvix3Magic) && !errors.Is(err, core.ErrChecksum) &&
			!strings.Contains(err.Error(), "padding") {
			t.Fatalf("flip at byte %d: got %v, want ErrChecksum or a padding error", i, err)
		}
	}
}

func TestBVIX3TruncationAndTrailing(t *testing.T) {
	file := serialize3(t, buildTestIndex(t, "PEF"))
	for _, cut := range []int{0, 4, len(bvix3Magic), bvix3HeaderSize - 1, bvix3HeaderSize, bvix3DataStart, len(file) / 2, len(file) - 1} {
		if _, err := Read(bytes.NewReader(file[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
		if _, err := openBVIX3Lazy(file[:cut], nil); err == nil {
			t.Fatalf("lazy open of truncation at %d accepted", cut)
		}
	}
	trailing := append(append([]byte{}, file...), 0)
	if _, err := Read(bytes.NewReader(trailing)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestBVIX3UnsupportedVersion(t *testing.T) {
	file := serialize3(t, buildTestIndex(t, "VB"))
	file[len(bvix3Magic)] = 9
	reseal3Header(file)
	_, err := Read(bytes.NewReader(file))
	if !errors.Is(err, core.ErrVersion) {
		t.Fatalf("got %v, want ErrVersion", err)
	}
}

// TestBVIX3LyingSections mutates section-table fields (resealing the
// header checksum so the geometry checks are what fire) and dict
// counts; all must be rejected without panicking.
func TestBVIX3LyingSections(t *testing.T) {
	pristine := serialize3(t, buildTestIndex(t, "Roaring"))

	mutate := func(name string, f func(file []byte)) {
		file := append([]byte{}, pristine...)
		f(file)
		reseal3Header(file)
		if _, err := Read(bytes.NewReader(file)); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
	mutate("misaligned dict offset", func(file []byte) {
		binary.LittleEndian.PutUint64(file[24:], bvix3DataStart+8)
	})
	mutate("dict length overrunning file", func(file []byte) {
		binary.LittleEndian.PutUint64(file[24+8:], uint64(len(file)))
	})
	mutate("huge term count", func(file []byte) {
		binary.LittleEndian.PutUint32(file[12:], 0xFFFFFFFF)
	})
	mutate("zero frame length with terms", func(file []byte) {
		binary.LittleEndian.PutUint32(file[16:], 0)
	})
	mutate("wrong section count", func(file []byte) {
		binary.LittleEndian.PutUint32(file[20:], 4)
	})
	mutate("payload length lying short", func(file []byte) {
		binary.LittleEndian.PutUint64(file[24+2*20+8:], 8)
	})
}

func TestBVIX3SectionAlignment(t *testing.T) {
	file := serialize3(t, buildWideIndex(t, "Roaring", 1))
	g, err := parseBVIX3(file)
	if err != nil {
		t.Fatal(err)
	}
	for i, sec := range []struct {
		off uint64
	}{
		{binary.LittleEndian.Uint64(file[24:])},
		{binary.LittleEndian.Uint64(file[24+20:])},
		{binary.LittleEndian.Uint64(file[24+40:])},
	} {
		if sec.off%bvix3Align != 0 {
			t.Fatalf("section %d offset %d not %d-aligned", i, sec.off, bvix3Align)
		}
	}
	// Every payload record the dict names starts 8-aligned.
	cur := 0
	for i := 0; i < g.terms; i++ {
		rec, err := parseDictRecord(g.dict, cur)
		if err != nil {
			t.Fatal(err)
		}
		if rec.payOff%bvix3RecAlign != 0 {
			t.Fatalf("term %q payload offset %d not %d-aligned", rec.name, rec.payOff, bvix3RecAlign)
		}
		cur = rec.next
	}
}

func TestBVIX3EmptyIndex(t *testing.T) {
	b := NewBuilder(codecs.All()[0])
	idx, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	file := serialize3(t, idx)
	loaded, err := Read(bytes.NewReader(file))
	if err != nil {
		t.Fatalf("empty index rejected: %v", err)
	}
	if loaded.Docs() != 0 || loaded.Terms() != 0 || loaded.SizeBytes() != 0 {
		t.Fatalf("empty index shape: %d/%d/%d", loaded.Docs(), loaded.Terms(), loaded.SizeBytes())
	}
	lazy, err := openBVIX3Lazy(file, nil)
	if err != nil {
		t.Fatalf("lazy open of empty index: %v", err)
	}
	if got := lazy.DecodedPostings("anything"); len(got) != 0 {
		t.Fatalf("empty lazy index returned postings: %v", got)
	}
}

// TestBVIX3FormatConversion proves WriteTo/WriteBVIX3 on a lazily
// opened index materialize through the mapping: BVIX3 → BVIX2 → BVIX3
// reproduces the original file byte for byte.
func TestBVIX3FormatConversion(t *testing.T) {
	for _, codecName := range []string{"Roaring", "VB"} {
		orig := serialize3(t, buildWideIndex(t, codecName, 2))
		lazy, err := openBVIX3Lazy(orig, nil)
		if err != nil {
			t.Fatal(err)
		}
		var asV2 bytes.Buffer
		if _, err := lazy.WriteTo(&asV2); err != nil {
			t.Fatalf("%s: WriteTo from lazy: %v", codecName, err)
		}
		back, err := Read(bytes.NewReader(asV2.Bytes()))
		if err != nil {
			t.Fatalf("%s: re-read BVIX2: %v", codecName, err)
		}
		if got := serialize3(t, back); !bytes.Equal(got, orig) {
			t.Fatalf("%s: conversion cycle changed bytes (%d vs %d)", codecName, len(got), len(orig))
		}
	}
}

// TestBVIX3CloseSemantics pins the documented ownership rules: Close
// is idempotent, already-materialized postings stay readable, and
// un-materialized terms become absent rather than faulting.
func TestBVIX3CloseSemantics(t *testing.T) {
	idx := buildTestIndex(t, "Roaring")
	lazy := openLazy(t, idx)
	hot := lazy.DecodedPostings("compressed")
	if len(hot) == 0 {
		t.Fatal("expected postings for a known term")
	}
	if err := lazy.Close(); err != nil {
		t.Fatal(err)
	}
	if err := lazy.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if got := lazy.DecodedPostings("compressed"); !reflect.DeepEqual(got, hot) {
		t.Fatal("materialized posting unreadable after Close")
	}
	if got := lazy.DecodedPostings("lists"); len(got) != 0 {
		t.Fatal("un-materialized term should be absent after Close")
	}
	if _, _, err := lazy.sortedEntries(); err == nil {
		t.Fatal("sortedEntries should fail on a closed lazy index")
	}
}
