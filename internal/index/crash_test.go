package index

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/faultio"
)

// fingerprint summarizes an index for old-vs-new identification in the
// crash matrix: shape plus the decoded postings of a probe set.
type fingerprint struct {
	docs, terms int
	probes      map[string][]uint32
}

func fingerprintOf(idx *Index, probes []string) fingerprint {
	fp := fingerprint{docs: idx.Docs(), terms: idx.Terms(), probes: map[string][]uint32{}}
	for _, p := range probes {
		fp.probes[p] = idx.DecodedPostings(p)
	}
	return fp
}

func (fp fingerprint) equal(other fingerprint) bool {
	return fp.docs == other.docs && fp.terms == other.terms &&
		reflect.DeepEqual(fp.probes, other.probes)
}

// TestCrashConsistencyMatrix is the acceptance gate for WriteFile: for
// every operation in the atomic-publish protocol, kill the writer at
// that operation (all later I/O fails, as a dead process's would) and
// assert that opening the destination afterwards yields either the
// intact previous generation or the complete new one — never a torn
// state, an error, or a panic. Torn writes at several byte offsets of
// every write op are part of the matrix.
func TestCrashConsistencyMatrix(t *testing.T) {
	oldIdx := buildTestIndex(t, "Roaring")
	newIdx := buildWideIndex(t, "Roaring", 1)
	probes := []string{"compressed", "lists", "w0001", "w0042"}
	oldFP := fingerprintOf(oldIdx, probes)
	newFP := fingerprintOf(newIdx, probes)
	if oldFP.equal(newFP) {
		t.Fatal("old and new indexes must be distinguishable")
	}

	for _, format := range []Format{FormatBVIX3, FormatBVIX2} {
		format := format
		t.Run(string(format), func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "idx")

			// Learn the op trace of a clean publish (into a scratch dir so
			// the real destination starts untouched).
			trace, err := faultio.Record(faultio.OS, func(fs faultio.FS) error {
				return newIdx.writeFileFS(fs, filepath.Join(t.TempDir(), "scratch"), format)
			})
			if err != nil {
				t.Fatalf("clean publish failed: %v", err)
			}
			if len(trace) < 5 {
				t.Fatalf("publish protocol ran only %d ops: %v", len(trace), trace)
			}

			reset := func() {
				if err := oldIdx.WriteFile(path, format); err != nil {
					t.Fatalf("seeding previous generation: %v", err)
				}
			}
			check := func(point string) {
				got, err := OpenFile(path)
				if err != nil {
					t.Fatalf("%s: open after crash failed: %v", point, err)
				}
				defer got.Close()
				fp := fingerprintOf(got, probes)
				if !fp.equal(oldFP) && !fp.equal(newFP) {
					t.Fatalf("%s: post-crash index is neither old nor new generation (docs=%d terms=%d)",
						point, fp.docs, fp.terms)
				}
				// Recovery: a clean retry must always land the new index.
				if err := newIdx.WriteFile(path, format); err != nil {
					t.Fatalf("%s: retry publish failed: %v", point, err)
				}
				after, err := OpenFile(path)
				if err != nil {
					t.Fatalf("%s: open after retry failed: %v", point, err)
				}
				defer after.Close()
				if !fingerprintOf(after, probes).equal(newFP) {
					t.Fatalf("%s: retry did not converge on the new generation", point)
				}
			}

			// Kill point at every op in the protocol.
			for n := 1; n <= len(trace); n++ {
				reset()
				in := faultio.NewInjector(faultio.OS,
					faultio.Fault{Op: faultio.OpAny, N: n, Mode: faultio.ModeErr, Kill: true})
				if err := newIdx.writeFileFS(in, path, format); err == nil {
					t.Fatalf("kill point %d: publish reported success", n)
				} else if !errors.Is(err, faultio.ErrInjected) && !errors.Is(err, faultio.ErrKilled) {
					t.Fatalf("kill point %d: unexpected error %v", n, err)
				}
				check(trace[n-1].Op.String())
			}

			// Torn-write points: each write op dies after 0, 1, half, and
			// len-1 bytes — the section boundaries of the format plus torn
			// interiors.
			writeIdx := 0
			for _, rec := range trace {
				if rec.Op != faultio.OpWrite {
					continue
				}
				writeIdx++
				for _, k := range []int{0, 1, rec.Bytes / 2, rec.Bytes - 1} {
					if k < 0 {
						continue
					}
					reset()
					in := faultio.NewInjector(faultio.OS,
						faultio.Fault{Op: faultio.OpWrite, N: writeIdx, Mode: faultio.ModeTorn, TornBytes: k, Kill: true})
					if err := newIdx.writeFileFS(in, path, format); err == nil {
						t.Fatalf("torn write %d at %d bytes: publish reported success", writeIdx, k)
					}
					check("torn-write")
				}
			}
		})
	}
}

// TestWriteFileCleansTempOnFailure: a failed publish must not leave
// the temp file behind to confuse the next generation's publish.
func TestWriteFileCleansTempOnFailure(t *testing.T) {
	idx := buildTestIndex(t, "Roaring")
	dir := t.TempDir()
	path := filepath.Join(dir, "idx")
	in := faultio.NewInjector(faultio.OS,
		faultio.Fault{Op: faultio.OpSync, N: 1, Mode: faultio.ModeErr})
	if err := idx.writeFileFS(in, path, FormatBVIX3); err == nil {
		t.Fatal("publish should have failed")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("failed publish left %d entries behind: %v", len(entries), entries)
	}
}

// TestWriteFileSurvivesInFlightBitFlip: a bit flipped between the
// writer and the disk lands in the published file, but the checksums
// catch it at open — the flip cannot be served as silently-wrong data.
func TestWriteFileSurvivesInFlightBitFlip(t *testing.T) {
	idx := buildWideIndex(t, "Roaring", 1)
	for _, format := range []Format{FormatBVIX3, FormatBVIX2} {
		path := filepath.Join(t.TempDir(), "idx")
		in := faultio.NewInjector(faultio.OS,
			faultio.Fault{Op: faultio.OpWrite, N: 1, Mode: faultio.ModeFlip, FlipBit: 16*8 + 3})
		if err := idx.writeFileFS(in, path, format); err != nil {
			t.Fatalf("%s: flip publish failed: %v", format, err)
		}
		if _, err := OpenFile(path); err == nil {
			t.Fatalf("%s: bit-flipped index opened cleanly", format)
		}
	}
}

func TestWriteFileUnknownFormat(t *testing.T) {
	idx := buildTestIndex(t, "Roaring")
	if err := idx.WriteFile(filepath.Join(t.TempDir(), "x"), Format("bvix9")); err == nil {
		t.Fatal("unknown format accepted")
	}
}
