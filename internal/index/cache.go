package index

import (
	"container/list"
	"sync"
)

// DecodedCache is a size-bounded, generation-aware LRU of decoded
// posting lists: hot terms skip decompression entirely on repeat
// queries. Entries are keyed by (generation, term), where a generation
// identifies one Index attachment — a hot-reloaded index gets a fresh
// generation, so entries decoded from the previous index can never be
// served against the new one, even while in-flight requests still hold
// the old snapshot. The cache is safe for concurrent use.
//
// Ownership rule: slices returned by the cache (through
// Index.DecodedPostings) are shared and strictly read-only. Callers
// that need to mutate must copy.
type DecodedCache struct {
	mu       sync.Mutex
	maxBytes int
	curBytes int
	entries  map[cacheKey]*list.Element
	lru      *list.List // front = most recently used

	nextGen uint64
	hits    int64
	misses  int64
}

type cacheKey struct {
	gen  uint64
	term string
}

type cacheEntry struct {
	key  cacheKey
	vals []uint32
}

// entryBytes approximates an entry's footprint: the values plus map,
// list-element, and key overhead.
func (e *cacheEntry) bytes() int { return 4*len(e.vals) + len(e.key.term) + 96 }

// NewDecodedCache returns a cache bounded to roughly maxBytes of
// decoded postings. maxBytes <= 0 yields a cache that stores nothing
// (every lookup misses), which keeps call sites branch-free.
func NewDecodedCache(maxBytes int) *DecodedCache {
	return &DecodedCache{
		maxBytes: maxBytes,
		entries:  map[cacheKey]*list.Element{},
		lru:      list.New(),
	}
}

// register allocates a fresh generation for an attaching index.
func (c *DecodedCache) register() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextGen++
	return c.nextGen
}

// get returns the cached decode for (gen, term) and marks it most
// recently used.
func (c *DecodedCache) get(gen uint64, term string) ([]uint32, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[cacheKey{gen, term}]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).vals, true
}

// put stores a decode, evicting least-recently-used entries until the
// byte budget holds. Values larger than the whole budget are not cached
// (they would evict everything for a single entry).
func (c *DecodedCache) put(gen uint64, term string, vals []uint32) {
	e := &cacheEntry{key: cacheKey{gen, term}, vals: vals}
	if c.maxBytes <= 0 || e.bytes() > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[e.key]; ok {
		// Another goroutine decoded the same term concurrently; keep the
		// existing entry so all callers converge on one shared slice.
		c.lru.MoveToFront(el)
		return
	}
	c.entries[e.key] = c.lru.PushFront(e)
	c.curBytes += e.bytes()
	for c.curBytes > c.maxBytes {
		c.removeLocked(c.lru.Back())
	}
}

func (c *DecodedCache) removeLocked(el *list.Element) {
	if el == nil {
		return
	}
	e := el.Value.(*cacheEntry)
	c.lru.Remove(el)
	delete(c.entries, e.key)
	c.curBytes -= e.bytes()
}

// DropOtherGenerations evicts every entry whose generation differs from
// keep — the hot-reload invalidation hook: after a new index registers,
// the previous index's decodes are dead weight and are dropped eagerly
// rather than waiting for LRU pressure.
func (c *DecodedCache) DropOtherGenerations(keep uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.lru.Back(); el != nil; {
		prev := el.Prev()
		if el.Value.(*cacheEntry).key.gen != keep {
			c.removeLocked(el)
		}
		el = prev
	}
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Entries int   `json:"entries"`
	Bytes   int   `json:"bytes"`
}

// Stats reports hit/miss counters and current occupancy.
func (c *DecodedCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: len(c.entries), Bytes: c.curBytes}
}
