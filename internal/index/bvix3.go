package index

import (
	"bytes"
	"encoding"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"sync"

	"repro/internal/codecs"
	"repro/internal/core"
	"repro/internal/index/mapfile"
)

// BVIX3 is the serving-oriented on-disk index format: section-aligned,
// length-prefixed, CRC-checked segments laid out so a file can be
// opened zero-copy from an mmap and queried before any posting is
// decoded. Version 3 files carry three sections (dict, frames,
// payload); version 4 files append an optional fourth — the impacts
// section — carrying quantized ranking impacts and per-block maxima
// for Block-Max pruning. Impact-less writes stay byte-identical to
// version 3, and readers accept both.
//
// File layout (little-endian throughout; S = section count, 3 or 4):
//
//	[0,5)    magic "BVIX3"
//	[5]      format version (3 = no impacts, 4 = impacts section)
//	[6,8)    zero padding
//	[8,12)   document count u32
//	[12,16)  term count u32
//	[16,20)  skip-frame length u32 (terms per frame; writer uses 64)
//	[20,24)  section count u32 (3 for v3, 4 for v4)
//	[24,24+20S)   section table: S × { off u64, len u64, crc32c u32 }
//	              in file order dict, frames, payload[, impacts];
//	              offsets absolute
//	[24+20S,+4)   crc32c over bytes [5,24+20S) — the header checksum
//	[…,128)       zero padding to the 64-byte-aligned dict section
//
// Sections, each 64-byte aligned with zero padding between them:
//
//	dict:    per term, sorted by name: nameLen u16, name bytes,
//	         posting count u32, payload offset u64 (relative to the
//	         payload section), posting blob length u32, payload record
//	         CRC32-C u32 (over the blob plus frequency bytes), codec
//	         byte u8 (v3; the registry ID of the posting's codec per
//	         codecs.IDByName, 0 = unspecified — the adaptive builder's
//	         per-term selection persisted without decoding a blob).
//	         The per-record CRC is what makes degraded-mode salvage
//	         sound: when the payload section's CRC fails, a term is
//	         served only if its own record still checksums — corrupt
//	         bytes that would decode "cleanly" into plausible garbage
//	         are quarantined instead of served. Codec bytes above
//	         codecs.MaxID are rejected (core.ErrBadFormat in strict
//	         opens, quarantine in degraded ones); a non-zero byte must
//	         also match the blob it describes, checked at materialize
//	         time.
//	frames:  one u64 per skip frame — the dict-relative offset of the
//	         frame's first record. Lookup binary-searches the frames on
//	         their first term (read zero-copy out of the dict) and
//	         scans at most frameLen records, so no per-term table is
//	         ever materialized on the heap.
//	payload: per term, in dict order and 8-byte aligned: the posting's
//	         self-describing compressed blob, then the u16 frequency
//	         payload (2 × count bytes). Records tile the section
//	         exactly — open re-derives every record boundary and
//	         rejects files whose dict disagrees with the payload.
//	impacts: (v4 only) a per-term u64 offset table (term count × 8
//	         bytes, dict order, impacts-section-relative), then one
//	         8-byte-aligned impact record per term tiling the rest of
//	         the section. See impacts.go for the record layout, the
//	         quantization scheme, and the per-record CRC that makes
//	         degraded opens quarantine a corrupt impacts section
//	         without losing the docid postings.
//
// Every byte of the file is covered by a check: the magic by equality,
// the header by its CRC, each section by its table CRC, and all
// padding by an explicit zeros check. A single flipped bit anywhere
// surfaces as an error (core.ErrChecksum for CRC-covered ranges).
const (
	bvix3Version        = 3   // v2 added per-record payload CRCs; v3 the codec byte
	bvix3VersionImpacts = 4   // v4 added the optional impacts section
	bvix3HeaderSize     = 88  // v3 header: 24 + 3×20 + 4
	bvix3DataStart      = 128 // first section offset: align64 of either header size
	bvix3Align          = 64
	bvix3RecAlign       = 8
	bvix3FrameLen       = 64
	// bvix3RecordFixed is a dict record's size net of the name bytes:
	// name length u16, count u32, payload offset u64, blob length u32,
	// payload record CRC u32, codec byte u8.
	bvix3RecordFixed = 2 + 4 + 8 + 4 + 4 + 1
)

// bvix3HeaderSizeFor is the byte size of the header (magic through
// header CRC) for a given section count.
func bvix3HeaderSizeFor(sections int) int { return 24 + sections*20 + 4 }

var bvix3Magic = []byte("BVIX3")

func align(n, a uint64) uint64 { return (n + a - 1) &^ (a - 1) }

// WriteBVIX3 serializes the index in the BVIX3 format (version 3, no
// impacts section — byte-identical to what previous builds wrote).
// Output depends only on index contents: a parallel build writes
// byte-identical files to a serial one. Lazily opened indexes are
// materialized in full (every posting decoded, then re-marshaled), so
// WriteBVIX3 also works as a format converter.
func (idx *Index) WriteBVIX3(w io.Writer) (int64, error) {
	return idx.writeBVIX3(w, false)
}

// WriteBVIX3Impacts serializes the index as BVIX3 version 4: the three
// v3 sections plus the impacts section (quantized ranking impacts and
// block-max metadata). Impacts are recomputed deterministically from
// the stored frequencies, so converting any readable index — including
// impact-less v3 files — produces a fully impact-annotated one.
func (idx *Index) WriteBVIX3Impacts(w io.Writer) (int64, error) {
	return idx.writeBVIX3(w, true)
}

func (idx *Index) writeBVIX3(w io.Writer, withImpacts bool) (int64, error) {
	names, entries, err := idx.sortedEntries()
	if err != nil {
		return 0, err
	}
	var dict, frames, payload, impacts []byte
	if withImpacts {
		// The impacts section opens with the per-term record offset
		// table; record offsets are known only after encoding, so the
		// table is filled in as records land.
		impacts = make([]byte, 8*len(names))
	}
	for i, name := range names {
		if i%bvix3FrameLen == 0 {
			frames = binary.LittleEndian.AppendUint64(frames, uint64(len(dict)))
		}
		e := entries[i]
		blob, err := e.posting.(encoding.BinaryMarshaler).MarshalBinary()
		if err != nil {
			return 0, fmt.Errorf("index: term %q: %w", name, err)
		}
		for len(payload)%bvix3RecAlign != 0 {
			payload = append(payload, 0)
		}
		payOff := uint64(len(payload))
		payload = append(payload, blob...)
		for _, f := range e.freqs {
			payload = binary.LittleEndian.AppendUint16(payload, f)
		}
		dict = binary.LittleEndian.AppendUint16(dict, uint16(len(name)))
		dict = append(dict, name...)
		dict = binary.LittleEndian.AppendUint32(dict, uint32(len(e.freqs)))
		dict = binary.LittleEndian.AppendUint64(dict, payOff)
		dict = binary.LittleEndian.AppendUint32(dict, uint32(len(blob)))
		dict = binary.LittleEndian.AppendUint32(dict, crc32.Checksum(payload[payOff:], castagnoli))
		dict = append(dict, codecByteFor(e, blob))
		if withImpacts {
			binary.LittleEndian.PutUint64(impacts[8*i:], uint64(len(impacts)))
			meta := buildImpactMeta(e.posting.Decompress(), e.freqs)
			impacts = appendImpactsRecord(impacts, meta, e.codec)
		}
	}

	version := byte(bvix3Version)
	secs := []struct {
		off uint64
		b   []byte
	}{{0, dict}, {0, frames}, {0, payload}}
	if withImpacts {
		version = bvix3VersionImpacts
		secs = append(secs, struct {
			off uint64
			b   []byte
		}{0, impacts})
	}
	off := uint64(bvix3DataStart)
	for i := range secs {
		secs[i].off = off
		off = align(off+uint64(len(secs[i].b)), bvix3Align)
	}

	hdr := make([]byte, 0, bvix3HeaderSizeFor(len(secs)))
	hdr = append(hdr, bvix3Magic...)
	hdr = append(hdr, version, 0, 0)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(idx.Docs()))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(names)))
	hdr = binary.LittleEndian.AppendUint32(hdr, bvix3FrameLen)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(secs)))
	for _, sec := range secs {
		hdr = binary.LittleEndian.AppendUint64(hdr, sec.off)
		hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(sec.b)))
		hdr = binary.LittleEndian.AppendUint32(hdr, crc32.Checksum(sec.b, castagnoli))
	}
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.Checksum(hdr[len(bvix3Magic):], castagnoli))

	var n int64
	emit := func(p []byte) error {
		k, err := w.Write(p)
		n += int64(k)
		return err
	}
	pad := func(upto uint64) error {
		if uint64(n) < upto {
			return emit(make([]byte, upto-uint64(n)))
		}
		return nil
	}
	if err := emit(hdr); err != nil {
		return n, err
	}
	for _, sec := range secs {
		if err := pad(sec.off); err != nil {
			return n, err
		}
		if err := emit(sec.b); err != nil {
			return n, err
		}
	}
	return n, nil
}

// sortedEntries enumerates every (term, entry) pair in name order,
// materializing through the lazy backend when the index was opened
// from a mapping.
func (idx *Index) sortedEntries() ([]string, []termEntry, error) {
	if idx.lazy != nil {
		return idx.lazy.allEntries()
	}
	names := make([]string, 0, len(idx.terms))
	for t := range idx.terms {
		names = append(names, t)
	}
	sort.Strings(names)
	entries := make([]termEntry, len(names))
	for i, t := range names {
		entries[i] = idx.terms[t]
	}
	return names, entries, nil
}

// bvix3Geometry is the validated shape of one BVIX3 file: borrowed
// section slices plus the aggregates the dict walk established.
type bvix3Geometry struct {
	docs       int
	terms      int
	frameLen   int
	dict       []byte
	frames     []byte
	payload    []byte
	impacts    []byte // v4 impacts section; nil for v3 files
	hasImpacts bool
	sizeBytes  int // sum of posting blob lengths
}

// codecByteFor resolves the codec byte for one dict record: the
// entry's recorded codec name when the builder set one, otherwise
// identified exactly from the blob's self-describing header. 0 means
// the codec is outside the registry (never the case for blobs this
// module wrote).
func codecByteFor(e termEntry, blob []byte) byte {
	if e.codec != "" {
		if id, ok := codecs.IDByName(e.codec); ok {
			return id
		}
	}
	if name, ok := codecs.IdentifyBlob(blob); ok {
		if id, ok := codecs.IDByName(name); ok {
			return id
		}
	}
	return 0
}

// dictRecord is one parsed dict entry. name borrows from the dict
// section; callers copy it before retaining.
type dictRecord struct {
	name    []byte
	count   int
	payOff  uint64
	postLen uint32
	payCRC  uint32 // CRC32-C of the payload record (blob + freq bytes)
	codec   byte   // registry codec ID (codecs.NameByID); 0 = unspecified
	next    int    // dict offset of the following record
}

// parseDictRecord reads the record starting at dict[off]. Bounds are
// re-checked on every parse so the lookup path never trusts offsets
// further than the open-time validation that produced them.
func parseDictRecord(dict []byte, off int) (dictRecord, error) {
	if off < 0 || off+2 > len(dict) {
		return dictRecord{}, fmt.Errorf("index: dict record at %d overruns section", off)
	}
	nameLen := int(binary.LittleEndian.Uint16(dict[off:]))
	if off+bvix3RecordFixed+nameLen > len(dict) {
		return dictRecord{}, fmt.Errorf("index: dict record at %d overruns section", off)
	}
	name := dict[off+2 : off+2+nameLen]
	p := off + 2 + nameLen
	return dictRecord{
		name:    name,
		count:   int(binary.LittleEndian.Uint32(dict[p:])),
		payOff:  binary.LittleEndian.Uint64(dict[p+4:]),
		postLen: binary.LittleEndian.Uint32(dict[p+12:]),
		payCRC:  binary.LittleEndian.Uint32(dict[p+16:]),
		codec:   dict[p+20],
		next:    off + bvix3RecordFixed + nameLen,
	}, nil
}

// bvix3Section is one entry of the header's section table.
type bvix3Section struct {
	off, length uint64
	crc         uint32
}

// bvix3SectionNames index the section table for quarantine reporting.
var bvix3SectionNames = [4]string{"dict", "frames", "payload", "impacts"}

// parseBVIX3 validates a whole BVIX3 file: header checksum, section
// geometry and checksums, zero padding, and a full dictionary walk
// that cross-checks the skip frames, name ordering, per-term counts
// against the document count, and the exact tiling of the payload
// section. No posting is decoded. After parseBVIX3 succeeds, every
// record offset the lookup path can derive is in bounds.
func parseBVIX3(data []byte) (*bvix3Geometry, error) {
	g, secs, err := parseBVIX3Shell(data)
	if err != nil {
		return nil, err
	}
	for i, s := range secs {
		if got := crc32.Checksum(data[s.off:s.off+s.length], castagnoli); got != s.crc {
			return nil, fmt.Errorf("index: %w: BVIX3 section %d crc32c %08x, table says %08x", core.ErrChecksum, i, got, s.crc)
		}
	}
	valid, err := g.walkDict(true, true)
	if err != nil {
		return nil, err
	}
	if valid != g.terms {
		return nil, fmt.Errorf("index: BVIX3 dict walk validated %d of %d terms", valid, g.terms)
	}
	if g.hasImpacts {
		if err := g.walkImpacts(); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// parseBVIX3Shell validates everything up to (but not including) the
// per-section checksums and the dictionary walk: magic, header CRC,
// version, section geometry, padding zeros, and frame-table sizing.
// It is the part of open that must hold even for degraded-mode
// recovery — a file whose shell fails has no trustworthy map of its
// own bytes and cannot be salvaged section by section. The returned
// slice has one entry per section: 3 for v3 files, 4 for v4.
func parseBVIX3Shell(data []byte) (*bvix3Geometry, []bvix3Section, error) {
	if len(data) < bvix3DataStart {
		return nil, nil, fmt.Errorf("index: %w: %d bytes is shorter than a BVIX3 header", core.ErrChecksum, len(data))
	}
	if !bytes.Equal(data[:len(bvix3Magic)], bvix3Magic) {
		return nil, nil, fmt.Errorf("index: bad magic %q", data[:len(bvix3Magic)])
	}
	// The version byte positions the section table and header CRC, so
	// it is read before the CRC check; an unsupported value fails here,
	// and a corrupted-but-supported one fails the CRC at its layout.
	nSec := 0
	switch data[5] {
	case bvix3Version:
		nSec = 3
	case bvix3VersionImpacts:
		nSec = 4
	default:
		return nil, nil, fmt.Errorf("index: %w: BVIX3 file declares version %d, this build reads versions %d and %d",
			core.ErrVersion, data[5], bvix3Version, bvix3VersionImpacts)
	}
	hdrSize := bvix3HeaderSizeFor(nSec)
	if got := binary.LittleEndian.Uint32(data[hdrSize-4:]); got != crc32.Checksum(data[len(bvix3Magic):hdrSize-4], castagnoli) {
		return nil, nil, fmt.Errorf("index: %w: BVIX3 header checksum mismatch", core.ErrChecksum)
	}
	if data[6] != 0 || data[7] != 0 {
		return nil, nil, fmt.Errorf("index: BVIX3 header padding not zero")
	}
	g := &bvix3Geometry{
		docs:       int(binary.LittleEndian.Uint32(data[8:])),
		terms:      int(binary.LittleEndian.Uint32(data[12:])),
		frameLen:   int(binary.LittleEndian.Uint32(data[16:])),
		hasImpacts: nSec == 4,
	}
	if sc := binary.LittleEndian.Uint32(data[20:]); sc != uint32(nSec) {
		return nil, nil, fmt.Errorf("index: BVIX3 version %d declares %d sections, want %d", data[5], sc, nSec)
	}
	if g.terms > 0 && g.frameLen <= 0 {
		return nil, nil, fmt.Errorf("index: BVIX3 frame length %d invalid", g.frameLen)
	}

	secs := make([]bvix3Section, nSec)
	for i := range secs {
		p := 24 + i*20
		secs[i] = bvix3Section{
			off:    binary.LittleEndian.Uint64(data[p:]),
			length: binary.LittleEndian.Uint64(data[p+8:]),
			crc:    binary.LittleEndian.Uint32(data[p+16:]),
		}
	}
	// Geometry: sections are 64-aligned, in order, and tile the file
	// exactly (padding gaps must be zero so no byte escapes coverage).
	want := uint64(bvix3DataStart)
	for i, s := range secs {
		if s.off != want {
			return nil, nil, fmt.Errorf("index: BVIX3 section %d at offset %d, want %d", i, s.off, want)
		}
		if s.off+s.length < s.off || s.off+s.length > uint64(len(data)) {
			return nil, nil, fmt.Errorf("index: %w: BVIX3 section %d overruns file", core.ErrChecksum, i)
		}
		want = align(s.off+s.length, bvix3Align)
	}
	last := secs[nSec-1]
	if end := last.off + last.length; end != uint64(len(data)) {
		return nil, nil, fmt.Errorf("index: %d trailing bytes after BVIX3 %s section", uint64(len(data))-end, bvix3SectionNames[nSec-1])
	}
	zeroRuns := [][2]uint64{{uint64(hdrSize), secs[0].off}}
	for i := 1; i < nSec; i++ {
		zeroRuns = append(zeroRuns, [2]uint64{secs[i-1].off + secs[i-1].length, secs[i].off})
	}
	for _, run := range zeroRuns {
		for _, b := range data[run[0]:run[1]] {
			if b != 0 {
				return nil, nil, fmt.Errorf("index: BVIX3 padding bytes not zero")
			}
		}
	}
	g.dict = data[secs[0].off : secs[0].off+secs[0].length]
	g.frames = data[secs[1].off : secs[1].off+secs[1].length]
	g.payload = data[secs[2].off : secs[2].off+secs[2].length]
	if g.hasImpacts {
		g.impacts = data[secs[3].off : secs[3].off+secs[3].length]
	}

	frameCount := 0
	if g.terms > 0 {
		frameCount = (g.terms + g.frameLen - 1) / g.frameLen
	}
	if len(g.frames) != 8*frameCount {
		return nil, nil, fmt.Errorf("index: BVIX3 frames section is %d bytes, want %d for %d terms", len(g.frames), 8*frameCount, g.terms)
	}
	return g, secs, nil
}

// walkDict is the dictionary walk: every record parses, names strictly
// increase, per-term counts fit the document count, and payload
// records tile their section with only deterministic alignment padding
// between them. With checkFrames, each frameLen-th record is also
// cross-checked against the skip-frame table (degraded opens that
// rebuild the frames skip this). The walk accumulates g.sizeBytes over
// the records it accepts and returns how many validated. In strict
// mode the first violation is returned as an error; otherwise the walk
// stops there and reports the valid prefix — the salvageable part of a
// corrupt dictionary, every record of which has fully bounds-checked
// payload geometry.
func (g *bvix3Geometry) walkDict(strict, checkFrames bool) (int, error) {
	cur, payCur := 0, uint64(0)
	var prev []byte
	for i := 0; i < g.terms; i++ {
		if checkFrames && i%g.frameLen == 0 {
			if got := binary.LittleEndian.Uint64(g.frames[8*(i/g.frameLen):]); got != uint64(cur) {
				if !strict {
					return i, nil
				}
				return i, fmt.Errorf("index: BVIX3 frame %d points at %d, record is at %d", i/g.frameLen, got, cur)
			}
		}
		rec, err := parseDictRecord(g.dict, cur)
		if err != nil {
			if !strict {
				return i, nil
			}
			return i, err
		}
		if i > 0 && bytes.Compare(prev, rec.name) >= 0 {
			if !strict {
				return i, nil
			}
			return i, fmt.Errorf("index: BVIX3 dict not sorted at term %d (%q after %q)", i, rec.name, prev)
		}
		if rec.count > g.docs {
			if !strict {
				return i, nil
			}
			return i, fmt.Errorf("index: term %q declares %d postings in a %d-document index", rec.name, rec.count, g.docs)
		}
		if rec.codec > codecs.MaxID() {
			if !strict {
				return i, nil
			}
			return i, fmt.Errorf("index: %w: term %q codec byte %d out of range (registry max %d)",
				core.ErrBadFormat, rec.name, rec.codec, codecs.MaxID())
		}
		if rec.payOff != align(payCur, bvix3RecAlign) {
			if !strict {
				return i, nil
			}
			return i, fmt.Errorf("index: term %q payload at %d, want %d", rec.name, rec.payOff, align(payCur, bvix3RecAlign))
		}
		payCur = rec.payOff + uint64(rec.postLen) + 2*uint64(rec.count)
		if payCur > uint64(len(g.payload)) {
			if !strict {
				return i, nil
			}
			return i, fmt.Errorf("index: term %q payload overruns section", rec.name)
		}
		g.sizeBytes += int(rec.postLen)
		prev, cur = rec.name, rec.next
	}
	if cur != len(g.dict) {
		if !strict {
			return g.terms, nil
		}
		return g.terms, fmt.Errorf("index: %d trailing bytes after last BVIX3 dict record", len(g.dict)-cur)
	}
	if payCur != uint64(len(g.payload)) {
		if !strict {
			return g.terms, nil
		}
		return g.terms, fmt.Errorf("index: %d trailing bytes after last BVIX3 payload record", uint64(len(g.payload))-payCur)
	}
	return g.terms, nil
}

// materialize decodes one record's posting and frequency payload into
// heap-owned memory. Decoders copy what they keep (the core.Decoder
// borrowed-bytes contract), so the result never aliases the mapping.
func (g *bvix3Geometry) materialize(rec dictRecord) (termEntry, error) {
	blob := g.payload[rec.payOff : rec.payOff+uint64(rec.postLen)]
	blobCodec, _ := codecs.IdentifyBlob(blob)
	codecName := blobCodec
	if rec.codec != 0 {
		// A non-zero codec byte must agree with the blob it describes —
		// a mismatch means the dict and payload no longer tell the same
		// story about these bytes.
		want, ok := codecs.NameByID(rec.codec)
		if !ok {
			return termEntry{}, fmt.Errorf("index: %w: term %q codec byte %d out of range",
				core.ErrBadFormat, rec.name, rec.codec)
		}
		if blobCodec != want {
			return termEntry{}, fmt.Errorf("index: %w: term %q dict declares codec %s, blob is %q",
				core.ErrBadFormat, rec.name, want, blobCodec)
		}
		codecName = want
	}
	p, err := codecs.Decode(blob)
	if err != nil {
		return termEntry{}, fmt.Errorf("index: term %q posting: %w", rec.name, err)
	}
	if p.Len() != rec.count {
		return termEntry{}, fmt.Errorf("index: term %q: %d postings but %d frequencies", rec.name, p.Len(), rec.count)
	}
	freqB := g.payload[rec.payOff+uint64(rec.postLen):][:2*rec.count]
	freqs := make([]uint16, rec.count)
	for i := range freqs {
		freqs[i] = binary.LittleEndian.Uint16(freqB[2*i:])
	}
	return termEntry{posting: p, freqs: freqs, codec: codecName}, nil
}

// readBVIX3 is the eager path used by Read: validate everything, then
// materialize every term into an ordinary heap index. data may be
// heap-backed or mapped; nothing in the result aliases it.
func readBVIX3(data []byte) (*Index, error) {
	g, err := parseBVIX3(data)
	if err != nil {
		return nil, err
	}
	idx := &Index{terms: make(map[string]termEntry, g.terms), docs: g.docs}
	cur := 0
	for i := 0; i < g.terms; i++ {
		rec, err := parseDictRecord(g.dict, cur)
		if err != nil {
			return nil, err
		}
		e, err := g.materializeAt(rec, i)
		if err != nil {
			return nil, err
		}
		idx.terms[string(rec.name)] = e
		cur = rec.next
	}
	return idx, nil
}

// materializeAt is materialize plus the term's impact annotations when
// the file carries them; ordinal is the term's position in dict order
// (the impacts offset-table key).
func (g *bvix3Geometry) materializeAt(rec dictRecord, ordinal int) (termEntry, error) {
	e, err := g.materialize(rec)
	if err != nil || !g.hasImpacts {
		return e, err
	}
	m, err := g.materializeImpacts(rec, ordinal)
	if err != nil {
		return termEntry{}, err
	}
	e.impacts = m
	return e, nil
}

// lazyIndex backs an Index opened from a BVIX3 mapping: terms
// materialize on first access straight out of the mapped sections and
// are memoized. All borrowed-byte reads happen under the read lock;
// close takes the write lock before unmapping, so no lookup can touch
// the mapping mid-unmap.
type lazyIndex struct {
	geo       bvix3Geometry
	termCount int
	sizeBytes int

	// degraded marks an index salvaged by OpenFileDegraded; quarantined
	// names (payload records that failed verification) are reported
	// absent without touching the mapping, and impactsQuarantined names
	// are served WITHOUT their impact annotations (postings intact,
	// ranking falls back to frequency-derived impacts). All are fixed
	// at open time.
	degraded           bool
	quarantined        map[string]struct{}
	impactsQuarantined map[string]struct{}

	mu     sync.RWMutex
	ready  map[string]termEntry
	closed bool
	closer io.Closer // the mapping; nil when backed by heap bytes
}

// entry resolves and memoizes one term. Terms that fail to decode are
// reported absent — unreachable in practice, since every section
// checksum was verified at open time.
func (lz *lazyIndex) entry(term string) (termEntry, bool) {
	if _, bad := lz.quarantined[term]; bad {
		return termEntry{}, false
	}
	lz.mu.RLock()
	if e, ok := lz.ready[term]; ok {
		lz.mu.RUnlock()
		return e, true
	}
	if lz.closed {
		lz.mu.RUnlock()
		return termEntry{}, false
	}
	e, ok := func() (termEntry, bool) {
		rec, ordinal, ok := lz.locate(term)
		if !ok {
			return termEntry{}, false
		}
		e, err := lz.materializeFor(rec, ordinal)
		return e, err == nil
	}()
	lz.mu.RUnlock()
	if !ok {
		return termEntry{}, false
	}
	lz.mu.Lock()
	if prev, dup := lz.ready[term]; dup {
		e = prev // concurrent materializers converge on one shared entry
	} else {
		lz.ready[term] = e
	}
	lz.mu.Unlock()
	return e, true
}

// materializeFor resolves one record to a term entry, attaching impact
// annotations when the file carries them. On a degraded index a term
// whose impacts were quarantined (or fail to decode) still serves its
// postings — ranking just falls back to frequency-derived impacts.
func (lz *lazyIndex) materializeFor(rec dictRecord, ordinal int) (termEntry, error) {
	e, err := lz.geo.materialize(rec)
	if err != nil || !lz.geo.hasImpacts {
		return e, err
	}
	if _, bad := lz.impactsQuarantined[string(rec.name)]; bad {
		return e, nil
	}
	m, merr := lz.geo.materializeImpacts(rec, ordinal)
	if merr != nil {
		if lz.degraded {
			return e, nil
		}
		return termEntry{}, merr
	}
	e.impacts = m
	return e, nil
}

// locate finds a term's dict record and its dict-order ordinal (the
// impacts offset-table key): binary search over the skip frames on
// each frame's first name (read zero-copy from the dict), then a scan
// of at most frameLen records. Caller holds the read lock.
func (lz *lazyIndex) locate(term string) (dictRecord, int, bool) {
	nFrames := len(lz.geo.frames) / 8
	if nFrames == 0 {
		return dictRecord{}, 0, false
	}
	// First frame whose first name is > term; the record, if present,
	// lives in the frame before it.
	f := sort.Search(nFrames, func(f int) bool {
		off := int(binary.LittleEndian.Uint64(lz.geo.frames[8*f:]))
		rec, err := parseDictRecord(lz.geo.dict, off)
		return err == nil && compareBytesString(rec.name, term) > 0
	})
	if f == 0 {
		return dictRecord{}, 0, false
	}
	f--
	cur := int(binary.LittleEndian.Uint64(lz.geo.frames[8*f:]))
	remaining := lz.termCount - f*lz.geo.frameLen
	for i := 0; i < min(lz.geo.frameLen, remaining); i++ {
		rec, err := parseDictRecord(lz.geo.dict, cur)
		if err != nil {
			return dictRecord{}, 0, false
		}
		switch c := compareBytesString(rec.name, term); {
		case c == 0:
			return rec, f*lz.geo.frameLen + i, true
		case c > 0:
			return dictRecord{}, 0, false
		}
		cur = rec.next
	}
	return dictRecord{}, 0, false
}

// allEntries materializes every term in dict order (for format
// conversion via WriteTo/WriteBVIX3). On a degraded index the
// quarantined terms are skipped — rewriting a salvaged index persists
// exactly what it can still serve, which is the rebuild runbook.
func (lz *lazyIndex) allEntries() ([]string, []termEntry, error) {
	lz.mu.RLock()
	defer lz.mu.RUnlock()
	if lz.closed {
		return nil, nil, fmt.Errorf("index: use of closed index")
	}
	names := make([]string, 0, lz.termCount)
	entries := make([]termEntry, 0, lz.termCount)
	cur := 0
	for i := 0; i < lz.termCount; i++ {
		rec, err := parseDictRecord(lz.geo.dict, cur)
		if err != nil {
			return nil, nil, err
		}
		cur = rec.next
		if _, bad := lz.quarantined[string(rec.name)]; bad {
			continue
		}
		e, err := lz.materializeFor(rec, i)
		if err != nil {
			return nil, nil, err
		}
		names = append(names, string(rec.name))
		entries = append(entries, e)
	}
	return names, entries, nil
}

func (lz *lazyIndex) close() error {
	lz.mu.Lock()
	defer lz.mu.Unlock()
	if lz.closed {
		return nil
	}
	lz.closed = true
	lz.geo.dict, lz.geo.frames, lz.geo.payload, lz.geo.impacts = nil, nil, nil, nil
	if lz.closer != nil {
		return lz.closer.Close()
	}
	return nil
}

// compareBytesString is bytes.Compare against a string without
// converting (the lookup path runs it per probed record).
func compareBytesString(b []byte, s string) int {
	for i := 0; i < len(b) && i < len(s); i++ {
		if b[i] != s[i] {
			if b[i] < s[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(b) < len(s):
		return -1
	case len(b) > len(s):
		return 1
	}
	return 0
}

// openBVIX3Lazy validates data (every section checksum included — the
// laziness is in skipping posting materialization, not integrity) and
// returns an index whose postings decode on first access. closer, when
// non-nil, owns the mapping behind data and is closed by Index.Close.
func openBVIX3Lazy(data []byte, closer io.Closer) (*Index, error) {
	g, err := parseBVIX3(data)
	if err != nil {
		return nil, err
	}
	lz := &lazyIndex{
		geo:       *g,
		termCount: g.terms,
		sizeBytes: g.sizeBytes,
		ready:     make(map[string]termEntry),
		closer:    closer,
	}
	return &Index{docs: g.docs, lazy: lz}, nil
}

// openMapFile is the mapping entry point OpenFile uses — a variable so
// tests can route opens through the portable (non-mmap) fallback and
// exercise that path on every platform.
var openMapFile = mapfile.Open

// OpenFile opens a persisted index from disk by path. BVIX3 files are
// memory-mapped where the platform supports it (see mapfile) and their
// postings materialize lazily on first access, so time-to-first-query
// is dominated by checksum verification rather than decompression.
// BVIX1/BVIX2 files are read eagerly, exactly as Read would. The
// returned index must be Closed when it came from a BVIX3 file and is
// no longer being served; see Index.Close for the ownership rules.
func OpenFile(path string) (*Index, error) {
	mf, err := openMapFile(path)
	if err != nil {
		return nil, fmt.Errorf("index: open %s: %w", path, err)
	}
	data := mf.Data()
	if len(data) >= len(bvix3Magic) && bytes.Equal(data[:len(bvix3Magic)], bvix3Magic) {
		idx, err := openBVIX3Lazy(data, mf)
		if err != nil {
			mf.Close()
			return nil, err
		}
		return idx, nil
	}
	// Legacy formats: parse eagerly from the mapped view (every parser
	// copies what it keeps), then release the mapping.
	defer mf.Close()
	return Read(bytes.NewReader(data))
}
