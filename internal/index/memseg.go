package index

import (
	"sort"
)

// MemSegment is the live index's mutable in-memory segment: an
// uncompressed inverted index over global document IDs, holding every
// document acked since the last seal. It stores the raw texts alongside
// the postings so sealing can re-feed them through the sharded Builder
// — the sealed BVIX3 segment is then byte-identical to a from-scratch
// build of the same documents.
//
// Postings are kept sorted by global docid. Normal adds append (ids are
// assigned monotonically), but a re-added document keeps its original
// id, which may sort below the segment's tail — Add handles both.
// Deletes of documents still in the mutable segment are physical:
// the posting entries are removed outright, so tombstones only ever
// target sealed segments.
//
// MemSegment does its own locking via the owning Live's mutex; it is
// not safe for concurrent use on its own.
type MemSegment struct {
	postings map[string][]uint32
	freqs    map[string][]uint16
	texts    map[uint32]string
}

// NewMemSegment returns an empty mutable segment.
func NewMemSegment() *MemSegment {
	return &MemSegment{
		postings: map[string][]uint32{},
		freqs:    map[string][]uint16{},
		texts:    map[uint32]string{},
	}
}

// Add indexes text under the global docid. The tokenization and
// frequency clamping match Builder.Build exactly, so a sealed segment
// reproduces what the mutable segment was serving.
func (m *MemSegment) Add(doc uint32, text string) {
	m.texts[doc] = text
	counts := map[string]int{}
	for _, tok := range Tokenize(text) {
		counts[tok]++
	}
	for t, f := range counts {
		list := m.postings[t]
		freq := uint16(min(f, 65535))
		if n := len(list); n == 0 || list[n-1] < doc {
			m.postings[t] = append(list, doc)
			m.freqs[t] = append(m.freqs[t], freq)
			continue
		}
		// Re-added docid below the tail: sorted insert.
		i := sort.Search(len(list), func(i int) bool { return list[i] >= doc })
		list = append(list, 0)
		copy(list[i+1:], list[i:])
		list[i] = doc
		m.postings[t] = list
		fr := append(m.freqs[t], 0)
		copy(fr[i+1:], fr[i:])
		fr[i] = freq
		m.freqs[t] = fr
	}
}

// Remove physically deletes the document from every posting list it
// appears in. It reports whether the document was present.
func (m *MemSegment) Remove(doc uint32) bool {
	text, ok := m.texts[doc]
	if !ok {
		return false
	}
	delete(m.texts, doc)
	seen := map[string]struct{}{}
	for _, tok := range Tokenize(text) {
		if _, dup := seen[tok]; dup {
			continue
		}
		seen[tok] = struct{}{}
		list := m.postings[tok]
		i := sort.Search(len(list), func(i int) bool { return list[i] >= doc })
		if i >= len(list) || list[i] != doc {
			continue
		}
		if len(list) == 1 {
			delete(m.postings, tok)
			delete(m.freqs, tok)
			continue
		}
		m.postings[tok] = append(list[:i], list[i+1:]...)
		fr := m.freqs[tok]
		m.freqs[tok] = append(fr[:i], fr[i+1:]...)
	}
	return true
}

// Has reports whether the document is live in this segment.
func (m *MemSegment) Has(doc uint32) bool {
	_, ok := m.texts[doc]
	return ok
}

// Docs reports the number of live documents.
func (m *MemSegment) Docs() int { return len(m.texts) }

// Text returns the stored text for a live document.
func (m *MemSegment) Text(doc uint32) string { return m.texts[doc] }

// SortedDocIDs returns the live global docids in ascending order — the
// sealing order, so the Builder's insertion-ordered local ids map back
// to globals through a monotonic docmap.
func (m *MemSegment) SortedDocIDs() []uint32 {
	ids := make([]uint32, 0, len(m.texts))
	for id := range m.texts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Postings returns the sorted global docid list and aligned frequency
// payload for a term; both nil when the term is absent. The slices are
// live — callers under the Live read lock must not mutate them.
func (m *MemSegment) Postings(term string) ([]uint32, []uint16) {
	return m.postings[term], m.freqs[term]
}

// memConjunctive intersects the segment's posting lists for terms.
func memConjunctive(m *MemSegment, terms []string) []uint32 {
	if len(terms) == 0 {
		return nil
	}
	acc, _ := m.Postings(terms[0])
	if acc == nil {
		return nil
	}
	out := append([]uint32(nil), acc...)
	for _, t := range terms[1:] {
		next, _ := m.Postings(t)
		if next == nil {
			return nil
		}
		out = intersectSorted(out, next)
		if len(out) == 0 {
			return nil
		}
	}
	return out
}

// memDisjunctive unions the segment's posting lists for terms.
func memDisjunctive(m *MemSegment, terms []string) []uint32 {
	var out []uint32
	for _, t := range terms {
		list, _ := m.Postings(t)
		if len(list) == 0 {
			continue
		}
		if out == nil {
			out = append([]uint32(nil), list...)
			continue
		}
		out = unionSorted(out, list)
	}
	return out
}

// memScores accumulates quantized-impact scores for every document
// matching at least one term — the mutable half of a live top-k, using
// the same QuantizeImpact formula the sealed evaluation uses. Each term
// occurrence contributes its list, duplicated terms included, exactly
// as TopKWith treats its term slice.
func memScores(m *MemSegment, terms []string) map[uint32]uint32 {
	scores := map[uint32]uint32{}
	for _, t := range terms {
		list, freqs := m.Postings(t)
		for i, d := range list {
			scores[d] += uint32(QuantizeImpact(freqs[i]))
		}
	}
	return scores
}

// intersectSorted intersects two sorted lists into a's storage.
func intersectSorted(a, b []uint32) []uint32 {
	out := a[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// unionSorted merges two sorted duplicate-free lists.
func unionSorted(a, b []uint32) []uint32 {
	out := make([]uint32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}
