package index

import (
	"fmt"

	"repro/internal/codecs"
	"repro/internal/core"
)

// Adaptive per-list codec selection (DESIGN §8): the builder consults
// core.AdviseList for every finished posting list and compresses it
// with the recommended codec — Roaring / Roaring+Run for dense lists,
// SIMDBP128* / SIMDPforDelta* for sparse — persisting the choice in
// the BVIX3 dict's per-term codec byte.

// AutoSelector returns the standard adaptive CodecSelector: per-list
// statistics (density, concentration, run structure) feed
// core.AdviseList and the recommendation resolves through the codec
// registry. The selector is stateless apart from the immutable codec
// instances, so it is safe for Build's worker pool.
func AutoSelector() CodecSelector {
	// Resolve the advisor's full output range up front; a missing name
	// here is a programming error, not a data condition.
	table := map[string]core.Codec{}
	for _, name := range []string{"Roaring", "Roaring+Run", "SIMDBP128*", "SIMDPforDelta*"} {
		c, err := codecs.ByName(name)
		if err != nil {
			panic(fmt.Sprintf("index: advisor codec %q not in registry: %v", name, err))
		}
		table[name] = c
	}
	return func(list []uint32, docs int) core.Codec {
		rec := core.AdviseList(core.ComputeStats(list, uint64(docs)))
		c, ok := table[rec.Codec]
		if !ok {
			// The advisor grew a recommendation this table does not
			// know; fall back to the registry rather than failing the
			// build.
			c, _ = codecs.ByName(rec.Codec)
			if c == nil {
				c = table["Roaring"]
			}
		}
		return c
	}
}

// TermCodec reports the registry name of the codec compressing a
// term's posting list ("" for unknown terms, and for entries whose
// provenance did not record one, e.g. legacy BVIX2 reads).
func (idx *Index) TermCodec(term string) string {
	e, ok := idx.entry(term)
	if !ok {
		return ""
	}
	return e.codec
}

// CodecMix reports how many servable terms each codec compresses —
// the observable shape of an adaptive index. For a lazily opened BVIX3
// index the mix comes straight from the dict's codec bytes without
// materializing a single posting; quarantined terms are excluded.
// Entries whose codec is unrecorded count under "".
func (idx *Index) CodecMix() map[string]int {
	mix := map[string]int{}
	if idx.lazy != nil {
		idx.lazy.codecMix(mix)
		return mix
	}
	for _, e := range idx.terms {
		mix[e.codec]++
	}
	return mix
}

// codecMix accumulates the dict's codec bytes under the read lock.
func (lz *lazyIndex) codecMix(mix map[string]int) {
	lz.mu.RLock()
	defer lz.mu.RUnlock()
	if lz.closed {
		return
	}
	cur := 0
	for i := 0; i < lz.termCount; i++ {
		rec, err := parseDictRecord(lz.geo.dict, cur)
		if err != nil {
			return // unreachable: open validated this prefix
		}
		cur = rec.next
		if _, bad := lz.quarantined[string(rec.name)]; bad {
			continue
		}
		name, _ := codecs.NameByID(rec.codec)
		mix[name]++
	}
}
