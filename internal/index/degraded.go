package index

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/core"
)

// Degraded-mode open: the recovery path for a BVIX3 file whose header
// is intact but whose section checksums are not. Instead of refusing
// the whole file, open quarantines what cannot be verified and serves
// the rest:
//
//   - frames section corrupt: the skip-frame table is redundant (it is
//     derivable from the dict), so it is rebuilt in memory and nothing
//     is quarantined.
//   - dict section corrupt: the dictionary is walked record by record
//     with full bounds/order/tiling validation and cut at the first
//     violation; the valid prefix is served, the rest quarantined.
//   - payload section corrupt: every surviving term's posting blob is
//     decoded and cross-checked against its dict record up front;
//     terms whose payload no longer decodes cleanly are quarantined by
//     name, the rest are served from the verified decode.
//   - impacts section corrupt (v4 files): every surviving term's
//     impact record is re-verified against its own per-record CRC;
//     terms whose impact bytes no longer checksum or decode keep
//     serving their postings but lose the stored annotations — ranked
//     queries on them fall back to frequency-derived impacts. Docid
//     retrieval never degrades because of impact damage.
//
// A degraded index reports its salvage summary through Index.Health,
// which the serving layer surfaces on /healthz. Terms it serves from a
// CRC-failed payload section decoded cleanly and matched their
// declared counts, but the end-to-end checksum guarantee is gone —
// degraded mode is for limping until the index is rebuilt, not for
// running indefinitely; see the corruption-recovery runbook in the
// README.

// Health describes what an open salvaged. The zero value means a
// fully verified index.
type Health struct {
	// Degraded is true when any section failed its checksum and the
	// index is serving a salvaged subset.
	Degraded bool `json:"degraded"`
	// QuarantinedSections names the sections that failed their CRC.
	QuarantinedSections []string `json:"quarantinedSections,omitempty"`
	// QuarantinedTerms counts terms withheld from serving.
	QuarantinedTerms int `json:"quarantinedTerms,omitempty"`
	// QuarantinedImpacts counts terms still serving their postings but
	// stripped of stored impact annotations (ranking falls back to
	// frequency-derived impacts for them).
	QuarantinedImpacts int `json:"quarantinedImpacts,omitempty"`
}

// Health reports the index's salvage state: the zero value for any
// fully verified index (built, read, or lazily opened), the salvage
// summary for one opened by OpenFileDegraded.
func (idx *Index) Health() Health { return idx.health }

// OpenFileDegraded opens a persisted index like OpenFile but, when a
// BVIX3 file fails section checksums, falls back to degraded mode:
// quarantine what cannot be verified, serve the rest, and report the
// damage through Index.Health. Files whose header or geometry is
// unusable — and corrupt BVIX1/BVIX2 files, whose single trailer
// checksum cannot localize damage — still fail outright.
func OpenFileDegraded(path string) (*Index, error) {
	mf, err := openMapFile(path)
	if err != nil {
		return nil, fmt.Errorf("index: open %s: %w", path, err)
	}
	data := mf.Data()
	if len(data) >= len(bvix3Magic) && bytes.Equal(data[:len(bvix3Magic)], bvix3Magic) {
		idx, err := openBVIX3Degraded(data, mf)
		if err != nil {
			mf.Close()
			return nil, err
		}
		return idx, nil
	}
	defer mf.Close()
	return Read(bytes.NewReader(data))
}

// postingInRange reports whether every decoded docid is strictly
// increasing and below docs — the invariant a CRC-clean payload
// guarantees and an unchecksummed one must prove.
func postingInRange(p core.Posting, docs int) bool {
	vals := p.Decompress()
	for i, v := range vals {
		if int(v) >= docs || (i > 0 && v <= vals[i-1]) {
			return false
		}
	}
	return true
}

// openBVIX3Degraded opens data leniently: a clean file comes back
// exactly as openBVIX3Lazy would return it; a file with section CRC
// failures comes back degraded with the salvage recorded in Health.
func openBVIX3Degraded(data []byte, closer io.Closer) (*Index, error) {
	g, secs, err := parseBVIX3Shell(data)
	if err != nil {
		return nil, err
	}
	bad := make([]bool, len(secs))
	var badNames []string
	for i, s := range secs {
		if crc32.Checksum(data[s.off:s.off+s.length], castagnoli) != s.crc {
			bad[i] = true
			badNames = append(badNames, bvix3SectionNames[i])
		}
	}
	badDict, badFrames, badPayload := bad[0], bad[1], bad[2]
	badImpacts := g.hasImpacts && bad[3]
	if !badDict && !badFrames && !badPayload && !badImpacts {
		return openBVIX3Lazy(data, closer)
	}

	// Walk the dictionary: strict when its CRC held (a violation then
	// means damage beyond what degraded mode can reason about), prefix
	// salvage when it did not. Frame cross-checks are skipped — the
	// frames are rebuilt from the walk below.
	valid, err := g.walkDict(!badDict, false)
	if err != nil {
		return nil, fmt.Errorf("index: %w: BVIX3 dict inconsistent with checksummed header: %v", core.ErrChecksum, err)
	}

	// Rebuild the skip frames over the valid prefix. Even when the
	// frames section's CRC held, a shortened prefix (corrupt dict)
	// invalidates its tail, so any degraded open rebuilds.
	frames := make([]byte, 0, 8*((valid+g.frameLen-1)/max(g.frameLen, 1)))
	cur := 0
	for i := 0; i < valid; i++ {
		rec, err := parseDictRecord(g.dict, cur)
		if err != nil {
			return nil, err // unreachable: the walk validated this prefix
		}
		if i%g.frameLen == 0 {
			frames = binary.LittleEndian.AppendUint64(frames, uint64(cur))
		}
		cur = rec.next
	}
	g.frames = frames

	lz := &lazyIndex{
		geo:                *g,
		termCount:          valid,
		sizeBytes:          g.sizeBytes,
		degraded:           true,
		quarantined:        map[string]struct{}{},
		impactsQuarantined: map[string]struct{}{},
		ready:              make(map[string]termEntry),
		closer:             closer,
	}

	// With a corrupt payload section nothing in it can be taken on
	// faith: re-verify every surviving record now against its own
	// per-record CRC from the (intact) dict. Only records whose bytes
	// still checksum are decoded and served; the rest are quarantined
	// by name. The CRC gate is what makes salvage loss-only — corrupt
	// bytes can decode "cleanly" into plausible garbage (right count,
	// sorted, in range) that no structural check would catch. The
	// structural checks remain as belt-and-suspenders behind it.
	// (This forfeits lazy open's deferred decode — acceptable in a
	// mode whose purpose is limping through damage.)
	//
	// A corrupt impacts section gets the same per-record treatment, but
	// quarantine is softer: impacts are ranking annotations, not
	// postings, so a term whose impact record fails its CRC (or panics
	// a decoder) is served without annotations instead of withheld.
	// One caveat is inherent: the impacts offset table lives in the
	// unverified section itself, so a corrupted table slot that happens
	// to land on another structurally compatible, CRC-clean record is
	// indistinguishable from the truth — the blast radius is a slightly
	// wrong ranking in a mode meant for limping until rebuild.
	if badPayload || badImpacts {
		cur := 0
		for i := 0; i < valid; i++ {
			rec, err := parseDictRecord(g.dict, cur)
			if err != nil {
				return nil, err // unreachable: the walk validated this prefix
			}
			cur = rec.next
			name := string(rec.name)
			var e termEntry
			if badPayload {
				payEnd := rec.payOff + uint64(rec.postLen) + 2*uint64(rec.count)
				if crc32.Checksum(g.payload[rec.payOff:payEnd], castagnoli) != rec.payCRC {
					lz.quarantined[name] = struct{}{}
					continue
				}
				var merr error
				e, merr = materializeSalvage(&lz.geo, rec)
				if merr == nil && !postingInRange(e.posting, g.docs) {
					merr = fmt.Errorf("index: term %q: decoded postings out of range", rec.name)
				}
				if merr != nil {
					lz.quarantined[name] = struct{}{}
					continue
				}
			}
			if g.hasImpacts {
				m, ierr := salvageImpacts(&lz.geo, rec, i, badImpacts)
				if ierr != nil {
					lz.impactsQuarantined[name] = struct{}{}
				} else if badPayload {
					e.impacts = m
				}
			}
			if badPayload {
				lz.ready[name] = e
			}
		}
	}

	return &Index{
		docs: g.docs,
		lazy: lz,
		health: Health{
			Degraded:            true,
			QuarantinedSections: badNames,
			QuarantinedTerms:    (g.terms - valid) + len(lz.quarantined),
			QuarantinedImpacts:  len(lz.impactsQuarantined),
		},
	}, nil
}

// materializeSalvage wraps geometry materialization in a panic barrier.
// The codec decoders are written for trusted post-checksum bytes; the
// salvage pass deliberately feeds them bytes whose checksum FAILED, so
// any malformed-input panic in a decoder must mean "quarantine this
// term", never "crash the open".
func materializeSalvage(geo *bvix3Geometry, rec dictRecord) (e termEntry, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("index: term %q: decoder panic on corrupt payload: %v", rec.name, r)
		}
	}()
	return geo.materialize(rec)
}

// salvageImpacts materializes one term's impact annotations behind the
// same panic barrier, additionally re-verifying the record's own CRC
// when the impacts section checksum failed (checkCRC). Any error means
// "serve this term without annotations", never "fail the open".
func salvageImpacts(geo *bvix3Geometry, rec dictRecord, ordinal int, checkCRC bool) (m *impactMeta, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("index: term %q: decoder panic on corrupt impacts: %v", rec.name, r)
		}
	}()
	if checkCRC {
		ir, ierr := geo.impactsRecordFor(ordinal, rec.count)
		if ierr != nil {
			return nil, ierr
		}
		if !ir.crcOK() {
			return nil, fmt.Errorf("index: term %q: impacts record checksum mismatch", rec.name)
		}
	}
	return geo.materializeImpacts(rec, ordinal)
}
