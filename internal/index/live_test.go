package index

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/faultio"
)

// naiveLive recomputes the truth for a live index: the surviving
// documents rebuilt from scratch with the plain Builder, queried
// through the ordinary Index paths, with docids mapped back to the
// live global ids.
type naiveLive struct {
	ids  []uint32 // surviving global ids, ascending
	idx  *Index
	back map[uint32]uint32 // local -> global
}

func buildNaive(t *testing.T, docs map[uint32]string) *naiveLive {
	t.Helper()
	ids := make([]uint32, 0, len(docs))
	for id := range docs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	b := NewAutoBuilder()
	back := map[uint32]uint32{}
	for i, id := range ids {
		b.AddDocument(docs[id])
		back[uint32(i)] = id
	}
	idx, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return &naiveLive{ids: ids, idx: idx, back: back}
}

func (n *naiveLive) conjunctive(t *testing.T, terms ...string) []uint32 {
	t.Helper()
	local, err := n.idx.Conjunctive(terms...)
	if err != nil {
		t.Fatal(err)
	}
	return n.globals(local)
}

func (n *naiveLive) disjunctive(t *testing.T, terms ...string) []uint32 {
	t.Helper()
	local, err := n.idx.Disjunctive(terms...)
	if err != nil {
		t.Fatal(err)
	}
	return n.globals(local)
}

func (n *naiveLive) globals(locals []uint32) []uint32 {
	out := make([]uint32, len(locals))
	for i, l := range locals {
		out[i] = n.back[l]
	}
	return out
}

// topk computes the global-id ranking: score descending, GLOBAL docid
// ascending on ties (local tie order equals global tie order because
// the mapping is monotonic).
func (n *naiveLive) topk(t *testing.T, k int, terms ...string) []Result {
	t.Helper()
	rs, err := n.idx.TopK(k, terms...)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]Result, len(rs))
	for i, r := range rs {
		out[i] = Result{Doc: n.back[r.Doc], Score: r.Score}
	}
	return out
}

// checkLiveMatches asserts every query mode agrees between live and
// the naive rebuild of docs.
func checkLiveMatches(t *testing.T, l *Live, docs map[uint32]string, queries [][]string) {
	t.Helper()
	n := buildNaive(t, docs)
	if got := l.Docs(); got != len(docs) {
		t.Fatalf("live reports %d visible docs, want %d", got, len(docs))
	}
	for _, q := range queries {
		and, err := l.Conjunctive(q...)
		if err != nil {
			t.Fatal(err)
		}
		if want := n.conjunctive(t, q...); !equalU32s(and, want) {
			t.Fatalf("AND %v: live %v, naive %v", q, and, want)
		}
		or, err := l.Disjunctive(q...)
		if err != nil {
			t.Fatal(err)
		}
		if want := n.disjunctive(t, q...); !equalU32s(or, want) {
			t.Fatalf("OR %v: live %v, naive %v", q, or, want)
		}
		tk, err := l.TopK(3, q...)
		if err != nil {
			t.Fatal(err)
		}
		if want := n.topk(t, 3, q...); !(len(tk) == 0 && len(want) == 0) && !reflect.DeepEqual(tk, want) {
			t.Fatalf("TOPK %v: live %v, naive %v", q, tk, want)
		}
	}
}

func equalU32s(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

var liveQueries = [][]string{
	{"alpha"}, {"beta"}, {"gamma"}, {"delta"},
	{"alpha", "beta"}, {"beta", "gamma"}, {"alpha", "gamma", "delta"},
	{"absent"}, {"alpha", "absent"},
}

func TestLiveBasicLifecycle(t *testing.T) {
	l, err := OpenLive(t.TempDir(), LiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	docs := map[uint32]string{}
	texts := []string{
		"alpha beta", "beta gamma", "alpha gamma delta",
		"delta beta", "alpha alpha beta", "gamma delta",
	}
	for _, text := range texts {
		id, err := l.Add(text)
		if err != nil {
			t.Fatal(err)
		}
		docs[id] = text
	}
	checkLiveMatches(t, l, docs, liveQueries)

	// Seal and re-check: answers must not move when docs go immutable.
	if err := l.Seal(); err != nil {
		t.Fatal(err)
	}
	if s := l.Stats(); s.Segments != 1 || s.MemDocs != 0 {
		t.Fatalf("after seal: %+v", s)
	}
	checkLiveMatches(t, l, docs, liveQueries)

	// A second generation plus deletions across both.
	for _, text := range []string{"alpha omega", "omega beta gamma"} {
		id, err := l.Add(text)
		if err != nil {
			t.Fatal(err)
		}
		docs[id] = text
	}
	if err := l.Delete(0); err != nil { // sealed doc -> tombstone
		t.Fatal(err)
	}
	delete(docs, 0)
	if err := l.Delete(6); err != nil { // mem doc -> physical
		t.Fatal(err)
	}
	delete(docs, 6)
	checkLiveMatches(t, l, docs, liveQueries)

	if err := l.Seal(); err != nil {
		t.Fatal(err)
	}
	checkLiveMatches(t, l, docs, liveQueries)

	// Compact the two sealed segments; tombstones must be consumed.
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	if s := l.Stats(); s.Segments != 1 || s.Tombstones != 0 {
		t.Fatalf("after compact: %+v", s)
	}
	checkLiveMatches(t, l, docs, liveQueries)
}

func TestLiveDeleteErrors(t *testing.T) {
	l, err := OpenLive(t.TempDir(), LiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Delete(0); err == nil {
		t.Fatal("delete of unassigned docid succeeded")
	}
	id, err := l.Add("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Delete(id); err != nil {
		t.Fatal(err)
	}
	if err := l.Delete(id); err == nil {
		t.Fatal("double delete succeeded")
	}
	if err := l.Reinsert(id+10, "beta"); err == nil {
		t.Fatal("reinsert of never-assigned docid succeeded")
	}
	if id2, err := l.Add("gamma"); err != nil {
		t.Fatal(err)
	} else if err := l.Reinsert(id2, "delta"); err == nil {
		t.Fatal("reinsert of visible docid succeeded")
	}
}

// TestLiveDeleteThenReaddAcrossSeal is the regression test for the
// epoch-bound tombstone design: delete a sealed document, re-add the
// same docid, seal again, compact — the old tombstone must not shadow
// the re-added document at any point, and the tombstone must still
// remove the old copy during compaction.
func TestLiveDeleteThenReaddAcrossSeal(t *testing.T) {
	l, err := OpenLive(t.TempDir(), LiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	docs := map[uint32]string{}
	for _, text := range []string{"alpha beta", "beta gamma", "alpha gamma delta"} {
		id, err := l.Add(text)
		if err != nil {
			t.Fatal(err)
		}
		docs[id] = text
	}
	if err := l.Seal(); err != nil {
		t.Fatal(err)
	}

	// Delete doc 1 out of the sealed segment, then re-add the docid
	// with different text while still in the mutable segment.
	if err := l.Delete(1); err != nil {
		t.Fatal(err)
	}
	delete(docs, 1)
	checkLiveMatches(t, l, docs, liveQueries)
	if err := l.Reinsert(1, "delta delta alpha"); err != nil {
		t.Fatal(err)
	}
	docs[1] = "delta delta alpha"
	checkLiveMatches(t, l, docs, liveQueries)

	// Seal the re-add into its own segment: the tombstone (bound epoch
	// 0) and the re-added copy (epoch 1) now coexist on disk.
	if err := l.Seal(); err != nil {
		t.Fatal(err)
	}
	if s := l.Stats(); s.Segments != 2 || s.Tombstones != 1 {
		t.Fatalf("after re-add seal: %+v", s)
	}
	checkLiveMatches(t, l, docs, liveQueries)

	// Compaction must drop the old copy, keep the re-added one, and
	// prune the tombstone.
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	if s := l.Stats(); s.Segments != 1 || s.Tombstones != 0 {
		t.Fatalf("after compact: %+v", s)
	}
	checkLiveMatches(t, l, docs, liveQueries)

	// And the state must survive a reopen.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenLive(l.Dir(), LiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	checkLiveMatches(t, l2, docs, liveQueries)

	// Delete-after-re-add: a fresh tombstone with a higher bound must
	// mask the compacted copy.
	if err := l2.Delete(1); err != nil {
		t.Fatal(err)
	}
	delete(docs, 1)
	checkLiveMatches(t, l2, docs, liveQueries)
}

// TestLiveRestartReplaysWAL closes a live index with unsealed state and
// requires a reopen to reconstruct it exactly from the log.
func TestLiveRestartReplaysWAL(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLive(dir, LiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	docs := map[uint32]string{}
	for _, text := range []string{"alpha beta", "beta gamma", "alpha gamma delta", "delta beta"} {
		id, err := l.Add(text)
		if err != nil {
			t.Fatal(err)
		}
		docs[id] = text
	}
	if err := l.Seal(); err != nil {
		t.Fatal(err)
	}
	// Unsealed tail: one add, one sealed-doc delete, one mem delete.
	id, err := l.Add("omega alpha")
	if err != nil {
		t.Fatal(err)
	}
	docs[id] = "omega alpha"
	victim, err := l.Add("doomed gamma")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Delete(victim); err != nil {
		t.Fatal(err)
	}
	if err := l.Delete(2); err != nil {
		t.Fatal(err)
	}
	delete(docs, 2)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenLive(dir, LiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	checkLiveMatches(t, l2, docs, liveQueries)
	// The re-opened index must keep accepting writes with fresh ids.
	id2, err := l2.Add("fresh beta")
	if err != nil {
		t.Fatal(err)
	}
	if id2 <= victim {
		t.Fatalf("docid regressed after restart: got %d, want > %d", id2, victim)
	}
	docs[id2] = "fresh beta"
	checkLiveMatches(t, l2, docs, liveQueries)
}

// TestLiveAutoSealCompact drives the threshold-triggered background
// seal/compact path and requires query identity throughout.
func TestLiveAutoSealCompact(t *testing.T) {
	l, err := OpenLive(t.TempDir(), LiveOptions{SealDocs: 8, CompactSegments: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	rng := rand.New(rand.NewSource(7))
	vocab := []string{"alpha", "beta", "gamma", "delta", "omega"}
	docs := map[uint32]string{}
	for i := 0; i < 100; i++ {
		text := ""
		for w := 0; w < 1+rng.Intn(5); w++ {
			text += vocab[rng.Intn(len(vocab))] + " "
		}
		id, err := l.Add(text)
		if err != nil {
			t.Fatal(err)
		}
		docs[id] = text
		if i%7 == 3 && len(docs) > 2 {
			// Delete a random visible doc.
			var ids []uint32
			for d := range docs {
				ids = append(ids, d)
			}
			sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
			victim := ids[rng.Intn(len(ids))]
			if err := l.Delete(victim); err != nil {
				t.Fatal(err)
			}
			delete(docs, victim)
		}
	}
	// Force the background flushes to quiesce.
	if err := l.Seal(); err != nil {
		t.Fatal(err)
	}
	checkLiveMatches(t, l, docs, liveQueries)
	if s := l.Stats(); s.Seals == 0 {
		t.Fatalf("auto-seal never fired: %+v", s)
	}
}

func TestIDRangesRoundtrip(t *testing.T) {
	ids := []uint32{0, 1, 2, 5, 6, 9, 100, 101, 102, 103}
	r := rangesFromIDs(ids)
	if r.total() != len(ids) {
		t.Fatalf("total %d, want %d", r.total(), len(ids))
	}
	for i, g := range ids {
		if got := r.toGlobal(uint32(i)); got != g {
			t.Fatalf("toGlobal(%d) = %d, want %d", i, got, g)
		}
		if l, ok := r.toLocal(g); !ok || l != uint32(i) {
			t.Fatalf("toLocal(%d) = %d,%v, want %d", g, l, ok, i)
		}
	}
	for _, absent := range []uint32{3, 4, 7, 8, 10, 99, 104, 1 << 30} {
		if r.contains(absent) {
			t.Fatalf("contains(%d) = true", absent)
		}
	}
	if !equalU32s(r.allGlobals(), ids) {
		t.Fatal("allGlobals mismatch")
	}
	locals := []uint32{0, 3, 4, 9}
	if got := r.globals(locals); !equalU32s(got, []uint32{0, 5, 6, 103}) {
		t.Fatalf("globals(%v) = %v", locals, got)
	}
	r2 := rangesFromMeta(r.meta())
	if !equalU32s(r2.allGlobals(), ids) {
		t.Fatal("meta roundtrip mismatch")
	}
	if fmt.Sprint(rangesFromIDs(nil).meta()) != "[]" {
		t.Fatal("empty ranges meta not empty")
	}
}

func TestManifestRoundtrip(t *testing.T) {
	dir := t.TempDir()
	m := &manifest{
		Version: 1, NextDoc: 42, WALFloor: 3, WALSeq: 4, SegSeq: 7, Epoch: 5,
		Segments: []segmentMeta{{File: "seg-000001.bvix", Epoch: 2, DocMap: [][2]uint32{{0, 10}, {12, 5}}}},
	}
	bounds := map[uint32]int{3: 1, 11: 4, 200: 0}
	if err := m.encodeTombs(bounds); err != nil {
		t.Fatal(err)
	}
	if err := writeManifest(faultio.OS, dir, m); err != nil {
		t.Fatal(err)
	}
	got, ok, err := readManifest(faultio.OS, dir)
	if err != nil || !ok {
		t.Fatalf("readManifest: %v %v", ok, err)
	}
	if got.NextDoc != 42 || got.WALFloor != 3 || got.SegSeq != 7 || got.Epoch != 5 {
		t.Fatalf("manifest fields: %+v", got)
	}
	gb, err := got.decodeTombs()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gb, bounds) {
		t.Fatalf("tombs roundtrip: %v, want %v", gb, bounds)
	}
	// Corrupt one byte inside the body: the read must fail loudly.
	path := filepath.Join(dir, manifestName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-3] ^= 0x20
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readManifest(faultio.OS, dir); err == nil {
		t.Fatal("corrupted manifest read succeeded")
	}
}
