package index

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/codecs"
	"repro/internal/core"
	"repro/internal/ops"
)

// serialize4 captures WriteBVIX3Impacts output (a BVIX3 v4 file).
func serialize4(t testing.TB, idx *Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	n, err := idx.WriteBVIX3Impacts(&buf)
	if err != nil {
		t.Fatalf("WriteBVIX3Impacts: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteBVIX3Impacts reported %d bytes, wrote %d", n, buf.Len())
	}
	return buf.Bytes()
}

// openLazy4 writes idx as BVIX3 v4 to a temp file and opens it through
// the mmap-backed lazy path.
func openLazy4(t testing.TB, idx *Index) *Index {
	t.Helper()
	p := filepath.Join(t.TempDir(), "idx.bvix4")
	if err := os.WriteFile(p, serialize4(t, idx), 0o644); err != nil {
		t.Fatal(err)
	}
	lazy, err := OpenFile(p)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	return lazy
}

// reseal4Header recomputes the v4 header checksum after a mutation.
func reseal4Header(file []byte) {
	hs := bvix3HeaderSizeFor(4)
	binary.LittleEndian.PutUint32(file[hs-4:],
		crc32.Checksum(file[len(bvix3Magic):hs-4], castagnoli))
}

// sectionOffsets4 reads the four (offset, length) pairs of a v4 header.
func sectionOffsets4(file []byte) (secs [4][2]uint64) {
	for i := range secs {
		p := 24 + i*20
		secs[i] = [2]uint64{
			binary.LittleEndian.Uint64(file[p:]),
			binary.LittleEndian.Uint64(file[p+8:]),
		}
	}
	return secs
}

// topkAlgos pins every evaluation algorithm for differential checks.
var topkAlgos = []string{"exhaustive", "maxscore", "bmw"}

// bruteIndexTopK recomputes the expected ranked result straight from
// decoded postings and quantized frequencies.
func bruteIndexTopK(t *testing.T, idx *Index, k int, terms ...string) []Result {
	t.Helper()
	scores := map[uint32]int{}
	for _, term := range terms {
		e, ok := idx.entry(term)
		if !ok {
			continue
		}
		for i, d := range e.posting.Decompress() {
			var f uint16
			if i < len(e.freqs) {
				f = e.freqs[i]
			}
			scores[d] += int(QuantizeImpact(f))
		}
	}
	all := make([]Result, 0, len(scores))
	for d, s := range scores {
		all = append(all, Result{Doc: d, Score: s})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].Doc < all[j].Doc
	})
	if len(all) > k {
		all = all[:k]
	}
	if len(all) == 0 {
		return nil
	}
	return all
}

// checkTopKAllAlgos asserts every pinned algorithm (and auto) returns
// exactly the brute-force ranking on idx.
func checkTopKAllAlgos(t *testing.T, idx *Index, k int, terms ...string) {
	t.Helper()
	want := bruteIndexTopK(t, idx, k, terms...)
	for _, algo := range append([]string{"auto"}, topkAlgos...) {
		got, err := idx.TopKWith(algo, k, nil, terms...)
		if err != nil {
			t.Fatalf("TopKWith(%s, %d, %v): %v", algo, k, terms, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("TopKWith(%s, %d, %v) = %v, want %v", algo, k, terms, got, want)
		}
	}
}

func TestBVIX3ImpactsRoundTrip(t *testing.T) {
	queries := [][]string{
		{"compressed"},
		{"compressed", "lists"},
		{"roaring", "pfordelta", "bitmap"},
		{"compressed", "nonexistent"},
		{"nonexistent"},
	}
	for _, codecName := range []string{"Roaring", "PEF", "VB", "WAH"} {
		idx := buildTestIndex(t, codecName)
		file := serialize4(t, idx)
		if file[len(bvix3Magic)] != bvix3VersionImpacts {
			t.Fatalf("%s: version byte = %d, want %d", codecName, file[len(bvix3Magic)], bvix3VersionImpacts)
		}
		eager, err := Read(bytes.NewReader(file))
		if err != nil {
			t.Fatalf("%s: eager Read of v4: %v", codecName, err)
		}
		lazy := openLazy4(t, idx)
		defer lazy.Close()
		for _, view := range []*Index{idx, eager, lazy} {
			for _, q := range queries {
				for _, k := range []int{1, 2, 3, 100} {
					checkTopKAllAlgos(t, view, k, q...)
				}
			}
		}
		// The three views must agree with each other, not just rank alike.
		for _, q := range queries {
			want, _ := idx.TopK(3, q...)
			for _, view := range []*Index{eager, lazy} {
				got, err := view.TopK(3, q...)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s: reopened TopK(%v) = %v, want %v", codecName, q, got, want)
				}
			}
		}
	}
}

// TestBVIX3ImpactsConverter: WriteBVIX3Impacts recomputes annotations
// deterministically from stored frequencies, so writing v4 from the
// in-memory build, from a reopened v3 file, and from a reopened v4 file
// must produce byte-identical output — the v3→v4 upgrade path.
func TestBVIX3ImpactsConverter(t *testing.T) {
	idx := buildTestIndex(t, "Roaring")
	fromMem := serialize4(t, idx)

	v3 := openLazy(t, idx)
	defer v3.Close()
	fromV3 := serialize4(t, v3)
	if !bytes.Equal(fromMem, fromV3) {
		t.Fatal("v4 from reopened v3 differs from v4 from memory")
	}

	v4 := openLazy4(t, idx)
	defer v4.Close()
	fromV4 := serialize4(t, v4)
	if !bytes.Equal(fromMem, fromV4) {
		t.Fatal("v4 rewrite of a reopened v4 is not idempotent")
	}
}

// TestTopKImpactLessFallback: old impact-less indexes (in-memory, BVIX2,
// BVIX3 v3) still answer ranked queries — impacts derive on the fly from
// the frequency payload, and absent frequencies degrade to document
// counting.
func TestTopKImpactLessFallback(t *testing.T) {
	idx := buildTestIndex(t, "VB")
	want, err := idx.TopK(3, "compressed", "lists")
	if err != nil || len(want) == 0 {
		t.Fatalf("in-memory TopK = %v, %v", want, err)
	}

	v2, err := Read(bytes.NewReader(serialize(t, idx)))
	if err != nil {
		t.Fatal(err)
	}
	v3 := openLazy(t, idx)
	defer v3.Close()
	for name, view := range map[string]*Index{"bvix2": v2, "bvix3": v3} {
		got, err := view.TopK(3, "compressed", "lists")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: TopK = %v, want %v", name, got, want)
		}
		// Pinning bmw on an impact-less index must still be exact: the
		// lists fall back to derived annotations over decoded postings.
		checkTopKAllAlgos(t, view, 2, "compressed", "lists")
	}

	// No frequency payload at all: the document-count scorer. Every
	// posting contributes exactly 1.
	bare := &Index{docs: 8, terms: map[string]termEntry{}}
	p, err := mustCodec(t, "VB").Compress([]uint32{1, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	bare.terms["x"] = termEntry{posting: p, codec: "VB"}
	got, err := bare.TopK(2, "x")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []Result{{Doc: 1, Score: 1}, {Doc: 3, Score: 1}}) {
		t.Fatalf("document-count fallback = %v", got)
	}
}

// skewedDocs builds a corpus with genuinely long posting lists (many
// 128-posting blocks): a handful of common words with varied repetition
// plus rare terms confined to scattered documents — the shape Block-Max
// pruning exists for.
func skewedDocs(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	docs := make([]string, n)
	for d := range docs {
		var sb strings.Builder
		// Common words: long lists, impact pinned at 1 — the lists
		// pruning must learn to skip once the threshold clears 1.
		if rng.Intn(100) < 70 {
			fmt.Fprintf(&sb, "common%d ", rng.Intn(4))
		}
		// Mid-frequency word with impact variety.
		if rng.Intn(20) == 0 {
			for r := 1 + rng.Intn(3); r > 0; r-- {
				sb.WriteString("mid ")
			}
		}
		// Rare, high-impact word: its documents set the threshold.
		if rng.Intn(300) == 0 {
			for r := 4 + rng.Intn(4); r > 0; r-- {
				sb.WriteString("rare ")
			}
		}
		if sb.Len() == 0 {
			sb.WriteString("filler")
		}
		docs[d] = sb.String()
	}
	return docs
}

// TestTopKPrunedMatchesExhaustiveProperty is the differential property
// test: across seeded corpora, codecs, query shapes, and k (including
// k far beyond the result count), Block-Max-WAND and MaxScore return
// exactly the exhaustive ranking — through BVIX3 v4 write and reopen,
// where the pruned evaluation runs over lazily decoded blocks.
func TestTopKPrunedMatchesExhaustiveProperty(t *testing.T) {
	queries := [][]string{
		{"rare"},
		{"common0"},
		{"rare", "common1"},
		{"rare", "mid"},
		{"mid", "common2"},
		{"common0", "common1", "common2"},
		{"rare", "mid", "common0", "common3", "nonexistent"},
	}
	for seed := int64(1); seed <= 3; seed++ {
		for _, codecName := range []string{"VB", "Roaring"} {
			b := NewBuilder(mustCodec(t, codecName))
			for _, d := range skewedDocs(3000, seed) {
				b.AddDocument(d)
			}
			built, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			lazy := openLazy4(t, built)
			for _, q := range queries {
				for _, k := range []int{1, 10, 100, 100000} {
					checkTopKAllAlgos(t, lazy, k, q...)
				}
			}
			lazy.Close()
		}
	}
}

// TestTopKBlockMaxSkipsBlocks proves the point of the tentpole: on a
// selective query over a v4 file with list-coded postings, Block-Max
// pruning materializes strictly fewer posting blocks than exhaustive
// evaluation, while returning the identical ranking.
func TestTopKBlockMaxSkipsBlocks(t *testing.T) {
	// A corpus shaped for pruning: "common0" spans dozens of 128-posting
	// blocks at impact 1, while "rare" hits a handful of scattered
	// documents at impact 4-7. Once the heap threshold clears 1, no
	// common0-only document can win, so Block-Max evaluation should only
	// materialize the common0 blocks that contain a rare document.
	rng := rand.New(rand.NewSource(99))
	b := NewBuilder(mustCodec(t, "VB"))
	for i := 0; i < 20000; i++ {
		var sb strings.Builder
		if rng.Intn(100) < 70 {
			fmt.Fprintf(&sb, "common%d ", rng.Intn(4))
		}
		if rng.Intn(2000) == 0 {
			for r := 4 + rng.Intn(4); r > 0; r-- {
				sb.WriteString("rare ")
			}
		}
		if sb.Len() == 0 {
			sb.WriteString("filler")
		}
		b.AddDocument(sb.String())
	}
	built, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	lazy := openLazy4(t, built)
	defer lazy.Close()

	query := []string{"rare", "common0"}
	if built.Postings("rare").Len() < 3 {
		t.Fatal("seed produced too few rare documents")
	}
	var ex, bmw ops.TopKStats
	wantRes, err := lazy.TopKWith("exhaustive", 10, &ex, query...)
	if err != nil {
		t.Fatal(err)
	}
	gotRes, err := lazy.TopKWith("bmw", 10, &bmw, query...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotRes, wantRes) {
		t.Fatalf("bmw = %v, want %v", gotRes, wantRes)
	}
	if ex.BlocksTotal < 10 {
		t.Fatalf("corpus too small to exercise pruning: %d total blocks", ex.BlocksTotal)
	}
	if ex.BlocksDecoded != ex.BlocksTotal {
		t.Fatalf("exhaustive decoded %d of %d blocks", ex.BlocksDecoded, ex.BlocksTotal)
	}
	if bmw.BlocksDecoded >= ex.BlocksDecoded {
		t.Fatalf("bmw decoded %d blocks, exhaustive %d — no pruning", bmw.BlocksDecoded, ex.BlocksDecoded)
	}
	t.Logf("blocks decoded: exhaustive %d/%d, bmw %d/%d",
		ex.BlocksDecoded, ex.BlocksTotal, bmw.BlocksDecoded, bmw.BlocksTotal)
}

// TestBVIX3ImpactsDegraded: a v4 file whose impacts section fails its
// checksum still serves every posting; only the terms whose impact
// records no longer pass their per-record CRC lose annotations, and
// ranked queries on them fall back to frequency-derived impacts —
// returning the identical results, since the stored annotations were
// derived from those same frequencies.
func TestBVIX3ImpactsDegraded(t *testing.T) {
	b := NewAutoBuilder()
	for _, d := range wideDocs(300) {
		b.AddDocument(d)
	}
	built, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pristine := serialize4(t, built)
	secs := sectionOffsets4(pristine)
	impOff, impLen := secs[3][0], secs[3][1]
	names, _, err := built.sortedEntries()
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string]struct {
		corrupt uint64
		minQ    int
	}{
		"record":       {impOff + 8*uint64(len(names)) + 9, 1}, // inside the first record's body
		"offset-table": {impOff + 3, 1},                        // high bits of term 0's record offset
		// The section's final byte may be record padding, which no
		// per-record CRC covers: the open still degrades (section CRC
		// failed) but may legitimately quarantine nothing.
		"last-byte": {impOff + impLen - 1, 0},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			mut := append([]byte{}, pristine...)
			mut[tc.corrupt] ^= 0xA5

			// The strict open paths must reject the file outright.
			if _, err := Read(bytes.NewReader(mut)); !errors.Is(err, core.ErrChecksum) {
				t.Fatalf("strict Read: %v, want ErrChecksum", err)
			}

			p := filepath.Join(t.TempDir(), "corrupt.bvix4")
			if err := os.WriteFile(p, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			deg, err := OpenFileDegraded(p)
			if err != nil {
				t.Fatalf("OpenFileDegraded: %v", err)
			}
			defer deg.Close()

			h := deg.Health()
			if !h.Degraded || !reflect.DeepEqual(h.QuarantinedSections, []string{"impacts"}) {
				t.Fatalf("health = %+v", h)
			}
			if h.QuarantinedTerms != 0 {
				t.Fatalf("impact damage must not withhold terms: %+v", h)
			}
			if h.QuarantinedImpacts < tc.minQ {
				t.Fatalf("quarantined %d impact records, want at least %d: %+v",
					h.QuarantinedImpacts, tc.minQ, h)
			}

			// Every posting list survives bit-exact, and ranked queries
			// return exactly the pristine results.
			for _, term := range names {
				if !reflect.DeepEqual(deg.DecodedPostings(term), built.DecodedPostings(term)) {
					t.Fatalf("term %q postings diverged", term)
				}
			}
			q := []string{names[0], names[len(names)/2], names[len(names)-1]}
			want, _ := built.TopK(10, q...)
			got, err := deg.TopK(10, q...)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("degraded TopK = %v, want %v", got, want)
			}
			checkTopKAllAlgos(t, deg, 5, q...)
		})
	}
}

// TestBVIX3ImpactsRejectsBitFlips extends the v3 bit-flip sweep to v4:
// every byte of an impacts-bearing file is covered by a check.
func TestBVIX3ImpactsRejectsBitFlips(t *testing.T) {
	file := serialize4(t, buildTestIndex(t, "VB"))
	for i := range file {
		mut := make([]byte, len(file))
		copy(mut, file)
		mut[i] ^= 0x01
		_, err := Read(bytes.NewReader(mut))
		if err == nil {
			t.Fatalf("flip at byte %d accepted", i)
		}
		if i == len(bvix3Magic) && errors.Is(err, core.ErrVersion) {
			continue
		}
		if i >= len(bvix3Magic) && !errors.Is(err, core.ErrChecksum) &&
			!strings.Contains(err.Error(), "padding") {
			t.Fatalf("flip at byte %d: got %v, want ErrChecksum or a padding error", i, err)
		}
	}
}

// TestBVIX3ImpactsTruncation: cuts anywhere — including inside the
// impacts section — and trailing garbage are rejected by both open
// paths.
func TestBVIX3ImpactsTruncation(t *testing.T) {
	file := serialize4(t, buildTestIndex(t, "PEF"))
	secs := sectionOffsets4(file)
	hs := bvix3HeaderSizeFor(4)
	cuts := []int{0, 4, len(bvix3Magic), hs - 1, hs, bvix3DataStart,
		int(secs[3][0]), int(secs[3][0] + secs[3][1]/2), len(file) - 1}
	for _, cut := range cuts {
		if _, err := Read(bytes.NewReader(file[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
		if _, err := openBVIX3Lazy(file[:cut], nil); err == nil {
			t.Fatalf("lazy open of truncation at %d accepted", cut)
		}
	}
	trailing := append(append([]byte{}, file...), 0)
	if _, err := Read(bytes.NewReader(trailing)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// TestBVIX3ImpactsLyingGeometry mutates v4-specific structure with all
// checksums resealed, so the walkImpacts validation (not a CRC) is what
// must reject: a lying offset table, an impossible block count, and a
// section-length cut landing mid-record.
func TestBVIX3ImpactsLyingGeometry(t *testing.T) {
	pristine := serialize4(t, buildTestIndex(t, "Roaring"))
	secs := sectionOffsets4(pristine)
	impOff := secs[3][0]
	resealImpacts := func(file []byte) {
		s := sectionOffsets4(file)
		binary.LittleEndian.PutUint32(file[24+3*20+16:],
			crc32.Checksum(file[s[3][0]:s[3][0]+s[3][1]], castagnoli))
		reseal4Header(file)
	}

	t.Run("offset-table-lies", func(t *testing.T) {
		mut := append([]byte{}, pristine...)
		binary.LittleEndian.PutUint64(mut[impOff:], 1) // misaligned, wrong
		resealImpacts(mut)
		if _, err := Read(bytes.NewReader(mut)); err == nil {
			t.Fatal("lying offset table accepted")
		}
		if _, err := openBVIX3Lazy(mut, nil); err == nil {
			t.Fatal("lazy open accepted lying offset table")
		}
	})

	t.Run("block-count-lies", func(t *testing.T) {
		mut := append([]byte{}, pristine...)
		// First record's block count field (after the offset table).
		names, _, err := buildTestIndex(t, "Roaring").sortedEntries()
		if err != nil {
			t.Fatal(err)
		}
		rec0 := impOff + 8*uint64(len(names))
		binary.LittleEndian.PutUint32(mut[rec0+4:], 7)
		resealImpacts(mut)
		if _, err := Read(bytes.NewReader(mut)); err == nil {
			t.Fatal("lying block count accepted")
		}
	})
}

// mustCodec resolves a codec name or fails the test.
func mustCodec(t testing.TB, name string) core.Codec {
	t.Helper()
	c, err := codecs.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}
