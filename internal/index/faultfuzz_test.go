package index

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/faultio"
)

// FuzzFaultioOpen drives both BVIX3 open paths with deterministically
// corrupted images: faultio.Mutate turns the fuzzed seed into bit
// flips, zeroed runs, and truncations of a pristine index. The strict
// opener must never panic and must never silently accept altered data
// — if an image opens strictly, every probe must answer exactly as the
// pristine index does. The degraded opener must never panic and, when
// it salvages, each served term must decode to a sane posting list.
func FuzzFaultioOpen(f *testing.F) {
	idx, err := buildFuzzIndex("Roaring")
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := idx.WriteBVIX3(&buf); err != nil {
		f.Fatal(err)
	}
	pristine := buf.Bytes()
	probes := []string{"compressed", "bitmap", "lists", "zzz", ""}
	want := map[string][]uint32{}
	for _, p := range probes {
		want[p] = idx.DecodedPostings(p)
	}

	f.Add(int64(0)) // identity: the known-clean image must open
	for seed := int64(1); seed <= 64; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		img := faultio.Mutate(append([]byte{}, pristine...), seed)

		strict, err := openBVIX3Lazy(img, nil)
		if err == nil {
			for _, p := range probes {
				if got := strict.DecodedPostings(p); !reflect.DeepEqual(got, want[p]) {
					t.Fatalf("seed %d: strict open accepted a corrupt image and served wrong postings for %q: %v != %v",
						seed, p, got, want[p])
				}
			}
		} else if seed == 0 {
			t.Fatalf("strict open rejected the pristine image: %v", err)
		}

		deg, derr := openBVIX3Degraded(append([]byte{}, img...), nil)
		if derr != nil {
			return
		}
		if deg.Docs() < 0 || deg.Terms() < 0 || deg.SizeBytes() < 0 {
			t.Fatalf("seed %d: degraded open produced nonsense shape: docs=%d terms=%d size=%d",
				seed, deg.Docs(), deg.Terms(), deg.SizeBytes())
		}
		h := deg.Health()
		if h.QuarantinedTerms < 0 || len(h.QuarantinedSections) > 3 {
			t.Fatalf("seed %d: nonsense health %+v", seed, h)
		}
		for _, p := range probes {
			for _, doc := range deg.DecodedPostings(p) {
				if int(doc) >= deg.Docs() {
					t.Fatalf("seed %d: degraded index served doc %d beyond its %d docs for %q",
						seed, doc, deg.Docs(), p)
				}
			}
		}
	})
}
