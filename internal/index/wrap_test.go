package index

import (
	"bytes"
	"errors"
	"io"
	"os"
	"testing"

	"repro/internal/core"
)

// Regression tests for error-chain integrity: every open path must
// wrap with %w all the way up, so callers (bvserve's retry loop, the
// degraded fallback, operators' scripts) can classify failures with
// errors.Is instead of string matching. One test per on-disk format.

func TestOpenFileWrapsChecksumBVIX3(t *testing.T) {
	file := serialize3(t, buildTestIndex(t, "Roaring"))
	secs := sectionOffsets(file)
	file[secs[2][0]] ^= 0x01 // payload byte, breaks the section CRC
	p := writeTemp3(t, file)

	_, err := OpenFile(p)
	if !errors.Is(err, core.ErrChecksum) {
		t.Fatalf("OpenFile on corrupt BVIX3 = %v, want errors.Is ErrChecksum", err)
	}
	if _, rerr := Read(bytes.NewReader(file)); !errors.Is(rerr, core.ErrChecksum) {
		t.Fatalf("Read on corrupt BVIX3 = %v, want errors.Is ErrChecksum", rerr)
	}
	if !core.IsPermanentFormat(err) || core.IsTransient(err) {
		t.Fatalf("corrupt BVIX3 misclassified: permanent=%v transient=%v",
			core.IsPermanentFormat(err), core.IsTransient(err))
	}
}

func TestOpenFileWrapsChecksumBVIX2(t *testing.T) {
	file := serialize(t, buildTestIndex(t, "Roaring"))
	file[len(file)/2] ^= 0x01 // body byte; trailer CRC now lies
	p := writeTemp3(t, file)

	_, err := OpenFile(p)
	if !errors.Is(err, core.ErrChecksum) {
		t.Fatalf("OpenFile on corrupt BVIX2 = %v, want errors.Is ErrChecksum", err)
	}
	if _, rerr := Read(bytes.NewReader(file)); !errors.Is(rerr, core.ErrChecksum) {
		t.Fatalf("Read on corrupt BVIX2 = %v, want errors.Is ErrChecksum", rerr)
	}
	if core.IsTransient(err) {
		t.Fatal("checksum failure classified transient")
	}
}

// BVIX1 has no checksum, so its corruption signature is a truncation
// error; the chain must still carry the sentinel io error through the
// path-wrapping layer of OpenFile.
func TestOpenFileWrapsTruncationBVIX1(t *testing.T) {
	legacy := writeLegacy(t, buildTestIndex(t, "Roaring"))
	cut := legacy[:len(legacy)-3]
	p := writeTemp3(t, cut)

	_, err := OpenFile(p)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("OpenFile on truncated BVIX1 = %v, want errors.Is io.ErrUnexpectedEOF", err)
	}
	if _, rerr := Read(bytes.NewReader(cut)); !errors.Is(rerr, io.ErrUnexpectedEOF) {
		t.Fatalf("Read on truncated BVIX1 = %v, want errors.Is io.ErrUnexpectedEOF", rerr)
	}
}

func TestOpenFileWrapsVersion(t *testing.T) {
	file := serialize3(t, buildTestIndex(t, "Roaring"))
	file[len(bvix3Magic)] = 0x7F // version byte
	reseal3Header(file)
	p := writeTemp3(t, file)

	_, err := OpenFile(p)
	if !errors.Is(err, core.ErrVersion) {
		t.Fatalf("OpenFile on future-versioned BVIX3 = %v, want errors.Is ErrVersion", err)
	}
	if !core.IsPermanentFormat(err) {
		t.Fatal("version failure not classified permanent-format")
	}
}

func TestOpenFileWrapsNotExist(t *testing.T) {
	_, err := OpenFile(writeTemp3(t, nil) + ".missing")
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("OpenFile on missing path = %v, want errors.Is fs.ErrNotExist", err)
	}
	if core.IsTransient(err) {
		t.Fatal("missing file classified transient")
	}
}
