package index

import (
	"reflect"
	"testing"

	"repro/internal/index/mapfile"
)

// TestOpenFilePortableFallback routes OpenFile through the heap-copy
// mapfile path — the view windows CI ships with — and checks the lazy
// index behaves identically: same shape, same postings, clean Close.
func TestOpenFilePortableFallback(t *testing.T) {
	prev := openMapFile
	openMapFile = mapfile.OpenPortable
	defer func() { openMapFile = prev }()

	idx := buildWideIndex(t, "Roaring", 1)
	p := writeTemp3(t, serialize3(t, idx))
	got, err := OpenFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Docs() != idx.Docs() || got.Terms() != idx.Terms() {
		t.Fatalf("portable open shape = (%d docs, %d terms), want (%d, %d)",
			got.Docs(), got.Terms(), idx.Docs(), idx.Terms())
	}
	names, _, err := idx.sortedEntries()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		if !reflect.DeepEqual(got.DecodedPostings(name), idx.DecodedPostings(name)) {
			t.Fatalf("portable open served wrong postings for %q", name)
		}
	}
	if err := got.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Degraded open goes through the same hook.
	deg, err := OpenFileDegraded(p)
	if err != nil {
		t.Fatal(err)
	}
	if deg.Health().Degraded {
		t.Fatal("clean file opened degraded on the portable path")
	}
	if err := deg.Close(); err != nil {
		t.Fatalf("degraded Close: %v", err)
	}
}
