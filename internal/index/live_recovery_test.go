package index

import (
	"fmt"
	"testing"

	"repro/internal/faultio"
)

// liveOp is one step of the scripted recovery workload. Adds and
// deletes are the logical mutations the recovery invariant is stated
// over; seal and compact reorganize storage without changing the
// visible document set.
type liveOp struct {
	kind byte // 'a' add, 'd' delete, 's' seal, 'c' compact
	text string
	doc  uint32
}

// recoveryScript exercises every protocol the live index runs: WAL
// appends, two seals (so compaction has inputs), a tombstone against a
// sealed segment, a physical mem delete, a compaction that consumes
// the tombstone, and a post-compaction tail. Every add carries a
// unique sentinel term so the recovered prefix is identifiable.
var recoveryScript = []liveOp{
	{kind: 'a', text: "sent0 alpha beta"},
	{kind: 'a', text: "sent1 beta gamma"},
	{kind: 'a', text: "sent2 alpha gamma delta"},
	{kind: 's'},
	{kind: 'a', text: "sent3 beta delta"},
	{kind: 'd', doc: 1}, // tombstone a sealed doc
	{kind: 'a', text: "sent4 gamma alpha"},
	{kind: 'd', doc: 4}, // physical delete of a mem doc
	{kind: 's'},
	{kind: 'a', text: "sent5 delta beta"},
	{kind: 'c'},
	{kind: 'a', text: "sent6 alpha beta gamma"},
}

// mutationCount counts the logical mutations (adds + deletes) in the
// script; seal/compact are excluded from prefix arithmetic.
func mutationCount(script []liveOp) int {
	n := 0
	for _, op := range script {
		if op.kind == 'a' || op.kind == 'd' {
			n++
		}
	}
	return n
}

// applyPrefix computes the document set after the first p mutations of
// the script: docids are assigned in add order, exactly as Live does.
func applyPrefix(script []liveOp, p int) map[uint32]string {
	docs := map[uint32]string{}
	next := uint32(0)
	seen := 0
	for _, op := range script {
		if seen == p {
			break
		}
		switch op.kind {
		case 'a':
			docs[next] = op.text
			next++
			seen++
		case 'd':
			delete(docs, op.doc)
			seen++
		}
	}
	return docs
}

// runLiveWorkload drives the script against a live index on fsys,
// stopping at the first error (after a Kill fault fires, every
// subsequent filesystem op fails, like a dead process's would). It
// returns the number of logical mutations that were acked.
func runLiveWorkload(fsys faultio.FS, dir string) (acked int, err error) {
	l, err := OpenLive(dir, LiveOptions{FS: fsys})
	if err != nil {
		return 0, err
	}
	defer l.Close()
	for _, op := range recoveryScript {
		switch op.kind {
		case 'a':
			if _, err := l.Add(op.text); err != nil {
				return acked, err
			}
			acked++
		case 'd':
			if err := l.Delete(op.doc); err != nil {
				return acked, err
			}
			acked++
		case 's':
			if err := l.Seal(); err != nil {
				return acked, err
			}
		case 'c':
			if err := l.Compact(); err != nil {
				return acked, err
			}
		}
	}
	return acked, nil
}

// submittedAfter returns how many mutations had been handed to the
// index when the workload stopped: the acked ones plus the one
// in-flight mutation if the failing op was an add or delete. A record
// for the in-flight mutation may or may not have reached the log —
// both outcomes are legal recoveries.
func submittedAfter(acked int, failed bool) int {
	total := mutationCount(recoveryScript)
	if !failed {
		return acked
	}
	if acked < total {
		return acked + 1
	}
	return total
}

// identifyPrefix finds which mutation prefix the recovered index
// equals, probing the per-document sentinel terms. It fails the test
// if no prefix in [lo, hi] matches — that would mean recovery lost an
// acked mutation, resurrected an unacked one out of order, or left a
// document half-applied.
func identifyPrefix(t *testing.T, point string, l *Live, lo, hi int) int {
	t.Helper()
	for p := lo; p <= hi; p++ {
		if prefixMatches(t, l, p) {
			return p
		}
	}
	t.Fatalf("%s: recovered state matches no mutation prefix in [%d, %d] (visible docs: %d)",
		point, lo, hi, l.Docs())
	return -1
}

func prefixMatches(t *testing.T, l *Live, p int) bool {
	t.Helper()
	want := applyPrefix(recoveryScript, p)
	if l.Docs() != len(want) {
		return false
	}
	// Every add in the whole script gets probed: its sentinel must hit
	// exactly its docid when the doc is visible in this prefix and
	// nothing otherwise.
	next := uint32(0)
	seen := 0
	for _, op := range recoveryScript {
		if op.kind != 'a' && op.kind != 'd' {
			continue
		}
		if op.kind == 'a' {
			sentinel := fmt.Sprintf("sent%d", next)
			got, err := l.Conjunctive(sentinel)
			if err != nil {
				t.Fatalf("probing %s: %v", sentinel, err)
			}
			_, visible := want[next]
			if visible && !(len(got) == 1 && got[0] == next) {
				return false
			}
			if !visible && len(got) != 0 {
				return false
			}
			next++
		}
		seen++
	}
	return true
}

// checkRecovered verifies one post-crash reopen: the state must be a
// legal mutation prefix and the full query sweep over that prefix's
// naive truth must agree, then the index must accept new writes.
func checkRecovered(t *testing.T, point, dir string, acked int, failed bool) {
	t.Helper()
	l, err := OpenLive(dir, LiveOptions{})
	if err != nil {
		t.Fatalf("%s: reopen after crash failed: %v", point, err)
	}
	defer l.Close()
	hi := submittedAfter(acked, failed)
	p := identifyPrefix(t, point, l, acked, hi)
	docs := applyPrefix(recoveryScript, p)
	checkLiveMatches(t, l, docs, liveQueries)
	// The recovered index must remain writable with a fresh docid.
	id, err := l.Add("postcrash omega")
	if err != nil {
		t.Fatalf("%s: add after recovery: %v", point, err)
	}
	docs[id] = "postcrash omega"
	checkLiveMatches(t, l, docs, liveQueries)
}

// TestLiveRecoveryMatrix is the acceptance gate for crash-safe
// ingestion: learn the complete filesystem op trace of the scripted
// workload, then for every op in that trace kill the process at that
// op (all later I/O fails) and assert that reopening the live
// directory recovers to exactly a legal mutation prefix — at least
// everything acked, at most everything submitted, never a blend or a
// half-applied document — and that a full query sweep over the
// recovered state is byte-identical to a from-scratch rebuild.
func TestLiveRecoveryMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("recovery matrix is not a -short test")
	}
	// Learn the clean trace.
	trace, err := faultio.Record(faultio.OS, func(fs faultio.FS) error {
		_, err := runLiveWorkload(fs, t.TempDir())
		return err
	})
	if err != nil {
		t.Fatalf("clean workload failed: %v", err)
	}
	if len(trace) < 30 {
		t.Fatalf("workload ran only %d filesystem ops: %v", len(trace), trace)
	}
	t.Logf("kill matrix over %d filesystem ops", len(trace))

	for n := 1; n <= len(trace); n++ {
		dir := t.TempDir()
		inj := faultio.NewInjector(faultio.OS,
			faultio.Fault{Op: faultio.OpAny, N: n, Mode: faultio.ModeErr, Kill: true})
		acked, werr := runLiveWorkload(inj, dir)
		point := fmt.Sprintf("kill@%d(%s)", n, trace[n-1].Op)
		checkRecovered(t, point, dir, acked, werr != nil)
	}
}

// TestLiveRecoveryTornWrites is the torn-write sub-matrix: every write
// op in the trace dies mid-write at several byte offsets, modeling a
// crash between write and fsync. The WAL's CRC framing and the
// atomic-publish discipline must still recover a legal prefix.
func TestLiveRecoveryTornWrites(t *testing.T) {
	if testing.Short() {
		t.Skip("recovery matrix is not a -short test")
	}
	trace, err := faultio.Record(faultio.OS, func(fs faultio.FS) error {
		_, err := runLiveWorkload(fs, t.TempDir())
		return err
	})
	if err != nil {
		t.Fatalf("clean workload failed: %v", err)
	}
	writeIdx := 0
	for _, rec := range trace {
		if rec.Op != faultio.OpWrite {
			continue
		}
		writeIdx++
		for _, k := range []int{0, 1, rec.Bytes / 2, rec.Bytes - 1} {
			if k < 0 || k >= rec.Bytes {
				continue
			}
			dir := t.TempDir()
			inj := faultio.NewInjector(faultio.OS,
				faultio.Fault{Op: faultio.OpWrite, N: writeIdx, Mode: faultio.ModeTorn, TornBytes: k, Kill: true})
			acked, werr := runLiveWorkload(inj, dir)
			point := fmt.Sprintf("torn-write@%d+%db", writeIdx, k)
			checkRecovered(t, point, dir, acked, werr != nil)
		}
	}
	if writeIdx == 0 {
		t.Fatal("trace contained no writes")
	}
}
