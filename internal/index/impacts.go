package index

import (
	"encoding"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"repro/internal/codecs"
	"repro/internal/core"
	"repro/internal/ops"
)

// Impact-annotated postings: the BVIX3 v4 impacts section and its
// in-memory form. Ranked top-k retrieval scores a document as the sum
// of its quantized per-term impacts; Block-Max pruning additionally
// needs, per term, the maximum impact of every 128-posting block and
// the block's last docid, so the engine can prove a block cannot beat
// the heap threshold without decoding it.
//
// Impacts section layout (little-endian):
//
//	[0, 8×terms)  offset table: per term in dict order, the
//	              section-relative u64 offset of its impact record
//	records, 8-byte aligned, in dict order, tiling the rest exactly:
//	  u32  crc32c over the rest of the record (pre-padding)
//	  u32  block count (= ceil(count / blockLen); 0 for empty terms)
//	  u32  blob length
//	  u8   term max impact
//	  u8   encoding (0 = codec blob, 1 = raw impact bytes)
//	  u16  blockLen (postings per impact block; writer uses 128)
//	  block count × u32  block last docid (strictly increasing)
//	  block count × u8   block max impact (each in [1, term max])
//	  blob, then zero padding to 8-byte alignment
//
// Quantization is saturating-linear: impact = min(freq, 255), floored
// at 1 so every posting contributes (absent frequencies degrade to the
// document-count scorer, 1 per matching term). Encoding 0 stores the
// impacts' cumulative sums — strictly increasing, so any list codec in
// the registry can carry them and gaps recover the impacts — using the
// term's own per-list codec; the writer falls back to encoding 1 (one
// raw byte per posting) whenever the codec blob would not be smaller,
// the term's codec is a bitmap (whose size scales with the cumulative
// universe, not the posting count), or the cumulative sum would
// overflow u32.
//
// The per-record CRC mirrors the payload section's: when the impacts
// section's CRC fails, a degraded open re-verifies record by record
// and quarantines only the terms whose impact bytes no longer
// checksum — their docid postings stay fully served, with ranking
// falling back to frequency-derived impacts.
const (
	impactBlockLen     = 128 // must match intlist.BlockSize for lazy block cursors
	maxImpact          = 255
	impactsRecordFixed = 4 + 4 + 4 + 1 + 1 + 2
	impactEncCodec     = 0 // blob = codec-compressed cumulative impact sums
	impactEncRaw       = 1 // blob = count raw impact bytes
)

// QuantizeImpact maps a stored term frequency to its quantized impact:
// min(freq, 255), floored at 1 so a posting with no recorded frequency
// still scores as a match.
func QuantizeImpact(freq uint16) uint8 {
	switch {
	case freq == 0:
		return 1
	case freq > maxImpact:
		return maxImpact
	default:
		return uint8(freq)
	}
}

// impactMeta is one term's heap-owned impact annotations (never
// aliasing a mapping): the per-posting quantized impacts plus the
// block-max frame.
type impactMeta struct {
	quant     []uint8  // per posting, aligned with the docids
	blockLast []uint32 // last docid of each impact block
	blockMax  []uint8  // max impact within each block
	termMax   uint8
	blockLen  int // postings per block
}

// buildImpactMeta derives impact annotations from decoded docids and
// stored frequencies — the writer's source of truth and the query-time
// fallback for impact-less indexes. A nil/short freqs slice yields
// impact 1 (document-count scoring) for the uncovered postings.
func buildImpactMeta(docs []uint32, freqs []uint16) *impactMeta {
	n := len(docs)
	m := &impactMeta{blockLen: impactBlockLen}
	if n == 0 {
		return m
	}
	nb := (n + impactBlockLen - 1) / impactBlockLen
	m.quant = make([]uint8, n)
	m.blockLast = make([]uint32, nb)
	m.blockMax = make([]uint8, nb)
	for i, d := range docs {
		q := uint8(1)
		if i < len(freqs) {
			q = QuantizeImpact(freqs[i])
		}
		m.quant[i] = q
		b := i / impactBlockLen
		m.blockLast[b] = d
		if q > m.blockMax[b] {
			m.blockMax[b] = q
		}
		if q > m.termMax {
			m.termMax = q
		}
	}
	return m
}

// impactBlob picks the smaller of the two encodings for a term's
// quantized impacts. codecName is the term's per-list codec; only list
// codecs compete (a bitmap's size scales with the cumulative-sum
// universe, which raw bytes always beat).
func impactBlob(m *impactMeta, codecName string) ([]byte, byte) {
	n := len(m.quant)
	if n == 0 {
		return nil, impactEncRaw
	}
	if codecName != "" && uint64(n)*maxImpact < 1<<32 {
		if c, err := codecs.ByName(codecName); err == nil && c.Kind() == core.KindList {
			cum := make([]uint32, n)
			var s uint32
			for i, q := range m.quant {
				s += uint32(q)
				cum[i] = s
			}
			if p, err := c.Compress(cum); err == nil {
				if bm, ok := p.(encoding.BinaryMarshaler); ok {
					if blob, err := bm.MarshalBinary(); err == nil && len(blob) < n {
						return blob, impactEncCodec
					}
				}
			}
		}
	}
	out := make([]byte, n)
	copy(out, m.quant)
	return out, impactEncRaw
}

// appendImpactsRecord encodes one term's impact record (CRC first,
// zero-padded to 8 bytes) onto the impacts section under construction.
func appendImpactsRecord(dst []byte, m *impactMeta, codecName string) []byte {
	blob, enc := impactBlob(m, codecName)
	rec := make([]byte, 0, impactsRecordFixed-4+5*len(m.blockLast)+len(blob))
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(m.blockLast)))
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(blob)))
	rec = append(rec, m.termMax, enc)
	rec = binary.LittleEndian.AppendUint16(rec, impactBlockLen)
	for _, last := range m.blockLast {
		rec = binary.LittleEndian.AppendUint32(rec, last)
	}
	rec = append(rec, m.blockMax...)
	rec = append(rec, blob...)
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(rec, castagnoli))
	dst = append(dst, rec...)
	for len(dst)%bvix3RecAlign != 0 {
		dst = append(dst, 0)
	}
	return dst
}

// impactsRecord is one parsed, structurally validated impact record.
// The byte slices borrow from the section; materialize copies.
type impactsRecord struct {
	crc        uint32
	blockCount int
	blobLen    int
	termMax    uint8
	encoding   uint8
	blockLen   int
	blockLast  []byte // 4 × blockCount
	blockMax   []byte // blockCount
	blob       []byte
	body       []byte // everything the crc covers
	end        uint64 // section-relative offset past the padded record
}

// parseImpactsRecord reads the impact record at section-relative
// offset off for a term with count postings in a docs-document index,
// re-checking bounds and every structural invariant the pruning
// algorithms rely on: block count consistent with the posting count,
// block last-docids strictly increasing and in range, block maxima in
// [1, termMax] with the term max actually attained.
func parseImpactsRecord(sec []byte, off uint64, count, docs int) (impactsRecord, error) {
	if off%bvix3RecAlign != 0 || off+impactsRecordFixed > uint64(len(sec)) {
		return impactsRecord{}, fmt.Errorf("index: impacts record at %d overruns section", off)
	}
	r := impactsRecord{
		crc:        binary.LittleEndian.Uint32(sec[off:]),
		blockCount: int(binary.LittleEndian.Uint32(sec[off+4:])),
		blobLen:    int(binary.LittleEndian.Uint32(sec[off+8:])),
		termMax:    sec[off+12],
		encoding:   sec[off+13],
		blockLen:   int(binary.LittleEndian.Uint16(sec[off+14:])),
	}
	if r.blockLen < 1 {
		return impactsRecord{}, fmt.Errorf("index: impacts record block length %d invalid", r.blockLen)
	}
	wantBlocks := (count + r.blockLen - 1) / r.blockLen
	if r.blockCount != wantBlocks {
		return impactsRecord{}, fmt.Errorf("index: impacts record declares %d blocks for %d postings (block length %d)", r.blockCount, count, r.blockLen)
	}
	need := uint64(impactsRecordFixed) + 5*uint64(r.blockCount) + uint64(r.blobLen)
	if off+need < off || off+need > uint64(len(sec)) {
		return impactsRecord{}, fmt.Errorf("index: impacts record at %d overruns section", off)
	}
	if r.encoding != impactEncCodec && r.encoding != impactEncRaw {
		return impactsRecord{}, fmt.Errorf("index: impacts record encoding %d unknown", r.encoding)
	}
	if r.encoding == impactEncRaw && r.blobLen != count {
		return impactsRecord{}, fmt.Errorf("index: raw impacts blob is %d bytes for %d postings", r.blobLen, count)
	}
	if (count == 0) != (r.termMax == 0) {
		return impactsRecord{}, fmt.Errorf("index: impacts record term max %d for %d postings", r.termMax, count)
	}
	p := off + impactsRecordFixed
	r.blockLast = sec[p : p+4*uint64(r.blockCount)]
	p += 4 * uint64(r.blockCount)
	r.blockMax = sec[p : p+uint64(r.blockCount)]
	p += uint64(r.blockCount)
	r.blob = sec[p : p+uint64(r.blobLen)]
	r.body = sec[off+4 : off+need]
	r.end = align(off+need, bvix3RecAlign)
	var prev uint32
	attained := uint8(0)
	for i := 0; i < r.blockCount; i++ {
		last := binary.LittleEndian.Uint32(r.blockLast[4*i:])
		if (i > 0 && last <= prev) || uint64(last) >= uint64(docs) {
			return impactsRecord{}, fmt.Errorf("index: impacts record block %d last docid %d out of order or range", i, last)
		}
		prev = last
		bm := r.blockMax[i]
		if bm < 1 || bm > r.termMax {
			return impactsRecord{}, fmt.Errorf("index: impacts record block %d max %d outside [1, %d]", i, bm, r.termMax)
		}
		if bm > attained {
			attained = bm
		}
	}
	if attained != r.termMax {
		return impactsRecord{}, fmt.Errorf("index: impacts record term max %d never attained by a block", r.termMax)
	}
	return r, nil
}

// crcOK re-verifies the record's own checksum — the degraded-open gate
// that makes impacts salvage loss-only.
func (r impactsRecord) crcOK() bool {
	return crc32.Checksum(r.body, castagnoli) == r.crc
}

// impactsRecordFor locates term ordinal i's impact record through the
// offset table, re-checking bounds on every access.
func (g *bvix3Geometry) impactsRecordFor(ordinal, count int) (impactsRecord, error) {
	if end := uint64(8 * (ordinal + 1)); uint64(len(g.impacts)) < end {
		return impactsRecord{}, fmt.Errorf("index: impacts offset table truncated at term %d", ordinal)
	}
	off := binary.LittleEndian.Uint64(g.impacts[8*ordinal:])
	return parseImpactsRecord(g.impacts, off, count, g.docs)
}

// walkImpacts validates the whole impacts section against the (already
// validated) dictionary: the offset table agrees with the records'
// actual layout, every record parses with its structural invariants,
// and records tile the section exactly.
func (g *bvix3Geometry) walkImpacts() error {
	want := uint64(8 * g.terms)
	if uint64(len(g.impacts)) < want {
		return fmt.Errorf("index: impacts offset table needs %d bytes, section has %d", want, len(g.impacts))
	}
	cur := 0
	for i := 0; i < g.terms; i++ {
		rec, err := parseDictRecord(g.dict, cur)
		if err != nil {
			return err // unreachable: walkDict validated the dictionary
		}
		cur = rec.next
		off := binary.LittleEndian.Uint64(g.impacts[8*i:])
		if off != want {
			return fmt.Errorf("index: term %q impacts record at %d, want %d", rec.name, off, want)
		}
		ir, err := parseImpactsRecord(g.impacts, off, rec.count, g.docs)
		if err != nil {
			return fmt.Errorf("index: term %q: %w", rec.name, err)
		}
		want = ir.end
	}
	if want != uint64(len(g.impacts)) {
		return fmt.Errorf("index: %d trailing bytes after last BVIX3 impacts record", uint64(len(g.impacts))-want)
	}
	return nil
}

// materializeImpacts decodes one term's impact annotations into
// heap-owned memory, validating that the decoded impacts agree with
// the record's count and block maxima.
func (g *bvix3Geometry) materializeImpacts(rec dictRecord, ordinal int) (*impactMeta, error) {
	ir, err := g.impactsRecordFor(ordinal, rec.count)
	if err != nil {
		return nil, err
	}
	m := &impactMeta{
		termMax:   ir.termMax,
		blockLen:  ir.blockLen,
		blockLast: make([]uint32, ir.blockCount),
		blockMax:  make([]uint8, ir.blockCount),
	}
	for i := range m.blockLast {
		m.blockLast[i] = binary.LittleEndian.Uint32(ir.blockLast[4*i:])
	}
	copy(m.blockMax, ir.blockMax)
	m.quant = make([]uint8, rec.count)
	if ir.encoding == impactEncRaw {
		copy(m.quant, ir.blob)
	} else {
		p, derr := codecs.Decode(ir.blob)
		if derr != nil {
			return nil, fmt.Errorf("index: term %q impacts blob: %w", rec.name, derr)
		}
		if p.Len() != rec.count {
			return nil, fmt.Errorf("index: term %q impacts blob holds %d values, want %d", rec.name, p.Len(), rec.count)
		}
		var prev uint32
		for i, c := range p.Decompress() {
			d := c - prev
			if d < 1 || d > maxImpact {
				return nil, fmt.Errorf("index: term %q impact %d out of range at posting %d", rec.name, d, i)
			}
			m.quant[i] = uint8(d)
			prev = c
		}
	}
	for i, q := range m.quant {
		if q < 1 || q > m.blockMax[i/ir.blockLen] {
			return nil, fmt.Errorf("index: term %q impact %d at posting %d exceeds its block max", rec.name, q, i)
		}
	}
	return m, nil
}

// termImpactList adapts one term's entry to ops.ImpactList. With a
// block-decoding posting (bd non-nil) cursors decode lazily, one
// surviving 128-posting block at a time; otherwise vals holds the
// fully decoded docids and cursors walk the array.
type termImpactList struct {
	meta *impactMeta
	bd   core.BlockDecoder
	vals []uint32
}

func (l *termImpactList) Len() int               { return len(l.meta.quant) }
func (l *termImpactList) TermMax() uint32        { return uint32(l.meta.termMax) }
func (l *termImpactList) NumBlocks() int         { return len(l.meta.blockLast) }
func (l *termImpactList) BlockLast(i int) uint32 { return l.meta.blockLast[i] }
func (l *termImpactList) BlockMax(i int) uint32  { return uint32(l.meta.blockMax[i]) }

func (l *termImpactList) Cursor() ops.ImpactCursor {
	if l.bd != nil {
		return &blockImpactCursor{l: l, block: -1}
	}
	return &arrayImpactCursor{l: l, pos: -1}
}

// arrayImpactCursor walks pre-decoded docids. The decode already
// happened (and covered every block), so BlocksDecoded reports them
// all — honest accounting for the pruning gate.
type arrayImpactCursor struct {
	l   *termImpactList
	pos int
}

func (c *arrayImpactCursor) Next() (uint32, bool) {
	c.pos++
	if c.pos >= len(c.l.vals) {
		return 0, false
	}
	return c.l.vals[c.pos], true
}

func (c *arrayImpactCursor) SeekGEQ(target uint32) (uint32, bool) {
	if c.pos >= 0 && c.pos < len(c.l.vals) && c.l.vals[c.pos] >= target {
		return c.l.vals[c.pos], true
	}
	lo := max(c.pos, 0)
	c.pos = lo + sort.Search(len(c.l.vals)-lo, func(i int) bool { return c.l.vals[lo+i] >= target })
	if c.pos >= len(c.l.vals) {
		return 0, false
	}
	return c.l.vals[c.pos], true
}

func (c *arrayImpactCursor) Impact() uint32     { return uint32(c.l.meta.quant[c.pos]) }
func (c *arrayImpactCursor) BlocksDecoded() int { return len(c.l.meta.blockLast) }

// blockImpactCursor decodes one physical block at a time through
// core.BlockDecoder, skipping straight to the target's block on seeks:
// blocks the pruning never lands on are never decompressed.
type blockImpactCursor struct {
	l       *termImpactList
	buf     [impactBlockLen]uint32
	cur     []uint32
	block   int // decoded block index; -1 before start, NumBlocks() when exhausted
	pos     int
	decoded int
}

func (c *blockImpactCursor) load(b int) {
	c.cur = c.l.bd.DecodeBlock(b, c.buf[:])
	c.block = b
	c.decoded++
}

func (c *blockImpactCursor) Next() (uint32, bool) {
	if c.block >= 0 && c.pos+1 < len(c.cur) {
		c.pos++
		return c.cur[c.pos], true
	}
	nb := c.block + 1
	if nb >= c.l.NumBlocks() {
		c.block, c.cur = c.l.NumBlocks(), nil
		return 0, false
	}
	c.load(nb)
	c.pos = 0
	return c.cur[0], true
}

func (c *blockImpactCursor) SeekGEQ(target uint32) (uint32, bool) {
	n := c.l.NumBlocks()
	if c.block >= 0 && c.cur != nil && c.pos < len(c.cur) && c.cur[c.pos] >= target {
		return c.cur[c.pos], true
	}
	start := max(c.block, 0)
	if start >= n {
		return 0, false
	}
	last := c.l.meta.blockLast
	b := start + sort.Search(n-start, func(i int) bool { return last[start+i] >= target })
	if b >= n {
		c.block, c.cur = n, nil
		return 0, false
	}
	lo := 0
	if b == c.block {
		lo = c.pos
	} else {
		c.load(b)
	}
	i := lo + sort.Search(len(c.cur)-lo, func(i int) bool { return c.cur[lo+i] >= target })
	if i >= len(c.cur) {
		// Defensive: only reachable if the block-last metadata disagrees
		// with the decoded values; the next block's first value is then
		// the answer if any is.
		if b+1 >= n {
			c.block, c.cur = n, nil
			return 0, false
		}
		c.load(b + 1)
		c.pos = 0
		return c.cur[0], true
	}
	c.pos = i
	return c.cur[i], true
}

func (c *blockImpactCursor) Impact() uint32 {
	return uint32(c.l.meta.quant[c.block*c.l.meta.blockLen+c.pos])
}

func (c *blockImpactCursor) BlocksDecoded() int { return c.decoded }

// topkLists assembles the per-term impact lists for a ranked query.
// Terms carrying stored impact annotations over a block-frame posting
// get lazy block cursors; everything else (bitmap-compressed lists,
// impact-less indexes, legacy formats) falls back to decoded postings
// — cache-served when hot — with impacts taken from the stored
// annotations or derived on the fly from the frequency payload.
// native reports whether every resolved term had stored annotations.
func (idx *Index) topkLists(terms []string) (lists []ops.ImpactList, native bool) {
	native = true
	for _, t := range terms {
		e, ok := idx.entry(t)
		if !ok || e.posting.Len() == 0 {
			continue // disjunctive scoring: missing terms just contribute nothing
		}
		if e.impacts != nil {
			if bd, ok := e.posting.(core.BlockDecoder); ok &&
				bd.BlockSpan() == e.impacts.blockLen &&
				bd.NumBlocks() == len(e.impacts.blockLast) {
				lists = append(lists, &termImpactList{meta: e.impacts, bd: bd})
				continue
			}
			lists = append(lists, &termImpactList{meta: e.impacts, vals: idx.DecodedPostings(t)})
			continue
		}
		native = false
		vals := idx.DecodedPostings(t)
		lists = append(lists, &termImpactList{meta: buildImpactMeta(vals, e.freqs), vals: vals})
	}
	return lists, native
}
