// Package index is the information-retrieval substrate of §A.1: an
// inverted index over a document collection with compressed posting
// lists, supporting conjunctive (AND), disjunctive (OR), and top-k
// queries. Any codec from this module can back the index; the paper's
// recommendation for this workload is Roaring (§7.1).
package index

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/ops"
)

// Builder accumulates documents and compresses the index in one shot
// (document IDs are assigned in insertion order, so posting lists are
// naturally sorted).
type Builder struct {
	codec    core.Codec
	postings map[string][]uint32
	freqs    map[string][]uint16
	docs     int
}

// NewBuilder returns a builder that will compress postings with codec.
func NewBuilder(codec core.Codec) *Builder {
	return &Builder{
		codec:    codec,
		postings: map[string][]uint32{},
		freqs:    map[string][]uint16{},
	}
}

// AddDocument indexes text and returns its document ID.
func (b *Builder) AddDocument(text string) uint32 {
	id := uint32(b.docs)
	b.docs++
	counts := map[string]int{}
	for _, tok := range Tokenize(text) {
		counts[tok]++
	}
	terms := make([]string, 0, len(counts))
	for t := range counts {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	for _, t := range terms {
		b.postings[t] = append(b.postings[t], id)
		f := counts[t]
		if f > 65535 {
			f = 65535
		}
		b.freqs[t] = append(b.freqs[t], uint16(f))
	}
	return id
}

// Build compresses every posting list and returns the finished index.
func (b *Builder) Build() (*Index, error) {
	idx := &Index{codec: b.codec, terms: map[string]termEntry{}, docs: b.docs}
	for t, list := range b.postings {
		p, err := b.codec.Compress(list)
		if err != nil {
			return nil, fmt.Errorf("index: term %q: %w", t, err)
		}
		idx.terms[t] = termEntry{posting: p, freqs: b.freqs[t]}
	}
	return idx, nil
}

// Tokenize lower-cases and splits text, trimming punctuation — the
// minimal analyzer the examples need.
func Tokenize(text string) []string {
	fields := strings.Fields(strings.ToLower(text))
	out := fields[:0]
	for _, f := range fields {
		if t := strings.Trim(f, ".,;:!?\"'()[]"); t != "" {
			out = append(out, t)
		}
	}
	return out
}

type termEntry struct {
	posting core.Posting
	freqs   []uint16 // payload aligned with the posting values
}

// Index answers boolean and top-k queries over compressed postings.
type Index struct {
	codec core.Codec
	terms map[string]termEntry
	docs  int

	// cache, when attached, memoizes decoded posting lists under this
	// index's generation. See DecodedCache for the invalidation story.
	cache *DecodedCache
	gen   uint64
}

// AttachCache connects a decoded-posting cache to the index under a
// fresh generation. Attach before the index is shared across
// goroutines (i.e. before a server publishes the snapshot): the fields
// set here are not synchronized on their own.
func (idx *Index) AttachCache(c *DecodedCache) {
	idx.cache = c
	idx.gen = c.register()
}

// Generation reports the cache generation assigned by AttachCache
// (0 when no cache is attached).
func (idx *Index) Generation() uint64 { return idx.gen }

// DecodedPostings returns the decoded posting list for a term (nil if
// unindexed), consulting the attached cache first. The returned slice
// is shared and read-only: it may be served concurrently to other
// queries. Callers that need to mutate must copy.
func (idx *Index) DecodedPostings(term string) []uint32 {
	e, ok := idx.terms[term]
	if !ok {
		return nil
	}
	if idx.cache != nil {
		if vals, ok := idx.cache.get(idx.gen, term); ok {
			return vals
		}
	}
	vals := e.posting.Decompress()
	if idx.cache != nil {
		idx.cache.put(idx.gen, term, vals)
	}
	return vals
}

// Docs reports the number of indexed documents.
func (idx *Index) Docs() int { return idx.docs }

// Terms reports the vocabulary size.
func (idx *Index) Terms() int { return len(idx.terms) }

// SizeBytes reports the compressed footprint of all posting lists.
func (idx *Index) SizeBytes() int {
	s := 0
	for _, e := range idx.terms {
		s += e.posting.SizeBytes()
	}
	return s
}

// Postings returns the compressed posting list for a term (nil if the
// term is unindexed).
func (idx *Index) Postings(term string) core.Posting {
	if e, ok := idx.terms[term]; ok {
		return e.posting
	}
	return nil
}

// Conjunctive returns the documents containing every term, via SvS
// intersection over the compressed postings.
func (idx *Index) Conjunctive(terms ...string) ([]uint32, error) {
	ps := make([]core.Posting, 0, len(terms))
	for _, t := range terms {
		e, ok := idx.terms[t]
		if !ok {
			return nil, nil // a missing term empties the conjunction
		}
		ps = append(ps, e.posting)
	}
	return ops.Intersect(ps)
}

// Disjunctive returns the documents containing at least one term. With
// a cache attached, hot terms skip decompression: the union merges the
// cached decoded lists (UnionMany never writes into its inputs, so the
// shared slices stay intact). Without a cache the native compressed-form
// union path is used, as before.
func (idx *Index) Disjunctive(terms ...string) ([]uint32, error) {
	if idx.cache != nil {
		var lists [][]uint32
		for _, t := range terms {
			if _, ok := idx.terms[t]; ok {
				lists = append(lists, idx.DecodedPostings(t))
			}
		}
		return ops.UnionMany(lists), nil
	}
	var ps []core.Posting
	for _, t := range terms {
		if e, ok := idx.terms[t]; ok {
			ps = append(ps, e.posting)
		}
	}
	return ops.Union(ps)
}

// Result is one ranked document.
type Result struct {
	Doc   uint32
	Score int
}

// TopK implements §A.1's two-step top-k: intersect the query terms for
// candidates (the dominant cost), then rank candidates by summed term
// frequency. Each term's posting is decoded at most once per query
// (served from the attached cache when hot) and candidates locate their
// payload slot with one binary search per (candidate, term) pair — the
// previous implementation re-decompressed the full posting for every
// pair, O(candidates · terms · postingLen).
func (idx *Index) TopK(k int, terms ...string) ([]Result, error) {
	candidates, err := idx.Conjunctive(terms...)
	if err != nil || len(candidates) == 0 {
		return nil, err
	}
	type scorer struct {
		vals  []uint32
		freqs []uint16
	}
	scorers := make([]scorer, 0, len(terms))
	for _, t := range terms {
		if e, ok := idx.terms[t]; ok {
			scorers = append(scorers, scorer{vals: idx.DecodedPostings(t), freqs: e.freqs})
		}
	}
	results := make([]Result, len(candidates))
	for i, doc := range candidates {
		s := 0
		for _, sc := range scorers {
			j := sort.Search(len(sc.vals), func(j int) bool { return sc.vals[j] >= doc })
			if j < len(sc.vals) && sc.vals[j] == doc {
				s += int(sc.freqs[j])
			}
		}
		results[i] = Result{Doc: doc, Score: s}
	}
	sort.SliceStable(results, func(i, j int) bool { return results[i].Score > results[j].Score })
	if k < len(results) {
		results = results[:k]
	}
	return results, nil
}
