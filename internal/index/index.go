// Package index is the information-retrieval substrate of §A.1: an
// inverted index over a document collection with compressed posting
// lists, supporting conjunctive (AND), disjunctive (OR), and top-k
// queries. Any codec from this module can back the index; the paper's
// recommendation for this workload is Roaring (§7.1).
package index

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/ops"
)

// Builder accumulates documents and compresses the index in one shot
// (document IDs are assigned in insertion order, so posting lists are
// naturally sorted). AddDocument only records the text; tokenization
// and compression happen in Build, sharded across GOMAXPROCS-capped
// workers. The built index is identical for every shard count, so the
// parallel build is a pure throughput lever.
type Builder struct {
	codec    core.Codec
	selector CodecSelector
	texts    []string
	shards   int
}

// NewBuilder returns a builder that will compress postings with codec.
func NewBuilder(codec core.Codec) *Builder {
	return &Builder{codec: codec}
}

// NewAutoBuilder returns a builder that picks a codec per posting list
// with AutoSelector — the adaptive hybrid index of the paper's §7
// lesson (no single method wins; choose per list).
func NewAutoBuilder() *Builder {
	return &Builder{selector: AutoSelector()}
}

// CodecSelector picks the compression codec for one finished posting
// list; docs is the total document count (the density denominator).
// Selectors must be pure functions of their arguments and safe for
// concurrent use: Build calls them from its compression worker pool,
// and shard-count byte-identity relies on the choice depending only on
// the final merged list.
type CodecSelector func(list []uint32, docs int) core.Codec

// SetSelector installs a per-list codec selector, overriding the fixed
// builder codec.
func (b *Builder) SetSelector(sel CodecSelector) { b.selector = sel }

// SetShards fixes the ingestion shard count for Build. n <= 0 (the
// default) picks GOMAXPROCS. Explicit values are honored as given so
// determinism tests can compare arbitrary shardings; the auto default
// never exceeds the core count.
func (b *Builder) SetShards(n int) { b.shards = n }

// AddDocument records text for indexing and returns its document ID.
func (b *Builder) AddDocument(text string) uint32 {
	id := uint32(len(b.texts))
	b.texts = append(b.texts, text)
	return id
}

// shardAccum is one ingestion shard's term maps over a contiguous
// document ID range. Ranges are disjoint and increasing, so per-term
// lists from consecutive shards concatenate into exactly the list a
// serial pass would have produced.
type shardAccum struct {
	postings map[string][]uint32
	freqs    map[string][]uint16
}

// Build tokenizes and compresses every posting list and returns the
// finished index. Ingestion fans out over contiguous document shards
// and compression over a term-level worker pool; the result is
// bit-identical to a single-shard build.
func (b *Builder) Build() (*Index, error) {
	shards := b.shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > len(b.texts) {
		shards = max(len(b.texts), 1)
	}

	// Phase 1: per-shard tokenization into private term maps.
	accums := make([]shardAccum, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		lo := s * len(b.texts) / shards
		hi := (s + 1) * len(b.texts) / shards
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			acc := shardAccum{postings: map[string][]uint32{}, freqs: map[string][]uint16{}}
			counts := map[string]int{}
			for id := lo; id < hi; id++ {
				clear(counts)
				for _, tok := range Tokenize(b.texts[id]) {
					counts[tok]++
				}
				for t, f := range counts {
					acc.postings[t] = append(acc.postings[t], uint32(id))
					acc.freqs[t] = append(acc.freqs[t], uint16(min(f, 65535)))
				}
			}
			accums[s] = acc
		}(s, lo, hi)
	}
	wg.Wait()

	// Per-shard appends happen in document order within a shard but the
	// map iteration above is unordered across terms; that is fine — the
	// per-term sequences are what must stay ordered, and they are.
	names := map[string]struct{}{}
	for _, acc := range accums {
		for t := range acc.postings {
			names[t] = struct{}{}
		}
	}
	sorted := make([]string, 0, len(names))
	for t := range names {
		sorted = append(sorted, t)
	}
	sort.Strings(sorted)

	// Phase 2: deterministic merge + compression, fanned out over a
	// worker pool. Each worker owns whole terms, so no two goroutines
	// ever touch the same output slot.
	entries := make([]termEntry, len(sorted))
	workers := min(runtime.GOMAXPROCS(0), max(len(sorted), 1))
	var (
		next     atomic.Int64
		failed   atomic.Bool
		errOnce  sync.Once
		buildErr error
		cwg      sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(sorted) || failed.Load() {
					return
				}
				t := sorted[i]
				var list []uint32
				var freqs []uint16
				for _, acc := range accums {
					if p, ok := acc.postings[t]; ok {
						if list == nil {
							list, freqs = p, acc.freqs[t] // sole/first shard: reuse in place
						} else {
							list = append(list, p...)
							freqs = append(freqs, acc.freqs[t]...)
						}
					}
				}
				codec := b.codec
				if b.selector != nil {
					// Selection sees only the final merged list and the
					// document count, so any shard count picks the same
					// codec for every term.
					codec = b.selector(list, len(b.texts))
				}
				p, err := codec.Compress(list)
				if err != nil {
					errOnce.Do(func() { buildErr = fmt.Errorf("index: term %q: %w", t, err) })
					failed.Store(true)
					return
				}
				entries[i] = termEntry{posting: p, freqs: freqs, codec: codec.Name()}
			}
		}()
	}
	cwg.Wait()
	if buildErr != nil {
		return nil, buildErr
	}

	idx := &Index{codec: b.codec, terms: make(map[string]termEntry, len(sorted)), docs: len(b.texts)}
	for i, t := range sorted {
		idx.terms[t] = entries[i]
	}
	return idx, nil
}

// Tokenize lower-cases and splits text, trimming punctuation — the
// minimal analyzer the examples need.
func Tokenize(text string) []string {
	fields := strings.Fields(strings.ToLower(text))
	out := fields[:0]
	for _, f := range fields {
		if t := strings.Trim(f, ".,;:!?\"'()[]"); t != "" {
			out = append(out, t)
		}
	}
	return out
}

type termEntry struct {
	posting core.Posting
	freqs   []uint16 // payload aligned with the posting values
	codec   string   // registry name of the posting's codec ("" when unknown)

	// impacts carries the term's stored impact annotations when the
	// backing file has an impacts section (BVIX3 v4); nil otherwise, in
	// which case ranked queries derive impacts from freqs on the fly.
	impacts *impactMeta
}

// Index answers boolean and top-k queries over compressed postings.
// Indexes come from two sources: Builder.Build / Read materialize every
// term eagerly into the terms map, while OpenFile on a BVIX3 file keeps
// postings in the mapped region and materializes them lazily through
// the lazy backend on first access.
type Index struct {
	codec core.Codec
	terms map[string]termEntry
	docs  int

	// lazy, when non-nil, backs terms not present in the eager map with
	// records materialized on demand from a BVIX3 mapping.
	lazy *lazyIndex

	// cache, when attached, memoizes decoded posting lists under this
	// index's generation. See DecodedCache for the invalidation story.
	cache *DecodedCache
	gen   uint64

	// health records what degraded-mode open salvaged; the zero value
	// means a fully verified index. See OpenFileDegraded.
	health Health

	// closeOnce makes Close idempotent across every backend and gates
	// the closeHooks, which observability and tests attach via OnClose.
	closeOnce  sync.Once
	closeHooks []func()
}

// entry resolves a term to its posting entry, consulting the eager map
// first and then the lazy BVIX3 backend.
func (idx *Index) entry(term string) (termEntry, bool) {
	if e, ok := idx.terms[term]; ok {
		return e, true
	}
	if idx.lazy != nil {
		return idx.lazy.entry(term)
	}
	return termEntry{}, false
}

// AttachCache connects a decoded-posting cache to the index under a
// fresh generation. Attach before the index is shared across
// goroutines (i.e. before a server publishes the snapshot): the fields
// set here are not synchronized on their own.
func (idx *Index) AttachCache(c *DecodedCache) {
	idx.cache = c
	idx.gen = c.register()
}

// Generation reports the cache generation assigned by AttachCache
// (0 when no cache is attached).
func (idx *Index) Generation() uint64 { return idx.gen }

// EmptyPostings is the sentinel slice DecodedPostings returns for terms
// absent from the index: non-nil, zero length, shared, and read-only.
// Callers can range over or len() it without a nil check and must never
// append to or mutate it.
var EmptyPostings = make([]uint32, 0)

// DecodedPostings returns the decoded posting list for a term,
// consulting the attached cache first. Unknown terms yield the
// EmptyPostings sentinel (never nil). The returned slice is shared and
// read-only: it may be served concurrently to other queries. Callers
// that need to mutate must copy.
func (idx *Index) DecodedPostings(term string) []uint32 {
	e, ok := idx.entry(term)
	if !ok {
		return EmptyPostings
	}
	if idx.cache != nil {
		if vals, ok := idx.cache.get(idx.gen, term); ok {
			return vals
		}
	}
	vals := e.posting.Decompress()
	if idx.cache != nil {
		idx.cache.put(idx.gen, term, vals)
	}
	return vals
}

// Docs reports the number of indexed documents.
func (idx *Index) Docs() int { return idx.docs }

// Terms reports the vocabulary size — for a degraded index, the terms
// actually servable (quarantined ones excluded).
func (idx *Index) Terms() int {
	if idx.lazy != nil {
		return idx.lazy.termCount - len(idx.lazy.quarantined)
	}
	return len(idx.terms)
}

// SizeBytes reports the compressed footprint of all posting lists. For
// lazily opened indexes this is the serialized posting footprint from
// the dictionary scan done at open time — no posting is materialized
// to answer it. (Serialized blobs carry self-describing headers, so
// the number runs slightly higher than the in-memory accounting of a
// built index.)
func (idx *Index) SizeBytes() int {
	if idx.lazy != nil {
		return idx.lazy.sizeBytes
	}
	s := 0
	for _, e := range idx.terms {
		s += e.posting.SizeBytes()
	}
	return s
}

// Postings returns the compressed posting list for a term. Unknown
// terms yield the EmptyPosting sentinel (never nil), so callers can
// chain Len/Decompress without a nil check.
func (idx *Index) Postings(term string) core.Posting {
	if e, ok := idx.entry(term); ok {
		return e.posting
	}
	return EmptyPosting
}

// EmptyPosting is the sentinel Postings returns for terms absent from
// the index: an immutable posting with zero values. Comparable with ==.
var EmptyPosting core.Posting = emptyPosting{}

// emptyPosting is the canonical zero-value posting behind EmptyPosting.
type emptyPosting struct{}

func (emptyPosting) Len() int                               { return 0 }
func (emptyPosting) SizeBytes() int                         { return 0 }
func (emptyPosting) Decompress() []uint32                   { return EmptyPostings }
func (emptyPosting) DecompressAppend(dst []uint32) []uint32 { return dst }

// OnClose registers fn to run when the index is first Closed — the
// observation hook the snapshot-lifecycle tests and operational
// logging use. Register before the index is shared across goroutines
// (i.e. before a server publishes the snapshot); the hook slice is not
// synchronized on its own.
func (idx *Index) OnClose(fn func()) {
	idx.closeHooks = append(idx.closeHooks, fn)
}

// Close releases the mapped file backing an index opened with OpenFile
// (a no-op for built or eagerly read indexes). Postings materialized
// before Close remain usable — decoders copy out of the mapping — but
// terms not yet materialized become unreachable: lookups report them
// as absent. Close is idempotent: only the first call does work and
// runs the OnClose hooks. Do not Close an index that is still being
// served; the refcounted Snapshot wrapper is how the server guarantees
// that.
func (idx *Index) Close() error {
	var err error
	idx.closeOnce.Do(func() {
		if idx.lazy != nil {
			err = idx.lazy.close()
		}
		for _, fn := range idx.closeHooks {
			fn()
		}
	})
	return err
}

// Conjunctive returns the documents containing every term, via SvS
// intersection over the compressed postings.
func (idx *Index) Conjunctive(terms ...string) ([]uint32, error) {
	ps := make([]core.Posting, 0, len(terms))
	for _, t := range terms {
		e, ok := idx.entry(t)
		if !ok {
			return nil, nil // a missing term empties the conjunction
		}
		ps = append(ps, e.posting)
	}
	return ops.Intersect(ps)
}

// Disjunctive returns the documents containing at least one term. With
// a cache attached, hot terms skip decompression: the union merges the
// cached decoded lists (UnionMany never writes into its inputs, so the
// shared slices stay intact). Without a cache the native compressed-form
// union path is used, as before.
func (idx *Index) Disjunctive(terms ...string) ([]uint32, error) {
	if idx.cache != nil {
		var lists [][]uint32
		for _, t := range terms {
			if _, ok := idx.entry(t); ok {
				lists = append(lists, idx.DecodedPostings(t))
			}
		}
		return ops.UnionMany(lists), nil
	}
	var ps []core.Posting
	for _, t := range terms {
		if e, ok := idx.entry(t); ok {
			ps = append(ps, e.posting)
		}
	}
	return ops.Union(ps)
}

// Result is one ranked document.
type Result struct {
	Doc   uint32
	Score int
}

// TopK ranks the documents matching at least one query term by summed
// quantized impact, descending (ascending docid on ties), and returns
// the best k. It runs the engine's pruned document-at-a-time evaluation:
// Block-Max-WAND when every term carries stored impact annotations over
// a block-frame posting (a BVIX3 v4 index), so only posting blocks that
// can beat the heap threshold are ever decompressed; exhaustive
// evaluation otherwise, with impacts derived from the frequency payload
// (or pure document counting when no frequencies exist). Terms absent
// from the index simply contribute nothing.
func (idx *Index) TopK(k int, terms ...string) ([]Result, error) {
	return idx.TopKWith("auto", k, nil, terms...)
}

// TopKWith is TopK with the pruning algorithm pinned and optional work
// accounting. algo is one of "auto" (or ""), "exhaustive", "maxscore",
// "bmw"; every algorithm returns the identical result list, so pinning
// is for benchmarking and differential testing. When stats is non-nil
// it is filled with the evaluation's work counters.
func (idx *Index) TopKWith(algo string, k int, stats *ops.TopKStats, terms ...string) ([]Result, error) {
	var mode ops.TopKMode
	lists, native := idx.topkLists(terms)
	switch algo {
	case "", "auto":
		mode = ops.TopKExhaustive
		if native {
			mode = ops.TopKBlockMax
		}
	case "exhaustive":
		mode = ops.TopKExhaustive
	case "maxscore":
		mode = ops.TopKMaxScore
	case "bmw":
		mode = ops.TopKBlockMax
	default:
		return nil, fmt.Errorf("index: unknown top-k algorithm %q", algo)
	}
	docs := ops.Default().TopK(mode, k, lists, stats)
	if len(docs) == 0 {
		return nil, nil
	}
	results := make([]Result, len(docs))
	for i, d := range docs {
		results[i] = Result{Doc: d.Doc, Score: int(d.Score)}
	}
	return results, nil
}
