package index

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/faultio"
)

// Crash-safe index publication. WriteTo/WriteBVIX3 stream bytes to a
// writer and leave durability to the caller; WriteFile is the caller
// that gets it right: write to a temp file in the destination
// directory, fsync the file, atomically rename over the destination,
// then fsync the parent directory so the rename itself is durable. A
// crash at any point leaves the destination either untouched (the old
// generation, intact) or fully replaced (the new one, intact) — never
// a torn mixture. The crash-consistency matrix in crash_test.go kills
// the protocol at every operation and asserts exactly that.

// Format names an on-disk index format for WriteFile.
type Format string

const (
	// FormatBVIX3 is the section-aligned mmap serving format.
	FormatBVIX3 Format = "bvix3"
	// FormatBVIX3Impacts is BVIX3 with the v4 impacts section: ranked
	// top-k annotations (quantized impacts + block-max frame) alongside
	// the postings, enabling Block-Max pruning straight off the mapping.
	FormatBVIX3Impacts Format = "bvix3+impacts"
	// FormatBVIX2 is the versioned checksummed streaming format.
	FormatBVIX2 Format = "bvix2"
)

// writeFunc resolves the serializer for a format.
func (idx *Index) writeFunc(format Format) (func(io.Writer) (int64, error), error) {
	switch format {
	case FormatBVIX3:
		return idx.WriteBVIX3, nil
	case FormatBVIX3Impacts:
		return idx.WriteBVIX3Impacts, nil
	case FormatBVIX2:
		return idx.WriteTo, nil
	default:
		return nil, fmt.Errorf("index: unknown format %q (bvix3 | bvix3+impacts | bvix2)", format)
	}
}

// WriteFile atomically publishes the index at path in the given
// format. On return without error, the bytes at path are the complete
// new index and the publication survives a crash. On error, path holds
// either the previous generation untouched or — only when the final
// directory sync failed after the rename — the complete new index;
// never a torn mixture. The temp file is best-effort removed.
func (idx *Index) WriteFile(path string, format Format) error {
	return idx.writeFileFS(faultio.OS, path, format)
}

// writeFileFS is WriteFile against an explicit file system — the seam
// the fault-injection tests drive. The temp name is deterministic per
// (path, pid): concurrent publishers of the same path from one process
// must serialize, which every caller in this module already does.
func (idx *Index) writeFileFS(fsys faultio.FS, path string, format Format) (err error) {
	write, err := idx.writeFunc(format)
	if err != nil {
		return err
	}
	tmp := fmt.Sprintf("%s.tmp.%d", path, os.Getpid())
	defer func() {
		if err != nil {
			// Best-effort cleanup; the orphan is harmless either way
			// (a later publish with the same pid truncates it).
			_ = fsys.Remove(tmp)
		}
	}()
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("index: create %s: %w", tmp, err)
	}
	if _, err = write(f); err != nil {
		f.Close()
		return fmt.Errorf("index: write %s: %w", tmp, err)
	}
	// fsync before rename: without it, a crash after the rename could
	// expose a destination whose directory entry is durable but whose
	// data blocks never hit the disk.
	if err = f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("index: sync %s: %w", tmp, err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("index: close %s: %w", tmp, err)
	}
	if err = fsys.Rename(tmp, path); err != nil {
		return fmt.Errorf("index: rename %s -> %s: %w", tmp, path, err)
	}
	// fsync the parent so the rename (the publish) is durable, not just
	// ordered. A failure here is reported but the destination is already
	// consistent — the old or new index, never a mixture.
	if err = fsys.SyncDir(filepath.Dir(path)); err != nil {
		return fmt.Errorf("index: sync dir %s: %w", filepath.Dir(path), err)
	}
	return nil
}
