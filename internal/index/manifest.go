package index

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/bitmap"
	"repro/internal/codecs"
	"repro/internal/faultio"
)

// The segment manifest is the live index's commit point: one small
// checksummed file naming every sealed segment, the tombstone set, and
// the WAL window to replay. Every seal and every compaction publishes a
// whole new manifest with the same atomic discipline WriteFile uses
// (temp + fsync + rename + dir fsync), so a crash at any instant leaves
// either the old manifest or the new one — never a blend.
//
// Format: an 8-byte magic, a u32 little-endian body length, a u32
// CRC-32C of the body, then the JSON body. The CRC turns a torn
// manifest write into a detectable open error rather than a silently
// half-parsed state (the rename discipline should make that impossible;
// the checksum is the backstop the rest of this module applies to every
// on-disk artifact).
const (
	manifestName  = "MANIFEST"
	manifestMagic = "BVLIVE1\n"
)

// segmentMeta describes one sealed segment in the manifest.
type segmentMeta struct {
	// File is the segment's BVIX3 file name, relative to the live dir.
	File string `json:"file"`
	// Epoch is the seal epoch: a tombstone with bound >= Epoch masks
	// this segment's copy of the document.
	Epoch int `json:"epoch"`
	// DocMap encodes the segment's local-to-global docid mapping as
	// runs of [firstGlobalID, length]: local ids are assigned densely in
	// ascending global order, so runs reconstruct the full mapping.
	DocMap [][2]uint32 `json:"docmap"`
}

// manifest is the persisted live-index state.
type manifest struct {
	Version int `json:"version"`
	// NextDoc is a floor for the next docid to assign; replaying the
	// WAL window can only raise it.
	NextDoc uint32 `json:"nextDoc"`
	// WALFloor is the first WAL sequence number recovery must replay;
	// WALSeq is the sequence that was active at publish. Everything in
	// [WALFloor, WALSeq] plus any higher-numbered log found on disk
	// replays in order.
	WALFloor int `json:"walFloor"`
	WALSeq   int `json:"walSeq"`
	// SegSeq is the next segment file sequence number.
	SegSeq int `json:"segSeq"`
	// Epoch is the mutable segment's epoch (the number of seals so
	// far); a delete is recorded with bound Epoch-1.
	Epoch    int           `json:"epoch"`
	Segments []segmentMeta `json:"segments"`
	// TombBitmap is the deletion set as a serialized Roaring bitmap
	// (base64); TombBounds carries the epoch bound for each deleted
	// docid, aligned with the bitmap's ascending order.
	TombBitmap string `json:"tombBitmap,omitempty"`
	TombBounds []int  `json:"tombBounds,omitempty"`
}

// encodeTombs packs the tombstone map into the Roaring bitmap + aligned
// bounds representation.
func (m *manifest) encodeTombs(bounds map[uint32]int) error {
	if len(bounds) == 0 {
		m.TombBitmap, m.TombBounds = "", nil
		return nil
	}
	ids := make([]uint32, 0, len(bounds))
	for d := range bounds {
		ids = append(ids, d)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	p, err := bitmap.NewRoaring().Compress(ids)
	if err != nil {
		return fmt.Errorf("index: manifest tombstone bitmap: %w", err)
	}
	blob, err := p.(interface{ MarshalBinary() ([]byte, error) }).MarshalBinary()
	if err != nil {
		return fmt.Errorf("index: manifest tombstone bitmap: %w", err)
	}
	m.TombBitmap = base64.StdEncoding.EncodeToString(blob)
	m.TombBounds = make([]int, len(ids))
	for i, d := range ids {
		m.TombBounds[i] = bounds[d]
	}
	return nil
}

// decodeTombs unpacks the tombstone map.
func (m *manifest) decodeTombs() (map[uint32]int, error) {
	if m.TombBitmap == "" {
		if len(m.TombBounds) != 0 {
			return nil, errors.New("index: manifest tombstone bounds without bitmap")
		}
		return map[uint32]int{}, nil
	}
	blob, err := base64.StdEncoding.DecodeString(m.TombBitmap)
	if err != nil {
		return nil, fmt.Errorf("index: manifest tombstone bitmap: %w", err)
	}
	p, err := codecs.Decode(blob)
	if err != nil {
		return nil, fmt.Errorf("index: manifest tombstone bitmap: %w", err)
	}
	ids := p.Decompress()
	if len(ids) != len(m.TombBounds) {
		return nil, fmt.Errorf("index: manifest tombstones: %d ids but %d bounds", len(ids), len(m.TombBounds))
	}
	bounds := make(map[uint32]int, len(ids))
	for i, d := range ids {
		bounds[d] = m.TombBounds[i]
	}
	return bounds, nil
}

// writeManifest publishes m atomically into dir.
func writeManifest(fsys faultio.FS, dir string, m *manifest) error {
	body, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("index: encoding manifest: %w", err)
	}
	buf := make([]byte, 0, len(manifestMagic)+8+len(body))
	buf = append(buf, manifestMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(body)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(body, castagnoli))
	buf = append(buf, body...)

	path := filepath.Join(dir, manifestName)
	tmp := fmt.Sprintf("%s.tmp.%d", path, os.Getpid())
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("index: manifest: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("index: manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("index: manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("index: manifest: %w", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("index: manifest: %w", err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("index: manifest: %w", err)
	}
	return nil
}

// readManifest loads the manifest from dir. ok is false when no
// manifest exists (a fresh live dir).
func readManifest(fsys faultio.FS, dir string) (m *manifest, ok bool, err error) {
	data, err := fsys.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("index: reading manifest: %w", err)
	}
	if len(data) < len(manifestMagic)+8 || string(data[:len(manifestMagic)]) != manifestMagic {
		return nil, false, errors.New("index: manifest: bad magic")
	}
	n := binary.LittleEndian.Uint32(data[len(manifestMagic):])
	sum := binary.LittleEndian.Uint32(data[len(manifestMagic)+4:])
	body := data[len(manifestMagic)+8:]
	if int(n) != len(body) {
		return nil, false, fmt.Errorf("index: manifest: body length %d, header says %d", len(body), n)
	}
	if crc32.Checksum(body, castagnoli) != sum {
		return nil, false, errors.New("index: manifest: checksum mismatch")
	}
	m = &manifest{}
	if err := json.Unmarshal(body, m); err != nil {
		return nil, false, fmt.Errorf("index: manifest: %w", err)
	}
	if m.Version != 1 {
		return nil, false, fmt.Errorf("index: manifest: unsupported version %d", m.Version)
	}
	return m, true, nil
}

// idRanges is a segment's local<->global docid mapping: ascending runs
// of global ids, local ids dense from zero across the runs.
type idRanges struct {
	starts []uint32 // first global id of each run
	lens   []uint32
	cum    []uint32 // local id of each run's first doc
	n      uint32
}

// rangesFromIDs builds the mapping from an ascending global id list.
func rangesFromIDs(ids []uint32) idRanges {
	var r idRanges
	for i := 0; i < len(ids); {
		j := i + 1
		for j < len(ids) && ids[j] == ids[j-1]+1 {
			j++
		}
		r.starts = append(r.starts, ids[i])
		r.lens = append(r.lens, uint32(j-i))
		r.cum = append(r.cum, r.n)
		r.n += uint32(j - i)
		i = j
	}
	return r
}

// rangesFromMeta rebuilds the mapping from its manifest encoding.
func rangesFromMeta(runs [][2]uint32) idRanges {
	var r idRanges
	for _, run := range runs {
		r.starts = append(r.starts, run[0])
		r.lens = append(r.lens, run[1])
		r.cum = append(r.cum, r.n)
		r.n += run[1]
	}
	return r
}

// meta encodes the mapping for the manifest.
func (r idRanges) meta() [][2]uint32 {
	runs := make([][2]uint32, len(r.starts))
	for i := range r.starts {
		runs[i] = [2]uint32{r.starts[i], r.lens[i]}
	}
	return runs
}

// total is the number of documents in the segment.
func (r idRanges) total() int { return int(r.n) }

// maxGlobal is the highest global id in the segment (0, false when
// empty).
func (r idRanges) maxGlobal() (uint32, bool) {
	if len(r.starts) == 0 {
		return 0, false
	}
	last := len(r.starts) - 1
	return r.starts[last] + r.lens[last] - 1, true
}

// toGlobal maps one local id.
func (r idRanges) toGlobal(local uint32) uint32 {
	i := sort.Search(len(r.cum), func(i int) bool { return r.cum[i] > local }) - 1
	return r.starts[i] + (local - r.cum[i])
}

// toLocal maps one global id; ok is false when the segment does not
// contain it.
func (r idRanges) toLocal(global uint32) (uint32, bool) {
	i := sort.Search(len(r.starts), func(i int) bool { return r.starts[i] > global }) - 1
	if i < 0 || global-r.starts[i] >= r.lens[i] {
		return 0, false
	}
	return r.cum[i] + (global - r.starts[i]), true
}

// contains reports whether the segment holds the global id.
func (r idRanges) contains(global uint32) bool {
	_, ok := r.toLocal(global)
	return ok
}

// globals converts an ascending local id list to global ids in place-
// order (the output is ascending too: the mapping is monotonic).
func (r idRanges) globals(locals []uint32) []uint32 {
	out := make([]uint32, len(locals))
	run := 0
	for i, l := range locals {
		for run+1 < len(r.cum) && r.cum[run+1] <= l {
			run++
		}
		out[i] = r.starts[run] + (l - r.cum[run])
	}
	return out
}

// allGlobals enumerates every global id in the segment, ascending.
func (r idRanges) allGlobals() []uint32 {
	out := make([]uint32, 0, r.n)
	for i := range r.starts {
		for k := uint32(0); k < r.lens[i]; k++ {
			out = append(out, r.starts[i]+k)
		}
	}
	return out
}
