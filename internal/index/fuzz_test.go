package index

import (
	"bytes"
	"testing"

	"repro/internal/codecs"
)

// FuzzIndexRead feeds arbitrary bytes through index.Read, mirroring
// codecs.FuzzDecode one layer up. Read must never panic, and — because
// every declared count is validated against the bytes actually present
// (versioned path) or read in bounded chunks (legacy path) — a lying
// header cannot force an allocation larger than the input itself.
// Seeds cover both on-disk formats across codec families.
func FuzzIndexRead(f *testing.F) {
	build := func(codecName string) *Index {
		idx, err := buildFuzzIndex(codecName)
		if err != nil {
			f.Fatal(err)
		}
		return idx
	}
	for _, codecName := range []string{"Roaring", "VB", "PEF", "WAH"} {
		idx := build(codecName)
		var buf bytes.Buffer
		if _, err := idx.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add(writeLegacy(f, build("Roaring")))
	f.Add([]byte{})
	f.Add([]byte("BVIX1"))
	f.Add([]byte("BVIX2"))
	f.Add(append([]byte("BVIX2\x01"), 0, 0, 0, 0))
	f.Fuzz(func(t *testing.T, data []byte) {
		idx, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected: fine, as long as it didn't panic
		}
		// Accepted: the index must be internally consistent enough to
		// answer its accessors and a query without panicking.
		if idx.Docs() < 0 || idx.Terms() < 0 || idx.SizeBytes() < 0 {
			t.Fatalf("accepted index with nonsense shape: docs=%d terms=%d size=%d",
				idx.Docs(), idx.Terms(), idx.SizeBytes())
		}
		if _, err := idx.Conjunctive("compressed", "lists"); err != nil {
			t.Logf("conjunctive on accepted index: %v", err)
		}
	})
}

// buildFuzzIndex builds a small index without *testing.T plumbing so
// both seeds and other tests can reuse it.
func buildFuzzIndex(codecName string) (*Index, error) {
	codec, err := codecs.ByName(codecName)
	if err != nil {
		return nil, err
	}
	b := NewBuilder(codec)
	for _, d := range docs {
		b.AddDocument(d)
	}
	return b.Build()
}
