package index

import (
	"bytes"
	"testing"

	"repro/internal/codecs"
)

// FuzzIndexRead feeds arbitrary bytes through index.Read, mirroring
// codecs.FuzzDecode one layer up. Read must never panic, and — because
// every declared count is validated against the bytes actually present
// (versioned path) or read in bounded chunks (legacy path) — a lying
// header cannot force an allocation larger than the input itself.
// Seeds cover both on-disk formats across codec families.
func FuzzIndexRead(f *testing.F) {
	build := func(codecName string) *Index {
		idx, err := buildFuzzIndex(codecName)
		if err != nil {
			f.Fatal(err)
		}
		return idx
	}
	for _, codecName := range []string{"Roaring", "VB", "PEF", "WAH"} {
		idx := build(codecName)
		var buf bytes.Buffer
		if _, err := idx.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add(writeLegacy(f, build("Roaring")))
	f.Add([]byte{})
	f.Add([]byte("BVIX1"))
	f.Add([]byte("BVIX2"))
	f.Add(append([]byte("BVIX2\x01"), 0, 0, 0, 0))
	f.Fuzz(func(t *testing.T, data []byte) {
		idx, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected: fine, as long as it didn't panic
		}
		// Accepted: the index must be internally consistent enough to
		// answer its accessors and a query without panicking.
		if idx.Docs() < 0 || idx.Terms() < 0 || idx.SizeBytes() < 0 {
			t.Fatalf("accepted index with nonsense shape: docs=%d terms=%d size=%d",
				idx.Docs(), idx.Terms(), idx.SizeBytes())
		}
		if _, err := idx.Conjunctive("compressed", "lists"); err != nil {
			t.Logf("conjunctive on accepted index: %v", err)
		}
	})
}

// FuzzBVIX3Read feeds arbitrary bytes through both BVIX3 open paths —
// the eager Read dispatch and the lazy zero-copy opener. Truncations,
// flipped section lengths, and bad CRCs must surface as errors, never
// panics; validation is pure arithmetic over declared counts before
// anything is allocated, so a lying header cannot force an allocation
// larger than the input itself. Accepted inputs must answer lookups
// (including the lazy skip-frame search) without panicking.
func FuzzBVIX3Read(f *testing.F) {
	for _, codecName := range []string{"Roaring", "VB", "PEF", "WAH"} {
		idx, err := buildFuzzIndex(codecName)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := idx.WriteBVIX3(&buf); err != nil {
			f.Fatal(err)
		}
		file := buf.Bytes()
		f.Add(file)
		f.Add(file[:len(file)/2])
		f.Add(file[:bvix3HeaderSize])
		// Flipped section length, resealed so the geometry checks (not
		// the header CRC) are what the fuzzer starts from.
		bent := append([]byte{}, file...)
		bent[24+8] ^= 0xFF
		reseal3Header(bent)
		f.Add(bent)
	}
	f.Add([]byte{})
	f.Add([]byte("BVIX3"))
	f.Add(append([]byte("BVIX3\x01\x00\x00"), make([]byte, bvix3DataStart)...))
	f.Fuzz(func(t *testing.T, data []byte) {
		if idx, err := Read(bytes.NewReader(data)); err == nil {
			if idx.Docs() < 0 || idx.Terms() < 0 || idx.SizeBytes() < 0 {
				t.Fatalf("accepted index with nonsense shape: docs=%d terms=%d size=%d",
					idx.Docs(), idx.Terms(), idx.SizeBytes())
			}
		}
		lazy, err := openBVIX3Lazy(data, nil)
		if err != nil {
			return
		}
		// Lazy-accepted: lookups and materialization must hold up.
		for _, probe := range []string{"compressed", "lists", "", "zzz"} {
			_ = lazy.DecodedPostings(probe)
		}
		if _, err := lazy.Conjunctive("compressed", "lists"); err != nil {
			t.Logf("conjunctive on accepted index: %v", err)
		}
		if lazy.SizeBytes() < 0 || lazy.Terms() < 0 {
			t.Fatalf("lazy index with nonsense shape: terms=%d size=%d", lazy.Terms(), lazy.SizeBytes())
		}
	})
}

// buildFuzzIndex builds a small index without *testing.T plumbing so
// both seeds and other tests can reuse it.
func buildFuzzIndex(codecName string) (*Index, error) {
	codec, err := codecs.ByName(codecName)
	if err != nil {
		return nil, err
	}
	b := NewBuilder(codec)
	for _, d := range docs {
		b.AddDocument(d)
	}
	return b.Build()
}
