package index

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"repro/internal/codecs"
)

// FuzzIndexRead feeds arbitrary bytes through index.Read, mirroring
// codecs.FuzzDecode one layer up. Read must never panic, and — because
// every declared count is validated against the bytes actually present
// (versioned path) or read in bounded chunks (legacy path) — a lying
// header cannot force an allocation larger than the input itself.
// Seeds cover both on-disk formats across codec families.
func FuzzIndexRead(f *testing.F) {
	build := func(codecName string) *Index {
		idx, err := buildFuzzIndex(codecName)
		if err != nil {
			f.Fatal(err)
		}
		return idx
	}
	for _, codecName := range []string{"Roaring", "VB", "PEF", "WAH"} {
		idx := build(codecName)
		var buf bytes.Buffer
		if _, err := idx.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add(writeLegacy(f, build("Roaring")))
	f.Add([]byte{})
	f.Add([]byte("BVIX1"))
	f.Add([]byte("BVIX2"))
	f.Add(append([]byte("BVIX2\x01"), 0, 0, 0, 0))
	f.Fuzz(func(t *testing.T, data []byte) {
		idx, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected: fine, as long as it didn't panic
		}
		// Accepted: the index must be internally consistent enough to
		// answer its accessors and a query without panicking.
		if idx.Docs() < 0 || idx.Terms() < 0 || idx.SizeBytes() < 0 {
			t.Fatalf("accepted index with nonsense shape: docs=%d terms=%d size=%d",
				idx.Docs(), idx.Terms(), idx.SizeBytes())
		}
		if _, err := idx.Conjunctive("compressed", "lists"); err != nil {
			t.Logf("conjunctive on accepted index: %v", err)
		}
	})
}

// FuzzBVIX3Read feeds arbitrary bytes through both BVIX3 open paths —
// the eager Read dispatch and the lazy zero-copy opener. Truncations,
// flipped section lengths, and bad CRCs must surface as errors, never
// panics; validation is pure arithmetic over declared counts before
// anything is allocated, so a lying header cannot force an allocation
// larger than the input itself. Accepted inputs must answer lookups
// (including the lazy skip-frame search) without panicking.
func FuzzBVIX3Read(f *testing.F) {
	for _, codecName := range []string{"Roaring", "VB", "PEF", "WAH"} {
		idx, err := buildFuzzIndex(codecName)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := idx.WriteBVIX3(&buf); err != nil {
			f.Fatal(err)
		}
		file := buf.Bytes()
		f.Add(file)
		f.Add(file[:len(file)/2])
		f.Add(file[:bvix3HeaderSize])
		// Flipped section length, resealed so the geometry checks (not
		// the header CRC) are what the fuzzer starts from.
		bent := append([]byte{}, file...)
		bent[24+8] ^= 0xFF
		reseal3Header(bent)
		f.Add(bent)
	}
	// Adaptive-build seeds: a file whose dict carries a mix of per-term
	// codec bytes, plus doctored variants starting the fuzzer at the
	// codec-byte validation itself — out-of-range (walk rejection),
	// mismatched-but-valid (materialize rejection), and zeroed (legal).
	// CRCs are resealed so the codec byte, not a checksum, is what the
	// open paths see first.
	autoIdx, err := buildAutoFuzzIndex()
	if err != nil {
		f.Fatal(err)
	}
	var autoBuf bytes.Buffer
	if _, err := autoIdx.WriteBVIX3(&autoBuf); err != nil {
		f.Fatal(err)
	}
	autoFile := autoBuf.Bytes()
	f.Add(autoFile)
	if offs := fuzzCodecByteOffsets(autoFile); len(offs) > 0 {
		for _, mutate := range []byte{codecs.MaxID() + 1, 0xFF, 0} {
			bent := append([]byte{}, autoFile...)
			bent[offs[len(offs)/2]] = mutate
			fuzzResealDict(bent)
			f.Add(bent)
		}
		bent := append([]byte{}, autoFile...)
		bent[offs[0]] = bent[offs[0]]%codecs.MaxID() + 1 // valid, likely mismatched
		fuzzResealDict(bent)
		f.Add(bent)
	}
	// Impacts-section (v4) seeds: the pristine file, truncations landing
	// inside the impacts section, a flipped impact byte (CRC rejection),
	// and resealed doctored variants that start the fuzzer at the
	// walkImpacts geometry validation — a lying offset table and a bent
	// section length.
	var v4Buf bytes.Buffer
	if _, err := autoIdx.WriteBVIX3Impacts(&v4Buf); err != nil {
		f.Fatal(err)
	}
	v4 := v4Buf.Bytes()
	f.Add(v4)
	impOff := binary.LittleEndian.Uint64(v4[24+3*20:])
	f.Add(v4[:impOff+8])
	f.Add(v4[:len(v4)-1])
	bent := append([]byte{}, v4...)
	bent[impOff+16] ^= 0xFF // an impact record byte; section CRC now fails
	f.Add(bent)
	bent = append([]byte{}, v4...)
	binary.LittleEndian.PutUint64(bent[impOff:], 4) // misaligned table entry
	fuzzResealImpacts(bent)
	f.Add(bent)
	bent = append([]byte{}, v4...)
	bent[24+3*20+8] ^= 0x0F // bend the impacts section length
	fuzzReseal4Header(bent)
	f.Add(bent)
	f.Add([]byte{})
	f.Add([]byte("BVIX3"))
	f.Add(append([]byte("BVIX3\x01\x00\x00"), make([]byte, bvix3DataStart)...))
	f.Add(append([]byte("BVIX3\x04\x00\x00"), make([]byte, bvix3DataStart)...))
	f.Fuzz(func(t *testing.T, data []byte) {
		if idx, err := Read(bytes.NewReader(data)); err == nil {
			if idx.Docs() < 0 || idx.Terms() < 0 || idx.SizeBytes() < 0 {
				t.Fatalf("accepted index with nonsense shape: docs=%d terms=%d size=%d",
					idx.Docs(), idx.Terms(), idx.SizeBytes())
			}
		}
		lazy, err := openBVIX3Lazy(data, nil)
		if err != nil {
			return
		}
		// Lazy-accepted: lookups and materialization must hold up —
		// including the ranked path, which exercises impact annotations
		// and the block-decoding cursors on v4 inputs.
		for _, probe := range []string{"compressed", "lists", "", "zzz"} {
			_ = lazy.DecodedPostings(probe)
		}
		if _, err := lazy.Conjunctive("compressed", "lists"); err != nil {
			t.Logf("conjunctive on accepted index: %v", err)
		}
		for _, algo := range []string{"exhaustive", "bmw"} {
			if _, err := lazy.TopKWith(algo, 3, nil, "compressed", "the", "lists"); err != nil {
				t.Logf("topk on accepted index: %v", err)
			}
		}
		if lazy.SizeBytes() < 0 || lazy.Terms() < 0 {
			t.Fatalf("lazy index with nonsense shape: terms=%d size=%d", lazy.Terms(), lazy.SizeBytes())
		}
	})
}

// buildFuzzIndex builds a small index without *testing.T plumbing so
// both seeds and other tests can reuse it.
func buildFuzzIndex(codecName string) (*Index, error) {
	codec, err := codecs.ByName(codecName)
	if err != nil {
		return nil, err
	}
	b := NewBuilder(codec)
	for _, d := range docs {
		b.AddDocument(d)
	}
	return b.Build()
}

// buildAutoFuzzIndex builds a small adaptive index: the fuzz corpus
// plus a stopword in every doc so the dict mixes dense-bitmap and
// sparse-list codec bytes.
func buildAutoFuzzIndex() (*Index, error) {
	b := NewAutoBuilder()
	for _, d := range docs {
		b.AddDocument("the " + d)
	}
	return b.Build()
}

// fuzzCodecByteOffsets and fuzzResealDict are *testing.F-friendly
// twins of the hybrid test helpers (those take *testing.T).
func fuzzCodecByteOffsets(file []byte) []uint64 {
	g, err := parseBVIX3(file)
	if err != nil {
		return nil
	}
	secs := sectionOffsets(file)
	var out []uint64
	cur := 0
	for i := 0; i < g.terms; i++ {
		rec, err := parseDictRecord(g.dict, cur)
		if err != nil {
			return nil
		}
		out = append(out, secs[0][0]+uint64(cur)+2+uint64(len(rec.name))+20)
		cur = rec.next
	}
	return out
}

func fuzzResealDict(file []byte) {
	secs := sectionOffsets(file)
	binary.LittleEndian.PutUint32(file[24+16:],
		crc32.Checksum(file[secs[0][0]:secs[0][0]+secs[0][1]], castagnoli))
	reseal3Header(file)
}

// fuzzReseal4Header and fuzzResealImpacts are the v4 resealing twins:
// the header checksum sits after a four-entry section table, and the
// impacts section CRC lives in its table slot.
func fuzzReseal4Header(file []byte) {
	hs := bvix3HeaderSizeFor(4)
	binary.LittleEndian.PutUint32(file[hs-4:],
		crc32.Checksum(file[len(bvix3Magic):hs-4], castagnoli))
}

func fuzzResealImpacts(file []byte) {
	off := binary.LittleEndian.Uint64(file[24+3*20:])
	length := binary.LittleEndian.Uint64(file[24+3*20+8:])
	binary.LittleEndian.PutUint32(file[24+3*20+16:],
		crc32.Checksum(file[off:off+length], castagnoli))
	fuzzReseal4Header(file)
}
