package index

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faultio"
	"repro/internal/wal"
)

// Live is the multi-segment live index: an LSM-style composition of
// one mutable MemSegment (WAL-backed), zero or more sealed immutable
// BVIX3 segments, and a tombstone overlay for deletions of sealed
// documents. Every mutation is acknowledged only after its WAL record
// is fsynced; sealing flushes the mutable segment through the sharded
// Builder into a BVIX3 file and publishes it via the checksummed
// segment manifest; a compactor merges sealed segments — applying
// tombstones — and retires the inputs through the refcounted Snapshot
// machinery. Queries scatter across all segments with deletions masked
// and return exactly what a from-scratch index over the surviving
// documents would (the CheckLiveIndex oracle pairing and the recovery
// matrix enforce this).
//
// Epoch discipline (what makes delete-then-re-add safe): the mutable
// segment carries epoch E, incremented at every seal; a sealed segment
// keeps the epoch it was mutable under. Deleting a sealed document
// records a tombstone with bound E-1, which masks every segment with
// epoch <= E-1 — every copy sealed so far — while a later re-add of
// the same docid lands in the mutable segment and seals at an epoch
// above the bound, so the old tombstone cannot shadow it. Deletes of
// documents still in the mutable segment are physical removals, so
// tombstones never target the mutable segment at all.
//
// Locking: mu guards all index state; queries hold it shared for their
// whole evaluation, swaps (seal commit, compact commit) hold it
// exclusive — which is why retiring an input snapshot after a swap
// cannot race a reader. flushMu serializes seal and compaction.
type Live struct {
	dir  string
	fsys faultio.FS
	opts LiveOptions

	mu          sync.RWMutex
	wal         *wal.Log
	mem         *MemSegment
	frozen      *MemSegment // mem being sealed; queries still see it
	frozenEpoch int
	sealed      []*sealedSeg
	tombBounds  map[uint32]int // deleted docid -> epoch bound
	tombSorted  []uint32       // the same docids, ascending (the mask)
	epoch       int
	nextDoc     uint32
	walSeq      int
	walFloor    int
	segSeq      int
	broken      error
	closed      bool
	sealing     bool // an auto-seal goroutine is scheduled/running

	seals       int64
	compactions int64
	lastSeal    time.Time
	lastCompact time.Time

	flushMu sync.Mutex
}

// LiveOptions tunes OpenLive.
type LiveOptions struct {
	// FS is the file-system seam for every write-path operation; nil
	// means faultio.OS. (Sealed segments are still mmapped through the
	// real OS — fault injection targets the write path.)
	FS faultio.FS
	// SyncEvery is the WAL group-commit window; zero fsyncs every
	// append individually.
	SyncEvery time.Duration
	// SealDocs, when positive, auto-seals the mutable segment once it
	// holds that many documents. Zero means seal only on demand.
	SealDocs int
	// CompactSegments, when positive, triggers a compaction whenever an
	// auto-seal leaves at least that many sealed segments. Zero means
	// compact only on demand.
	CompactSegments int
	// Codec fixes the segment codec; nil uses the adaptive selector.
	Codec core.Codec
}

// sealedSeg is one immutable segment.
type sealedSeg struct {
	file        string
	epoch       int
	ranges      idRanges
	snap        *Snapshot // nil when quarantined
	quarantined bool
}

// WAL record encoding: one op byte then the op payload.
const (
	walOpAdd    = 'A' // u32 docid, then the document text
	walOpDelete = 'D' // u32 docid
)

func encodeAdd(doc uint32, text string) []byte {
	rec := make([]byte, 5+len(text))
	rec[0] = walOpAdd
	putU32(rec[1:], doc)
	copy(rec[5:], text)
	return rec
}

func encodeDelete(doc uint32) []byte {
	rec := make([]byte, 5)
	rec[0] = walOpDelete
	putU32(rec[1:], doc)
	return rec
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func walName(seq int) string { return fmt.Sprintf("wal-%06d.log", seq) }
func segName(seq int) string { return fmt.Sprintf("seg-%06d.bvix", seq) }

// ErrNoSuchDoc is returned by Delete for a document that is not
// currently visible.
var ErrNoSuchDoc = errors.New("index: no such live document")

// ErrDocVisible is returned by Reinsert when the docid is still
// visible (it must be deleted before it can be re-added).
var ErrDocVisible = errors.New("index: docid still visible")

// OpenLive opens (or initializes) the live index rooted at dir:
// loads the manifest, opens every sealed segment (quarantining ones
// that fail even a degraded open), replays the WAL window into a fresh
// mutable segment — truncating any torn tail — and opens the active
// log for appending.
func OpenLive(dir string, opts LiveOptions) (*Live, error) {
	if opts.FS == nil {
		opts.FS = faultio.OS
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("index: live dir: %w", err)
	}
	l := &Live{
		dir: dir, fsys: opts.FS, opts: opts,
		mem: NewMemSegment(), tombBounds: map[uint32]int{},
	}
	m, ok, err := readManifest(l.fsys, dir)
	if err != nil {
		return nil, err
	}
	if ok {
		l.nextDoc = m.NextDoc
		l.walFloor = m.WALFloor
		l.walSeq = m.WALSeq
		l.segSeq = m.SegSeq
		l.epoch = m.Epoch
		if l.tombBounds, err = m.decodeTombs(); err != nil {
			return nil, err
		}
		for _, sm := range m.Segments {
			seg := &sealedSeg{file: sm.File, epoch: sm.Epoch, ranges: rangesFromMeta(sm.DocMap)}
			path := filepath.Join(dir, sm.File)
			idx, oerr := OpenFile(path)
			if oerr != nil {
				idx, oerr = OpenFileDegraded(path)
			}
			if oerr != nil {
				// Quarantined: the manifest knows the segment's docids,
				// so visibility bookkeeping still works; queries skip it
				// and Health reports degraded.
				seg.quarantined = true
			} else {
				seg.snap = NewSnapshot(idx)
			}
			l.sealed = append(l.sealed, seg)
			if hi, ok := seg.ranges.maxGlobal(); ok && hi >= l.nextDoc {
				l.nextDoc = hi + 1
			}
		}
	}
	l.rebuildTombSorted()

	// Replay the WAL window: every log from the floor up, in order. The
	// highest-numbered log on disk is the active one; logs below it are
	// sealed history whose records are already reflected in segments
	// (replay skips them idempotently) or belong to the mutable state.
	last := l.walFloor
	for seq := l.walFloor + 1; ; seq++ {
		if _, err := l.fsys.ReadFile(filepath.Join(dir, walName(seq))); err != nil {
			if errors.Is(err, os.ErrNotExist) {
				break
			}
			return nil, fmt.Errorf("index: probing %s: %w", walName(seq), err)
		}
		last = seq
	}
	for seq := l.walFloor; seq < last; seq++ {
		recs, rerr := wal.Replay(l.fsys, filepath.Join(dir, walName(seq)))
		if rerr != nil {
			return nil, rerr
		}
		for _, rec := range recs {
			l.applyRecord(rec)
		}
	}
	log, recs, err := wal.Open(filepath.Join(dir, walName(last)), wal.Options{FS: l.fsys, SyncEvery: opts.SyncEvery})
	if err != nil {
		return nil, err
	}
	for _, rec := range recs {
		l.applyRecord(rec)
	}
	l.wal = log
	l.walSeq = last
	return l, nil
}

// applyRecord applies one replayed WAL record idempotently: an add is
// skipped when the docid is already visible (its segment outlived the
// log), a delete is skipped when the docid already is not. Malformed
// records — possible only in an intact-CRC frame written by a newer
// version — are ignored rather than guessed at.
func (l *Live) applyRecord(rec []byte) {
	if len(rec) < 5 {
		return
	}
	doc := getU32(rec[1:])
	switch rec[0] {
	case walOpAdd:
		if l.visibleLocked(doc) {
			return
		}
		l.mem.Add(doc, string(rec[5:]))
		if doc >= l.nextDoc {
			l.nextDoc = doc + 1
		}
	case walOpDelete:
		if !l.visibleLocked(doc) {
			return
		}
		if l.mem.Has(doc) {
			l.mem.Remove(doc)
			return
		}
		l.tombBounds[doc] = l.epoch - 1
		l.rebuildTombSorted()
	}
}

// visibleLocked reports whether doc is currently visible: live in the
// mutable (or frozen) segment, or present in a sealed segment and not
// masked by a tombstone. Quarantined segments count — their documents
// exist even if they cannot be served. Caller holds mu (any mode).
func (l *Live) visibleLocked(doc uint32) bool {
	if l.mem.Has(doc) {
		return true
	}
	if l.frozen != nil && l.frozen.Has(doc) {
		return !l.maskedLocked(doc, l.frozenEpoch)
	}
	for _, seg := range l.sealed {
		if seg.ranges.contains(doc) && !l.maskedLocked(doc, seg.epoch) {
			return true
		}
	}
	return false
}

// maskedLocked reports whether a tombstone masks doc for a segment of
// the given epoch.
func (l *Live) maskedLocked(doc uint32, epoch int) bool {
	bound, ok := l.tombBounds[doc]
	return ok && bound >= epoch
}

func (l *Live) rebuildTombSorted() {
	l.tombSorted = l.tombSorted[:0]
	for d := range l.tombBounds {
		l.tombSorted = append(l.tombSorted, d)
	}
	sort.Slice(l.tombSorted, func(i, j int) bool { return l.tombSorted[i] < l.tombSorted[j] })
}

// fail poisons the live index after a WAL ack failure: the in-memory
// state may be ahead of what was acked, so no further mutation is
// accepted (reads stay up — the state is a superset of the truth).
func (l *Live) fail(err error) {
	l.mu.Lock()
	if l.broken == nil {
		l.broken = err
	}
	l.mu.Unlock()
}

// Add indexes text under a fresh docid and returns it once the WAL
// record is durable.
func (l *Live) Add(text string) (uint32, error) {
	l.mu.Lock()
	if err := l.usableLocked(); err != nil {
		l.mu.Unlock()
		return 0, err
	}
	doc := l.nextDoc
	l.nextDoc++
	l.mem.Add(doc, text)
	c := l.wal.Enqueue(encodeAdd(doc, text))
	sealNow := l.shouldSealLocked()
	l.mu.Unlock()
	if err := c.Wait(); err != nil {
		l.fail(err)
		return 0, err
	}
	if sealNow {
		go l.autoFlush()
	}
	return doc, nil
}

// Reinsert re-adds a previously deleted docid with new text. The docid
// must not be currently visible.
func (l *Live) Reinsert(doc uint32, text string) error {
	l.mu.Lock()
	if err := l.usableLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	if doc >= l.nextDoc {
		l.mu.Unlock()
		return fmt.Errorf("index: reinsert docid %d was never assigned (next is %d)", doc, l.nextDoc)
	}
	if l.visibleLocked(doc) {
		l.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrDocVisible, doc)
	}
	l.mem.Add(doc, text)
	c := l.wal.Enqueue(encodeAdd(doc, text))
	sealNow := l.shouldSealLocked()
	l.mu.Unlock()
	if err := c.Wait(); err != nil {
		l.fail(err)
		return err
	}
	if sealNow {
		go l.autoFlush()
	}
	return nil
}

// Delete removes a visible document: physically when it is still in
// the mutable segment, via an epoch-bounded tombstone when it lives in
// a frozen or sealed segment. The ack is durable like Add's.
func (l *Live) Delete(doc uint32) error {
	l.mu.Lock()
	if err := l.usableLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	if !l.visibleLocked(doc) {
		l.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrNoSuchDoc, doc)
	}
	if l.mem.Has(doc) {
		l.mem.Remove(doc)
	} else {
		l.tombBounds[doc] = l.epoch - 1
		l.rebuildTombSorted()
	}
	c := l.wal.Enqueue(encodeDelete(doc))
	l.mu.Unlock()
	if err := c.Wait(); err != nil {
		l.fail(err)
		return err
	}
	return nil
}

func (l *Live) usableLocked() error {
	if l.closed {
		return errors.New("index: live index closed")
	}
	return l.broken
}

func (l *Live) shouldSealLocked() bool {
	if l.opts.SealDocs <= 0 || l.sealing {
		return false
	}
	if l.mem.Docs() < l.opts.SealDocs {
		return false
	}
	l.sealing = true
	return true
}

// autoFlush runs the threshold-triggered seal (and, when the sealed
// count crosses its own threshold, a compaction) in the background.
func (l *Live) autoFlush() {
	defer func() {
		l.mu.Lock()
		l.sealing = false
		l.mu.Unlock()
	}()
	if err := l.Seal(); err != nil {
		return
	}
	if n := l.opts.CompactSegments; n > 0 {
		l.mu.RLock()
		due := len(l.sealed) >= n
		l.mu.RUnlock()
		if due {
			l.Compact()
		}
	}
}

// Seal flushes the mutable segment to a BVIX3 file and publishes it.
// The freeze is immediate (new writes go to a fresh mutable segment
// and a rotated WAL); the build, file write, and manifest publish run
// without blocking readers or writers. An empty mutable segment seals
// to nothing.
func (l *Live) Seal() error {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()

	// Phase 1 — freeze. Under the exclusive lock: rotate the WAL so
	// post-freeze writes land in the next log (the old log holds exactly
	// the frozen segment's mutations and stays on disk until the new
	// manifest makes it redundant), swap in a fresh mutable segment, and
	// bump the epoch so deletes issued during the flush mask the frozen
	// copy once sealed.
	l.mu.Lock()
	if err := l.usableLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	if l.mem.Docs() == 0 {
		l.mu.Unlock()
		return nil
	}
	if err := l.wal.Sync(); err != nil {
		l.mu.Unlock()
		l.fail(err)
		return err
	}
	newSeq := l.walSeq + 1
	nl, _, err := wal.Open(filepath.Join(l.dir, walName(newSeq)), wal.Options{FS: l.fsys, SyncEvery: l.opts.SyncEvery})
	if err != nil {
		l.mu.Unlock()
		return err
	}
	oldWal := l.wal
	oldFloor := l.walFloor
	l.wal = nl
	l.walSeq = newSeq
	frozen := l.mem
	frozenEpoch := l.epoch
	l.frozen, l.frozenEpoch = frozen, frozenEpoch
	l.mem = NewMemSegment()
	l.epoch++
	mySegSeq := l.segSeq
	l.mu.Unlock()

	// Phase 2 — build and write the segment, off-lock. A failure here
	// poisons the index: the WAL is already rotated and the epoch
	// bumped, so there is no clean way back; reads keep serving the
	// frozen segment, writes stop, restart recovers from the old
	// manifest + both logs.
	ids := frozen.SortedDocIDs()
	idx, err := buildSegmentIndex(frozen, ids, l.opts.Codec)
	if err != nil {
		l.fail(err)
		return err
	}
	file := segName(mySegSeq)
	path := filepath.Join(l.dir, file)
	if err := idx.writeFileFS(l.fsys, path, FormatBVIX3); err != nil {
		l.fail(err)
		return err
	}
	opened, err := OpenFile(path)
	if err != nil {
		l.fail(err)
		return err
	}
	seg := &sealedSeg{file: file, epoch: frozenEpoch, ranges: rangesFromIDs(ids), snap: NewSnapshot(opened)}

	// Phase 3 — publish + swap. The manifest rename is the commit
	// point: before it, recovery sees the old manifest and rebuilds the
	// frozen segment from its log; after it, the segment is durable and
	// the old log is garbage.
	l.mu.Lock()
	newSegs := append(append([]*sealedSeg(nil), l.sealed...), seg)
	m := &manifest{
		Version: 1, NextDoc: l.nextDoc,
		WALFloor: l.walSeq, WALSeq: l.walSeq,
		SegSeq: mySegSeq + 1, Epoch: l.epoch,
		Segments: segMetas(newSegs),
	}
	if err := m.encodeTombs(l.tombBounds); err == nil {
		err = writeManifest(l.fsys, l.dir, m)
	} else {
		err = fmt.Errorf("index: seal: %w", err)
	}
	if err != nil {
		l.mu.Unlock()
		seg.snap.Retire()
		l.fail(err)
		return err
	}
	l.sealed = newSegs
	l.segSeq = mySegSeq + 1
	l.walFloor = l.walSeq
	l.frozen = nil
	l.seals++
	l.lastSeal = time.Now()
	l.mu.Unlock()

	// Cleanup — all best-effort: a crash here re-runs it next recovery.
	oldWal.Close()
	for seq := oldFloor; seq < l.walFloor; seq++ {
		l.fsys.Remove(filepath.Join(l.dir, walName(seq)))
	}
	return nil
}

func segMetas(segs []*sealedSeg) []segmentMeta {
	out := make([]segmentMeta, len(segs))
	for i, s := range segs {
		out[i] = segmentMeta{File: s.file, Epoch: s.epoch, DocMap: s.ranges.meta()}
	}
	return out
}

// buildSegmentIndex flushes a mem segment through the sharded Builder:
// documents are fed in ascending global-id order, so the Builder's
// dense insertion-order ids map back to globals through idRanges.
func buildSegmentIndex(m *MemSegment, ids []uint32, codec core.Codec) (*Index, error) {
	var b *Builder
	if codec != nil {
		b = NewBuilder(codec)
	} else {
		b = NewAutoBuilder()
	}
	for _, id := range ids {
		b.AddDocument(m.Text(id))
	}
	return b.Build()
}

// Compact merges every sealed segment into one, dropping tombstoned
// documents, and retires the inputs. Tombstones whose work the merge
// completed are pruned; ones recorded after the merge snapshot keep
// masking the output (their bound is at least the output's epoch).
// Compaction refuses to run while any segment is quarantined — merging
// would silently drop the quarantined documents.
func (l *Live) Compact() error {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()

	l.mu.RLock()
	if err := l.usableLocked(); err != nil {
		l.mu.RUnlock()
		return err
	}
	if len(l.sealed) < 2 {
		l.mu.RUnlock()
		return nil
	}
	inputs := append([]*sealedSeg(nil), l.sealed...)
	tombsSnap := make(map[uint32]int, len(l.tombBounds))
	for d, b := range l.tombBounds {
		tombsSnap[d] = b
	}
	outEpoch := 0
	for _, s := range inputs {
		if s.quarantined {
			l.mu.RUnlock()
			return fmt.Errorf("index: compact: segment %s is quarantined", s.file)
		}
		if s.epoch > outEpoch {
			outEpoch = s.epoch
		}
		s.snap.Acquire()
	}
	mySegSeq := l.segSeq
	l.mu.RUnlock()
	release := func() {
		for _, s := range inputs {
			s.snap.Release()
		}
	}

	// Heavy phase, off-lock against the acquired snapshots.
	idx, ranges, err := mergeSealed(inputs, tombsSnap, l.opts.Codec)
	release()
	if err != nil {
		return fmt.Errorf("index: compact: %w", err)
	}

	var out *sealedSeg
	if ranges.total() > 0 {
		file := segName(mySegSeq)
		path := filepath.Join(l.dir, file)
		if err := idx.writeFileFS(l.fsys, path, FormatBVIX3); err != nil {
			return fmt.Errorf("index: compact: %w", err)
		}
		opened, err := OpenFile(path)
		if err != nil {
			return fmt.Errorf("index: compact: %w", err)
		}
		out = &sealedSeg{file: file, epoch: outEpoch, ranges: ranges, snap: NewSnapshot(opened)}
	}

	// Commit: publish the manifest naming only the output, prune the
	// tombstones the merge consumed, swap, retire the inputs.
	l.mu.Lock()
	if err := l.usableLocked(); err != nil {
		l.mu.Unlock()
		if out != nil {
			out.snap.Retire()
		}
		return err
	}
	pruned := map[uint32]int{}
	for d, b := range l.tombBounds {
		if sb, ok := tombsSnap[d]; ok && sb == b {
			continue // fully applied by the merge
		}
		pruned[d] = b
	}
	var newSegs []*sealedSeg
	if out != nil {
		newSegs = []*sealedSeg{out}
	}
	m := &manifest{
		Version: 1, NextDoc: l.nextDoc,
		WALFloor: l.walFloor, WALSeq: l.walSeq,
		SegSeq: mySegSeq + 1, Epoch: l.epoch,
		Segments: segMetas(newSegs),
	}
	if err := m.encodeTombs(pruned); err == nil {
		err = writeManifest(l.fsys, l.dir, m)
	} else {
		err = fmt.Errorf("index: compact: %w", err)
	}
	if err != nil {
		l.mu.Unlock()
		if out != nil {
			out.snap.Retire()
		}
		l.fail(err)
		return err
	}
	old := l.sealed
	l.sealed = newSegs
	l.segSeq = mySegSeq + 1
	l.tombBounds = pruned
	l.rebuildTombSorted()
	l.compactions++
	l.lastCompact = time.Now()
	l.mu.Unlock()

	for _, s := range old {
		s.snap.Retire()
		l.fsys.Remove(filepath.Join(l.dir, s.file))
	}
	return nil
}

// Export flushes the mutable segment and merges every sealed segment
// into one standalone in-memory index over the surviving documents,
// docids renumbered densely in ascending global order — the `bvindex
// -from-wal` recovery path. The live directory is left intact (the
// flush publishes a normal seal; no compaction happens on disk).
func (l *Live) Export() (*Index, error) {
	if err := l.Seal(); err != nil {
		return nil, err
	}
	l.flushMu.Lock()
	defer l.flushMu.Unlock()

	l.mu.RLock()
	if err := l.usableLocked(); err != nil {
		l.mu.RUnlock()
		return nil, err
	}
	inputs := append([]*sealedSeg(nil), l.sealed...)
	tombs := make(map[uint32]int, len(l.tombBounds))
	for d, b := range l.tombBounds {
		tombs[d] = b
	}
	for _, s := range inputs {
		if s.quarantined {
			l.mu.RUnlock()
			return nil, fmt.Errorf("index: export: segment %s is quarantined; recover it before exporting", s.file)
		}
		s.snap.Acquire()
	}
	l.mu.RUnlock()
	defer func() {
		for _, s := range inputs {
			s.snap.Release()
		}
	}()

	if len(inputs) == 0 {
		return nil, errors.New("index: export: live index holds no documents")
	}
	idx, ranges, err := mergeSealed(inputs, tombs, l.opts.Codec)
	if err != nil {
		return nil, fmt.Errorf("index: export: %w", err)
	}
	if ranges.total() == 0 {
		return nil, errors.New("index: export: every document is deleted; nothing to export")
	}
	return idx, nil
}

// mergeSealed merges the inputs' postings into a single eager index
// over the surviving documents, dropping every copy a tombstone masks.
func mergeSealed(inputs []*sealedSeg, tombs map[uint32]int, codec core.Codec) (*Index, idRanges, error) {
	masked := func(doc uint32, epoch int) bool {
		b, ok := tombs[doc]
		return ok && b >= epoch
	}

	// Surviving document universe.
	var survivors []uint32
	for _, s := range inputs {
		for _, g := range s.ranges.allGlobals() {
			if !masked(g, s.epoch) {
				survivors = append(survivors, g)
			}
		}
	}
	sort.Slice(survivors, func(i, j int) bool { return survivors[i] < survivors[j] })
	ranges := rangesFromIDs(survivors)
	if len(survivors) == 0 {
		return nil, ranges, nil
	}

	// Per-input term tables.
	type table struct {
		seg     *sealedSeg
		names   []string
		entries []termEntry
	}
	tables := make([]table, len(inputs))
	vocab := map[string]struct{}{}
	for i, s := range inputs {
		names, entries, err := s.snap.Index().sortedEntries()
		if err != nil {
			return nil, idRanges{}, fmt.Errorf("segment %s: %w", s.file, err)
		}
		tables[i] = table{seg: s, names: names, entries: entries}
		for _, n := range names {
			vocab[n] = struct{}{}
		}
	}
	terms := make([]string, 0, len(vocab))
	for t := range vocab {
		terms = append(terms, t)
	}
	sort.Strings(terms)

	sel := AutoSelector()
	merged := make(map[string]termEntry, len(terms))
	// Per-table cursor: names are sorted, terms are iterated sorted, so
	// each table advances monotonically.
	cursors := make([]int, len(tables))
	type postings struct {
		docs  []uint32
		freqs []uint16
	}
	for _, t := range terms {
		var parts []postings
		for ti := range tables {
			tb := &tables[ti]
			for cursors[ti] < len(tb.names) && tb.names[cursors[ti]] < t {
				cursors[ti]++
			}
			if cursors[ti] >= len(tb.names) || tb.names[cursors[ti]] != t {
				continue
			}
			e := tb.entries[cursors[ti]]
			locals := e.posting.Decompress()
			globals := tb.seg.ranges.globals(locals)
			var docs []uint32
			var freqs []uint16
			for i, g := range globals {
				if masked(g, tb.seg.epoch) {
					continue
				}
				docs = append(docs, g)
				var f uint16 = 1
				if i < len(e.freqs) {
					f = e.freqs[i]
				}
				freqs = append(freqs, f)
			}
			if len(docs) > 0 {
				parts = append(parts, postings{docs, freqs})
			}
		}
		if len(parts) == 0 {
			continue
		}
		// K-way merge by global id. After masking, a document survives in
		// at most one input (re-added copies mask their elders), so the
		// streams never collide on a docid.
		var docs []uint32
		var freqs []uint16
		idxs := make([]int, len(parts))
		for {
			best := -1
			for i, p := range parts {
				if idxs[i] >= len(p.docs) {
					continue
				}
				if best < 0 || p.docs[idxs[i]] < parts[best].docs[idxs[best]] {
					best = i
				}
			}
			if best < 0 {
				break
			}
			g := parts[best].docs[idxs[best]]
			local, ok := ranges.toLocal(g)
			if !ok {
				return nil, idRanges{}, fmt.Errorf("merged docid %d outside survivor set", g)
			}
			docs = append(docs, local)
			freqs = append(freqs, parts[best].freqs[idxs[best]])
			idxs[best]++
		}
		c := codec
		if c == nil {
			c = sel(docs, len(survivors))
		}
		p, err := c.Compress(docs)
		if err != nil {
			return nil, idRanges{}, fmt.Errorf("term %q: %w", t, err)
		}
		merged[t] = termEntry{posting: p, freqs: freqs, codec: c.Name()}
	}
	out := &Index{codec: codec, terms: merged, docs: len(survivors)}
	return out, ranges, nil
}

// maskGlobals filters tombstoned docs out of an ascending global-id
// list for a segment of the given epoch, via a merge walk against the
// sorted tombstone ids. Caller holds mu shared.
func (l *Live) maskGlobals(list []uint32, epoch int) []uint32 {
	if len(l.tombSorted) == 0 || len(list) == 0 {
		return list
	}
	out := list[:0]
	j := 0
	for _, d := range list {
		for j < len(l.tombSorted) && l.tombSorted[j] < d {
			j++
		}
		if j < len(l.tombSorted) && l.tombSorted[j] == d && l.tombBounds[d] >= epoch {
			continue
		}
		out = append(out, d)
	}
	return out
}

// pseudoSegs enumerates the query targets: sealed segments first (file
// order), then the frozen segment, then the mutable one. Caller holds
// mu shared.
type memView struct {
	m     *MemSegment
	epoch int
	mask  bool // apply tombstone masking (frozen only)
}

func (l *Live) memViews() []memView {
	var out []memView
	if l.frozen != nil {
		out = append(out, memView{l.frozen, l.frozenEpoch, true})
	}
	out = append(out, memView{l.mem, l.epoch, false})
	return out
}

// Conjunctive answers an AND query across every segment.
func (l *Live) Conjunctive(terms ...string) ([]uint32, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var lists [][]uint32
	for _, seg := range l.sealed {
		if seg.quarantined {
			continue
		}
		local, err := seg.snap.Index().Conjunctive(terms...)
		if err != nil {
			return nil, err
		}
		if len(local) == 0 {
			continue
		}
		g := l.maskGlobals(seg.ranges.globals(local), seg.epoch)
		if len(g) > 0 {
			lists = append(lists, g)
		}
	}
	for _, v := range l.memViews() {
		g := memConjunctive(v.m, terms)
		if v.mask {
			g = l.maskGlobals(g, v.epoch)
		}
		if len(g) > 0 {
			lists = append(lists, g)
		}
	}
	return mergeDisjoint(lists), nil
}

// Disjunctive answers an OR query across every segment.
func (l *Live) Disjunctive(terms ...string) ([]uint32, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var lists [][]uint32
	for _, seg := range l.sealed {
		if seg.quarantined {
			continue
		}
		local, err := seg.snap.Index().Disjunctive(terms...)
		if err != nil {
			return nil, err
		}
		if len(local) == 0 {
			continue
		}
		g := l.maskGlobals(seg.ranges.globals(local), seg.epoch)
		if len(g) > 0 {
			lists = append(lists, g)
		}
	}
	for _, v := range l.memViews() {
		g := memDisjunctive(v.m, terms)
		if v.mask {
			g = l.maskGlobals(g, v.epoch)
		}
		if len(g) > 0 {
			lists = append(lists, g)
		}
	}
	return mergeDisjoint(lists), nil
}

// mergeDisjoint k-way merges ascending lists with no duplicates across
// them (a document is visible in exactly one segment).
func mergeDisjoint(lists [][]uint32) []uint32 {
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return lists[0]
	}
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	out := make([]uint32, 0, total)
	idxs := make([]int, len(lists))
	for {
		best := -1
		for i, l := range lists {
			if idxs[i] >= len(l) {
				continue
			}
			if best < 0 || l[idxs[i]] < lists[best][idxs[best]] {
				best = i
			}
		}
		if best < 0 {
			return out
		}
		out = append(out, lists[best][idxs[best]])
		idxs[best]++
	}
}

// TopK ranks across every segment by summed quantized impact (score
// descending, docid ascending on ties) — identical to TopK on a
// from-scratch index over the surviving documents. Each sealed segment
// is asked for k plus the number of tombstones that could mask its
// results, so masking can never starve the merged candidate set.
func (l *Live) TopK(k int, terms ...string) ([]Result, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if k <= 0 {
		return nil, nil
	}
	var cands []Result
	for _, seg := range l.sealed {
		if seg.quarantined {
			continue
		}
		extra := 0
		for _, d := range l.tombSorted {
			if seg.ranges.contains(d) && l.tombBounds[d] >= seg.epoch {
				extra++
			}
		}
		rs, err := seg.snap.Index().TopKWith("auto", k+extra, nil, terms...)
		if err != nil {
			return nil, err
		}
		for _, r := range rs {
			g := seg.ranges.toGlobal(r.Doc)
			if l.maskedLocked(g, seg.epoch) {
				continue
			}
			cands = append(cands, Result{Doc: g, Score: r.Score})
		}
	}
	for _, v := range l.memViews() {
		for d, s := range memScores(v.m, terms) {
			if v.mask && l.maskedLocked(d, v.epoch) {
				continue
			}
			cands = append(cands, Result{Doc: d, Score: int(s)})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Score != cands[j].Score {
			return cands[i].Score > cands[j].Score
		}
		return cands[i].Doc < cands[j].Doc
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	if len(cands) == 0 {
		return nil, nil
	}
	return cands, nil
}

// LiveStats is the live index's gauge set for /stats.
type LiveStats struct {
	Segments            int    `json:"segments"`
	QuarantinedSegments int    `json:"quarantinedSegments"`
	MemDocs             int    `json:"memDocs"`
	FrozenDocs          int    `json:"frozenDocs"`
	VisibleDocs         int    `json:"visibleDocs"`
	Tombstones          int    `json:"tombstones"`
	NextDoc             uint32 `json:"nextDoc"`
	Epoch               int    `json:"epoch"`
	WALSeq              int    `json:"walSeq"`
	WALBytes            int64  `json:"walBytes"`
	WALPendingBytes     int64  `json:"walPendingBytes"`
	Seals               int64  `json:"seals"`
	Compactions         int64  `json:"compactions"`
	// LastSealAgeSec / LastCompactionAgeSec are -1 before the first
	// seal / compaction of this process.
	LastSealAgeSec       float64 `json:"lastSealAgeSec"`
	LastCompactionAgeSec float64 `json:"lastCompactionAgeSec"`
}

// Stats snapshots the gauges.
func (l *Live) Stats() LiveStats {
	l.mu.RLock()
	defer l.mu.RUnlock()
	s := LiveStats{
		Segments: len(l.sealed), MemDocs: l.mem.Docs(),
		Tombstones: len(l.tombBounds), NextDoc: l.nextDoc, Epoch: l.epoch,
		WALSeq: l.walSeq, Seals: l.seals, Compactions: l.compactions,
		LastSealAgeSec: -1, LastCompactionAgeSec: -1,
	}
	if l.wal != nil {
		s.WALBytes = l.wal.Size()
		s.WALPendingBytes = l.wal.Pending()
	}
	if l.frozen != nil {
		s.FrozenDocs = l.frozen.Docs()
	}
	visible := l.mem.Docs() + s.FrozenDocs
	for _, seg := range l.sealed {
		n := seg.ranges.total()
		for _, d := range l.tombSorted {
			if seg.ranges.contains(d) && l.tombBounds[d] >= seg.epoch {
				n--
			}
		}
		visible += n
		if seg.quarantined {
			s.QuarantinedSegments++
		}
	}
	if l.frozen != nil {
		for _, d := range l.tombSorted {
			if l.frozen.Has(d) && l.tombBounds[d] >= l.frozenEpoch {
				visible--
			}
		}
	}
	s.VisibleDocs = visible
	if !l.lastSeal.IsZero() {
		s.LastSealAgeSec = time.Since(l.lastSeal).Seconds()
	}
	if !l.lastCompact.IsZero() {
		s.LastCompactionAgeSec = time.Since(l.lastCompact).Seconds()
	}
	return s
}

// LiveHealth is the live index's degraded-state summary: quarantined
// sealed segments are named while the mutable segment stays live —
// ingestion continues even when part of the sealed history cannot be
// served.
type LiveHealth struct {
	Degraded            bool     `json:"degraded"`
	QuarantinedSegments []string `json:"quarantinedSegments,omitempty"`
	MutableLive         bool     `json:"mutableLive"`
}

// Health reports the degraded-state summary.
func (l *Live) Health() LiveHealth {
	l.mu.RLock()
	defer l.mu.RUnlock()
	h := LiveHealth{MutableLive: !l.closed && l.broken == nil}
	for _, seg := range l.sealed {
		if seg.quarantined {
			h.Degraded = true
			h.QuarantinedSegments = append(h.QuarantinedSegments, seg.file)
		} else if seg.snap.Index().Health().Degraded {
			// Opened only in degraded mode: servable subset.
			h.Degraded = true
			h.QuarantinedSegments = append(h.QuarantinedSegments, seg.file)
		}
	}
	return h
}

// Docs reports the number of visible documents.
func (l *Live) Docs() int { return l.Stats().VisibleDocs }

// Dir reports the live directory.
func (l *Live) Dir() string { return l.dir }

// Close shuts the live index down: syncs and closes the WAL, retires
// every sealed snapshot. Not an implicit Seal — the mutable segment's
// contents live in the WAL and replay on the next OpenLive.
func (l *Live) Close() error {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	w := l.wal
	segs := l.sealed
	l.mu.Unlock()
	var err error
	if w != nil {
		err = w.Close()
	}
	for _, s := range segs {
		if s.snap != nil {
			s.snap.Retire()
		}
	}
	return err
}
