package index

import (
	"reflect"
	"testing"
)

func TestDecodedCacheLRUEviction(t *testing.T) {
	vals := make([]uint32, 100) // 400 bytes payload + ~100 overhead per entry
	c := NewDecodedCache(3 * 520)
	gen := c.register()

	c.put(gen, "a", vals)
	c.put(gen, "b", vals)
	c.put(gen, "c", vals)
	if st := c.Stats(); st.Entries != 3 {
		t.Fatalf("expected 3 entries, got %+v", st)
	}
	// Touch "a" so "b" becomes the LRU victim.
	if _, ok := c.get(gen, "a"); !ok {
		t.Fatal("a should be cached")
	}
	c.put(gen, "d", vals)
	if _, ok := c.get(gen, "b"); ok {
		t.Fatal("b should have been evicted as least recently used")
	}
	for _, term := range []string{"a", "c", "d"} {
		if _, ok := c.get(gen, term); !ok {
			t.Fatalf("%s should still be cached", term)
		}
	}
	if st := c.Stats(); st.Bytes > 3*520 {
		t.Fatalf("byte budget exceeded: %+v", st)
	}
}

func TestDecodedCacheBounds(t *testing.T) {
	// Zero-budget cache stores nothing but stays safe to call.
	c := NewDecodedCache(0)
	gen := c.register()
	c.put(gen, "x", []uint32{1, 2, 3})
	if _, ok := c.get(gen, "x"); ok {
		t.Fatal("zero-budget cache must not store entries")
	}
	// An entry larger than the whole budget is rejected, not admitted.
	c = NewDecodedCache(64)
	gen = c.register()
	c.put(gen, "big", make([]uint32, 1000))
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("oversized entry was admitted: %+v", st)
	}
}

func TestDecodedCacheGenerations(t *testing.T) {
	c := NewDecodedCache(1 << 20)
	g1 := c.register()
	g2 := c.register()
	c.put(g1, "term", []uint32{1})
	c.put(g2, "term", []uint32{2})

	// Same term, different generations: independent entries.
	v1, _ := c.get(g1, "term")
	v2, _ := c.get(g2, "term")
	if v1[0] != 1 || v2[0] != 2 {
		t.Fatalf("generations not isolated: %v %v", v1, v2)
	}

	// Reload invalidation drops everything except the surviving gen.
	c.DropOtherGenerations(g2)
	if _, ok := c.get(g1, "term"); ok {
		t.Fatal("old-generation entry survived DropOtherGenerations")
	}
	if v, ok := c.get(g2, "term"); !ok || v[0] != 2 {
		t.Fatal("surviving generation was dropped")
	}
}

func TestIndexDecodedPostingsUsesCache(t *testing.T) {
	idx := buildTestIndex(t, "Roaring")
	c := NewDecodedCache(1 << 20)
	idx.AttachCache(c)
	if idx.Generation() == 0 {
		t.Fatal("AttachCache should assign a nonzero generation")
	}

	first := idx.DecodedPostings("compressed")
	again := idx.DecodedPostings("compressed")
	if !reflect.DeepEqual(first, again) {
		t.Fatalf("cached decode differs: %v vs %v", first, again)
	}
	st := c.Stats()
	if st.Hits < 1 || st.Misses < 1 {
		t.Fatalf("expected at least one hit and one miss, got %+v", st)
	}
	if got := idx.DecodedPostings("no-such-term"); got == nil || len(got) != 0 {
		t.Fatalf("unknown term should decode to the empty sentinel, got %v", got)
	}
}

// TestIndexQueriesMatchWithCache: conjunctive, disjunctive, and top-k
// results are identical with and without an attached cache, on cold and
// warm paths.
func TestIndexQueriesMatchWithCache(t *testing.T) {
	for _, codec := range []string{"Roaring", "SIMDBP128*", "WAH"} {
		plain := buildTestIndex(t, codec)
		cached := buildTestIndex(t, codec)
		cached.AttachCache(NewDecodedCache(1 << 20))

		terms := []string{"compressed", "lists", "bitmap"}
		for pass := 0; pass < 2; pass++ { // cold then warm
			wantOr, err := plain.Disjunctive(terms...)
			if err != nil {
				t.Fatal(err)
			}
			gotOr, err := cached.Disjunctive(terms...)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotOr, wantOr) {
				t.Fatalf("%s pass %d: Disjunctive with cache = %v, want %v", codec, pass, gotOr, wantOr)
			}
			wantK, err := plain.TopK(4, terms...)
			if err != nil {
				t.Fatal(err)
			}
			gotK, err := cached.TopK(4, terms...)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotK, wantK) {
				t.Fatalf("%s pass %d: TopK with cache = %v, want %v", codec, pass, gotK, wantK)
			}
		}
	}
}
