package index

import (
	"sync"
	"sync/atomic"
	"testing"
)

func snapForTest(t *testing.T) (*Snapshot, *atomic.Int64) {
	t.Helper()
	idx := buildTestIndex(t, "Roaring")
	var closes atomic.Int64
	idx.OnClose(func() { closes.Add(1) })
	return NewSnapshot(idx), &closes
}

func TestSnapshotOwnerRetireCloses(t *testing.T) {
	s, closes := snapForTest(t)
	if s.Refs() != 1 {
		t.Fatalf("fresh snapshot refs = %d, want 1", s.Refs())
	}
	if s.Closed() {
		t.Fatal("fresh snapshot reports closed")
	}
	s.Retire()
	if !s.Closed() || s.Refs() != 0 {
		t.Fatalf("after retire with no readers: closed=%v refs=%d", s.Closed(), s.Refs())
	}
	if got := closes.Load(); got != 1 {
		t.Fatalf("underlying Close ran %d times, want 1", got)
	}
	if err := s.CloseErr(); err != nil {
		t.Fatalf("CloseErr = %v", err)
	}
}

func TestSnapshotRetireIsIdempotent(t *testing.T) {
	s, closes := snapForTest(t)
	s.Retire()
	s.Retire()
	s.Retire()
	if got := closes.Load(); got != 1 {
		t.Fatalf("underlying Close ran %d times, want 1", got)
	}
}

func TestSnapshotReaderDefersClose(t *testing.T) {
	s, closes := snapForTest(t)
	if !s.Acquire() {
		t.Fatal("Acquire on live snapshot failed")
	}
	s.Retire()
	if s.Closed() {
		t.Fatal("snapshot closed while a reader holds a reference")
	}
	if closes.Load() != 0 {
		t.Fatal("underlying Close ran while a reader holds a reference")
	}
	s.Release()
	if !s.Closed() || closes.Load() != 1 {
		t.Fatalf("after last release: closed=%v closes=%d", s.Closed(), closes.Load())
	}
}

func TestSnapshotAcquireFailsAfterDeath(t *testing.T) {
	s, _ := snapForTest(t)
	s.Retire()
	if s.Acquire() {
		t.Fatal("Acquire succeeded on a dead snapshot")
	}
}

func TestSnapshotUnmatchedReleasePanics(t *testing.T) {
	s, _ := snapForTest(t)
	s.Retire()
	defer func() {
		if recover() == nil {
			t.Fatal("Release past zero did not panic")
		}
	}()
	s.Release()
}

// TestSnapshotConcurrentChurn hammers Acquire/Release from many
// goroutines racing a mid-stream Retire: run with -race. The close must
// happen exactly once, after every successful Acquire has Released.
func TestSnapshotConcurrentChurn(t *testing.T) {
	for round := 0; round < 50; round++ {
		s, closes := snapForTest(t)
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 100; i++ {
					if !s.Acquire() {
						return
					}
					_ = s.Index().Terms()
					s.Release()
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			s.Retire()
		}()
		close(start)
		wg.Wait()
		if !s.Closed() {
			t.Fatalf("round %d: snapshot not closed after churn drained", round)
		}
		if got := closes.Load(); got != 1 {
			t.Fatalf("round %d: underlying Close ran %d times, want 1", round, got)
		}
	}
}
