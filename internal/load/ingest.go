package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"time"
)

// Live-ingestion chaos: drive a real `bvserve -live` subprocess with a
// stream of ingests, deletes, and sentinel verification queries, then
// SIGKILL it mid-ingest — twice — and require that after each restart
// every acked write is still served and every acked delete stays dead.
// An ack here is the server's 200, which bvserve only sends after the
// WAL fsync, so "acked" and "must survive kill -9" are the same set.
//
// Requests that die in flight (the transport error when the process is
// killed under them) are recorded as limbo: the harness never saw an
// ack, so the op is legally allowed to have happened or not — the
// recovery invariant permits any prefix between acked and submitted.
// What is never legal: a lost acked write, a resurrected acked delete,
// or a sentinel query returning the wrong document set.

// LiveProc manages a bvserve -live subprocess for the ingest chaos
// harness: real SIGKILL, real restart, same data directory.
type LiveProc struct {
	Bin       string
	Dir       string   // live data directory, reused across restarts
	ExtraArgs []string // appended to the standard -live argument set
	LogTo     io.Writer

	addr string
	mu   sync.Mutex
	cmd  *exec.Cmd
	done chan error
}

// NewLiveProc prepares the controller; the live directory is created
// by the server on first boot.
func NewLiveProc(bin, dir string, extraArgs []string, logTo io.Writer) (*LiveProc, error) {
	if _, err := exec.LookPath(bin); err != nil {
		return nil, fmt.Errorf("load: bvserve binary: %w", err)
	}
	addr, err := freeAddr()
	if err != nil {
		return nil, err
	}
	if logTo == nil {
		logTo = io.Discard
	}
	return &LiveProc{Bin: bin, Dir: dir, ExtraArgs: extraArgs, LogTo: logTo, addr: addr}, nil
}

// BaseURL is stable across Kill/Restart.
func (p *LiveProc) BaseURL() string { return "http://" + p.addr }

// Start execs bvserve -live and waits for /readyz.
func (p *LiveProc) Start(ctx context.Context) error {
	p.mu.Lock()
	if p.cmd != nil {
		p.mu.Unlock()
		return fmt.Errorf("load: live server already running")
	}
	args := append([]string{
		"-live", p.Dir,
		"-addr", p.addr,
		"-drain", "2s",
	}, p.ExtraArgs...)
	cmd := exec.Command(p.Bin, args...)
	cmd.Stdout = p.LogTo
	cmd.Stderr = p.LogTo
	if err := cmd.Start(); err != nil {
		p.mu.Unlock()
		return fmt.Errorf("load: starting %s: %w", p.Bin, err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	p.cmd, p.done = cmd, done
	p.mu.Unlock()
	return pollReady(ctx, p.BaseURL(), 15*time.Second)
}

// Kill SIGKILLs the process — no drain, no WAL flush beyond what each
// ack already forced.
func (p *LiveProc) Kill() error {
	p.mu.Lock()
	cmd, done := p.cmd, p.done
	p.cmd, p.done = nil, nil
	p.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return fmt.Errorf("load: live server not running")
	}
	if err := cmd.Process.Kill(); err != nil {
		return fmt.Errorf("load: kill: %w", err)
	}
	<-done
	return nil
}

// Restart boots again over the same directory; recovery replays the
// manifest and WAL before /readyz answers.
func (p *LiveProc) Restart(ctx context.Context) error { return p.Start(ctx) }

// Stop shuts down cleanly (SIGTERM + drain) at the end of the run.
func (p *LiveProc) Stop() error {
	p.mu.Lock()
	cmd, done := p.cmd, p.done
	p.cmd, p.done = nil, nil
	p.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return nil
	}
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		return err
	}
	select {
	case <-done:
		return nil
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		<-done
		return fmt.Errorf("load: live server ignored SIGTERM; killed")
	}
}

// IngestChaosConfig tunes the live ingest/delete storm.
type IngestChaosConfig struct {
	Bin      string        // bvserve binary
	Dir      string        // live data directory
	Duration time.Duration // total run length
	Rate     float64       // offered write+verify ops per second (default 100)
	Seed     int64
	// SealDocs/CompactSegments/FsyncWindow pass through to bvserve so
	// seals and compactions actually happen during the storm.
	SealDocs        int           // default 150
	CompactSegments int           // default 3
	FsyncWindow     time.Duration // default 2ms (group commit)
	LogTo           io.Writer
}

// IngestReport is the machine-readable outcome, written as
// results/LOAD_ingest.json.
type IngestReport struct {
	Target     string    `json:"target"`
	Seed       int64     `json:"seed"`
	RateOPS    float64   `json:"rateOPS"`
	DurationNs int64     `json:"durationNs"`
	Started    time.Time `json:"started"`
	Finished   time.Time `json:"finished"`

	Ops          int64 `json:"ops"`
	AckedAdds    int64 `json:"ackedAdds"`
	AckedDeletes int64 `json:"ackedDeletes"`
	Verifies     int64 `json:"verifies"`
	Sheds        int64 `json:"sheds"`
	LimboAdds    int64 `json:"limboAdds"`    // in-flight when killed; either outcome legal
	LimboDeletes int64 `json:"limboDeletes"` //
	Kills        int   `json:"kills"`

	FinalSweepDocs int `json:"finalSweepDocs"` // sentinels checked after the last restart

	// The three zero-tolerance gates.
	LostAcked   []uint32 `json:"lostAcked,omitempty"`
	Resurrected []uint32 `json:"resurrected,omitempty"`
	Incorrect   []string `json:"incorrect,omitempty"`

	FinalStats json.RawMessage `json:"finalStats,omitempty"` // /stats at the end

	Events     []Event  `json:"events,omitempty"`
	Violations []string `json:"violations,omitempty"`
	Pass       bool     `json:"pass"`
}

// WriteFile writes the report, creating parent directories.
func (r *IngestReport) WriteFile(path string) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ingestState is the harness's mirror of what the server has acked.
type ingestState struct {
	acked     map[uint32]string // docid -> sentinel term, acked and not deleted
	deleted   map[uint32]string // docid -> sentinel, delete acked
	limbo     map[uint32]string // delete in flight when killed: either outcome legal
	limboAdds []string          // sentinels of adds whose ack was lost: no docid known
	seq       int
}

func sentinelTerm(seq int) string { return fmt.Sprintf("sentinel%06d", seq) }

// RunIngestChaos runs the storm and returns the report (never an error
// for gate failures — those set Violations; the error is for harness
// breakage).
func RunIngestChaos(ctx context.Context, cfg IngestChaosConfig) (*IngestReport, error) {
	if cfg.Rate <= 0 {
		cfg.Rate = 100
	}
	if cfg.SealDocs <= 0 {
		cfg.SealDocs = 150
	}
	if cfg.CompactSegments <= 0 {
		cfg.CompactSegments = 3
	}
	if cfg.FsyncWindow <= 0 {
		cfg.FsyncWindow = 2 * time.Millisecond
	}
	proc, err := NewLiveProc(cfg.Bin, cfg.Dir, []string{
		"-seal-docs", fmt.Sprint(cfg.SealDocs),
		"-compact-segments", fmt.Sprint(cfg.CompactSegments),
		"-fsync-window", cfg.FsyncWindow.String(),
	}, cfg.LogTo)
	if err != nil {
		return nil, err
	}
	if err := proc.Start(ctx); err != nil {
		return nil, err
	}
	defer proc.Stop()

	rep := &IngestReport{
		Target: proc.BaseURL(), Seed: cfg.Seed, RateOPS: cfg.Rate,
		DurationNs: int64(cfg.Duration), Started: time.Now(), Pass: true,
	}
	record := func(name, detail string, err error) {
		e := Event{At: time.Now(), Name: name, Detail: detail}
		if err != nil {
			e.Err = err.Error()
		}
		rep.Events = append(rep.Events, e)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	st := &ingestState{acked: map[uint32]string{}, deleted: map[uint32]string{}, limbo: map[uint32]string{}}
	client := &http.Client{Timeout: 3 * time.Second}
	base := proc.BaseURL()
	vocab := []string{"alpha", "beta", "gamma", "delta", "omega", "sigma", "kappa", "lambda"}

	start := time.Now()
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	killAt := []float64{0.40, 0.75}
	killed := 0

	for time.Since(start) < cfg.Duration && ctx.Err() == nil {
		frac := float64(time.Since(start)) / float64(cfg.Duration)
		if killed < len(killAt) && frac >= killAt[killed] {
			// SIGKILL mid-ingest, restart over the same directory, and
			// immediately prove no acked write was lost.
			killed++
			rep.Kills++
			err := proc.Kill()
			if err == nil {
				time.Sleep(150 * time.Millisecond)
				err = proc.Restart(ctx)
			}
			record(fmt.Sprintf("kill-restart-%d", killed), fmt.Sprintf("%d acked docs at kill", len(st.acked)), err)
			if err != nil {
				return rep, fmt.Errorf("load: kill/restart %d: %w", killed, err)
			}
			sweepAcked(client, base, st, rep, 64, rng)
			continue
		}

		switch op := rng.Float64(); {
		case op < 0.60: // ingest
			st.seq++
			sent := sentinelTerm(st.seq)
			text := sent + " " + vocab[rng.Intn(len(vocab))] + " " + vocab[rng.Intn(len(vocab))]
			id, status, err := postIngest(client, base, text)
			rep.Ops++
			switch {
			case err != nil:
				rep.LimboAdds++ // no ack seen; recovery may keep or drop it
				st.limboAdds = append(st.limboAdds, sent)
			case status == http.StatusOK:
				rep.AckedAdds++
				st.acked[id] = sent
			case status == http.StatusTooManyRequests:
				rep.Sheds++
			default:
				rep.Incorrect = append(rep.Incorrect, fmt.Sprintf("ingest %s: status %d", sent, status))
			}
		case op < 0.75 && len(st.acked) > 0: // delete
			id, sent := randomAcked(rng, st.acked)
			status, err := postDelete(client, base, id)
			rep.Ops++
			switch {
			case err != nil:
				rep.LimboDeletes++
				delete(st.acked, id)
				st.limbo[id] = sent // deleted or not — both legal from here on
			case status == http.StatusOK:
				rep.AckedDeletes++
				delete(st.acked, id)
				st.deleted[id] = sent
			case status == http.StatusTooManyRequests:
				rep.Sheds++
			case status == http.StatusNotFound:
				// Only legal for a doc whose delete previously went limbo —
				// randomAcked never picks those, so 404 here is a bug.
				rep.Incorrect = append(rep.Incorrect, fmt.Sprintf("delete %d: 404 for an acked doc", id))
			default:
				rep.Incorrect = append(rep.Incorrect, fmt.Sprintf("delete %d: status %d", id, status))
			}
		default: // verify a random sentinel
			rep.Ops++
			verifyOne(client, base, st, rep, rng)
		}

		select {
		case <-ctx.Done():
		case <-time.After(interval):
		}
	}
	if ctx.Err() != nil {
		return rep, ctx.Err()
	}

	// Final sweep: every sentinel with a determined outcome, exhaustively.
	n, err := finalSweep(client, base, st, rep)
	record("final-sweep", fmt.Sprintf("%d sentinels", n), err)
	rep.FinalSweepDocs = n

	var stats json.RawMessage
	if err := getJSON(ctx, base+"/stats", &stats); err == nil {
		rep.FinalStats = stats
	}
	rep.Finished = time.Now()

	if rep.AckedAdds < 20 {
		rep.Violations = append(rep.Violations, fmt.Sprintf("vacuous run: only %d acked ingests", rep.AckedAdds))
	}
	if rep.Kills < 2 {
		rep.Violations = append(rep.Violations, fmt.Sprintf("storm ran only %d kills, want 2", rep.Kills))
	}
	if len(rep.LostAcked) > 0 {
		rep.Violations = append(rep.Violations, fmt.Sprintf("%d acked writes lost: %v", len(rep.LostAcked), rep.LostAcked))
	}
	if len(rep.Resurrected) > 0 {
		rep.Violations = append(rep.Violations, fmt.Sprintf("%d acked deletes resurrected: %v", len(rep.Resurrected), rep.Resurrected))
	}
	if len(rep.Incorrect) > 0 {
		rep.Violations = append(rep.Violations, fmt.Sprintf("%d incorrect responses (first: %s)", len(rep.Incorrect), rep.Incorrect[0]))
	}
	rep.Pass = len(rep.Violations) == 0
	return rep, nil
}

func postIngest(client *http.Client, base, text string) (uint32, int, error) {
	body, _ := json.Marshal(map[string]string{"text": text})
	resp, err := client.Post(base+"/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return 0, resp.StatusCode, nil
	}
	var out struct {
		Doc uint32 `json:"doc"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, 0, err
	}
	return out.Doc, resp.StatusCode, nil
}

func postDelete(client *http.Client, base string, id uint32) (int, error) {
	body, _ := json.Marshal(map[string]uint32{"doc": id})
	resp, err := client.Post(base+"/delete", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// searchSentinel returns the doc list the server serves for one
// sentinel term.
func searchSentinel(client *http.Client, base, sent string) ([]uint32, error) {
	resp, err := client.Get(base + "/search?mode=and&q=" + sent)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("search %s: status %d", sent, resp.StatusCode)
	}
	var out struct {
		Docs []uint32 `json:"docs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out.Docs, nil
}

func randomAcked(rng *rand.Rand, acked map[uint32]string) (uint32, string) {
	i := rng.Intn(len(acked))
	for id, sent := range acked {
		if i == 0 {
			return id, sent
		}
		i--
	}
	panic("unreachable")
}

// verifyOne spot-checks one sentinel mid-run: an acked doc must be
// served as exactly its docid; an acked delete must be absent.
func verifyOne(client *http.Client, base string, st *ingestState, rep *IngestReport, rng *rand.Rand) {
	rep.Verifies++
	if len(st.acked) > 0 && (len(st.deleted) == 0 || rng.Intn(2) == 0) {
		id, sent := randomAcked(rng, st.acked)
		docs, err := searchSentinel(client, base, sent)
		if err != nil {
			return // transport noise around a kill; the final sweep is authoritative
		}
		if len(docs) != 1 || docs[0] != id {
			rep.Incorrect = append(rep.Incorrect, fmt.Sprintf("sentinel %s: got %v, want [%d]", sent, docs, id))
		}
		return
	}
	if len(st.deleted) == 0 {
		return
	}
	for id, sent := range st.deleted {
		docs, err := searchSentinel(client, base, sent)
		if err == nil && len(docs) != 0 {
			rep.Incorrect = append(rep.Incorrect, fmt.Sprintf("deleted sentinel %s: still served as %v (deleted doc %d)", sent, docs, id))
		}
		return
	}
}

// sweepAcked samples up to n acked sentinels right after a restart —
// the fast "did recovery lose anything" probe; the exhaustive check is
// finalSweep.
func sweepAcked(client *http.Client, base string, st *ingestState, rep *IngestReport, n int, rng *rand.Rand) {
	checked := 0
	for id, sent := range st.acked {
		if checked >= n {
			break
		}
		checked++
		docs, err := searchSentinel(client, base, sent)
		if err != nil {
			continue
		}
		if len(docs) != 1 || docs[0] != id {
			rep.LostAcked = append(rep.LostAcked, id)
		}
	}
}

// finalSweep exhaustively checks every determined sentinel after the
// storm: acked docs must be served exactly, acked deletes must stay
// dead, limbo ops may have gone either way but must be internally
// consistent (the sentinel is either absent or exactly its docid).
func finalSweep(client *http.Client, base string, st *ingestState, rep *IngestReport) (int, error) {
	n := 0
	for id, sent := range st.acked {
		n++
		docs, err := searchSentinel(client, base, sent)
		if err != nil {
			return n, err
		}
		if len(docs) != 1 || docs[0] != id {
			rep.LostAcked = append(rep.LostAcked, id)
		}
	}
	for id, sent := range st.deleted {
		n++
		docs, err := searchSentinel(client, base, sent)
		if err != nil {
			return n, err
		}
		if len(docs) != 0 {
			rep.Resurrected = append(rep.Resurrected, id)
		}
	}
	for id, sent := range st.limbo {
		n++
		docs, err := searchSentinel(client, base, sent)
		if err != nil {
			return n, err
		}
		if len(docs) != 0 && (len(docs) != 1 || docs[0] != id) {
			rep.Incorrect = append(rep.Incorrect, fmt.Sprintf("limbo sentinel %s: got %v, want [] or [%d]", sent, docs, id))
		}
	}
	for _, sent := range st.limboAdds {
		// The ack was lost so no docid is known; the add may have landed
		// or not, but the sentinel is unique to one submitted document —
		// more than one match is corruption.
		n++
		docs, err := searchSentinel(client, base, sent)
		if err != nil {
			return n, err
		}
		if len(docs) > 1 {
			rep.Incorrect = append(rep.Incorrect, fmt.Sprintf("limbo-add sentinel %s: %d matches, want at most 1", sent, len(docs)))
		}
	}
	return n, nil
}
