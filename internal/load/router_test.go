package load

import (
	"context"
	"testing"
	"time"
)

// TestRouterRigIdentity: with every shard healthy, the router must be
// indistinguishable from a single server — every response over the
// full mixed workload classifies Correct against ground truth computed
// on the unpartitioned index.
func TestRouterRigIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("load run takes seconds")
	}
	docs, _ := GenCorpus(11, 300, 50)
	idx, vocab := buildTestIndex(t, 11, 300, 50)
	w, err := BuildWorkload(idx, vocab, 128, 5, DefaultMix())
	if err != nil {
		t.Fatal(err)
	}

	rig, err := NewRouterRig(t.TempDir(), docs, "Roaring", 3, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := rig.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer rig.Stop()

	rep, err := Run(ctx, w, Options{
		BaseURL:  rig.BaseURL(),
		Rate:     200,
		Duration: 1500 * time.Millisecond,
		Seed:     17,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := rep.Classes[ClassCorrect.String()]; n != rep.Requests {
		t.Errorf("%d/%d correct; classes %v; failures %+v", n, rep.Requests, rep.Classes, rep.Failures)
	}
}

// TestRouterChaosEndToEnd is the scale-out drill: load runs against
// the router while one shard is SIGKILLed mid-run and restarted. The
// router must absorb the outage — every response during it is either
// still correct or a documented degraded partial (a subset of the
// healthy answer). There is no blast window: a transport error or 5xx
// anywhere in the run is a failure.
func TestRouterChaosEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run takes several seconds")
	}
	docs, _ := GenCorpus(23, 400, 60)
	idx, vocab := buildTestIndex(t, 23, 400, 60)
	w, err := BuildWorkload(idx, vocab, 256, 9, DefaultMix())
	if err != nil {
		t.Fatal(err)
	}

	rig, err := NewRouterRig(t.TempDir(), docs, "Roaring", 4, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := rig.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer rig.Stop()

	const duration = 4 * time.Second
	win := NewWindows()
	chaosDone := make(chan []Event, 1)
	go func() {
		events, cerr := RunRouterChaos(ctx, RouterChaosConfig{Duration: duration}, rig, win)
		if cerr != nil {
			t.Errorf("router chaos: %v", cerr)
		}
		chaosDone <- events
	}()

	rep, err := Run(ctx, w, Options{
		BaseURL:  rig.BaseURL(),
		Rate:     120,
		Duration: duration,
		Seed:     31,
	}, win)
	if err != nil {
		t.Fatal(err)
	}
	rep.Events = <-chaosDone

	names := map[string]bool{}
	for _, e := range rep.Events {
		names[e.Name] = true
		if e.Err != "" {
			t.Errorf("chaos step %s failed: %s", e.Name, e.Err)
		}
	}
	for _, want := range []string{"shard-kill", "shard-restart"} {
		if !names[want] {
			t.Errorf("chaos step %s never ran (events: %v)", want, names)
		}
	}

	// The no-blast contract: nothing incorrect, nothing unexplained,
	// no transport errors or 5xx at all — the router answered 200
	// through the whole outage.
	for _, c := range []Class{ClassIncorrect, ClassError, ClassBlast, ClassShed} {
		if n := rep.Classes[c.String()]; n != 0 {
			t.Errorf("%d %s responses; failures: %+v", n, c, rep.Failures)
		}
	}
	if rep.FiveXXOnHealthy != 0 {
		t.Errorf("%d 5xx during the run", rep.FiveXXOnHealthy)
	}
	// The outage was observable: some answers lost the dead shard's
	// documents and classified as degraded partials.
	if n := rep.Classes[ClassDegradedPartial.String()]; n == 0 {
		t.Errorf("no degraded partials observed; classes %v", rep.Classes)
	}
	if n := rep.Classes[ClassCorrect.String()]; n < rep.Requests/2 {
		t.Errorf("only %d/%d correct responses", n, rep.Requests)
	}

	// Exactly one degraded window, zero blast windows, all closed.
	kinds := map[string]int{}
	for _, wr := range rep.Windows {
		kinds[wr.Kind]++
		if wr.End.IsZero() {
			t.Errorf("window %s/%s never closed", wr.Kind, wr.Label)
		}
	}
	if kinds["degraded"] != 1 || kinds["blast"] != 0 {
		t.Errorf("windows = %v, want exactly one degraded and no blast", kinds)
	}
}
