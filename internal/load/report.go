package load

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/hist"
)

// Report is the machine-readable outcome of a load run, written as
// results/LOAD_*.json. Latency summaries are nanoseconds; Steady
// excludes requests overlapping blast windows and is what the SLO
// gates judge.
type Report struct {
	Target     string    `json:"target"`
	Seed       int64     `json:"seed"`
	RateQPS    float64   `json:"rateQPS"`
	DurationNs int64     `json:"durationNs"`
	Started    time.Time `json:"started"`
	Finished   time.Time `json:"finished"`

	Requests        int64            `json:"requests"`
	Classes         map[string]int64 `json:"classes"`
	Statuses        map[string]int64 `json:"statuses"`
	FiveXXOnHealthy int64            `json:"fiveXXOnHealthy"`

	Overall hist.Summary `json:"overall"`
	Steady  hist.Summary `json:"steady"`

	Windows  []WindowRecord `json:"windows,omitempty"`
	Events   []Event        `json:"events,omitempty"`
	Failures []Failure      `json:"failures,omitempty"`

	Gates GateReport `json:"gates"`
	Pass  bool       `json:"pass"`
}

// Gates are the SLO thresholds a run must meet. Zero-valued latency
// gates are skipped; the correctness gates (MaxIncorrect,
// Max5xxOnHealthy, MaxErrorRate) always apply — an incorrect answer
// is never acceptable, so their useful values are the zero values.
type Gates struct {
	MaxP50  time.Duration `json:"maxP50Ns,omitempty"`
	MaxP99  time.Duration `json:"maxP99Ns,omitempty"`
	MaxP999 time.Duration `json:"maxP999Ns,omitempty"`

	// MaxErrorRate bounds unclassified errors as a fraction of all
	// requests (e.g. 0.001).
	MaxErrorRate float64 `json:"maxErrorRate"`
	// MaxIncorrect bounds provably wrong answers. Keep it 0.
	MaxIncorrect int64 `json:"maxIncorrect"`
	// Max5xxOnHealthy bounds 5xx responses outside blast windows.
	// Keep it 0.
	Max5xxOnHealthy int64 `json:"max5xxOnHealthy"`
	// MinRequests guards against a vacuous pass: a run that issued
	// fewer requests than this fails outright.
	MinRequests int64 `json:"minRequests"`
}

// GateReport records each gate's verdict.
type GateReport struct {
	Gates      Gates    `json:"gates"`
	Violations []string `json:"violations,omitempty"`
	Pass       bool     `json:"pass"`
}

// Evaluate applies the gates to the report, filling rep.Gates and
// rep.Pass. Chaos assertion failures recorded as error events also
// fail the run.
func (rep *Report) Evaluate(g Gates) {
	var v []string
	check := func(name string, limit time.Duration, gotNs int64) {
		if limit > 0 && gotNs > int64(limit) {
			v = append(v, fmt.Sprintf("%s %s exceeds SLO %s", name, time.Duration(gotNs), limit))
		}
	}
	check("steady p50", g.MaxP50, rep.Steady.P50Ns)
	check("steady p99", g.MaxP99, rep.Steady.P99Ns)
	check("steady p999", g.MaxP999, rep.Steady.P999Ns)

	if n := rep.Classes[ClassIncorrect.String()]; n > g.MaxIncorrect {
		v = append(v, fmt.Sprintf("%d incorrect responses (max %d)", n, g.MaxIncorrect))
	}
	if rep.FiveXXOnHealthy > g.Max5xxOnHealthy {
		v = append(v, fmt.Sprintf("%d 5xx responses outside blast windows (max %d)", rep.FiveXXOnHealthy, g.Max5xxOnHealthy))
	}
	if errs := rep.Classes[ClassError.String()]; rep.Requests > 0 {
		rate := float64(errs) / float64(rep.Requests)
		if rate > g.MaxErrorRate {
			v = append(v, fmt.Sprintf("error rate %.4f (%d/%d) exceeds %.4f", rate, errs, rep.Requests, g.MaxErrorRate))
		}
	}
	if g.MinRequests > 0 && rep.Requests < g.MinRequests {
		v = append(v, fmt.Sprintf("only %d requests issued (min %d)", rep.Requests, g.MinRequests))
	}
	for _, e := range rep.Events {
		if e.Err != "" {
			v = append(v, fmt.Sprintf("chaos step %q failed: %s", e.Name, e.Err))
		}
	}
	rep.Gates = GateReport{Gates: g, Violations: v, Pass: len(v) == 0}
	rep.Pass = rep.Gates.Pass
}

// WriteFile writes the report as indented JSON, creating parent
// directories as needed.
func (rep *Report) WriteFile(path string) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("load: marshal report: %w", err)
	}
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("load: %w", err)
		}
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("load: write report: %w", err)
	}
	return nil
}
