// Package load is the production load harness: a coordinated-omission-
// safe open-loop generator that replays zipfian mixed traffic (point
// lookups, AND/OR boolean plans, top-k) against a live bvserve,
// measures latency with HDR-style histograms, classifies every
// response against precomputed expected results, and enforces SLO
// gates. A chaos orchestrator (chaos.go) runs concurrently with the
// load: hot reloads, live index corruption forcing degraded-mode
// transitions, and kill/restart of the server — asserting that every
// response during the storm is either correct, a clean shed, or a
// documented degraded-mode partial, and that latency SLOs hold outside
// the declared blast windows.
package load

import (
	"fmt"
	"math/rand"
)

// GenCorpus synthesizes a deterministic document collection: ndocs
// documents of 4–15 words drawn zipfian from a vocab-term dictionary,
// so term document frequencies are realistically skewed (a few hot
// terms, a long sparse tail). It returns the documents and the
// vocabulary; the same (seed, ndocs, vocab) always yields the same
// corpus, which is how bvload's in-process oracle and the served index
// are guaranteed to agree.
func GenCorpus(seed int64, ndocs, vocab int) (docs, terms []string) {
	if ndocs < 1 || vocab < 2 {
		panic(fmt.Sprintf("load: GenCorpus(%d docs, %d vocab): need >=1 docs, >=2 vocab", ndocs, vocab))
	}
	rng := rand.New(rand.NewSource(seed))
	terms = make([]string, vocab)
	for i := range terms {
		terms[i] = fmt.Sprintf("t%04d", i)
	}
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(vocab-1))
	docs = make([]string, ndocs)
	var b []byte
	for d := range docs {
		b = b[:0]
		words := 4 + rng.Intn(12)
		for w := 0; w < words; w++ {
			if w > 0 {
				b = append(b, ' ')
			}
			b = append(b, terms[zipf.Uint64()]...)
		}
		docs[d] = string(b)
	}
	return docs, terms
}
