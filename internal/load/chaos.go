package load

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"
)

// Controller is the handle the chaos orchestrator uses to brutalize a
// serving process. Two implementations exist: ProcServer drives a real
// bvserve subprocess (SIGHUP, SIGKILL, exec restart) and LocalServer
// drives an in-process internal/server instance for tests.
type Controller interface {
	// Start launches the server and blocks until it answers /readyz.
	Start(ctx context.Context) error
	// BaseURL is the server's root URL; stable across Kill/Restart.
	BaseURL() string
	// SignalReload triggers the signal-driven hot-reload path (SIGHUP
	// for a subprocess). The swap itself is asynchronous; observe it
	// through /stats reloads.
	SignalReload() error
	// Kill terminates the server abruptly, mid-flight requests and
	// all.
	Kill() error
	// Restart launches the server again on the same address and
	// blocks until ready.
	Restart(ctx context.Context) error
	// Corrupt deterministically corrupts the served index file on
	// disk (the next reload picks it up).
	Corrupt(seed int64) error
	// Restore republishes the pristine index file.
	Restore() error
	// Stop shuts the server down cleanly at the end of the run.
	Stop() error
}

// Event is one chaos-timeline entry for the report. Err is non-empty
// when the step's assertion failed, which fails the run's gates.
type Event struct {
	At     time.Time `json:"at"`
	Name   string    `json:"name"`
	Detail string    `json:"detail,omitempty"`
	Err    string    `json:"err,omitempty"`
}

// ChaosConfig tunes the storm RunChaos fires while load runs.
type ChaosConfig struct {
	// Duration is the load run length the schedule is planned within;
	// every step lands inside [0.1, 0.85] of it.
	Duration time.Duration
	// CorruptSeed drives the deterministic index corruption.
	CorruptSeed int64
	// ReadyTimeout bounds each post-step verification poll (default
	// 5s).
	ReadyTimeout time.Duration
}

// RunChaos executes the storm against ctrl while a load run is in
// flight, declaring windows on win as it goes:
//
//	~12% — hot reload via signal        (no amnesty: reloads must be invisible)
//	~24% — hot reload via POST /reload  (no amnesty)
//	~36% — hot reload via signal        (no amnesty)
//	~46% — corrupt index + reload       (degraded window opens; /healthz must report degraded)
//	~60% — restore index + reload       (degraded window closes; /healthz must recover)
//	~74% — SIGKILL + restart            (blast window: errors amnestied until ready again)
//
// Every step verifies its observable effect and records an Event; a
// failed verification is an Event with Err set, which Evaluate turns
// into a gate violation. RunChaos returns the event log and the first
// hard error (nil when the storm completed, even with failed
// assertions — those live in the events).
func RunChaos(ctx context.Context, cfg ChaosConfig, ctrl Controller, win *Windows) ([]Event, error) {
	if cfg.ReadyTimeout <= 0 {
		cfg.ReadyTimeout = 5 * time.Second
	}
	start := time.Now()
	var events []Event
	record := func(name, detail string, err error) {
		e := Event{At: time.Now(), Name: name, Detail: detail}
		if err != nil {
			e.Err = err.Error()
		}
		events = append(events, e)
	}
	at := func(frac float64) bool { // sleep until start + frac*Duration
		d := time.Until(start.Add(time.Duration(frac * float64(cfg.Duration))))
		if d <= 0 {
			return ctx.Err() == nil
		}
		select {
		case <-ctx.Done():
			return false
		case <-time.After(d):
			return true
		}
	}
	base := ctrl.BaseURL()

	// Three hot reloads with no amnesty window: the PR-1 guarantee is
	// that a reload never drops or slows traffic, so the SLO histogram
	// keeps running right through them.
	if !at(0.12) {
		return events, ctx.Err()
	}
	record("reload-signal-1", "", verifyReloadBumps(ctx, base, cfg.ReadyTimeout, ctrl.SignalReload))
	if !at(0.24) {
		return events, ctx.Err()
	}
	record("reload-http", "", httpReload(ctx, base, cfg.ReadyTimeout))
	if !at(0.36) {
		return events, ctx.Err()
	}
	record("reload-signal-2", "", verifyReloadBumps(ctx, base, cfg.ReadyTimeout, ctrl.SignalReload))

	// Corruption-induced degraded transition: corrupt the published
	// index file, reload, and require /healthz to report degraded.
	// Partial answers get amnesty inside the window; latency does not.
	if !at(0.46) {
		return events, ctx.Err()
	}
	closeDegraded := win.OpenDegraded("corrupt-reload")
	err := ctrl.Corrupt(cfg.CorruptSeed)
	if err == nil {
		err = httpReload(ctx, base, cfg.ReadyTimeout)
	}
	if err == nil {
		err = pollHealth(ctx, base, cfg.ReadyTimeout, "degraded")
	}
	record("corrupt-degrade", fmt.Sprintf("seed %d", cfg.CorruptSeed), err)

	// Restore + reload: back to a fully verified index.
	if !at(0.60) {
		closeDegraded()
		return events, ctx.Err()
	}
	err = ctrl.Restore()
	if err == nil {
		err = httpReload(ctx, base, cfg.ReadyTimeout)
	}
	if err == nil {
		err = pollHealth(ctx, base, cfg.ReadyTimeout, "ok")
	}
	closeDegraded()
	record("restore-recover", "", err)

	// Kill/restart: the one step that legitimately produces transport
	// errors, so it runs inside a declared blast window.
	if !at(0.74) {
		return events, ctx.Err()
	}
	closeBlast := win.OpenBlast("kill-restart")
	err = ctrl.Kill()
	if err == nil {
		// Let the outage be observable: a few scheduled requests must
		// land while the process is down.
		select {
		case <-ctx.Done():
		case <-time.After(300 * time.Millisecond):
		}
		err = ctrl.Restart(ctx)
	}
	if err == nil {
		err = pollReady(ctx, base, cfg.ReadyTimeout)
	}
	closeBlast()
	record("kill-restart", "", err)

	return events, nil
}

// chaosClient is the orchestrator's own control-plane client, separate
// from the load traffic.
var chaosClient = &http.Client{Timeout: 3 * time.Second}

func getJSON(ctx context.Context, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := chaosClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// httpReload POSTs /reload and requires success.
func httpReload(ctx context.Context, base string, timeout time.Duration) error {
	rctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, base+"/reload", nil)
	if err != nil {
		return err
	}
	resp, err := chaosClient.Do(req)
	if err != nil {
		return fmt.Errorf("POST /reload: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST /reload: status %d", resp.StatusCode)
	}
	return nil
}

// reloadCount reads the hot-swap counter and the snapshot generation
// from /stats.
func reloadCount(ctx context.Context, base string) (reloads, generation int64, err error) {
	var stats struct {
		Reloads    int64 `json:"reloads"`
		Generation int64 `json:"generation"`
	}
	if err := getJSON(ctx, base+"/stats", &stats); err != nil {
		return 0, 0, err
	}
	return stats.Reloads, stats.Generation, nil
}

// verifyReloadBumps fires the asynchronous signal reload and polls
// /stats until the reload counter increments. It also asserts the
// snapshot generation: /stats must name WHICH index version is
// answering, and the invariant generation == reloads + 1 (boot
// generation 1, +1 per successful swap) must hold before and after —
// that is what lets this harness attribute any response during a
// reload storm to a specific index version.
func verifyReloadBumps(ctx context.Context, base string, timeout time.Duration, fire func() error) error {
	before, gen, err := reloadCount(ctx, base)
	if err != nil {
		return fmt.Errorf("reading /stats before signal reload: %w", err)
	}
	if gen != before+1 {
		return fmt.Errorf("/stats generation %d inconsistent with %d reloads (want generation == reloads+1)", gen, before)
	}
	if err := fire(); err != nil {
		return fmt.Errorf("firing signal reload: %w", err)
	}
	deadline := time.Now().Add(timeout)
	for {
		after, gen, err := reloadCount(ctx, base)
		if err == nil && after > before {
			if gen != after+1 {
				return fmt.Errorf("/stats generation %d inconsistent with %d reloads after swap (want generation == reloads+1)", gen, after)
			}
			return nil
		}
		if time.Now().After(deadline) {
			if err == nil {
				err = fmt.Errorf("reload counter stuck at %d", after)
			}
			return fmt.Errorf("signal reload not observed within %s: %w", timeout, err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// pollHealth polls /healthz until it reports the wanted status.
func pollHealth(ctx context.Context, base string, timeout time.Duration, want string) error {
	deadline := time.Now().Add(timeout)
	var last string
	for {
		var h struct {
			Status string `json:"status"`
		}
		err := getJSON(ctx, base+"/healthz", &h)
		if err == nil {
			if h.Status == want {
				return nil
			}
			last = h.Status
		} else {
			last = err.Error()
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("/healthz did not report %q within %s (last: %s)", want, timeout, last)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// pollReady polls /readyz until the server accepts traffic.
func pollReady(ctx context.Context, base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var last string
	for {
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet, base+"/readyz", nil)
		resp, err := chaosClient.Do(req)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			last = fmt.Sprintf("status %d", resp.StatusCode)
		} else {
			last = err.Error()
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("/readyz not ready within %s (last: %s)", timeout, last)
		}
		select {
		case <-ctx.Done():
			if errors.Is(ctx.Err(), context.Canceled) && strings.Contains(last, "refused") {
				return fmt.Errorf("/readyz never came back: %s", last)
			}
			return ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
}
