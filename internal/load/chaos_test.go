package load

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/codecs"
	"repro/internal/index"
)

// TestChaosEndToEnd is the full pipeline in miniature: generate a
// corpus, build and persist a BVIX3 index, serve it in-process, and
// run the load generator while the chaos orchestrator hot-reloads,
// corrupts, restores, and kill-restarts the server underneath it.
// Zero incorrect responses and zero unclassified errors are required;
// the corruption step must produce an observable degraded transition.
func TestChaosEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run takes several seconds")
	}
	dir := t.TempDir()
	idxPath := filepath.Join(dir, "chaos.bvix")

	docs, vocab := GenCorpus(42, 400, 60)
	codec, err := codecs.ByName("Roaring")
	if err != nil {
		t.Fatal(err)
	}
	b := index.NewBuilder(codec)
	for _, d := range docs {
		b.AddDocument(d)
	}
	idx, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.WriteFile(idxPath, index.FormatBVIX3); err != nil {
		t.Fatal(err)
	}

	w, err := BuildWorkload(idx, vocab, 256, 7, DefaultMix())
	if err != nil {
		t.Fatal(err)
	}

	ctrl, err := NewLocalServer(idxPath, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := ctrl.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer ctrl.Stop()

	const duration = 5 * time.Second
	win := NewWindows()
	chaosDone := make(chan []Event, 1)
	go func() {
		events, cerr := RunChaos(ctx, ChaosConfig{
			Duration:    duration,
			CorruptSeed: 1234,
		}, ctrl, win)
		if cerr != nil {
			t.Errorf("chaos orchestrator: %v", cerr)
		}
		chaosDone <- events
	}()

	rep, err := Run(ctx, w, Options{
		BaseURL:  ctrl.BaseURL(),
		Rate:     120,
		Duration: duration,
		Seed:     99,
	}, win)
	if err != nil {
		t.Fatal(err)
	}
	rep.Events = <-chaosDone

	// Every chaos step must have verified its observable effect.
	names := map[string]bool{}
	for _, e := range rep.Events {
		names[e.Name] = true
		if e.Err != "" {
			t.Errorf("chaos step %s failed: %s", e.Name, e.Err)
		}
	}
	for _, want := range []string{
		"reload-signal-1", "reload-http", "reload-signal-2",
		"corrupt-degrade", "restore-recover", "kill-restart",
	} {
		if !names[want] {
			t.Errorf("chaos step %s never ran (events: %v)", want, names)
		}
	}

	// Correctness: nothing wrong, nothing unexplained.
	if n := rep.Classes[ClassIncorrect.String()]; n != 0 {
		t.Errorf("%d incorrect responses; failures: %+v", n, rep.Failures)
	}
	if n := rep.Classes[ClassError.String()]; n != 0 {
		t.Errorf("%d unclassified errors; failures: %+v", n, rep.Failures)
	}
	if rep.FiveXXOnHealthy != 0 {
		t.Errorf("%d 5xx outside blast windows", rep.FiveXXOnHealthy)
	}
	if n := rep.Classes[ClassCorrect.String()]; n < rep.Requests/2 {
		t.Errorf("only %d/%d correct responses", n, rep.Requests)
	}

	// The declared windows made it into the report.
	kinds := map[string]int{}
	for _, wr := range rep.Windows {
		kinds[wr.Kind]++
		if wr.End.IsZero() {
			t.Errorf("window %s/%s left open", wr.Kind, wr.Label)
		}
	}
	if kinds["degraded"] != 1 || kinds["blast"] != 1 {
		t.Errorf("windows = %+v", rep.Windows)
	}

	rep.Evaluate(Gates{MaxErrorRate: 0, MinRequests: 200})
	if !rep.Pass {
		t.Errorf("gates failed: %v", rep.Gates.Violations)
	}

	// The report serializes.
	out := filepath.Join(dir, "LOAD_test.json")
	if err := rep.WriteFile(out); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(out); err != nil || fi.Size() == 0 {
		t.Fatalf("report file: %v", err)
	}
}
