package load

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/hist"
	"repro/internal/index"
)

func TestWindowsOverlap(t *testing.T) {
	w := &Windows{Pad: 10 * time.Millisecond}
	t0 := time.Now()

	closeBlast := w.OpenBlast("kill")
	// While the window is open-ended, everything after its start is in.
	if !w.InBlast(t0.Add(time.Hour), t0.Add(time.Hour)) {
		t.Error("open-ended blast window should cover the future")
	}
	closeBlast()
	closeBlast() // idempotent

	recs := w.Records()
	if len(recs) != 1 || recs[0].Kind != "blast" || recs[0].Label != "kill" {
		t.Fatalf("records = %+v", recs)
	}
	end := recs[0].End
	if end.IsZero() {
		t.Fatal("closed window has zero End")
	}
	// Within the pad after close: still in.
	if !w.InBlast(end.Add(5*time.Millisecond), end.Add(6*time.Millisecond)) {
		t.Error("pad after close not honored")
	}
	// Beyond the pad: out.
	if w.InBlast(end.Add(20*time.Millisecond), end.Add(30*time.Millisecond)) {
		t.Error("request after pad should be outside")
	}
	// Entirely before the window (minus pad): out.
	if w.InBlast(t0.Add(-time.Hour), t0.Add(-time.Hour)) {
		t.Error("request long before window should be outside")
	}
	// A span straddling the window start: in.
	if !w.InBlast(t0.Add(-time.Hour), end) {
		t.Error("straddling span should be inside")
	}
	// Kinds don't bleed into each other.
	if w.InDegraded(recs[0].Start, end) {
		t.Error("blast window matched a degraded query")
	}
}

func TestEvaluateGates(t *testing.T) {
	rep := &Report{
		Requests: 1000,
		Classes: map[string]int64{
			ClassCorrect.String():   990,
			ClassError.String():     5,
			ClassIncorrect.String(): 2,
		},
		FiveXXOnHealthy: 1,
		Steady: hist.Summary{
			P50Ns:  int64(2 * time.Millisecond),
			P99Ns:  int64(40 * time.Millisecond),
			P999Ns: int64(90 * time.Millisecond),
		},
		Events: []Event{
			{Name: "reload-signal-1"},
			{Name: "kill-restart", Err: "never came back"},
		},
	}
	rep.Evaluate(Gates{
		MaxP99:       20 * time.Millisecond, // violated: 40ms
		MaxErrorRate: 0.001,                 // violated: 5/1000
		MinRequests:  2000,                  // violated
	})
	if rep.Pass {
		t.Fatal("report with violations passed")
	}
	want := []string{"p99", "incorrect", "5xx", "error rate", "requests issued", "kill-restart"}
	joined := strings.Join(rep.Gates.Violations, "\n")
	for _, w := range want {
		if !strings.Contains(joined, w) {
			t.Errorf("violations missing %q:\n%s", w, joined)
		}
	}
	if len(rep.Gates.Violations) != 6 {
		t.Errorf("expected 6 violations, got %d:\n%s", len(rep.Gates.Violations), joined)
	}

	// A clean report with only skippable gates passes.
	clean := &Report{
		Requests: 1000,
		Classes:  map[string]int64{ClassCorrect.String(): 995, ClassShed.String(): 5},
		Steady:   hist.Summary{P99Ns: int64(5 * time.Millisecond)},
	}
	clean.Evaluate(Gates{MaxP99: 20 * time.Millisecond, MinRequests: 100})
	if !clean.Pass {
		t.Fatalf("clean report failed: %v", clean.Gates.Violations)
	}
}

// serveWorkload answers /search the way bvserve does, computing results
// from idx, with an optional mangle hook to corrupt responses.
func serveWorkload(idx *index.Index, mangle func(mode string, docs []uint32) []uint32) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mode := r.URL.Query().Get("mode")
		terms := strings.Fields(r.URL.Query().Get("q"))
		var body struct {
			Docs   []uint32       `json:"docs,omitempty"`
			Ranked []index.Result `json:"ranked,omitempty"`
		}
		switch mode {
		case "and":
			body.Docs, _ = idx.Conjunctive(terms...)
		case "or":
			body.Docs, _ = idx.Disjunctive(terms...)
		case "topk":
			k, _ := strconv.Atoi(r.URL.Query().Get("k"))
			body.Ranked, _ = idx.TopK(k, terms...)
		default:
			http.Error(w, "bad mode", http.StatusBadRequest)
			return
		}
		if mangle != nil {
			if mode == "topk" {
				docs := make([]uint32, len(body.Ranked))
				for i, r := range body.Ranked {
					docs[i] = r.Doc
				}
				docs = mangle(mode, docs)
				body.Ranked = body.Ranked[:0]
				for _, d := range docs {
					body.Ranked = append(body.Ranked, index.Result{Doc: d})
				}
			} else {
				body.Docs = mangle(mode, body.Docs)
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(body)
	})
}

func TestRunAllCorrect(t *testing.T) {
	idx, vocab := buildTestIndex(t, 5, 100, 25)
	w, err := BuildWorkload(idx, vocab, 64, 9, DefaultMix())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serveWorkload(idx, nil))
	defer ts.Close()

	rep, err := Run(context.Background(), w, Options{
		BaseURL:  ts.URL,
		Rate:     400,
		Duration: 500 * time.Millisecond,
		Seed:     1,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests < 100 {
		t.Fatalf("only %d requests issued", rep.Requests)
	}
	if got := rep.Classes[ClassCorrect.String()]; got != rep.Requests {
		t.Fatalf("correct=%d of %d; classes=%v failures=%+v",
			got, rep.Requests, rep.Classes, rep.Failures)
	}
	if rep.Overall.Count != rep.Requests || rep.Steady.Count != rep.Requests {
		t.Fatalf("histogram counts %d/%d != %d requests",
			rep.Overall.Count, rep.Steady.Count, rep.Requests)
	}
	rep.Evaluate(Gates{MaxP99: 5 * time.Second, MinRequests: 100})
	if !rep.Pass {
		t.Fatalf("gates failed: %v", rep.Gates.Violations)
	}
}

func TestRunDetectsWrongAnswers(t *testing.T) {
	idx, vocab := buildTestIndex(t, 5, 100, 25)
	w, err := BuildWorkload(idx, vocab, 32, 9, Mix{Or: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Drop the last doc from every non-empty result: a subset, so a
	// degraded window would forgive it — but with no window declared it
	// must classify as incorrect.
	ts := httptest.NewServer(serveWorkload(idx, func(mode string, docs []uint32) []uint32 {
		if len(docs) > 0 {
			return docs[:len(docs)-1]
		}
		return docs
	}))
	defer ts.Close()

	rep, err := Run(context.Background(), w, Options{
		BaseURL:  ts.URL,
		Rate:     300,
		Duration: 300 * time.Millisecond,
		Seed:     2,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Classes[ClassIncorrect.String()] == 0 {
		t.Fatalf("mangled responses not flagged: %v", rep.Classes)
	}
	if len(rep.Failures) == 0 {
		t.Fatal("no failure samples recorded")
	}
	rep.Evaluate(Gates{})
	if rep.Pass {
		t.Fatal("gates passed despite incorrect responses")
	}

	// The same subset answers inside a declared degraded window are
	// amnestied as degraded partials.
	win := NewWindows()
	win.OpenDegraded("test")
	rep2, err := Run(context.Background(), w, Options{
		BaseURL:  ts.URL,
		Rate:     300,
		Duration: 300 * time.Millisecond,
		Seed:     2,
	}, win)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Classes[ClassIncorrect.String()] != 0 {
		t.Fatalf("subset answers inside degraded window flagged incorrect: %v failures=%+v",
			rep2.Classes, rep2.Failures)
	}
	if rep2.Classes[ClassDegradedPartial.String()] == 0 {
		t.Fatalf("no degraded partials observed: %v", rep2.Classes)
	}
}

func TestRunClassifiesShedAndErrors(t *testing.T) {
	idx, vocab := buildTestIndex(t, 5, 60, 20)
	w, err := BuildWorkload(idx, vocab, 16, 9, Mix{And: 1})
	if err != nil {
		t.Fatal(err)
	}
	var n atomic.Int64
	mux := http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		switch n.Add(1) % 3 {
		case 0: // clean shed
			rw.Header().Set("Retry-After", "1")
			rw.WriteHeader(http.StatusTooManyRequests)
		case 1: // dirty shed: no Retry-After → unclassified error
			rw.WriteHeader(http.StatusServiceUnavailable)
		default: // healthy 5xx → unclassified error + fiveXXOnHealthy
			rw.WriteHeader(http.StatusInternalServerError)
		}
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	rep, err := Run(context.Background(), w, Options{
		BaseURL:  ts.URL,
		Rate:     200,
		Duration: 300 * time.Millisecond,
		Seed:     3,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Classes[ClassShed.String()] == 0 {
		t.Fatalf("no sheds classified: %v", rep.Classes)
	}
	if rep.Classes[ClassError.String()] == 0 {
		t.Fatalf("dirty sheds/5xx not flagged as errors: %v", rep.Classes)
	}
	if rep.FiveXXOnHealthy == 0 {
		t.Fatal("5xx on healthy server not counted")
	}
	rep.Evaluate(Gates{})
	if rep.Pass {
		t.Fatal("gates passed despite 5xx and unclassified errors")
	}
}
