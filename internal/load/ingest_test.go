package load

import (
	"context"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// buildBvserve compiles the real server binary for subprocess chaos.
func buildBvserve(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "bvserve")
	out, err := exec.Command("go", "build", "-o", bin, "repro/cmd/bvserve").CombinedOutput()
	if err != nil {
		t.Fatalf("building bvserve: %v\n%s", err, out)
	}
	return bin
}

// TestIngestChaosEndToEnd runs the full live-ingestion storm against a
// real bvserve -live subprocess: sentinel-tagged ingests and deletes,
// two SIGKILLs mid-ingest with restarts over the same directory, and
// the exhaustive final sweep. The run must pass — zero lost acked
// writes, zero resurrected deletes, zero incorrect responses.
func TestIngestChaosEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("ingest storm builds a binary and runs several seconds")
	}
	bin := buildBvserve(t)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	rep, err := RunIngestChaos(ctx, IngestChaosConfig{
		Bin:      bin,
		Dir:      filepath.Join(t.TempDir(), "live"),
		Duration: 6 * time.Second,
		Rate:     80,
		Seed:     11,
		SealDocs: 40, // force seals (and likely a compaction) during the storm
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("ingest storm failed gates: %v", rep.Violations)
	}
	if rep.Kills != 2 {
		t.Fatalf("kills = %d, want 2", rep.Kills)
	}
	if rep.AckedAdds < 20 {
		t.Fatalf("only %d acked ingests; storm was vacuous", rep.AckedAdds)
	}
	if rep.AckedDeletes == 0 {
		t.Fatal("storm acked no deletes")
	}
	if rep.Verifies == 0 {
		t.Fatal("storm ran no mid-run verifies")
	}
	// Every acked add ends in exactly one of acked/deleted/limbo-delete,
	// and every limbo add is swept by sentinel, so the sweep visits
	// AckedAdds + LimboAdds sentinels.
	if rep.FinalSweepDocs != int(rep.AckedAdds)+int(rep.LimboAdds) {
		t.Fatalf("final sweep checked %d sentinels, want %d",
			rep.FinalSweepDocs, rep.AckedAdds+rep.LimboAdds)
	}
	if len(rep.LostAcked) != 0 || len(rep.Resurrected) != 0 || len(rep.Incorrect) != 0 {
		t.Fatalf("violations: lost=%v resurrected=%v incorrect=%v",
			rep.LostAcked, rep.Resurrected, rep.Incorrect)
	}
}
