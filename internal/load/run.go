package load

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hist"
)

// Class is the verdict on one response.
type Class int

const (
	// ClassCorrect: the response matched the precomputed ground truth
	// exactly.
	ClassCorrect Class = iota
	// ClassShed: a clean 429/503 carrying Retry-After — the documented
	// overload answer.
	ClassShed
	// ClassDegradedPartial: a subset answer inside a declared degraded
	// window — the documented salvage-mode answer.
	ClassDegradedPartial
	// ClassBlast: a transport error or 5xx inside a declared blast
	// window (the server was being killed/restarted).
	ClassBlast
	// ClassIncorrect: a well-formed 200 whose payload contradicts the
	// ground truth on a healthy server. Always a correctness bug.
	ClassIncorrect
	// ClassError: everything unclassified — transport errors and 5xx
	// outside blast windows, 429/503 without Retry-After, unparseable
	// bodies.
	ClassError
)

var classNames = [...]string{"correct", "shed", "degradedPartial", "blast", "incorrect", "error"}

func (c Class) String() string { return classNames[c] }

// Options tunes a load run.
type Options struct {
	BaseURL     string        // target server, e.g. http://127.0.0.1:8080
	Rate        float64       // offered load, queries/second (open loop)
	Duration    time.Duration // wall-clock run length
	Timeout     time.Duration // per-request client budget (default 2s)
	MaxInFlight int           // client-side connection cap (default 512)
	Seed        int64         // query replay order
}

func (o Options) withDefaults() Options {
	if o.Timeout <= 0 {
		o.Timeout = 2 * time.Second
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 512
	}
	if o.Rate <= 0 {
		o.Rate = 100
	}
	if o.Duration <= 0 {
		o.Duration = 10 * time.Second
	}
	return o
}

// collector accumulates per-request outcomes with atomics so the
// request goroutines never serialize.
type collector struct {
	classes  [len(classNames)]atomic.Int64
	statuses [6]atomic.Int64
	fiveXX   atomic.Int64 // 5xx outside blast windows
	overall  hist.Histogram
	steady   hist.Histogram // excludes requests overlapping blast windows

	mu       sync.Mutex
	failures []Failure // first few incorrect/unclassified, for the report
}

// Failure is one reportable bad response.
type Failure struct {
	Class  string    `json:"class"`
	Mode   string    `json:"mode,omitempty"`
	Terms  string    `json:"terms,omitempty"`
	Status int       `json:"status,omitempty"`
	Detail string    `json:"detail"`
	At     time.Time `json:"at"`
}

func (c *collector) fail(class Class, q *Query, status int, detail string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.failures) >= 20 {
		return
	}
	f := Failure{Class: class.String(), Status: status, Detail: detail, At: time.Now()}
	if q != nil {
		f.Mode, f.Terms = q.Mode, strings.Join(q.Terms, " ")
	}
	c.failures = append(c.failures, f)
}

// searchBody is the minimal /search response shape the checker needs.
type searchBody struct {
	Docs   []uint32 `json:"docs"`
	Ranked []struct {
		Doc   uint32 `json:"Doc"`
		Score int    `json:"Score"`
	} `json:"ranked"`
}

// Run replays the workload open-loop against opt.BaseURL: request i is
// launched at start + i/rate regardless of how previous requests are
// faring, and every latency is measured from that intended start — the
// coordinated-omission-safe discipline (a stalled server accrues the
// stall in every pending sample instead of silently suppressing
// arrivals). win may be nil when no chaos runs alongside.
//
// Run returns when the schedule is exhausted and all in-flight
// requests have completed, or earlier on ctx cancellation.
func Run(ctx context.Context, w *Workload, opt Options, win *Windows) (*Report, error) {
	opt = opt.withDefaults()
	if len(w.Queries) == 0 {
		return nil, fmt.Errorf("load: empty workload")
	}
	if win == nil {
		win = NewWindows()
	}
	client := &http.Client{
		Timeout: opt.Timeout,
		Transport: &http.Transport{
			MaxIdleConns:        opt.MaxInFlight,
			MaxIdleConnsPerHost: opt.MaxInFlight,
			IdleConnTimeout:     time.Minute,
		},
	}
	defer client.CloseIdleConnections()

	interval := time.Duration(float64(time.Second) / opt.Rate)
	total := int(opt.Duration / interval)
	if total < 1 {
		total = 1
	}
	// Pre-draw the query sequence so workers never contend on the rng.
	rng := rand.New(rand.NewSource(opt.Seed))
	order := make([]int32, total)
	for i := range order {
		order[i] = int32(rng.Intn(len(w.Queries)))
	}

	var (
		col   collector
		wg    sync.WaitGroup
		sem   = make(chan struct{}, opt.MaxInFlight)
		start = time.Now()
	)
	launched := 0
schedule:
	for i := 0; i < total; i++ {
		sched := start.Add(time.Duration(i) * interval)
		if d := time.Until(sched); d > 0 {
			select {
			case <-ctx.Done():
				break schedule
			case <-time.After(d):
			}
		} else if ctx.Err() != nil {
			break schedule
		}
		q := &w.Queries[order[i]]
		launched++
		wg.Add(1)
		go func(q *Query, sched time.Time) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			doOne(client, opt.BaseURL, q, sched, win, &col)
		}(q, sched)
	}
	wg.Wait()
	finished := time.Now()

	rep := &Report{
		Target:          opt.BaseURL,
		Seed:            opt.Seed,
		RateQPS:         opt.Rate,
		DurationNs:      int64(opt.Duration),
		Started:         start,
		Finished:        finished,
		Requests:        int64(launched),
		Classes:         map[string]int64{},
		Statuses:        map[string]int64{},
		Overall:         col.overall.Summarize(),
		Steady:          col.steady.Summarize(),
		Windows:         win.Records(),
		Failures:        col.failures,
		FiveXXOnHealthy: col.fiveXX.Load(),
	}
	for c, name := range classNames {
		if n := col.classes[c].Load(); n > 0 {
			rep.Classes[name] = n
		}
	}
	names := [6]string{"", "1xx", "2xx", "3xx", "4xx", "5xx"}
	for i := 1; i < 6; i++ {
		if n := col.statuses[i].Load(); n > 0 {
			rep.Statuses[names[i]] = n
		}
	}
	return rep, nil
}

// doOne issues one request and classifies the response. Latency runs
// from the scheduled start (open loop), through any client-side queue
// wait, to the last body byte.
func doOne(client *http.Client, base string, q *Query, sched time.Time, win *Windows, col *collector) {
	u := base + "/search?mode=" + q.Mode + "&q=" + url.QueryEscape(strings.Join(q.Terms, " "))
	if q.Mode == "topk" {
		u += "&k=" + strconv.Itoa(q.K)
		if q.Algo != "" {
			u += "&algo=" + q.Algo
		}
	}
	resp, err := client.Get(u)
	var (
		status int
		body   []byte
	)
	if err == nil {
		status = resp.StatusCode
		body, err = io.ReadAll(resp.Body)
		resp.Body.Close()
	}
	end := time.Now()
	lat := end.Sub(sched)
	col.overall.Record(lat)
	inBlast := win.InBlast(sched, end)
	if !inBlast {
		col.steady.Record(lat)
	}

	if err != nil {
		if inBlast {
			col.classes[ClassBlast].Add(1)
		} else {
			col.classes[ClassError].Add(1)
			col.fail(ClassError, q, 0, "transport: "+err.Error())
		}
		return
	}
	if class := status / 100; class >= 1 && class <= 5 {
		col.statuses[class].Add(1)
	}

	switch {
	case status == http.StatusOK:
		col.classify200(q, body, sched, end, win)
	case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
		if resp.Header.Get("Retry-After") != "" {
			col.classes[ClassShed].Add(1)
		} else if inBlast {
			col.classes[ClassBlast].Add(1)
		} else {
			col.classes[ClassError].Add(1)
			col.fail(ClassError, q, status, "shed response without Retry-After")
		}
	case status >= 500:
		if inBlast {
			col.classes[ClassBlast].Add(1)
		} else {
			col.fiveXX.Add(1)
			col.classes[ClassError].Add(1)
			col.fail(ClassError, q, status, "5xx on healthy server: "+truncate(body))
		}
	default:
		if inBlast {
			col.classes[ClassBlast].Add(1)
		} else {
			col.classes[ClassError].Add(1)
			col.fail(ClassError, q, status, "unexpected status: "+truncate(body))
		}
	}
}

// classify200 checks a 200 payload against the query's ground truth.
func (col *collector) classify200(q *Query, body []byte, sched, end time.Time, win *Windows) {
	var sb searchBody
	if err := json.Unmarshal(body, &sb); err != nil {
		col.classes[ClassError].Add(1)
		col.fail(ClassError, q, 200, "unparseable body: "+err.Error())
		return
	}
	got := sb.Docs
	if q.Mode == "topk" {
		got = make([]uint32, len(sb.Ranked))
		for i, r := range sb.Ranked {
			got[i] = r.Doc
		}
	}
	switch {
	case equalU32(got, q.Expected):
		col.classes[ClassCorrect].Add(1)
	case win.InDegraded(sched, end) && q.partialOK(got):
		col.classes[ClassDegradedPartial].Add(1)
	default:
		col.classes[ClassIncorrect].Add(1)
		col.fail(ClassIncorrect, q, 200,
			fmt.Sprintf("got %d docs, expected %d (degradedWindow=%v)", len(got), len(q.Expected), win.InDegraded(sched, end)))
	}
}

func truncate(b []byte) string {
	const n = 160
	if len(b) > n {
		b = b[:n]
	}
	return strings.TrimSpace(string(b))
}
