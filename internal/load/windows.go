package load

import (
	"sync"
	"time"
)

// Windows tracks the chaos timeline's declared amnesty intervals,
// concurrently updated by the orchestrator and consulted by the load
// runner when classifying responses:
//
//   - blast windows (kill/restart): transport errors and 5xx are
//     expected, and latencies are excluded from the steady-state SLO
//     histogram;
//   - degraded windows (corrupt index being served in salvage mode):
//     subset results are acceptable, but latency still counts — a
//     degraded server must stay fast.
//
// A request is "in" a window when its [scheduled, completed] span
// overlaps the window extended by Pad on both sides, so requests in
// flight across a window edge get the benefit of the doubt.
type Windows struct {
	// Pad widens every window on both sides at query time (default
	// 250ms via NewWindows).
	Pad time.Duration

	mu        sync.Mutex
	intervals []WindowRecord
}

// WindowRecord is one declared chaos interval, exported into the load
// report.
type WindowRecord struct {
	Kind  string    `json:"kind"` // "blast" | "degraded"
	Label string    `json:"label"`
	Start time.Time `json:"start"`
	End   time.Time `json:"end"` // zero while still open
}

// NewWindows returns a tracker with the default edge padding.
func NewWindows() *Windows { return &Windows{Pad: 250 * time.Millisecond} }

// open starts a window and returns its closer. The closer is
// idempotent in effect (closing twice keeps the first end time).
func (w *Windows) open(kind, label string) func() {
	w.mu.Lock()
	defer w.mu.Unlock()
	i := len(w.intervals)
	w.intervals = append(w.intervals, WindowRecord{Kind: kind, Label: label, Start: time.Now()})
	return func() {
		w.mu.Lock()
		defer w.mu.Unlock()
		if w.intervals[i].End.IsZero() {
			w.intervals[i].End = time.Now()
		}
	}
}

// OpenBlast declares a blast window (errors expected, latency
// excluded) and returns its closer.
func (w *Windows) OpenBlast(label string) func() { return w.open("blast", label) }

// OpenDegraded declares a degraded window (partial results expected)
// and returns its closer.
func (w *Windows) OpenDegraded(label string) func() { return w.open("degraded", label) }

func (w *Windows) overlaps(kind string, from, to time.Time) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, iv := range w.intervals {
		if iv.Kind != kind {
			continue
		}
		if to.Before(iv.Start.Add(-w.Pad)) {
			continue
		}
		if !iv.End.IsZero() && from.After(iv.End.Add(w.Pad)) {
			continue
		}
		return true
	}
	return false
}

// InBlast reports whether the request span overlaps a blast window.
func (w *Windows) InBlast(from, to time.Time) bool { return w.overlaps("blast", from, to) }

// InDegraded reports whether the request span overlaps a degraded
// window.
func (w *Windows) InDegraded(from, to time.Time) bool { return w.overlaps("degraded", from, to) }

// Records returns the declared windows for the report.
func (w *Windows) Records() []WindowRecord {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]WindowRecord(nil), w.intervals...)
}
