package load

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/codecs"
	"repro/internal/index"
	"repro/internal/shard"
)

// RouterRig stands up the full scale-out serving topology for a load
// run: the corpus doc-partitioned across n shard servers — real
// bvserve subprocesses when a binary is provided (real SIGKILL), else
// in-process servers — fronted by an in-process bvrouter-equivalent
// shard.Server. The load generator points at the router's BaseURL and
// needs no changes: the router's /search response is a superset of
// bvserve's, so the same ground-truth checker applies, and a killed
// shard surfaces as a documented degraded partial, never a blast.
type RouterRig struct {
	Shards int

	ctrls []Controller
	log   *log.Logger

	mu     sync.Mutex
	srv    *shard.Server
	addr   string
	cancel context.CancelFunc
	done   chan error
}

// NewRouterRig partitions docs round-robin across n shards, writes
// each shard's BVIX3 index under dir, and prepares one Controller per
// shard: a ProcServer driving serveBin when it is non-empty, a
// LocalServer otherwise. Call Start to boot the fleet and the router.
func NewRouterRig(dir string, docs []string, codecName string, n int, serveBin string, logger *log.Logger) (*RouterRig, error) {
	parts, err := shard.Partition(docs, n)
	if err != nil {
		return nil, err
	}
	codec, err := codecs.ByName(codecName)
	if err != nil {
		return nil, err
	}
	if logger == nil {
		logger = log.New(logDiscard{}, "", 0)
	}
	rig := &RouterRig{Shards: n, log: logger}
	for s, part := range parts {
		b := index.NewBuilder(codec)
		for _, d := range part {
			b.AddDocument(d)
		}
		idx, err := b.Build()
		if err != nil {
			return nil, fmt.Errorf("load: building shard %d: %w", s, err)
		}
		path := filepath.Join(dir, shard.FileName(s))
		if err := idx.WriteFile(path, index.FormatBVIX3Impacts); err != nil {
			return nil, fmt.Errorf("load: writing shard %d: %w", s, err)
		}
		var ctrl Controller
		if serveBin != "" {
			ctrl, err = NewProcServer(serveBin, path, logger.Writer())
		} else {
			ctrl, err = NewLocalServer(path, logger)
		}
		if err != nil {
			return nil, fmt.Errorf("load: shard %d controller: %w", s, err)
		}
		rig.ctrls = append(rig.ctrls, ctrl)
	}
	return rig, nil
}

// Start boots every shard server, then the router fronting them, and
// blocks until the router answers /readyz.
func (r *RouterRig) Start(ctx context.Context) error {
	for s, ctrl := range r.ctrls {
		if err := ctrl.Start(ctx); err != nil {
			r.stopShards()
			return fmt.Errorf("load: starting shard %d: %w", s, err)
		}
	}
	// One replica per shard: hedging has nowhere else to send the
	// backup, so it stays off — a dead shard is a degraded partial, not
	// a retry.
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16}}
	replicas := make([][]shard.Backend, len(r.ctrls))
	for s, ctrl := range r.ctrls {
		replicas[s] = []shard.Backend{&shard.HTTPBackend{Base: ctrl.BaseURL(), Client: client}}
	}
	router, err := shard.NewRouter(shard.RouterConfig{Hedge: false}, replicas)
	if err != nil {
		r.stopShards()
		return err
	}
	srv := shard.NewServer(router, shard.ServerConfig{Logger: r.log, DrainDeadline: 200 * time.Millisecond})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		r.stopShards()
		return fmt.Errorf("load: router listen: %w", err)
	}
	sctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(sctx, ln) }()
	r.mu.Lock()
	r.srv, r.addr, r.cancel, r.done = srv, ln.Addr().String(), cancel, done
	r.mu.Unlock()
	if err := pollReady(ctx, r.BaseURL(), 10*time.Second); err != nil {
		r.Stop()
		return err
	}
	return nil
}

// BaseURL is the router's root URL — the address the load generator
// targets.
func (r *RouterRig) BaseURL() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return "http://" + r.addr
}

// ShardBaseURL is shard s's own server URL (control-plane probes).
func (r *RouterRig) ShardBaseURL(s int) string { return r.ctrls[s].BaseURL() }

// KillShard terminates shard s abruptly — SIGKILL for a ProcServer.
// The router keeps serving: answers missing that shard's documents are
// marked partial.
func (r *RouterRig) KillShard(s int) error {
	if s < 0 || s >= len(r.ctrls) {
		return fmt.Errorf("load: no shard %d in a %d-shard rig", s, len(r.ctrls))
	}
	return r.ctrls[s].Kill()
}

// RestartShard boots shard s again on its original address and blocks
// until it answers /readyz.
func (r *RouterRig) RestartShard(ctx context.Context, s int) error {
	if s < 0 || s >= len(r.ctrls) {
		return fmt.Errorf("load: no shard %d in a %d-shard rig", s, len(r.ctrls))
	}
	return r.ctrls[s].Restart(ctx)
}

// Stop shuts down the router first (so no query sees shards vanish
// beneath it), then every shard server.
func (r *RouterRig) Stop() error {
	r.mu.Lock()
	cancel, done := r.cancel, r.done
	r.srv, r.cancel, r.done = nil, nil, nil
	r.mu.Unlock()
	if cancel != nil {
		cancel()
		<-done // drain errors are expected on teardown
	}
	r.stopShards()
	return nil
}

func (r *RouterRig) stopShards() {
	for _, ctrl := range r.ctrls {
		ctrl.Stop() // idempotent; a killed shard just reports not-running
	}
}

// RouterChaosConfig tunes the storm RunRouterChaos fires at a
// RouterRig while load runs against the router.
type RouterChaosConfig struct {
	// Duration is the load run length the schedule is planned within.
	Duration time.Duration
	// Victim is the shard to SIGKILL; defaults to the last shard.
	Victim int
	// ReadyTimeout bounds each post-step verification poll (default
	// 5s).
	ReadyTimeout time.Duration
}

// RunRouterChaos executes the scale-out failure drill against rig
// while a load run is in flight:
//
//	~30% — SIGKILL one shard   (degraded window opens; router /healthz must report partial)
//	~70% — restart the shard   (degraded window closes; /healthz must recover to ok)
//
// Unlike the single-server storm, no blast window ever opens: the
// router must absorb the dead shard and keep answering 200 with
// partial:true, so every response during the outage must classify as
// correct or degraded-partial (a subset of the healthy answer) — any
// transport error or 5xx is a gate violation.
func RunRouterChaos(ctx context.Context, cfg RouterChaosConfig, rig *RouterRig, win *Windows) ([]Event, error) {
	if cfg.ReadyTimeout <= 0 {
		cfg.ReadyTimeout = 5 * time.Second
	}
	victim := cfg.Victim
	if victim <= 0 || victim >= rig.Shards {
		victim = rig.Shards - 1
	}
	start := time.Now()
	var events []Event
	record := func(name, detail string, err error) {
		e := Event{At: time.Now(), Name: name, Detail: detail}
		if err != nil {
			e.Err = err.Error()
		}
		events = append(events, e)
	}
	at := func(frac float64) bool {
		d := time.Until(start.Add(time.Duration(frac * float64(cfg.Duration))))
		if d <= 0 {
			return ctx.Err() == nil
		}
		select {
		case <-ctx.Done():
			return false
		case <-time.After(d):
			return true
		}
	}
	base := rig.BaseURL()
	detail := fmt.Sprintf("shard %d of %d", victim, rig.Shards)

	if !at(0.30) {
		return events, ctx.Err()
	}
	closeDegraded := win.OpenDegraded("shard-kill")
	err := rig.KillShard(victim)
	if err == nil {
		err = pollHealth(ctx, base, cfg.ReadyTimeout, "partial")
	}
	record("shard-kill", detail, err)

	if !at(0.70) {
		closeDegraded()
		return events, ctx.Err()
	}
	err = rig.RestartShard(ctx, victim)
	if err == nil {
		err = pollHealth(ctx, base, cfg.ReadyTimeout, "ok")
	}
	closeDegraded()
	record("shard-restart", detail, err)

	return events, nil
}
