package load

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/index"
)

// Mix weights the traffic classes of a workload. Zero-value fields
// drop that class from the mix.
type Mix struct {
	Point int // single-term lookups
	And   int // multi-term conjunctions
	Or    int // multi-term disjunctions
	TopK  int // ranked top-k
}

// DefaultMix is the production-shaped blend: lookup-heavy with a
// ranked tail, mirroring the paper's point/boolean/top-k workload
// split (§A.1).
func DefaultMix() Mix { return Mix{Point: 4, And: 3, Or: 2, TopK: 1} }

func (m Mix) total() int { return m.Point + m.And + m.Or + m.TopK }

// topkAlgos are the algorithm pins a workload rotates its ranked
// queries through ("" lets the server pick automatically).
var topkAlgos = []string{"", "exhaustive", "maxscore", "bmw"}

// Query is one replayable request with its precomputed ground truth.
type Query struct {
	Mode  string   // "and" | "or" | "topk"
	Terms []string // query terms (zipfian-sampled)
	K     int      // topk only
	Algo  string   // topk only: "" | "exhaustive" | "maxscore" | "bmw"

	// Expected is the exact healthy-server answer: the sorted doc list
	// for and/or, the ranked doc sequence (score order) for topk.
	Expected []uint32
	// Candidates, for topk, is the disjunctive match set — top-k is
	// any-term scoring, so this is the superset any degraded-mode
	// ranking must stay inside.
	Candidates []uint32
}

// Workload is a precomputed query set with ground truth, replayed
// round-robin-randomly by the runner.
type Workload struct {
	Queries []Query
}

// BuildWorkload samples n queries from the vocabulary with zipfian
// term popularity — terms ranked by document frequency, rank sampled
// by a Zipf law, so hot terms dominate like production query logs do —
// and computes each query's expected result against idx, which must be
// the exact index the target server serves.
func BuildWorkload(idx *index.Index, vocab []string, n int, seed int64, mix Mix) (*Workload, error) {
	if mix.total() <= 0 {
		mix = DefaultMix()
	}
	if len(vocab) < 2 {
		return nil, fmt.Errorf("load: vocabulary has %d terms, need >= 2", len(vocab))
	}
	// Rank terms by document frequency, most frequent first.
	ranked := append([]string(nil), vocab...)
	sort.SliceStable(ranked, func(i, j int) bool {
		return idx.Postings(ranked[i]).Len() > idx.Postings(ranked[j]).Len()
	})
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.3, 1, uint64(len(ranked)-1))

	pick := func(k int) []string {
		terms := make([]string, 0, k)
		seen := map[string]bool{}
		for len(terms) < k {
			t := ranked[zipf.Uint64()]
			if !seen[t] {
				seen[t] = true
				terms = append(terms, t)
			}
		}
		return terms
	}

	w := &Workload{Queries: make([]Query, 0, n)}
	for i := 0; i < n; i++ {
		var q Query
		switch r := rng.Intn(mix.total()); {
		case r < mix.Point:
			q = Query{Mode: "and", Terms: pick(1)}
		case r < mix.Point+mix.And:
			q = Query{Mode: "and", Terms: pick(2 + rng.Intn(3))}
		case r < mix.Point+mix.And+mix.Or:
			q = Query{Mode: "or", Terms: pick(2 + rng.Intn(3))}
		default:
			// Rotate the ranked queries across every algorithm (auto,
			// pinned exhaustive, MaxScore, Block-Max-WAND): all must
			// reproduce the same precomputed ranking, so the replay
			// verifies the pruned paths end-to-end against ground truth.
			algo := topkAlgos[rng.Intn(len(topkAlgos))]
			q = Query{Mode: "topk", Terms: pick(1 + rng.Intn(3)), K: 3 + rng.Intn(15), Algo: algo}
		}
		var err error
		switch q.Mode {
		case "and":
			q.Expected, err = idx.Conjunctive(q.Terms...)
		case "or":
			q.Expected, err = idx.Disjunctive(q.Terms...)
		case "topk":
			q.Candidates, err = idx.Disjunctive(q.Terms...)
			if err == nil {
				var ranked []index.Result
				ranked, err = idx.TopK(q.K, q.Terms...)
				q.Expected = make([]uint32, len(ranked))
				for j, r := range ranked {
					q.Expected[j] = r.Doc
				}
			}
		}
		if err != nil {
			return nil, fmt.Errorf("load: computing expected result for %v %v: %w", q.Mode, q.Terms, err)
		}
		w.Queries = append(w.Queries, q)
	}
	return w, nil
}

// equalU32 reports exact (order-sensitive) equality. The server's
// and/or results are sorted and its topk ranking is deterministic, so
// a healthy server must match exactly.
func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// subsetU32 reports whether every element of sub appears in super.
// Both are treated as sets; sub need not be sorted (topk rankings are
// score-ordered).
func subsetU32(sub, super []uint32) bool {
	if len(sub) > len(super) {
		return false
	}
	s := append([]uint32(nil), sub...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	j := 0
	for _, v := range s {
		for j < len(super) && super[j] < v {
			j++
		}
		if j >= len(super) || super[j] != v {
			return false
		}
	}
	return true
}

// partialOK reports whether got is an acceptable degraded-mode partial
// answer for q: a subset of the healthy result (and/or — quarantined
// terms can only shrink matches) or, for topk, a ranking drawn from
// the healthy candidate set with no more than K entries (quarantined
// frequency payloads may reorder scores but can never invent docs).
func (q *Query) partialOK(got []uint32) bool {
	switch q.Mode {
	case "topk":
		return len(got) <= q.K && subsetU32(got, q.Candidates)
	default:
		return subsetU32(got, q.Expected)
	}
}
