package load

import (
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"repro/internal/faultio"
)

// ProcServer drives a real bvserve subprocess: the production-shaped
// Controller. SIGHUP exercises the signal reload path, Kill is a real
// SIGKILL (no drain, no goodbye), and Restart re-execs on the same
// address so the load runner's base URL stays valid.
type ProcServer struct {
	Bin       string   // bvserve binary path
	IndexPath string   // BVIX3 file the server serves
	ExtraArgs []string // appended to the standard argument set
	LogTo     io.Writer

	addr     string
	pristine string // snapshot of IndexPath for Restore

	mu   sync.Mutex
	cmd  *exec.Cmd
	done chan error
}

// NewProcServer prepares a controller for bin serving indexPath. It
// reserves a listen address and snapshots the pristine index next to
// it for Restore.
func NewProcServer(bin, indexPath string, logTo io.Writer) (*ProcServer, error) {
	if _, err := exec.LookPath(bin); err != nil {
		return nil, fmt.Errorf("load: bvserve binary: %w", err)
	}
	addr, err := freeAddr()
	if err != nil {
		return nil, err
	}
	pristine := indexPath + ".pristine"
	if err := copyFile(pristine, indexPath); err != nil {
		return nil, fmt.Errorf("load: snapshotting pristine index: %w", err)
	}
	if logTo == nil {
		logTo = io.Discard
	}
	return &ProcServer{Bin: bin, IndexPath: indexPath, LogTo: logTo, addr: addr, pristine: pristine}, nil
}

// freeAddr reserves a loopback port by binding and releasing it. The
// tiny window between release and the server's bind is an accepted
// race for a test harness.
func freeAddr() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}

// BaseURL implements Controller.
func (p *ProcServer) BaseURL() string { return "http://" + p.addr }

// Start implements Controller: exec bvserve and wait for /readyz.
func (p *ProcServer) Start(ctx context.Context) error {
	p.mu.Lock()
	if p.cmd != nil {
		p.mu.Unlock()
		return fmt.Errorf("load: server already running")
	}
	args := append([]string{
		"-index", p.IndexPath,
		"-addr", p.addr,
		"-allow-degraded",
		"-drain", "2s",
	}, p.ExtraArgs...)
	cmd := exec.Command(p.Bin, args...)
	cmd.Stdout = p.LogTo
	cmd.Stderr = p.LogTo
	if err := cmd.Start(); err != nil {
		p.mu.Unlock()
		return fmt.Errorf("load: starting %s: %w", p.Bin, err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	p.cmd, p.done = cmd, done
	p.mu.Unlock()
	return pollReady(ctx, p.BaseURL(), 10*time.Second)
}

// SignalReload implements Controller via SIGHUP.
func (p *ProcServer) SignalReload() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cmd == nil || p.cmd.Process == nil {
		return fmt.Errorf("load: server not running")
	}
	return p.cmd.Process.Signal(syscall.SIGHUP)
}

// Kill implements Controller: SIGKILL and reap.
func (p *ProcServer) Kill() error {
	p.mu.Lock()
	cmd, done := p.cmd, p.done
	p.cmd, p.done = nil, nil
	p.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return fmt.Errorf("load: server not running")
	}
	if err := cmd.Process.Kill(); err != nil {
		return fmt.Errorf("load: kill: %w", err)
	}
	<-done // reap; the error is the expected "signal: killed"
	return nil
}

// Restart implements Controller.
func (p *ProcServer) Restart(ctx context.Context) error { return p.Start(ctx) }

// Corrupt implements Controller using the faultio live-corruption
// helper: the damage is published by rename, so the running server's
// mmap stays intact until it reloads.
func (p *ProcServer) Corrupt(seed int64) error {
	return faultio.CorruptFile(faultio.OS, p.IndexPath, seed)
}

// Restore implements Controller: republish the pristine snapshot.
func (p *ProcServer) Restore() error {
	return publishFile(p.IndexPath, p.pristine)
}

// Stop implements Controller: SIGTERM, graceful drain, with a SIGKILL
// backstop.
func (p *ProcServer) Stop() error {
	p.mu.Lock()
	cmd, done := p.cmd, p.done
	p.cmd, p.done = nil, nil
	p.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return nil
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	select {
	case <-done:
		return nil
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		<-done
		return fmt.Errorf("load: server ignored SIGTERM; killed")
	}
}

// copyFile copies src to dst (plain write; used for snapshots that no
// one is serving yet).
func copyFile(dst, src string) error {
	b, err := os.ReadFile(src)
	if err != nil {
		return err
	}
	return os.WriteFile(dst, b, 0o644)
}

// publishFile replaces dst with src's content via temp + rename — the
// same publish discipline as index.WriteFile, safe against a server
// currently mmapping dst.
func publishFile(dst, src string) error {
	b, err := os.ReadFile(src)
	if err != nil {
		return err
	}
	tmp := filepath.Join(filepath.Dir(dst), filepath.Base(dst)+".publish")
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, dst); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
