package load

import (
	"testing"

	"repro/internal/codecs"
	"repro/internal/index"
)

func buildTestIndex(t testing.TB, seed int64, ndocs, vocab int) (*index.Index, []string) {
	t.Helper()
	docs, terms := GenCorpus(seed, ndocs, vocab)
	codec, err := codecs.ByName("Roaring")
	if err != nil {
		t.Fatal(err)
	}
	b := index.NewBuilder(codec)
	for _, d := range docs {
		b.AddDocument(d)
	}
	idx, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return idx, terms
}

func TestGenCorpusDeterministic(t *testing.T) {
	d1, t1 := GenCorpus(7, 50, 20)
	d2, t2 := GenCorpus(7, 50, 20)
	if len(d1) != 50 || len(t1) != 20 {
		t.Fatalf("sizes: %d docs, %d terms", len(d1), len(t1))
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("doc %d differs across same-seed generations", i)
		}
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("term %d differs", i)
		}
	}
	d3, _ := GenCorpus(8, 50, 20)
	same := 0
	for i := range d1 {
		if d1[i] == d3[i] {
			same++
		}
	}
	if same == len(d1) {
		t.Fatal("different seeds produced an identical corpus")
	}
}

func TestBuildWorkloadGroundTruth(t *testing.T) {
	idx, vocab := buildTestIndex(t, 3, 120, 30)
	w, err := BuildWorkload(idx, vocab, 200, 11, DefaultMix())
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Queries) != 200 {
		t.Fatalf("queries = %d", len(w.Queries))
	}
	modes := map[string]int{}
	for i, q := range w.Queries {
		modes[q.Mode]++
		// Recompute ground truth independently and compare.
		switch q.Mode {
		case "and":
			want, _ := idx.Conjunctive(q.Terms...)
			if !equalU32(q.Expected, want) {
				t.Fatalf("query %d: AND expected mismatch", i)
			}
		case "or":
			want, _ := idx.Disjunctive(q.Terms...)
			if !equalU32(q.Expected, want) {
				t.Fatalf("query %d: OR expected mismatch", i)
			}
		case "topk":
			ranked, _ := idx.TopK(q.K, q.Terms...)
			if len(ranked) != len(q.Expected) {
				t.Fatalf("query %d: topk size mismatch", i)
			}
			for j, r := range ranked {
				if r.Doc != q.Expected[j] {
					t.Fatalf("query %d: topk rank %d mismatch", i, j)
				}
			}
			// Candidates are the disjunctive match set: top-k scores
			// any document containing at least one query term.
			cand, _ := idx.Disjunctive(q.Terms...)
			if !equalU32(q.Candidates, cand) {
				t.Fatalf("query %d: candidates mismatch", i)
			}
			switch q.Algo {
			case "", "exhaustive", "maxscore", "bmw":
			default:
				t.Fatalf("query %d: unknown topk algo %q", i, q.Algo)
			}
		default:
			t.Fatalf("query %d: unknown mode %q", i, q.Mode)
		}
	}
	for _, m := range []string{"and", "or", "topk"} {
		if modes[m] == 0 {
			t.Errorf("mix produced no %s queries", m)
		}
	}
}

func TestSubsetAndPartial(t *testing.T) {
	if !subsetU32([]uint32{2, 5}, []uint32{1, 2, 3, 5}) {
		t.Error("subset not recognized")
	}
	if subsetU32([]uint32{2, 9}, []uint32{1, 2, 3, 5}) {
		t.Error("non-subset accepted")
	}
	if !subsetU32(nil, []uint32{1}) || !subsetU32(nil, nil) {
		t.Error("empty set must be a subset of anything")
	}
	// topk partial: unordered subset of candidates, bounded by K.
	q := Query{Mode: "topk", K: 2, Candidates: []uint32{1, 4, 7}}
	if !q.partialOK([]uint32{7, 1}) {
		t.Error("in-candidates ranking rejected")
	}
	if q.partialOK([]uint32{7, 1, 4}) {
		t.Error("over-K ranking accepted")
	}
	if q.partialOK([]uint32{9}) {
		t.Error("out-of-candidates ranking accepted")
	}
	// and/or partial: subset of expected.
	q2 := Query{Mode: "and", Expected: []uint32{3, 8, 9}}
	if !q2.partialOK([]uint32{3, 9}) || q2.partialOK([]uint32{3, 10}) {
		t.Error("and partial misclassified")
	}
}
