package load

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faultio"
	"repro/internal/index"
	"repro/internal/server"
)

// OpenIndexFile opens a persisted index strictly, falling back to
// degraded mode on checksum failure — the same serving policy bvserve
// applies under -allow-degraded. It is the loader both LocalServer and
// the load harness's oracles use, so the harness and the server agree
// on what a corrupted file serves as.
func OpenIndexFile(path string) (*index.Index, error) {
	idx, err := index.OpenFile(path)
	if err != nil && errors.Is(err, core.ErrChecksum) {
		if deg, derr := index.OpenFileDegraded(path); derr == nil {
			return deg, nil
		}
	}
	return idx, err
}

// LocalServer is the in-process Controller: an internal/server
// instance serving an index file from a goroutine. It exists so the
// chaos orchestrator and the full load pipeline are testable inside
// `go test` with no binary to build or PATH to arrange; SignalReload
// calls the same srv.Reload the SIGHUP handler would, and Kill is an
// abrupt teardown with a near-zero drain.
type LocalServer struct {
	IndexPath string
	Logger    *log.Logger
	Config    server.Config // optional overrides (timeouts, limits)

	addr     string
	pristine string

	mu     sync.Mutex
	srv    *server.Server
	cancel context.CancelFunc
	done   chan error
}

// NewLocalServer prepares an in-process controller serving indexPath,
// snapshotting the pristine bytes for Restore.
func NewLocalServer(indexPath string, logger *log.Logger) (*LocalServer, error) {
	pristine := indexPath + ".pristine"
	if err := copyFile(pristine, indexPath); err != nil {
		return nil, fmt.Errorf("load: snapshotting pristine index: %w", err)
	}
	if logger == nil {
		logger = log.New(logDiscard{}, "", 0)
	}
	return &LocalServer{IndexPath: indexPath, Logger: logger, pristine: pristine}, nil
}

type logDiscard struct{}

func (logDiscard) Write(p []byte) (int, error) { return len(p), nil }

// BaseURL implements Controller.
func (l *LocalServer) BaseURL() string { return "http://" + l.addr }

// Start implements Controller.
func (l *LocalServer) Start(ctx context.Context) error {
	l.mu.Lock()
	if l.srv != nil {
		l.mu.Unlock()
		return fmt.Errorf("load: server already running")
	}
	idx, err := OpenIndexFile(l.IndexPath)
	if err != nil {
		l.mu.Unlock()
		return err
	}
	cfg := l.Config
	cfg.Logger = l.Logger
	if cfg.DrainDeadline <= 0 {
		// Kill() cancels the serve context; a short drain keeps "kill"
		// abrupt instead of graceful.
		cfg.DrainDeadline = 50 * time.Millisecond
	}
	srv := server.New(idx, cfg)
	srv.SetLoader(func() (*index.Index, error) { return OpenIndexFile(l.IndexPath) })

	listenAddr := l.addr
	if listenAddr == "" {
		listenAddr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		l.mu.Unlock()
		return fmt.Errorf("load: listen %s: %w", listenAddr, err)
	}
	l.addr = ln.Addr().String()
	sctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(sctx, ln) }()
	l.srv, l.cancel, l.done = srv, cancel, done
	l.mu.Unlock()
	return pollReady(ctx, l.BaseURL(), 10*time.Second)
}

// SignalReload implements Controller; in-process, the SIGHUP handler's
// code path is srv.Reload directly.
func (l *LocalServer) SignalReload() error {
	l.mu.Lock()
	srv := l.srv
	l.mu.Unlock()
	if srv == nil {
		return fmt.Errorf("load: server not running")
	}
	return srv.Reload()
}

// Kill implements Controller: cancel the serve context with the
// near-zero drain configured at Start and wait the goroutine out.
func (l *LocalServer) Kill() error {
	l.mu.Lock()
	cancel, done := l.cancel, l.done
	l.srv, l.cancel, l.done = nil, nil, nil
	l.mu.Unlock()
	if cancel == nil {
		return fmt.Errorf("load: server not running")
	}
	cancel()
	<-done // drain-deadline errors are expected on an abrupt kill
	return nil
}

// Restart implements Controller.
func (l *LocalServer) Restart(ctx context.Context) error { return l.Start(ctx) }

// Corrupt implements Controller.
func (l *LocalServer) Corrupt(seed int64) error {
	return faultio.CorruptFile(faultio.OS, l.IndexPath, seed)
}

// Restore implements Controller.
func (l *LocalServer) Restore() error { return publishFile(l.IndexPath, l.pristine) }

// Stop implements Controller.
func (l *LocalServer) Stop() error {
	l.mu.Lock()
	cancel, done := l.cancel, l.done
	l.srv, l.cancel, l.done = nil, nil, nil
	l.mu.Unlock()
	if cancel == nil {
		return nil
	}
	cancel()
	<-done
	return nil
}
