package hist

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestBucketsAreContiguousAndMonotonic(t *testing.T) {
	prev := -1
	for v := int64(0); v < 1<<20; v++ {
		idx := bucketFor(v)
		if idx != prev && idx != prev+1 {
			t.Fatalf("bucketFor(%d) = %d, previous %d: not contiguous", v, idx, prev)
		}
		prev = idx
		if up := bucketUpper(idx); v > up {
			t.Fatalf("value %d above its bucket %d upper bound %d", v, idx, up)
		}
		// Skip ahead within wide buckets to keep the scan fast.
		if up := bucketUpper(idx); up-v > 3 {
			v = up - 1
		}
	}
}

func TestRelativeErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5000; trial++ {
		v := rng.Int63n(bucketUpper(numBuckets - 1))
		up := bucketUpper(bucketFor(v))
		if up < v {
			t.Fatalf("upper(%d) = %d below value", v, up)
		}
		if v >= 1<<subBits && float64(up-v) > float64(v)/float64(int64(1)<<subBits)+1 {
			t.Fatalf("value %d quantized to %d: error beyond 1/2^%d bound", v, up, subBits)
		}
	}
}

func TestPercentilesAgainstExactSort(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(7))
	n := 20000
	vals := make([]int64, n)
	for i := range vals {
		// Mix of magnitudes: µs-scale fast path, ms-scale tail.
		v := rng.Int63n(int64(2 * time.Millisecond))
		if rng.Intn(100) == 0 {
			v = rng.Int63n(int64(200 * time.Millisecond))
		}
		vals[i] = v
		h.Record(time.Duration(v))
	}
	if h.Count() != int64(n) {
		t.Fatalf("count = %d, want %d", h.Count(), n)
	}
	exact := append([]int64(nil), vals...)
	sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		want := exact[int(q*float64(n-1))]
		got := int64(h.Percentile(q))
		// Histogram error is ~3% relative plus one bucket.
		slack := want/16 + 2
		if got < want-slack || got > want+slack {
			t.Errorf("p%g = %d, exact %d (slack %d)", q*100, got, want, slack)
		}
	}
	if h.Max() != time.Duration(exact[n-1]) {
		t.Errorf("max = %d, want %d", h.Max(), exact[n-1])
	}
}

func TestZeroAndEdgeValues(t *testing.T) {
	var h Histogram
	if h.Percentile(0.99) != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must read zero")
	}
	h.Record(0)
	h.Record(-5) // clamped
	h.Record(time.Hour)
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if p := h.Percentile(1); p > time.Hour {
		t.Fatalf("p100 = %v beyond observed max", p)
	}
}

func TestConcurrentRecord(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const workers, per = 8, 5000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				h.Record(time.Duration(rng.Int63n(int64(time.Second))))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	s := h.Summarize()
	if s.Count != workers*per || s.P99Ns < s.P50Ns || s.MaxNs < s.P999Ns {
		t.Fatalf("inconsistent summary: %+v", s)
	}
}
