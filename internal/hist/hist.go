// Package hist provides an HDR-style latency histogram: log-linear
// buckets with bounded relative error, lock-free atomic recording, and
// percentile readout. It is the shared measurement substrate of the
// serving layer (/stats latency gauges) and the load harness
// (cmd/bvload's p50/p99/p999 SLO gates).
//
// Bucketing follows the HdrHistogram idea without the configuration
// surface: values (nanoseconds) below 2^subBits land in exact unit
// buckets; above that, each power-of-two range is split into 2^subBits
// linear sub-buckets, so the relative quantization error is bounded by
// 1/2^subBits (~3% with subBits = 5) at every magnitude. 1024 buckets
// cover [0, ~68 seconds] in nanoseconds — far beyond any request budget
// this system allows; anything larger collapses into the top bucket and
// is still reported exactly through Max.
package hist

import (
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	subBits    = 5
	numBuckets = 1024
)

// Histogram records non-negative durations with bounded relative
// error. The zero value is ready to use; all methods are safe for
// concurrent use, and Record never allocates or takes a lock.
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// bucketFor maps a nanosecond value onto its log-linear bucket index.
func bucketFor(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < 1<<subBits {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 - subBits
	idx := exp<<subBits + int(v>>uint(exp))
	if idx >= numBuckets {
		return numBuckets - 1
	}
	return idx
}

// bucketUpper is the inclusive upper bound of a bucket, the value
// percentile readout reports for samples in it.
func bucketUpper(idx int) int64 {
	if idx < 1<<(subBits+1) {
		return int64(idx)
	}
	exp := idx>>subBits - 1
	m := int64(idx - exp<<subBits)
	return (m+1)<<uint(exp) - 1
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.buckets[bucketFor(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count reports the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Max reports the largest recorded observation.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Percentile reports the value at quantile q in [0, 1] (0.99 = p99),
// with the histogram's quantization error. Zero observations yield 0.
// Concurrent Records may or may not be included; readout is for
// monitoring, not synchronization.
func (h *Histogram) Percentile(q float64) time.Duration {
	total := h.count.Load()
	if total <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the sample the quantile selects.
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen int64
	for i := 0; i < numBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			v := bucketUpper(i)
			if m := h.max.Load(); v > m {
				v = m // never report beyond the observed maximum
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.max.Load())
}

// Mean reports the arithmetic mean of recorded observations (exact,
// not quantized).
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Summary is a point-in-time percentile readout, shaped for JSON
// reports (all values nanoseconds).
type Summary struct {
	Count  int64 `json:"count"`
	MeanNs int64 `json:"meanNs"`
	P50Ns  int64 `json:"p50Ns"`
	P90Ns  int64 `json:"p90Ns"`
	P99Ns  int64 `json:"p99Ns"`
	P999Ns int64 `json:"p999Ns"`
	MaxNs  int64 `json:"maxNs"`
}

// Summarize captures the histogram's current percentiles.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count:  h.Count(),
		MeanNs: int64(h.Mean()),
		P50Ns:  int64(h.Percentile(0.50)),
		P90Ns:  int64(h.Percentile(0.90)),
		P99Ns:  int64(h.Percentile(0.99)),
		P999Ns: int64(h.Percentile(0.999)),
		MaxNs:  int64(h.Max()),
	}
}
