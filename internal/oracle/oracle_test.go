package oracle

import (
	"flag"
	"fmt"
	"testing"
)

// -oracle.seed replays a single failing seed:
//
//	go test ./internal/oracle -run TestOracle -oracle.seed=42 -v
var oracleSeed = flag.Int64("oracle.seed", 0, "replay one oracle seed instead of the sweep")

// -oracle.seeds sizes the sweep (the acceptance bar is >= 100).
var oracleSeeds = flag.Int("oracle.seeds", 120, "number of seeds in the sweep")

func TestOracle(t *testing.T) {
	if *oracleSeed != 0 {
		if err := Run(*oracleSeed, t.TempDir()); err != nil {
			t.Fatalf("seed %d: %v", *oracleSeed, err)
		}
		return
	}
	n := *oracleSeeds
	if testing.Short() {
		n = 25
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			if err := Run(seed, t.TempDir()); err != nil {
				t.Fatalf("divergence: %v\nreproduce with: go test ./internal/oracle -run TestOracle -oracle.seed=%d", err, seed)
			}
		})
	}
}

// TestOracleCatchesDamage proves the oracle is not vacuous: the kernel
// comparator must flag a payload that decodes differently.
func TestOracleCatchesDamage(t *testing.T) {
	// A direct unit wedge is impossible without injecting a broken
	// kernel, so assert sensitivity structurally: diffU32 and the
	// per-check plumbing surface the first mismatch.
	if i := diffU32([]uint32{1, 2, 3}, []uint32{1, 9, 3}); i != 1 {
		t.Fatalf("diffU32 = %d, want 1", i)
	}
	if i := diffU32(nil, nil); i != -1 {
		t.Fatalf("diffU32(nil,nil) = %d, want -1", i)
	}
}
