// Package oracle is the always-on differential correctness rig: every
// optimized path in the stack is re-run against its slow, obviously
// correct reference on randomized inputs, and any divergence is a
// failure that names a reproducer seed.
//
// The pairings (DESIGN.md §7):
//
//   - generated decode kernels (Unpack, VUnpack, VUnpackDelta,
//     VUnpackBase) vs the generic accumulator references (UnpackRef,
//     VUnpackRef) across every bit width 0..32;
//   - the pooled/parallel ops.Engine vs the serial ops.Eval on random
//     plans over postings compressed with every codec in the registry;
//   - the BVIX3 mmap read path vs the in-memory index it was written
//     from, and the BVIX2 stream roundtrip, on and/or/top-k queries;
//   - degraded-mode open (OpenFileDegraded) of a tail-corrupted file
//     vs the pristine index: every term must serve either its exact
//     pristine postings or nothing (quarantined) — never wrong data;
//   - the adaptive hybrid index (per-term codec selection) vs a
//     mono-codec index over the same corpus, in memory and through a
//     BVIX3 reopen, on and/or/top-k queries;
//   - the engine's mixed bitmap×list and galloping SvS intersection
//     kernels vs the reference ops.Intersect and the plain sorted-slice
//     merge, across skews up to 10^4:1;
//   - the pruned ranked-retrieval algorithms (MaxScore, Block-Max-WAND)
//     vs exhaustive evaluation, in memory and through a BVIX3 v4
//     (impact-annotated) write and reopen — result lists must be
//     identical, down to the deterministic docid tie-break;
//   - the doc-partitioned scatter-gather router vs the unpartitioned
//     index, across 1/2/4/8 shards on and/or/top-k (every algorithm,
//     k up to 100000), including a shard-file + manifest disk
//     roundtrip — merged answers must be byte-identical;
//   - the WAL-backed multi-segment live index vs a from-scratch
//     rebuild of the surviving documents, across 1/2/4 sealed segments
//     with and without deletions, before compaction, after compaction,
//     and after a close/reopen that replays the WAL.
//
// Each check is deterministic in its seed: oracle.Run(seed, dir) either
// passes or returns an error describing the first divergence, and the
// same seed reproduces it exactly.
package oracle

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"

	"repro/internal/codecs"
	"repro/internal/core"
	"repro/internal/faultio"
	"repro/internal/index"
	"repro/internal/kernels"
	"repro/internal/load"
	"repro/internal/ops"
	"repro/internal/shard"
)

// Run executes one full differential pass for seed, using dir for
// scratch index files. It returns nil when every optimized path agreed
// with its reference, or an error describing the first divergence.
func Run(seed int64, dir string) error {
	if err := CheckKernels(seed); err != nil {
		return fmt.Errorf("kernels: %w", err)
	}
	if err := CheckEngine(seed); err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	if err := CheckIndexFile(seed, dir); err != nil {
		return fmt.Errorf("index file: %w", err)
	}
	if err := CheckDegraded(seed, dir); err != nil {
		return fmt.Errorf("degraded open: %w", err)
	}
	if err := CheckHybrid(seed, dir); err != nil {
		return fmt.Errorf("hybrid index: %w", err)
	}
	if err := CheckMixedIntersect(seed); err != nil {
		return fmt.Errorf("mixed intersect: %w", err)
	}
	if err := CheckTopK(seed, dir); err != nil {
		return fmt.Errorf("ranked top-k: %w", err)
	}
	if err := CheckSharded(seed, dir); err != nil {
		return fmt.Errorf("sharded router: %w", err)
	}
	if err := CheckLiveIndex(seed, dir); err != nil {
		return fmt.Errorf("live index: %w", err)
	}
	return nil
}

// widthMask is the b-bit value mask (all ones at b=32).
func widthMask(b uint) uint32 {
	if b >= 32 {
		return ^uint32(0)
	}
	return uint32(1)<<b - 1
}

// CheckKernels compares every specialized decode kernel against its
// generic reference at every width 0..32 on random and all-ones
// payloads.
func CheckKernels(seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	for b := uint(0); b <= 32; b++ {
		mask := widthMask(b)
		fill := func(dst []uint32, ones bool) {
			for i := range dst {
				if ones {
					dst[i] = mask
				} else {
					dst[i] = rng.Uint32() & mask
				}
			}
		}
		for _, ones := range []bool{false, true} {
			// Horizontal layout: random length exercises both the
			// 32-value kernel groups and the UnpackRef tail fallback.
			n := 1 + rng.Intn(160)
			vals := make([]uint32, n)
			fill(vals, ones)
			packed := kernels.Pack(nil, vals, b)
			ref := make([]uint32, n)
			fast := make([]uint32, n)
			refUsed := kernels.UnpackRef(packed, ref, b)
			fastUsed := kernels.Unpack(packed, fast, b)
			if b == 0 {
				refUsed = 0 // the b=0 reference loop reads no bytes
			}
			if refUsed != fastUsed {
				return fmt.Errorf("Unpack used %d bytes, UnpackRef %d (b=%d n=%d)", fastUsed, refUsed, b, n)
			}
			if i := diffU32(fast, ref); i >= 0 {
				return fmt.Errorf("Unpack[%d]=%d != UnpackRef[%d]=%d (b=%d n=%d ones=%v)", i, fast[i], i, ref[i], b, n, ones)
			}

			// Vertical 4-lane layout, full 128-value blocks.
			var block [128]uint32
			fill(block[:], ones)
			vpacked := kernels.VPack128(nil, &block, b)
			var vref, vfast [128]uint32
			kernels.VUnpackRef(vpacked, &vref, b)
			kernels.VUnpack(vpacked, &vfast, b)
			if i := diffU32(vfast[:], vref[:]); i >= 0 {
				return fmt.Errorf("VUnpack[%d]=%d != VUnpackRef[%d]=%d (b=%d ones=%v)", i, vfast[i], i, vref[i], b, ones)
			}

			// Fused delta decode: out[i] = prev + gaps[0..i], wrapping
			// uint32 arithmetic, against a scalar prefix sum over the
			// reference-decoded gaps.
			prev := rng.Uint32()
			var dfast [127]uint32
			kernels.VUnpackDelta(vpacked, &dfast, prev, b)
			acc := prev
			for i := 0; i < 127; i++ {
				acc += vref[i]
				if dfast[i] != acc {
					return fmt.Errorf("VUnpackDelta[%d]=%d, want %d (b=%d prev=%d)", i, dfast[i], acc, b, prev)
				}
			}

			// Fused base decode: out[i] = base + offsets[i].
			base := rng.Uint32()
			var bfast [127]uint32
			kernels.VUnpackBase(vpacked, &bfast, base, b)
			for i := 0; i < 127; i++ {
				if want := base + vref[i]; bfast[i] != want {
					return fmt.Errorf("VUnpackBase[%d]=%d, want %d (b=%d base=%d)", i, bfast[i], want, b, base)
				}
			}
		}
	}
	return nil
}

// diffU32 returns the first index where a and b differ, or -1.
func diffU32(a, b []uint32) int {
	for i := range a {
		if a[i] != b[i] {
			return i
		}
	}
	return -1
}

// randomSet draws a strictly increasing non-empty uint32 set within a
// random universe — dense, sparse, and clustered shapes all occur.
func randomSet(rng *rand.Rand) []uint32 {
	universe := 64 << rng.Intn(8) // 64 .. 8192
	density := 1 + rng.Intn(99)   // percent * 100 of universe, roughly
	var out []uint32
	for v := 0; v < universe; v++ {
		if rng.Intn(100) < density {
			out = append(out, uint32(v))
		}
	}
	if len(out) == 0 {
		out = append(out, uint32(rng.Intn(universe)))
	}
	return out
}

// randomPlan builds a random Expr over n leaves: each leaf used once,
// grouped under random AND/OR nodes up to depth 2.
func randomPlan(rng *rand.Rand, n int) ops.Expr {
	leaves := make([]ops.Expr, n)
	for i := range leaves {
		leaves[i] = ops.Leaf(i)
	}
	rng.Shuffle(n, func(i, j int) { leaves[i], leaves[j] = leaves[j], leaves[i] })
	var groups []ops.Expr
	for len(leaves) > 0 {
		take := 1 + rng.Intn(3)
		if take > len(leaves) {
			take = len(leaves)
		}
		g := leaves[:take]
		leaves = leaves[take:]
		switch {
		case len(g) == 1:
			groups = append(groups, g[0])
		case rng.Intn(2) == 0:
			groups = append(groups, ops.And(g...))
		default:
			groups = append(groups, ops.Or(g...))
		}
	}
	if len(groups) == 1 {
		return groups[0]
	}
	if rng.Intn(2) == 0 {
		return ops.And(groups...)
	}
	return ops.Or(groups...)
}

// CheckEngine compares the pooled/parallel Engine against the serial
// reference Eval on random plans, rotating every registered codec
// (including extensions) through the leaf postings.
func CheckEngine(seed int64) error {
	rng := rand.New(rand.NewSource(seed + 1))
	all := append(codecs.All(), codecs.Extensions()...)
	// Parallelism forced on and the fan-out threshold floored so even
	// tiny plans exercise the concurrent path.
	eng := ops.NewEngine(ops.EngineConfig{Parallelism: 4, ParallelMinWork: 1})
	for round := 0; round < 4; round++ {
		n := 2 + rng.Intn(5)
		postings := make([]core.Posting, n)
		names := make([]string, n)
		for i := range postings {
			c := all[rng.Intn(len(all))]
			p, err := c.Compress(randomSet(rng))
			if err != nil {
				return fmt.Errorf("%s.Compress: %w", c.Name(), err)
			}
			postings[i], names[i] = p, c.Name()
		}
		plan := randomPlan(rng, n)
		want, werr := ops.Eval(plan, postings)
		got, gerr := eng.Eval(plan, postings)
		if (werr == nil) != (gerr == nil) {
			return fmt.Errorf("round %d: serial err=%v, engine err=%v (codecs %v)", round, werr, gerr, names)
		}
		if werr != nil {
			continue
		}
		if len(got) != len(want) {
			return fmt.Errorf("round %d: engine returned %d docs, serial %d (codecs %v)", round, len(got), len(want), names)
		}
		if i := diffU32(got, want); i >= 0 {
			return fmt.Errorf("round %d: engine[%d]=%d != serial[%d]=%d (codecs %v)", round, i, got[i], i, want[i], names)
		}
	}
	return nil
}

// oracleCorpus builds a small randomized index plus query terms; the
// codec rotates with the seed so every registered codec serves as the
// persisted format across a seed sweep.
func oracleCorpus(seed int64) (*index.Index, []string, string, error) {
	docs, vocab := load.GenCorpus(seed, 120+int(seed%7)*20, 30)
	all := append(codecs.All(), codecs.Extensions()...)
	codec := all[int(seed)%len(all)]
	b := index.NewBuilder(codec)
	for _, d := range docs {
		b.AddDocument(d)
	}
	idx, err := b.Build()
	if err != nil {
		return nil, nil, "", fmt.Errorf("building with %s: %w", codec.Name(), err)
	}
	return idx, vocab, codec.Name(), nil
}

// queryDiff compares and/or/top-k answers between two indexes over
// random term samples, returning a description of the first mismatch.
func queryDiff(rng *rand.Rand, a, b *index.Index, vocab []string) error {
	for q := 0; q < 16; q++ {
		k := 1 + rng.Intn(3)
		terms := make([]string, k)
		for i := range terms {
			terms[i] = vocab[rng.Intn(len(vocab))]
		}
		wa, _ := a.Conjunctive(terms...)
		wb, err := b.Conjunctive(terms...)
		if err != nil {
			return fmt.Errorf("conjunctive %v: %w", terms, err)
		}
		if len(wa) != len(wb) || diffU32(wa, wb) >= 0 {
			return fmt.Errorf("conjunctive %v: %d vs %d docs", terms, len(wa), len(wb))
		}
		oa, _ := a.Disjunctive(terms...)
		ob, err := b.Disjunctive(terms...)
		if err != nil {
			return fmt.Errorf("disjunctive %v: %w", terms, err)
		}
		if len(oa) != len(ob) || diffU32(oa, ob) >= 0 {
			return fmt.Errorf("disjunctive %v: %d vs %d docs", terms, len(oa), len(ob))
		}
		ta, _ := a.TopK(5, terms...)
		tb, err := b.TopK(5, terms...)
		if err != nil {
			return fmt.Errorf("topk %v: %w", terms, err)
		}
		if len(ta) != len(tb) {
			return fmt.Errorf("topk %v: %d vs %d results", terms, len(ta), len(tb))
		}
		for i := range ta {
			if ta[i] != tb[i] {
				return fmt.Errorf("topk %v rank %d: %+v vs %+v", terms, i, ta[i], tb[i])
			}
		}
	}
	return nil
}

// CheckIndexFile compares the in-memory index against its BVIX3 mmap
// read path and its BVIX2 stream roundtrip.
func CheckIndexFile(seed int64, dir string) error {
	mem, vocab, codecName, err := oracleCorpus(seed)
	if err != nil {
		return err
	}
	path := filepath.Join(dir, fmt.Sprintf("oracle_%d.bvix", seed))
	if err := mem.WriteFile(path, index.FormatBVIX3); err != nil {
		return fmt.Errorf("%s: WriteFile bvix3: %w", codecName, err)
	}
	mapped, err := index.OpenFile(path)
	if err != nil {
		return fmt.Errorf("%s: OpenFile bvix3: %w", codecName, err)
	}
	defer mapped.Close()
	rng := rand.New(rand.NewSource(seed + 2))
	if err := queryDiff(rng, mem, mapped, vocab); err != nil {
		return fmt.Errorf("%s: bvix3 vs in-memory: %w", codecName, err)
	}

	var buf bytes.Buffer
	if _, err := mem.WriteTo(&buf); err != nil {
		return fmt.Errorf("%s: WriteTo bvix2: %w", codecName, err)
	}
	streamed, err := index.Read(&buf)
	if err != nil {
		return fmt.Errorf("%s: Read bvix2: %w", codecName, err)
	}
	if err := queryDiff(rng, mem, streamed, vocab); err != nil {
		return fmt.Errorf("%s: bvix2 vs in-memory: %w", codecName, err)
	}
	return nil
}

// CheckDegraded tail-corrupts a persisted index and requires the
// degraded open to be loss-only: every term serves either its exact
// pristine postings or nothing. If the bit flips happen to land in
// slack bytes and the strict open still passes, the file must instead
// be fully identical to pristine — either way, never wrong data.
func CheckDegraded(seed int64, dir string) error {
	mem, vocab, codecName, err := oracleCorpus(seed)
	if err != nil {
		return err
	}
	path := filepath.Join(dir, fmt.Sprintf("oracle_deg_%d.bvix", seed))
	if err := mem.WriteFile(path, index.FormatBVIX3); err != nil {
		return fmt.Errorf("%s: WriteFile: %w", codecName, err)
	}
	if err := faultio.CorruptFile(faultio.OS, path, seed); err != nil {
		return fmt.Errorf("corrupting: %w", err)
	}

	opened, strictErr := index.OpenFile(path)
	if strictErr == nil {
		// Flips landed outside any checksummed region; results must be
		// untouched.
		defer opened.Close()
		rng := rand.New(rand.NewSource(seed + 3))
		if err := queryDiff(rng, mem, opened, vocab); err != nil {
			return fmt.Errorf("%s: strict open of corrupted file diverged: %w", codecName, err)
		}
		return nil
	}

	deg, err := index.OpenFileDegraded(path)
	if err != nil {
		return fmt.Errorf("%s: degraded open failed after strict open failed (%v): %w", codecName, strictErr, err)
	}
	defer deg.Close()
	if !deg.Health().Degraded {
		return fmt.Errorf("%s: degraded open of corrupted file reports healthy", codecName)
	}
	quarantined := 0
	for _, t := range vocab {
		want, _ := mem.Conjunctive(t)
		got, err := deg.Conjunctive(t)
		if err != nil {
			return fmt.Errorf("%s: degraded conjunctive %q: %w", codecName, t, err)
		}
		if len(got) == 0 {
			if len(want) != 0 {
				quarantined++
			}
			continue
		}
		if len(got) != len(want) || diffU32(got, want) >= 0 {
			return fmt.Errorf("%s: degraded term %q served %d docs != pristine %d — wrong data, not loss", codecName, t, len(got), len(want))
		}
	}
	_ = quarantined // zero is legal: quarantine granularity can exceed the damaged terms
	return nil
}

// CheckHybrid compares the adaptive hybrid index — per-term codec
// selection at build time, persisted in the BVIX3 codec byte — against
// a mono-codec index over the same corpus. A stopword prepended to
// every document forces at least one dense bitmap pick next to the
// corpus's sparse lists, so queries cross codec families.
func CheckHybrid(seed int64, dir string) error {
	docs, vocab, codecName, err := hybridCorpusParts(seed)
	if err != nil {
		return err
	}
	auto := index.NewAutoBuilder()
	mono := index.NewBuilder(mustCodec(codecName))
	for _, d := range docs {
		auto.AddDocument("the " + d)
		mono.AddDocument("the " + d)
	}
	hybrid, err := auto.Build()
	if err != nil {
		return fmt.Errorf("auto build: %w", err)
	}
	truth, err := mono.Build()
	if err != nil {
		return fmt.Errorf("%s build: %w", codecName, err)
	}
	if len(hybrid.CodecMix()) < 2 {
		return fmt.Errorf("adaptive build chose a single codec %v for a mixed corpus", hybrid.CodecMix())
	}

	probes := append([]string{"the"}, vocab...)
	rng := rand.New(rand.NewSource(seed + 4))
	if err := queryDiff(rng, truth, hybrid, probes); err != nil {
		return fmt.Errorf("in-memory hybrid vs %s: %w", codecName, err)
	}
	path := filepath.Join(dir, fmt.Sprintf("oracle_hyb_%d.bvix", seed))
	if err := hybrid.WriteFile(path, index.FormatBVIX3); err != nil {
		return fmt.Errorf("WriteFile bvix3: %w", err)
	}
	mapped, err := index.OpenFile(path)
	if err != nil {
		return fmt.Errorf("OpenFile bvix3: %w", err)
	}
	defer mapped.Close()
	if err := queryDiff(rng, truth, mapped, probes); err != nil {
		return fmt.Errorf("reopened hybrid vs %s: %w", codecName, err)
	}
	// The persisted codec bytes must reproduce the builder's decisions.
	for _, term := range probes {
		if got, want := mapped.TermCodec(term), hybrid.TermCodec(term); got != want {
			return fmt.Errorf("term %q codec byte roundtrip: reopened %q, built %q", term, got, want)
		}
	}
	return nil
}

// hybridCorpusParts returns the raw corpus, vocabulary, and the
// mono-codec truth codec for a seed. The truth codec rotates through
// the registry like oracleCorpus, skipping none: any codec must agree
// with the adaptive pick.
func hybridCorpusParts(seed int64) ([]string, []string, string, error) {
	docs, vocab := load.GenCorpus(seed, 120+int(seed%7)*20, 30)
	all := append(codecs.All(), codecs.Extensions()...)
	return docs, vocab, all[int(seed+13)%len(all)].Name(), nil
}

func mustCodec(name string) core.Codec {
	c, err := codecs.ByName(name)
	if err != nil {
		panic(err)
	}
	return c
}

// CheckMixedIntersect drives the engine's mixed bitmap×list kernel and
// galloping SvS against two references — ops.Intersect over the same
// postings and the plain sorted-slice merge — on skewed pairs up to
// 10^4:1, with the bitmap side rotating Roaring/Roaring+Run and the
// list side rotating the blocked SIMD codecs.
func CheckMixedIntersect(seed int64) error {
	rng := rand.New(rand.NewSource(seed + 5))
	eng := ops.NewEngine(ops.EngineConfig{})
	bitmaps := []string{"Roaring", "Roaring+Run"}
	lists := []string{"SIMDBP128*", "SIMDPforDelta*", "VB"}
	ratios := []int{1, 40, 1000, 10000}
	for round, ratio := range ratios {
		// Dense side: clustered regions (runs and bitmap containers) —
		// large enough that ratio drives real skew.
		var dense []uint32
		base := uint32(0)
		for r := 0; r < 1+rng.Intn(4); r++ {
			base += uint32(1 + rng.Intn(1<<17))
			step := uint32(1 + rng.Intn(2))
			n := 1 + rng.Intn(ratio*40)
			for i := 0; i < n; i++ {
				dense = append(dense, base)
				base += step
			}
		}
		// Sparse side: mostly samples of the dense side (guaranteed
		// hits) with some misses mixed in.
		m := 1 + len(dense)/max(ratio, 1)
		sparse := make([]uint32, 0, m)
		seen := map[uint32]struct{}{}
		for len(seen) < m {
			var v uint32
			if rng.Intn(3) > 0 {
				v = dense[rng.Intn(len(dense))]
			} else {
				v = uint32(rng.Intn(int(base) + 64))
			}
			if _, dup := seen[v]; !dup {
				seen[v] = struct{}{}
				sparse = append(sparse, v)
			}
		}
		sortU32(sparse)

		want := ops.IntersectSorted(append([]uint32(nil), dense...), sparse)
		bmCodec := mustCodec(bitmaps[(round+int(seed))%len(bitmaps)])
		listCodec := mustCodec(lists[(round+int(seed))%len(lists)])
		bp, err := bmCodec.Compress(dense)
		if err != nil {
			return fmt.Errorf("%s: %w", bmCodec.Name(), err)
		}
		lp, err := listCodec.Compress(sparse)
		if err != nil {
			return fmt.Errorf("%s: %w", listCodec.Name(), err)
		}
		for _, pair := range [][2]core.Posting{{bp, lp}, {lp, bp}} {
			ref, err := ops.Intersect(pair[:])
			if err != nil {
				return fmt.Errorf("ratio %d: ops.Intersect: %w", ratio, err)
			}
			if len(ref) != len(want) || diffU32(ref, want) >= 0 {
				return fmt.Errorf("ratio %d %s×%s: ops.Intersect %d docs, slice merge %d",
					ratio, bmCodec.Name(), listCodec.Name(), len(ref), len(want))
			}
			got, err := eng.Eval(ops.And(ops.Leaf(0), ops.Leaf(1)), pair[:])
			if err != nil {
				return fmt.Errorf("ratio %d: engine: %w", ratio, err)
			}
			if len(got) != len(want) || diffU32(got, want) >= 0 {
				return fmt.Errorf("ratio %d %s×%s: engine %d docs != reference %d",
					ratio, bmCodec.Name(), listCodec.Name(), len(got), len(want))
			}
		}
	}
	return nil
}

// CheckTopK drives the pruned ranked-retrieval algorithms against
// exhaustive evaluation on randomized corpora and query mixes — in
// memory (derived impacts) and through a BVIX3 v4 write and reopen
// (stored impact annotations, lazy block-decoding cursors). Every
// algorithm must return the identical result list: same documents,
// same scores, same order, including the ascending-docid tie-break and
// k far beyond the result count. The exhaustive evaluation is itself
// cross-checked between the two views, so a divergence pins the failure
// to either the pruning logic or the impacts persistence, not both.
func CheckTopK(seed int64, dir string) error {
	mem, vocab, codecName, err := oracleCorpus(seed)
	if err != nil {
		return err
	}
	path := filepath.Join(dir, fmt.Sprintf("oracle_topk_%d.bvix", seed))
	if err := mem.WriteFile(path, index.FormatBVIX3Impacts); err != nil {
		return fmt.Errorf("%s: WriteFile bvix3+impacts: %w", codecName, err)
	}
	mapped, err := index.OpenFile(path)
	if err != nil {
		return fmt.Errorf("%s: OpenFile bvix3+impacts: %w", codecName, err)
	}
	defer mapped.Close()

	rng := rand.New(rand.NewSource(seed + 6))
	ks := []int{1, 5, 20, 100000}
	for q := 0; q < 24; q++ {
		terms := make([]string, 1+rng.Intn(4))
		for i := range terms {
			terms[i] = vocab[rng.Intn(len(vocab))]
		}
		k := ks[rng.Intn(len(ks))]
		want, err := mem.TopKWith("exhaustive", k, nil, terms...)
		if err != nil {
			return fmt.Errorf("%s: exhaustive k=%d %v: %w", codecName, k, terms, err)
		}
		for _, view := range []struct {
			name string
			idx  *index.Index
		}{{"in-memory", mem}, {"v4-mapped", mapped}} {
			for _, algo := range []string{"exhaustive", "maxscore", "bmw", "auto"} {
				got, err := view.idx.TopKWith(algo, k, nil, terms...)
				if err != nil {
					return fmt.Errorf("%s: %s %s k=%d %v: %w", codecName, view.name, algo, k, terms, err)
				}
				if len(got) != len(want) {
					return fmt.Errorf("%s: %s %s k=%d %v: %d results, exhaustive %d",
						codecName, view.name, algo, k, terms, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						return fmt.Errorf("%s: %s %s k=%d %v rank %d: %+v, exhaustive %+v",
							codecName, view.name, algo, k, terms, i, got[i], want[i])
					}
				}
			}
		}
	}
	return nil
}

// sortU32 is an insertion-free ascending sort for oracle scratch.
func sortU32(a []uint32) {
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
}

// CheckSharded compares the doc-partitioned scatter-gather router
// against the unpartitioned index it was split from: the merge must be
// byte-identical, not merely equivalent. The corpus is partitioned
// round-robin across 1, 2, 4, and 8 shards (each shard its own index,
// codec rotating with the seed) and queried through shard.Router on
// and/or (sorted merged postings vs Conjunctive/Disjunctive) and top-k
// under every algorithm and k in {1, 5, 20, 100000} vs exhaustive
// evaluation. For the 4-shard split the shard files and checksummed
// manifest also make a disk roundtrip — written the way `bvindex
// -partition` writes them, verified, reopened via mmap — and must
// still agree.
func CheckSharded(seed int64, dir string) error {
	docs, vocab := load.GenCorpus(seed, 130+int(seed%5)*20, 30)
	all := append(codecs.All(), codecs.Extensions()...)
	codec := all[int(seed)%len(all)]
	b := index.NewBuilder(codec)
	for _, d := range docs {
		b.AddDocument(d)
	}
	mem, err := b.Build()
	if err != nil {
		return fmt.Errorf("building with %s: %w", codec.Name(), err)
	}

	buildShards := func(n int) ([]*index.Index, error) {
		parts, err := shard.Partition(docs, n)
		if err != nil {
			return nil, err
		}
		out := make([]*index.Index, n)
		for s, part := range parts {
			sb := index.NewBuilder(codec)
			for _, d := range part {
				sb.AddDocument(d)
			}
			if out[s], err = sb.Build(); err != nil {
				return nil, fmt.Errorf("shard %d: %w", s, err)
			}
		}
		return out, nil
	}
	routerOver := func(idxs []*index.Index) (*shard.Router, error) {
		replicas := make([][]shard.Backend, len(idxs))
		for s, idx := range idxs {
			replicas[s] = []shard.Backend{&shard.IndexBackend{Idx: idx, Label: fmt.Sprintf("shard-%d", s)}}
		}
		return shard.NewRouter(shard.RouterConfig{}, replicas)
	}

	ctx := context.Background()
	ks := []int{1, 5, 20, 100000}
	verify := func(r *shard.Router, n int, qseed int64, rounds int) error {
		rng := rand.New(rand.NewSource(qseed))
		for q := 0; q < rounds; q++ {
			terms := make([]string, 1+rng.Intn(4))
			for i := range terms {
				terms[i] = vocab[rng.Intn(len(vocab))]
			}
			wantAnd, _ := mem.Conjunctive(terms...)
			gotAnd, err := r.Search(ctx, shard.Request{Mode: "and", Terms: terms})
			if err != nil || gotAnd.Partial {
				return fmt.Errorf("%s n=%d: and %v: partial=%v err=%v", codec.Name(), n, terms, gotAnd.Partial, err)
			}
			if len(gotAnd.Docs) != len(wantAnd) || diffU32(gotAnd.Docs, wantAnd) >= 0 {
				return fmt.Errorf("%s n=%d: and %v: %d docs, reference %d", codec.Name(), n, terms, len(gotAnd.Docs), len(wantAnd))
			}
			wantOr, _ := mem.Disjunctive(terms...)
			gotOr, err := r.Search(ctx, shard.Request{Mode: "or", Terms: terms})
			if err != nil || gotOr.Partial {
				return fmt.Errorf("%s n=%d: or %v: partial=%v err=%v", codec.Name(), n, terms, gotOr.Partial, err)
			}
			if len(gotOr.Docs) != len(wantOr) || diffU32(gotOr.Docs, wantOr) >= 0 {
				return fmt.Errorf("%s n=%d: or %v: %d docs, reference %d", codec.Name(), n, terms, len(gotOr.Docs), len(wantOr))
			}
			k := ks[rng.Intn(len(ks))]
			want, err := mem.TopKWith("exhaustive", k, nil, terms...)
			if err != nil {
				return fmt.Errorf("%s: exhaustive k=%d %v: %w", codec.Name(), k, terms, err)
			}
			for _, algo := range []string{"exhaustive", "maxscore", "bmw", "auto"} {
				got, err := r.Search(ctx, shard.Request{Mode: "topk", Terms: terms, K: k, Algo: algo})
				if err != nil || got.Partial {
					return fmt.Errorf("%s n=%d: topk %s k=%d %v: partial=%v err=%v", codec.Name(), n, algo, k, terms, got.Partial, err)
				}
				if len(got.Ranked) != len(want) {
					return fmt.Errorf("%s n=%d: topk %s k=%d %v: %d results, exhaustive %d",
						codec.Name(), n, algo, k, terms, len(got.Ranked), len(want))
				}
				for i := range got.Ranked {
					if got.Ranked[i] != want[i] {
						return fmt.Errorf("%s n=%d: topk %s k=%d %v rank %d: %+v, exhaustive %+v",
							codec.Name(), n, algo, k, terms, i, got.Ranked[i], want[i])
					}
				}
			}
		}
		return nil
	}

	for _, n := range []int{1, 2, 4, 8} {
		idxs, err := buildShards(n)
		if err != nil {
			return err
		}
		r, err := routerOver(idxs)
		if err != nil {
			return err
		}
		if err := verify(r, n, seed+int64(7+n), 16); err != nil {
			return err
		}
	}

	// Disk roundtrip at n=4: shard files + checksummed manifest, the
	// exact layout `bvindex -partition` publishes, reopened via mmap.
	const n = 4
	idxs, err := buildShards(n)
	if err != nil {
		return err
	}
	m := &shard.Map{Version: shard.MapVersion, Partition: "mod", Shards: n, Docs: len(docs)}
	for s, idx := range idxs {
		path := filepath.Join(dir, shard.FileName(s))
		if err := idx.WriteFile(path, index.FormatBVIX3Impacts); err != nil {
			return fmt.Errorf("%s: writing shard %d: %w", codec.Name(), s, err)
		}
		e, err := shard.EntryFor(path, idx.Docs(), idx.Terms())
		if err != nil {
			return err
		}
		m.Entries = append(m.Entries, e)
	}
	mapPath := filepath.Join(dir, "oracle_shards.json")
	if err := shard.WriteMap(mapPath, m); err != nil {
		return err
	}
	loaded, err := shard.LoadMap(mapPath)
	if err != nil {
		return fmt.Errorf("reloading manifest: %w", err)
	}
	if err := loaded.VerifyFiles(dir); err != nil {
		return fmt.Errorf("verifying shard files: %w", err)
	}
	mapped := make([]*index.Index, n)
	for s, e := range loaded.Entries {
		if mapped[s], err = index.OpenFile(filepath.Join(dir, e.File)); err != nil {
			return fmt.Errorf("reopening shard %d: %w", s, err)
		}
		defer mapped[s].Close()
	}
	r, err := routerOver(mapped)
	if err != nil {
		return err
	}
	return verify(r, n, seed+29, 16)
}
